// smoqed: the SMOQE network daemon (docs/PROTOCOL.md, DESIGN.md §10).
// Binds a TCP listener, serves the length-prefixed binary protocol
// against one in-process engine, and keeps serving until SIGINT/SIGTERM.
//
//   ./build/smoqed --demo                      # self-contained demo engine
//   ./build/smoqed --demo --port 7467          # fixed port
//   ./build/smoqed --demo --gen 20000          # + generated hospital doc
//   ./build/smoqed --demo --allow-direct       # permit viewless sessions
//
// --demo loads the hospital catalog the rest of the repo demos with:
// document `ward`, views `nurses` and `doctors` (the CI smoke job drives
// exactly this via smoqe-cli). Without --demo the daemon starts with an
// empty catalog — every handshake fails until views exist, which is only
// useful once a catalog-loading config exists; the flag is required for
// now so a misconfigured start fails loudly instead of serving nothing.
//
// Prints one line `smoqed listening on HOST:PORT` to stdout (flushed)
// once the listener is live, so scripts can scrape the ephemeral port.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/smoqe.h"
#include "src/server/server.h"
#include "src/workload/workloads.h"

namespace {

// Same demo ward + policies as tools/smoqe_stat.cc: three patients, a
// nurse view that hides names/dates and a doctor view that sees all.
constexpr char kWard[] =
    "<hospital>"
    "<patient>"
    "<pname>Alice</pname>"
    "<visit><treatment><medication>autism</medication></treatment>"
    "<date>2006-01-02</date></visit>"
    "<parent><patient>"
    "<pname>Bob</pname>"
    "<visit><treatment><test>blood</test></treatment>"
    "<date>2006-02-03</date></visit>"
    "</patient></parent>"
    "</patient>"
    "<patient>"
    "<pname>Carol</pname>"
    "<visit><treatment><medication>headache</medication></treatment>"
    "<date>2006-03-04</date></visit>"
    "</patient>"
    "</hospital>";

constexpr char kNursePolicy[] =
    "patient/pname   : N;\n"
    "patient/visit   : N;\n"
    "visit/treatment : Y;\n"
    "treatment/test  : Y;\n";

constexpr char kDoctorPolicy[] =
    "hospital/patient : Y;\n"
    "patient/pname    : Y;\n"
    "patient/visit    : Y;\n"
    "patient/parent   : Y;\n";

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Fail(const char* what, const smoqe::Status& status) {
  std::fprintf(stderr, "smoqed: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

int LoadDemoCatalog(smoqe::core::Smoqe& engine, uint64_t gen_nodes) {
  auto s = engine.RegisterDtd("hospital", smoqe::workload::kHospitalDtd,
                              "hospital");
  if (!s.ok()) return Fail("RegisterDtd", s);
  s = engine.LoadDocument("ward", kWard);
  if (!s.ok()) return Fail("LoadDocument(ward)", s);
  s = engine.BuildIndex("ward");
  if (!s.ok()) return Fail("BuildIndex(ward)", s);
  if (gen_nodes > 0) {
    s = engine.GenerateDocument("ward_big", "hospital", /*seed=*/42,
                                gen_nodes);
    if (!s.ok()) return Fail("GenerateDocument(ward_big)", s);
  }
  s = engine.DefineView("nurses", "hospital", kNursePolicy);
  if (!s.ok()) return Fail("DefineView(nurses)", s);
  s = engine.DefineView("doctors", "hospital", kDoctorPolicy);
  if (!s.ok()) return Fail("DefineView(doctors)", s);
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --demo [--host H] [--port P] [--workers N]\n"
               "          [--gen NODES] [--allow-direct]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  smoqe::server::ServerOptions options;
  options.port = 7467;  // "SMOQ" on a phone pad, truncated to a port
  options.workers = 2;
  bool demo = false;
  uint64_t gen_nodes = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(arg, "--allow-direct") == 0) {
      options.allow_direct = true;
    } else if (std::strcmp(arg, "--host") == 0 && i + 1 < argc) {
      options.host = argv[++i];
    } else if (std::strcmp(arg, "--port") == 0 && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--workers") == 0 && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--gen") == 0 && i + 1 < argc) {
      gen_nodes = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage(argv[0]);
    }
  }
  if (!demo) return Usage(argv[0]);

  smoqe::core::EngineOptions engine_options;
  engine_options.max_threads = 4;
  smoqe::core::Smoqe engine(engine_options);
  const int rc = LoadDemoCatalog(engine, gen_nodes);
  if (rc != 0) return rc;

  smoqe::server::Server server(&engine, options);
  smoqe::Status started = server.Start();
  if (!started.ok()) return Fail("Start", started);

  std::printf("smoqed listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) {
    sigsuspend(&mask);  // sleep until a signal lands
  }

  std::fprintf(stderr, "smoqed: shutting down\n");
  server.Stop();
  return 0;
}
