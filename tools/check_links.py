#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Checks every inline link in README.md and docs/*.md:
  * relative file links must point at an existing file or directory
    (resolved from the linking file's directory);
  * intra-document anchors (#...) must match a heading of the target
    file, using GitHub's slug rules (lowercased, punctuation stripped,
    spaces -> hyphens);
  * absolute http(s) links are NOT fetched (CI must not depend on the
    network) — they are only reported with --list-external.

Exit status 0 iff no broken links. No dependencies beyond the stdlib.
"""

import argparse
import os
import re
import sys

# [text](target) — ignores images' leading '!' (same target rules) and
# skips fenced code blocks, where brackets are code, not links.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor slug (close enough for our docs)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links in headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: str) -> set:
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md_path: str, repo_root: str, external: list) -> list:
    errors = []
    base = os.path.dirname(md_path)
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                where = f"{os.path.relpath(md_path, repo_root)}:{lineno}"
                if target.startswith(("http://", "https://", "mailto:")):
                    external.append((where, target))
                    continue
                path_part, _, anchor = target.partition("#")
                if path_part:
                    resolved = os.path.normpath(os.path.join(base, path_part))
                    if not os.path.exists(resolved):
                        errors.append(f"{where}: broken link '{target}' "
                                      f"(no such file: {path_part})")
                        continue
                    anchor_file = resolved
                else:
                    anchor_file = md_path  # same-document anchor
                if anchor:
                    if not anchor_file.endswith((".md", ".markdown")):
                        continue  # anchors into non-markdown: don't judge
                    if anchor.lower() not in heading_slugs(anchor_file):
                        errors.append(f"{where}: broken anchor '#{anchor}' "
                                      f"in {os.path.basename(anchor_file)}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--list-external", action="store_true",
                        help="print external links (not checked)")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    targets = []
    readme = os.path.join(root, "README.md")
    if os.path.exists(readme):
        targets.append(readme)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith((".md", ".markdown")):
                targets.append(os.path.join(docs, name))
    if not targets:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1

    errors, external = [], []
    for md in targets:
        errors.extend(check_file(md, root, external))

    if args.list_external:
        for where, url in external:
            print(f"external (unchecked): {where}: {url}")
    for e in errors:
        print(e, file=sys.stderr)
    checked = len(targets)
    print(f"check_links: {checked} files, {len(errors)} broken link(s), "
          f"{len(external)} external link(s) skipped")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
