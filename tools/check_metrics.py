#!/usr/bin/env python3
"""Validates smoqe-stat output: metrics JSON shape and cross-counter
consistency, Prometheus exposition well-formedness, and the audit log's
reject/accept accounting.

Usage (CI runs all three against one smoqe_stat binary):
    ./build/smoqe_stat --format json  | tools/check_metrics.py json
    ./build/smoqe_stat --format prom  | tools/check_metrics.py prom
    ./build/smoqe_stat --format audit | tools/check_metrics.py audit

The `server` mode validates a STAT frame's JSON payload fetched from a
live smoqed (the server smoke job): the server.* serving-layer metrics
must be present and consistent with the traffic the smoke just sent:
    ./build/smoqe_cli stat --port $PORT | tools/check_metrics.py server

The `profile` mode validates the PROFILE surface. It accepts either a
single profile object (what `smoqe-cli query --profile` prints) or a
slow-query-log array (what `smoqe-stat --format slow` or the STAT slow
sub-command return):
    ./build/smoqe_cli query ... --profile | tools/check_metrics.py profile
    ./build/smoqe_stat --format slow     | tools/check_metrics.py profile
"""

import json
import re
import sys


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


REQUIRED_COUNTERS = [
    "query.count",
    "query.errors",
    "query.answers",
    "batch.count",
    "batch.items",
    "update.count",
    "update.accepted",
    "update.rejected",
    "plan_cache.hits",
    "plan_cache.misses",
    "pool.tasks_submitted",
    "pool.tasks_executed",
    "eval.nodes_visited",
]

REQUIRED_GAUGES = [
    "plan_cache.size",
    "pool.queue_depth",
    "snapshot.live",
    "snapshot.created",
    "audit.total",
    "audit.dropped",
]

REQUIRED_HISTOGRAMS = [
    "query.latency_ns",
    "update.latency_ns",
    "batch.latency_ns",
    "pool.task_wait_ns",
]


def check_json(data):
    doc = json.loads(data)  # raises on malformed JSON
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            fail(f"missing section '{section}'")
    c, g, h = doc["counters"], doc["gauges"], doc["histograms"]
    for name in REQUIRED_COUNTERS:
        if name not in c:
            fail(f"missing counter '{name}'")
    for name in REQUIRED_GAUGES:
        if name not in g:
            fail(f"missing gauge '{name}'")
    for name in REQUIRED_HISTOGRAMS:
        if name not in h:
            fail(f"missing histogram '{name}'")

    # Cross-counter consistency: the workload's invariants.
    if c["update.count"] != (
        c["update.accepted"] + c["update.rejected"] + c["update.errors"]
    ):
        fail("update.count != accepted + rejected + errors")
    if c["query.errors"] != 0:
        fail("workload queries must not error")
    if c["update.rejected"] < 1:
        fail("workload must include a rejected update")
    if c["pool.tasks_executed"] != c["pool.tasks_submitted"]:
        fail("pool executed != submitted after quiescence")
    if g["pool.queue_depth"] != 0:
        fail("pool queue depth must be 0 after quiescence")
    if g["audit.total"] < c["update.rejected"]:
        fail("audit.total must cover every rejection")
    if g["snapshot.live"] < 1 or g["snapshot.created"] < g["snapshot.live"]:
        fail("snapshot gauges inconsistent")
    # Histogram sanity: counts match the driving counters, quantiles are
    # ordered, sums bound min/max.
    if h["query.latency_ns"]["count"] != c["query.count"]:
        fail("query.latency_ns count != query.count")
    if h["update.latency_ns"]["count"] != c["update.count"]:
        fail("update.latency_ns count != update.count")
    for name, snap in h.items():
        if snap["count"] == 0:
            continue
        if not (snap["min"] <= snap["p50"] * 1.07 and
                snap["p50"] <= snap["p95"] + 1e-9 and
                snap["p95"] <= snap["p99"] + 1e-9 and
                snap["p99"] <= snap["max"] * 1.07):
            fail(f"histogram '{name}' quantiles out of order: {snap}")
        if snap["sum"] < snap["max"]:
            fail(f"histogram '{name}' sum < max")
    print(f"check_metrics: json OK ({len(c)} counters, {len(g)} gauges, "
          f"{len(h)} histograms)")


def check_prom(data):
    typed = set()
    sampled = set()
    for line in data.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "summary"):
                fail(f"bad TYPE line: {line}")
            typed.add(parts[2])
        elif line.startswith("#"):
            continue
        else:
            m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+]+|NaN)$", line)
            if not m:
                fail(f"bad sample line: {line!r}")
            name = m.group(1)
            base = re.sub(r"_(count|sum)$", "", name)
            sampled.add(base if base in typed or name not in typed else name)
            sampled.add(name)
    for required in ("smoqe_query_count", "smoqe_update_rejected",
                     "smoqe_plan_cache_hits"):
        if required not in sampled:
            fail(f"missing sample '{required}'")
    untyped = {s for s in sampled
               if s not in typed and re.sub(r"_(count|sum)$", "", s) not in typed}
    if untyped:
        fail(f"samples without TYPE: {sorted(untyped)[:5]}")
    print(f"check_metrics: prom OK ({len(typed)} metrics)")


def check_audit(data):
    records = json.loads(data)
    if not isinstance(records, list) or not records:
        fail("audit output must be a non-empty JSON array")
    seqs = [r["seq"] for r in records]
    if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
        fail("audit seq must be strictly increasing")
    rejects = [r for r in records if r["kind"] == "update_reject"]
    if not rejects:
        fail("workload must leave at least one update_reject record")
    for r in rejects:
        if r["allowed"] or not r["explain"]:
            fail(f"reject record without explain: {r}")
    for r in records:
        for key in ("seq", "kind", "view", "doc", "doc_epoch", "statement",
                    "allowed", "explain", "trace_id", "unix_micros"):
            if key not in r:
                fail(f"record missing '{key}': {r}")
        if r["allowed"] and r["explain"]:
            fail(f"allowed record carries an explain: {r}")
    print(f"check_metrics: audit OK ({len(records)} records, "
          f"{len(rejects)} rejects)")


SERVER_COUNTERS = [
    "server.connections_opened",
    "server.connections_closed",
    "server.handshakes",
    "server.handshake_failures",
    "server.requests",
    "server.responses_ok",
    "server.responses_error",
    "server.protocol_errors",
    "server.rejected_pipeline",
    "server.disconnects_mid_request",
    "server.bytes_read",
    "server.bytes_written",
]


def check_server(data):
    doc = json.loads(data)
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            fail(f"missing section '{section}'")
    c, h = doc["counters"], doc["histograms"]
    for name in SERVER_COUNTERS:
        if name not in c:
            fail(f"missing server counter '{name}'")
    if "server.request_ns" not in h:
        fail("missing histogram 'server.request_ns'")
    # The dump itself travelled over the wire, so the serving layer
    # cannot be idle in its own report.
    if c["server.connections_opened"] < 1:
        fail("a served stat dump implies >=1 connection")
    if c["server.handshakes"] < 1:
        fail("a served stat dump implies >=1 handshake")
    if c["server.requests"] < 1:
        fail("a served stat dump implies >=1 request")
    if c["server.bytes_read"] < 1 or c["server.bytes_written"] < 1:
        fail("byte counters must reflect the smoke traffic")
    # The in-flight STAT request is counted as received but not yet
    # answered when the dump is taken, hence >= rather than ==.
    if c["server.requests"] < c["server.responses_ok"] + c[
        "server.responses_error"
    ]:
        fail("more responses than requests")
    if c["server.connections_opened"] < c["server.connections_closed"]:
        fail("more connections closed than opened")
    if h["server.request_ns"]["count"] > c["server.requests"]:
        fail("request_ns samples exceed request count")
    print(f"check_metrics: server OK "
          f"(requests={c['server.requests']}, "
          f"handshake_failures={c['server.handshake_failures']})")


PROFILE_KEYS = [
    "trace_id",
    "op",
    "doc",
    "view",
    "statement",
    "canonical_query",
    "plan_cache_hit",
    "doc_epoch",
    "total_ns",
    "guard_ticks",
    "stages",
    "stats",
]

PROFILE_STAT_KEYS = [
    "nodes_visited",
    "answers",
    "cans_entries",
    "max_active_pairs",
]


def check_one_profile(p, where):
    for key in PROFILE_KEYS:
        if key not in p:
            fail(f"{where}: profile missing '{key}'")
    if p["op"] not in ("query", "query_batch", "update"):
        fail(f"{where}: unknown op '{p['op']}'")
    for key in PROFILE_STAT_KEYS:
        if key not in p["stats"]:
            fail(f"{where}: stats missing '{key}'")
    root_ns = 0
    for i, stage in enumerate(p["stages"]):
        for key in ("name", "parent", "ns"):
            if key not in stage:
                fail(f"{where}: stage {i} missing '{key}'")
        # Stages are append-ordered: a parent always precedes its child.
        if not (stage["parent"] == -1 or 0 <= stage["parent"] < i):
            fail(f"{where}: stage {i} parent {stage['parent']} out of range")
        if stage["parent"] == -1:
            root_ns += stage["ns"]
    # Root stages partition (a subset of) the request's wall time; they
    # can never sum past it. Child stages nest inside roots and are
    # excluded, so overlap does not double-count. query_batch is exempt:
    # its items run concurrently on the pool, so summed stage CPU time
    # exceeding wall time is the parallelism working as intended.
    if p["op"] != "query_batch" and root_ns > p["total_ns"]:
        fail(f"{where}: root stages sum {root_ns} > total_ns "
             f"{p['total_ns']}")


def check_profile(data):
    doc = json.loads(data)
    if isinstance(doc, dict):
        check_one_profile(doc, "profile")
        print(f"check_metrics: profile OK (op={doc['op']}, "
              f"trace_id={doc['trace_id']}, total_ns={doc['total_ns']}, "
              f"{len(doc['stages'])} stages)")
        return
    if not isinstance(doc, list):
        fail("profile input must be a profile object or a slow-log array")
    prev_seq = -1
    for i, entry in enumerate(doc):
        for key in ("seq", "unix_micros", "role", "threshold_ns", "profile"):
            if key not in entry:
                fail(f"slow entry {i} missing '{key}'")
        if entry["seq"] <= prev_seq:
            fail(f"slow entry {i}: seq {entry['seq']} not strictly "
                 f"increasing after {prev_seq}")
        prev_seq = entry["seq"]
        if entry["profile"]["total_ns"] < entry["threshold_ns"]:
            fail(f"slow entry {i}: total_ns {entry['profile']['total_ns']} "
                 f"below threshold {entry['threshold_ns']}")
        check_one_profile(entry["profile"], f"slow entry {i}")
    print(f"check_metrics: profile OK ({len(doc)} slow-log entries)")


def main():
    modes = {
        "json": check_json,
        "prom": check_prom,
        "audit": check_audit,
        "server": check_server,
        "profile": check_profile,
    }
    if len(sys.argv) != 2 or sys.argv[1] not in modes:
        print(__doc__, file=sys.stderr)
        return 2
    data = sys.stdin.read()
    modes[sys.argv[1]](data)
    return 0


if __name__ == "__main__":
    sys.exit(main())
