// smoqe-stat: run a small hospital workload through the engine facade and
// dump what the telemetry subsystem saw (docs/DESIGN.md §8).
//
//   ./build/smoqe_stat              # metrics as JSON (default)
//   ./build/smoqe_stat --format prom    # Prometheus text exposition
//   ./build/smoqe_stat --format traces  # recent trace trees (text)
//   ./build/smoqe_stat --format audit   # security audit log (JSON)
//   ./build/smoqe_stat --format slow    # slow-query log (JSON; the demo
//                                       # run sets threshold 0 so every
//                                       # request of the workload lands)
//
// Live mode: --host H --port P skips the in-process workload and drains
// a *running* smoqed over the STAT opcode instead — same formats
// (json|prom|slow), same render path as the in-process dump, so the two
// can be diffed structurally.
//
// The workload covers every instrumented surface: direct and view
// queries (DOM + StAX), a QueryBatch over the thread pool, accepted and
// rejected view updates, plan-cache hits, and a dry run. CI pipes the
// JSON output through tools/check_metrics.py to assert the counters are
// present and mutually consistent.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/smoqe.h"
#include "src/server/client.h"
#include "src/workload/workloads.h"

namespace {

constexpr char kWard[] =
    "<hospital>"
    "<patient>"
    "<pname>Alice</pname>"
    "<visit><treatment><medication>autism</medication></treatment>"
    "<date>2006-01-02</date></visit>"
    "<parent><patient>"
    "<pname>Bob</pname>"
    "<visit><treatment><test>blood</test></treatment>"
    "<date>2006-02-03</date></visit>"
    "</patient></parent>"
    "</patient>"
    "<patient>"
    "<pname>Carol</pname>"
    "<visit><treatment><medication>headache</medication></treatment>"
    "<date>2006-03-04</date></visit>"
    "</patient>"
    "</hospital>";

constexpr char kNursePolicy[] =
    "patient/pname   : N;\n"
    "patient/visit   : N;\n"
    "visit/treatment : Y;\n"
    "treatment/test  : Y;\n";

constexpr char kDoctorPolicy[] =
    "hospital/patient : Y;\n"
    "patient/pname    : Y;\n"
    "patient/visit    : Y;\n"
    "patient/parent   : Y;\n";

int Fail(const char* what, const smoqe::Status& status) {
  std::fprintf(stderr, "smoqe-stat: %s: %s\n", what,
               status.ToString().c_str());
  return 1;
}

// Drives every instrumented code path once. Errors on paths that are
// *expected* to succeed abort; the deliberate rejections must fail.
int RunWorkload(smoqe::core::Smoqe& engine) {
  using smoqe::core::BatchQueryItem;
  using smoqe::core::EvalMode;
  using smoqe::core::QueryOptions;
  using smoqe::core::UpdateOptions;

  auto s = engine.RegisterDtd("hospital", smoqe::workload::kHospitalDtd,
                              "hospital");
  if (!s.ok()) return Fail("RegisterDtd", s);
  s = engine.LoadDocument("ward", kWard);
  if (!s.ok()) return Fail("LoadDocument", s);
  s = engine.BuildIndex("ward");
  if (!s.ok()) return Fail("BuildIndex", s);
  s = engine.DefineView("nurses", "hospital", kNursePolicy);
  if (!s.ok()) return Fail("DefineView(nurses)", s);
  s = engine.DefineView("doctors", "hospital", kDoctorPolicy);
  if (!s.ok()) return Fail("DefineView(doctors)", s);

  // Queries: direct DOM, view DOM (rewrite audit records), view StAX,
  // and a repeat of each so the plan cache records hits.
  QueryOptions direct;
  QueryOptions nurse_dom;
  nurse_dom.view = "nurses";
  QueryOptions nurse_stax = nurse_dom;
  nurse_stax.mode = EvalMode::kStax;
  for (int round = 0; round < 2; ++round) {
    auto q1 = engine.Query("ward", "//patient/pname", direct);
    if (!q1.ok()) return Fail("Query(direct)", q1.status());
    auto q2 = engine.Query("ward", "//treatment", nurse_dom);
    if (!q2.ok()) return Fail("Query(nurse,dom)", q2.status());
    auto q3 = engine.Query("ward", "//treatment/test", nurse_stax);
    if (!q3.ok()) return Fail("Query(nurse,stax)", q3.status());
  }

  // A multi-user batch: one shared StAX scan plus DOM items on the pool.
  std::vector<BatchQueryItem> items;
  items.push_back({"//treatment", nurse_stax});
  items.push_back({"//treatment/test", nurse_stax});
  items.push_back({"//patient/pname", direct});
  items.push_back({"//visit/date", direct});
  auto batch = engine.QueryBatch("ward", items);
  if (!batch.ok()) return Fail("QueryBatch", batch.status());

  // Updates: a rejected one (nurse deletes a patient — removes hidden
  // data), an accepted one, and a dry run. The rejection MUST fail with
  // PermissionDenied; that denial is the audit log's reason to exist.
  UpdateOptions nurse_up;
  nurse_up.view = "nurses";
  auto rejected = engine.Update("ward", "delete hospital/patient", nurse_up);
  if (rejected.ok() ||
      rejected.status().code() != smoqe::StatusCode::kPermissionDenied) {
    std::fprintf(stderr, "smoqe-stat: expected PermissionDenied, got %s\n",
                 rejected.ok() ? "OK" : rejected.status().ToString().c_str());
    return 1;
  }
  auto accepted = engine.Update(
      "ward",
      "replace //treatment[medication = 'headache'] with "
      "<treatment><medication>ibuprofen</medication></treatment>",
      nurse_up);
  if (!accepted.ok()) return Fail("Update(accepted)", accepted.status());
  UpdateOptions doctor_dry;
  doctor_dry.view = "doctors";
  doctor_dry.dry_run = true;
  auto dry = engine.Update(
      "ward",
      "insert into hospital/patient[pname = 'Carol'] "
      "<visit><treatment><test>mri</test></treatment>"
      "<date>2006-07-08</date></visit>",
      doctor_dry);
  if (!dry.ok()) return Fail("Update(dry_run)", dry.status());

  // One query after the update so epoch-lag has a non-trivial sample.
  auto q = engine.Query("ward", "//treatment", nurse_dom);
  if (!q.ok()) return Fail("Query(post-update)", q.status());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "json";
  std::string host;
  std::string role;
  uint16_t port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
    } else if (std::strncmp(argv[i], "--format=", 9) == 0) {
      format = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--role") == 0 && i + 1 < argc) {
      role = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--format json|prom|traces|audit|slow]\n"
                   "       %s --host H --port P [--role R] "
                   "[--format json|prom|slow]\n",
                   argv[0], argv[0]);
      return 2;
    }
  }

  if (port != 0) {
    // Live mode: drain a running smoqed over STAT.
    namespace srv = smoqe::server;
    srv::ClientOptions copts;
    if (!host.empty()) copts.host = host;
    copts.port = port;
    // STAT needs no view, but the handshake needs a role the server
    // accepts: pass --role on servers that disable direct access.
    copts.role = role;
    auto client = srv::Client::Connect(copts);
    if (!client.ok()) return Fail("connect", client.status());
    srv::StatFormat fmt;
    if (format == "json") {
      fmt = srv::StatFormat::kJson;
    } else if (format == "prom") {
      fmt = srv::StatFormat::kPrometheus;
    } else if (format == "slow") {
      fmt = srv::StatFormat::kSlow;
    } else {
      std::fprintf(stderr, "live mode supports --format json|prom|slow\n");
      return 2;
    }
    auto resp = client->Stat(fmt);
    if (!resp.ok()) return Fail("stat", resp.status());
    if (resp->code != srv::WireCode::kOk) {
      std::fprintf(stderr, "smoqe-stat: %s: %s\n",
                   srv::WireCodeName(resp->code), resp->error.c_str());
      return 1;
    }
    std::fputs(resp->payload.c_str(), stdout);
    return 0;
  }

  smoqe::core::EngineOptions options;
  // The dev/CI container may expose a single core; force a real pool so
  // the pool.* metrics and parallel batch paths are exercised.
  options.max_threads = 4;
  // The demo workload is far faster than any sane slow threshold; zero
  // it so --format slow has entries to show (threshold 0 = log all).
  if (format == "slow") options.slow_query_threshold_ms = 0;
  smoqe::core::Smoqe engine(options);

  int rc = RunWorkload(engine);
  if (rc != 0) return rc;

  // Quiesce the pool before dumping: ParallelFor returns once every
  // iteration is claimed, but leftover helper tasks may still be queued
  // (they run, find no work, exit). Wait for executed == submitted so
  // the pool.* counters in the dump describe a settled engine.
  if (smoqe::ThreadPool* pool = engine.pool()) {
    for (int spin = 0; spin < 10000; ++spin) {
      const smoqe::ThreadPool::Stats st = pool->stats();
      if (st.executed == st.submitted) break;
      std::this_thread::yield();
    }
  }

  namespace tel = smoqe::telemetry;
  if (format == "json") {
    std::fputs(engine.DumpMetrics(tel::DumpFormat::kJson).c_str(), stdout);
  } else if (format == "prom") {
    std::fputs(engine.DumpMetrics(tel::DumpFormat::kPrometheus).c_str(),
               stdout);
  } else if (format == "traces") {
    for (const auto& trace : engine.telemetry()->traces().Recent(16)) {
      std::fputs(tel::TraceRecorder::RenderText(*trace).c_str(), stdout);
      std::fputs("\n", stdout);
    }
  } else if (format == "audit") {
    std::fputs("[\n", stdout);
    const auto records = engine.telemetry()->audit().Query();
    for (size_t i = 0; i < records.size(); ++i) {
      std::fprintf(stdout, "  %s%s\n",
                   tel::AuditLog::RenderJson(records[i]).c_str(),
                   i + 1 < records.size() ? "," : "");
    }
    std::fputs("]\n", stdout);
  } else if (format == "slow") {
    std::fputs(engine.DumpSlowQueries().c_str(), stdout);
  } else {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 2;
  }
  return 0;
}
