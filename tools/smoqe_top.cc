// smoqe-top: live introspection of a running smoqed (docs/PROTOCOL.md).
//
//   smoqe-top --port P [--host H] [--role R] [--interval-ms MS]
//             [--iterations N] [--once]
//
// A refresh loop over the STAT opcode: each tick pulls the JSON metrics
// dump plus the slow-query log and renders one screen — request rate
// (computed from the counter delta between ticks), request latency
// p50/p99, open connections, pipeline depths, guardrail trips, per-role
// request counts, and the slow-query tail. --once prints a single
// snapshot without clearing the screen (the scriptable mode); --iterations
// bounds the loop for tests.
//
// Parsing is deliberately string-level: the dump format is one
// "key": value per line (see MetricsRegistry::DumpJson), and a status
// tool should not drag a JSON library into the build.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/server/client.h"

namespace {

using smoqe::server::Client;
using smoqe::server::ClientOptions;
using smoqe::server::StatFormat;
using smoqe::server::WireCode;

int Usage() {
  std::fprintf(stderr,
               "usage: smoqe-top --port P [--host H] [--role R]\n"
               "                 [--interval-ms MS] [--iterations N] "
               "[--once]\n");
  return 2;
}

/// Finds `"key": <number>` in the dump and returns the number, or `fall`
/// when the key is absent (e.g. telemetry surface not present yet).
double FindNumber(const std::string& json, const std::string& key,
                  double fall = 0.0) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return fall;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

/// Finds field `f` inside the one-line histogram object of `hist`.
double FindHist(const std::string& json, const std::string& hist,
                const char* f) {
  const std::string needle = "\"" + hist + "\": {";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0.0;
  const size_t end = json.find('}', pos);
  const std::string line = json.substr(pos, end - pos);
  return FindNumber(line, f);
}

/// Collects every `server.requests_by_role.<role>` counter in the dump.
std::vector<std::pair<std::string, uint64_t>> FindRoles(
    const std::string& json) {
  std::vector<std::pair<std::string, uint64_t>> out;
  const std::string prefix = "\"server.requests_by_role.";
  size_t pos = 0;
  while ((pos = json.find(prefix, pos)) != std::string::npos) {
    const size_t name_start = pos + prefix.size();
    const size_t name_end = json.find('"', name_start);
    if (name_end == std::string::npos) break;
    const std::string role = json.substr(name_start, name_end - name_start);
    const size_t colon = json.find(": ", name_end);
    uint64_t count = 0;
    if (colon != std::string::npos) {
      count = std::strtoull(json.c_str() + colon + 2, nullptr, 10);
    }
    out.emplace_back(role, count);
    pos = name_end;
  }
  return out;
}

/// The slow dump is a JSON array of entries, each with one "total_ns".
void SlowTail(const std::string& json, uint64_t* count, uint64_t* worst_ns) {
  *count = 0;
  *worst_ns = 0;
  size_t pos = 0;
  const std::string needle = "\"total_ns\": ";
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    ++*count;
    const uint64_t ns =
        std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
    if (ns > *worst_ns) *worst_ns = ns;
    pos += needle.size();
  }
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  uint64_t interval_ms = 1000;
  uint64_t iterations = 0;  // 0 = forever
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--host") == 0 && i + 1 < argc) {
      options.host = argv[++i];
    } else if (std::strcmp(arg, "--port") == 0 && i + 1 < argc) {
      options.port =
          static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--role") == 0 && i + 1 < argc) {
      options.role = argv[++i];
    } else if (std::strcmp(arg, "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--iterations") == 0 && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--once") == 0) {
      once = true;
    } else {
      return Usage();
    }
  }
  if (options.port == 0) return Usage();
  if (once) iterations = 1;

  auto client = Client::Connect(options);
  if (!client.ok()) {
    std::fprintf(stderr, "smoqe-top: connect: %s\n",
                 client.status().ToString().c_str());
    return 3;
  }

  double prev_requests = -1.0;
  for (uint64_t tick = 0; iterations == 0 || tick < iterations; ++tick) {
    auto stat = client->Stat(StatFormat::kJson);
    if (!stat.ok() || stat->code != WireCode::kOk) {
      std::fprintf(stderr, "smoqe-top: stat failed: %s\n",
                   stat.ok() ? stat->error.c_str()
                             : stat.status().ToString().c_str());
      return 3;
    }
    auto slow = client->Stat(StatFormat::kSlow);
    const std::string& m = stat->payload;

    const double requests = FindNumber(m, "server.requests");
    const double qps =
        (prev_requests >= 0.0 && interval_ms > 0)
            ? (requests - prev_requests) * 1000.0 / interval_ms
            : 0.0;
    prev_requests = requests;

    const double conns = FindNumber(m, "server.connections_opened") -
                         FindNumber(m, "server.connections_closed");
    const double guard_trips = FindNumber(m, "guard.deadline_exceeded") +
                               FindNumber(m, "guard.budget_exceeded") +
                               FindNumber(m, "guard.cancelled") +
                               FindNumber(m, "guard.admission_rejected") +
                               FindNumber(m, "server.rejected_pipeline");
    uint64_t slow_count = 0, slow_worst = 0;
    if (slow.ok() && slow->code == WireCode::kOk) {
      SlowTail(slow->payload, &slow_count, &slow_worst);
    }

    if (!once && tick > 0) std::fputs("\n", stdout);
    std::fprintf(stdout,
                 "smoqed %s:%u  tick %llu\n"
                 "  requests %.0f (%.1f/s)  ok %.0f  err %.0f  conns %.0f\n"
                 "  request_ns p50 %.0f  p99 %.0f  pipeline p50 %.1f  "
                 "max %.0f\n"
                 "  guard trips %.0f  slow queries %llu (worst %llu ns, "
                 "dropped %.0f)\n",
                 options.host.c_str(), options.port,
                 static_cast<unsigned long long>(tick), requests, qps,
                 FindNumber(m, "server.responses_ok"),
                 FindNumber(m, "server.responses_error"), conns,
                 FindHist(m, "server.request_ns", "p50"),
                 FindHist(m, "server.request_ns", "p99"),
                 FindHist(m, "server.pipeline_depth", "p50"),
                 FindHist(m, "server.pipeline_depth", "max"), guard_trips,
                 static_cast<unsigned long long>(slow_count),
                 static_cast<unsigned long long>(slow_worst),
                 FindNumber(m, "slowlog.dropped"));
    for (const auto& [role, count] : FindRoles(m)) {
      std::fprintf(stdout, "  role %-12s %llu requests\n", role.c_str(),
                   static_cast<unsigned long long>(count));
    }
    std::fflush(stdout);
    if (iterations != 0 && tick + 1 >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
