// smoqe-cli: command-line client for a running smoqed (docs/PROTOCOL.md).
//
//   smoqe-cli --port P [--host H] [--role R] query  DOC QUERY [--stax] [--tax]
//                      [--profile] [--trace-id N]
//   smoqe-cli --port P [--host H] [--role R] update DOC STATEMENT [--dry-run]
//                      [--trace-id N]
//   smoqe-cli --port P [--host H]            stat   [--format json|prom|slow]
//   common: [--deadline MS] [--max-memory BYTES] [--timeout MS]
//
// --profile asks the server for a structured execution profile (protocol
// v2 trace extension) and prints it to stdout as ONE JSON object — the
// answers themselves are suppressed so the output pipes straight into
// tools/check_metrics.py --mode profile. --trace-id threads a caller-
// minted correlation id into the server's trace recorder.
//
// Exit codes (asserted by the CI smoke job):
//   0  server answered OK
//   1  server answered with an application error (PERMISSION_DENIED,
//      DEADLINE_EXCEEDED, REJECTED_BUSY, ...) — printed to stderr
//   2  usage error
//   3  transport failure (connect/handshake/socket/decode)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/server/client.h"

namespace {

using smoqe::server::Client;
using smoqe::server::ClientOptions;
using smoqe::server::StatFormat;
using smoqe::server::WireCode;
using smoqe::server::WireCodeName;

int Usage() {
  std::fprintf(
      stderr,
      "usage: smoqe-cli --port P [--host H] [--role R] [--timeout MS]\n"
      "                 [--deadline MS] [--max-memory BYTES] COMMAND ...\n"
      "  query  DOC QUERY [--stax] [--tax] [--profile] [--trace-id N]\n"
      "  update DOC STATEMENT [--dry-run] [--trace-id N]\n"
      "  stat   [--format json|prom|slow]\n");
  return 2;
}

int Transport(const char* what, const smoqe::Status& status) {
  std::fprintf(stderr, "smoqe-cli: %s: %s\n", what,
               status.ToString().c_str());
  return 3;
}

int AppError(WireCode code, const std::string& message) {
  std::fprintf(stderr, "smoqe-cli: %s: %s\n", WireCodeName(code),
               message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  uint64_t deadline_ms = 0;
  uint64_t max_memory = 0;
  std::string command;
  std::vector<std::string> positional;
  bool stax = false, tax = false, dry_run = false;
  bool profile = false;
  uint64_t trace_id = 0;
  std::string stat_format = "json";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--host") == 0 && i + 1 < argc) {
      options.host = argv[++i];
    } else if (std::strcmp(arg, "--port") == 0 && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--role") == 0 && i + 1 < argc) {
      options.role = argv[++i];
    } else if (std::strcmp(arg, "--timeout") == 0 && i + 1 < argc) {
      options.recv_timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--deadline") == 0 && i + 1 < argc) {
      deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--max-memory") == 0 && i + 1 < argc) {
      max_memory = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--stax") == 0) {
      stax = true;
    } else if (std::strcmp(arg, "--tax") == 0) {
      tax = true;
    } else if (std::strcmp(arg, "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(arg, "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(arg, "--trace-id") == 0 && i + 1 < argc) {
      trace_id = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--format") == 0 && i + 1 < argc) {
      stat_format = argv[++i];
    } else if (arg[0] == '-') {
      return Usage();
    } else if (command.empty()) {
      command = arg;
    } else {
      positional.push_back(arg);
    }
  }
  if (options.port == 0 || command.empty()) return Usage();

  auto client = Client::Connect(options);
  if (!client.ok()) return Transport("connect", client.status());

  if (command == "query") {
    if (positional.size() != 2) return Usage();
    smoqe::server::QueryRequest req;
    req.doc = positional[0];
    req.query = positional[1];
    req.mode = stax ? smoqe::server::WireEvalMode::kStax
                    : smoqe::server::WireEvalMode::kDom;
    req.use_tax = tax ? 1 : 0;
    req.deadline_ms = deadline_ms;
    req.max_memory_bytes = max_memory;
    req.trace.trace_id = trace_id;
    if (profile) req.trace.flags |= smoqe::server::kTraceFlagProfile;
    auto resp = client->Query(std::move(req));
    if (!resp.ok()) return Transport("query", resp.status());
    if (resp->code != WireCode::kOk) return AppError(resp->code, resp->error);
    if (profile) {
      if (resp->echo.has_profile == 0) {
        std::fprintf(stderr,
                     "smoqe-cli: server sent no profile (telemetry off?)\n");
        return 1;
      }
      std::fprintf(stderr, "<!-- trace %llu, server %llu ns -->\n",
                   static_cast<unsigned long long>(resp->echo.trace_id),
                   static_cast<unsigned long long>(resp->echo.server_ns));
      std::fputs(resp->echo.profile_json.c_str(), stdout);
      return 0;
    }
    std::fprintf(stdout, "<!-- epoch %llu, %zu answers -->\n",
                 static_cast<unsigned long long>(resp->doc_epoch),
                 resp->answers_xml.size());
    for (const std::string& xml : resp->answers_xml) {
      std::fprintf(stdout, "%s\n", xml.c_str());
    }
    return 0;
  }

  if (command == "update") {
    if (positional.size() != 2) return Usage();
    smoqe::server::UpdateRequest req;
    req.doc = positional[0];
    req.statement = positional[1];
    req.dry_run = dry_run ? 1 : 0;
    req.deadline_ms = deadline_ms;
    req.max_memory_bytes = max_memory;
    req.trace.trace_id = trace_id;
    auto resp = client->Update(std::move(req));
    if (!resp.ok()) return Transport("update", resp.status());
    if (resp->code != WireCode::kOk) return AppError(resp->code, resp->error);
    std::fprintf(stdout, "%s epoch %llu: +%llu nodes, -%llu nodes\n",
                 dry_run ? "dry-run ok;" : "applied;",
                 static_cast<unsigned long long>(resp->doc_epoch),
                 static_cast<unsigned long long>(resp->nodes_inserted),
                 static_cast<unsigned long long>(resp->nodes_deleted));
    return 0;
  }

  if (command == "stat") {
    if (!positional.empty()) return Usage();
    StatFormat format;
    if (stat_format == "json") {
      format = StatFormat::kJson;
    } else if (stat_format == "prom") {
      format = StatFormat::kPrometheus;
    } else if (stat_format == "slow") {
      format = StatFormat::kSlow;
    } else {
      return Usage();
    }
    auto resp = client->Stat(format);
    if (!resp.ok()) return Transport("stat", resp.status());
    if (resp->code != WireCode::kOk) return AppError(resp->code, resp->error);
    std::fputs(resp->payload.c_str(), stdout);
    return 0;
  }

  return Usage();
}
