#ifndef SMOQE_BENCH_BENCH_UTIL_H_
#define SMOQE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/automata/mfa.h"
#include "src/common/counters.h"
#include "src/rxpath/parser.h"
#include "src/telemetry/metrics.h"
#include "src/workload/workloads.h"
#include "src/xml/serializer.h"

namespace smoqe::bench {

/// Refuses to benchmark a Debug (assert-enabled) build: the seed's cached
/// Debug build/ dir silently recorded meaningless rows once (CHANGES.md,
/// PR 3 note). Set SMOQE_ALLOW_DEBUG_BENCH=1 to run anyway — trajectory
/// recording stays disabled either way, so Debug numbers can never reach
/// the checked-in BENCH_*.json files.
inline void RequireReleaseBuild() {
#ifndef NDEBUG
  if (std::getenv("SMOQE_ALLOW_DEBUG_BENCH") == nullptr) {
    std::fprintf(
        stderr,
        "bench: this binary was built without NDEBUG (Debug build) — "
        "numbers would be meaningless.\n"
        "Rebuild with -DCMAKE_BUILD_TYPE=Release, or set "
        "SMOQE_ALLOW_DEBUG_BENCH=1 to run anyway (the JSON trajectory "
        "stays off).\n");
    std::exit(2);
  }
#endif
}

/// Cached corpus: one generated document per (schema, size), shared by all
/// benchmarks in a binary so the tables sweep sizes without regenerating.
class Corpus {
 public:
  static Corpus& Get() {
    RequireReleaseBuild();
    static Corpus corpus;
    return corpus;
  }

  const xml::Document& Hospital(size_t nodes) {
    auto it = hospital_.find(nodes);
    if (it == hospital_.end()) {
      auto doc = workload::GenHospital(/*seed=*/1234, nodes, names_);
      Check(doc.ok(), "hospital generation");
      it = hospital_
               .emplace(nodes, std::make_unique<xml::Document>(doc.MoveValue()))
               .first;
    }
    return *it->second;
  }

  const std::string& HospitalText(size_t nodes) {
    auto it = hospital_text_.find(nodes);
    if (it == hospital_text_.end()) {
      it = hospital_text_
               .emplace(nodes, xml::SerializeDocument(Hospital(nodes)))
               .first;
    }
    return it->second;
  }

  /// Deep-genealogy hospital variant (GenHospitalDeep): same schema and
  /// vocabulary, ancestry chains tens of patients deep — the recursion ×
  /// predicates regime the hot-path optimizations target.
  const xml::Document& HospitalDeep(size_t nodes) {
    auto it = hospital_deep_.find(nodes);
    if (it == hospital_deep_.end()) {
      auto doc = workload::GenHospitalDeep(/*seed=*/1234, nodes, names_);
      Check(doc.ok(), "deep hospital generation");
      it = hospital_deep_
               .emplace(nodes, std::make_unique<xml::Document>(doc.MoveValue()))
               .first;
    }
    return *it->second;
  }

  const xml::Document& Org(size_t nodes) {
    auto it = org_.find(nodes);
    if (it == org_.end()) {
      auto doc = workload::GenOrg(/*seed=*/99, nodes, names_);
      Check(doc.ok(), "org generation");
      it = org_.emplace(nodes, std::make_unique<xml::Document>(doc.MoveValue()))
               .first;
    }
    return *it->second;
  }

  const std::shared_ptr<xml::NameTable>& names() { return names_; }

  /// Compiles (and caches) a query MFA against the shared name table.
  const automata::Mfa& Mfa(const std::string& query) {
    auto it = mfas_.find(query);
    if (it == mfas_.end()) {
      auto q = rxpath::ParseQuery(query);
      Check(q.ok(), "query parse");
      auto mfa = automata::Mfa::Compile(**q, names_);
      Check(mfa.ok(), "mfa compile");
      it = mfas_
               .emplace(query,
                        std::make_unique<automata::Mfa>(mfa.MoveValue()))
               .first;
    }
    return *it->second;
  }

  static void Check(bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench setup failed: %s\n", what);
      std::abort();
    }
  }

 private:
  Corpus() : names_(xml::NameTable::Create()) {}

  std::shared_ptr<xml::NameTable> names_;
  std::map<size_t, std::unique_ptr<xml::Document>> hospital_;
  std::map<size_t, std::unique_ptr<xml::Document>> hospital_deep_;
  std::map<size_t, std::string> hospital_text_;
  std::map<size_t, std::unique_ptr<xml::Document>> org_;
  std::map<std::string, std::unique_ptr<automata::Mfa>> mfas_;
};

// ---------------------------------------------------------------------
// JSON trajectory reporting — BENCH_*.json files recorded per PR so the
// perf history of the hot path is tracked in-repo (ROADMAP north star).
// ---------------------------------------------------------------------

/// One measured configuration: engine × workload × query × size × option
/// set, with throughput and the hot-path counters.
struct TrajectoryRow {
  std::string engine;    ///< "hype_dom" | "hype_stax" | ...
  std::string workload;  ///< "hospital" | "org". Rows are keyed by
                         ///< (workload, query, nodes): the hospital desc-*
                         ///< queries run over the deep-genealogy document
                         ///< variant (see WriteTrajectory in bench_eval.cc).
  std::string query;     ///< bench query id
  std::string config;    ///< "opt_all" | "opt_none" | "no_dispatch" | ...
  uint64_t nodes = 0;
  uint64_t answers = 0;
  /// Total parallelism the measured call was allowed (1 = serial; the
  /// E13 thread sweep records one row per thread count). The estimators
  /// below time *wall clock*, so for threads > 1 a row's nodes_per_sec is
  /// aggregate throughput — comparisons are only meaningful against rows
  /// with an explicit thread count, which is why the field is part of the
  /// schema rather than smuggled into `config`.
  uint64_t threads = 1;
  double ns_per_node = 0;
  double nodes_per_sec = 0;
  /// Per-call latency distribution (0 when the row records only a mean):
  /// median and tail of the repeated timed calls, from the same samples
  /// the mean came from. The batch/parallel rows fill these — tail
  /// latency is the serving-layer metric a mean hides.
  double p50_ns = 0;
  double p99_ns = 0;
  uint64_t max_active_pairs = 0;
  uint64_t guard_pool_entries = 0;
  uint64_t guard_pool_hits = 0;
  uint64_t run_dedup_probes = 0;
};

/// Collects TrajectoryRows and writes them as a JSON array. Output schema
/// is flat so downstream diffing stays trivial (`jq` over BENCH_*.json),
/// and strictly one row per line so different bench binaries can merge
/// their rows into one trajectory file (WriteFileMerged).
class JsonReport {
 public:
  void Add(TrajectoryRow row) { rows_.push_back(std::move(row)); }

  bool WriteFile(const std::string& path) const {
    return WriteRows(path, {});
  }

  /// Rewrites `path` keeping every existing row whose "engine" is NOT in
  /// `replace_engines`, then appends this report's rows. This is how
  /// bench_eval and bench_batch share BENCH_eval.json: each binary owns
  /// its engine names and leaves the other's history untouched.
  bool WriteFileMerged(const std::string& path,
                       const std::vector<std::string>& replace_engines) const {
    std::vector<std::string> kept;
    std::FILE* in = std::fopen(path.c_str(), "r");
    if (in != nullptr) {
      char buf[8192];
      bool saw_object = false;   // any '{' at all, row-shaped or not
      size_t parsed_rows = 0;    // lines in our one-row-per-line format
      std::string line;          // accumulates across fgets chunks
      auto process_line = [&] {
        saw_object |= line.find('{') != std::string::npos;
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r')) {
          line.pop_back();
        }
        if (line.rfind("  {", 0) == 0) {  // a row line
          ++parsed_rows;
          if (!line.empty() && line.back() == ',') line.pop_back();
          bool replaced = false;
          for (const std::string& engine : replace_engines) {
            if (line.find("\"engine\": \"" + engine + "\"") !=
                std::string::npos) {
              replaced = true;
              break;
            }
          }
          if (!replaced) kept.push_back(line);
        }
        line.clear();
      };
      while (std::fgets(buf, sizeof buf, in) != nullptr) {
        line += buf;
        // Only process complete lines: a row longer than the fgets
        // buffer must not be split into a kept-but-truncated prefix.
        if (!line.empty() && line.back() == '\n') process_line();
      }
      if (!line.empty()) process_line();  // unterminated last line
      std::fclose(in);
      if (saw_object && parsed_rows == 0) {
        // The file holds objects but none parse as our one-row-per-line
        // format (reformatted by hand or by a tool?). Refuse rather than
        // silently dropping the other binaries' recorded history.
        std::fprintf(stderr,
                     "%s: existing rows are not in the one-row-per-line "
                     "format; refusing to merge (re-record or restore the "
                     "file)\n",
                     path.c_str());
        return false;
      }
    }
    return WriteRows(path, kept);
  }

  size_t size() const { return rows_.size(); }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  static std::string Render(const TrajectoryRow& r) {
    // Two-pass snprintf (measure, then fill) so long query strings can
    // never truncate a row into malformed JSON.
    auto fmt = [&](char* buf, size_t n) {
      return std::snprintf(
          buf, n,
          "  {\"engine\": \"%s\", \"workload\": \"%s\", \"query\": \"%s\", "
          "\"config\": \"%s\", \"nodes\": %llu, \"answers\": %llu, "
          "\"threads\": %llu, "
          "\"ns_per_node\": %.2f, \"nodes_per_sec\": %.0f, "
          "\"p50_ns\": %.0f, \"p99_ns\": %.0f, "
          "\"max_active_pairs\": %llu, \"guard_pool_entries\": %llu, "
          "\"guard_pool_hits\": %llu, \"run_dedup_probes\": %llu}",
          Escape(r.engine).c_str(), Escape(r.workload).c_str(),
          Escape(r.query).c_str(), Escape(r.config).c_str(),
          static_cast<unsigned long long>(r.nodes),
          static_cast<unsigned long long>(r.answers),
          static_cast<unsigned long long>(r.threads), r.ns_per_node,
          r.nodes_per_sec, r.p50_ns, r.p99_ns,
          static_cast<unsigned long long>(r.max_active_pairs),
          static_cast<unsigned long long>(r.guard_pool_entries),
          static_cast<unsigned long long>(r.guard_pool_hits),
          static_cast<unsigned long long>(r.run_dedup_probes));
    };
    int need = fmt(nullptr, 0);
    std::string out(need > 0 ? static_cast<size_t>(need) : 0, '\0');
    if (need > 0) fmt(&out[0], out.size() + 1);
    return out;
  }

  bool WriteRows(const std::string& path,
                 const std::vector<std::string>& kept) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    bool ok = std::fputs("[\n", f) >= 0;
    const size_t total = kept.size() + rows_.size();
    size_t i = 0;
    for (const std::string& line : kept) {
      ok &= 0 <= std::fprintf(f, "%s%s\n", line.c_str(),
                              ++i < total ? "," : "");
    }
    for (const TrajectoryRow& r : rows_) {
      ok &= 0 <= std::fprintf(f, "%s%s\n", Render(r).c_str(),
                              ++i < total ? "," : "");
    }
    ok &= std::fputs("]\n", f) >= 0;
    ok &= std::ferror(f) == 0;
    ok &= std::fclose(f) == 0;
    return ok;
  }

  std::vector<TrajectoryRow> rows_;
};

/// Times `fn` (one evaluation per call): warms up for ~10 ms (at least
/// once — a single warmup call proved not enough for the first
/// measurement of a sweep, where CPU frequency ramp and cold caches
/// inflated a 30 µs/iter row by 2×), then repeats until both `min_iters`
/// and `min_seconds` are reached. Returns ns per call.
template <typename Fn>
double MeasureNsPerIter(Fn&& fn, int min_iters = 3,
                        double min_seconds = 0.10) {
  using Clock = std::chrono::steady_clock;
  auto warm_start = Clock::now();
  do {
    fn();  // warmup (also populates corpus caches)
  } while (std::chrono::duration<double>(Clock::now() - warm_start).count() <
           0.01);
  int iters = 0;
  double elapsed = 0;
  auto start = Clock::now();
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (iters < min_iters || elapsed < min_seconds);
  return elapsed * 1e9 / iters;
}

/// Per-call MINIMUM over repeated timed calls. Noise-robust where
/// MeasureNsPerIter's mean is not: scheduler preemption and frequency
/// dips only ever inflate a sample, so the minimum is the cleanest
/// estimate of the code's actual cost — use it when a *ratio* of two
/// measurements is the recorded result (bench_batch's speedup rows,
/// where a single inflated window on either side skews the quotient).
///
/// Multi-threaded callables (bench_parallel's thread sweep): the sample
/// is still wall clock, so the minimum estimates the best-case *parallel*
/// latency — valid, but only comparable across rows that say how many
/// threads they were allowed. Any report built on this estimator must
/// fill TrajectoryRow::threads; a missing count renders as the serial
/// default (1) and would silently overstate per-thread throughput.
template <typename Fn>
double MeasureMinNsPerIter(Fn&& fn, int min_iters = 5,
                           double min_seconds = 0.5) {
  using Clock = std::chrono::steady_clock;
  auto warm_start = Clock::now();
  do {
    fn();
  } while (std::chrono::duration<double>(Clock::now() - warm_start).count() <
           0.01);
  double best = 1e300;
  double total = 0;
  int iters = 0;
  do {
    auto t0 = Clock::now();
    fn();
    double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (s < best) best = s;
    total += s;
    ++iters;
  } while (iters < min_iters || total < min_seconds);
  return best * 1e9;
}

/// Latency distribution of repeated timed calls: median and p99 over the
/// same kind of sample stream MeasureMinNsPerIter takes the minimum of.
/// Samples land in a telemetry::Histogram (the subsystem's own
/// log-bucketed quantiles, ≤6.25% relative error), so the bench numbers
/// and a production DumpMetrics read the same way.
struct LatencyPercentiles {
  double p50_ns = 0;
  double p99_ns = 0;
};

template <typename Fn>
LatencyPercentiles MeasureLatencyPercentiles(Fn&& fn, int min_iters = 50,
                                             double min_seconds = 0.5) {
  using Clock = std::chrono::steady_clock;
  auto warm_start = Clock::now();
  do {
    fn();
  } while (std::chrono::duration<double>(Clock::now() - warm_start).count() <
           0.01);
  telemetry::Histogram hist;
  double total = 0;
  int iters = 0;
  do {
    auto t0 = Clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    hist.Record(static_cast<uint64_t>(s * 1e9));
    total += s;
    ++iters;
  } while (iters < min_iters || total < min_seconds);
  return {hist.Quantile(0.5), hist.Quantile(0.99)};
}

/// Whether the post-benchmark JSON trajectory sweep should run. On by
/// default (a plain `bench_eval` run records the trajectory); set
/// SMOQE_TRAJECTORY=0 when iterating on a single filtered benchmark so
/// minutes of sweep don't follow every run (and the checked-in
/// BENCH_*.json isn't clobbered from the repo root). Always off in
/// non-NDEBUG builds — Debug rows must never enter the recorded history.
inline bool TrajectoryEnabled() {
#ifndef NDEBUG
  return false;
#else
  const char* env = std::getenv("SMOQE_TRAJECTORY");
  return env == nullptr || std::string(env) != "0";
#endif
}

/// Document sizes for the JSON sweep; override with SMOQE_BENCH_SIZES
/// (comma-separated) to keep CI smoke runs small.
inline std::vector<size_t> TrajectorySizes() {
  const char* env = std::getenv("SMOQE_BENCH_SIZES");
  if (env == nullptr || *env == '\0') return {1000, 10000, 100000};
  std::vector<size_t> sizes;
  size_t cur = 0;
  bool have = false;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      cur = cur * 10 + static_cast<size_t>(*p - '0');
      have = true;
    } else {
      if (have) sizes.push_back(cur);
      cur = 0;
      have = false;
      if (*p == '\0') break;
    }
  }
  return sizes.empty() ? std::vector<size_t>{1000} : sizes;
}

}  // namespace smoqe::bench

#endif  // SMOQE_BENCH_BENCH_UTIL_H_
