#ifndef SMOQE_BENCH_BENCH_UTIL_H_
#define SMOQE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "src/automata/mfa.h"
#include "src/rxpath/parser.h"
#include "src/workload/workloads.h"
#include "src/xml/serializer.h"

namespace smoqe::bench {

/// Cached corpus: one generated document per (schema, size), shared by all
/// benchmarks in a binary so the tables sweep sizes without regenerating.
class Corpus {
 public:
  static Corpus& Get() {
    static Corpus corpus;
    return corpus;
  }

  const xml::Document& Hospital(size_t nodes) {
    auto it = hospital_.find(nodes);
    if (it == hospital_.end()) {
      auto doc = workload::GenHospital(/*seed=*/1234, nodes, names_);
      Check(doc.ok(), "hospital generation");
      it = hospital_
               .emplace(nodes, std::make_unique<xml::Document>(doc.MoveValue()))
               .first;
    }
    return *it->second;
  }

  const std::string& HospitalText(size_t nodes) {
    auto it = hospital_text_.find(nodes);
    if (it == hospital_text_.end()) {
      it = hospital_text_
               .emplace(nodes, xml::SerializeDocument(Hospital(nodes)))
               .first;
    }
    return it->second;
  }

  const xml::Document& Org(size_t nodes) {
    auto it = org_.find(nodes);
    if (it == org_.end()) {
      auto doc = workload::GenOrg(/*seed=*/99, nodes, names_);
      Check(doc.ok(), "org generation");
      it = org_.emplace(nodes, std::make_unique<xml::Document>(doc.MoveValue()))
               .first;
    }
    return *it->second;
  }

  const std::shared_ptr<xml::NameTable>& names() { return names_; }

  /// Compiles (and caches) a query MFA against the shared name table.
  const automata::Mfa& Mfa(const std::string& query) {
    auto it = mfas_.find(query);
    if (it == mfas_.end()) {
      auto q = rxpath::ParseQuery(query);
      Check(q.ok(), "query parse");
      auto mfa = automata::Mfa::Compile(**q, names_);
      Check(mfa.ok(), "mfa compile");
      it = mfas_
               .emplace(query,
                        std::make_unique<automata::Mfa>(mfa.MoveValue()))
               .first;
    }
    return *it->second;
  }

  static void Check(bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench setup failed: %s\n", what);
      std::abort();
    }
  }

 private:
  Corpus() : names_(xml::NameTable::Create()) {}

  std::shared_ptr<xml::NameTable> names_;
  std::map<size_t, std::unique_ptr<xml::Document>> hospital_;
  std::map<size_t, std::string> hospital_text_;
  std::map<size_t, std::unique_ptr<xml::Document>> org_;
  std::map<std::string, std::unique_ptr<automata::Mfa>> mfas_;
};

}  // namespace smoqe::bench

#endif  // SMOQE_BENCH_BENCH_UTIL_H_
