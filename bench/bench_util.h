#ifndef SMOQE_BENCH_BENCH_UTIL_H_
#define SMOQE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/automata/mfa.h"
#include "src/common/counters.h"
#include "src/rxpath/parser.h"
#include "src/workload/workloads.h"
#include "src/xml/serializer.h"

namespace smoqe::bench {

/// Cached corpus: one generated document per (schema, size), shared by all
/// benchmarks in a binary so the tables sweep sizes without regenerating.
class Corpus {
 public:
  static Corpus& Get() {
    static Corpus corpus;
    return corpus;
  }

  const xml::Document& Hospital(size_t nodes) {
    auto it = hospital_.find(nodes);
    if (it == hospital_.end()) {
      auto doc = workload::GenHospital(/*seed=*/1234, nodes, names_);
      Check(doc.ok(), "hospital generation");
      it = hospital_
               .emplace(nodes, std::make_unique<xml::Document>(doc.MoveValue()))
               .first;
    }
    return *it->second;
  }

  const std::string& HospitalText(size_t nodes) {
    auto it = hospital_text_.find(nodes);
    if (it == hospital_text_.end()) {
      it = hospital_text_
               .emplace(nodes, xml::SerializeDocument(Hospital(nodes)))
               .first;
    }
    return it->second;
  }

  /// Deep-genealogy hospital variant (GenHospitalDeep): same schema and
  /// vocabulary, ancestry chains tens of patients deep — the recursion ×
  /// predicates regime the hot-path optimizations target.
  const xml::Document& HospitalDeep(size_t nodes) {
    auto it = hospital_deep_.find(nodes);
    if (it == hospital_deep_.end()) {
      auto doc = workload::GenHospitalDeep(/*seed=*/1234, nodes, names_);
      Check(doc.ok(), "deep hospital generation");
      it = hospital_deep_
               .emplace(nodes, std::make_unique<xml::Document>(doc.MoveValue()))
               .first;
    }
    return *it->second;
  }

  const xml::Document& Org(size_t nodes) {
    auto it = org_.find(nodes);
    if (it == org_.end()) {
      auto doc = workload::GenOrg(/*seed=*/99, nodes, names_);
      Check(doc.ok(), "org generation");
      it = org_.emplace(nodes, std::make_unique<xml::Document>(doc.MoveValue()))
               .first;
    }
    return *it->second;
  }

  const std::shared_ptr<xml::NameTable>& names() { return names_; }

  /// Compiles (and caches) a query MFA against the shared name table.
  const automata::Mfa& Mfa(const std::string& query) {
    auto it = mfas_.find(query);
    if (it == mfas_.end()) {
      auto q = rxpath::ParseQuery(query);
      Check(q.ok(), "query parse");
      auto mfa = automata::Mfa::Compile(**q, names_);
      Check(mfa.ok(), "mfa compile");
      it = mfas_
               .emplace(query,
                        std::make_unique<automata::Mfa>(mfa.MoveValue()))
               .first;
    }
    return *it->second;
  }

  static void Check(bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench setup failed: %s\n", what);
      std::abort();
    }
  }

 private:
  Corpus() : names_(xml::NameTable::Create()) {}

  std::shared_ptr<xml::NameTable> names_;
  std::map<size_t, std::unique_ptr<xml::Document>> hospital_;
  std::map<size_t, std::unique_ptr<xml::Document>> hospital_deep_;
  std::map<size_t, std::string> hospital_text_;
  std::map<size_t, std::unique_ptr<xml::Document>> org_;
  std::map<std::string, std::unique_ptr<automata::Mfa>> mfas_;
};

// ---------------------------------------------------------------------
// JSON trajectory reporting — BENCH_*.json files recorded per PR so the
// perf history of the hot path is tracked in-repo (ROADMAP north star).
// ---------------------------------------------------------------------

/// One measured configuration: engine × workload × query × size × option
/// set, with throughput and the hot-path counters.
struct TrajectoryRow {
  std::string engine;    ///< "hype_dom" | "hype_stax" | ...
  std::string workload;  ///< "hospital" | "org". Rows are keyed by
                         ///< (workload, query, nodes): the hospital desc-*
                         ///< queries run over the deep-genealogy document
                         ///< variant (see WriteTrajectory in bench_eval.cc).
  std::string query;     ///< bench query id
  std::string config;    ///< "opt_all" | "opt_none" | "no_dispatch" | ...
  uint64_t nodes = 0;
  uint64_t answers = 0;
  double ns_per_node = 0;
  double nodes_per_sec = 0;
  uint64_t max_active_pairs = 0;
  uint64_t guard_pool_entries = 0;
  uint64_t guard_pool_hits = 0;
  uint64_t run_dedup_probes = 0;
};

/// Collects TrajectoryRows and writes them as a JSON array. Output schema
/// is flat so downstream diffing stays trivial (`jq` over BENCH_*.json).
class JsonReport {
 public:
  void Add(TrajectoryRow row) { rows_.push_back(std::move(row)); }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("[\n", f);
    bool ok = true;
    for (size_t i = 0; i < rows_.size(); ++i) {
      const TrajectoryRow& r = rows_[i];
      ok &= 0 <= std::fprintf(
          f,
          "  {\"engine\": \"%s\", \"workload\": \"%s\", \"query\": \"%s\", "
          "\"config\": \"%s\", \"nodes\": %llu, \"answers\": %llu, "
          "\"ns_per_node\": %.2f, \"nodes_per_sec\": %.0f, "
          "\"max_active_pairs\": %llu, \"guard_pool_entries\": %llu, "
          "\"guard_pool_hits\": %llu, \"run_dedup_probes\": %llu}%s\n",
          Escape(r.engine).c_str(), Escape(r.workload).c_str(),
          Escape(r.query).c_str(), Escape(r.config).c_str(),
          static_cast<unsigned long long>(r.nodes),
          static_cast<unsigned long long>(r.answers), r.ns_per_node,
          r.nodes_per_sec, static_cast<unsigned long long>(r.max_active_pairs),
          static_cast<unsigned long long>(r.guard_pool_entries),
          static_cast<unsigned long long>(r.guard_pool_hits),
          static_cast<unsigned long long>(r.run_dedup_probes),
          i + 1 < rows_.size() ? "," : "");
    }
    ok &= std::fputs("]\n", f) >= 0;
    ok &= std::ferror(f) == 0;
    ok &= std::fclose(f) == 0;
    return ok;
  }

  size_t size() const { return rows_.size(); }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<TrajectoryRow> rows_;
};

/// Times `fn` (one evaluation per call): warms up once, then repeats until
/// both `min_iters` and `min_seconds` are reached. Returns ns per call.
template <typename Fn>
double MeasureNsPerIter(Fn&& fn, int min_iters = 3,
                        double min_seconds = 0.10) {
  using Clock = std::chrono::steady_clock;
  fn();  // warmup (also populates corpus caches)
  int iters = 0;
  double elapsed = 0;
  auto start = Clock::now();
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (iters < min_iters || elapsed < min_seconds);
  return elapsed * 1e9 / iters;
}

/// Whether the post-benchmark JSON trajectory sweep should run. On by
/// default (a plain `bench_eval` run records the trajectory); set
/// SMOQE_TRAJECTORY=0 when iterating on a single filtered benchmark so
/// minutes of sweep don't follow every run (and the checked-in
/// BENCH_*.json isn't clobbered from the repo root).
inline bool TrajectoryEnabled() {
  const char* env = std::getenv("SMOQE_TRAJECTORY");
  return env == nullptr || std::string(env) != "0";
}

/// Document sizes for the JSON sweep; override with SMOQE_BENCH_SIZES
/// (comma-separated) to keep CI smoke runs small.
inline std::vector<size_t> TrajectorySizes() {
  const char* env = std::getenv("SMOQE_BENCH_SIZES");
  if (env == nullptr || *env == '\0') return {1000, 10000, 100000};
  std::vector<size_t> sizes;
  size_t cur = 0;
  bool have = false;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      cur = cur * 10 + static_cast<size_t>(*p - '0');
      have = true;
    } else {
      if (have) sizes.push_back(cur);
      cur = 0;
      have = false;
      if (*p == '\0') break;
    }
  }
  return sizes.empty() ? std::vector<size_t>{1000} : sizes;
}

}  // namespace smoqe::bench

#endif  // SMOQE_BENCH_BENCH_UTIL_H_
