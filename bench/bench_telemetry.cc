// Experiment E14 (DESIGN.md §8.6): telemetry overhead on the facade hot
// path.
//
// The subsystem's budget is <2% on the repeated-query path — the
// plan-cache-hit Query() where per-call work is smallest and the relative
// cost of instrumentation largest. Configs:
//
//   * telemetry_on   — EngineOptions default: counters + histograms +
//                      trace spans + audit records on every call;
//   * telemetry_off  — telemetry.enabled = false: the facade runs the
//                      *Impl bodies with a null trace and no registry;
//   * metrics_only   — tracing sampled out (trace_sample_every huge), so
//                      the span/audit share of the overhead is visible.
//
// Rows merge into BENCH_eval.json as engine="facade_query" with the
// config naming the telemetry state; the on/off ns_per_node ratio is the
// recorded overhead. The google-benchmark section gives the interactive
// view of the same comparison.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/core/smoqe.h"
#include "src/telemetry/metrics.h"

namespace smoqe {
namespace {

using bench::Corpus;

// The E10 hot-path query: recursion + predicate, cache-hit after the
// first call, DOM mode.
constexpr char kHotQuery[] =
    "//patient[visit/treatment/medication = 'autism']/pname";

std::unique_ptr<core::Smoqe> MakeEngine(size_t size, bool telemetry_on,
                                        uint64_t trace_sample_every = 1) {
  core::EngineOptions o;
  o.max_threads = 1;  // serial: measure instrumentation, not the pool
  o.telemetry.enabled = telemetry_on;
  o.telemetry.trace_sample_every = trace_sample_every;
  auto engine = std::make_unique<core::Smoqe>(o);
  Corpus::Check(
      engine->RegisterDtd("hospital", workload::kHospitalDtd, "hospital")
          .ok(),
      "dtd");
  Corpus::Check(
      engine->LoadDocument("ward", Corpus::Get().HospitalText(size)).ok(),
      "doc");
  return engine;
}

void FacadeQuery(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const bool telemetry_on = state.range(1) != 0;
  auto engine = MakeEngine(size, telemetry_on);
  for (auto _ : state) {
    auto r = engine->Query("ward", kHotQuery, {});
    Corpus::Check(r.ok(), "query");
    benchmark::DoNotOptimize(*r);
  }
  state.SetLabel(telemetry_on ? "telemetry_on" : "telemetry_off");
}

void RegisterAll() {
  for (long size : {10000, 100000}) {
    for (long on : {1, 0}) {
      benchmark::RegisterBenchmark("FacadeQuery", &FacadeQuery)
          ->Args({size, on})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace

// E14 trajectory: facade_query rows, one per telemetry config, with the
// measured per-call latency percentiles.
//
// The configs are measured in INTERLEAVED rounds (build all engines,
// then round-robin short timing windows) rather than one sequential
// window per config: the recorded result is an on/off *ratio*, and
// clock drift or a frequency change between sequential windows shows up
// directly as fake overhead — measured ~7% at 100k nodes on a shared
// container, while the interleaved estimate agrees with the
// google-benchmark section at <1%.
void WriteTelemetryTrajectory(const char* path) {
  bench::JsonReport report;
  for (size_t size : bench::TrajectorySizes()) {
    const uint64_t nodes = Corpus::Get().Hospital(size).num_nodes();
    struct Config {
      const char* name;
      bool enabled;
      uint64_t sample_every;
    };
    constexpr int kConfigs = 3;
    const Config configs[kConfigs] = {
        {"telemetry_on", true, 1},
        {"telemetry_off", false, 1},
        {"metrics_only", true, 1u << 30},  // spans sampled out
    };

    std::unique_ptr<core::Smoqe> engines[kConfigs];
    uint64_t answers = 0;
    for (int c = 0; c < kConfigs; ++c) {
      engines[c] = MakeEngine(size, configs[c].enabled,
                              configs[c].sample_every);
      // Warm the plan cache so every measured call is the hot path.
      auto r = engines[c]->Query("ward", kHotQuery, {});
      Corpus::Check(r.ok(), "warm query");
      answers = r->stats.answers;
    }

    double best_ns[kConfigs] = {1e300, 1e300, 1e300};
    telemetry::Histogram hists[kConfigs];
    const auto sweep_start = std::chrono::steady_clock::now();
    int rounds = 0;
    do {
      for (int c = 0; c < kConfigs; ++c) {
        telemetry::Histogram& hist = hists[c];
        double& best = best_ns[c];
        const double window_ns = bench::MeasureMinNsPerIter(
            [&engine = *engines[c], &hist] {
              const auto t0 = std::chrono::steady_clock::now();
              auto r = engine.Query("ward", kHotQuery, {});
              Corpus::Check(r.ok(), "query");
              hist.Record(static_cast<uint64_t>(
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count() *
                  1e9));
            },
            /*min_iters=*/5, /*min_seconds=*/0.05);
        if (window_ns < best) best = window_ns;
      }
      ++rounds;
    } while (rounds < 4 ||
             std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           sweep_start)
                     .count() < 1.0);

    for (int c = 0; c < kConfigs; ++c) {
      bench::TrajectoryRow row;
      row.engine = "facade_query";
      row.workload = "hospital";
      row.query = "hot-pred";
      row.config = configs[c].name;
      row.nodes = nodes;
      row.answers = answers;
      row.ns_per_node = best_ns[c] / static_cast<double>(nodes);
      row.nodes_per_sec = static_cast<double>(nodes) * 1e9 / best_ns[c];
      row.p50_ns = hists[c].Quantile(0.5);
      row.p99_ns = hists[c].Quantile(0.99);
      report.Add(std::move(row));
    }
    std::fprintf(stderr,
                 "telemetry size=%zu: on %.1f us, off %.1f us "
                 "(overhead %.2f%%, %d rounds)\n",
                 size, best_ns[0] / 1e3, best_ns[1] / 1e3,
                 best_ns[1] > 0 ? (best_ns[0] / best_ns[1] - 1.0) * 100.0
                                : 0.0,
                 rounds);
  }
  if (!report.WriteFileMerged(path, {"facade_query"})) {
    std::fprintf(stderr, "failed to write %s\n", path);
  } else {
    std::fprintf(stderr, "merged %zu telemetry trajectory rows into %s\n",
                 report.size(), path);
  }
}

}  // namespace smoqe

// Custom main: after the google-benchmark run, record the E14 overhead
// rows into the shared trajectory file.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoqe::bench::TrajectoryEnabled()) {
    smoqe::WriteTelemetryTrajectory("BENCH_eval.json");
  }
  return 0;
}
