// Experiment E16 (DESIGN.md §10): the network front door's toll.
//
// smoqed adds a loopback TCP hop, framing, and a worker handoff on top
// of the library facade. This benchmark prices that toll on the
// cache-warm hot query — the path where the engine's own work is
// smallest and the serving layer's relative cost is largest. Configs,
// all merged into BENCH_eval.json as engine="server_loopback":
//
//   library_direct   — Smoqe::Query in-process: the floor the server
//                      is measured against;
//   server_roundtrip — one request, one response, one connection: the
//                      full wire path (encode → epoll → worker →
//                      session → encode → read) per call;
//   server_pipelined — windows of 16 pipelined requests on one
//                      connection: amortizes the syscall round-trip,
//                      the number a batching client actually sees.
//
// p50/p99_ns are per-request latency from the same samples the
// throughput comes from (MeasureLatencyPercentiles' histogram), so the
// recorded tail and a production `smoqe-cli stat` histogram read the
// same way. The shape to check: server_pipelined within a small factor
// of library_direct (the engine dominates), server_roundtrip above both
// by roughly the loopback syscall cost.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/smoqe.h"
#include "src/server/client.h"
#include "src/server/test_server.h"

namespace smoqe {
namespace {

using bench::Corpus;
using Clock = std::chrono::steady_clock;

constexpr char kHotQuery[] =
    "hospital/patient[visit/treatment/test]/visit/date";
constexpr int kWindow = 16;  // pipelined requests per timed window

std::unique_ptr<core::Smoqe> MakeEngine(size_t size) {
  core::EngineOptions o;
  o.max_threads = 4;
  auto engine = std::make_unique<core::Smoqe>(o);
  Corpus::Check(
      engine->LoadDocument("ward", Corpus::Get().HospitalText(size)).ok(),
      "load ward");
  return engine;
}

void WriteServerTrajectory(const char* path) {
  bench::JsonReport report;
  for (size_t size : bench::TrajectorySizes()) {
    auto engine = MakeEngine(size);
    const uint64_t nodes = Corpus::Get().Hospital(size).num_nodes();

    // Warm the plan cache and pin the answer count.
    auto warm = engine->Query("ward", kHotQuery);
    Corpus::Check(warm.ok(), "warm query");
    const uint64_t answers = warm->stats.answers;

    server::TestServer server(engine.get());
    Corpus::Check(server.ok(), "server start");
    server::ClientOptions co;
    co.port = server.port();
    co.recv_timeout_ms = 60'000;
    auto client = server::Client::Connect(co);
    Corpus::Check(client.ok(), "client connect");

    struct Config {
      const char* name;
      double per_request_ns;
      bench::LatencyPercentiles lat;
    } configs[3] = {{"library_direct", 0, {}},
                    {"server_roundtrip", 0, {}},
                    {"server_pipelined", 0, {}}};

    {  // library_direct: the in-process floor.
      const auto t0 = Clock::now();
      int calls = 0;
      configs[0].lat = bench::MeasureLatencyPercentiles(
          [&] {
            auto r = engine->Query("ward", kHotQuery);
            Corpus::Check(r.ok(), "library query");
            ++calls;
          },
          /*min_iters=*/50, /*min_seconds=*/0.5);
      configs[0].per_request_ns =
          std::chrono::duration<double>(Clock::now() - t0).count() * 1e9 /
          calls;
    }

    {  // server_roundtrip: one request in flight.
      const auto t0 = Clock::now();
      int calls = 0;
      configs[1].lat = bench::MeasureLatencyPercentiles(
          [&] {
            server::QueryRequest q;
            q.doc = "ward";
            q.query = kHotQuery;
            auto r = client->Query(q);
            Corpus::Check(r.ok() && r->code == server::WireCode::kOk,
                          "server query");
            ++calls;
          },
          /*min_iters=*/50, /*min_seconds=*/0.5);
      configs[1].per_request_ns =
          std::chrono::duration<double>(Clock::now() - t0).count() * 1e9 /
          calls;
    }

    {  // server_pipelined: timed per window, reported per request.
      const auto t0 = Clock::now();
      int windows = 0;
      telemetry::Histogram per_request;
      const auto start = Clock::now();
      double total = 0;
      int iters = 0;
      do {
        const auto w0 = Clock::now();
        std::string burst;
        std::vector<uint64_t> ids;
        for (int i = 0; i < kWindow; ++i) {
          server::QueryRequest q;
          q.id = client->NextId();
          q.doc = "ward";
          q.query = kHotQuery;
          burst += server::Encode(q);
          ids.push_back(q.id);
        }
        Corpus::Check(client->SendBytes(burst).ok(), "pipeline send");
        for (uint64_t id : ids) {
          auto frame = client->ReceiveFrame();
          Corpus::Check(frame.ok(), "pipeline recv");
          auto resp = server::DecodeQueryResponse(frame->body);
          Corpus::Check(resp.ok() && resp->id == id &&
                            resp->code == server::WireCode::kOk,
                        "pipeline response");
        }
        const double s =
            std::chrono::duration<double>(Clock::now() - w0).count();
        per_request.Record(static_cast<uint64_t>(s * 1e9 / kWindow));
        total += s;
        ++iters;
        ++windows;
      } while (iters < 10 || total < 0.5);
      configs[2].lat = {per_request.Quantile(0.5), per_request.Quantile(0.99)};
      configs[2].per_request_ns =
          std::chrono::duration<double>(Clock::now() - start).count() * 1e9 /
          (static_cast<double>(windows) * kWindow);
      (void)t0;
    }

    for (const Config& c : configs) {
      bench::TrajectoryRow row;
      row.engine = "server_loopback";
      row.workload = "hospital";
      row.query = "warm-slice";
      row.config = c.name;
      row.nodes = nodes;
      row.answers = answers;
      row.ns_per_node = c.per_request_ns / static_cast<double>(nodes);
      row.nodes_per_sec =
          static_cast<double>(nodes) * 1e9 / c.per_request_ns;
      row.p50_ns = c.lat.p50_ns;
      row.p99_ns = c.lat.p99_ns;
      report.Add(std::move(row));
    }
    std::fprintf(
        stderr,
        "server size=%zu: library %.1f us, roundtrip %.1f us, "
        "pipelined %.1f us/req (server toll %.2fx, pipelined %.2fx)\n",
        size, configs[0].per_request_ns / 1e3,
        configs[1].per_request_ns / 1e3, configs[2].per_request_ns / 1e3,
        configs[1].per_request_ns / configs[0].per_request_ns,
        configs[2].per_request_ns / configs[0].per_request_ns);
  }

  if (!report.WriteFileMerged(path, {"server_loopback"})) {
    std::fprintf(stderr, "failed to write %s\n", path);
  } else {
    std::fprintf(stderr, "merged %zu server trajectory rows into %s\n",
                 report.size(), path);
  }
}

}  // namespace
}  // namespace smoqe

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoqe::bench::TrajectoryEnabled()) {
    smoqe::WriteServerTrajectory("BENCH_eval.json");
  }
  return 0;
}
