// Experiment E15 (DESIGN.md §9.5): guardrail overhead and deadline
// precision on the facade hot path.
//
// The guardrail budget is <2% on the repeated-query path — the
// plan-cache-hit Query() where per-call work is smallest and the
// relative cost of the deadline clock reads and budget flushes is
// largest. Configs:
//
//   * guard_off — no RequestOptions: MakeGuard returns null and the
//                 evaluators run their null-ticker fast path;
//   * guard_on  — a deadline and a memory budget that never trip (60s /
//                 1 GiB), so every amortized check runs and the arena /
//                 run-expansion charges flow into the budget.
//
// Both rows merge into BENCH_eval.json as engine="facade_query" (the
// same key bench_telemetry uses), measured in INTERLEAVED rounds for the
// same reason documented there: the recorded result is an on/off ratio,
// and sequential windows turn clock drift into fake overhead.
//
// A third row records deadline *precision*: a governed batch whose
// ungoverned runtime is calibrated to several times the 50ms deadline;
// p50/p99_ns hold the measured overshoot past the deadline (detection
// latency), which DESIGN.md §9 bounds at the +20ms slack.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/smoqe.h"
#include "src/telemetry/metrics.h"

namespace smoqe {
namespace {

using bench::Corpus;
using Clock = std::chrono::steady_clock;

constexpr char kHotQuery[] =
    "//patient[visit/treatment/medication = 'autism']/pname";

core::RequestOptions NeverTrips() {
  core::RequestOptions req;
  req.deadline_ms = 60'000;
  req.max_memory_bytes = 1ull << 30;
  return req;
}

std::unique_ptr<core::Smoqe> MakeEngine(size_t size) {
  core::EngineOptions o;
  o.max_threads = 1;  // serial: measure the guard, not the pool
  auto engine = std::make_unique<core::Smoqe>(o);
  Corpus::Check(
      engine->RegisterDtd("hospital", workload::kHospitalDtd, "hospital")
          .ok(),
      "dtd");
  Corpus::Check(
      engine->LoadDocument("ward", Corpus::Get().HospitalText(size)).ok(),
      "doc");
  return engine;
}

void FacadeQueryGuard(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const bool guarded = state.range(1) != 0;
  auto engine = MakeEngine(size);
  const core::RequestOptions req = NeverTrips();
  for (auto _ : state) {
    auto r = guarded ? engine->Query("ward", kHotQuery, {}, req)
                     : engine->Query("ward", kHotQuery, {});
    Corpus::Check(r.ok(), "query");
    benchmark::DoNotOptimize(*r);
  }
  state.SetLabel(guarded ? "guard_on" : "guard_off");
}

void RegisterAll() {
  for (long size : {10000, 100000}) {
    for (long guarded : {1, 0}) {
      benchmark::RegisterBenchmark("FacadeQueryGuard", &FacadeQueryGuard)
          ->Args({size, guarded})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace

// E15 trajectory: guard_on / guard_off interleaved rounds per size, plus
// the deadline-precision row at the largest size.
void WriteGuardrailTrajectory(const char* path) {
  bench::JsonReport report;
  for (size_t size : bench::TrajectorySizes()) {
    const uint64_t nodes = Corpus::Get().Hospital(size).num_nodes();
    constexpr int kConfigs = 2;
    const char* config_names[kConfigs] = {"guard_on", "guard_off"};
    const core::RequestOptions reqs[kConfigs] = {NeverTrips(), {}};

    std::unique_ptr<core::Smoqe> engines[kConfigs];
    uint64_t answers = 0;
    for (int c = 0; c < kConfigs; ++c) {
      engines[c] = MakeEngine(size);
      auto r = engines[c]->Query("ward", kHotQuery, {});  // warm the cache
      Corpus::Check(r.ok(), "warm query");
      answers = r->stats.answers;
    }

    double best_ns[kConfigs] = {1e300, 1e300};
    telemetry::Histogram hists[kConfigs];
    const auto sweep_start = Clock::now();
    int rounds = 0;
    do {
      for (int c = 0; c < kConfigs; ++c) {
        telemetry::Histogram& hist = hists[c];
        double& best = best_ns[c];
        const core::RequestOptions& req = reqs[c];
        const double window_ns = bench::MeasureMinNsPerIter(
            [&engine = *engines[c], &req, &hist] {
              const auto t0 = Clock::now();
              auto r = engine.Query("ward", kHotQuery, {}, req);
              Corpus::Check(r.ok(), "query");
              hist.Record(static_cast<uint64_t>(
                  std::chrono::duration<double>(Clock::now() - t0).count() *
                  1e9));
            },
            /*min_iters=*/5, /*min_seconds=*/0.05);
        if (window_ns < best) best = window_ns;
      }
      ++rounds;
    } while (rounds < 4 ||
             std::chrono::duration<double>(Clock::now() - sweep_start)
                     .count() < 1.0);

    for (int c = 0; c < kConfigs; ++c) {
      bench::TrajectoryRow row;
      row.engine = "facade_query";
      row.workload = "hospital";
      row.query = "hot-pred";
      row.config = config_names[c];
      row.nodes = nodes;
      row.answers = answers;
      row.ns_per_node = best_ns[c] / static_cast<double>(nodes);
      row.nodes_per_sec = static_cast<double>(nodes) * 1e9 / best_ns[c];
      row.p50_ns = hists[c].Quantile(0.5);
      row.p99_ns = hists[c].Quantile(0.99);
      report.Add(std::move(row));
    }
    std::fprintf(stderr,
                 "guardrail size=%zu: on %.1f us, off %.1f us "
                 "(overhead %.2f%%, %d rounds)\n",
                 size, best_ns[0] / 1e3, best_ns[1] / 1e3,
                 best_ns[1] > 0 ? (best_ns[0] / best_ns[1] - 1.0) * 100.0
                                : 0.0,
                 rounds);
  }

  // Deadline precision: calibrate a StAX batch to several times the 50ms
  // deadline, then repeatedly measure how far past the deadline the
  // DeadlineExceeded return lands.
  {
    const size_t size = bench::TrajectorySizes().back();
    auto engine = MakeEngine(size);
    core::QueryOptions stax;
    stax.mode = core::EvalMode::kStax;
    std::vector<core::BatchQueryItem> items;
    for (int i = 0; i < 8; ++i) items.push_back({kHotQuery, stax});
    while (items.size() < 1024) {
      const auto t0 = Clock::now();
      Corpus::Check(engine->QueryBatch("ward", items).ok(), "calibrate");
      if (std::chrono::duration<double>(Clock::now() - t0).count() >= 0.25) {
        break;
      }
      const std::vector<core::BatchQueryItem> half = items;
      items.insert(items.end(), half.begin(), half.end());
    }
    constexpr uint64_t kDeadlineMs = 50;
    core::RequestOptions req;
    req.deadline_ms = kDeadlineMs;
    telemetry::Histogram overshoot;
    for (int i = 0; i < 12; ++i) {
      const auto t0 = Clock::now();
      auto r = engine->QueryBatch("ward", items, req);
      const double elapsed_ns =
          std::chrono::duration<double>(Clock::now() - t0).count() * 1e9;
      Corpus::Check(!r.ok() && r.status().code() ==
                                   StatusCode::kDeadlineExceeded,
                    "deadline must trip");
      const double over = elapsed_ns - static_cast<double>(kDeadlineMs) * 1e6;
      overshoot.Record(over > 0 ? static_cast<uint64_t>(over) : 0);
    }
    bench::TrajectoryRow row;
    row.engine = "facade_query";
    row.workload = "hospital";
    row.query = "hot-pred";
    row.config = "deadline_precision_50ms";
    row.nodes = Corpus::Get().Hospital(size).num_nodes();
    row.answers = 0;  // the call is cut off — by design it returns none
    row.p50_ns = overshoot.Quantile(0.5);
    row.p99_ns = overshoot.Quantile(0.99);
    std::fprintf(stderr,
                 "deadline precision (%zu-item batch): overshoot p50 %.2fms "
                 "p99 %.2fms past the 50ms deadline\n",
                 items.size(), row.p50_ns / 1e6, row.p99_ns / 1e6);
    report.Add(std::move(row));
  }

  if (!report.WriteFileMerged(path, {"facade_query"})) {
    std::fprintf(stderr, "failed to write %s\n", path);
  } else {
    std::fprintf(stderr, "merged %zu guardrail trajectory rows into %s\n",
                 report.size(), path);
  }
}

}  // namespace smoqe

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoqe::bench::TrajectoryEnabled()) {
    smoqe::WriteGuardrailTrajectory("BENCH_eval.json");
  }
  return 0;
}
