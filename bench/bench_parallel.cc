// Experiment E13 (DESIGN.md §4, §7): parallel query serving.
//
// PR 3 made N queries share one scan (E11); PR 5 makes the engine use all
// the cores the hardware has. Rows sweep threads ∈ {1, 2, 4, 8} over
//
//   parallel_stax_batch — BatchEvaluator::RunParallel on the E11 16-query
//                         service mix: one shared tokenizer, per-plan
//                         engine advancement fanned across the pool
//                         (threads=1 = the serial Run baseline);
//   parallel_dom_batch  — Smoqe::QueryBatch with every mix item in DOM
//                         mode: independent items fanned across the pool
//                         against one pinned snapshot;
//   parallel_rwmix      — the read side of a live document: QueryBatch
//                         rounds measured while one background writer
//                         applies updates continuously (epoch-pinned
//                         snapshots mean readers never block on it).
//
// The shape to check: aggregate throughput (nodes_per_sec) rising with
// the thread count on multi-core hosts, and the rwmix rows close to the
// read-only rows (the writer steals one core's worth of work but never a
// lock readers wait on). Acceptance floor: ≥ 3× at 8 threads vs 1 thread
// on the 16-query mix at 100k nodes — on a host with ≥ 8 cores; a 1-core
// container records ~1× (the sweep still validates correctness: parallel
// answers are differential-checked against serial before any row).
//
// Every row records its thread count in the JSON schema ("threads") so
// downstream diffs never compare serial and parallel rows blind.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/thread_pool.h"
#include "src/core/smoqe.h"
#include "src/eval/batch.h"
#include "src/workload/workloads.h"

namespace smoqe {
namespace {

using bench::Corpus;

/// The E11 deterministic service mix (see bench_batch.cc for the
/// composition rationale: selective slices + scans + 1/16 heavy
/// recursive analytics), cycled to size n.
std::vector<std::string> QueryMix(size_t n) {
  static const std::vector<std::string> kBase = {
      "hospital/patient/pname",
      "hospital/patient/visit/treatment/medication",
      "hospital/patient[visit/treatment/test]/visit/date",
      "hospital/patient[(parent/patient)*/visit/treatment/test and "
      "visit/treatment[medication/text()='headache']]/pname",
      "hospital/patient/(parent/patient)*/pname",
      "//medication",
      "//parent/patient/visit/treatment/test",
      "//visit/date",
      "//patient[visit/treatment/medication = 'autism']/pname",
      "//patient[parent]/pname",
      "//patient/visit/treatment",
      "//treatment[medication]",
      "//patient[not(visit/treatment/test)]/pname",
      "//pname | //date",
      "//patient[visit/treatment[medication = 'flu'] and "
      "not(parent)]/visit/date",
      "//patient[.//medication = 'autism']/pname",
  };
  std::vector<std::string> mix;
  mix.reserve(n);
  for (size_t i = 0; i < n; ++i) mix.push_back(kBase[i % kBase.size()]);
  return mix;
}

std::vector<const automata::Mfa*> CompileMix(
    const std::vector<std::string>& mix) {
  std::vector<const automata::Mfa*> plans;
  plans.reserve(mix.size());
  for (const std::string& q : mix) plans.push_back(&Corpus::Get().Mfa(q));
  return plans;
}

/// A facade engine over the corpus hospital document at `size`, with the
/// research view for the rwmix writer. One per (size, threads) config.
std::unique_ptr<core::Smoqe> MakeEngine(size_t size, int threads) {
  core::EngineOptions o;
  o.max_threads = threads;
  auto engine = std::make_unique<core::Smoqe>(o);
  Corpus::Check(
      engine->RegisterDtd("hospital", workload::kHospitalDtd, "hospital").ok(),
      "bench dtd");
  Corpus::Check(
      engine->LoadDocument("ward", Corpus::Get().HospitalText(size)).ok(),
      "bench load");
  Corpus::Check(engine
                    ->DefineView("research", "hospital",
                                 workload::kHospitalPolicyResearch)
                    .ok(),
                "bench view");
  return engine;
}

std::vector<core::BatchQueryItem> DomItems(size_t n) {
  std::vector<core::BatchQueryItem> items;
  for (const std::string& q : QueryMix(n)) {
    core::BatchQueryItem it;
    it.query = q;
    it.options.mode = core::EvalMode::kDom;
    items.push_back(std::move(it));
  }
  return items;
}

// ---------------------------------------------------------------------
// google-benchmark entries (interactive sweeps; the recorded trajectory
// is WriteParallelTrajectory below).
// ---------------------------------------------------------------------

void StaxBatchParallel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const std::string& text =
      Corpus::Get().HospitalText(static_cast<size_t>(state.range(2)));
  auto plans = CompileMix(QueryMix(n));
  eval::BatchEvaluator batch;
  for (const automata::Mfa* mfa : plans) batch.AddPlan(mfa);
  ThreadPool pool(threads);
  eval::BatchParallelOptions par;
  par.pool = &pool;
  size_t answers = 0;
  for (auto _ : state) {
    auto r = threads > 1 ? batch.RunParallel(text, par) : batch.Run(text);
    Corpus::Check(r.ok(), "parallel batch eval");
    answers = 0;
    for (const auto& pr : *r) answers += pr.answers.size();
    benchmark::DoNotOptimize(*r);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["threads"] = static_cast<double>(threads);
}

void DomBatchParallel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto engine = MakeEngine(static_cast<size_t>(state.range(2)), threads);
  auto items = DomItems(n);
  size_t answers = 0;
  for (auto _ : state) {
    auto r = engine->QueryBatch("ward", items);
    Corpus::Check(r.ok(), "parallel dom batch");
    answers = 0;
    for (const auto& a : *r) answers += a.answers_xml.size();
    benchmark::DoNotOptimize(*r);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["threads"] = static_cast<double>(threads);
}

void RegisterAll() {
  for (long threads : {1, 2, 4, 8}) {
    for (long size : {10000, 100000}) {
      benchmark::RegisterBenchmark(
          ("E13_StaxBatch/t=" + std::to_string(threads) +
           "/n=" + std::to_string(size))
              .c_str(),
          StaxBatchParallel)
          ->Args({16, threads, size})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("E13_DomBatch/t=" + std::to_string(threads) +
           "/n=" + std::to_string(size))
              .c_str(),
          DomBatchParallel)
          ->Args({16, threads, size})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

int dummy = (RegisterAll(), 0);

/// Differential gate: parallel answers must be byte-identical to serial
/// before any speedup row is recorded.
void CheckParallelMatchesSerial(eval::BatchEvaluator& batch,
                                const std::string& text,
                                const eval::BatchParallelOptions& par) {
  auto serial = batch.Run(text);
  Corpus::Check(serial.ok(), "serial gate eval");
  auto parallel = batch.RunParallel(text, par);
  Corpus::Check(parallel.ok(), "parallel gate eval");
  Corpus::Check(parallel->size() == serial->size(), "gate: plan count");
  for (size_t k = 0; k < serial->size(); ++k) {
    Corpus::Check(
        (*parallel)[k].answers.size() == (*serial)[k].answers.size(),
        "gate: answer count");
    for (size_t a = 0; a < (*serial)[k].answers.size(); ++a) {
      Corpus::Check(
          (*parallel)[k].answers[a].xml == (*serial)[k].answers[a].xml,
          "gate: answer bytes");
    }
  }
}

}  // namespace

// Extern (not in the anonymous namespace): called from main below.
void WriteParallelTrajectory(const char* path) {
  bench::JsonReport report;
  const size_t kMixSize = 16;
  for (size_t size : bench::TrajectorySizes()) {
    const std::string& text = Corpus::Get().HospitalText(size);
    const uint64_t nodes = Corpus::Get().Hospital(size).num_nodes();
    auto plans = CompileMix(QueryMix(kMixSize));

    double ns_1t = 0;
    for (int threads : {1, 2, 4, 8}) {
      // StAX batch behind the shared tokenizer.
      eval::BatchEvaluator batch;
      for (const automata::Mfa* mfa : plans) batch.AddPlan(mfa);
      ThreadPool pool(threads);
      eval::BatchParallelOptions par;
      par.pool = &pool;
      if (threads > 1) CheckParallelMatchesSerial(batch, text, par);
      double stax_ns = bench::MeasureMinNsPerIter([&] {
        auto r = threads > 1 ? batch.RunParallel(text, par) : batch.Run(text);
        Corpus::Check(r.ok(), "stax trajectory eval");
      });
      if (threads == 1) ns_1t = stax_ns;
      const bench::LatencyPercentiles stax_pct =
          bench::MeasureLatencyPercentiles(
              [&] {
                auto r =
                    threads > 1 ? batch.RunParallel(text, par) : batch.Run(text);
                Corpus::Check(r.ok(), "stax trajectory eval");
              },
              /*min_iters=*/20, /*min_seconds=*/0.2);

      bench::TrajectoryRow row;
      row.engine = "parallel_stax_batch";
      row.workload = "hospital";
      row.query = "mix16";
      row.config = threads > 1 ? "parallel" : "serial";
      row.nodes = nodes;
      row.threads = static_cast<uint64_t>(threads);
      row.ns_per_node = stax_ns / static_cast<double>(nodes);
      row.nodes_per_sec = static_cast<double>(kMixSize) *
                          static_cast<double>(nodes) * 1e9 / stax_ns;
      row.p50_ns = stax_pct.p50_ns;
      row.p99_ns = stax_pct.p99_ns;
      report.Add(std::move(row));

      // DOM batch through the facade (items fan out across the pool).
      auto engine = MakeEngine(size, threads);
      auto items = DomItems(kMixSize);
      double dom_ns = bench::MeasureMinNsPerIter([&] {
        auto r = engine->QueryBatch("ward", items);
        Corpus::Check(r.ok(), "dom trajectory eval");
      });
      const bench::LatencyPercentiles dom_pct =
          bench::MeasureLatencyPercentiles(
              [&] {
                auto r = engine->QueryBatch("ward", items);
                Corpus::Check(r.ok(), "dom trajectory eval");
              },
              /*min_iters=*/20, /*min_seconds=*/0.2);
      bench::TrajectoryRow dom_row;
      dom_row.engine = "parallel_dom_batch";
      dom_row.workload = "hospital";
      dom_row.query = "mix16";
      dom_row.config = threads > 1 ? "parallel" : "serial";
      dom_row.nodes = nodes;
      dom_row.threads = static_cast<uint64_t>(threads);
      dom_row.ns_per_node = dom_ns / static_cast<double>(nodes);
      dom_row.nodes_per_sec = static_cast<double>(kMixSize) *
                              static_cast<double>(nodes) * 1e9 / dom_ns;
      dom_row.p50_ns = dom_pct.p50_ns;
      dom_row.p99_ns = dom_pct.p99_ns;
      report.Add(std::move(dom_row));

      // Read/write mix: reader rounds timed under a continuous background
      // writer (the E12 research-view replace, which re-matches its own
      // replacement, so every write does real work).
      {
        auto rw_engine = MakeEngine(size, threads);
        std::atomic<bool> stop{false};
        std::atomic<uint64_t> writes{0};
        std::thread writer([&] {
          core::UpdateOptions w;
          w.view = "research";
          while (!stop.load(std::memory_order_acquire)) {
            auto u = rw_engine->Update(
                "ward",
                "replace //treatment[test] with "
                "<treatment><test>bench</test></treatment>",
                w);
            Corpus::Check(u.ok(), "rwmix write");
            writes.fetch_add(1, std::memory_order_relaxed);
          }
        });
        double rw_ns = bench::MeasureMinNsPerIter([&] {
          auto r = rw_engine->QueryBatch("ward", items);
          Corpus::Check(r.ok(), "rwmix read");
        });
        stop.store(true, std::memory_order_release);
        writer.join();

        bench::TrajectoryRow rw_row;
        rw_row.engine = "parallel_rwmix";
        rw_row.workload = "hospital";
        rw_row.query = "mix16+writer";
        rw_row.config = threads > 1 ? "parallel" : "serial";
        rw_row.nodes = nodes;
        rw_row.threads = static_cast<uint64_t>(threads);
        rw_row.answers = writes.load(std::memory_order_relaxed);
        rw_row.ns_per_node = rw_ns / static_cast<double>(nodes);
        rw_row.nodes_per_sec = static_cast<double>(kMixSize) *
                               static_cast<double>(nodes) * 1e9 / rw_ns;
        report.Add(std::move(rw_row));
      }

      std::fprintf(stderr,
                   "parallel size=%zu threads=%d: stax %.2f ms (%.2fx vs "
                   "1t), dom %.2f ms\n",
                   size, threads, stax_ns / 1e6,
                   ns_1t > 0 ? ns_1t / stax_ns : 0.0, dom_ns / 1e6);
    }
  }
  if (!report.WriteFileMerged(
          path, {"parallel_stax_batch", "parallel_dom_batch",
                 "parallel_rwmix"})) {
    std::fprintf(stderr, "failed to write %s\n", path);
  } else {
    std::fprintf(stderr, "merged %zu parallel trajectory rows into %s\n",
                 report.size(), path);
  }
}

}  // namespace smoqe

// Custom main (not benchmark_main): after the google-benchmark run, sweep
// threads × size and merge the rows into the BENCH_eval.json trajectory.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoqe::bench::TrajectoryEnabled()) {
    smoqe::WriteParallelTrajectory("BENCH_eval.json");
  }
  return 0;
}
