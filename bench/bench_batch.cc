// Experiment E11 (DESIGN.md §4, §5.2): multi-query batch evaluation.
//
// The ROADMAP's server claim: many users (roles) fire queries against the
// same documents, so the evaluator should serve N queries from ONE
// streaming scan instead of N scans. Rows compare
//
//   hype_stax_seq    — N independent EvalHypeStax passes (the pre-service
//                      baseline: tokenize + evaluate, N times), vs
//   hype_stax_batch  — one BatchEvaluator::Run (tokenize + capture once,
//                      N engines advanced per event).
//
// The shape to check: batch total time grows far slower than N — the
// shared scan amortizes tokenization and capture serialization, so
// aggregate plan-node throughput (nodes_per_sec = N·nodes/s) rises with
// N. Acceptance floor: ≥ 2× total throughput for N = 16 at 100k nodes.
// Answers are verified byte-identical to the sequential passes before
// any row is recorded.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/batch.h"
#include "src/eval/hype_stax.h"

namespace smoqe {
namespace {

using bench::Corpus;

/// Deterministic service mix of 16 document-level hospital queries,
/// cycled to size n. Composition models concurrent users: mostly
/// selective rooted slices ("my patients' treatments") and moderate
/// scans/predicates, plus ONE heavy recursive-descendant analytics query
/// (`//patient[.//medication = …]`, whose obligation automaton stays live
/// through the genealogy). Mixes dominated by such analytics queries are
/// engine-bound — per-plan automaton work, which batching by design does
/// NOT share — and cap the batch win near 1.8×; this mix keeps them to
/// 1/16, which is what a query-serving workload looks like. Distinct
/// texts compile distinct plans (a real multi-user mix, not one plan
/// evaluated N times).
std::vector<std::string> QueryMix(size_t n) {
  static const std::vector<std::string> kBase = {
      // Selective rooted slices.
      "hospital/patient/pname",
      "hospital/patient/visit/treatment/medication",
      "hospital/patient[visit/treatment/test]/visit/date",
      // The paper's Q0.
      "hospital/patient[(parent/patient)*/visit/treatment/test and "
      "visit/treatment[medication/text()='headache']]/pname",
      "hospital/patient/(parent/patient)*/pname",
      // Scans and predicate queries.
      "//medication",
      "//parent/patient/visit/treatment/test",
      "//visit/date",
      "//patient[visit/treatment/medication = 'autism']/pname",
      "//patient[parent]/pname",
      "//patient/visit/treatment",
      "//treatment[medication]",
      "//patient[not(visit/treatment/test)]/pname",
      "//pname | //date",
      "//patient[visit/treatment[medication = 'flu'] and "
      "not(parent)]/visit/date",
      // The heavy analytics query (1/16 of the mix).
      "//patient[.//medication = 'autism']/pname",
  };
  std::vector<std::string> mix;
  mix.reserve(n);
  for (size_t i = 0; i < n; ++i) mix.push_back(kBase[i % kBase.size()]);
  return mix;
}

std::vector<const automata::Mfa*> CompileMix(const std::vector<std::string>& mix) {
  std::vector<const automata::Mfa*> plans;
  plans.reserve(mix.size());
  for (const std::string& q : mix) plans.push_back(&Corpus::Get().Mfa(q));
  return plans;
}

void Sequential(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::string& text =
      Corpus::Get().HospitalText(static_cast<size_t>(state.range(1)));
  auto plans = CompileMix(QueryMix(n));
  size_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    for (const automata::Mfa* mfa : plans) {
      auto r = eval::EvalHypeStax(*mfa, text);
      Corpus::Check(r.ok(), "sequential eval");
      answers += r->answers.size();
      benchmark::DoNotOptimize(r->answers);
    }
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["plans"] = static_cast<double>(n);
}

void Batch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::string& text =
      Corpus::Get().HospitalText(static_cast<size_t>(state.range(1)));
  auto plans = CompileMix(QueryMix(n));
  size_t answers = 0;
  for (auto _ : state) {
    auto r = eval::EvalHypeStaxBatch(plans, text);
    Corpus::Check(r.ok(), "batch eval");
    answers = 0;
    for (const auto& plan_result : *r) answers += plan_result.answers.size();
    benchmark::DoNotOptimize(*r);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["plans"] = static_cast<double>(n);
}

}  // namespace

// Extern (not in the anonymous namespace): called from main below.
void WriteBatchTrajectory(const char* path) {
  bench::JsonReport report;
  for (size_t size : bench::TrajectorySizes()) {
    const std::string& text = Corpus::Get().HospitalText(size);
    const uint64_t nodes = Corpus::Get().Hospital(size).num_nodes();
    for (size_t n : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
      auto mix = QueryMix(n);
      auto plans = CompileMix(mix);

      // Correctness gate: batch answers must be byte-identical to the
      // sequential passes, else the speedup row would be meaningless.
      auto batch_r = eval::EvalHypeStaxBatch(plans, text);
      Corpus::Check(batch_r.ok(), "batch trajectory eval");
      uint64_t answers = 0;
      for (size_t i = 0; i < plans.size(); ++i) {
        auto single = eval::EvalHypeStax(*plans[i], text);
        Corpus::Check(single.ok(), "sequential trajectory eval");
        Corpus::Check(
            (*batch_r)[i].answers.size() == single->answers.size(),
            "batch answer count != sequential");
        for (size_t a = 0; a < single->answers.size(); ++a) {
          Corpus::Check(
              (*batch_r)[i].answers[a].xml == single->answers[a].xml,
              "batch answer bytes != sequential");
        }
        answers += single->answers.size();
      }

      // Min-of-iterations on both sides: the recorded result is the
      // seq/batch *ratio*, which a single preempted window would skew.
      double seq_ns = bench::MeasureMinNsPerIter([&] {
        for (const automata::Mfa* mfa : plans) {
          auto r = eval::EvalHypeStax(*mfa, text);
          Corpus::Check(r.ok(), "sequential eval");
        }
      });
      double batch_ns = bench::MeasureMinNsPerIter([&] {
        auto r = eval::EvalHypeStaxBatch(plans, text);
        Corpus::Check(r.ok(), "batch eval");
      });
      // Per-call latency distribution of the same two pipelines (§8:
      // the serving-layer tail, which the min above deliberately hides).
      const bench::LatencyPercentiles seq_pct =
          bench::MeasureLatencyPercentiles(
              [&] {
                for (const automata::Mfa* mfa : plans) {
                  auto r = eval::EvalHypeStax(*mfa, text);
                  Corpus::Check(r.ok(), "sequential eval");
                }
              },
              /*min_iters=*/20, /*min_seconds=*/0.2);
      const bench::LatencyPercentiles batch_pct =
          bench::MeasureLatencyPercentiles(
              [&] {
                auto r = eval::EvalHypeStaxBatch(plans, text);
                Corpus::Check(r.ok(), "batch eval");
              },
              /*min_iters=*/20, /*min_seconds=*/0.2);

      const std::string mix_id = "mix" + std::to_string(n);
      for (bool batch : {false, true}) {
        double ns = batch ? batch_ns : seq_ns;
        const bench::LatencyPercentiles& pct = batch ? batch_pct : seq_pct;
        bench::TrajectoryRow row;
        row.p50_ns = pct.p50_ns;
        row.p99_ns = pct.p99_ns;
        row.engine = batch ? "hype_stax_batch" : "hype_stax_seq";
        row.workload = "hospital";
        row.query = mix_id;
        row.config = batch ? "batch" : "sequential";
        row.nodes = nodes;
        row.answers = answers;
        // ns/node of one scan's worth of document; nodes_per_sec is the
        // aggregate plan-node throughput N·nodes/s — the served-queries
        // measure the ROADMAP cares about.
        row.ns_per_node = ns / static_cast<double>(nodes);
        row.nodes_per_sec =
            static_cast<double>(n) * static_cast<double>(nodes) * 1e9 / ns;
        report.Add(std::move(row));
      }
      std::fprintf(stderr,
                   "batch n=%zu size=%zu: seq %.2f ms, batch %.2f ms "
                   "(%.2fx)\n",
                   n, size, seq_ns / 1e6, batch_ns / 1e6, seq_ns / batch_ns);
    }
  }
  if (!report.WriteFileMerged(path, {"hype_stax_batch", "hype_stax_seq"})) {
    std::fprintf(stderr, "failed to write %s\n", path);
  } else {
    std::fprintf(stderr, "merged %zu batch trajectory rows into %s\n",
                 report.size(), path);
  }
}

namespace {

void RegisterAll() {
  for (long n : {1, 4, 16, 64}) {
    for (long size : {10000, 100000}) {
      benchmark::RegisterBenchmark(
          ("E11_Sequential/N=" + std::to_string(n) + "/n=" +
           std::to_string(size))
              .c_str(),
          Sequential)
          ->Args({n, size})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("E11_Batch/N=" + std::to_string(n) + "/n=" + std::to_string(size))
              .c_str(),
          Batch)
          ->Args({n, size})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe

// Custom main (not benchmark_main): after the google-benchmark run, sweep
// N × size and merge the rows into the BENCH_eval.json trajectory.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoqe::bench::TrajectoryEnabled()) {
    smoqe::WriteBatchTrajectory("BENCH_eval.json");
  }
  return 0;
}
