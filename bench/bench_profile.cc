// Experiment E17 (DESIGN.md §11): PROFILE surface overhead on the facade
// hot path.
//
// PR 9 threads per-request observability (RequestOptions, trace adoption,
// profile assembly, slow-query capture) through Query(); the budget is
// <2% on the plan-cache-hit path for a request that does NOT ask for a
// profile — observability must be free when not in use. Configs:
//
//   * profile_off   — default RequestOptions: the post-PR hot path every
//                     normal request takes (the ≤2% claim is this config
//                     against the pre-PR facade, which E14's telemetry_on
//                     rows pin);
//   * profile_on    — RequestOptions.profile = true: forced trace, stage
//                     assembly, EvalStats copy, profile attached to the
//                     answer — the price a caller opts into;
//   * slow_log_all  — slow_query_threshold_ms = 0: every call assembles a
//                     profile and appends to the bounded ring, the
//                     worst-case capture regime.
//
// Rows merge into BENCH_eval.json as engine="profile_query" with the
// config naming the observability state. Configs are measured in
// INTERLEAVED rounds (same rationale as bench_telemetry: the result is a
// ratio, and sequential windows on a shared container showed ~7% fake
// drift that round-robin windows do not).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/core/smoqe.h"
#include "src/telemetry/metrics.h"

namespace smoqe {
namespace {

using bench::Corpus;

// The E10/E14 hot-path query: recursion + predicate, cache-hit after the
// first call, DOM mode.
constexpr char kHotQuery[] =
    "//patient[visit/treatment/medication = 'autism']/pname";

std::unique_ptr<core::Smoqe> MakeEngine(size_t size,
                                        uint64_t slow_threshold_ms) {
  core::EngineOptions o;
  o.max_threads = 1;  // serial: measure instrumentation, not the pool
  o.slow_query_threshold_ms = slow_threshold_ms;
  auto engine = std::make_unique<core::Smoqe>(o);
  Corpus::Check(
      engine->RegisterDtd("hospital", workload::kHospitalDtd, "hospital")
          .ok(),
      "dtd");
  Corpus::Check(
      engine->LoadDocument("ward", Corpus::Get().HospitalText(size)).ok(),
      "doc");
  return engine;
}

void ProfileQuery(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const bool profile = state.range(1) != 0;
  auto engine = MakeEngine(size, /*slow_threshold_ms=*/50);
  core::RequestOptions req;
  req.profile = profile;
  for (auto _ : state) {
    auto r = engine->Query("ward", kHotQuery, {}, req);
    Corpus::Check(r.ok(), "query");
    if (profile) Corpus::Check(r->profile != nullptr, "profile attached");
    benchmark::DoNotOptimize(*r);
  }
  state.SetLabel(profile ? "profile_on" : "profile_off");
}

void RegisterAll() {
  for (long size : {10000, 100000}) {
    for (long on : {0, 1}) {
      benchmark::RegisterBenchmark("ProfileQuery", &ProfileQuery)
          ->Args({size, on})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace

// E17 trajectory: profile_query rows, one per observability config.
void WriteProfileTrajectory(const char* path) {
  bench::JsonReport report;
  for (size_t size : bench::TrajectorySizes()) {
    const uint64_t nodes = Corpus::Get().Hospital(size).num_nodes();
    struct Config {
      const char* name;
      bool profile;
      uint64_t slow_threshold_ms;  // 0 = capture every call
    };
    constexpr int kConfigs = 3;
    const Config configs[kConfigs] = {
        {"profile_off", false, 50},
        {"profile_on", true, 50},
        {"slow_log_all", false, 0},
    };

    std::unique_ptr<core::Smoqe> engines[kConfigs];
    uint64_t answers = 0;
    for (int c = 0; c < kConfigs; ++c) {
      engines[c] = MakeEngine(size, configs[c].slow_threshold_ms);
      // Warm the plan cache so every measured call is the hot path.
      auto r = engines[c]->Query("ward", kHotQuery, {});
      Corpus::Check(r.ok(), "warm query");
      answers = r->stats.answers;
    }

    double best_ns[kConfigs] = {1e300, 1e300, 1e300};
    telemetry::Histogram hists[kConfigs];
    const auto sweep_start = std::chrono::steady_clock::now();
    int rounds = 0;
    do {
      for (int c = 0; c < kConfigs; ++c) {
        core::RequestOptions req;
        req.profile = configs[c].profile;
        telemetry::Histogram& hist = hists[c];
        double& best = best_ns[c];
        const double window_ns = bench::MeasureMinNsPerIter(
            [&engine = *engines[c], &req, &hist] {
              const auto t0 = std::chrono::steady_clock::now();
              auto r = engine.Query("ward", kHotQuery, {}, req);
              Corpus::Check(r.ok(), "query");
              hist.Record(static_cast<uint64_t>(
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count() *
                  1e9));
            },
            /*min_iters=*/5, /*min_seconds=*/0.05);
        if (window_ns < best) best = window_ns;
      }
      ++rounds;
    } while (rounds < 4 ||
             std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           sweep_start)
                     .count() < 1.0);

    for (int c = 0; c < kConfigs; ++c) {
      bench::TrajectoryRow row;
      row.engine = "profile_query";
      row.workload = "hospital";
      row.query = "hot-pred";
      row.config = configs[c].name;
      row.nodes = nodes;
      row.answers = answers;
      row.ns_per_node = best_ns[c] / static_cast<double>(nodes);
      row.nodes_per_sec = static_cast<double>(nodes) * 1e9 / best_ns[c];
      row.p50_ns = hists[c].Quantile(0.5);
      row.p99_ns = hists[c].Quantile(0.99);
      report.Add(std::move(row));
    }
    std::fprintf(stderr,
                 "profile size=%zu: off %.1f us, on %.1f us, slow-all "
                 "%.1f us (profile overhead %.2f%%, slow-log overhead "
                 "%.2f%%, %d rounds)\n",
                 size, best_ns[0] / 1e3, best_ns[1] / 1e3, best_ns[2] / 1e3,
                 best_ns[0] > 0 ? (best_ns[1] / best_ns[0] - 1.0) * 100.0
                                : 0.0,
                 best_ns[0] > 0 ? (best_ns[2] / best_ns[0] - 1.0) * 100.0
                                : 0.0,
                 rounds);
  }
  if (!report.WriteFileMerged(path, {"profile_query"})) {
    std::fprintf(stderr, "failed to write %s\n", path);
  } else {
    std::fprintf(stderr, "merged %zu profile trajectory rows into %s\n",
                 report.size(), path);
  }
}

}  // namespace smoqe

// Custom main: after the google-benchmark run, record the E17 overhead
// rows into the shared trajectory file.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoqe::bench::TrajectoryEnabled()) {
    smoqe::WriteProfileTrajectory("BENCH_eval.json");
  }
  return 0;
}
