// Experiment E1 (DESIGN.md §4): rewritten-query representation size.
//
// Paper claim: "the size of Q′, if directly represented as Regular XPath
// expressions, may be exponential in the size of Q. The SMOQE rewriter
// overcomes the challenge by employing an automaton characterization
// (MFA) … which is linear in the size of Q."
//
// Two query families over two views:
//  * diamond wildcard chains (reconvergent type paths): expression size
//    explodes exponentially, MFA grows linearly;
//  * hospital recursive chains (no reconvergence): both stay polynomial —
//    showing the blow-up is a property of the view's type graph, not of
//    chain length per se.
// Counters report sizes; timing covers the rewriting itself.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/rewrite/expr_rewriter.h"
#include "src/rewrite/rewriter.h"
#include "src/view/annotation.h"
#include "src/view/derive.h"
#include "src/xml/dtd_parser.h"

namespace smoqe {
namespace {

using bench::Corpus;

struct Views {
  xml::Dtd diamond_dtd;
  view::ViewDefinition diamond;   // identity view over the diamond schema
  xml::Dtd hospital_dtd;
  view::ViewDefinition hospital;  // the paper's autism view

  static Views& Get() {
    static Views v = [] {
      Views out;
      out.diamond_dtd = workload::DiamondDtd();
      view::Policy diamond_policy(&out.diamond_dtd);
      auto dv = view::DeriveView(diamond_policy);
      Corpus::Check(dv.ok(), "diamond view");
      out.diamond = dv.MoveValue();

      out.hospital_dtd = workload::HospitalDtd();
      auto policy = view::Policy::Parse(out.hospital_dtd,
                                        workload::kHospitalPolicyAutism);
      Corpus::Check(policy.ok(), "hospital policy");
      auto hv = view::DeriveView(*policy);
      Corpus::Check(hv.ok(), "hospital view");
      out.hospital = hv.MoveValue();
      return out;
    }();
    return v;
  }
};

void MfaRewrite(benchmark::State& state, const view::ViewDefinition& view,
                const std::string& query_text) {
  auto q = rxpath::ParseQuery(query_text);
  Corpus::Check(q.ok(), "parse");
  size_t states = 0;
  for (auto _ : state) {
    auto mfa = rewrite::RewriteToMfa(**q, view, Corpus::Get().names());
    Corpus::Check(mfa.ok(), "rewrite");
    states = mfa->TotalStates();
    benchmark::DoNotOptimize(mfa);
  }
  state.counters["query_size"] = static_cast<double>((*q)->TreeSize());
  state.counters["mfa_states"] = static_cast<double>(states);
}

void ExprRewrite(benchmark::State& state, const view::ViewDefinition& view,
                 const std::string& query_text) {
  auto q = rxpath::ParseQuery(query_text);
  Corpus::Check(q.ok(), "parse");
  constexpr size_t kCap = 1u << 22;  // 4M AST nodes
  size_t size = 0;
  bool truncated = false;
  for (auto _ : state) {
    rewrite::ExprRewriteStats stats;
    auto expr = rewrite::RewriteToExpr(**q, view, kCap, &stats);
    truncated = stats.truncated;
    size = stats.result_size;
    benchmark::DoNotOptimize(expr);
  }
  state.counters["query_size"] = static_cast<double>((*q)->TreeSize());
  state.counters["expr_size"] = static_cast<double>(size);
  state.counters["hit_cap"] = truncated ? 1 : 0;
  if (truncated) state.SetLabel("EXCEEDED CAP (exponential)");
}

void RegisterAll() {
  Views& views = Views::Get();
  // E1a: diamond wildcard chains — the exponential family.
  for (int k = 4; k <= 28; k += 4) {
    std::string q = workload::DiamondWildcardChain(k);
    benchmark::RegisterBenchmark(
        ("E1_diamond_MFA/k=" + std::to_string(k)).c_str(),
        [&views, q](benchmark::State& s) { MfaRewrite(s, views.diamond, q); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("E1_diamond_Expr/k=" + std::to_string(k)).c_str(),
        [&views, q](benchmark::State& s) {
          ExprRewrite(s, views.diamond, q);
        })
        ->Unit(benchmark::kMicrosecond);
  }
  // E1b: hospital recursive chains — linear for both representations.
  for (int k = 1; k <= 9; k += 2) {
    std::string q = workload::HospitalRecursiveChain(k);
    benchmark::RegisterBenchmark(
        ("E1_hospital_MFA/k=" + std::to_string(k)).c_str(),
        [&views, q](benchmark::State& s) {
          MfaRewrite(s, views.hospital, q);
        })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("E1_hospital_Expr/k=" + std::to_string(k)).c_str(),
        [&views, q](benchmark::State& s) {
          ExprRewrite(s, views.hospital, q);
        })
        ->Unit(benchmark::kMicrosecond);
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe
