// Experiment E7 (DESIGN.md §4): TAX index lifecycle.
//
// Paper claim: "the SMOQE indexer constructs the TAX index, compresses it
// before it is stored in disk, and uploads it from disk when needed."
// Rows: build time, encode (compress) time + ratio, decode (load) time,
// per document size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/index/tax_io.h"

namespace smoqe {
namespace {

using bench::Corpus;

void Build(benchmark::State& state) {
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(0)));
  size_t raw = 0;
  for (auto _ : state) {
    index::TaxIndex idx = index::TaxIndex::Build(doc);
    raw = idx.memory_bytes();
    benchmark::DoNotOptimize(idx);
  }
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
  state.counters["raw_bytes"] = static_cast<double>(raw);
}

void Encode(benchmark::State& state) {
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(0)));
  index::TaxIndex idx = index::TaxIndex::Build(doc);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string encoded = index::TaxIo::Encode(idx);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["raw_bytes"] = static_cast<double>(idx.memory_bytes());
  state.counters["compressed_bytes"] = static_cast<double>(bytes);
  state.counters["ratio"] =
      static_cast<double>(idx.memory_bytes()) / static_cast<double>(bytes);
}

void Decode(benchmark::State& state) {
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(0)));
  index::TaxIndex idx = index::TaxIndex::Build(doc);
  std::string encoded = index::TaxIo::Encode(idx);
  for (auto _ : state) {
    auto back = index::TaxIo::Decode(encoded);
    Corpus::Check(back.ok(), "decode");
    benchmark::DoNotOptimize(back);
  }
  state.counters["compressed_bytes"] = static_cast<double>(encoded.size());
}

void RegisterAll() {
  for (long size : {1000, 10000, 100000, 400000}) {
    benchmark::RegisterBenchmark(
        ("E7_build/n=" + std::to_string(size)).c_str(), Build)
        ->Arg(size)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E7_compress/n=" + std::to_string(size)).c_str(), Encode)
        ->Arg(size)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E7_load/n=" + std::to_string(size)).c_str(), Decode)
        ->Arg(size)
        ->Unit(benchmark::kMillisecond);
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe
