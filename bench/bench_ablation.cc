// Experiment E9 (DESIGN.md §4, added beyond the paper's demo claims):
// ablation of HyPE's two run-management optimizations.
//
//  * dead-run pruning — skip a subtree once every (state, guard) pair has
//    died (the paper: HyPE "often prunes a large number of nodes that do
//    not contribute to the answer of the query");
//  * guard dominance — a run whose pending-predicate set is a superset of
//    another's is redundant (weaker guards dominate).
//
// Both are semantics-preserving (differential-tested in
// eval_ablation_test.cc); the rows here show what each buys.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/hype_dom.h"

namespace smoqe {
namespace {

using bench::Corpus;

const std::vector<workload::BenchQuery>& Queries() {
  static const std::vector<workload::BenchQuery> queries =
      workload::HospitalQueries();
  return queries;
}

void Run(benchmark::State& state, const eval::EngineOptions& engine) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const bool deep = state.range(2) != 0;
  const xml::Document& doc =
      deep ? Corpus::Get().HospitalDeep(static_cast<size_t>(state.range(1)))
           : Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(bq.text);
  EvalStats stats;
  for (auto _ : state) {
    eval::DomEvalOptions opts;
    opts.engine = engine;
    auto r = eval::EvalHypeDom(mfa, doc, opts);
    Corpus::Check(r.ok(), "eval");
    stats = r->stats;
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(bq.id);
  state.counters["visited"] = static_cast<double>(stats.nodes_visited);
  state.counters["max_active_pairs"] =
      static_cast<double>(stats.max_active_pairs);
  // E10 hot-path machinery: how much each mechanism was exercised.
  state.counters["dispatch_hits"] = static_cast<double>(
      stats.dispatch_label_hits + stats.dispatch_wildcard_hits);
  state.counters["dispatch_scans"] =
      static_cast<double>(stats.dispatch_scan_steps);
  state.counters["guard_pool"] =
      static_cast<double>(stats.guard_pool_entries);
  state.counters["guard_hit_rate"] =
      stats.guard_pool_hits + stats.guard_pool_misses > 0
          ? static_cast<double>(stats.guard_pool_hits) /
                static_cast<double>(stats.guard_pool_hits +
                                    stats.guard_pool_misses)
          : 0.0;
  state.counters["dedup_probes"] =
      static_cast<double>(stats.run_dedup_probes);
  state.counters["runs_deduped"] = static_cast<double>(stats.runs_deduped);
}

eval::EngineOptions Opts(bool dead_run, bool dominance, bool dispatch,
                         bool interning, bool hashdedup) {
  eval::EngineOptions e;
  e.dead_run_pruning = dead_run;
  e.guard_dominance = dominance;
  e.label_dispatch = dispatch;
  e.guard_interning = interning;
  e.hashed_run_dedup = hashdedup;
  return e;
}

// E9: the run-management pruning ablation (as in the seed).
void Full(benchmark::State& s) { Run(s, Opts(true, true, true, true, true)); }
void NoDeadRunPruning(benchmark::State& s) {
  Run(s, Opts(false, true, true, true, true));
}
void NoDominance(benchmark::State& s) {
  Run(s, Opts(true, false, true, true, true));
}
void Neither(benchmark::State& s) {
  Run(s, Opts(false, false, true, true, true));
}

// E10: the hot-path mechanism ablation — label dispatch, guard interning,
// hashed run dedup, each toggled off alone and all off together.
void NoDispatch(benchmark::State& s) {
  Run(s, Opts(true, true, false, true, true));
}
void NoInterning(benchmark::State& s) {
  Run(s, Opts(true, true, true, false, true));
}
void NoHashDedup(benchmark::State& s) {
  Run(s, Opts(true, true, true, true, false));
}
void SlowPath(benchmark::State& s) {
  Run(s, Opts(true, true, false, false, false));
}

void RegisterAll() {
  const auto& queries = Queries();
  const long size = 10000;
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::string id(queries[q].id);
    auto reg = [&](const char* variant, void (*fn)(benchmark::State&),
                   long deep) {
      benchmark::RegisterBenchmark(
          (std::string(variant) + "/" + id + (deep ? "/deep" : "")).c_str(),
          fn)
          ->Args({static_cast<long>(q), size, deep})
          ->Unit(benchmark::kMicrosecond);
    };
    // One shared all-on baseline row per query serves both the E9 and E10
    // comparisons (registering it per family would measure the identical
    // configuration twice).
    reg("full", Full, 0);
    reg("E9_no_deadrun", NoDeadRunPruning, 0);
    reg("E9_no_dominance", NoDominance, 0);
    reg("E9_neither", Neither, 0);
    reg("E10_no_dispatch", NoDispatch, 0);
    reg("E10_no_interning", NoInterning, 0);
    reg("E10_no_hashdedup", NoHashDedup, 0);
    reg("E10_slowpath", SlowPath, 0);
    if (id == "desc-pred" || id == "desc-neg") {
      // The wide-frame regime: E10 over the deep-genealogy corpus, where
      // the three hot-path mechanisms carry the ≥2× trajectory win.
      reg("full", Full, 1);
      reg("E10_no_dispatch", NoDispatch, 1);
      reg("E10_no_interning", NoInterning, 1);
      reg("E10_no_hashdedup", NoHashDedup, 1);
      reg("E10_slowpath", SlowPath, 1);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe
