// Experiment E9 (DESIGN.md §4, added beyond the paper's demo claims):
// ablation of HyPE's two run-management optimizations.
//
//  * dead-run pruning — skip a subtree once every (state, guard) pair has
//    died (the paper: HyPE "often prunes a large number of nodes that do
//    not contribute to the answer of the query");
//  * guard dominance — a run whose pending-predicate set is a superset of
//    another's is redundant (weaker guards dominate).
//
// Both are semantics-preserving (differential-tested in
// eval_ablation_test.cc); the rows here show what each buys.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/hype_dom.h"

namespace smoqe {
namespace {

using bench::Corpus;

const std::vector<workload::BenchQuery>& Queries() {
  static const std::vector<workload::BenchQuery> queries =
      workload::HospitalQueries();
  return queries;
}

void Run(benchmark::State& state, bool dead_run_pruning,
         bool guard_dominance) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(bq.text);
  EvalStats stats;
  for (auto _ : state) {
    eval::DomEvalOptions opts;
    opts.engine.dead_run_pruning = dead_run_pruning;
    opts.engine.guard_dominance = guard_dominance;
    auto r = eval::EvalHypeDom(mfa, doc, opts);
    Corpus::Check(r.ok(), "eval");
    stats = r->stats;
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(bq.id);
  state.counters["visited"] = static_cast<double>(stats.nodes_visited);
  state.counters["max_active_pairs"] =
      static_cast<double>(stats.max_active_pairs);
}

void Full(benchmark::State& s) { Run(s, true, true); }
void NoDeadRunPruning(benchmark::State& s) { Run(s, false, true); }
void NoDominance(benchmark::State& s) { Run(s, true, false); }
void Neither(benchmark::State& s) { Run(s, false, false); }

void RegisterAll() {
  const auto& queries = Queries();
  const long size = 10000;
  for (size_t q = 0; q < queries.size(); ++q) {
    auto reg = [&](const char* variant, void (*fn)(benchmark::State&)) {
      benchmark::RegisterBenchmark(
          (std::string("E9_") + variant + "/" + queries[q].id).c_str(), fn)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
    };
    reg("full", Full);
    reg("no_deadrun", NoDeadRunPruning);
    reg("no_dominance", NoDominance);
    reg("neither", Neither);
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe
