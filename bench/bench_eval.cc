// Experiment E2/E3 (DESIGN.md §4): evaluator engine comparison.
//
// Paper claims reproduced: "SMOQE … outperforms popular XPath engines such
// as Xalan" (E2 — HyPE vs the per-step node-set materializing evaluator)
// and "previous systems require at least two passes of XML tree traversal"
// (E3 — HyPE vs the Arb-style three-pass baseline; pass counts are in the
// tree_passes counter).
//
// Rows: engine × query × document size. The shape to check: HyPE ≥
// competitive on every query and increasingly ahead as predicates and
// recursion get heavier; TwoPass pays its extra passes; Naive degrades
// with intermediate result sizes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/hype_dom.h"
#include "src/eval/two_pass.h"
#include "src/rxpath/naive_eval.h"

namespace smoqe {
namespace {

using bench::Corpus;

const std::vector<workload::BenchQuery>& Queries() {
  static const std::vector<workload::BenchQuery> queries =
      workload::HospitalQueries();
  return queries;
}

void HyPE(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(bq.text);
  size_t answers = 0;
  for (auto _ : state) {
    auto r = eval::EvalHypeDom(mfa, doc);
    Corpus::Check(r.ok(), "hype eval");
    answers = r->answers.size();
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(std::string(bq.id) + "/" + bq.selectivity);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
  state.counters["tree_passes"] = 1;
}

void Naive(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  auto q = rxpath::ParseQuery(bq.text);
  Corpus::Check(q.ok(), "parse");
  size_t answers = 0;
  for (auto _ : state) {
    rxpath::NaiveEvaluator ev(doc);
    auto r = ev.Eval(**q);
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(bq.id) + "/" + bq.selectivity);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
}

void TwoPass(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(bq.text);
  size_t answers = 0;
  for (auto _ : state) {
    auto r = eval::EvalTwoPass(mfa, doc);
    Corpus::Check(r.ok(), "two-pass eval");
    answers = r->answers.size();
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(std::string(bq.id) + "/" + bq.selectivity);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
  state.counters["tree_passes"] = 3;
}

void RegisterAll() {
  const auto& queries = Queries();
  for (size_t q = 0; q < queries.size(); ++q) {
    for (long size : {1000, 10000, 100000}) {
      benchmark::RegisterBenchmark(
          (std::string("E2_HyPE/") + queries[q].id + "/n=" +
           std::to_string(size))
              .c_str(),
          HyPE)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          (std::string("E2_Naive/") + queries[q].id + "/n=" +
           std::to_string(size))
              .c_str(),
          Naive)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
      // The three-pass baseline is O(nodes × automaton) per pass with big
      // constants; cap its size so the suite stays fast.
      if (size <= 10000) {
        benchmark::RegisterBenchmark(
            (std::string("E3_TwoPass/") + queries[q].id + "/n=" +
             std::to_string(size))
                .c_str(),
            TwoPass)
            ->Args({static_cast<long>(q), size})
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe
