// Experiment E2/E3 (DESIGN.md §4): evaluator engine comparison.
//
// Paper claims reproduced: "SMOQE … outperforms popular XPath engines such
// as Xalan" (E2 — HyPE vs the per-step node-set materializing evaluator)
// and "previous systems require at least two passes of XML tree traversal"
// (E3 — HyPE vs the Arb-style three-pass baseline; pass counts are in the
// tree_passes counter).
//
// Rows: engine × query × document size. The shape to check: HyPE ≥
// competitive on every query and increasingly ahead as predicates and
// recursion get heavier; TwoPass pays its extra passes; Naive degrades
// with intermediate result sizes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/hype_dom.h"
#include "src/eval/two_pass.h"
#include "src/rxpath/naive_eval.h"

namespace smoqe {
namespace {

using bench::Corpus;

const std::vector<workload::BenchQuery>& Queries() {
  static const std::vector<workload::BenchQuery> queries =
      workload::HospitalQueries();
  return queries;
}

void HyPE(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(bq.text);
  size_t answers = 0;
  for (auto _ : state) {
    auto r = eval::EvalHypeDom(mfa, doc);
    Corpus::Check(r.ok(), "hype eval");
    answers = r->answers.size();
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(std::string(bq.id) + "/" + bq.selectivity);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
  state.counters["tree_passes"] = 1;
}

void Naive(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  auto q = rxpath::ParseQuery(bq.text);
  Corpus::Check(q.ok(), "parse");
  size_t answers = 0;
  for (auto _ : state) {
    rxpath::NaiveEvaluator ev(doc);
    auto r = ev.Eval(**q);
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(bq.id) + "/" + bq.selectivity);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
}

void TwoPass(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(bq.text);
  size_t answers = 0;
  for (auto _ : state) {
    auto r = eval::EvalTwoPass(mfa, doc);
    Corpus::Check(r.ok(), "two-pass eval");
    answers = r->answers.size();
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(std::string(bq.id) + "/" + bq.selectivity);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
  state.counters["tree_passes"] = 3;
}

// ---------------------------------------------------------------------
// BENCH_eval.json — the recorded perf trajectory (ns/node, nodes/sec,
// peak active pairs per workload × size), swept over the hot-path
// optimization configs so the ablation speedup is captured in-repo.
// ---------------------------------------------------------------------

eval::EngineOptions ConfigOptions(const std::string& config) {
  eval::EngineOptions e;
  if (config == "opt_none") {
    e.label_dispatch = false;
    e.guard_interning = false;
    e.hashed_run_dedup = false;
  } else if (config == "no_dispatch") {
    e.label_dispatch = false;
  } else if (config == "no_interning") {
    e.guard_interning = false;
  } else if (config == "no_hashdedup") {
    e.hashed_run_dedup = false;
  }  // "opt_all": defaults
  return e;
}

const std::vector<std::string>& Configs() {
  static const std::vector<std::string> configs = {
      "opt_all", "no_dispatch", "no_interning", "no_hashdedup", "opt_none"};
  return configs;
}

void SweepDom(const char* workload, const xml::Document& doc,
              const workload::BenchQuery& bq, bench::JsonReport* report) {
  const automata::Mfa& mfa = Corpus::Get().Mfa(bq.text);
  for (const std::string& config : Configs()) {
    eval::DomEvalOptions opts;
    opts.engine = ConfigOptions(config);
    EvalStats stats;
    size_t answers = 0;
    double ns = bench::MeasureNsPerIter([&] {
      auto r = eval::EvalHypeDom(mfa, doc, opts);
      Corpus::Check(r.ok(), "trajectory eval");
      stats = r->stats;
      answers = r->answers.size();
    });
    bench::TrajectoryRow row;
    row.engine = "hype_dom";
    row.workload = workload;
    row.query = bq.id;
    row.config = config;
    row.nodes = doc.num_nodes();
    row.answers = answers;
    row.ns_per_node = ns / static_cast<double>(doc.num_nodes());
    row.nodes_per_sec = static_cast<double>(doc.num_nodes()) * 1e9 / ns;
    row.max_active_pairs = stats.max_active_pairs;
    row.guard_pool_entries = stats.guard_pool_entries;
    row.guard_pool_hits = stats.guard_pool_hits;
    row.run_dedup_probes = stats.run_dedup_probes;
    report->Add(std::move(row));
  }
}

}  // namespace

// Extern (not in the anonymous namespace): called from main below.
void WriteTrajectory(const char* path) {
  bench::JsonReport report;
  for (size_t size : bench::TrajectorySizes()) {
    const xml::Document& hospital = Corpus::Get().Hospital(size);
    const xml::Document& deep = Corpus::Get().HospitalDeep(size);
    for (const auto& bq : Queries()) {
      // The recursive-predicate query (Q0) and the mid-selectivity text
      // predicate cover the guard-heavy and scan-heavy regimes without
      // blowing up sweep time. The descendant-predicate queries run over
      // the deep-genealogy document — with the default shallow nesting
      // their frames never widen and every config measures alike.
      std::string id(bq.id);
      if (id == "Q0" || id == "pred-text") {
        SweepDom("hospital", hospital, bq, &report);
      } else if (id == "desc-pred" || id == "desc-neg") {
        SweepDom("hospital", deep, bq, &report);
      }
    }
    const xml::Document& org = Corpus::Get().Org(size);
    for (const auto& bq : workload::OrgQueries()) {
      if (std::string(bq.id) != "div-chain" &&
          std::string(bq.id) != "pred-salary") {
        continue;
      }
      SweepDom("org", org, bq, &report);
    }
  }
  // Merged write: bench_batch's hype_stax_batch/seq rows in the same file
  // survive a bench_eval re-run (and vice versa).
  if (!report.WriteFileMerged(path, {"hype_dom"})) {
    std::fprintf(stderr, "failed to write %s\n", path);
  } else {
    std::fprintf(stderr, "wrote %zu trajectory rows to %s\n", report.size(),
                 path);
  }
}

namespace {

void RegisterAll() {
  const auto& queries = Queries();
  for (size_t q = 0; q < queries.size(); ++q) {
    for (long size : {1000, 10000, 100000}) {
      benchmark::RegisterBenchmark(
          (std::string("E2_HyPE/") + queries[q].id + "/n=" +
           std::to_string(size))
              .c_str(),
          HyPE)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          (std::string("E2_Naive/") + queries[q].id + "/n=" +
           std::to_string(size))
              .c_str(),
          Naive)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
      // The three-pass baseline is O(nodes × automaton) per pass with big
      // constants; cap its size so the suite stays fast.
      if (size <= 10000) {
        benchmark::RegisterBenchmark(
            (std::string("E3_TwoPass/") + queries[q].id + "/n=" +
             std::to_string(size))
                .c_str(),
            TwoPass)
            ->Args({static_cast<long>(q), size})
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe

// Custom main (not benchmark_main): after the google-benchmark run, sweep
// the optimization configs and record BENCH_eval.json.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoqe::bench::TrajectoryEnabled()) {
    smoqe::WriteTrajectory("BENCH_eval.json");
  }
  return 0;
}
