// Experiment E5 (DESIGN.md §4): DOM mode vs StAX mode.
//
// Paper claim: "the StAX mode allows to process larger documents
// efficiently", needing one sequential scan and no tree. Rows: mode ×
// document size; DOM rows include the parse (a fair end-to-end comparison
// from raw text), and memory counters show tree bytes vs peak answer
// buffer bytes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/hype_dom.h"
#include "src/eval/hype_stax.h"
#include "src/xml/parser.h"

namespace smoqe {
namespace {

using bench::Corpus;

constexpr char kQuery[] =
    "//patient[visit/treatment/medication = 'autism']/visit/date";

void DomFromText(benchmark::State& state) {
  const std::string& text =
      Corpus::Get().HospitalText(static_cast<size_t>(state.range(0)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(kQuery);
  size_t tree_bytes = 0;
  for (auto _ : state) {
    xml::ParseOptions opts;
    opts.names = Corpus::Get().names();
    auto doc = xml::ParseDocument(text, opts);
    Corpus::Check(doc.ok(), "parse");
    tree_bytes = doc->memory_bytes();
    auto r = eval::EvalHypeDom(mfa, *doc);
    Corpus::Check(r.ok(), "eval");
    benchmark::DoNotOptimize(r->answers);
  }
  state.counters["doc_bytes"] = static_cast<double>(text.size());
  state.counters["engine_mem_bytes"] = static_cast<double>(tree_bytes);
}

void DomPreparsed(benchmark::State& state) {
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(0)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(kQuery);
  for (auto _ : state) {
    auto r = eval::EvalHypeDom(mfa, doc);
    Corpus::Check(r.ok(), "eval");
    benchmark::DoNotOptimize(r->answers);
  }
  state.counters["engine_mem_bytes"] = static_cast<double>(doc.memory_bytes());
}

void Stax(benchmark::State& state) {
  const std::string& text =
      Corpus::Get().HospitalText(static_cast<size_t>(state.range(0)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(kQuery);
  size_t peak = 0;
  for (auto _ : state) {
    auto r = eval::EvalHypeStax(mfa, text);
    Corpus::Check(r.ok(), "stax eval");
    peak = r->stats.buffered_bytes;
    benchmark::DoNotOptimize(r->answers);
  }
  state.counters["doc_bytes"] = static_cast<double>(text.size());
  state.counters["engine_mem_bytes"] = static_cast<double>(peak);
}

void RegisterAll() {
  for (long size : {1000, 10000, 100000, 400000}) {
    benchmark::RegisterBenchmark(
        ("E5_DOM_parse+eval/n=" + std::to_string(size)).c_str(), DomFromText)
        ->Arg(size)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E5_DOM_eval_only/n=" + std::to_string(size)).c_str(), DomPreparsed)
        ->Arg(size)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E5_StAX_scan/n=" + std::to_string(size)).c_str(), Stax)
        ->Arg(size)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

// BENCH_stax.json: StAX-mode trajectory (ns/node, nodes/sec, peak active
// pairs) with the hot-path optimizations on vs off. Extern: called from
// main below.
void WriteStaxTrajectory(const char* path) {
  bench::JsonReport report;
  for (size_t size : bench::TrajectorySizes()) {
    const xml::Document& doc = Corpus::Get().Hospital(size);
    const std::string& text = Corpus::Get().HospitalText(size);
    const automata::Mfa& mfa = Corpus::Get().Mfa(kQuery);
    for (bool opt_all : {true, false}) {
      eval::StaxEvalOptions opts;
      opts.engine.label_dispatch = opt_all;
      opts.engine.guard_interning = opt_all;
      opts.engine.hashed_run_dedup = opt_all;
      EvalStats stats;
      size_t answers = 0;
      double ns = bench::MeasureNsPerIter([&] {
        auto r = eval::EvalHypeStax(mfa, text, opts);
        Corpus::Check(r.ok(), "stax trajectory eval");
        stats = r->stats;
        answers = r->answers.size();
      });
      bench::TrajectoryRow row;
      row.engine = "hype_stax";
      row.workload = "hospital";
      row.query = "autism-dates";
      row.config = opt_all ? "opt_all" : "opt_none";
      row.nodes = doc.num_nodes();
      row.answers = answers;
      row.ns_per_node = ns / static_cast<double>(doc.num_nodes());
      row.nodes_per_sec = static_cast<double>(doc.num_nodes()) * 1e9 / ns;
      row.max_active_pairs = stats.max_active_pairs;
      row.guard_pool_entries = stats.guard_pool_entries;
      row.guard_pool_hits = stats.guard_pool_hits;
      row.run_dedup_probes = stats.run_dedup_probes;
      report.Add(std::move(row));
    }
  }
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
  } else {
    std::fprintf(stderr, "wrote %zu trajectory rows to %s\n", report.size(),
                 path);
  }
}

namespace {

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoqe::bench::TrajectoryEnabled()) {
    smoqe::WriteStaxTrajectory("BENCH_stax.json");
  }
  return 0;
}
