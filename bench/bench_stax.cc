// Experiment E5 (DESIGN.md §4): DOM mode vs StAX mode.
//
// Paper claim: "the StAX mode allows to process larger documents
// efficiently", needing one sequential scan and no tree. Rows: mode ×
// document size; DOM rows include the parse (a fair end-to-end comparison
// from raw text), and memory counters show tree bytes vs peak answer
// buffer bytes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/hype_dom.h"
#include "src/eval/hype_stax.h"
#include "src/xml/parser.h"

namespace smoqe {
namespace {

using bench::Corpus;

constexpr char kQuery[] =
    "//patient[visit/treatment/medication = 'autism']/visit/date";

void DomFromText(benchmark::State& state) {
  const std::string& text =
      Corpus::Get().HospitalText(static_cast<size_t>(state.range(0)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(kQuery);
  size_t tree_bytes = 0;
  for (auto _ : state) {
    xml::ParseOptions opts;
    opts.names = Corpus::Get().names();
    auto doc = xml::ParseDocument(text, opts);
    Corpus::Check(doc.ok(), "parse");
    tree_bytes = doc->memory_bytes();
    auto r = eval::EvalHypeDom(mfa, *doc);
    Corpus::Check(r.ok(), "eval");
    benchmark::DoNotOptimize(r->answers);
  }
  state.counters["doc_bytes"] = static_cast<double>(text.size());
  state.counters["engine_mem_bytes"] = static_cast<double>(tree_bytes);
}

void DomPreparsed(benchmark::State& state) {
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(0)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(kQuery);
  for (auto _ : state) {
    auto r = eval::EvalHypeDom(mfa, doc);
    Corpus::Check(r.ok(), "eval");
    benchmark::DoNotOptimize(r->answers);
  }
  state.counters["engine_mem_bytes"] = static_cast<double>(doc.memory_bytes());
}

void Stax(benchmark::State& state) {
  const std::string& text =
      Corpus::Get().HospitalText(static_cast<size_t>(state.range(0)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(kQuery);
  size_t peak = 0;
  for (auto _ : state) {
    auto r = eval::EvalHypeStax(mfa, text);
    Corpus::Check(r.ok(), "stax eval");
    peak = r->stats.buffered_bytes;
    benchmark::DoNotOptimize(r->answers);
  }
  state.counters["doc_bytes"] = static_cast<double>(text.size());
  state.counters["engine_mem_bytes"] = static_cast<double>(peak);
}

void RegisterAll() {
  for (long size : {1000, 10000, 100000, 400000}) {
    benchmark::RegisterBenchmark(
        ("E5_DOM_parse+eval/n=" + std::to_string(size)).c_str(), DomFromText)
        ->Arg(size)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E5_DOM_eval_only/n=" + std::to_string(size)).c_str(), DomPreparsed)
        ->Arg(size)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E5_StAX_scan/n=" + std::to_string(size)).c_str(), Stax)
        ->Arg(size)
        ->Unit(benchmark::kMillisecond);
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe
