// Experiment E12 (DESIGN.md §4, §6): cost of keeping derived state fresh
// under writes.
//
//  * Maintenance: one insert+delete edit pair against a TAX-indexed
//    document — incremental ancestor-chain repair vs full TaxIndex::Build
//    per update. The repair touches O(depth · fanout) sets where the
//    rebuild touches all of them, so the gap widens with document size.
//  * Service mix: an authorized view update riding with a plan-cached
//    read burst (15 reads : 1 write) through the Smoqe facade — the
//    read/write regime the epoch-invalidation design targets.
//
// Trajectory rows merge into BENCH_eval.json under the engines
// "update_incr", "update_rebuild" and "update_rwmix". Field mapping for
// the update rows (the row schema is read-oriented): `answers` = nodes
// inserted+deleted per op, `max_active_pairs` = TAX sets recomputed per
// op, `ns_per_node`/`nodes_per_sec` = per-op time normalized by document
// size / ops per second × document size as usual.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/core/smoqe.h"
#include "src/index/tax.h"
#include "src/update/applier.h"
#include "src/update/update_lang.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace smoqe {
namespace {

using bench::Corpus;

constexpr char kVisitFragment[] =
    "insert into x "
    "<visit><treatment><medication>bench</medication></treatment>"
    "<date>dB</date></visit>";

/// A mutable copy of the corpus hospital document at `nodes` with a built
/// TAX index (corpus documents are shared and must stay immutable).
struct MutableDoc {
  xml::Document doc;
  index::TaxIndex tax;
  xml::Node* target;  // one mid-document patient the edit pair hits

  explicit MutableDoc(size_t nodes)
      : doc([&] {
          xml::ParseOptions opts;
          opts.names = Corpus::Get().names();
          auto d = xml::ParseDocument(Corpus::Get().HospitalText(nodes), opts);
          Corpus::Check(d.ok(), "bench_update parse");
          return d.MoveValue();
        }()),
        tax(index::TaxIndex::Build(doc)) {
    // Deepest patient reachable by first-child descent: repairs walk a
    // real ancestor chain, not just the root's children.
    xml::Node* deepest = nullptr;
    xml::Node* cur = doc.mutable_node(doc.root()->node_id);
    const xml::NameId patient = doc.names()->Intern("patient");
    while (cur != nullptr) {
      if (cur->label == patient) deepest = cur;
      xml::Node* next = nullptr;
      for (xml::Node* c = cur->first_child; c != nullptr;
           c = c->next_sibling) {
        if (c->is_element()) {
          next = c;
          break;
        }
      }
      cur = next;
    }
    Corpus::Check(deepest != nullptr, "bench_update target");
    target = deepest;
  }
};

/// One maintenance op: graft a visit under the target, then delete it.
/// Document size is invariant across iterations (ids/sets grow, content
/// does not). Returns the per-op maintenance counters.
update::ApplyStats EditPair(MutableDoc* m, const update::UpdateStatement& stmt,
                            bool rebuild) {
  update::ApplierOptions opts;
  opts.tax = &m->tax;
  opts.rebuild_tax = rebuild;
  update::UpdateApplier applier(&m->doc, opts);
  auto ins = applier.Run({update::ResolvedEdit{update::OpKind::kInsert,
                                               m->target, &*stmt.fragment}});
  Corpus::Check(ins.ok(), "bench insert");
  // The grafted copy is the newest id in the document.
  xml::Node* grafted = m->doc.mutable_node(m->doc.num_nodes() - 1);
  while (grafted->parent != m->target) grafted = grafted->parent;
  auto del = applier.Run(
      {update::ResolvedEdit{update::OpKind::kDelete, grafted, nullptr}});
  Corpus::Check(del.ok(), "bench delete");
  update::ApplyStats stats = *ins;
  stats.nodes_deleted += del->nodes_deleted;
  stats.tax_sets_recomputed += del->tax_sets_recomputed;
  return stats;
}

const update::UpdateStatement& VisitStatement() {
  static const update::UpdateStatement* stmt = [] {
    auto s = update::ParseUpdate(kVisitFragment, Corpus::Get().names());
    Corpus::Check(s.ok(), "bench stmt parse");
    return new update::UpdateStatement(s.MoveValue());
  }();
  return *stmt;
}

void Maintain(benchmark::State& state) {
  const bool rebuild = state.range(1) != 0;
  MutableDoc m(static_cast<size_t>(state.range(0)));
  update::ApplyStats stats;
  for (auto _ : state) {
    stats = EditPair(&m, VisitStatement(), rebuild);
    benchmark::DoNotOptimize(m.tax);
  }
  state.SetLabel(rebuild ? "rebuild" : "incremental");
  state.counters["tax_sets_per_op"] =
      static_cast<double>(stats.tax_sets_recomputed);
}
BENCHMARK(Maintain)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------
// Service mix: authorized view writes inside a plan-cached read stream.
// ---------------------------------------------------------------------

constexpr char kResearchPolicy[] =
    "patient/pname : N;\n"
    "patient/visit : N;\n"
    "visit/treatment : Y;\n"
    "treatment/test : Y;\n";

std::unique_ptr<core::Smoqe> MakeEngine(size_t nodes) {
  auto engine = std::make_unique<core::Smoqe>();
  Corpus::Check(
      engine->RegisterDtd("hospital", workload::kHospitalDtd, "hospital").ok(),
      "bench dtd");
  Corpus::Check(engine->LoadDocument("ward", Corpus::Get().HospitalText(nodes))
                    .ok(),
                "bench load");
  Corpus::Check(engine->BuildIndex("ward").ok(), "bench index");
  Corpus::Check(
      engine->DefineView("research", "hospital", kResearchPolicy).ok(),
      "bench view");
  return engine;
}

/// 15 plan-cached reads (direct + view) and 1 authorized research-view
/// write. The write's target predicate re-matches its own replacement, so
/// every iteration does real work.
uint64_t MixRound(core::Smoqe* engine) {
  core::QueryOptions direct;
  core::QueryOptions research;
  research.view = "research";
  const char* direct_queries[] = {"//patient[visit/treatment/test]",
                                  "//medication", "hospital/patient/pname"};
  uint64_t answers = 0;
  for (int rep = 0; rep < 5; ++rep) {
    for (const char* q : direct_queries) {
      auto r = engine->Query("ward", q, direct);
      Corpus::Check(r.ok(), "mix read");
      answers += r->answers_xml.size();
    }
  }
  core::UpdateOptions w;
  w.view = "research";
  auto u = engine->Update("ward",
                          "replace //treatment[test] with "
                          "<treatment><test>bench</test></treatment>",
                          w);
  Corpus::Check(u.ok(), "mix write");
  answers += u->stats.edits_applied;
  return answers;
}

void ReadWriteMix(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<size_t>(state.range(0)));
  uint64_t answers = 0;
  for (auto _ : state) {
    answers += MixRound(engine.get());
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["plan_hits"] =
      static_cast<double>(engine->plan_cache().stats().hits);
}
BENCHMARK(ReadWriteMix)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

// Extern: called from main after the google-benchmark run.
void WriteUpdateTrajectory(const char* path) {
  bench::JsonReport report;
  for (size_t size : bench::TrajectorySizes()) {
    // Maintenance rows: incremental vs rebuild. Retired ids are never
    // reused, so the id space grows as iterations accumulate; the row
    // records the *initial* node count, and the min-of-iters estimator
    // naturally reads from early (least-grown) iterations.
    for (bool rebuild : {false, true}) {
      MutableDoc m(size);
      const uint64_t nodes0 = static_cast<uint64_t>(m.doc.num_nodes());
      update::ApplyStats stats;
      double ns = bench::MeasureMinNsPerIter([&] {
        stats = EditPair(&m, VisitStatement(), rebuild);
      });
      ns /= 2;  // EditPair applies two updates
      bench::TrajectoryRow row;
      row.engine = rebuild ? "update_rebuild" : "update_incr";
      row.workload = "hospital";
      row.query = "visit-ins-del";
      row.config = rebuild ? "rebuild" : "incremental";
      row.nodes = nodes0;
      row.answers = stats.nodes_inserted + stats.nodes_deleted;
      row.ns_per_node = ns / static_cast<double>(nodes0);
      row.nodes_per_sec = static_cast<double>(nodes0) * 1e9 / ns;
      row.max_active_pairs = stats.tax_sets_recomputed / 2;
      report.Add(std::move(row));
    }
    // Read/write service mix through the facade.
    {
      auto engine = MakeEngine(size);
      double ns = bench::MeasureMinNsPerIter([&] { MixRound(engine.get()); });
      bench::TrajectoryRow row;
      row.engine = "update_rwmix";
      row.workload = "hospital";
      row.query = "15r1w";
      row.config = "authorized";
      row.nodes = size;
      row.answers = 16;  // ops per round
      row.ns_per_node = ns / static_cast<double>(size);
      row.nodes_per_sec = static_cast<double>(size) * 1e9 / ns;
      report.Add(std::move(row));
    }
  }
  if (!report.WriteFileMerged(path, {"update_incr", "update_rebuild",
                                     "update_rwmix"})) {
    std::fprintf(stderr, "failed to write %s\n", path);
  } else {
    std::fprintf(stderr, "wrote %zu update trajectory rows to %s\n",
                 report.size(), path);
  }
}

}  // namespace smoqe

int main(int argc, char** argv) {
  smoqe::bench::RequireReleaseBuild();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoqe::bench::TrajectoryEnabled()) {
    smoqe::WriteUpdateTrajectory("BENCH_eval.json");
  }
  return 0;
}
