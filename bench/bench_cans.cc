// Experiment E4 (DESIGN.md §4): size of the Cans candidate-answer store.
//
// Paper claim: potential answers "are collected and stored in an auxiliary
// structure, referred to as Cans, which is often much smaller than the XML
// document tree. After the traversal … HyPE only needs a single pass of
// Cans" — this is why one document traversal suffices.
//
// Rows sweep document size × query selectivity; counters report the Cans
// entry count, its fraction of the document, and the pass counters that
// back experiment E3's single-pass claim.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/hype_dom.h"

namespace smoqe {
namespace {

using bench::Corpus;

struct CansQuery {
  const char* id;
  const char* text;
};

const std::vector<CansQuery>& Queries() {
  static const std::vector<CansQuery> queries = {
      // Candidates = patients pending an autism-medication check.
      {"guarded-patients",
       "//patient[visit/treatment/medication = 'autism']"},
      // Candidates = names; guard depends on an ancestor's pending check.
      {"guarded-names",
       "hospital/patient[visit/treatment/medication = 'autism']/pname"},
      // Unconditional: Cans = answers.
      {"all-medications", "//medication"},
      // Highly selective: nearly empty Cans.
      {"rare-chain", "//parent/patient/visit/treatment/test"},
      // Pathological: every element is a candidate.
      {"everything", "//*"},
  };
  return queries;
}

void CansSize(benchmark::State& state) {
  const auto& q = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(q.text);
  EvalStats stats;
  size_t cans_nodes = 0;
  for (auto _ : state) {
    auto r = eval::EvalHypeDom(mfa, doc);
    Corpus::Check(r.ok(), "eval");
    stats = r->stats;
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(q.id);
  (void)cans_nodes;
  state.counters["doc_nodes"] = static_cast<double>(doc.num_nodes());
  state.counters["cans_entries"] = static_cast<double>(stats.cans_entries);
  state.counters["cans_frac_%"] =
      100.0 * static_cast<double>(stats.cans_entries) /
      static_cast<double>(doc.num_nodes());
  state.counters["answers"] = static_cast<double>(stats.answers);
  state.counters["tree_passes"] = static_cast<double>(stats.tree_passes);
  state.counters["aux_passes"] = static_cast<double>(stats.aux_passes);
}

void RegisterAll() {
  const auto& queries = Queries();
  for (size_t q = 0; q < queries.size(); ++q) {
    for (long size : {1000, 10000, 100000}) {
      benchmark::RegisterBenchmark(
          (std::string("E4_cans/") + queries[q].id + "/n=" +
           std::to_string(size))
              .c_str(),
          CansSize)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe
