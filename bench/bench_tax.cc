// Experiment E6 (DESIGN.md §4): effectiveness of the TAX index.
//
// Paper claim: TAX "is effective in pruning large document subtrees during
// the evaluation of XPath queries with or without '//'", beyond
// descendant-axis labeling schemes. Rows: indexer off vs on, per query
// family and document size; counters expose visited/pruned node counts —
// the pruning the iSMOQE tree colors show.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/hype_dom.h"
#include "src/index/tax.h"

namespace smoqe {
namespace {

using bench::Corpus;

const std::vector<workload::BenchQuery>& Queries() {
  // Org queries: review/group/salary types are rare and deep, so typed
  // pruning has room to act; plus two hospital queries with and without //.
  static const std::vector<workload::BenchQuery> queries = [] {
    std::vector<workload::BenchQuery> qs = workload::OrgQueries();
    return qs;
  }();
  return queries;
}

const index::TaxIndex& OrgTax(size_t nodes) {
  static std::map<size_t, std::unique_ptr<index::TaxIndex>> cache;
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    it = cache
             .emplace(nodes, std::make_unique<index::TaxIndex>(
                                 index::TaxIndex::Build(
                                     Corpus::Get().Org(nodes))))
             .first;
  }
  return *it->second;
}

void TaxOff(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Org(static_cast<size_t>(state.range(1)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(bq.text);
  EvalStats stats;
  for (auto _ : state) {
    auto r = eval::EvalHypeDom(mfa, doc);
    Corpus::Check(r.ok(), "eval");
    stats = r->stats;
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(bq.id);
  state.counters["visited"] = static_cast<double>(stats.nodes_visited);
  state.counters["pruned_nodes"] = static_cast<double>(stats.nodes_pruned);
  state.counters["answers"] = static_cast<double>(stats.answers);
}

void TaxOn(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Org(static_cast<size_t>(state.range(1)));
  const index::TaxIndex& tax = OrgTax(static_cast<size_t>(state.range(1)));
  const automata::Mfa& mfa = Corpus::Get().Mfa(bq.text);
  EvalStats stats;
  for (auto _ : state) {
    eval::DomEvalOptions opts;
    opts.tax = &tax;
    auto r = eval::EvalHypeDom(mfa, doc, opts);
    Corpus::Check(r.ok(), "eval");
    stats = r->stats;
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(bq.id);
  state.counters["visited"] = static_cast<double>(stats.nodes_visited);
  state.counters["pruned_nodes"] = static_cast<double>(stats.nodes_pruned);
  state.counters["answers"] = static_cast<double>(stats.answers);
}

void RegisterAll() {
  const auto& queries = Queries();
  for (size_t q = 0; q < queries.size(); ++q) {
    for (long size : {10000, 100000}) {
      benchmark::RegisterBenchmark(
          (std::string("E6_TAX_off/") + queries[q].id + "/n=" +
           std::to_string(size))
              .c_str(),
          TaxOff)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          (std::string("E6_TAX_on/") + queries[q].id + "/n=" +
           std::to_string(size))
              .c_str(),
          TaxOn)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe
