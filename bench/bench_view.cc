// Experiment E8 (DESIGN.md §4): answering queries on virtual views
// without materialization.
//
// Paper motivation (§1): "a large number of user groups may want to query
// the same XML document, each with a different access-control policy …
// views should be kept virtual since it is prohibitively expensive to
// materialize and maintain a large number of views."
//
// Rows compare, per query: (a) SMOQE — rewrite + evaluate on the document;
// (b) the materializing strategy — build V(T), then evaluate the query on
// it (the cost every refresh of a materialized view would pay, times the
// number of user groups). The one-time rewrite cost is also isolated.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/hype_dom.h"
#include "src/rewrite/rewriter.h"
#include "src/rxpath/naive_eval.h"
#include "src/view/annotation.h"
#include "src/view/derive.h"
#include "src/view/materialize.h"

namespace smoqe {
namespace {

using bench::Corpus;

const view::ViewDefinition& AutismView() {
  static const view::ViewDefinition* view = [] {
    static xml::Dtd dtd = workload::HospitalDtd();
    auto policy =
        view::Policy::Parse(dtd, workload::kHospitalPolicyAutism);
    Corpus::Check(policy.ok(), "policy");
    static view::Policy owned = policy.MoveValue();
    auto v = view::DeriveView(owned);
    Corpus::Check(v.ok(), "derive");
    return new view::ViewDefinition(v.MoveValue());
  }();
  return *view;
}

const std::vector<workload::BenchQuery>& Queries() {
  static const std::vector<workload::BenchQuery> queries =
      workload::HospitalViewQueries();
  return queries;
}

void Virtual(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  auto q = rxpath::ParseQuery(bq.text);
  Corpus::Check(q.ok(), "parse");
  size_t answers = 0;
  for (auto _ : state) {
    // Rewrite + evaluate; nothing is materialized.
    auto mfa = rewrite::RewriteToMfa(**q, AutismView(), doc.names());
    Corpus::Check(mfa.ok(), "rewrite");
    auto r = eval::EvalHypeDom(*mfa, doc);
    Corpus::Check(r.ok(), "eval");
    answers = r->answers.size();
    benchmark::DoNotOptimize(r->answers);
  }
  state.SetLabel(bq.id);
  state.counters["answers"] = static_cast<double>(answers);
}

void RewriteOnly(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  auto q = rxpath::ParseQuery(bq.text);
  Corpus::Check(q.ok(), "parse");
  for (auto _ : state) {
    auto mfa = rewrite::RewriteToMfa(**q, AutismView(), Corpus::Get().names());
    Corpus::Check(mfa.ok(), "rewrite");
    benchmark::DoNotOptimize(mfa);
  }
  state.SetLabel(bq.id);
}

void MaterializeThenQuery(benchmark::State& state) {
  const auto& bq = Queries()[static_cast<size_t>(state.range(0))];
  const xml::Document& doc =
      Corpus::Get().Hospital(static_cast<size_t>(state.range(1)));
  auto q = rxpath::ParseQuery(bq.text);
  Corpus::Check(q.ok(), "parse");
  size_t answers = 0;
  size_t view_nodes = 0;
  for (auto _ : state) {
    auto mat = view::Materialize(AutismView(), doc);
    Corpus::Check(mat.ok(), "materialize");
    view_nodes = static_cast<size_t>(mat->document.num_nodes());
    rxpath::NaiveEvaluator ev(mat->document);
    auto r = ev.Eval(**q);
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(bq.id);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["view_nodes"] = static_cast<double>(view_nodes);
}

void RegisterAll() {
  const auto& queries = Queries();
  for (size_t q = 0; q < queries.size(); ++q) {
    for (long size : {10000, 100000}) {
      benchmark::RegisterBenchmark(
          (std::string("E8_virtual_rewrite+eval/") + queries[q].id + "/n=" +
           std::to_string(size))
              .c_str(),
          Virtual)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          (std::string("E8_materialize+query/") + queries[q].id + "/n=" +
           std::to_string(size))
              .c_str(),
          MaterializeThenQuery)
          ->Args({static_cast<long>(q), size})
          ->Unit(benchmark::kMicrosecond);
    }
    benchmark::RegisterBenchmark(
        (std::string("E8_rewrite_only/") + queries[q].id).c_str(),
        RewriteOnly)
        ->Args({static_cast<long>(q), 0})
        ->Unit(benchmark::kMicrosecond);
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace smoqe
