// Quickstart: load a document, define a security view from an
// access-control policy, and answer queries — directly and through the
// virtual view (no materialization happens; the view query is rewritten).
//
// Build & run:   ./build/quickstart

#include <cstdio>

#include "src/core/smoqe.h"

namespace {

constexpr char kDtd[] = R"(
  <!ELEMENT library (book*)>
  <!ELEMENT book (title, price, internal_rating)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT price (#PCDATA)>
  <!ELEMENT internal_rating (#PCDATA)>
)";

constexpr char kDoc[] =
    "<library>"
    "<book><title>A Relational Model</title><price>30</price>"
    "<internal_rating>9</internal_rating></book>"
    "<book><title>Transaction Processing</title><price>60</price>"
    "<internal_rating>8</internal_rating></book>"
    "</library>";

// Customers may browse books and titles, but internal ratings are hidden
// and prices only show for books that actually have one.
constexpr char kCustomerPolicy[] = R"(
  book/internal_rating : N;
  book/price           : [text() != ''];
)";

void Show(const char* label, const smoqe::Result<smoqe::core::QueryAnswer>& r) {
  std::printf("%s\n", label);
  if (!r.ok()) {
    std::printf("  error: %s\n", r.status().ToString().c_str());
    return;
  }
  if (r->answers_xml.empty()) std::printf("  (no answers)\n");
  for (const std::string& a : r->answers_xml) {
    std::printf("  %s\n", a.c_str());
  }
}

}  // namespace

int main() {
  smoqe::core::Smoqe engine;

  smoqe::Status st = engine.RegisterDtd("library", kDtd, "library");
  if (!st.ok()) {
    std::printf("RegisterDtd: %s\n", st.ToString().c_str());
    return 1;
  }
  st = engine.LoadDocument("shop", kDoc);
  if (!st.ok()) {
    std::printf("LoadDocument: %s\n", st.ToString().c_str());
    return 1;
  }
  st = engine.DefineView("customers", "library", kCustomerPolicy);
  if (!st.ok()) {
    std::printf("DefineView: %s\n", st.ToString().c_str());
    return 1;
  }

  auto schema = engine.ViewSchema("customers");
  std::printf("== schema exposed to customers ==\n%s\n",
              schema.ok() ? schema->c_str() : schema.status().ToString().c_str());

  // A trusted (direct) query sees everything.
  Show("== direct: //internal_rating ==",
       engine.Query("shop", "//internal_rating"));

  // The same query through the view is rewritten against the underlying
  // document and returns nothing — the data is outside the view.
  smoqe::core::QueryOptions customers;
  customers.view = "customers";
  Show("== customers: //internal_rating ==",
       engine.Query("shop", "//internal_rating", customers));

  Show("== customers: library/book/title ==",
       engine.Query("shop", "library/book/title", customers));

  Show("== customers: //book[price = '30']/title ==",
       engine.Query("shop", "//book[price = '30']/title", customers));
  return 0;
}
