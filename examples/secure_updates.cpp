// Secure XML updates through security views (docs/DESIGN.md §6): the
// hospital ward from the paper's Fig. 3, two user groups, and the
// accept/reject update semantics —
//
//   * a nurse (research view: no names, no visit structure) tries to
//     delete a patient: REJECTED, the explain string names the violated
//     annotation;
//   * a doctor (full view except audit trail) corrects a treatment:
//     ACCEPTED — applied atomically, DTD-revalidated, TAX index repaired
//     incrementally, materialized-view caches retained or invalidated by
//     document epoch;
//   * re-queries through both views and the TAX index show the
//     maintained state.
//
// Run:  ./build/secure_updates

#include <cstdio>

#include "src/core/smoqe.h"
#include "src/workload/workloads.h"

namespace {

constexpr char kWard[] =
    "<hospital>"
    "<patient>"
    "<pname>Alice</pname>"
    "<visit><treatment><medication>autism</medication></treatment>"
    "<date>2006-01-02</date></visit>"
    "<parent><patient>"
    "<pname>Bob</pname>"
    "<visit><treatment><test>blood</test></treatment>"
    "<date>2006-02-03</date></visit>"
    "</patient></parent>"
    "</patient>"
    "<patient>"
    "<pname>Carol</pname>"
    "<visit><treatment><medication>headache</medication></treatment>"
    "<date>2006-03-04</date></visit>"
    "</patient>"
    "</hospital>";

// Nurses chart treatments but never see identities or visit structure.
constexpr char kNursePolicy[] =
    "patient/pname   : N;\n"
    "patient/visit   : N;\n"
    "visit/treatment : Y;\n"
    "treatment/test  : Y;\n";

// Doctors see everything (every edge explicitly allowed).
constexpr char kDoctorPolicy[] =
    "hospital/patient : Y;\n"
    "patient/pname    : Y;\n"
    "patient/visit    : Y;\n"
    "patient/parent   : Y;\n";

void TryUpdate(smoqe::core::Smoqe* engine, const char* who, const char* view,
               const char* stmt) {
  smoqe::core::UpdateOptions opts;
  opts.view = view;
  std::printf("[%s] %s\n", who, stmt);
  auto r = engine->Update("ward", stmt, opts);
  if (!r.ok()) {
    std::printf("    %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf(
      "    accepted: %llu target(s), +%llu/-%llu nodes, epoch -> %llu, "
      "TAX sets repaired: %llu, view caches retained/invalidated: %llu/%llu\n",
      (unsigned long long)r->stats.targets,
      (unsigned long long)r->stats.nodes_inserted,
      (unsigned long long)r->stats.nodes_deleted,
      (unsigned long long)r->stats.doc_epoch,
      (unsigned long long)r->stats.tax_sets_recomputed,
      (unsigned long long)r->stats.view_caches_retained,
      (unsigned long long)r->stats.view_caches_invalidated);
}

void Show(smoqe::core::Smoqe* engine, const char* who, const char* query,
          const smoqe::core::QueryOptions& opts) {
  auto r = engine->Query("ward", query, opts);
  std::printf("[%s] %s\n", who, query);
  if (!r.ok()) {
    std::printf("    error: %s\n", r.status().ToString().c_str());
    return;
  }
  if (r->answers_xml.empty()) std::printf("    (no answers)\n");
  for (const std::string& a : r->answers_xml) {
    std::printf("    %s\n", a.c_str());
  }
}

}  // namespace

int main() {
  smoqe::core::Smoqe engine;
  if (!engine.RegisterDtd("hospital", smoqe::workload::kHospitalDtd,
                          "hospital")
           .ok() ||
      !engine.LoadDocument("ward", kWard).ok() ||
      !engine.BuildIndex("ward").ok() ||
      !engine.DefineView("nurses", "hospital", kNursePolicy).ok() ||
      !engine.DefineView("doctors", "hospital", kDoctorPolicy).ok()) {
    std::printf("setup failed\n");
    return 1;
  }

  std::printf("== the ward, as the nurse group sees it ==\n");
  auto nurse_view = engine.MaterializeView("ward", "nurses");
  std::printf("%s\n\n", nurse_view.ok() ? nurse_view->xml.c_str()
                                        : nurse_view.status().ToString().c_str());

  std::printf("== update attempts ==\n");
  // Deleting a patient would also remove hidden pname/visit data.
  TryUpdate(&engine, "nurse", "nurses",
            "delete hospital/patient");
  // Writing a visit would create content hidden from the writer.
  TryUpdate(&engine, "nurse", "nurses",
            "insert into hospital/patient "
            "<visit><treatment><test>x</test></treatment>"
            "<date>2006-05-06</date></visit>");
  // The treatment region is fully visible to nurses: accepted.
  TryUpdate(&engine, "nurse", "nurses",
            "replace //treatment[medication = 'headache'] with "
            "<treatment><medication>ibuprofen</medication></treatment>");
  // Doctors see everything; adding a follow-up visit for Carol is fine
  // (the applier slots it before the genealogy to satisfy the DTD).
  TryUpdate(&engine, "doctor", "doctors",
            "insert into hospital/patient[pname = 'Carol'] "
            "<visit><treatment><test>mri</test></treatment>"
            "<date>2006-07-08</date></visit>");

  std::printf("\n== re-queries over the maintained document ==\n");
  smoqe::core::QueryOptions nurse;
  nurse.view = "nurses";
  Show(&engine, "nurse", "//treatment", nurse);
  smoqe::core::QueryOptions indexed;
  indexed.use_tax = true;
  Show(&engine, "direct+TAX", "//patient[visit/treatment/test]/pname",
       indexed);

  std::printf("\n== the nurse view after the updates ==\n");
  auto after = engine.MaterializeView("ward", "nurses");
  std::printf("%s\n", after.ok() ? after->xml.c_str()
                                 : after.status().ToString().c_str());
  return 0;
}
