// ismoqe_cli — a line-oriented stand-in for the paper's iSMOQE front-end:
// load documents, register DTDs, define views (from policies or
// hand-written specifications), inspect view schemas, build indexes, and
// run queries with the engine internals exposed (MFA dump, node-coloring
// trace, statistics).
//
// Run:   ./build/ismoqe_cli          (starts with the hospital
//                                              demo pre-loaded; type 'help')
//
// Example session:
//   > schema autism-group
//   > query autism-group //patient/treatment
//   > explain autism-group hospital/patient/(parent/patient)*/treatment
//   > query - //pname            # '-' = direct (trusted) access
//   > index
//   > stats //medication

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "src/core/smoqe.h"
#include "src/workload/workloads.h"

namespace {

constexpr char kDoc[] = "ward";

void Help() {
  std::printf(R"(commands:
  help                                this text
  docs / views                        list catalog contents
  schema <view>                       DTD exposed to a user group
  spec <view>                         full view specification (DTD + sigma)
  policy <view> <dtd> <file-|inline>  define a view from a policy string
  query <view|-> <rxpath>             answer a query ('-' = direct access)
  explain <view|-> <rxpath>           query + MFA dump + HyPE trace
  stats <rxpath>                      direct query, statistics only
  index                               build the TAX index for '%s'
  quit
)",
              kDoc);
}

void PrintAnswer(const smoqe::Result<smoqe::core::QueryAnswer>& r,
                 bool verbose) {
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return;
  }
  for (const std::string& a : r->answers_xml) std::printf("%s\n", a.c_str());
  std::printf("-- %zu answer(s); %s\n", r->answers_xml.size(),
              r->stats.ToString().c_str());
  if (verbose) {
    if (!r->mfa_dump.empty()) {
      std::printf("-- MFA --\n%s", r->mfa_dump.c_str());
    }
    if (!r->trace_tree.empty()) {
      std::printf("-- trace (V visited / P pruned / C candidate / A answer) --\n%s",
                  r->trace_tree.c_str());
    }
  }
}

}  // namespace

int main() {
  smoqe::core::Smoqe engine;
  bool indexed = false;

  // Pre-load the paper's demo content.
  (void)engine.RegisterDtd("hospital", smoqe::workload::kHospitalDtd,
                           "hospital");
  auto text = smoqe::workload::GenHospitalText(2006, 2000);
  if (!text.ok() || !engine.LoadDocument(kDoc, *text).ok()) {
    std::printf("failed to set up the demo document\n");
    return 1;
  }
  (void)engine.DefineView("autism-group", "hospital",
                          smoqe::workload::kHospitalPolicyAutism);
  (void)engine.DefineView("research-group", "hospital",
                          smoqe::workload::kHospitalPolicyResearch);
  std::printf(
      "SMOQE demo console — document '%s' (%zu bytes), views: autism-group, "
      "research-group. Type 'help'.\n",
      kDoc, text->size());

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      Help();
    } else if (cmd == "docs") {
      for (const auto& d : engine.DocumentNames()) std::printf("%s\n", d.c_str());
    } else if (cmd == "views") {
      for (const auto& v : engine.ViewNames()) std::printf("%s\n", v.c_str());
    } else if (cmd == "schema" || cmd == "spec") {
      std::string view;
      in >> view;
      auto r = cmd == "schema" ? engine.ViewSchema(view)
                               : engine.ViewSpecification(view);
      std::printf("%s\n", r.ok() ? r->c_str() : r.status().ToString().c_str());
    } else if (cmd == "policy") {
      std::string view, dtd;
      in >> view >> dtd;
      std::string rest;
      std::getline(in, rest);
      smoqe::Status st = engine.DefineView(view, dtd, rest);
      std::printf("%s\n", st.ToString().c_str());
    } else if (cmd == "query" || cmd == "explain") {
      std::string view;
      in >> view;
      std::string q;
      std::getline(in, q);
      smoqe::core::QueryOptions opts;
      if (view != "-") opts.view = view;
      opts.explain = cmd == "explain";
      opts.use_tax = indexed && view == "-";
      PrintAnswer(engine.Query(kDoc, q, opts), opts.explain);
    } else if (cmd == "stats") {
      std::string q;
      std::getline(in, q);
      smoqe::core::QueryOptions opts;
      opts.use_tax = indexed;
      auto r = engine.Query(kDoc, q, opts);
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
      } else {
        std::printf("%s\n", r->stats.ToString().c_str());
      }
    } else if (cmd == "index") {
      smoqe::Status st = engine.BuildIndex(kDoc);
      indexed = st.ok();
      std::printf("%s\n", st.ToString().c_str());
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
