// DOM mode vs StAX mode (paper §2, "XML documents"): the same query over
// a generated hospital document, once against the in-memory tree and once
// in a single forward scan of the raw text. StAX mode buffers only
// candidate answers (peak bytes reported), which is what lets SMOQE
// process documents larger than memory.
//
// Run:   ./build/streaming_large_doc [target_nodes]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/automata/mfa.h"
#include "src/eval/hype_dom.h"
#include "src/eval/hype_stax.h"
#include "src/rxpath/parser.h"
#include "src/workload/workloads.h"
#include "src/xml/parser.h"

namespace {

double Ms(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  size_t target = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  auto text = smoqe::workload::GenHospitalText(42, target);
  if (!text.ok()) {
    std::printf("generation failed: %s\n", text.status().ToString().c_str());
    return 1;
  }
  std::printf("document: %zu bytes of XML\n", text->size());

  auto names = smoqe::xml::NameTable::Create();
  const char* query = "//patient[visit/treatment/medication = 'autism']/visit/date";
  auto q = smoqe::rxpath::ParseQuery(query);
  auto mfa = smoqe::automata::Mfa::Compile(**q, names);
  std::printf("query: %s\n\n", query);

  // --- DOM mode: parse to a tree, then evaluate.
  auto t0 = std::chrono::steady_clock::now();
  smoqe::xml::ParseOptions popts;
  popts.names = names;
  auto doc = smoqe::xml::ParseDocument(*text, popts);
  if (!doc.ok()) return 1;
  auto t1 = std::chrono::steady_clock::now();
  auto dom = smoqe::eval::EvalHypeDom(*mfa, *doc);
  auto t2 = std::chrono::steady_clock::now();
  std::printf("DOM mode:  parse %.1f ms + eval %.1f ms, tree memory %zu bytes\n",
              Ms(t0, t1), Ms(t1, t2), doc->memory_bytes());
  std::printf("           answers=%llu  %s\n",
              static_cast<unsigned long long>(dom->stats.answers),
              dom->stats.ToString().c_str());

  // --- StAX mode: one scan of the text, no tree.
  auto t3 = std::chrono::steady_clock::now();
  auto stax = smoqe::eval::EvalHypeStax(*mfa, *text);
  auto t4 = std::chrono::steady_clock::now();
  if (!stax.ok()) return 1;
  std::printf("StAX mode: scan+eval %.1f ms, peak answer buffer %llu bytes "
              "(%.2f%% of the document)\n",
              Ms(t3, t4),
              static_cast<unsigned long long>(stax->stats.buffered_bytes),
              100.0 * static_cast<double>(stax->stats.buffered_bytes) /
                  static_cast<double>(text->size()));
  std::printf("           answers=%llu  %s\n",
              static_cast<unsigned long long>(stax->stats.answers),
              stax->stats.ToString().c_str());

  if (stax->answers.size() != dom->answers.size()) {
    std::printf("MODE MISMATCH — this is a bug\n");
    return 1;
  }
  std::printf("\nboth modes agree on %zu answers; first: %s\n",
              stax->answers.size(),
              stax->answers.empty() ? "-" : stax->answers[0].xml.c_str());
  return 0;
}
