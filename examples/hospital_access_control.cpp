// The paper's end-to-end scenario (Fig. 3): a hospital document, the
// access-control policy S0, the derived security view σ0 + view DTD DV,
// and Regular XPath queries answered through the virtual view by query
// rewriting — including the paper's query Q0 (Fig. 4) with an iSMOQE-style
// explain rendering of the MFA and the HyPE run.
//
// Run:              ./build/hospital_access_control
// With internals:   ./build/hospital_access_control --explain

#include <cstdio>
#include <cstring>

#include "src/core/smoqe.h"
#include "src/workload/workloads.h"

namespace {

constexpr char kWard[] =
    "<hospital>"
    "<patient>"
    "<pname>Alice</pname>"
    "<visit><treatment><medication>autism</medication></treatment>"
    "<date>2006-01-02</date></visit>"
    "<parent><patient>"
    "<pname>Bob</pname>"
    "<visit><treatment><test>blood</test></treatment>"
    "<date>2006-02-03</date></visit>"
    "</patient></parent>"
    "</patient>"
    "<patient>"
    "<pname>Carol</pname>"
    "<visit><treatment><medication>headache</medication></treatment>"
    "<date>2006-03-04</date></visit>"
    "</patient>"
    "</hospital>";

void Show(smoqe::core::Smoqe* engine, const char* doc, const char* query,
          const smoqe::core::QueryOptions& opts, const char* who) {
  auto r = engine->Query(doc, query, opts);
  std::printf("[%s] %s\n", who, query);
  if (!r.ok()) {
    std::printf("    error: %s\n", r.status().ToString().c_str());
    return;
  }
  if (r->answers_xml.empty()) std::printf("    (no answers)\n");
  for (const std::string& a : r->answers_xml) {
    std::printf("    %s\n", a.c_str());
  }
  std::printf("    stats: %s\n", r->stats.ToString().c_str());
  if (!r->mfa_dump.empty()) {
    std::printf("---- MFA of the rewritten query (cf. Fig. 4) ----\n%s",
                r->mfa_dump.c_str());
  }
  if (!r->trace_tree.empty()) {
    std::printf(
        "---- HyPE run, V=visited P=pruned C=candidate A=answer "
        "(cf. Fig. 5) ----\n%s",
        r->trace_tree.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool explain = argc > 1 && std::strcmp(argv[1], "--explain") == 0;

  smoqe::core::Smoqe engine;
  if (!engine.RegisterDtd("hospital", smoqe::workload::kHospitalDtd,
                          "hospital")
           .ok() ||
      !engine.LoadDocument("ward", kWard).ok()) {
    std::printf("setup failed\n");
    return 1;
  }

  std::printf("== access control policy S0 (Fig. 3(b)) ==\n%s\n",
              smoqe::workload::kHospitalPolicyAutism);
  smoqe::Status st = engine.DefineView("autism-group", "hospital",
                                       smoqe::workload::kHospitalPolicyAutism);
  if (!st.ok()) {
    std::printf("DefineView: %s\n", st.ToString().c_str());
    return 1;
  }

  auto spec = engine.ViewSpecification("autism-group");
  std::printf("== derived view specification σ0 and DTD DV (Fig. 3(c,d)) ==\n%s\n",
              spec.ok() ? spec->c_str() : spec.status().ToString().c_str());

  smoqe::core::QueryOptions direct;
  direct.explain = explain;
  smoqe::core::QueryOptions group;
  group.view = "autism-group";
  group.explain = explain;

  // The paper's Q0, posed directly on the document by a trusted user.
  Show(&engine, "ward",
       "hospital/patient[(parent/patient)*/visit/treatment/test and "
       "visit/treatment[medication/text()='headache']]/pname",
       direct, "direct / Q0");

  // The autism user group works against the view schema.
  Show(&engine, "ward", "hospital/patient/treatment/medication", group,
       "autism-group");
  Show(&engine, "ward", "hospital/patient/(parent/patient)*/treatment", group,
       "autism-group");
  // Attempts to reach hidden data yield nothing.
  Show(&engine, "ward", "//pname", group, "autism-group");
  Show(&engine, "ward", "//test", group, "autism-group");
  return 0;
}
