// TAX — the type-aware XML index (paper §3, Indexer): build it over a
// generated org chart, dump its content (cf. Fig. 6), persist the
// compressed form to disk, reload it, and compare query evaluation with
// the indexer on vs off (subtree pruning statistics).
//
// Run:   ./build/indexed_queries [target_nodes]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/automata/mfa.h"
#include "src/eval/hype_dom.h"
#include "src/index/tax_io.h"
#include "src/rxpath/parser.h"
#include "src/workload/workloads.h"

namespace {

double Ms(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  size_t target = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  auto names = smoqe::xml::NameTable::Create();
  auto doc = smoqe::workload::GenOrg(7, target, names);
  if (!doc.ok()) {
    std::printf("generation failed: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("org document: %d nodes\n", doc->num_nodes());

  // Build, dump, persist, reload.
  auto t0 = std::chrono::steady_clock::now();
  smoqe::index::TaxIndex tax = smoqe::index::TaxIndex::Build(*doc);
  auto t1 = std::chrono::steady_clock::now();
  std::string encoded = smoqe::index::TaxIo::Encode(tax);
  std::printf("TAX: built in %.1f ms; raw %zu bytes, compressed %zu bytes "
              "(%.1fx)\n",
              Ms(t0, t1), tax.memory_bytes(), encoded.size(),
              static_cast<double>(tax.memory_bytes()) /
                  static_cast<double>(encoded.size()));
  std::printf("\n== index content, first levels (cf. Fig. 6) ==\n%s\n",
              tax.Dump(*doc, 12).c_str());

  const std::string path = "/tmp/smoqe_example_tax.idx";
  if (!smoqe::index::TaxIo::Save(tax, path).ok()) return 1;
  auto loaded = smoqe::index::TaxIo::Load(path);
  if (!loaded.ok()) return 1;
  std::printf("persisted and reloaded from %s\n\n", path.c_str());

  // Indexer off vs on, over the workload queries.
  std::printf("%-14s %10s %10s %12s %12s  answers\n", "query", "off(ms)",
              "on(ms)", "visited-off", "visited-on");
  for (const auto& bq : smoqe::workload::OrgQueries()) {
    auto q = smoqe::rxpath::ParseQuery(bq.text);
    auto mfa = smoqe::automata::Mfa::Compile(**q, names);

    auto t2 = std::chrono::steady_clock::now();
    auto off = smoqe::eval::EvalHypeDom(*mfa, *doc);
    auto t3 = std::chrono::steady_clock::now();

    smoqe::eval::DomEvalOptions with;
    with.tax = &*loaded;
    auto t4 = std::chrono::steady_clock::now();
    auto on = smoqe::eval::EvalHypeDom(*mfa, *doc, with);
    auto t5 = std::chrono::steady_clock::now();

    if (!off.ok() || !on.ok() ||
        off->answers.size() != on->answers.size()) {
      std::printf("%-14s MISMATCH — this is a bug\n", bq.id);
      return 1;
    }
    std::printf("%-14s %10.2f %10.2f %12llu %12llu  %zu\n", bq.id, Ms(t2, t3),
                Ms(t4, t5),
                static_cast<unsigned long long>(off->stats.nodes_visited),
                static_cast<unsigned long long>(on->stats.nodes_visited),
                on->answers.size());
  }
  std::printf("\n(the indexer prunes subtrees that cannot contain the "
              "types a query still needs)\n");
  return 0;
}
