// Engine-level telemetry tests (docs/DESIGN.md §8): DumpMetrics coverage
// in both formats, the audit-log differential invariant (every
// PermissionDenied from Smoqe::Update leaves exactly one kUpdateReject
// record carrying the explain string verbatim), trace span nesting under
// concurrent batches, and the telemetry-off engine.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/smoqe.h"
#include "tests/test_util.h"

namespace smoqe::core {
namespace {

namespace tel = ::smoqe::telemetry;

constexpr char kNursePolicy[] =
    "patient/pname   : N;\n"
    "patient/visit   : N;\n"
    "visit/treatment : Y;\n"
    "treatment/test  : Y;\n";

constexpr char kDoctorPolicy[] =
    "hospital/patient : Y;\n"
    "patient/pname    : Y;\n"
    "patient/visit    : Y;\n"
    "patient/parent   : Y;\n";

void SetupEngine(Smoqe* engine) {
  ASSERT_TRUE(engine
                  ->RegisterDtd("hospital", testutil::kHospitalDtd, "hospital")
                  .ok());
  ASSERT_TRUE(engine->LoadDocument("ward", testutil::kHospitalDoc).ok());
  ASSERT_TRUE(engine->DefineView("nurses", "hospital", kNursePolicy).ok());
  ASSERT_TRUE(engine->DefineView("doctors", "hospital", kDoctorPolicy).ok());
}

TEST(TelemetryFacade, DumpMetricsCoversEverySurface) {
  EngineOptions options;
  options.max_threads = 4;
  Smoqe engine(options);
  SetupEngine(&engine);

  QueryOptions nurse;
  nurse.view = "nurses";
  ASSERT_TRUE(engine.Query("ward", "//treatment", nurse).ok());
  ASSERT_TRUE(engine.Query("ward", "//treatment", nurse).ok());  // cache hit
  std::vector<BatchQueryItem> items;
  QueryOptions stax = nurse;
  stax.mode = EvalMode::kStax;
  items.push_back({"//treatment", stax});
  items.push_back({"//treatment/test", stax});
  items.push_back({"//pname", {}});
  ASSERT_TRUE(engine.QueryBatch("ward", items).ok());
  UpdateOptions up;
  up.view = "nurses";
  ASSERT_TRUE(engine
                  .Update("ward",
                          "replace //treatment[medication = 'headache'] with "
                          "<treatment><medication>x</medication></treatment>",
                          up)
                  .ok());
  ASSERT_FALSE(engine.Update("ward", "delete hospital/patient", up).ok());

  const std::string json = engine.DumpMetrics(tel::DumpFormat::kJson);
  for (const char* key :
       {"\"query.count\": 2", "\"batch.count\": 1", "\"batch.items\": 3",
        "\"update.count\": 2", "\"update.accepted\": 1",
        "\"update.rejected\": 1", "\"plan_cache.hits\"",
        "\"plan_cache.misses\"", "\"query.latency_ns\"",
        "\"update.latency_ns\"", "\"eval.nodes_visited\"",
        "\"snapshot.live\"", "\"doc.epoch.ward\": 1", "\"audit.total\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in:\n" << json;
  }
  const std::string prom = engine.DumpMetrics(tel::DumpFormat::kPrometheus);
  EXPECT_NE(prom.find("smoqe_query_count 2"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE smoqe_update_latency_ns summary"),
            std::string::npos);
}

TEST(TelemetryFacade, AuditDifferentialEveryDenialHasOneRecord) {
  Smoqe engine;
  SetupEngine(&engine);
  UpdateOptions nurse;
  nurse.view = "nurses";
  // A mix of rejected, accepted and error-status updates. Each rejected
  // statement is unique so records can be matched 1:1.
  const std::vector<const char*> denied = {
      "delete hospital/patient",
      "delete //patient",
      "insert into hospital/patient <visit><treatment><test>x</test>"
      "</treatment><date>d9</date></visit>",
      "replace hospital/patient with <patient><pname>Zed</pname></patient>",
  };
  std::vector<std::string> expected_explains;
  for (const char* stmt : denied) {
    auto r = engine.Update("ward", stmt, nurse);
    ASSERT_FALSE(r.ok()) << stmt;
    ASSERT_EQ(r.status().code(), StatusCode::kPermissionDenied) << stmt;
    expected_explains.push_back(std::string(r.status().message()));
  }
  // Interleave decisions that must NOT produce kUpdateReject records.
  ASSERT_TRUE(engine
                  .Update("ward",
                          "replace //treatment[medication = 'headache'] with "
                          "<treatment><medication>x</medication></treatment>",
                          nurse)
                  .ok());
  auto not_found = engine.Update("ward", "delete //nosuch", UpdateOptions{});
  ASSERT_TRUE(not_found.ok());  // empty target set: successful no-op

  tel::AuditFilter rejects;
  const tel::AuditKind kind = tel::AuditKind::kUpdateReject;
  rejects.kind = &kind;
  const auto records = engine.telemetry()->audit().Query(rejects);
  ASSERT_EQ(records.size(), denied.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].statement, denied[i]);
    EXPECT_EQ(records[i].explain, expected_explains[i])
        << "audit explain must match the returned status verbatim";
    EXPECT_FALSE(records[i].allowed);
    EXPECT_EQ(records[i].view, "nurses");
    EXPECT_EQ(records[i].doc, "ward");
  }
  // The accepted update contributed exactly one kUpdateAccept.
  tel::AuditFilter accepts;
  const tel::AuditKind akind = tel::AuditKind::kUpdateAccept;
  accepts.kind = &akind;
  EXPECT_EQ(engine.telemetry()->audit().Query(accepts).size(), 1u);
}

TEST(TelemetryFacade, QueryTraceHasPipelineSpans) {
  Smoqe engine;
  SetupEngine(&engine);
  QueryOptions nurse;
  nurse.view = "nurses";
  auto r = engine.Query("ward", "//treatment/test", nurse);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->trace_id, 0u);
  auto trace = engine.telemetry()->traces().Find(r->trace_id);
  ASSERT_NE(trace, nullptr);
  std::set<std::string> names;
  for (const tel::SpanRecord& s : trace->spans()) names.insert(s.name);
  for (const char* stage : {"parse", "cache_lookup", "rewrite", "evaluate"}) {
    EXPECT_NE(names.find(stage), names.end()) << "missing span " << stage;
  }
  // A repeat of the same query compiles from the cache: no rewrite span.
  auto r2 = engine.Query("ward", "//treatment/test", nurse);
  ASSERT_TRUE(r2.ok());
  auto trace2 = engine.telemetry()->traces().Find(r2->trace_id);
  ASSERT_NE(trace2, nullptr);
  for (const tel::SpanRecord& s : trace2->spans()) {
    EXPECT_NE(s.name, "rewrite");
    EXPECT_NE(s.name, "compile");
  }
}

TEST(TelemetryFacade, BatchTraceNestsItemsUnderEvaluate) {
  EngineOptions options;
  options.max_threads = 4;
  Smoqe engine(options);
  SetupEngine(&engine);
  std::vector<BatchQueryItem> items;
  for (const char* q : {"//pname", "//medication", "//visit/date"}) {
    items.push_back({q, {}});  // DOM items fan out across the pool
  }
  auto r = engine.QueryBatch("ward", items);
  ASSERT_TRUE(r.ok());
  ASSERT_NE((*r)[0].trace_id, 0u);
  auto trace = engine.telemetry()->traces().Find((*r)[0].trace_id);
  ASSERT_NE(trace, nullptr);
  const auto spans = trace->spans();
  int32_t dom_span = -1;
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].end_ns, spans[i].start_ns);
    EXPECT_LT(spans[i].parent, static_cast<int32_t>(i));
    if (spans[i].name == "evaluate.dom_items") {
      dom_span = static_cast<int32_t>(i);
    }
  }
  ASSERT_NE(dom_span, -1);
  size_t nested_items = 0;
  for (const tel::SpanRecord& s : spans) {
    if (s.name == "item" && s.parent == dom_span) ++nested_items;
  }
  EXPECT_EQ(nested_items, items.size());
}

TEST(TelemetryFacade, ConcurrentQueriesKeepCountersExact) {
  EngineOptions options;
  options.max_threads = 4;
  Smoqe engine(options);
  SetupEngine(&engine);
  constexpr int kThreads = 8, kPer = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine] {
      QueryOptions nurse;
      nurse.view = "nurses";
      for (int i = 0; i < kPer; ++i) {
        ASSERT_TRUE(engine.Query("ward", "//treatment", nurse).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  tel::MetricsRegistry& reg = engine.telemetry()->registry();
  EXPECT_EQ(reg.GetCounter("query.count").Value(),
            static_cast<uint64_t>(kThreads) * kPer);
  EXPECT_EQ(reg.GetCounter("query.errors").Value(), 0u);
  EXPECT_EQ(reg.GetHistogram("query.latency_ns").Count(),
            static_cast<uint64_t>(kThreads) * kPer);
  // Every query was a view query → one kQueryRewrite audit record each
  // (bounded by the audit capacity; 200 < 4096 so nothing dropped).
  EXPECT_EQ(engine.telemetry()->audit().total(),
            static_cast<uint64_t>(kThreads) * kPer);
  EXPECT_EQ(engine.telemetry()->audit().dropped(), 0u);
}

TEST(TelemetryFacade, DisabledTelemetryRecordsNothing) {
  EngineOptions options;
  options.telemetry.enabled = false;
  Smoqe engine(options);
  SetupEngine(&engine);
  QueryOptions nurse;
  nurse.view = "nurses";
  auto r = engine.Query("ward", "//treatment", nurse);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->trace_id, 0u);
  EXPECT_EQ(engine.telemetry(), nullptr);
  EXPECT_EQ(engine.DumpMetrics(tel::DumpFormat::kJson), "{}\n");
  EXPECT_EQ(engine.DumpMetrics(tel::DumpFormat::kPrometheus), "");
  UpdateOptions up;
  up.view = "nurses";
  auto denied = engine.Update("ward", "delete hospital/patient", up);
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

TEST(TelemetryFacade, EpochLagObservedAfterUpdate) {
  Smoqe engine;
  SetupEngine(&engine);
  ASSERT_TRUE(engine.Query("ward", "//pname", {}).ok());
  ASSERT_TRUE(engine
                  .Update("ward",
                          "replace //treatment[medication = 'headache'] with "
                          "<treatment><medication>x</medication></treatment>",
                          UpdateOptions{})
                  .ok());
  ASSERT_TRUE(engine.Query("ward", "//pname", {}).ok());
  tel::MetricsRegistry& reg = engine.telemetry()->registry();
  // Both queries saw the freshest epoch → lag samples exist and are 0.
  EXPECT_EQ(reg.GetHistogram("query.epoch_lag").Count(), 2u);
  EXPECT_EQ(reg.GetHistogram("query.epoch_lag").Max(), 0u);
  // The update timed its apply phase under exactly one of the two
  // maintenance histograms (no TAX index here → repair path, no rebuild).
  EXPECT_EQ(reg.GetHistogram("update.tax_repair_ns").Count() +
                reg.GetHistogram("update.tax_rebuild_ns").Count(),
            1u);
}

}  // namespace
}  // namespace smoqe::core
