// Guardrail tests (docs/DESIGN.md §9): unit coverage of the primitives
// (Deadline, CancelToken, MemoryBudget, Guardrail, GuardTicker,
// FaultInjector), facade-level deadline / budget / cancellation /
// admission semantics, and the deterministic fault matrix — after every
// injected failure the engine must answer the *next* request
// byte-identically to an engine that never faulted.

#include "src/common/guardrail.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/smoqe.h"
#include "tests/test_util.h"

namespace smoqe {
namespace {

using Millis = std::chrono::milliseconds;

void SleepMs(int ms) { std::this_thread::sleep_for(Millis(ms)); }

// --- primitives ---

TEST(DeadlineTest, DefaultAndZeroAreUnlimited) {
  EXPECT_TRUE(Deadline().unlimited());
  EXPECT_FALSE(Deadline().Expired());
  EXPECT_TRUE(Deadline::After(0).unlimited());
  Deadline far = Deadline::After(60'000);
  EXPECT_FALSE(far.unlimited());
  EXPECT_FALSE(far.Expired());
}

TEST(DeadlineTest, HugeDeadlinesSaturateToUnlimited) {
  // u64 garbage (the server fuzzer feeds mutated wire values straight
  // into RequestOptions) must not overflow the clock's signed
  // nanosecond representation — anything past ~10 years is unlimited.
  EXPECT_TRUE(Deadline::After(~0ull).unlimited());
  EXPECT_TRUE(Deadline::After(0xFF00000000000000ull).unlimited());
  EXPECT_FALSE(Deadline::After(~0ull).Expired());
  EXPECT_FALSE(Deadline::After(60'000).unlimited());
}

TEST(DeadlineTest, ExpiresAfterItsWindow) {
  Deadline d = Deadline::After(1);
  SleepMs(5);
  EXPECT_TRUE(d.Expired());
}

TEST(CancelTokenTest, CancelSticksUntilReset) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
  t.Cancel();
  EXPECT_TRUE(t.cancelled());
  t.Cancel();  // idempotent
  EXPECT_TRUE(t.cancelled());
  t.Reset();
  EXPECT_FALSE(t.cancelled());
}

TEST(MemoryBudgetTest, ChargesAndSticksOnceExceeded) {
  MemoryBudget b(100);
  EXPECT_TRUE(b.Charge(60));
  EXPECT_FALSE(b.exceeded());
  EXPECT_FALSE(b.Charge(60));  // 120 > 100
  EXPECT_TRUE(b.exceeded());
  EXPECT_FALSE(b.Charge(1)) << "an exceeded budget must stay exceeded";
  EXPECT_EQ(b.used(), 121u);
  b.Reset(50);
  EXPECT_FALSE(b.exceeded());
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(b.limit(), 50u);
}

TEST(MemoryBudgetTest, UnlimitedStillAccounts) {
  MemoryBudget b;
  EXPECT_TRUE(b.Charge(1'000'000));
  EXPECT_FALSE(b.exceeded());
  EXPECT_EQ(b.used(), 1'000'000u);
  b.ForceExceed();  // the fault-injection hook works even when unlimited
  EXPECT_TRUE(b.exceeded());
}

TEST(GuardrailTest, CheckOrderIsCancelBudgetDeadline) {
  CancelToken cancel;
  cancel.Cancel();
  MemoryBudget budget(1);
  budget.ForceExceed();
  Guardrail g(Deadline::After(1), &cancel, &budget);
  SleepMs(5);  // all three conditions now hold
  EXPECT_EQ(g.Check().code(), StatusCode::kCancelled);
  cancel.Reset();
  EXPECT_EQ(g.Check().code(), StatusCode::kResourceExhausted);
  budget.Reset(1);
  EXPECT_EQ(g.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(GuardrailTest, DefaultGuardrailNeverTrips) {
  Guardrail g;
  EXPECT_TRUE(g.Check().ok());
  g.ChargeBytes(1 << 20);  // null budget: charge is a no-op
  EXPECT_TRUE(g.Check().ok());
}

TEST(GuardTickerTest, DueEveryPeriodAndNeverForNullGuard) {
  Guardrail g;
  GuardTicker ticker(&g, 4);
  int due = 0;
  for (int i = 0; i < 12; ++i) {
    if (ticker.Due()) ++due;
  }
  EXPECT_EQ(due, 3);

  GuardTicker null_ticker(nullptr, 1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(null_ticker.Due());
    EXPECT_TRUE(null_ticker.Tick().ok());
  }
  EXPECT_TRUE(null_ticker.Now().ok());
}

TEST(GuardTickerTest, TickSurfacesTheGuardError) {
  CancelToken cancel;
  Guardrail g(Deadline(), &cancel, nullptr);
  GuardTicker ticker(&g, 2);
  EXPECT_TRUE(ticker.Tick().ok());  // not due yet
  cancel.Cancel();
  EXPECT_EQ(ticker.Tick().code(), StatusCode::kCancelled);  // due
  EXPECT_EQ(ticker.Now().code(), StatusCode::kCancelled);
}

#ifdef SMOQE_FAULT_INJECTION

TEST(FaultInjectorTest, FiresOnExactlyTheKthHit) {
  auto& inj = fault::FaultInjector::Instance();
  inj.Reset();
  inj.Arm("test.site", 3);
  EXPECT_FALSE(fault::At("test.site"));
  EXPECT_FALSE(fault::At("test.site"));
  EXPECT_TRUE(fault::At("test.site"));
  EXPECT_FALSE(fault::At("test.site")) << "a site fires exactly once";
  EXPECT_EQ(inj.Hits("test.site"), 4u);
  EXPECT_FALSE(fault::At("never.armed"));
  inj.Reset();
  EXPECT_FALSE(fault::At("test.site")) << "Reset disarms";
}

TEST(FaultInjectorTest, SeededArmIsDeterministic) {
  auto& inj = fault::FaultInjector::Instance();
  auto fire_index = [&inj](uint64_t seed) -> int {
    inj.Reset();
    inj.ArmSeeded("test.seeded", seed, 8);
    for (int i = 1; i <= 8; ++i) {
      if (fault::At("test.seeded")) return i;
    }
    return -1;
  };
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    int first = fire_index(seed);
    EXPECT_GE(first, 1) << "seed " << seed << " must fire within max_k";
    EXPECT_EQ(first, fire_index(seed)) << "seed " << seed;
  }
  inj.Reset();
}

#endif  // SMOQE_FAULT_INJECTION

}  // namespace
}  // namespace smoqe

// ---------------------------------------------------------------------
// Facade semantics: admission, deadline precision, budgets, cancellation,
// and the fault matrix with its recovery differential.
// ---------------------------------------------------------------------

namespace smoqe::core {
namespace {

using Clock = std::chrono::steady_clock;

constexpr char kHotQuery[] =
    "//patient[visit/treatment/medication = 'autism']/pname";

constexpr char kNursePolicy[] =
    "patient/pname   : N;\n"
    "patient/visit   : N;\n"
    "visit/treatment : Y;\n"
    "treatment/test  : Y;\n";

int64_t ElapsedMs(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               t0)
      .count();
}

// Deep-workload fixture: a generated ~100k-node hospital document. The
// batch returned by BigBatch() is calibrated so an ungoverned pass takes
// well past the deadlines the tests set — deadline trips can then be
// asserted without guessing host speed.
class GuardrailFacadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Instance().Reset();
    ASSERT_TRUE(
        engine_.RegisterDtd("hospital", testutil::kHospitalDtd, "hospital")
            .ok());
    ASSERT_TRUE(engine_.GenerateDocument("big", "hospital", 7, 100000).ok());
  }
  void TearDown() override { fault::FaultInjector::Instance().Reset(); }

  const std::vector<BatchQueryItem>& BigBatch() {
    static std::vector<BatchQueryItem>* cached = nullptr;
    if (cached == nullptr) {
      cached = new std::vector<BatchQueryItem>;
      QueryOptions stax;
      stax.mode = EvalMode::kStax;
      for (int i = 0; i < 8; ++i) cached->push_back({kHotQuery, stax});
      // Double the batch until an ungoverned pass takes ≥250ms: the
      // shared StAX scan advances every plan per event, so cost scales
      // with the item count.
      while (cached->size() < 1024) {
        Clock::time_point t0 = Clock::now();
        auto r = engine_.QueryBatch("big", *cached);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (ElapsedMs(t0) >= 250) break;
        const std::vector<BatchQueryItem> half = *cached;
        cached->insert(cached->end(), half.begin(), half.end());
      }
    }
    return *cached;
  }

  uint64_t GuardCounter(const char* name) {
    return engine_.telemetry()->registry().GetCounter(name).Value();
  }

  Smoqe engine_;
};

TEST_F(GuardrailFacadeTest, DeadlineExceededWithinSlack) {
  const auto& items = BigBatch();
  RequestOptions req;
  req.deadline_ms = 50;
  Clock::time_point t0 = Clock::now();
  auto r = engine_.QueryBatch("big", items, req);
  int64_t elapsed = ElapsedMs(t0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_LE(elapsed, 50 + 20) << "detection latency must stay within slack";
  EXPECT_GE(GuardCounter("guard.deadline_exceeded"), 1u);
  // Recovery: the identical ungoverned batch still answers.
  auto again = engine_.QueryBatch("big", items);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE((*again)[0].answers_xml.empty() &&
               (*again)[0].status.ok() == false);
}

TEST_F(GuardrailFacadeTest, SingleQueryDeadlineTripsDuringTheScan) {
  RequestOptions req;
  req.deadline_ms = 1;
  QueryOptions stax;
  stax.mode = EvalMode::kStax;
  auto r = engine_.Query("big", kHotQuery, stax, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
}

TEST_F(GuardrailFacadeTest, EngineDefaultDeadlineAppliesAndIsOverridable) {
  EngineOptions opts;
  opts.default_deadline_ms = 1;
  Smoqe strict(opts);
  auto xml = engine_.DocumentXml("big");
  ASSERT_TRUE(xml.ok());
  ASSERT_TRUE(strict.LoadDocument("big", *xml).ok());
  QueryOptions stax;
  stax.mode = EvalMode::kStax;
  auto tripped = strict.Query("big", kHotQuery, stax);
  ASSERT_FALSE(tripped.ok());
  EXPECT_EQ(tripped.status().code(), StatusCode::kDeadlineExceeded);
  RequestOptions relaxed;
  relaxed.deadline_ms = 60'000;  // per-request beats the engine default
  EXPECT_TRUE(strict.Query("big", kHotQuery, stax, relaxed).ok());
}

TEST_F(GuardrailFacadeTest, MemoryBudgetUnwindsWithResourceExhausted) {
  RequestOptions req;
  req.max_memory_bytes = 4096;
  auto r = engine_.Query("big", kHotQuery, {}, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_GE(GuardCounter("guard.budget_exceeded"), 1u);
  // Recovery differential: ungoverned, the engine answers exactly like
  // an engine that never saw the over-budget request.
  auto probe = engine_.Query("big", kHotQuery);
  ASSERT_TRUE(probe.ok());
  Smoqe control;
  auto xml = engine_.DocumentXml("big");
  ASSERT_TRUE(xml.ok());
  ASSERT_TRUE(control.LoadDocument("big", *xml).ok());
  auto expected = control.Query("big", kHotQuery);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(probe->answers_xml, expected->answers_xml);
}

TEST_F(GuardrailFacadeTest, PreCancelledTokenFailsFast) {
  CancelToken token;
  token.Cancel();
  RequestOptions req;
  req.cancel = &token;
  Clock::time_point t0 = Clock::now();
  auto r = engine_.Query("big", kHotQuery, {}, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_LE(ElapsedMs(t0), 50) << "entry check must reject before any work";
  EXPECT_GE(GuardCounter("guard.cancelled"), 1u);
}

TEST_F(GuardrailFacadeTest, MidFlightCancellationUnwinds) {
  const auto& items = BigBatch();
  CancelToken token;
  RequestOptions req;
  req.cancel = &token;
  Result<std::vector<QueryAnswer>> result = Status::Internal("not run");
  std::thread worker(
      [&] { result = engine_.QueryBatch("big", items, req); });
  SleepMs(20);
  token.Cancel();
  worker.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  // The engine is unharmed: the same batch completes afterwards.
  EXPECT_TRUE(engine_.QueryBatch("big", items).ok());
}

TEST_F(GuardrailFacadeTest, AdmissionGateRejectsWhenFull) {
  EngineOptions opts;
  opts.max_pending_requests = 1;
  Smoqe gated(opts);
  auto xml = engine_.DocumentXml("big");
  ASSERT_TRUE(xml.ok());
  ASSERT_TRUE(gated.LoadDocument("big", *xml).ok());

  const auto& items = BigBatch();
  CancelToken token;
  RequestOptions req;
  req.cancel = &token;
  Result<std::vector<QueryAnswer>> slow = Status::Internal("not run");
  std::thread worker([&] { slow = gated.QueryBatch("big", items, req); });

  // While the slow batch holds the only slot, every other request must
  // fast-fail with RejectedBusy (never block, never partially answer).
  bool saw_busy = false;
  std::string busy_message;
  for (int i = 0; i < 2000 && !saw_busy; ++i) {
    auto r = gated.Query("big", "//pname");
    if (!r.ok() && r.status().code() == StatusCode::kRejectedBusy) {
      saw_busy = true;
      busy_message = std::string(r.status().message());
    } else {
      SleepMs(1);
    }
  }
  token.Cancel();
  worker.join();
  ASSERT_TRUE(saw_busy);
  EXPECT_NE(busy_message.find("max_pending_requests"), std::string::npos);
  EXPECT_GE(
      gated.telemetry()->registry().GetCounter("guard.admission_rejected")
          .Value(),
      1u);
  // The slot is free again: the same query now runs.
  EXPECT_TRUE(gated.Query("big", "//pname").ok());
}

TEST_F(GuardrailFacadeTest, GuardTerminationFailsTheWholeBatchCall) {
  // Item-local errors fail per item (plan_cache_test BatchErrorPaths),
  // but a tripped guard is a request-level outcome: the whole call fails
  // and no partial answers escape.
  std::vector<BatchQueryItem> items = BigBatch();
  items.push_back({"a[[", items[0].options});  // would be item-local alone
  RequestOptions req;
  req.deadline_ms = 1;
  auto r = engine_.QueryBatch("big", items, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

// --- update guard contract: abort strictly before Publish ---

TEST_F(GuardrailFacadeTest, UpdateBudgetAbortsPrePublish) {
  Smoqe e;
  ASSERT_TRUE(e.LoadDocument("d", "<r><item>t</item></r>").ok());
  const std::string before = *e.DocumentXml("d");
  // The grafted fragment's text forces arena growth on the clone, which
  // charges the request budget far past its limit.
  std::string stmt = "insert into r <item>" + std::string(1 << 20, 'x') +
                     "</item>";
  RequestOptions req;
  req.max_memory_bytes = 1024;
  auto r = e.Update("d", stmt, {}, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_EQ(*e.DocumentEpoch("d"), 0u) << "no snapshot may be published";
  EXPECT_EQ(*e.DocumentXml("d"), before);
  // Ungoverned, the identical update applies.
  ASSERT_TRUE(e.Update("d", stmt).ok());
  EXPECT_EQ(*e.DocumentEpoch("d"), 1u);
}

TEST_F(GuardrailFacadeTest, CancelledUpdateLeavesNoAuditRecord) {
  Smoqe e;
  ASSERT_TRUE(
      e.RegisterDtd("hospital", testutil::kHospitalDtd, "hospital").ok());
  ASSERT_TRUE(e.LoadDocument("ward", testutil::kHospitalDoc).ok());
  ASSERT_TRUE(e.DefineView("nurses", "hospital", kNursePolicy).ok());
  const uint64_t audit_before = e.telemetry()->audit().total();

  CancelToken token;
  token.Cancel();
  RequestOptions req;
  req.cancel = &token;
  UpdateOptions nurse;
  nurse.view = "nurses";
  auto r = e.Update("ward", "delete hospital/patient", nurse, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(e.telemetry()->audit().total(), audit_before)
      << "guard rejections are not authorization decisions "
         "(docs/QUERY_LANGUAGE.md)";

  // A real denial, by contrast, appends exactly one reject record.
  auto denied = e.Update("ward", "delete hospital/patient", nurse);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(e.telemetry()->audit().total(), audit_before + 1);
}

#ifdef SMOQE_FAULT_INJECTION

// ---------------------------------------------------------------------
// Fault matrix: every injection site, each followed by the recovery
// differential — the next request answers byte-identically to a control
// engine that never faulted.
// ---------------------------------------------------------------------

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Instance().Reset();
    SetupEngine(&engine_);
    SetupEngine(&control_);
  }
  void TearDown() override { fault::FaultInjector::Instance().Reset(); }

  static void SetupEngine(Smoqe* e) {
    ASSERT_TRUE(
        e->RegisterDtd("hospital", testutil::kHospitalDtd, "hospital").ok());
    ASSERT_TRUE(e->LoadDocument("ward", testutil::kHospitalDoc).ok());
    ASSERT_TRUE(e->BuildIndex("ward").ok());
  }

  // Asserts engine_ and control_ agree byte-for-byte: document text,
  // epoch, and the answers to a probe query in both modes.
  void ExpectConverged() {
    EXPECT_EQ(*engine_.DocumentXml("ward"), *control_.DocumentXml("ward"));
    EXPECT_EQ(*engine_.DocumentEpoch("ward"), *control_.DocumentEpoch("ward"));
    for (EvalMode mode : {EvalMode::kDom, EvalMode::kStax}) {
      QueryOptions q;
      q.mode = mode;
      auto got = engine_.Query("ward", "//treatment", q);
      auto want = control_.Query("ward", "//treatment", q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(got->answers_xml, want->answers_xml);
    }
  }

  Smoqe engine_;
  Smoqe control_;
};

TEST_F(FaultMatrixTest, TokenizerFaultMidScan) {
  fault::FaultInjector::Instance().Arm("stax.read", 5);
  QueryOptions stax;
  stax.mode = EvalMode::kStax;
  auto r = engine_.Query("ward", "//treatment", stax);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError) << r.status().ToString();
  ExpectConverged();
}

TEST_F(FaultMatrixTest, AllocFaultDuringRunExpansion) {
  // "engine.alloc" lives in Guardrail::ChargeBytes, so it needs a
  // budgeted request over a document big enough to reach a charge flush.
  ASSERT_TRUE(
      engine_.GenerateDocument("big", "hospital", 11, 20000).ok());
  ASSERT_TRUE(
      control_.GenerateDocument("big", "hospital", 11, 20000).ok());
  fault::FaultInjector::Instance().Arm("engine.alloc", 1);
  RequestOptions req;
  req.max_memory_bytes = 1ull << 30;  // never exceeded on its own
  auto r = engine_.Query("big", kHotQuery, {}, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  auto got = engine_.Query("big", kHotQuery);
  auto want = control_.Query("big", kHotQuery);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->answers_xml, want->answers_xml);
}

TEST_F(FaultMatrixTest, StalledPoolWorkerOnlyDelays) {
  EngineOptions opts;
  opts.max_threads = 2;
  Smoqe pooled(opts);
  SetupEngine(&pooled);
  std::vector<BatchQueryItem> items = {
      {"//treatment", {}}, {"//pname", {}}, {"//medication", {}},
      {"//visit", {}}};
  auto clean = pooled.QueryBatch("ward", items);
  ASSERT_TRUE(clean.ok());
  fault::FaultInjector::Instance().Arm("pool.task", 1);
  auto stalled = pooled.QueryBatch("ward", items);
  ASSERT_TRUE(stalled.ok()) << "a stalled worker delays, it must not fail";
  ASSERT_EQ(stalled->size(), clean->size());
  for (size_t i = 0; i < clean->size(); ++i) {
    EXPECT_EQ((*stalled)[i].answers_xml, (*clean)[i].answers_xml) << i;
  }
}

TEST_F(FaultMatrixTest, IndexRepairFaultAbortsUpdatePrePublish) {
  const char* stmt =
      "insert into hospital/patient <visit><treatment><medication>m"
      "</medication></treatment><date>d9</date></visit>";
  fault::FaultInjector::Instance().Arm("tax.repair", 1);
  auto r = engine_.Update("ward", stmt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal) << r.status().ToString();
  EXPECT_EQ(*engine_.DocumentEpoch("ward"), 0u);
  ExpectConverged();  // nothing published, nothing torn
  // Disarmed now (a site fires once): the same update applies, and both
  // engines converge again.
  ASSERT_TRUE(engine_.Update("ward", stmt).ok());
  ASSERT_TRUE(control_.Update("ward", stmt).ok());
  EXPECT_EQ(*engine_.DocumentEpoch("ward"), 1u);
  ExpectConverged();
}

TEST_F(FaultMatrixTest, ApplyFaultAbortsUpdatePrePublish) {
  const char* stmt = "delete //treatment[medication = 'headache']";
  fault::FaultInjector::Instance().Arm("update.apply", 1);
  auto r = engine_.Update("ward", stmt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal) << r.status().ToString();
  EXPECT_EQ(*engine_.DocumentEpoch("ward"), 0u);
  ExpectConverged();
  ASSERT_TRUE(engine_.Update("ward", stmt).ok());
  ASSERT_TRUE(control_.Update("ward", stmt).ok());
  ExpectConverged();
}

TEST_F(FaultMatrixTest, SeededSweepOverTokenizerFaults) {
  // Matrix row: sweep deterministic (site, seed) pairs; every faulted
  // query fails cleanly and the engine recovers each time.
  QueryOptions stax;
  stax.mode = EvalMode::kStax;
  auto want = control_.Query("ward", "//treatment", stax);
  ASSERT_TRUE(want.ok());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    // max_k = 8: well below the scan's event count, so the armed hit
    // always lands inside this query's pass.
    fault::FaultInjector::Instance().ArmSeeded("stax.read", seed, 8);
    auto r = engine_.Query("ward", "//treatment", stax);
    ASSERT_FALSE(r.ok()) << "seed " << seed;
    EXPECT_EQ(r.status().code(), StatusCode::kIOError) << "seed " << seed;
    fault::FaultInjector::Instance().Reset();
    auto probe = engine_.Query("ward", "//treatment", stax);
    ASSERT_TRUE(probe.ok()) << "seed " << seed;
    EXPECT_EQ(probe->answers_xml, want->answers_xml) << "seed " << seed;
  }
}

#endif  // SMOQE_FAULT_INJECTION

}  // namespace
}  // namespace smoqe::core
