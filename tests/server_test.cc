// The differential server-vs-library contract (ISSUE PR8 tentpole):
// every byte of every server response must decode to exactly what the
// library facade answers for the same (role, query/update) at the same
// epoch. Twin engines — one behind a TestServer, one driven directly
// through core::Session — are built identically and fed identical
// request sequences; responses are compared field by field (wire code,
// error text, epoch, answer bytes). Covers sequential randomized traffic
// with interleaved updates, pipelined clients, concurrent clients, batch
// semantics, and the handshake / protocol-discipline edges.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/session.h"
#include "src/core/smoqe.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/test_server.h"
#include "tests/server_test_util.h"
#include "tests/test_util.h"

namespace smoqe::server {
namespace {

using testutil2::Mix;
using testutil2::RawConn;
using testutil2::RawHandshake;
using testutil2::ServerEngineOptions;
using testutil2::SetupHospitalEngine;

const char* const kRoles[] = {"", "autism-group", "research-group"};

// Update statements cycled through the randomized differential; the mix
// has accepted, rejected (through a view) and parse-error outcomes so
// the error paths are compared too, not just the happy bytes.
const char* const kUpdates[] = {
    "insert into hospital/patient[pname = 'Carol'] "
    "<visit><treatment><test>mri</test></treatment><date>d9</date></visit>",
    "delete //treatment[medication = 'flu']",
    "replace //treatment[medication = 'headache'] with "
    "<treatment><medication>ibuprofen</medication></treatment>",
    "delete hospital/patient",     // rejected through restrictive views
    "insert into //nonexistent <x/>",
    "delete a[[",                  // parse error, state untouched
};

class ServerDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    served_ = std::make_unique<core::Smoqe>(ServerEngineOptions());
    ref_ = std::make_unique<core::Smoqe>(ServerEngineOptions());
    SetupHospitalEngine(*served_);
    SetupHospitalEngine(*ref_);
    server_ = std::make_unique<TestServer>(served_.get());
    ASSERT_TRUE(server_->ok()) << server_->start_status().ToString();
  }

  Client MustConnect(const std::string& role) {
    ClientOptions o;
    o.port = server_->port();
    o.role = role;
    o.recv_timeout_ms = 30'000;  // a hung server fails tests, not CI jobs
    auto c = Client::Connect(o);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.MoveValue();
  }

  core::Session MustOpen(const std::string& role) {
    auto s = core::Session::Open(ref_.get(), role);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return s.MoveValue();
  }

  std::unique_ptr<core::Smoqe> served_;
  std::unique_ptr<core::Smoqe> ref_;
  std::unique_ptr<TestServer> server_;
};

/// The byte-level contract for one query, asserted everywhere: the wire
/// response carries exactly the library result — same code, same error
/// text, same epoch, same answer bytes in the same order.
void ExpectQueryEquiv(const QueryResponse& wire,
                      const Result<core::QueryAnswer>& lib,
                      const std::string& context) {
  if (!lib.ok()) {
    EXPECT_EQ(wire.code, FromStatus(lib.status().code())) << context;
    EXPECT_EQ(wire.error, lib.status().message()) << context;
    EXPECT_TRUE(wire.answers_xml.empty()) << context;
    return;
  }
  ASSERT_EQ(wire.code, WireCode::kOk)
      << context << ": server errored (" << wire.error
      << ") where the library answered";
  EXPECT_EQ(wire.doc_epoch, lib->doc_epoch) << context;
  EXPECT_EQ(wire.answers_xml, lib->answers_xml) << context;
}

void ExpectUpdateEquiv(const UpdateResponse& wire,
                       const Result<core::UpdateResult>& lib,
                       const std::string& context) {
  if (!lib.ok()) {
    EXPECT_EQ(wire.code, FromStatus(lib.status().code())) << context;
    EXPECT_EQ(wire.error, lib.status().message()) << context;
    return;
  }
  ASSERT_EQ(wire.code, WireCode::kOk)
      << context << ": server errored (" << wire.error
      << ") where the library applied";
  EXPECT_EQ(wire.doc_epoch, lib->stats.doc_epoch) << context;
  EXPECT_EQ(wire.canonical, lib->canonical) << context;
  EXPECT_EQ(wire.nodes_inserted, lib->stats.nodes_inserted) << context;
  EXPECT_EQ(wire.nodes_deleted, lib->stats.nodes_deleted) << context;
}

// ≥200 randomized (role, view, query/update) requests, sequential: the
// acceptance-criteria core. Updates are interleaved (every 12th request)
// and applied to both engines in lockstep, so epochs advance identically
// and every comparison is at a defined epoch.
TEST_F(ServerDifferentialTest, RandomizedSequentialTrafficIsEquivalent) {
  const std::vector<const char*> corpus =
      smoqe::testutil::HospitalQueryCorpus();
  std::map<std::string, Client> clients;
  std::map<std::string, core::Session> sessions;
  for (const char* role : kRoles) {
    clients.emplace(role, MustConnect(role));
    sessions.emplace(role, MustOpen(role));
  }

  size_t updates_done = 0;
  constexpr int kRequests = 240;
  for (int i = 0; i < kRequests; ++i) {
    const uint64_t r = Mix(0xD1FFull * 1000 + static_cast<uint64_t>(i));
    const std::string role = kRoles[r % 3];
    Client& client = clients.at(role);
    core::Session& session = sessions.at(role);
    const std::string context =
        "request " + std::to_string(i) + " role '" + role + "'";

    if (i % 12 == 5) {
      // Update turn. Only the ward: the generated doc stays static as
      // DOM/StAX comparison substrate.
      UpdateRequest u;
      u.doc = "ward";
      u.statement = kUpdates[updates_done % (sizeof(kUpdates) / sizeof(*kUpdates))];
      u.dry_run = (Mix(r) % 4 == 0) ? 1 : 0;
      ++updates_done;
      auto lib = session.Update(u.doc, u.statement, u.dry_run != 0);
      auto wire = client.Update(u);
      ASSERT_TRUE(wire.ok()) << context << ": " << wire.status().ToString();
      ExpectUpdateEquiv(*wire, lib, context + " update");
      continue;
    }

    QueryRequest q;
    q.doc = (Mix(r + 1) % 3 == 0) ? "gen" : "ward";
    q.query = corpus[Mix(r + 2) % corpus.size()];
    q.mode = (Mix(r + 3) % 2 == 0) ? WireEvalMode::kDom : WireEvalMode::kStax;
    q.use_tax = (Mix(r + 4) % 5 == 0) ? 1 : 0;
    core::SessionQueryOptions so;
    so.mode = q.mode == WireEvalMode::kStax ? core::EvalMode::kStax
                                            : core::EvalMode::kDom;
    so.use_tax = q.use_tax != 0;
    auto lib = session.Query(q.doc, q.query, so);
    auto wire = client.Query(q);
    ASSERT_TRUE(wire.ok()) << context << ": " << wire.status().ToString();
    ExpectQueryEquiv(*wire, lib,
                     context + " query '" + q.query + "' on " + q.doc);
  }
  EXPECT_GE(updates_done, 15u);

  // Both engines must land on the same document state: same epoch, same
  // canonical bytes.
  auto se = served_->DocumentEpoch("ward");
  auto re = ref_->DocumentEpoch("ward");
  ASSERT_TRUE(se.ok() && re.ok());
  EXPECT_EQ(*se, *re);
  auto sx = served_->DocumentXml("ward");
  auto rx = ref_->DocumentXml("ward");
  ASSERT_TRUE(sx.ok() && rx.ok());
  EXPECT_EQ(*sx, *rx);
}

// A pipelined client: K requests written back-to-back without reading,
// responses must come back in request order and each must equal the
// library answer.
TEST_F(ServerDifferentialTest, PipelinedResponsesArriveInOrderAndMatch) {
  const std::vector<const char*> corpus =
      smoqe::testutil::HospitalQueryCorpus();
  for (const char* role : kRoles) {
    Client client = MustConnect(role);
    core::Session session = MustOpen(role);

    constexpr int kWindow = 24;
    std::string burst;
    std::vector<QueryRequest> sent;
    for (int i = 0; i < kWindow; ++i) {
      const uint64_t r = Mix(0x919Eull + static_cast<uint64_t>(i) * 977);
      QueryRequest q;
      q.id = client.NextId();
      q.doc = "ward";
      q.query = corpus[r % corpus.size()];
      q.mode = (r % 2 == 0) ? WireEvalMode::kDom : WireEvalMode::kStax;
      burst += Encode(q);
      sent.push_back(std::move(q));
    }
    ASSERT_TRUE(client.SendBytes(burst).ok());

    for (int i = 0; i < kWindow; ++i) {
      auto frame = client.ReceiveFrame();
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kQueryResult));
      auto resp = DecodeQueryResponse(frame->body);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      EXPECT_EQ(resp->id, sent[static_cast<size_t>(i)].id)
          << "pipelined responses must preserve request order";
      core::SessionQueryOptions so;
      so.mode = sent[static_cast<size_t>(i)].mode == WireEvalMode::kStax
                    ? core::EvalMode::kStax
                    : core::EvalMode::kDom;
      auto lib =
          session.Query("ward", sent[static_cast<size_t>(i)].query, so);
      ExpectQueryEquiv(*resp, lib,
                       std::string(role) + " pipelined #" + std::to_string(i));
    }
  }
}

// ≥4 concurrent client threads against a static catalog: every answer
// equals the precomputed sequential library answer.
TEST_F(ServerDifferentialTest, ConcurrentClientsMatchSequentialLibrary) {
  const std::vector<const char*> corpus =
      smoqe::testutil::HospitalQueryCorpus();

  struct Expected {
    WireCode code;
    std::string error;
    uint64_t epoch;
    std::vector<std::string> answers;
  };
  // Reference answers per (role, query, mode), computed sequentially.
  std::map<std::string, Expected> expected;
  auto key = [](const std::string& role, const std::string& query, int mode) {
    return role + "|" + query + "|" + std::to_string(mode);
  };
  for (const char* role : kRoles) {
    core::Session session = MustOpen(role);
    for (const char* q : corpus) {
      for (int mode = 0; mode < 2; ++mode) {
        core::SessionQueryOptions so;
        so.mode = mode == 1 ? core::EvalMode::kStax : core::EvalMode::kDom;
        auto lib = session.Query("ward", q, so);
        Expected e;
        if (lib.ok()) {
          e.code = WireCode::kOk;
          e.epoch = lib->doc_epoch;
          e.answers = lib->answers_xml;
        } else {
          e.code = FromStatus(lib.status().code());
          e.error = lib.status().message();
          e.epoch = 0;
        }
        expected.emplace(key(role, q, mode), std::move(e));
      }
    }
  }

  constexpr int kThreads = 6;
  constexpr int kPerThread = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string role = kRoles[t % 3];
      ClientOptions o;
      o.port = server_->port();
      o.role = role;
      o.recv_timeout_ms = 30'000;
      auto client = Client::Connect(o);
      if (!client.ok()) {
        mismatches.fetch_add(1000);
        return;
      }
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t r = Mix(static_cast<uint64_t>(t) * 7919 + i);
        QueryRequest q;
        q.doc = "ward";
        q.query = corpus[r % corpus.size()];
        const int mode = static_cast<int>(Mix(r) % 2);
        q.mode = mode == 1 ? WireEvalMode::kStax : WireEvalMode::kDom;
        auto wire = client->Query(q);
        if (!wire.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const Expected& e = expected.at(key(role, q.query, mode));
        const bool match =
            wire->code == e.code &&
            (e.code != WireCode::kOk || (wire->doc_epoch == e.epoch &&
                                         wire->answers_xml == e.answers)) &&
            (e.code == WireCode::kOk || wire->error == e.error);
        if (!match) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Batch semantics over the wire: per-item failures stay item-local and
// equal the library's per-item statuses; sibling answers still flow.
TEST_F(ServerDifferentialTest, BatchItemErrorsStayItemLocalAndMatch) {
  Client client = MustConnect("research-group");
  core::Session session = MustOpen("research-group");

  QueryBatchRequest b;
  b.doc = "ward";
  b.items.push_back({"//treatment", WireEvalMode::kDom, 0});
  b.items.push_back({"a[[", WireEvalMode::kDom, 0});  // item-local parse error
  b.items.push_back({"//pname", WireEvalMode::kStax, 0});
  b.items.push_back({"//date", WireEvalMode::kDom, 1});

  std::vector<core::SessionBatchItem> lib_items;
  for (const BatchItem& it : b.items) {
    core::SessionBatchItem s;
    s.query = it.query;
    s.options.mode = it.mode == WireEvalMode::kStax ? core::EvalMode::kStax
                                                    : core::EvalMode::kDom;
    s.options.use_tax = it.use_tax != 0;
    lib_items.push_back(std::move(s));
  }
  auto lib = session.QueryBatch("ward", lib_items);
  auto wire = client.QueryBatch(b);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();

  ASSERT_TRUE(lib.ok()) << lib.status().ToString();
  ASSERT_EQ(wire->code, WireCode::kOk) << wire->error;
  ASSERT_EQ(wire->items.size(), lib->size());
  for (size_t i = 0; i < lib->size(); ++i) {
    const core::QueryAnswer& a = (*lib)[i];
    const BatchItemResult& w = wire->items[i];
    if (a.status.ok()) {
      EXPECT_EQ(w.code, WireCode::kOk) << "item " << i << ": " << w.error;
      EXPECT_EQ(w.doc_epoch, a.doc_epoch) << "item " << i;
      EXPECT_EQ(w.answers_xml, a.answers_xml) << "item " << i;
    } else {
      EXPECT_EQ(w.code, FromStatus(a.status.code())) << "item " << i;
      EXPECT_EQ(w.error, a.status.message()) << "item " << i;
    }
  }
  // A whole-call failure (unknown document) fails the wire call exactly
  // like the library call.
  QueryBatchRequest bad = b;
  bad.doc = "no-such-doc";
  auto lib_bad = session.QueryBatch("no-such-doc", lib_items);
  auto wire_bad = client.QueryBatch(bad);
  ASSERT_TRUE(wire_bad.ok()) << wire_bad.status().ToString();
  ASSERT_FALSE(lib_bad.ok());
  EXPECT_EQ(wire_bad->code, FromStatus(lib_bad.status().code()));
  EXPECT_EQ(wire_bad->error, lib_bad.status().message());
  EXPECT_TRUE(wire_bad->items.empty());
}

// Handshake discipline: bad role and bad version are rejected with the
// documented codes and the connection closes; a viewless HELLO against a
// locked-down server is PermissionDenied.
TEST_F(ServerDifferentialTest, HandshakeRejectionsCarryDocumentedCodes) {
  // Unknown role → NotFound, surfaced through Client::Connect as the
  // library's Session::Open would fail.
  ClientOptions bad;
  bad.port = server_->port();
  bad.role = "janitors";
  bad.recv_timeout_ms = 5000;
  auto c = Client::Connect(bad);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kNotFound);
  auto lib = core::Session::Open(ref_.get(), "janitors");
  ASSERT_FALSE(lib.ok());
  EXPECT_EQ(c.status().message(), lib.status().message())
      << "wire handshake rejection must carry the library's message";

  // Version mismatch → FailedPrecondition, then close.
  RawConn raw;
  ASSERT_TRUE(raw.Dial(server_->port()));
  HelloRequest hello;
  hello.version = kProtocolVersion + 1;
  hello.role = "";
  ASSERT_TRUE(raw.Send(Encode(hello)));
  RawFrame frame;
  ASSERT_EQ(raw.Recv(&frame, 5000), RawConn::RecvResult::kFrame);
  auto resp = DecodeHelloResponse(frame.body);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, WireCode::kFailedPrecondition);
  EXPECT_EQ(raw.Recv(&frame, 5000), RawConn::RecvResult::kClosed)
      << "server must close after a rejected handshake";

  // Direct access against a locked-down server → PermissionDenied.
  core::Smoqe locked(ServerEngineOptions());
  SetupHospitalEngine(locked, /*gen_nodes=*/0);
  ServerOptions lo;
  lo.allow_direct = false;
  TestServer locked_server(&locked, lo);
  ASSERT_TRUE(locked_server.ok());
  ClientOptions direct;
  direct.port = locked_server.port();
  direct.role = "";
  direct.recv_timeout_ms = 5000;
  auto denied = Client::Connect(direct);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  // …but a real role still connects and answers.
  ClientOptions viewed = direct;
  viewed.role = "autism-group";
  auto ok = Client::Connect(viewed);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  QueryRequest q;
  q.doc = "ward";
  q.query = "//treatment";
  auto r = ok->Query(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, WireCode::kOk) << r->error;
}

// Protocol discipline outside the handshake: a request before HELLO and
// a second HELLO are fatal (error + close); an unknown opcode in a well-
// framed message is survivable — the next request still answers.
TEST_F(ServerDifferentialTest, ProtocolViolationsErrorAndSurviveOrClose) {
  // Request before handshake: ERROR frame, then close.
  RawConn early;
  ASSERT_TRUE(early.Dial(server_->port()));
  QueryRequest q;
  q.id = 9;
  q.doc = "ward";
  q.query = "//pname";
  ASSERT_TRUE(early.Send(Encode(q)));
  RawFrame frame;
  ASSERT_EQ(early.Recv(&frame, 5000), RawConn::RecvResult::kFrame);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kError));
  auto err = DecodeErrorResponse(frame.body);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, WireCode::kProtocolError);
  EXPECT_EQ(err->id, 9u) << "ERROR should echo the request id it peeked";
  EXPECT_EQ(early.Recv(&frame, 5000), RawConn::RecvResult::kClosed);

  // Duplicate HELLO: ERROR, then close.
  RawConn dup;
  ASSERT_TRUE(dup.Dial(server_->port()));
  ASSERT_TRUE(RawHandshake(dup, "autism-group"));
  HelloRequest again;
  again.role = "research-group";
  ASSERT_TRUE(dup.Send(Encode(again)));
  ASSERT_EQ(dup.Recv(&frame, 5000), RawConn::RecvResult::kFrame);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(dup.Recv(&frame, 5000), RawConn::RecvResult::kClosed);

  // Unknown opcode: error reply, connection survives, next query works.
  RawConn odd;
  ASSERT_TRUE(odd.Dial(server_->port()));
  ASSERT_TRUE(RawHandshake(odd, ""));
  ASSERT_TRUE(odd.Send(Frame(static_cast<Opcode>(0x42), "garbage-body")));
  ASSERT_EQ(odd.Recv(&frame, 5000), RawConn::RecvResult::kFrame);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kError));
  q.id = 10;
  ASSERT_TRUE(odd.Send(Encode(q)));
  ASSERT_EQ(odd.Recv(&frame, 5000), RawConn::RecvResult::kFrame)
      << "connection must survive an unknown opcode";
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kQueryResult));
  auto qr = DecodeQueryResponse(frame.body);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->code, WireCode::kOk) << qr->error;

  // Over-declared frame length: ERROR then close, no resync attempted.
  RawConn big;
  ASSERT_TRUE(big.Dial(server_->port()));
  ASSERT_TRUE(RawHandshake(big, ""));
  Writer w;
  w.PutU32(static_cast<uint32_t>(kDefaultMaxRequestFrame + 100));
  w.PutU8(static_cast<uint8_t>(Opcode::kQuery));
  ASSERT_TRUE(big.Send(w.bytes()));
  ASSERT_EQ(big.Recv(&frame, 5000), RawConn::RecvResult::kFrame);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(big.Recv(&frame, 5000), RawConn::RecvResult::kClosed);
}

// STAT surfaces the server.* metrics alongside engine metrics, in both
// formats, through the same dump the library's DumpMetrics produces.
TEST_F(ServerDifferentialTest, StatExposesServerMetrics) {
  Client client = MustConnect("");
  QueryRequest q;
  q.doc = "ward";
  q.query = "//pname";
  ASSERT_TRUE(client.Query(q).ok());

  auto stat = client.Stat(StatFormat::kJson);
  ASSERT_TRUE(stat.ok()) << stat.status().ToString();
  ASSERT_EQ(stat->code, WireCode::kOk);
  for (const char* key :
       {"server.connections_opened", "server.handshakes", "server.requests",
        "server.responses_ok", "server.bytes_read", "server.bytes_written",
        "server.request_ns", "query.count"}) {
    EXPECT_NE(stat->payload.find(key), std::string::npos)
        << "JSON dump missing " << key;
  }
  auto prom = client.Stat(StatFormat::kPrometheus);
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->payload.find("smoqe_server_requests"), std::string::npos)
      << prom->payload.substr(0, 400);
}

}  // namespace
}  // namespace smoqe::server
