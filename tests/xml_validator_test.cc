#include "src/xml/dtd_validator.h"

#include <gtest/gtest.h>

#include "src/xml/dtd_parser.h"
#include "src/xml/parser.h"

namespace smoqe::xml {
namespace {

Dtd MustDtd(std::string_view text, std::string_view root = "") {
  auto r = ParseDtd(text, root);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

Document MustDoc(std::string_view text) {
  auto r = ParseDocument(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(ValidatorTest, AcceptsConformingDocument) {
  Dtd dtd = MustDtd(R"(
    <!ELEMENT a (b, c*)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c EMPTY>
  )");
  Document doc = MustDoc("<a><b>t</b><c/><c/></a>");
  EXPECT_TRUE(ValidateDocument(doc, dtd).ok());
}

TEST(ValidatorTest, RejectsWrongRoot) {
  Dtd dtd = MustDtd("<!ELEMENT a EMPTY>");
  Document doc = MustDoc("<b/>");
  auto st = ValidateDocument(doc, dtd);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("root"), std::string::npos);
}

TEST(ValidatorTest, RejectsContentModelViolation) {
  Dtd dtd = MustDtd(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
  )");
  EXPECT_FALSE(ValidateDocument(MustDoc("<a><b/></a>"), dtd).ok());   // missing c
  EXPECT_FALSE(ValidateDocument(MustDoc("<a><c/><b/></a>"), dtd).ok());  // order
  EXPECT_FALSE(ValidateDocument(MustDoc("<a><b/><c/><c/></a>"), dtd).ok());
  EXPECT_TRUE(ValidateDocument(MustDoc("<a><b/><c/></a>"), dtd).ok());
}

TEST(ValidatorTest, ChoiceAndOccurrence) {
  Dtd dtd = MustDtd(R"(
    <!ELEMENT a ((b | c)+, d?)>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
    <!ELEMENT d EMPTY>
  )");
  EXPECT_TRUE(ValidateDocument(MustDoc("<a><b/></a>"), dtd).ok());
  EXPECT_TRUE(ValidateDocument(MustDoc("<a><c/><b/><c/><d/></a>"), dtd).ok());
  EXPECT_FALSE(ValidateDocument(MustDoc("<a><d/></a>"), dtd).ok());
  EXPECT_FALSE(ValidateDocument(MustDoc("<a><b/><d/><d/></a>"), dtd).ok());
}

TEST(ValidatorTest, EmptyContentRejectsChildrenAndText) {
  Dtd dtd = MustDtd("<!ELEMENT a EMPTY> <!ELEMENT b EMPTY>", "a");
  EXPECT_TRUE(ValidateDocument(MustDoc("<a/>"), dtd).ok());
  EXPECT_FALSE(ValidateDocument(MustDoc("<a>t</a>"), dtd).ok());
}

TEST(ValidatorTest, PcdataRejectsElementChildren) {
  Dtd dtd = MustDtd("<!ELEMENT a (#PCDATA)> <!ELEMENT b EMPTY>", "a");
  EXPECT_TRUE(ValidateDocument(MustDoc("<a>text</a>"), dtd).ok());
  EXPECT_TRUE(ValidateDocument(MustDoc("<a/>"), dtd).ok());
  EXPECT_FALSE(ValidateDocument(MustDoc("<a><b/></a>"), dtd).ok());
}

TEST(ValidatorTest, MixedContentAllowsListedChildrenAnyOrder) {
  Dtd dtd = MustDtd(R"(
    <!ELEMENT a (#PCDATA | b | c)*>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
    <!ELEMENT d EMPTY>
  )", "a");
  EXPECT_TRUE(ValidateDocument(MustDoc("<a>t<b/>u<c/><b/></a>"), dtd).ok());
  EXPECT_FALSE(ValidateDocument(MustDoc("<a><d/></a>"), dtd).ok());
}

TEST(ValidatorTest, ElementContentRejectsText) {
  Dtd dtd = MustDtd("<!ELEMENT a (b*)> <!ELEMENT b EMPTY>", "a");
  EXPECT_FALSE(ValidateDocument(MustDoc("<a><b/>stray</a>"), dtd).ok());
}

TEST(ValidatorTest, UndeclaredElementPolicy) {
  Dtd dtd = MustDtd("<!ELEMENT a ANY>", "a");
  Document doc = MustDoc("<a><mystery/></a>");
  EXPECT_FALSE(ValidateDocument(doc, dtd).ok());
  ValidateOptions opts;
  opts.allow_undeclared = true;
  EXPECT_TRUE(ValidateDocument(doc, dtd, opts).ok());
}

TEST(ValidatorTest, RequiredAttributeEnforced) {
  Dtd dtd = MustDtd(R"(
    <!ELEMENT a EMPTY>
    <!ATTLIST a id CDATA #REQUIRED>
  )", "a");
  EXPECT_TRUE(ValidateDocument(MustDoc("<a id='7'/>"), dtd).ok());
  EXPECT_FALSE(ValidateDocument(MustDoc("<a/>"), dtd).ok());
  ValidateOptions opts;
  opts.check_attributes = false;
  EXPECT_TRUE(ValidateDocument(MustDoc("<a/>"), dtd, opts).ok());
}

TEST(ValidatorTest, RecursiveDtdValidatesNestedDocument) {
  Dtd dtd = MustDtd(R"(
    <!ELEMENT part (name, part*)>
    <!ELEMENT name (#PCDATA)>
  )", "part");
  Document doc = MustDoc(
      "<part><name>p1</name><part><name>p2</name>"
      "<part><name>p3</name></part></part></part>");
  EXPECT_TRUE(ValidateDocument(doc, dtd).ok());
  EXPECT_FALSE(
      ValidateDocument(MustDoc("<part><part><name>x</name></part></part>"), dtd)
          .ok());
}

}  // namespace
}  // namespace smoqe::xml
