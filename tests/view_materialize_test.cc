#include "src/view/materialize.h"

#include <gtest/gtest.h>

#include "src/view/derive.h"
#include "src/xml/dtd_validator.h"
#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace smoqe::view {
namespace {

using testutil::kHospitalDoc;
using testutil::kHospitalDtd;
using testutil::MustDoc;
using testutil::MustDtd;

constexpr char kPolicyS0[] = R"(
  hospital/patient : [visit/treatment/medication = 'autism'];
  patient/pname    : N;
  patient/visit    : N;
  visit/treatment  : [medication];
  treatment/test   : N;
)";

ViewDefinition MustView(const xml::Dtd& dtd, std::string_view policy_text) {
  auto policy = Policy::Parse(dtd, policy_text);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  auto view = DeriveView(*policy);
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  return view.MoveValue();
}

TEST(MaterializeTest, PaperExampleView) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  xml::Document doc = MustDoc(kHospitalDoc);
  auto mat = Materialize(view, doc);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();

  // Only Alice's record survives at the top level (she has the autism
  // medication); names and visits are hidden, treatments surface directly.
  // Bob appears through Alice's parent chain (σ0(parent,patient) is
  // unconditional) but his treatment is filtered out: it has a test, and
  // ann(visit,treatment) = [medication].
  std::string xml = xml::SerializeDocument(mat->document);
  EXPECT_EQ(xml,
            "<hospital><patient><treatment><medication>autism</medication>"
            "</treatment><parent><patient/></parent>"
            "</patient></hospital>");
}

TEST(MaterializeTest, ViewConformsToViewDtd) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  for (uint64_t seed = 51; seed <= 56; ++seed) {
    xml::Document doc = testutil::GenHospital(seed, 300);
    auto mat = Materialize(view, doc);
    ASSERT_TRUE(mat.ok()) << mat.status().ToString();
    Status st = xml::ValidateDocument(mat->document, view.view_dtd());
    EXPECT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString();
  }
}

TEST(MaterializeTest, ProvenanceMapsToSourceNodes) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  xml::Document doc = MustDoc(kHospitalDoc);
  auto mat = Materialize(view, doc);
  ASSERT_TRUE(mat.ok());
  ASSERT_EQ(static_cast<int32_t>(mat->source_node_id.size()),
            mat->document.num_nodes());
  for (int32_t vid = 0; vid < mat->document.num_nodes(); ++vid) {
    const xml::Node* vn = mat->document.node(vid);
    int32_t src = mat->source_node_id[vid];
    if (vn->is_text()) continue;
    ASSERT_GE(src, 0);
    const xml::Node* sn = doc.node(src);
    // Same element type.
    EXPECT_EQ(doc.names()->NameOf(sn->label),
              mat->document.names()->NameOf(vn->label));
  }
}

TEST(MaterializeTest, HiddenDataNeverAppears) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  for (uint64_t seed = 61; seed <= 64; ++seed) {
    xml::Document doc = testutil::GenHospital(seed, 400);
    auto mat = Materialize(view, doc);
    ASSERT_TRUE(mat.ok());
    std::string xml = xml::SerializeDocument(mat->document);
    EXPECT_EQ(xml.find("<pname>"), std::string::npos);
    EXPECT_EQ(xml.find("<visit>"), std::string::npos);
    EXPECT_EQ(xml.find("<test>"), std::string::npos);
    EXPECT_EQ(xml.find("<date>"), std::string::npos);
  }
}

TEST(MaterializeTest, IdentityViewCopiesDocument) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  Policy policy(&dtd);
  auto view = DeriveView(policy);
  ASSERT_TRUE(view.ok());
  xml::Document doc = MustDoc(kHospitalDoc);
  auto mat = Materialize(*view, doc);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  EXPECT_EQ(xml::SerializeDocument(mat->document),
            xml::SerializeDocument(doc));
}

TEST(MaterializeTest, RootMismatchFails) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  xml::Document doc = MustDoc("<clinic/>");
  EXPECT_FALSE(Materialize(view, doc).ok());
}

}  // namespace
}  // namespace smoqe::view
