#include "src/workload/workloads.h"

#include <gtest/gtest.h>

#include "src/rxpath/parser.h"
#include "src/view/annotation.h"
#include "src/view/derive.h"
#include "src/xml/dtd_validator.h"

namespace smoqe::workload {
namespace {

TEST(WorkloadTest, SchemasParse) {
  EXPECT_EQ(HospitalDtd().root_name(), "hospital");
  EXPECT_EQ(OrgDtd().root_name(), "company");
  EXPECT_EQ(DiamondDtd().root_name(), "site");
  EXPECT_TRUE(HospitalDtd().IsRecursive());
  EXPECT_TRUE(OrgDtd().IsRecursive());
  EXPECT_TRUE(DiamondDtd().IsRecursive());
}

TEST(WorkloadTest, PoliciesDeriveViews) {
  xml::Dtd hospital = HospitalDtd();
  for (const char* policy_text :
       {kHospitalPolicyAutism, kHospitalPolicyResearch}) {
    auto policy = view::Policy::Parse(hospital, policy_text);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    auto view = view::DeriveView(*policy);
    EXPECT_TRUE(view.ok()) << view.status().ToString();
  }
  xml::Dtd org = OrgDtd();
  auto policy = view::Policy::Parse(org, kOrgPolicy);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  auto view = view::DeriveView(*policy);
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->view_dtd().Find("salary"), nullptr);
}

TEST(WorkloadTest, QueriesParse) {
  for (const auto& family :
       {HospitalQueries(), HospitalViewQueries(), OrgQueries()}) {
    for (const BenchQuery& q : family) {
      EXPECT_TRUE(rxpath::ParseQuery(q.text).ok()) << q.id;
    }
  }
  EXPECT_TRUE(rxpath::ParseQuery(DiamondWildcardChain(10)).ok());
  EXPECT_TRUE(rxpath::ParseQuery(HospitalRecursiveChain(5)).ok());
}

TEST(WorkloadTest, GeneratorsProduceValidDocs) {
  auto h = GenHospital(3, 800);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_TRUE(xml::ValidateDocument(*h, HospitalDtd()).ok());
  auto o = GenOrg(3, 800);
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_TRUE(xml::ValidateDocument(*o, OrgDtd()).ok());
}

TEST(WorkloadTest, HospitalTextRoundTrips) {
  auto text = GenHospitalText(5, 300);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("<hospital>"), std::string::npos);
}

}  // namespace
}  // namespace smoqe::workload
