#include "src/core/plan_cache.h"

#include <gtest/gtest.h>

#include "src/core/smoqe.h"
#include "src/workload/workloads.h"
#include "tests/test_util.h"

namespace smoqe::core {
namespace {

using testutil::kHospitalDoc;

PlanCache::Key MakeKey(const std::string& view, uint64_t fp,
                       const std::string& query) {
  PlanCache::Key k;
  k.view = view;
  k.view_fingerprint = fp;
  k.normalized_query = query;
  return k;
}

std::shared_ptr<const CompiledPlan> Dummy() {
  return std::make_shared<CompiledPlan>();
}

// ---------------------------------------------------------------------
// PlanCache unit behaviour: LRU order, counters, invalidation.
// ---------------------------------------------------------------------

TEST(PlanCacheTest, HitMissAndCounters) {
  PlanCache cache(4);
  auto key = MakeKey("v", 7, "a/b");
  EXPECT_EQ(cache.Lookup(key), nullptr);
  auto plan = Dummy();
  cache.Insert(key, plan);
  EXPECT_EQ(cache.Lookup(key), plan);
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.size, 1u);
  EXPECT_EQ(s.capacity, 4u);
}

TEST(PlanCacheTest, KeyDistinguishesViewFingerprintAndQuery) {
  PlanCache cache(8);
  cache.Insert(MakeKey("v", 1, "q"), Dummy());
  EXPECT_EQ(cache.Lookup(MakeKey("w", 1, "q")), nullptr);
  EXPECT_EQ(cache.Lookup(MakeKey("v", 2, "q")), nullptr);
  EXPECT_EQ(cache.Lookup(MakeKey("v", 1, "p")), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey("v", 1, "q")), nullptr);
}

TEST(PlanCacheTest, LruEvictsColdestEntry) {
  PlanCache cache(2);
  auto a = MakeKey("", 0, "a");
  auto b = MakeKey("", 0, "b");
  auto c = MakeKey("", 0, "c");
  cache.Insert(a, Dummy());
  cache.Insert(b, Dummy());
  EXPECT_NE(cache.Lookup(a), nullptr);  // refresh a: b is now coldest
  cache.Insert(c, Dummy());             // evicts b
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.Lookup(b), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(PlanCacheTest, InvalidateViewDropsOnlyThatView) {
  PlanCache cache(8);
  cache.Insert(MakeKey("nurses", 1, "q1"), Dummy());
  cache.Insert(MakeKey("nurses", 1, "q2"), Dummy());
  cache.Insert(MakeKey("research", 2, "q1"), Dummy());
  cache.Insert(MakeKey("", 0, "q1"), Dummy());
  EXPECT_EQ(cache.InvalidateView("nurses"), 2u);
  EXPECT_EQ(cache.Lookup(MakeKey("nurses", 1, "q1")), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey("research", 2, "q1")), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey("", 0, "q1")), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(PlanCacheTest, ClearDropsEverything) {
  PlanCache cache(8);
  cache.Insert(MakeKey("", 0, "a"), Dummy());
  cache.Insert(MakeKey("v", 1, "b"), Dummy());
  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.Lookup(MakeKey("", 0, "a")), nullptr);
}

// ---------------------------------------------------------------------
// Through the facade: cached plans answer exactly like fresh compiles,
// across roles and modes, and invalidation really recompiles.
// ---------------------------------------------------------------------

class SmoqePlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        engine_.RegisterDtd("hospital", workload::kHospitalDtd, "hospital")
            .ok());
    ASSERT_TRUE(engine_.LoadDocument("ward", kHospitalDoc).ok());
    ASSERT_TRUE(engine_
                    .DefineView("autism-group", "hospital",
                                workload::kHospitalPolicyAutism)
                    .ok());
    ASSERT_TRUE(engine_
                    .DefineView("research-group", "hospital",
                                workload::kHospitalPolicyResearch)
                    .ok());
  }

  Smoqe engine_;
};

TEST_F(SmoqePlanCacheTest, SecondQueryHitsTheCache) {
  auto first = engine_.Query("ward", "//medication");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.plan_cache_misses, 1u);
  EXPECT_EQ(first->stats.plan_cache_hits, 0u);
  auto second = engine_.Query("ward", "//medication");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.plan_cache_hits, 1u);
  EXPECT_EQ(second->answers_xml, first->answers_xml);
  PlanCacheStats s = engine_.plan_cache().stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST_F(SmoqePlanCacheTest, NormalizedQueryTextSharesOnePlan) {
  ASSERT_TRUE(engine_.Query("ward", "hospital/patient[visit]/pname").ok());
  auto variant =
      engine_.Query("ward", "  hospital / patient[ visit ] / pname ");
  ASSERT_TRUE(variant.ok());
  EXPECT_EQ(variant->stats.plan_cache_hits, 1u)
      << "surface variants must normalize to one cache entry";
}

TEST_F(SmoqePlanCacheTest, CachedAnswersIdenticalToFreshCompileAcrossRoles) {
  const char* queries[] = {"//medication", "//treatment",
                           "hospital/patient/treatment/medication",
                           "//patient[not(treatment)]"};
  for (const char* view : {"", "autism-group", "research-group"}) {
    for (const char* q : queries) {
      for (EvalMode mode : {EvalMode::kDom, EvalMode::kStax}) {
        QueryOptions cached;
        cached.view = view;
        cached.mode = mode;
        QueryOptions fresh = cached;
        fresh.bypass_plan_cache = true;
        auto warm = engine_.Query("ward", q, cached);   // populate
        auto hit = engine_.Query("ward", q, cached);    // served from cache
        auto direct = engine_.Query("ward", q, fresh);  // never cached
        ASSERT_TRUE(warm.ok() && hit.ok() && direct.ok())
            << view << " " << q;
        EXPECT_EQ(hit->stats.plan_cache_hits, 1u) << view << " " << q;
        EXPECT_EQ(direct->stats.plan_cache_misses, 1u);
        EXPECT_EQ(hit->answers_xml, direct->answers_xml) << view << " " << q;
        EXPECT_EQ(hit->unknown_labels, direct->unknown_labels);
      }
    }
  }
}

TEST_F(SmoqePlanCacheTest, ViewRedefinitionInvalidatesAndRecompiles) {
  QueryOptions opts;
  opts.view = "autism-group";
  auto before = engine_.Query("ward", "//medication", opts);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->answers_xml.size(), 1u);  // autism only
  // Warm the cache, then swap the view for the permissive research policy.
  ASSERT_TRUE(engine_.Query("ward", "//medication", opts).ok());
  ASSERT_TRUE(engine_
                  .DefineView("autism-group", "hospital",
                              workload::kHospitalPolicyResearch)
                  .ok());
  auto after = engine_.Query("ward", "//medication", opts);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.plan_cache_misses, 1u)
      << "redefinition must force a recompile, not serve the stale plan";
  EXPECT_EQ(after->answers_xml.size(), 2u)
      << "the recompiled plan must see the new policy";
  EXPECT_GT(engine_.plan_cache().stats().invalidations, 0u);
}

TEST_F(SmoqePlanCacheTest, DtdReplacementInvalidatesDependentViews) {
  QueryOptions opts;
  opts.view = "autism-group";
  ASSERT_TRUE(engine_.Query("ward", "//medication", opts).ok());
  ASSERT_TRUE(engine_.Query("ward", "//medication", opts).ok());
  uint64_t invalidations_before = engine_.plan_cache().stats().invalidations;
  // Re-register the same DTD text: still a replacement, still invalidates.
  ASSERT_TRUE(
      engine_.RegisterDtd("hospital", workload::kHospitalDtd, "hospital")
          .ok());
  EXPECT_GT(engine_.plan_cache().stats().invalidations, invalidations_before);
  auto after = engine_.Query("ward", "//medication", opts);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.plan_cache_misses, 1u);
  EXPECT_EQ(after->answers_xml.size(), 1u);  // same policy, same answers
}

TEST_F(SmoqePlanCacheTest, CapacityEvictionThroughFacade) {
  Smoqe small(/*plan_cache_capacity=*/2);
  ASSERT_TRUE(
      small.RegisterDtd("hospital", workload::kHospitalDtd, "hospital").ok());
  ASSERT_TRUE(small.LoadDocument("ward", kHospitalDoc).ok());
  ASSERT_TRUE(small.Query("ward", "//pname").ok());
  ASSERT_TRUE(small.Query("ward", "//date").ok());
  ASSERT_TRUE(small.Query("ward", "//test").ok());  // evicts //pname
  EXPECT_EQ(small.plan_cache().stats().evictions, 1u);
  auto again = small.Query("ward", "//pname");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.plan_cache_misses, 1u);
}

// ---------------------------------------------------------------------
// QueryBatch: one scan, many roles — answers identical to per-item Query.
// ---------------------------------------------------------------------

TEST_F(SmoqePlanCacheTest, BatchMatchesSequentialAcrossRolesAndModes) {
  std::vector<BatchQueryItem> items;
  for (const char* view : {"", "autism-group", "research-group"}) {
    for (const char* q :
         {"//medication", "//treatment", "//patient[not(treatment)]"}) {
      BatchQueryItem item;
      item.query = q;
      item.options.view = view;
      item.options.mode = EvalMode::kStax;
      items.push_back(item);
    }
  }
  // One DOM-mode item mixed in: evaluated per item, same answer contract.
  BatchQueryItem dom_item;
  dom_item.query = "//pname";
  dom_item.options.mode = EvalMode::kDom;
  items.push_back(dom_item);

  auto batch = engine_.QueryBatch("ward", items);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    QueryOptions fresh = items[i].options;
    fresh.bypass_plan_cache = true;
    auto single = engine_.Query("ward", items[i].query, fresh);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[i].answers_xml, single->answers_xml)
        << "item " << i << ": " << items[i].query << " view '"
        << items[i].options.view << "'";
  }
  // The streaming items co-evaluated on one scan.
  EXPECT_EQ((*batch)[0].stats.batch_plans, 9u);
  EXPECT_EQ(batch->back().stats.batch_plans, 0u);  // the DOM item did not
}

TEST_F(SmoqePlanCacheTest, BatchErrorPaths) {
  // An unknown *document* is a whole-call error — it names a catalog
  // problem, not an item problem.
  EXPECT_EQ(engine_.QueryBatch("nodoc", {}).status().code(),
            StatusCode::kNotFound);
  // Item-local failures fail only their item: the call succeeds, the bad
  // item's answer carries its status (naming the item index), siblings
  // evaluate normally.
  BatchQueryItem good;
  good.query = "//pname";
  BatchQueryItem bad;
  bad.query = "a[[";
  BatchQueryItem noview;
  noview.query = "a";
  noview.options.view = "ghost";
  BatchQueryItem tax_stream;
  tax_stream.query = "a";
  tax_stream.options.mode = EvalMode::kStax;
  tax_stream.options.use_tax = true;
  auto mixed = engine_.QueryBatch("ward", {good, bad, noview, tax_stream});
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  ASSERT_EQ(mixed->size(), 4u);
  EXPECT_TRUE((*mixed)[0].status.ok());
  EXPECT_FALSE((*mixed)[0].answers_xml.empty());
  EXPECT_EQ((*mixed)[1].status.code(), StatusCode::kParseError);
  EXPECT_NE((*mixed)[1].status.message().find("batch item 1"),
            std::string::npos);
  EXPECT_EQ((*mixed)[2].status.code(), StatusCode::kNotFound);
  EXPECT_NE((*mixed)[2].status.message().find("batch item 2"),
            std::string::npos);
  EXPECT_EQ((*mixed)[3].status.code(), StatusCode::kInvalidArgument);
  // Failed items produce nothing besides their status.
  EXPECT_TRUE((*mixed)[1].answers_xml.empty());
  EXPECT_TRUE((*mixed)[3].answers_xml.empty());
  // The good item's answers match a standalone Query.
  auto single = engine_.Query("ward", "//pname");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ((*mixed)[0].answers_xml, single->answers_xml);
  // An all-bad batch still succeeds as a call.
  auto all_bad = engine_.QueryBatch("ward", {bad, noview});
  ASSERT_TRUE(all_bad.ok());
  EXPECT_FALSE((*all_bad)[0].status.ok());
  EXPECT_FALSE((*all_bad)[1].status.ok());
  // An empty batch is fine.
  auto empty = engine_.QueryBatch("ward", {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  // QueryBatchMulti: same per-item semantics, whole-call on unknown doc.
  DocBatchItem multi_good{"ward", "//pname", {}};
  DocBatchItem multi_bad{"ward", "a[[", {}};
  auto multi = engine_.QueryBatchMulti({multi_good, multi_bad});
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  EXPECT_TRUE((*multi)[0].status.ok());
  EXPECT_EQ((*multi)[0].answers_xml, single->answers_xml);
  EXPECT_EQ((*multi)[1].status.code(), StatusCode::kParseError);
  DocBatchItem multi_nodoc{"nodoc", "a", {}};
  EXPECT_EQ(engine_.QueryBatchMulti({multi_good, multi_nodoc}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace smoqe::core
