#include "src/xml/generator.h"

#include <gtest/gtest.h>

#include "src/xml/dtd_parser.h"
#include "src/xml/dtd_validator.h"
#include "src/xml/serializer.h"

namespace smoqe::xml {
namespace {

constexpr char kHospitalDtd[] = R"(
  <!ELEMENT hospital (patient*)>
  <!ELEMENT patient (pname, visit*, parent*)>
  <!ELEMENT parent (patient)>
  <!ELEMENT visit (treatment, date)>
  <!ELEMENT treatment (test | medication)>
  <!ELEMENT pname (#PCDATA)>
  <!ELEMENT date (#PCDATA)>
  <!ELEMENT test (#PCDATA)>
  <!ELEMENT medication (#PCDATA)>
)";

Dtd MustDtd(std::string_view text, std::string_view root = "") {
  auto r = ParseDtd(text, root);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(GeneratorTest, OutputValidatesAgainstDtd) {
  Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  for (uint64_t seed : {1ull, 2ull, 3ull, 17ull, 99ull}) {
    GeneratorOptions opts;
    opts.seed = seed;
    opts.target_nodes = 500;
    auto doc = GenerateDocument(dtd, opts);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    Status st = ValidateDocument(*doc, dtd);
    EXPECT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString();
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  GeneratorOptions opts;
  opts.seed = 7;
  opts.target_nodes = 300;
  auto d1 = GenerateDocument(dtd, opts);
  auto d2 = GenerateDocument(dtd, opts);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(SerializeDocument(*d1), SerializeDocument(*d2));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  GeneratorOptions a, b;
  a.seed = 1;
  b.seed = 2;
  a.target_nodes = b.target_nodes = 300;
  auto d1 = GenerateDocument(dtd, a);
  auto d2 = GenerateDocument(dtd, b);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_NE(SerializeDocument(*d1), SerializeDocument(*d2));
}

TEST(GeneratorTest, RespectsSoftSizeTarget) {
  Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  GeneratorOptions opts;
  opts.seed = 5;
  for (size_t target : {100u, 1000u, 10000u}) {
    opts.target_nodes = target;
    auto doc = GenerateDocument(dtd, opts);
    ASSERT_TRUE(doc.ok());
    // Soft target: within a generous factor (winding down isn't instant).
    EXPECT_GE(static_cast<size_t>(doc->num_nodes()), target / 4);
    EXPECT_LE(static_cast<size_t>(doc->num_nodes()), target * 4);
  }
}

TEST(GeneratorTest, TextVocabularyUsed) {
  Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  GeneratorOptions opts;
  opts.seed = 11;
  opts.target_nodes = 400;
  opts.text_values["medication"] = {"autism", "headache"};
  auto doc = GenerateDocument(dtd, opts);
  ASSERT_TRUE(doc.ok());
  NameId med = doc->names()->Lookup("medication");
  ASSERT_NE(med, kNoName);
  int found = 0;
  for (int32_t i = 0; i < doc->num_nodes(); ++i) {
    const Node* n = doc->node(i);
    if (n->is_element() && n->label == med) {
      std::string t = Document::DirectText(n);
      EXPECT_TRUE(t == "autism" || t == "headache") << t;
      ++found;
    }
  }
  EXPECT_GT(found, 0);
}

TEST(GeneratorTest, RecursionDepthBounded) {
  // A DTD that recurses aggressively: a → a? b.
  Dtd dtd = MustDtd("<!ELEMENT a (a?, b)> <!ELEMENT b (#PCDATA)>", "a");
  GeneratorOptions opts;
  opts.seed = 3;
  opts.target_nodes = 100000;
  opts.max_depth = 10;
  auto doc = GenerateDocument(dtd, opts);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // Depth must stay near the cap.
  int max_depth = 0;
  for (int32_t i = 0; i < doc->num_nodes(); ++i) {
    const Node* n = doc->node(i);
    int d = 0;
    for (const Node* p = n; p != nullptr; p = p->parent) ++d;
    max_depth = std::max(max_depth, d);
  }
  EXPECT_LE(max_depth, 12);
}

TEST(GeneratorTest, MandatoryRecursionFailsCleanly) {
  // a → a b: no finite document exists.
  Dtd dtd = MustDtd("<!ELEMENT a (a, b)> <!ELEMENT b EMPTY>", "a");
  GeneratorOptions opts;
  auto doc = GenerateDocument(dtd, opts);
  EXPECT_FALSE(doc.ok());
}

TEST(GeneratorTest, RequiredAttributesGenerated) {
  Dtd dtd = MustDtd(R"(
    <!ELEMENT a (b*)>
    <!ELEMENT b EMPTY>
    <!ATTLIST b id CDATA #REQUIRED>
  )", "a");
  GeneratorOptions opts;
  opts.seed = 9;
  opts.target_nodes = 50;
  opts.attr_values["b@id"] = {"i1", "i2"};
  auto doc = GenerateDocument(dtd, opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(ValidateDocument(*doc, dtd).ok());
}

}  // namespace
}  // namespace smoqe::xml
