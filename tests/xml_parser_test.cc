#include "src/xml/parser.h"

#include <gtest/gtest.h>

#include "src/xml/serializer.h"

namespace smoqe::xml {
namespace {

TEST(XmlParserTest, ParsesMinimalDocument) {
  auto r = ParseDocument("<a/>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Document& doc = *r;
  EXPECT_EQ(doc.names()->NameOf(doc.root()->label), "a");
  EXPECT_EQ(doc.num_nodes(), 1);
  EXPECT_EQ(doc.root()->first_child, nullptr);
}

TEST(XmlParserTest, ParsesNestedElementsAndText) {
  auto r = ParseDocument("<a><b>hi</b><c><d/></c></a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Node* a = r->root();
  ASSERT_NE(a->first_child, nullptr);
  const Node* b = a->first_child;
  EXPECT_EQ(r->names()->NameOf(b->label), "b");
  ASSERT_NE(b->first_child, nullptr);
  EXPECT_TRUE(b->first_child->is_text());
  EXPECT_STREQ(b->first_child->text, "hi");
  const Node* c = b->next_sibling;
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(r->names()->NameOf(c->label), "c");
  EXPECT_EQ(r->names()->NameOf(c->first_child->label), "d");
}

TEST(XmlParserTest, ParsesAttributes) {
  auto r = ParseDocument("<a x=\"1\" y='two &amp; three'/>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Node* a = r->root();
  ASSERT_EQ(a->num_attrs, 2u);
  NameId x = r->names()->Lookup("x");
  NameId y = r->names()->Lookup("y");
  EXPECT_STREQ(a->FindAttr(x), "1");
  EXPECT_STREQ(a->FindAttr(y), "two & three");
  EXPECT_EQ(a->FindAttr(r->names()->Intern("z")), nullptr);
}

TEST(XmlParserTest, DecodesEntitiesInText) {
  auto r = ParseDocument("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Document::DirectText(r->root()), "<tag> & \"q\" 'a' AB");
}

TEST(XmlParserTest, CdataIsText) {
  auto r = ParseDocument("<a><![CDATA[<not-a-tag> & raw]]></a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Document::DirectText(r->root()), "<not-a-tag> & raw");
}

TEST(XmlParserTest, SkipsCommentsPisAndDeclaration) {
  auto r = ParseDocument(
      "<?xml version=\"1.0\"?><!-- c --><?pi data?><a><!-- inner -->x</a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Document::DirectText(r->root()), "x");
}

TEST(XmlParserTest, WhitespaceOnlyTextDroppedByDefault) {
  auto r = ParseDocument("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int kids = 0;
  for (const Node* c = r->root()->first_child; c; c = c->next_sibling) {
    EXPECT_TRUE(c->is_element());
    ++kids;
  }
  EXPECT_EQ(kids, 2);
}

TEST(XmlParserTest, WhitespaceKeptWhenRequested) {
  ParseOptions opts;
  opts.skip_whitespace_text = false;
  auto r = ParseDocument("<a> <b/></a>", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->root()->first_child->is_text());
  EXPECT_STREQ(r->root()->first_child->text, " ");
}

TEST(XmlParserTest, CapturesDoctype) {
  auto r = ParseXml(
      "<!DOCTYPE hospital [<!ELEMENT hospital (patient)*>]><hospital/>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->doctype_name, "hospital");
  EXPECT_NE(r->doctype_internal_subset.find("<!ELEMENT hospital"),
            std::string::npos);
}

TEST(XmlParserTest, NodeIdsArePreOrderAndSubtreeEndsCorrect) {
  auto r = ParseDocument("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(r.ok());
  const Node* a = r->root();
  const Node* b = a->first_child;
  const Node* c = b->first_child;
  const Node* d = b->next_sibling;
  EXPECT_EQ(a->node_id, 0);
  EXPECT_EQ(b->node_id, 1);
  EXPECT_EQ(c->node_id, 2);
  EXPECT_EQ(d->node_id, 3);
  EXPECT_EQ(a->subtree_end, 4);
  EXPECT_EQ(b->subtree_end, 3);
  EXPECT_TRUE(a->ContainsOrIs(c));
  EXPECT_TRUE(b->ContainsOrIs(c));
  EXPECT_FALSE(b->ContainsOrIs(d));
  EXPECT_FALSE(d->ContainsOrIs(a));
}

// --- failure injection ---

TEST(XmlParserTest, RejectsMismatchedTags) {
  auto r = ParseDocument("<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(XmlParserTest, RejectsUnclosedRoot) {
  EXPECT_FALSE(ParseDocument("<a><b/>").ok());
}

TEST(XmlParserTest, RejectsMultipleRoots) {
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
}

TEST(XmlParserTest, RejectsContentOutsideRoot) {
  EXPECT_FALSE(ParseDocument("<a/>stray").ok());
  EXPECT_FALSE(ParseDocument("stray<a/>").ok());
}

TEST(XmlParserTest, RejectsUnknownEntity) {
  EXPECT_FALSE(ParseDocument("<a>&unknown;</a>").ok());
}

TEST(XmlParserTest, RejectsDuplicateAttribute) {
  EXPECT_FALSE(ParseDocument("<a x='1' x='2'/>").ok());
}

TEST(XmlParserTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("   ").ok());
}

TEST(XmlParserTest, RejectsMalformedTagSyntax) {
  EXPECT_FALSE(ParseDocument("<a b></a>").ok());
  EXPECT_FALSE(ParseDocument("<a b=>").ok());
  EXPECT_FALSE(ParseDocument("<1tag/>").ok());
  EXPECT_FALSE(ParseDocument("<a x='1'").ok());
}

TEST(XmlParserTest, ErrorsMentionLineNumbers) {
  auto r = ParseDocument("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

// --- malformed-input corpus (S1) ---
//
// Every entry must come back as ParseError — never an assert, a crash or
// a silently truncated document. The corpus is drawn from mangling the
// well-formed fixtures above: truncations, unterminated constructs, bad
// entity references, attributes in the wrong lexical state.

TEST(XmlParserTest, MalformedCorpusAlwaysParseError) {
  const char* corpus[] = {
      // Truncations of "<a x=\"1\"><b>text</b></a>" at every interesting
      // lexical state.
      "<",
      "<a",
      "<a ",
      "<a x",
      "<a x=",
      "<a x=\"",
      "<a x=\"1",
      "<a x=\"1\"",
      "<a x=\"1\"><b",
      "<a x=\"1\"><b>text",
      "<a x=\"1\"><b>text</b",
      "<a x=\"1\"><b>text</b>",
      "<a x=\"1\"><b>text</b></a",
      // Unterminated block constructs.
      "<a><![CDATA[never closed</a>",
      "<a><!-- never closed</a>",
      "<?xml version=\"1.0\"",
      "<a><?pi never closed</a>",
      "<!DOCTYPE hospital [<!ELEMENT hospital (p)*>",
      "<!DOCTYPE hospital [<!ELEMENT hospital (p)*>]",
      "<a attr=\"never closed></a>",
      // Bad entity references.
      "<a>&;</a>",
      "<a>&#;</a>",
      "<a>&#x;</a>",
      "<a>&#xZZ;</a>",
      "<a>&#99999999;</a>",
      "<a>&toolongentityname;</a>",
      "<a>&amp</a>",
      "<a v='&'/>",
      // Character references to non-XML characters.
      "<a>&#0;</a>",
      "<a>&#x0;</a>",
      "<a>&#1;</a>",
      "<a>&#x1F;</a>",
      "<a>&#xD800;</a>",
      "<a>&#xDFFF;</a>",
      "<a v='&#0;'/>",
      // Attribute machinery in the wrong state.
      "<a =\"1\"/>",
      "<a x \"1\"/>",
      "<a x=1/>",
      "<a x='1' x='1'/>",
      "<a/ x='1'>",
      "<a x='<'/>",
      "</a>",
      "<a></a x='1'>",
      // Structural nonsense.
      "<a><b/><a/>",
      "<a/></a>",
      "<![CDATA[x]]>",
      "<a/><!DOCTYPE late [ ]>",
      "<>",
      "< a/>",
  };
  for (const char* doc : corpus) {
    auto r = ParseDocument(doc);
    ASSERT_FALSE(r.ok()) << "accepted malformed input: " << doc;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError)
        << doc << " -> " << r.status().ToString();
  }
}

TEST(XmlParserTest, TruncationSweepNeverCrashes) {
  // Every prefix of a fixture covering tags, attributes, text, CDATA,
  // comments, PIs, DOCTYPE and entities must either parse (only the full
  // input does) or fail cleanly with ParseError.
  const std::string fixture =
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (b)*>]>"
      "<!-- c --><a x=\"1\" y='&amp;'><b>t&#65;</b><![CDATA[raw]]>"
      "<?pi d?></a>";
  for (size_t len = 0; len < fixture.size(); ++len) {
    auto r = ParseDocument(fixture.substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix of length " << len << " accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << "len " << len;
  }
  EXPECT_TRUE(ParseDocument(fixture).ok());
}

TEST(XmlParserTest, RejectsRawNulByte) {
  std::string with_nul = "<a>xy</a>";
  with_nul[4] = '\0';
  EXPECT_FALSE(ParseDocument(with_nul).ok());
  std::string attr_nul = "<a v='x'/>";
  attr_nul[6] = '\0';
  EXPECT_FALSE(ParseDocument(attr_nul).ok());
}

TEST(XmlParserTest, AcceptsValidControlCharacterReferences) {
  // Tab, LF and CR are the C0 controls XML allows.
  auto r = ParseDocument("<a>&#9;&#10;&#13;</a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Document::DirectText(r->root()), "\t\n\r");
}

// --- serializer round-trip ---

TEST(XmlSerializerTest, CompactRoundTrip) {
  const std::string input =
      "<a x=\"1\"><b>text &amp; more</b><c/><d>t2</d></a>";
  auto r = ParseDocument(input);
  ASSERT_TRUE(r.ok());
  std::string out = SerializeDocument(*r);
  EXPECT_EQ(out, input);
  // Parse the output again: same serialization (fixpoint).
  auto r2 = ParseDocument(out);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(SerializeDocument(*r2), out);
}

TEST(XmlSerializerTest, PrettyPrintsNested) {
  auto r = ParseDocument("<a><b>hi</b></a>");
  ASSERT_TRUE(r.ok());
  SerializeOptions opts;
  opts.pretty = true;
  std::string out = SerializeDocument(*r, opts);
  EXPECT_NE(out.find("<a>\n"), std::string::npos);
  EXPECT_NE(out.find("  <b>"), std::string::npos);
  // Pretty output still parses to an equivalent compact form.
  auto r2 = ParseDocument(out);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(SerializeDocument(*r2), SerializeDocument(*r));
}

TEST(XmlSerializerTest, EscapesAttributeValues) {
  auto r = ParseDocument("<a v=\"a&amp;b&lt;c&quot;d\"/>");
  ASSERT_TRUE(r.ok());
  std::string out = SerializeDocument(*r);
  auto r2 = ParseDocument(out);
  ASSERT_TRUE(r2.ok());
  NameId v = r2->names()->Lookup("v");
  EXPECT_STREQ(r2->root()->FindAttr(v), "a&b<c\"d");
}

}  // namespace
}  // namespace smoqe::xml
