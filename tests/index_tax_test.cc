#include "src/index/tax.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "src/automata/mfa.h"
#include "src/eval/hype_dom.h"
#include "src/index/tax_io.h"
#include "tests/test_util.h"

namespace smoqe::index {
namespace {

using automata::Mfa;
using testutil::IdsOf;
using testutil::kHospitalDoc;
using testutil::MustDoc;
using testutil::MustQuery;

TEST(TaxTest, DescendantTypesMatchBruteForce) {
  xml::Document doc = MustDoc(kHospitalDoc);
  TaxIndex idx = TaxIndex::Build(doc);
  for (int32_t id = 0; id < doc.num_nodes(); ++id) {
    const xml::Node* n = doc.node(id);
    if (!n->is_element()) {
      EXPECT_EQ(idx.DescendantTypes(id), nullptr);
      continue;
    }
    // Brute-force descendant type set (strict descendants).
    std::set<xml::NameId> want;
    for (int32_t d = id + 1; d < n->subtree_end; ++d) {
      const xml::Node* m = doc.node(d);
      if (m->is_element()) want.insert(m->label);
    }
    const DynamicBitset* got = idx.DescendantTypes(id);
    ASSERT_NE(got, nullptr);
    std::set<xml::NameId> got_set;
    got->ForEachSetBit(
        [&](size_t b) { got_set.insert(static_cast<xml::NameId>(b)); });
    EXPECT_EQ(got_set, want) << "node " << id;
  }
}

TEST(TaxTest, LeafHasEmptySet) {
  xml::Document doc = MustDoc("<a><leaf/></a>");
  TaxIndex idx = TaxIndex::Build(doc);
  const DynamicBitset* leaf = idx.DescendantTypes(1);
  ASSERT_NE(leaf, nullptr);
  EXPECT_TRUE(leaf->None());
}

TEST(TaxTest, PruningSoundness) {
  // TAX on/off must produce identical answers for every corpus query on
  // random documents (experiment E6's correctness side).
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    xml::Document doc = testutil::GenHospital(seed, 400);
    TaxIndex idx = TaxIndex::Build(doc);
    for (const char* q : testutil::HospitalQueryCorpus()) {
      auto query = MustQuery(q);
      auto mfa = Mfa::Compile(*query, doc.names());
      ASSERT_TRUE(mfa.ok());
      auto off = eval::EvalHypeDom(*mfa, doc);
      ASSERT_TRUE(off.ok());
      eval::DomEvalOptions with;
      with.tax = &idx;
      auto on = eval::EvalHypeDom(*mfa, doc, with);
      ASSERT_TRUE(on.ok());
      EXPECT_EQ(IdsOf(on->answers), IdsOf(off->answers))
          << "seed " << seed << " query " << q;
      // subtrees_pruned is not monotone (one high TAX prune replaces many
      // small dead-run prunes below it); visits are the sound metric.
      EXPECT_LE(on->stats.nodes_visited, off->stats.nodes_visited)
          << "TAX must never visit more nodes";
    }
  }
}

TEST(TaxTest, PruningEffectivenessOnSelectiveQuery) {
  xml::Document doc = testutil::GenHospital(7, 3000);
  TaxIndex idx = TaxIndex::Build(doc);
  // 'parent' chains are rare; most patient subtrees lack them entirely.
  auto query = MustQuery("//parent/patient/pname");
  auto mfa = Mfa::Compile(*query, doc.names());
  ASSERT_TRUE(mfa.ok());
  auto off = eval::EvalHypeDom(*mfa, doc);
  eval::DomEvalOptions with;
  with.tax = &idx;
  auto on = eval::EvalHypeDom(*mfa, doc, with);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(on.ok());
  EXPECT_LT(on->stats.nodes_visited, off->stats.nodes_visited)
      << "TAX should reduce visits for type-selective queries";
}

TEST(TaxTest, DumpShowsTypeSets) {
  xml::Document doc = MustDoc(kHospitalDoc);
  TaxIndex idx = TaxIndex::Build(doc);
  std::string dump = idx.Dump(doc, 5);
  EXPECT_NE(dump.find("hospital : {"), std::string::npos);
  EXPECT_NE(dump.find("patient"), std::string::npos);
}

TEST(TaxIoTest, EncodeDecodeRoundTrip) {
  for (uint64_t seed : {41ull, 42ull}) {
    xml::Document doc = testutil::GenHospital(seed, 500);
    TaxIndex idx = TaxIndex::Build(doc);
    std::string bytes = TaxIo::Encode(idx);
    auto back = TaxIo::Decode(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->type_width(), idx.type_width());
    EXPECT_EQ(back->num_elements(), idx.num_elements());
    for (int32_t id = 0; id < doc.num_nodes(); ++id) {
      const DynamicBitset* a = idx.DescendantTypes(id);
      const DynamicBitset* b = back->DescendantTypes(id);
      if (a == nullptr) {
        EXPECT_EQ(b, nullptr);
      } else {
        ASSERT_NE(b, nullptr);
        EXPECT_TRUE(*a == *b) << "node " << id;
      }
    }
  }
}

TEST(TaxIoTest, CompressionShrinksIndex) {
  xml::Document doc = testutil::GenHospital(5, 5000);
  TaxIndex idx = TaxIndex::Build(doc);
  std::string bytes = TaxIo::Encode(idx);
  EXPECT_LT(bytes.size(), idx.memory_bytes() / 2)
      << "compressed form should be much smaller than raw bitsets";
}

TEST(TaxIoTest, SaveLoadFile) {
  xml::Document doc = MustDoc(kHospitalDoc);
  TaxIndex idx = TaxIndex::Build(doc);
  std::string path = ::testing::TempDir() + "/tax_test.idx";
  ASSERT_TRUE(TaxIo::Save(idx, path).ok());
  auto back = TaxIo::Load(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_elements(), idx.num_elements());
  std::remove(path.c_str());
}

TEST(TaxIoTest, DecodeRejectsCorruptInput) {
  EXPECT_FALSE(TaxIo::Decode("").ok());
  EXPECT_FALSE(TaxIo::Decode("BAD!xxxx").ok());
  xml::Document doc = MustDoc(kHospitalDoc);
  TaxIndex idx = TaxIndex::Build(doc);
  std::string bytes = TaxIo::Encode(idx);
  EXPECT_FALSE(TaxIo::Decode(bytes.substr(0, bytes.size() / 2)).ok());
  std::string garbled = bytes + "trailing";
  EXPECT_FALSE(TaxIo::Decode(garbled).ok());
}

TEST(TaxIoTest, LoadMissingFileFails) {
  auto r = TaxIo::Load("/nonexistent/path/tax.idx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace smoqe::index
