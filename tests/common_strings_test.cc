#include "src/common/strings.h"

#include <gtest/gtest.h>

namespace smoqe {
namespace {

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hospital", "hosp"));
  EXPECT_FALSE(StartsWith("hosp", "hospital"));
  EXPECT_TRUE(EndsWith("patient", "ent"));
  EXPECT_FALSE(EndsWith("ent", "patient"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&'\"c"), "a&lt;b&gt;&amp;&apos;&quot;c");
  EXPECT_EQ(XmlEscape("plain"), "plain");
  EXPECT_EQ(XmlEscape(""), "");
}

TEST(StringsTest, XmlNameValidation) {
  EXPECT_TRUE(IsValidXmlName("patient"));
  EXPECT_TRUE(IsValidXmlName("_x"));
  EXPECT_TRUE(IsValidXmlName("a-b.c:d"));
  EXPECT_FALSE(IsValidXmlName(""));
  EXPECT_FALSE(IsValidXmlName("1abc"));
  EXPECT_FALSE(IsValidXmlName("-abc"));
  EXPECT_FALSE(IsValidXmlName("a b"));
}

}  // namespace
}  // namespace smoqe
