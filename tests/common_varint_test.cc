#include "src/common/varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace smoqe {
namespace {

TEST(VarintTest, RoundTripsRepresentativeValues) {
  std::vector<uint64_t> values = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  ~0ull};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  std::string_view in = buf;
  for (uint64_t v : values) {
    auto got = GetVarint64(&in);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  std::string_view in(buf.data(), buf.size() - 1);
  EXPECT_FALSE(GetVarint64(&in).ok());
}

TEST(VarintTest, EmptyInputFails) {
  std::string_view in;
  EXPECT_FALSE(GetVarint64(&in).ok());
}

TEST(VarintTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view in = buf;
  auto a = GetLengthPrefixed(&in);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "hello");
  auto b = GetLengthPrefixed(&in);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "");
  auto c = GetLengthPrefixed(&in);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(VarintTest, LengthPrefixedTruncatedPayloadFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  std::string_view in(buf.data(), buf.size() - 2);
  EXPECT_FALSE(GetLengthPrefixed(&in).ok());
}

}  // namespace
}  // namespace smoqe
