#include "src/eval/two_pass.h"

#include <gtest/gtest.h>

#include "src/automata/mfa.h"
#include "tests/test_util.h"

namespace smoqe::eval {
namespace {

using automata::Mfa;
using testutil::IdsOf;
using testutil::kHospitalDoc;
using testutil::MustDoc;
using testutil::MustQuery;
using testutil::NaiveIds;

std::vector<int32_t> TwoPassIds(const xml::Document& doc,
                                std::string_view q) {
  auto query = MustQuery(q);
  auto mfa = Mfa::Compile(*query, doc.names());
  EXPECT_TRUE(mfa.ok()) << mfa.status().ToString();
  auto r = EvalTwoPass(*mfa, doc);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return IdsOf(r->answers);
}

class TwoPassCorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TwoPassCorpusTest, MatchesNaive) {
  xml::Document doc = MustDoc(kHospitalDoc);
  auto query = MustQuery(GetParam());
  EXPECT_EQ(TwoPassIds(doc, GetParam()), NaiveIds(doc, *query))
      << "query: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, TwoPassCorpusTest,
                         ::testing::ValuesIn(testutil::HospitalQueryCorpus()));

TEST(TwoPassTest, RandomDocsMatchNaive) {
  for (uint64_t seed = 21; seed <= 26; ++seed) {
    xml::Document doc = testutil::GenHospital(seed, 250);
    for (const char* q : testutil::HospitalQueryCorpus()) {
      auto query = MustQuery(q);
      EXPECT_EQ(TwoPassIds(doc, q), NaiveIds(doc, *query))
          << "seed " << seed << " query: " << q;
    }
  }
}

TEST(TwoPassTest, ReportsThreeTreePasses) {
  xml::Document doc = MustDoc(kHospitalDoc);
  auto query = MustQuery("//patient[visit]");
  auto mfa = Mfa::Compile(*query, doc.names());
  ASSERT_TRUE(mfa.ok());
  auto r = EvalTwoPass(*mfa, doc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.tree_passes, 3u);
  // The bottom-up pass touches every element; HyPE's claim is that it
  // avoids exactly this.
  EXPECT_GE(r->stats.nodes_visited,
            static_cast<uint64_t>(doc.num_elements()));
}

TEST(TwoPassTest, AttributePredicates) {
  xml::Document doc =
      MustDoc("<r><item id='a'/><item id='b' flag='1'/><item/></r>");
  EXPECT_EQ(TwoPassIds(doc, "r/item[@id]").size(), 2u);
  EXPECT_EQ(TwoPassIds(doc, "r/item[@id = 'b']").size(), 1u);
  EXPECT_EQ(TwoPassIds(doc, "r[item/@flag = '1']").size(), 1u);
}

TEST(TwoPassTest, NameTableMismatchRejected) {
  xml::Document doc = MustDoc("<a/>");
  auto query = MustQuery("a");
  auto mfa = Mfa::Compile(*query, xml::NameTable::Create());
  ASSERT_TRUE(mfa.ok());
  EXPECT_FALSE(EvalTwoPass(*mfa, doc).ok());
}

}  // namespace
}  // namespace smoqe::eval
