#include "src/view/spec_parser.h"

#include <gtest/gtest.h>

#include "src/rxpath/printer.h"
#include "src/view/derive.h"
#include "src/view/materialize.h"
#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace smoqe::view {
namespace {

using testutil::kHospitalDoc;
using testutil::kHospitalDtd;
using testutil::MustDoc;
using testutil::MustDtd;

// A hand-written view equivalent to the paper's derived σ0 (Fig. 3(c,d)):
// the iSMOQE "annotate a view schema" definition mode.
constexpr char kHandWrittenSpec[] = R"(
  # Fig 3(c)/(d), written by hand instead of derived from a policy.
  root hospital;
  dtd {
    <!ELEMENT hospital (patient*)>
    <!ELEMENT patient (treatment*, parent*)>
    <!ELEMENT parent (patient)>
    <!ELEMENT treatment (medication?)>
    <!ELEMENT medication (#PCDATA)>
  }
  sigma hospital/patient = patient[visit/treatment/medication = 'autism'];
  sigma patient/treatment = visit/treatment[medication];
  sigma patient/parent = parent;
  sigma parent/patient = patient;
  sigma treatment/medication = medication;
)";

TEST(SpecParserTest, ParsesHandWrittenSpec) {
  auto view = ParseViewSpecification(kHandWrittenSpec);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->root(), "hospital");
  EXPECT_EQ(rxpath::ToString(*view->Sigma("patient", "treatment")),
            "visit/treatment[medication]");
  EXPECT_TRUE(view->view_dtd().IsRecursive());
}

TEST(SpecParserTest, HandWrittenMatchesDerivedView) {
  // Materializing the hand-written spec and the policy-derived view must
  // give identical documents.
  auto hand = ParseViewSpecification(kHandWrittenSpec);
  ASSERT_TRUE(hand.ok()) << hand.status().ToString();

  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto policy = Policy::Parse(dtd, R"(
    hospital/patient : [visit/treatment/medication = 'autism'];
    patient/pname    : N;
    patient/visit    : N;
    visit/treatment  : [medication];
    treatment/test   : N;
  )");
  ASSERT_TRUE(policy.ok());
  auto derived = DeriveView(*policy);
  ASSERT_TRUE(derived.ok());

  xml::Document doc = MustDoc(kHospitalDoc);
  auto m1 = Materialize(*hand, doc);
  auto m2 = Materialize(*derived, doc);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(xml::SerializeDocument(m1->document),
            xml::SerializeDocument(m2->document));
}

TEST(SpecParserTest, TypeCheckAcceptsCorrectSpec) {
  auto view = ParseViewSpecification(kHandWrittenSpec);
  ASSERT_TRUE(view.ok());
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  EXPECT_TRUE(CheckSpecificationAgainstDtd(*view, dtd).ok());
}

TEST(SpecParserTest, TypeCheckRejectsWrongOutputType) {
  auto view = ParseViewSpecification(R"(
    root hospital;
    dtd {
      <!ELEMENT hospital (patient*)>
      <!ELEMENT patient EMPTY>
    }
    sigma hospital/patient = patient/visit;   # produces visit, not patient
  )");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  Status st = CheckSpecificationAgainstDtd(*view, dtd);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("can produce 'visit'"), std::string::npos)
      << st.ToString();
}

TEST(SpecParserTest, TypeCheckRejectsUnknownLabel) {
  auto view = ParseViewSpecification(R"(
    root hospital;
    dtd {
      <!ELEMENT hospital (patient*)>
      <!ELEMENT patient EMPTY>
    }
    sigma hospital/patient = patiennt;
  )");
  ASSERT_TRUE(view.ok());
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  Status st = CheckSpecificationAgainstDtd(*view, dtd);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("patiennt"), std::string::npos);
}

TEST(SpecParserTest, TypeCheckRejectsDeadSigma) {
  auto view = ParseViewSpecification(R"(
    root hospital;
    dtd {
      <!ELEMENT hospital (date*)>
      <!ELEMENT date (#PCDATA)>
    }
    sigma hospital/date = date;   # date is not reachable as a child here
  )");
  ASSERT_TRUE(view.ok());
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  EXPECT_FALSE(CheckSpecificationAgainstDtd(*view, dtd).ok());
}

TEST(SpecParserTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseViewSpecification("").ok());
  EXPECT_FALSE(ParseViewSpecification("root a").ok());  // missing ';'
  EXPECT_FALSE(ParseViewSpecification("bogus x;").ok());
  EXPECT_FALSE(ParseViewSpecification("root a; dtd { <!ELEMENT a EMPTY>")
                   .ok());  // unterminated block
  // Missing sigma for a declared edge.
  EXPECT_FALSE(ParseViewSpecification(R"(
    root a;
    dtd { <!ELEMENT a (b)> <!ELEMENT b EMPTY> }
  )").ok());
  // Sigma for a non-edge.
  EXPECT_FALSE(ParseViewSpecification(R"(
    root a;
    dtd { <!ELEMENT a EMPTY> }
    sigma a/b = b;
  )").ok());
  // Bad path syntax.
  EXPECT_FALSE(ParseViewSpecification(R"(
    root a;
    dtd { <!ELEMENT a (b)> <!ELEMENT b EMPTY> }
    sigma a/b = b[[;
  )").ok());
}

}  // namespace
}  // namespace smoqe::view
