#include "src/view/derive.h"

#include <gtest/gtest.h>

#include "src/rxpath/printer.h"
#include "src/view/annotation.h"
#include "tests/test_util.h"

namespace smoqe::view {
namespace {

using testutil::kHospitalDtd;
using testutil::MustDtd;

/// The paper's access-control policy S0 (Fig. 3(b)), in the text format.
constexpr char kPolicyS0[] = R"(
  # only patients treated for autism are exposed; hide names and tests
  hospital/patient : [visit/treatment/medication = 'autism'];
  patient/pname    : N;
  patient/visit    : N;
  visit/treatment  : [medication];
  treatment/test   : N;
)";

std::string SigmaStr(const ViewDefinition& v, const std::string& a,
                     const std::string& b) {
  const rxpath::PathExpr* p = v.Sigma(a, b);
  return p == nullptr ? "<none>" : rxpath::ToString(*p);
}

TEST(PolicyTest, ParsesTextFormat) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto p = Policy::Parse(dtd, kPolicyS0);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->size(), 5u);
  const Annotation* a = p->Find("patient", "pname");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, AnnKind::kDeny);
  const Annotation* c = p->Find("hospital", "patient");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, AnnKind::kCondition);
  EXPECT_EQ(rxpath::ToString(*c->condition),
            "visit/treatment/medication = 'autism'");
  EXPECT_EQ(p->Find("parent", "patient"), nullptr);
}

TEST(PolicyTest, ToStringRoundTrips) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto p = Policy::Parse(dtd, kPolicyS0);
  ASSERT_TRUE(p.ok());
  auto p2 = Policy::Parse(dtd, p->ToString());
  ASSERT_TRUE(p2.ok()) << p2.status().ToString();
  EXPECT_EQ(p2->ToString(), p->ToString());
}

TEST(PolicyTest, RejectsBadInput) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  EXPECT_FALSE(Policy::Parse(dtd, "nosuch/edge : N;").ok());
  EXPECT_FALSE(Policy::Parse(dtd, "hospital/visit : N;").ok());  // not an edge
  EXPECT_FALSE(Policy::Parse(dtd, "hospital/patient : MAYBE;").ok());
  EXPECT_FALSE(Policy::Parse(dtd, "hospital/patient [x];").ok());
  EXPECT_FALSE(Policy::Parse(dtd, "hospitalpatient : N;").ok());
  EXPECT_FALSE(Policy::Parse(dtd, "hospital/patient : [not a qual(];").ok());
}

// =====================================================================
// GOLDEN TEST — the paper's Fig. 3: policy S0 must derive exactly the
// view specification σ0 and the view DTD DV shown in the paper.
// =====================================================================
TEST(DeriveTest, PaperFig3Golden) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto policy = Policy::Parse(dtd, kPolicyS0);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  auto view = DeriveView(*policy);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  // σ0 exactly as printed in Fig. 3(c).
  EXPECT_EQ(SigmaStr(*view, "hospital", "patient"),
            "patient[visit/treatment/medication = 'autism']");
  EXPECT_EQ(SigmaStr(*view, "patient", "treatment"),
            "visit/treatment[medication]");
  EXPECT_EQ(SigmaStr(*view, "patient", "parent"), "parent");
  EXPECT_EQ(SigmaStr(*view, "parent", "patient"), "patient");
  EXPECT_EQ(SigmaStr(*view, "treatment", "medication"), "medication");

  // View DTD DV: productions of Fig. 3(d).
  const xml::Dtd& vd = view->view_dtd();
  EXPECT_EQ(vd.root_name(), "hospital");
  ASSERT_NE(vd.Find("hospital"), nullptr);
  EXPECT_EQ(vd.Find("hospital")->particle->ToString(), "patient*");
  EXPECT_EQ(vd.Find("patient")->particle->ToString(), "(treatment*, parent*)");
  EXPECT_EQ(vd.Find("parent")->particle->ToString(), "patient");
  EXPECT_EQ(vd.Find("treatment")->particle->ToString(), "medication?");
  EXPECT_EQ(vd.Find("medication")->content, xml::ContentKind::kPcdata);
  // Hidden types are gone.
  EXPECT_EQ(vd.Find("pname"), nullptr);
  EXPECT_EQ(vd.Find("visit"), nullptr);
  EXPECT_EQ(vd.Find("date"), nullptr);
  EXPECT_EQ(vd.Find("test"), nullptr);
  // The view DTD is recursive, like the paper says (patient→parent→patient).
  EXPECT_TRUE(vd.IsRecursive());
}

TEST(DeriveTest, RecursiveHiddenRegionProducesKleeneStar) {
  // part is hidden and recursive: part → (part | item)*; σ(assembly, item)
  // must use a Kleene star over the hidden 'part' chain — the case where
  // XPath is not closed under rewriting and Regular XPath is required.
  xml::Dtd dtd = MustDtd(R"(
    <!ELEMENT assembly (part*)>
    <!ELEMENT part ((part | item)*)>
    <!ELEMENT item (#PCDATA)>
  )", "assembly");
  Policy policy(&dtd);
  ASSERT_TRUE(policy.Deny("assembly", "part").ok());
  // Items stay accessible even under hidden parts (explicit re-allow;
  // an unannotated edge would inherit the hiding).
  ASSERT_TRUE(policy.Allow("part", "item").ok());
  auto view = DeriveView(policy);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  std::string sigma = SigmaStr(*view, "assembly", "item");
  EXPECT_NE(sigma.find('*'), std::string::npos) << sigma;
  EXPECT_NE(sigma.find("part"), std::string::npos) << sigma;
  // The view DTD exposes items under assembly.
  EXPECT_NE(view->view_dtd().Find("item"), nullptr);
  EXPECT_EQ(view->view_dtd().Find("part"), nullptr);
}

TEST(DeriveTest, HiddenInheritancePropagates) {
  xml::Dtd dtd = MustDtd(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b (c)>
    <!ELEMENT c (d)>
    <!ELEMENT d (#PCDATA)>
  )", "a");
  Policy policy(&dtd);
  ASSERT_TRUE(policy.Deny("a", "b").ok());
  auto view = DeriveView(policy);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // b, c, d are all hidden (inheritance); nothing visible below a.
  EXPECT_EQ(view->view_dtd().elements().size(), 1u);
  EXPECT_EQ(view->view_dtd().Find("a")->content, xml::ContentKind::kEmpty);
}

TEST(DeriveTest, ExplicitAllowResurfacesUnderHiddenParent) {
  xml::Dtd dtd = MustDtd(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b (c)>
    <!ELEMENT c (#PCDATA)>
  )", "a");
  Policy policy(&dtd);
  ASSERT_TRUE(policy.Deny("a", "b").ok());
  ASSERT_TRUE(policy.Allow("b", "c").ok());
  auto view = DeriveView(policy);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(SigmaStr(*view, "a", "c"), "b/c");
  EXPECT_EQ(view->view_dtd().Find("b"), nullptr);
  EXPECT_NE(view->view_dtd().Find("c"), nullptr);
}

TEST(DeriveTest, InconsistentClassificationRejected) {
  xml::Dtd dtd = MustDtd(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b (d)>
    <!ELEMENT c (d)>
    <!ELEMENT d (#PCDATA)>
  )", "a");
  Policy policy(&dtd);
  ASSERT_TRUE(policy.Deny("b", "d").ok());  // hidden via b, visible via c
  auto view = DeriveView(policy);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeriveTest, ConditionalChildBecomesOptional) {
  xml::Dtd dtd = MustDtd(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b (#PCDATA)>
  )", "a");
  Policy policy(&dtd);
  ASSERT_TRUE(policy.AllowIf("a", "b", "text() = 'ok'").ok());
  auto view = DeriveView(policy);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->view_dtd().Find("a")->particle->ToString(), "b?");
  EXPECT_EQ(SigmaStr(*view, "a", "b"), "b[text() = 'ok']");
}

TEST(DeriveTest, AnyContentRejected) {
  xml::Dtd dtd = MustDtd("<!ELEMENT a ANY> <!ELEMENT b (#PCDATA)>", "a");
  Policy policy(&dtd);
  EXPECT_FALSE(DeriveView(policy).ok());
}

TEST(DeriveTest, NoPolicyMeansIdentityView) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  Policy policy(&dtd);
  auto view = DeriveView(policy);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->view_dtd().elements().size(), dtd.elements().size());
  EXPECT_EQ(SigmaStr(*view, "hospital", "patient"), "patient");
  EXPECT_EQ(SigmaStr(*view, "patient", "visit"), "visit");
  EXPECT_EQ(SigmaStr(*view, "visit", "date"), "date");
}

TEST(DeriveTest, ViewDefinitionRendering) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto policy = Policy::Parse(dtd, kPolicyS0);
  ASSERT_TRUE(policy.ok());
  auto view = DeriveView(*policy);
  ASSERT_TRUE(view.ok());
  std::string s = view->ToString();
  EXPECT_NE(s.find("sigma(patient, treatment) = visit/treatment[medication]"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("<!ELEMENT hospital (patient*)>"), std::string::npos) << s;
}

TEST(ViewDefTest, EdgeOrderFollowsContentModel) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto policy = Policy::Parse(dtd, kPolicyS0);
  ASSERT_TRUE(policy.ok());
  auto view = DeriveView(*policy);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->EdgeOrder("patient"),
            (std::vector<std::string>{"treatment", "parent"}));
}

}  // namespace
}  // namespace smoqe::view
