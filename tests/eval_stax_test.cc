#include "src/eval/hype_stax.h"

#include <gtest/gtest.h>

#include "src/automata/mfa.h"
#include "src/core/smoqe.h"
#include "src/eval/batch.h"
#include "src/eval/hype_dom.h"
#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace smoqe::eval {
namespace {

using automata::Mfa;
using core::BatchQueryItem;
using core::EvalMode;
using core::QueryOptions;
using core::Smoqe;
using testutil::kHospitalDoc;
using testutil::MustDoc;
using testutil::MustQuery;

StaxEvalResult MustStax(std::string_view xml, std::string_view q,
                        std::shared_ptr<xml::NameTable> names = nullptr) {
  if (names == nullptr) names = xml::NameTable::Create();
  auto query = MustQuery(q);
  auto mfa = Mfa::Compile(*query, names);
  EXPECT_TRUE(mfa.ok()) << mfa.status().ToString();
  auto r = EvalHypeStax(*mfa, xml);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(StaxEvalTest, SelectsAndSerializesSubtrees) {
  auto r = MustStax("<a><b>one</b><c><b>two</b></c></a>", "//b");
  ASSERT_EQ(r.answers.size(), 2u);
  EXPECT_EQ(r.answers[0].xml, "<b>one</b>");
  EXPECT_EQ(r.answers[1].xml, "<b>two</b>");
}

TEST(StaxEvalTest, CandidateDiscardedWhenGuardFails) {
  // b[x] stages every b as a candidate (guard pending); only one passes.
  auto r = MustStax("<a><b><x/></b><b><y/></b></a>", "a/b[x]");
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].xml, "<b><x/></b>");
}

TEST(StaxEvalTest, NestedCandidatesCaptureIndependently) {
  auto r = MustStax("<a><b><a><b/></a></b></a>", "//b");
  ASSERT_EQ(r.answers.size(), 2u);
  EXPECT_EQ(r.answers[0].xml, "<b><a><b/></a></b>");
  EXPECT_EQ(r.answers[1].xml, "<b/>");
}

TEST(StaxEvalTest, AttributesPreservedInCapture) {
  auto r = MustStax("<r><item id=\"7\" k=\"a&amp;b\">t</item></r>", "r/item");
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].xml, "<item id=\"7\" k=\"a&amp;b\">t</item>");
}

// Differential: StAX answers = DOM answers (serialized), corpus × docs.
class StaxCorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StaxCorpusTest, AgreesWithDomMode) {
  auto names = xml::NameTable::Create();
  xml::Document doc = MustDoc(kHospitalDoc, names);
  auto query = MustQuery(GetParam());
  auto mfa = Mfa::Compile(*query, names);
  ASSERT_TRUE(mfa.ok());

  auto dom = EvalHypeDom(*mfa, doc);
  ASSERT_TRUE(dom.ok()) << dom.status().ToString();
  auto stax = EvalHypeStax(*mfa, kHospitalDoc);
  ASSERT_TRUE(stax.ok()) << stax.status().ToString();

  ASSERT_EQ(stax->answers.size(), dom->answers.size()) << GetParam();
  for (size_t i = 0; i < dom->answers.size(); ++i) {
    EXPECT_EQ(stax->answers[i].xml,
              xml::SerializeNode(dom->answers[i], *names))
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, StaxCorpusTest,
                         ::testing::ValuesIn(testutil::HospitalQueryCorpus()));

TEST(StaxEvalTest, RandomDocsAgreeWithDom) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto names = xml::NameTable::Create();
    xml::Document doc = testutil::GenHospital(seed, 300, names);
    std::string text = xml::SerializeDocument(doc);
    for (const char* q : testutil::HospitalQueryCorpus()) {
      auto query = MustQuery(q);
      auto mfa = Mfa::Compile(*query, names);
      ASSERT_TRUE(mfa.ok());
      auto dom = EvalHypeDom(*mfa, doc);
      ASSERT_TRUE(dom.ok());
      auto stax = EvalHypeStax(*mfa, text);
      ASSERT_TRUE(stax.ok()) << q << ": " << stax.status().ToString();
      ASSERT_EQ(stax->answers.size(), dom->answers.size())
          << "seed " << seed << " query " << q;
    }
  }
}

TEST(StaxEvalTest, BufferedBytesBoundedByCandidates) {
  // A selective query must not buffer the whole document.
  auto names = xml::NameTable::Create();
  xml::Document doc = testutil::GenHospital(3, 2000, names);
  std::string text = xml::SerializeDocument(doc);
  auto query = MustQuery("hospital/patient/pname");
  auto mfa = Mfa::Compile(*query, names);
  ASSERT_TRUE(mfa.ok());
  auto r = EvalHypeStax(*mfa, text);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->answers.size(), 0u);
  EXPECT_LT(r->stats.buffered_bytes, text.size() / 4)
      << "peak capture should be far below document size";
}

TEST(StaxEvalTest, MalformedInputSurfacesParseError) {
  auto names = xml::NameTable::Create();
  auto query = MustQuery("a");
  auto mfa = Mfa::Compile(*query, names);
  ASSERT_TRUE(mfa.ok());
  auto r = EvalHypeStax(*mfa, "<a><b></a>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(StaxEvalTest, WhitespaceHandlingMatchesDomDefault) {
  auto r = MustStax("<a>\n  <b>x</b>\n</a>", "a[b = 'x']");
  ASSERT_EQ(r.answers.size(), 1u);
}

// Batch evaluation (one shared scan, N plans) must produce byte-identical
// answers to N sequential single-plan passes — the DESIGN.md §5.2
// contract that bench_batch's speedup claim rests on.
TEST(BatchEvalTest, BatchAnswersByteIdenticalToSequential) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto names = xml::NameTable::Create();
    xml::Document doc = testutil::GenHospital(seed, 400, names);
    std::string text = xml::SerializeDocument(doc);

    std::vector<Mfa> mfas;
    for (const char* q : testutil::HospitalQueryCorpus()) {
      auto query = MustQuery(q);
      auto mfa = Mfa::Compile(*query, names);
      ASSERT_TRUE(mfa.ok());
      mfas.push_back(mfa.MoveValue());
    }
    std::vector<const Mfa*> plans;
    for (const Mfa& m : mfas) plans.push_back(&m);

    auto batch = EvalHypeStaxBatch(plans, text);
    ASSERT_TRUE(batch.ok()) << "seed " << seed << ": "
                            << batch.status().ToString();
    ASSERT_EQ(batch->size(), plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      auto single = EvalHypeStax(*plans[i], text);
      ASSERT_TRUE(single.ok());
      ASSERT_EQ((*batch)[i].answers.size(), single->answers.size())
          << "seed " << seed << " plan " << i;
      for (size_t a = 0; a < single->answers.size(); ++a) {
        EXPECT_EQ((*batch)[i].answers[a].xml, single->answers[a].xml)
            << "seed " << seed << " plan " << i << " answer " << a;
        EXPECT_EQ((*batch)[i].answers[a].engine_id,
                  single->answers[a].engine_id);
      }
    }
  }
}

TEST(BatchEvalTest, RejectsPlansFromDifferentNameTables) {
  auto names_a = xml::NameTable::Create();
  auto names_b = xml::NameTable::Create();
  auto qa = MustQuery("a");
  auto qb = MustQuery("b");
  auto ma = Mfa::Compile(*qa, names_a);
  auto mb = Mfa::Compile(*qb, names_b);
  ASSERT_TRUE(ma.ok() && mb.ok());
  auto r = EvalHypeStaxBatch({&*ma, &*mb}, "<a><b/></a>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchEvalTest, EmptyBatchIsNoop) {
  auto r = EvalHypeStaxBatch({}, "<a/>");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

// Facade batch over the shared StAX scan: a failing item (parse error,
// mode conflict) fails only itself; its siblings — including items that
// ride the same streaming pass — still complete (ISSUE S3 / smoqe.h
// QueryAnswer::status contract).
TEST(BatchEvalTest, FacadeStaxBatchFailsPerItem) {
  Smoqe engine;
  ASSERT_TRUE(engine.LoadDocument("ward", kHospitalDoc).ok());

  QueryOptions stax;
  stax.mode = EvalMode::kStax;
  QueryOptions stax_tax = stax;
  stax_tax.use_tax = true;  // TAX is DOM-only: per-item conflict
  std::vector<BatchQueryItem> items = {
      {"//pname", stax},
      {"a[[", stax},        // parse error
      {"//pname", stax_tax},
      {"//pname", {}},      // DOM item sharing the batch
  };
  auto r = engine.QueryBatch("ward", items);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 4u);

  auto single = engine.Query("ward", "//pname", stax);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE((*r)[0].status.ok()) << (*r)[0].status.ToString();
  EXPECT_EQ((*r)[0].answers_xml, single->answers_xml);

  EXPECT_EQ((*r)[1].status.code(), StatusCode::kParseError);
  EXPECT_NE((*r)[1].status.message().find("batch item 1"), std::string::npos)
      << (*r)[1].status.ToString();
  EXPECT_TRUE((*r)[1].answers_xml.empty());

  EXPECT_EQ((*r)[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE((*r)[2].answers_xml.empty());

  ASSERT_TRUE((*r)[3].status.ok()) << (*r)[3].status.ToString();
  EXPECT_EQ((*r)[3].answers_xml, single->answers_xml)
      << "DOM sibling must be unaffected by StAX item failures";
}

// An invalid StAX item must not poison the shared scan for later calls:
// the next identical batch answers byte-identically.
TEST(BatchEvalTest, FacadeStaxBatchRecoversAfterItemFailure) {
  Smoqe engine;
  ASSERT_TRUE(engine.LoadDocument("ward", kHospitalDoc).ok());
  QueryOptions stax;
  stax.mode = EvalMode::kStax;
  std::vector<BatchQueryItem> bad = {{"//pname", stax}, {"][", stax}};
  auto first = engine.QueryBatch("ward", bad);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE((*first)[1].status.ok());
  auto second = engine.QueryBatch("ward", bad);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)[0].answers_xml, (*first)[0].answers_xml);
  EXPECT_EQ((*second)[1].status.code(), (*first)[1].status.code());
}

}  // namespace
}  // namespace smoqe::eval
