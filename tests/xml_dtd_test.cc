#include "src/xml/dtd.h"

#include <gtest/gtest.h>

#include "src/xml/dtd_parser.h"

namespace smoqe::xml {
namespace {

// The paper's hospital DTD (Fig. 3(a)).
constexpr char kHospitalDtd[] = R"(
  <!ELEMENT hospital (patient*)>
  <!ELEMENT patient (pname, visit*, parent*)>
  <!ELEMENT parent (patient)>
  <!ELEMENT visit (treatment, date)>
  <!ELEMENT treatment (test | medication)>
  <!ELEMENT pname (#PCDATA)>
  <!ELEMENT date (#PCDATA)>
  <!ELEMENT test (#PCDATA)>
  <!ELEMENT medication (#PCDATA)>
)";

TEST(DtdParserTest, ParsesHospitalDtd) {
  auto r = ParseDtd(kHospitalDtd, "hospital");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Dtd& dtd = *r;
  EXPECT_EQ(dtd.root_name(), "hospital");
  EXPECT_EQ(dtd.elements().size(), 9u);
  const ElementDecl* patient = dtd.Find("patient");
  ASSERT_NE(patient, nullptr);
  EXPECT_EQ(patient->content, ContentKind::kChildren);
  EXPECT_EQ(patient->particle->ToString(), "(pname, visit*, parent*)");
  EXPECT_TRUE(dtd.AllowsText("pname"));
  EXPECT_FALSE(dtd.AllowsText("patient"));
}

TEST(DtdParserTest, InfersUniqueRoot) {
  auto r = ParseDtd("<!ELEMENT a (b)> <!ELEMENT b EMPTY>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->root_name(), "a");
}

TEST(DtdParserTest, RootInferenceFailsWhenAmbiguous) {
  auto r = ParseDtd("<!ELEMENT a EMPTY> <!ELEMENT b EMPTY>");
  EXPECT_FALSE(r.ok());
}

TEST(DtdParserTest, RecursiveRootStillNeedsExplicitName) {
  // Every type is referenced (cycle), so no root candidate exists.
  auto r = ParseDtd("<!ELEMENT a (b)> <!ELEMENT b (a?)>");
  EXPECT_FALSE(r.ok());
  auto r2 = ParseDtd("<!ELEMENT a (b)> <!ELEMENT b (a?)>", "a");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r2->IsRecursive());
}

TEST(DtdParserTest, HospitalDtdIsRecursive) {
  auto r = ParseDtd(kHospitalDtd, "hospital");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsRecursive());  // patient → parent → patient
}

TEST(DtdParserTest, NonRecursiveDtd) {
  auto r = ParseDtd("<!ELEMENT a (b*)> <!ELEMENT b EMPTY>");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->IsRecursive());
}

TEST(DtdParserTest, MixedContent) {
  auto r = ParseDtd("<!ELEMENT a (#PCDATA | b)*> <!ELEMENT b (#PCDATA)>", "a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ElementDecl* a = r->Find("a");
  EXPECT_EQ(a->content, ContentKind::kMixed);
  ASSERT_EQ(a->mixed_names.size(), 1u);
  EXPECT_EQ(a->mixed_names[0], "b");
  EXPECT_TRUE(r->AllowsText("a"));
}

TEST(DtdParserTest, EmptyAndAny) {
  auto r = ParseDtd("<!ELEMENT a (b, c)> <!ELEMENT b EMPTY> <!ELEMENT c ANY>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Find("b")->content, ContentKind::kEmpty);
  EXPECT_EQ(r->Find("c")->content, ContentKind::kAny);
}

TEST(DtdParserTest, AttlistParsed) {
  auto r = ParseDtd(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b EMPTY>
    <!ATTLIST a id ID #REQUIRED
                kind CDATA #IMPLIED
                mode (fast | slow) "fast">
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ElementDecl* a = r->Find("a");
  ASSERT_EQ(a->attrs.size(), 3u);
  EXPECT_EQ(a->attrs[0].name, "id");
  EXPECT_EQ(a->attrs[0].default_kind, AttrDecl::Default::kRequired);
  EXPECT_EQ(a->attrs[1].default_kind, AttrDecl::Default::kImplied);
  EXPECT_EQ(a->attrs[2].default_kind, AttrDecl::Default::kValue);
  EXPECT_EQ(a->attrs[2].default_value, "fast");
}

TEST(DtdParserTest, RejectsDuplicateDeclaration) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT a EMPTY> <!ELEMENT a EMPTY>").ok());
}

TEST(DtdParserTest, RejectsEntities) {
  EXPECT_FALSE(ParseDtd("<!ENTITY x \"y\"> <!ELEMENT a EMPTY>").ok());
}

TEST(DtdParserTest, RejectsMixedSeparators) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b, c | d)> <!ELEMENT b EMPTY>").ok());
}

TEST(DtdParserTest, ChildTypesForAllContentKinds) {
  auto r = ParseDtd(kHospitalDtd, "hospital");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ChildTypes("hospital"), std::vector<std::string>{"patient"});
  auto pt = r->ChildTypes("patient");
  EXPECT_EQ(pt, (std::vector<std::string>{"parent", "pname", "visit"}));
  EXPECT_TRUE(r->ChildTypes("pname").empty());
}

TEST(ContentModelTest, ParseAndPrint) {
  auto r = ParseContentModel("(a, (b | c)*, d?)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->ToString(), "(a, (b | c)*, d?)");
}

TEST(ContentModelTest, SimplifyCollapsesRedundancy) {
  {
    auto r = ParseContentModel("((a))");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->ToString(), "a");
  }
  {
    auto r = ParseContentModel("((a*)*)");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->ToString(), "a*");
  }
  {
    auto r = ParseContentModel("((a?)+)");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->ToString(), "a*");
  }
  {
    auto r = ParseContentModel("((a?)?)");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->ToString(), "a?");
  }
}

TEST(ContentModelTest, SubstituteReplacesLeaves) {
  auto model = ParseContentModel("(a, b*, a?)");
  ASSERT_TRUE(model.ok());
  auto repl = ParseContentModel("(x | y)");
  ASSERT_TRUE(repl.ok());
  auto substituted =
      Particle::Substitute(model.MoveValue(), "a", **repl);
  substituted = Particle::Simplify(std::move(substituted));
  EXPECT_EQ(substituted->ToString(), "((x | y), b*, (x | y)?)");
}

TEST(ContentModelTest, CloneIsDeepAndEqual) {
  auto model = ParseContentModel("(a, (b | c)+)");
  ASSERT_TRUE(model.ok());
  auto clone = (*model)->Clone();
  EXPECT_TRUE(clone->StructurallyEquals(**model));
  EXPECT_NE(clone.get(), model->get());
}

TEST(DtdTest, ToStringRendersDeclarations) {
  auto r = ParseDtd(kHospitalDtd, "hospital");
  ASSERT_TRUE(r.ok());
  std::string s = r->ToString();
  // Root declaration comes first.
  EXPECT_EQ(s.find("<!ELEMENT hospital"), 0u);
  EXPECT_NE(s.find("<!ELEMENT patient (pname, visit*, parent*)>"),
            std::string::npos);
  EXPECT_NE(s.find("<!ELEMENT pname (#PCDATA)>"), std::string::npos);
  // Round-trip: parse the rendering, same element count.
  auto r2 = ParseDtd(s, "hospital");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->elements().size(), r->elements().size());
}

}  // namespace
}  // namespace smoqe::xml
