#include "src/xml/dom.h"

#include <gtest/gtest.h>

namespace smoqe::xml {
namespace {

TEST(DocumentBuilderTest, BuildsTreeWithIds) {
  DocumentBuilder b;
  b.StartElement("root");
  b.StartElement("x");
  b.AddText("t");
  ASSERT_TRUE(b.EndElement().ok());
  b.StartElement("y");
  ASSERT_TRUE(b.EndElement().ok());
  ASSERT_TRUE(b.EndElement().ok());
  auto doc = b.Finish();
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->num_nodes(), 4);
  EXPECT_EQ(doc->num_elements(), 3);
  const Node* root = doc->root();
  EXPECT_EQ(root->node_id, 0);
  EXPECT_EQ(root->subtree_end, 4);
  const Node* x = root->first_child;
  EXPECT_EQ(x->parent, root);
  EXPECT_TRUE(x->first_child->is_text());
  EXPECT_EQ(x->first_child->parent, x);
}

TEST(DocumentBuilderTest, SharedNameTableInternsAcrossDocuments) {
  auto names = NameTable::Create();
  DocumentBuilder b1(names);
  b1.StartElement("shared");
  ASSERT_TRUE(b1.EndElement().ok());
  auto d1 = b1.Finish();
  ASSERT_TRUE(d1.ok());

  DocumentBuilder b2(names);
  b2.StartElement("shared");
  ASSERT_TRUE(b2.EndElement().ok());
  auto d2 = b2.Finish();
  ASSERT_TRUE(d2.ok());

  EXPECT_EQ(d1->root()->label, d2->root()->label);
}

TEST(DocumentBuilderTest, AttributesAttachToOpenElement) {
  DocumentBuilder b;
  b.StartElement("e");
  b.AddAttribute("k", "v");
  b.AddAttribute("k2", "v2");
  b.StartElement("child");
  ASSERT_TRUE(b.EndElement().ok());
  ASSERT_TRUE(b.EndElement().ok());
  auto doc = b.Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->num_attrs, 2u);
  EXPECT_EQ(doc->root()->first_child->num_attrs, 0u);
}

TEST(DocumentBuilderTest, FinishFailsOnUnclosedElements) {
  DocumentBuilder b;
  b.StartElement("open");
  auto doc = b.Finish();
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DocumentBuilderTest, FinishFailsWithoutRoot) {
  DocumentBuilder b;
  EXPECT_FALSE(b.Finish().ok());
}

TEST(DocumentBuilderTest, EndElementWithoutStartFails) {
  DocumentBuilder b;
  EXPECT_FALSE(b.EndElement().ok());
}

TEST(DocumentTest, DirectTextConcatenatesOnlyDirectChildren) {
  DocumentBuilder b;
  b.StartElement("a");
  b.AddText("one ");
  b.StartElement("b");
  b.AddText("nested");
  ASSERT_TRUE(b.EndElement().ok());
  b.AddText("two");
  ASSERT_TRUE(b.EndElement().ok());
  auto doc = b.Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Document::DirectText(doc->root()), "one two");
}

TEST(DocumentTest, NodeLookupByIdMatchesTraversal) {
  DocumentBuilder b;
  b.StartElement("a");
  for (int i = 0; i < 5; ++i) {
    b.StartElement("c");
    ASSERT_TRUE(b.EndElement().ok());
  }
  ASSERT_TRUE(b.EndElement().ok());
  auto doc = b.Finish();
  ASSERT_TRUE(doc.ok());
  for (int32_t id = 0; id < doc->num_nodes(); ++id) {
    EXPECT_EQ(doc->node(id)->node_id, id);
  }
}

TEST(DocumentTest, MoveKeepsPointersValid) {
  DocumentBuilder b;
  b.StartElement("a");
  b.AddText("payload");
  ASSERT_TRUE(b.EndElement().ok());
  auto doc = b.Finish();
  ASSERT_TRUE(doc.ok());
  const Node* root = doc->root();
  Document moved = doc.MoveValue();
  EXPECT_EQ(moved.root(), root);
  EXPECT_EQ(Document::DirectText(moved.root()), "payload");
}

TEST(NameTableTest, InternIsIdempotent) {
  NameTable t;
  NameId a = t.Intern("alpha");
  NameId b = t.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Intern("alpha"), a);
  EXPECT_EQ(t.Lookup("alpha"), a);
  EXPECT_EQ(t.Lookup("missing"), kNoName);
  EXPECT_EQ(t.NameOf(a), "alpha");
  EXPECT_EQ(t.size(), 2u);
}

TEST(NameTableTest, ManyNamesSurviveRehash) {
  NameTable t;
  std::vector<NameId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(t.Intern("name_" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(t.Lookup("name_" + std::to_string(i)), ids[i]);
    EXPECT_EQ(t.NameOf(ids[i]), "name_" + std::to_string(i));
  }
}

}  // namespace
}  // namespace smoqe::xml
