#include "src/xml/stax.h"

#include <gtest/gtest.h>

#include <vector>

namespace smoqe::xml {
namespace {

struct Ev {
  StaxEvent kind;
  std::string payload;  // name or text
};

std::vector<Ev> Drain(StaxReader* r) {
  std::vector<Ev> out;
  while (true) {
    auto e = r->Next();
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    if (!e.ok()) return out;
    Ev ev{*e, ""};
    if (*e == StaxEvent::kStartElement || *e == StaxEvent::kEndElement) {
      ev.payload = r->name();
    } else if (*e == StaxEvent::kCharacters) {
      ev.payload = r->text();
    }
    out.push_back(std::move(ev));
    if (*e == StaxEvent::kEndDocument) return out;
  }
}

TEST(StaxTest, EventSequenceForSimpleDocument) {
  StaxReader r("<a><b>hi</b><c/></a>");
  auto evs = Drain(&r);
  ASSERT_EQ(evs.size(), 9u);
  EXPECT_EQ(evs[0].kind, StaxEvent::kStartDocument);
  EXPECT_EQ(evs[1].kind, StaxEvent::kStartElement);
  EXPECT_EQ(evs[1].payload, "a");
  EXPECT_EQ(evs[2].kind, StaxEvent::kStartElement);
  EXPECT_EQ(evs[2].payload, "b");
  EXPECT_EQ(evs[3].kind, StaxEvent::kCharacters);
  EXPECT_EQ(evs[3].payload, "hi");
  EXPECT_EQ(evs[4].kind, StaxEvent::kEndElement);
  EXPECT_EQ(evs[4].payload, "b");
  EXPECT_EQ(evs[5].kind, StaxEvent::kStartElement);
  EXPECT_EQ(evs[5].payload, "c");
  EXPECT_EQ(evs[6].kind, StaxEvent::kEndElement);
  EXPECT_EQ(evs[6].payload, "c");
  EXPECT_EQ(evs[7].kind, StaxEvent::kEndElement);
  EXPECT_EQ(evs[7].payload, "a");
  EXPECT_EQ(evs[8].kind, StaxEvent::kEndDocument);
}

TEST(StaxTest, FullEventCount) {
  StaxReader r("<a><b/></a>");
  auto evs = Drain(&r);
  // StartDoc, a, b, /b, /a, EndDoc
  ASSERT_EQ(evs.size(), 6u);
  EXPECT_EQ(evs.back().kind, StaxEvent::kEndDocument);
}

TEST(StaxTest, SelfClosingEmitsStartAndEnd) {
  StaxReader r("<a/>");
  auto evs = Drain(&r);
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[1].kind, StaxEvent::kStartElement);
  EXPECT_EQ(evs[2].kind, StaxEvent::kEndElement);
  EXPECT_EQ(evs[2].payload, "a");
}

TEST(StaxTest, AttributesDecoded) {
  StaxReader r("<a k='1' m=\"x &lt; y\"/>");
  ASSERT_TRUE(r.Next().ok());   // StartDocument
  auto e = r.Next();
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(*e, StaxEvent::kStartElement);
  ASSERT_EQ(r.attrs().size(), 2u);
  EXPECT_EQ(r.attrs()[0].name, "k");
  EXPECT_EQ(r.attrs()[0].value, "1");
  EXPECT_EQ(r.attrs()[1].name, "m");
  EXPECT_EQ(r.attrs()[1].value, "x < y");
}

TEST(StaxTest, DepthTracksNesting) {
  StaxReader r("<a><b><c/></b></a>");
  ASSERT_TRUE(r.Next().ok());  // StartDocument
  ASSERT_TRUE(r.Next().ok());  // <a>
  EXPECT_EQ(r.depth(), 1);
  ASSERT_TRUE(r.Next().ok());  // <b>
  EXPECT_EQ(r.depth(), 2);
  ASSERT_TRUE(r.Next().ok());  // <c>
  EXPECT_EQ(r.depth(), 3);
  ASSERT_TRUE(r.Next().ok());  // </c>
  EXPECT_EQ(r.depth(), 2);
}

TEST(StaxTest, EndDocumentIsSticky) {
  StaxReader r("<a/>");
  (void)Drain(&r);
  auto e = r.Next();
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, StaxEvent::kEndDocument);
}

TEST(StaxTest, DoctypeCaptured) {
  StaxReader r("<!DOCTYPE root SYSTEM \"x.dtd\" [<!ELEMENT root EMPTY>]><root/>");
  ASSERT_TRUE(r.Next().ok());
  auto e = r.Next();
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(*e, StaxEvent::kStartElement);
  EXPECT_EQ(r.doctype_name(), "root");
  EXPECT_EQ(r.doctype_internal_subset(), "<!ELEMENT root EMPTY>");
}

TEST(StaxTest, WhitespaceTextSkippedByDefaultKeptOnRequest) {
  {
    StaxReader r("<a>  <b/>  </a>");
    auto evs = Drain(&r);
    ASSERT_EQ(evs.size(), 6u);  // no kCharacters events
  }
  {
    StaxOptions opts;
    opts.skip_whitespace_text = false;
    StaxReader r("<a>  <b/>  </a>", opts);
    auto evs = Drain(&r);
    ASSERT_EQ(evs.size(), 8u);
    EXPECT_EQ(evs[2].kind, StaxEvent::kCharacters);
  }
}

TEST(StaxTest, CdataAndTextCoalesce) {
  StaxReader r("<a>pre<![CDATA[ <raw> ]]>post</a>");
  ASSERT_TRUE(r.Next().ok());
  ASSERT_TRUE(r.Next().ok());
  auto e = r.Next();
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(*e, StaxEvent::kCharacters);
  EXPECT_EQ(r.text(), "pre <raw> post");
}

TEST(StaxTest, ErrorsSurfaceOnce) {
  StaxReader r("<a><b></c></a>");
  ASSERT_TRUE(r.Next().ok());
  ASSERT_TRUE(r.Next().ok());
  ASSERT_TRUE(r.Next().ok());
  auto e = r.Next();
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kParseError);
}

// --- malformed-input hardening (S1) ---

// Drives the reader to completion or error; returns the first error.
Status DrainToError(std::string_view doc) {
  StaxReader r(doc);
  while (true) {
    auto e = r.Next();
    if (!e.ok()) return e.status();
    if (*e == StaxEvent::kEndDocument) return Status::OK();
  }
}

TEST(StaxTest, MalformedInputIsCleanParseError) {
  const char* corpus[] = {
      "<a><![CDATA[never closed",
      "<a><!-- never closed",
      "<a><?pi never closed",
      "<?xml version='1.0'",
      "<!DOCTYPE a [<!ELEMENT a EMPTY>",
      "<a b='unterminated",
      "<a></a",
      "<a><b x/></a>",
      "<a>&#xFFFFFFFFFFFF;</a>",
      "<a>&#xD800;</a>",
      "<a>&#0;</a>",
  };
  for (const char* doc : corpus) {
    Status st = DrainToError(doc);
    ASSERT_FALSE(st.ok()) << "accepted malformed input: " << doc;
    EXPECT_EQ(st.code(), StatusCode::kParseError)
        << doc << " -> " << st.ToString();
  }
}

TEST(StaxTest, TruncationSweepFailsCleanly) {
  const std::string fixture =
      "<!DOCTYPE a [<!ELEMENT a (b)*>]><a x='1'><b><![CDATA[z]]></b></a>";
  for (size_t len = 0; len < fixture.size(); ++len) {
    Status st = DrainToError(std::string_view(fixture).substr(0, len));
    ASSERT_FALSE(st.ok()) << "prefix of length " << len << " accepted";
    EXPECT_EQ(st.code(), StatusCode::kParseError) << "len " << len;
  }
  EXPECT_TRUE(DrainToError(fixture).ok());
}

TEST(StaxTest, RejectsNulBytesInContent) {
  std::string text_nul = "<a>xy</a>";
  text_nul[4] = '\0';
  EXPECT_EQ(DrainToError(text_nul).code(), StatusCode::kParseError);
  std::string attr_nul = "<a v='x'/>";
  attr_nul[6] = '\0';
  EXPECT_EQ(DrainToError(attr_nul).code(), StatusCode::kParseError);
}

TEST(StaxTest, SurrogateAndControlRefsRejectedInAttrValues) {
  EXPECT_EQ(DrainToError("<a v='&#xDC00;'/>").code(),
            StatusCode::kParseError);
  EXPECT_EQ(DrainToError("<a v='&#2;'/>").code(), StatusCode::kParseError);
  // Tab/LF/CR refs remain legal in attribute values.
  EXPECT_TRUE(DrainToError("<a v='&#9;&#xA;&#xD;'/>").ok());
}

}  // namespace
}  // namespace smoqe::xml
