#include "src/rewrite/rewriter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/eval/hype_dom.h"
#include "src/rewrite/expr_rewriter.h"
#include "src/rxpath/naive_eval.h"
#include "src/rxpath/printer.h"
#include "src/view/derive.h"
#include "src/view/materialize.h"
#include "tests/test_util.h"

namespace smoqe::rewrite {
namespace {

using testutil::kHospitalDoc;
using testutil::kHospitalDtd;
using testutil::MustDoc;
using testutil::MustDtd;
using testutil::MustQuery;
using view::DeriveView;
using view::Materialize;
using view::Policy;
using view::ViewDefinition;

constexpr char kPolicyS0[] = R"(
  hospital/patient : [visit/treatment/medication = 'autism'];
  patient/pname    : N;
  patient/visit    : N;
  visit/treatment  : [medication];
  treatment/test   : N;
)";

ViewDefinition MustView(const xml::Dtd& dtd, std::string_view policy_text) {
  auto policy = Policy::Parse(dtd, policy_text);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  auto view = DeriveView(*policy);
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  return view.MoveValue();
}

/// Queries users may pose against the *view* schema (hospital → patient →
/// treatment|parent → …).
std::vector<const char*> ViewQueryCorpus() {
  return {
      "hospital",
      "hospital/patient",
      "hospital/patient/treatment",
      "hospital/patient/treatment/medication",
      "//patient",
      "//medication",
      "//treatment[medication]",
      "//patient[treatment]",
      "//patient[not(treatment)]",
      "//patient[treatment/medication = 'autism']",
      "hospital/patient/(parent/patient)*",
      "hospital/patient/(parent/patient)*/treatment",
      "//parent/patient",
      "hospital/*",
      "hospital/*/treatment | //parent",
      "//patient[parent/patient[treatment]]",
      "//medication[text() = 'autism']",
      "//patient[treatment and parent]",
      "hospital/patient[not(parent)]/treatment/medication",
      "//*",
      "//*[medication = 'flu']",
  };
}

/// Ground truth: evaluate Q on the materialized view, map answers back to
/// source-document node ids through provenance, dedupe.
std::vector<int32_t> ViewTruth(const ViewDefinition& view,
                               const xml::Document& doc,
                               const rxpath::PathExpr& q) {
  auto mat = Materialize(view, doc);
  EXPECT_TRUE(mat.ok()) << mat.status().ToString();
  rxpath::NaiveEvaluator ev(mat->document);
  std::set<int32_t> ids;
  for (const xml::Node* n : ev.Eval(q)) {
    ids.insert(mat->source_node_id[n->node_id]);
  }
  return {ids.begin(), ids.end()};
}

/// Rewritten query evaluated directly on the document with HyPE.
std::vector<int32_t> RewrittenAnswers(const ViewDefinition& view,
                                      const xml::Document& doc,
                                      const rxpath::PathExpr& q) {
  auto mfa = RewriteToMfa(q, view, doc.names());
  EXPECT_TRUE(mfa.ok()) << mfa.status().ToString();
  auto r = eval::EvalHypeDom(*mfa, doc);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::set<int32_t> ids;
  for (const xml::Node* n : r->answers) ids.insert(n->node_id);
  return {ids.begin(), ids.end()};
}

// =====================================================================
// Central correctness property (paper §1): Q′(T) = Q(V(T)).
// =====================================================================

class RewriteCorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RewriteCorpusTest, EquivalentToMaterializedEvaluation) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  xml::Document doc = MustDoc(kHospitalDoc);
  auto q = MustQuery(GetParam());
  EXPECT_EQ(RewrittenAnswers(view, doc, *q), ViewTruth(view, doc, *q))
      << "query: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ViewQueries, RewriteCorpusTest,
                         ::testing::ValuesIn(ViewQueryCorpus()));

TEST(RewriteTest, PropertyOverRandomDocs) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  for (uint64_t seed = 71; seed <= 78; ++seed) {
    xml::Document doc = testutil::GenHospital(seed, 300);
    for (const char* qs : ViewQueryCorpus()) {
      auto q = MustQuery(qs);
      EXPECT_EQ(RewrittenAnswers(view, doc, *q), ViewTruth(view, doc, *q))
          << "seed " << seed << " query: " << qs;
    }
  }
}

TEST(RewriteTest, IdentityViewIsTransparent) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  Policy policy(&dtd);
  auto view = DeriveView(policy);
  ASSERT_TRUE(view.ok());
  xml::Document doc = MustDoc(kHospitalDoc);
  for (const char* qs : testutil::HospitalQueryCorpus()) {
    auto q = MustQuery(qs);
    std::vector<int32_t> direct = testutil::NaiveIds(doc, *q);
    std::vector<int32_t> rewritten = RewrittenAnswers(*view, doc, *q);
    std::set<int32_t> direct_set(direct.begin(), direct.end());
    EXPECT_EQ(rewritten,
              (std::vector<int32_t>{direct_set.begin(), direct_set.end()}))
        << qs;
  }
}

// Security: queries through the view can never select hidden nodes.
TEST(RewriteTest, HiddenNodesUnreachable) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  for (uint64_t seed = 81; seed <= 84; ++seed) {
    xml::Document doc = testutil::GenHospital(seed, 400);
    xml::NameId pname = doc.names()->Lookup("pname");
    xml::NameId visit = doc.names()->Lookup("visit");
    xml::NameId test = doc.names()->Lookup("test");
    for (const char* qs :
         {"//*", "//pname", "//visit", "//test", "hospital//*",
          "//*[not(medication)]", "(hospital/*)*"}) {
      auto q = MustQuery(qs);
      auto mfa = RewriteToMfa(*q, view, doc.names());
      ASSERT_TRUE(mfa.ok());
      auto r = eval::EvalHypeDom(*mfa, doc);
      ASSERT_TRUE(r.ok());
      for (const xml::Node* n : r->answers) {
        EXPECT_NE(n->label, pname) << qs;
        EXPECT_NE(n->label, visit) << qs;
        EXPECT_NE(n->label, test) << qs;
      }
    }
  }
}

TEST(RewriteTest, MfaSizeLinearInQueryOverRecursiveView) {
  // The paper's headline: MFA representation of Q′ is linear in |Q| even
  // on a recursively defined view (expression form is exponential, E1).
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  auto names = xml::NameTable::Create();
  std::vector<size_t> sizes;
  std::string q = "hospital";
  for (int k = 0; k < 10; ++k) {
    q += "/patient/(parent/patient)*";
    auto query = MustQuery(q);
    auto mfa = RewriteToMfa(*query, view, names);
    ASSERT_TRUE(mfa.ok());
    sizes.push_back(mfa->TotalStates());
  }
  // Linear growth: constant additive increments.
  std::vector<size_t> deltas;
  for (size_t i = 1; i < sizes.size(); ++i) {
    deltas.push_back(sizes[i] - sizes[i - 1]);
  }
  for (size_t i = 1; i < deltas.size(); ++i) {
    EXPECT_EQ(deltas[i], deltas[i - 1]) << "growth must be exactly linear";
  }
}

TEST(RewriteTest, LabelsOutsideViewYieldEmpty) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  xml::Document doc = MustDoc(kHospitalDoc);
  for (const char* qs : {"//pname", "//visit", "hospital/visit",
                         "//nonexistent", "hospital/patient/pname"}) {
    auto q = MustQuery(qs);
    EXPECT_TRUE(RewrittenAnswers(view, doc, *q).empty()) << qs;
  }
}

// ---------------------------------------------------------------------
// Expression-level rewriting baseline
// ---------------------------------------------------------------------

TEST(ExprRewriteTest, AgreesWithMfaRewriting) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  ViewDefinition view = MustView(dtd, kPolicyS0);
  xml::Document doc = MustDoc(kHospitalDoc);
  for (const char* qs : ViewQueryCorpus()) {
    auto q = MustQuery(qs);
    ExprRewriteStats stats;
    auto expr = RewriteToExpr(*q, view, 1u << 20, &stats);
    ASSERT_TRUE(expr.ok()) << qs << ": " << expr.status().ToString();
    // Evaluate the expression on the document with the naive engine.
    rxpath::NaiveEvaluator ev(doc);
    std::set<int32_t> ids;
    for (const xml::Node* n : ev.Eval(**expr)) ids.insert(n->node_id);
    EXPECT_EQ((std::vector<int32_t>{ids.begin(), ids.end()}),
              RewrittenAnswers(view, doc, *q))
        << qs << " rewrote to " << rxpath::ToString(**expr);
  }
}

// The blow-up family (paper: "the size of Q′, if directly represented as
// Regular XPath expressions, may be exponential in |Q|"): a view whose
// type graph has a reconvergent diamond inside a cycle
// (region → north|south → zone → region…). A wildcard chain must union
// one continuation per *type path*; the diamond doubles them every lap,
// while the MFA shares one state per (position, type) and stays linear.
// (The hospital view's type graph has no reconvergence, so even the
// expression form stays linear there — see bench_rewrite for both.)
constexpr char kDiamondDtd[] = R"(
  <!ELEMENT site (region)>
  <!ELEMENT region (north | south)>
  <!ELEMENT north (zone)>
  <!ELEMENT south (zone)>
  <!ELEMENT zone (region?, sensor*)>
  <!ELEMENT sensor (#PCDATA)>
)";

std::string WildcardChain(int k) {
  std::string q = "site";
  for (int i = 0; i < k; ++i) q += "/*";
  return q;
}

ViewDefinition DiamondIdentityView(const xml::Dtd& dtd) {
  Policy policy(&dtd);
  auto view = DeriveView(policy);
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  return view.MoveValue();
}

TEST(ExprRewriteTest, SizeCapTriggersCleanly) {
  xml::Dtd dtd = MustDtd(kDiamondDtd, "site");
  ViewDefinition view = DiamondIdentityView(dtd);
  auto q = MustQuery(WildcardChain(60));
  ExprRewriteStats stats;
  auto expr = RewriteToExpr(*q, view, 2000, &stats);
  ASSERT_FALSE(expr.ok());
  EXPECT_EQ(expr.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(stats.truncated);
}

TEST(ExprRewriteTest, GrowthIsExponentialWhereMfaIsLinear) {
  xml::Dtd dtd = MustDtd(kDiamondDtd, "site");
  ViewDefinition view = DiamondIdentityView(dtd);
  auto names = xml::NameTable::Create();
  std::vector<size_t> expr_sizes;
  std::vector<size_t> mfa_sizes;
  for (int k = 8; k <= 24; k += 8) {
    auto q = MustQuery(WildcardChain(k));
    ExprRewriteStats stats;
    auto expr = RewriteToExpr(*q, view, 1u << 24, &stats);
    ASSERT_TRUE(expr.ok()) << expr.status().ToString();
    expr_sizes.push_back(stats.result_size);
    auto mfa = RewriteToMfa(*q, view, names);
    ASSERT_TRUE(mfa.ok());
    mfa_sizes.push_back(mfa->TotalStates());
  }
  // Expression deltas grow sharply; MFA deltas stay constant.
  size_t ed1 = expr_sizes[1] - expr_sizes[0];
  size_t ed2 = expr_sizes[2] - expr_sizes[1];
  EXPECT_GT(ed2, 2 * ed1);
  size_t md1 = mfa_sizes[1] - mfa_sizes[0];
  size_t md2 = mfa_sizes[2] - mfa_sizes[1];
  EXPECT_EQ(md2, md1);
}

}  // namespace
}  // namespace smoqe::rewrite
