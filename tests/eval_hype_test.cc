#include "src/eval/hype_dom.h"

#include <gtest/gtest.h>

#include "src/automata/mfa.h"
#include "tests/test_util.h"

namespace smoqe::eval {
namespace {

using automata::Mfa;
using testutil::HospitalQueryCorpus;
using testutil::IdsOf;
using testutil::kHospitalDoc;
using testutil::MustDoc;
using testutil::MustQuery;
using testutil::NaiveIds;

std::vector<int32_t> HypeIds(const xml::Document& doc, std::string_view q,
                             const index::TaxIndex* tax = nullptr) {
  auto query = MustQuery(q);
  auto mfa = Mfa::Compile(*query, doc.names());
  EXPECT_TRUE(mfa.ok()) << mfa.status().ToString();
  DomEvalOptions opts;
  opts.tax = tax;
  auto r = EvalHypeDom(*mfa, doc, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return IdsOf(r->answers);
}

// ---------------------------------------------------------------------
// Differential suite: HyPE(DOM) must agree with the reference evaluator
// on every corpus query over the hand-written hospital instance.
// ---------------------------------------------------------------------

class HypeCorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(HypeCorpusTest, MatchesNaiveOnHandWrittenDoc) {
  xml::Document doc = MustDoc(kHospitalDoc);
  auto query = MustQuery(GetParam());
  EXPECT_EQ(HypeIds(doc, GetParam()), NaiveIds(doc, *query))
      << "query: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, HypeCorpusTest,
                         ::testing::ValuesIn(testutil::HospitalQueryCorpus()));

// Property test: random generated hospital documents, every corpus query.
class HypeRandomDocTest : public ::testing::TestWithParam<int> {};

TEST_P(HypeRandomDocTest, MatchesNaiveOnGeneratedDocs) {
  xml::Document doc =
      testutil::GenHospital(static_cast<uint64_t>(GetParam()), 400);
  for (const char* q : HospitalQueryCorpus()) {
    auto query = MustQuery(q);
    EXPECT_EQ(HypeIds(doc, q), NaiveIds(doc, *query))
        << "seed " << GetParam() << " query: " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypeRandomDocTest, ::testing::Range(1, 13));

// ---------------------------------------------------------------------
// Targeted behaviours
// ---------------------------------------------------------------------

TEST(HypeTest, AttributePredicates) {
  xml::Document doc =
      MustDoc("<r><item id='a'/><item id='b' flag='1'/><item/></r>");
  EXPECT_EQ(HypeIds(doc, "r/item[@id]").size(), 2u);
  EXPECT_EQ(HypeIds(doc, "r/item[@id = 'b']").size(), 1u);
  EXPECT_EQ(HypeIds(doc, "r/item[not(@id)]").size(), 1u);
  EXPECT_EQ(HypeIds(doc, "r[item/@flag = '1']").size(), 1u);
  EXPECT_EQ(HypeIds(doc, "r/item[@missing]").size(), 0u);
}

TEST(HypeTest, AnswersAreDocOrderedAndUnique) {
  xml::Document doc = MustDoc(kHospitalDoc);
  auto ids = HypeIds(doc, "//patient | hospital/patient");
  for (size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
  EXPECT_EQ(ids.size(), 3u);
}

TEST(HypeTest, StatsReflectSinglePass) {
  xml::Document doc = MustDoc(kHospitalDoc);
  auto query = MustQuery("//patient[visit/treatment/medication = 'autism']");
  auto mfa = Mfa::Compile(*query, doc.names());
  ASSERT_TRUE(mfa.ok());
  auto r = EvalHypeDom(*mfa, doc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.tree_passes, 1u);
  EXPECT_EQ(r->stats.aux_passes, 1u);
  EXPECT_GT(r->stats.pred_instances, 0u);
  EXPECT_GT(r->stats.cans_entries, 0u);
  EXPECT_EQ(r->stats.answers, 1u);
}

TEST(HypeTest, DeadRunPruningSkipsSubtrees) {
  // Query touching only pname: visiting a visit subtree is unnecessary.
  xml::Document doc = MustDoc(kHospitalDoc);
  auto query = MustQuery("hospital/patient/pname");
  auto mfa = Mfa::Compile(*query, doc.names());
  ASSERT_TRUE(mfa.ok());
  auto r = EvalHypeDom(*mfa, doc);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.subtrees_pruned, 0u);
  EXPECT_GT(r->stats.nodes_pruned, 0u);
  // Visited + pruned accounts for part of the tree; visited < all elements.
  EXPECT_LT(r->stats.nodes_visited,
            static_cast<uint64_t>(doc.num_elements()));
}

TEST(HypeTest, MfaMustShareDocNameTable) {
  xml::Document doc = MustDoc("<a/>");
  auto query = MustQuery("a");
  auto mfa = Mfa::Compile(*query, xml::NameTable::Create());
  ASSERT_TRUE(mfa.ok());
  EXPECT_FALSE(EvalHypeDom(*mfa, doc).ok());
}

TEST(HypeTest, QueryLabelAbsentFromDocument) {
  xml::Document doc = MustDoc("<a><b/></a>");
  EXPECT_TRUE(HypeIds(doc, "a/zzz").empty());
  EXPECT_TRUE(HypeIds(doc, "zzz").empty());
  EXPECT_EQ(HypeIds(doc, "a[not(zzz)]").size(), 1u);
}

TEST(HypeTest, DeeplyNestedDocumentNoRecursionIssues) {
  // 5000-deep chain; the engine and driver are iterative.
  std::string open, close;
  for (int i = 0; i < 5000; ++i) {
    open += "<d>";
    close += "</d>";
  }
  xml::Document doc = MustDoc(open + "<leaf/>" + close);
  EXPECT_EQ(HypeIds(doc, "//leaf").size(), 1u);
}

TEST(HypeTest, TraceRecordsLifecycle) {
  xml::Document doc = MustDoc(kHospitalDoc);
  auto query = MustQuery("//patient[visit]/pname");
  auto mfa = Mfa::Compile(*query, doc.names());
  ASSERT_TRUE(mfa.ok());
  DomEvalOptions opts;
  opts.engine.trace = true;
  auto r = EvalHypeDom(*mfa, doc, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->trace, nullptr);
  bool saw_visit = false, saw_candidate = false, saw_answer = false,
       saw_resolve = false;
  for (const TraceEvent& e : r->trace->events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kVisit:
        saw_visit = true;
        break;
      case TraceEvent::Kind::kCandidate:
        saw_candidate = true;
        break;
      case TraceEvent::Kind::kAnswer:
        saw_answer = true;
        break;
      case TraceEvent::Kind::kInstanceResolve:
        saw_resolve = true;
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_visit && saw_candidate && saw_answer && saw_resolve);
  std::string tree = r->trace->RenderTree(doc, r->nodes_by_engine_id);
  EXPECT_NE(tree.find("A"), std::string::npos);
  EXPECT_NE(tree.find("hospital"), std::string::npos);
}

// Cans unit behaviour.
TEST(CansTest, DominanceAndSelection) {
  Cans cans;
  std::vector<PredInstance> insts(3);
  insts[0] = {0, 0, true, true, {}};
  insts[1] = {1, 0, true, false, {}};
  insts[2] = {2, 0, true, true, {}};

  cans.Add(5, {0, 1});   // false (inst 1 false)
  cans.Add(5, {0});      // true — dominates the previous alternative
  cans.Add(9, {1});      // false
  cans.Add(12, {});      // unconditional
  cans.Add(20, {2});     // true
  cans.Add(20, {1, 2});  // dominated, ignored

  auto sel = cans.Select(insts);
  EXPECT_EQ(sel, (std::vector<int32_t>{5, 12, 20}));
  EXPECT_EQ(cans.node_count(), 4u);
}

TEST(CansTest, UnsatisfiedGuardsDropNode) {
  Cans cans;
  std::vector<PredInstance> insts(1);
  insts[0] = {0, 0, true, false, {}};
  cans.Add(3, {0});
  EXPECT_TRUE(cans.Select(insts).empty());
}

}  // namespace
}  // namespace smoqe::eval
