// Server concurrency/soak suite (ISSUE PR8 S2, extends the
// concurrency_test epoch-differential pattern across the wire): N client
// threads of pipelined requests race a live writer pushing updates
// through the server, and every answer must match the sequential
// library answer *for the epoch the response reports* — a torn snapshot
// or a cross-connection buffer mixup would mismatch every reference.
// Runs under the TSan and ASan CI jobs (named-suite lists in ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/session.h"
#include "src/core/smoqe.h"
#include "src/server/client.h"
#include "src/server/test_server.h"
#include "tests/server_test_util.h"
#include "tests/test_util.h"

namespace smoqe::server {
namespace {

using testutil2::Mix;
using testutil2::ServerEngineOptions;
using testutil2::SetupHospitalEngine;

const char* const kRoles[] = {"", "autism-group", "research-group"};

// Reader query mix: small enough to precompute per epoch, varied enough
// to cover DOM, StAX and view rewriting.
const char* const kQueries[] = {
    "//pname",
    "//treatment",
    "hospital/patient/pname",
    "//patient[visit/treatment/medication = 'autism']/pname",
    "//visit/date",
    "//treatment/(test | medication)",
};
constexpr int kModes = 2;  // DOM, StAX

// Writer updates, all accepted under direct access, all on the ward.
std::vector<std::string> WriterUpdates() {
  std::vector<std::string> u;
  for (int i = 0; i < 4; ++i) {
    const std::string tag = std::to_string(i);
    u.push_back(
        "insert into hospital/patient[pname = 'Carol'] "
        "<visit><treatment><test>t" + tag +
        "</test></treatment><date>d" + tag + "</date></visit>");
    u.push_back("delete //treatment[medication = 'flu']");
    u.push_back(
        "replace //treatment[medication = 'headache'] with "
        "<treatment><medication>m" + tag + "</medication></treatment>");
  }
  return u;
}

struct RefAnswer {
  WireCode code = WireCode::kOk;
  std::string error;
  std::vector<std::string> answers;
};

size_t SlotOf(size_t role, size_t query, int mode) {
  return (role * (sizeof(kQueries) / sizeof(*kQueries)) + query) * kModes +
         static_cast<size_t>(mode);
}

TEST(ServerConcurrencyTest, PipelinedReadersRacingAWriterStayEpochConsistent) {
  // --- Reference: replay the whole update history sequentially on a
  // twin engine, capturing per-epoch library answers for the full
  // (role, query, mode) grid before any server traffic exists.
  core::Smoqe ref(ServerEngineOptions());
  SetupHospitalEngine(ref, /*gen_nodes=*/0);
  const std::vector<std::string> updates = WriterUpdates();

  constexpr size_t kNumRoles = sizeof(kRoles) / sizeof(*kRoles);
  constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(*kQueries);
  // epoch → answers for every grid slot.
  std::map<uint64_t, std::vector<RefAnswer>> by_epoch;
  std::vector<uint64_t> epochs;

  auto snapshot_epoch = [&] {
    auto ep = ref.DocumentEpoch("ward");
    ASSERT_TRUE(ep.ok());
    std::vector<RefAnswer> grid(kNumRoles * kNumQueries * kModes);
    for (size_t ri = 0; ri < kNumRoles; ++ri) {
      auto session = core::Session::Open(&ref, kRoles[ri]);
      ASSERT_TRUE(session.ok());
      for (size_t qi = 0; qi < kNumQueries; ++qi) {
        for (int mode = 0; mode < kModes; ++mode) {
          core::SessionQueryOptions so;
          so.mode = mode == 1 ? core::EvalMode::kStax : core::EvalMode::kDom;
          auto r = session->Query("ward", kQueries[qi], so);
          RefAnswer& slot = grid[SlotOf(ri, qi, mode)];
          if (r.ok()) {
            slot.answers = r->answers_xml;
            ASSERT_EQ(r->doc_epoch, *ep) << "reference epoch drifted";
          } else {
            slot.code = FromStatus(r.status().code());
            slot.error = r.status().message();
          }
        }
      }
    }
    by_epoch.emplace(*ep, std::move(grid));
    epochs.push_back(*ep);
  };

  snapshot_epoch();
  std::vector<uint64_t> update_epochs;
  for (const std::string& u : updates) {
    auto session = core::Session::Open(&ref, "");
    ASSERT_TRUE(session.ok());
    auto r = session->Update("ward", u);
    ASSERT_TRUE(r.ok()) << u << ": " << r.status().ToString();
    update_epochs.push_back(r->stats.doc_epoch);
    snapshot_epoch();
  }

  // --- The system under test: an identical engine behind a server.
  core::Smoqe served(ServerEngineOptions());
  SetupHospitalEngine(served, /*gen_nodes=*/0);
  TestServer server(&served);
  ASSERT_TRUE(server.ok()) << server.start_status().ToString();

  constexpr int kReaders = 4;
  constexpr int kWindows = 24;
  constexpr int kWindow = 6;  // pipelined requests per window
  std::atomic<int> mismatches{0};
  std::atomic<int> transport_errors{0};
  std::atomic<bool> writer_failed{false};
  std::atomic<uint64_t> min_epoch_seen{~0ull}, max_epoch_seen{0};

  std::vector<std::thread> threads;
  // Live writer: pushes the same updates through the wire, paced so
  // readers overlap several epochs.
  threads.emplace_back([&] {
    ClientOptions o;
    o.port = server.port();
    o.recv_timeout_ms = 30'000;
    auto client = Client::Connect(o);
    if (!client.ok()) {
      writer_failed.store(true);
      return;
    }
    for (size_t i = 0; i < updates.size(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      UpdateRequest u;
      u.doc = "ward";
      u.statement = updates[i];
      auto r = client->Update(u);
      if (!r.ok() || r->code != WireCode::kOk ||
          r->doc_epoch != update_epochs[i]) {
        writer_failed.store(true);
        return;
      }
    }
  });

  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      const size_t role_idx = static_cast<size_t>(t) % kNumRoles;
      ClientOptions o;
      o.port = server.port();
      o.role = kRoles[role_idx];
      o.recv_timeout_ms = 30'000;
      auto client = Client::Connect(o);
      if (!client.ok()) {
        transport_errors.fetch_add(1000);
        return;
      }
      for (int w = 0; w < kWindows; ++w) {
        // Pipeline a window of queries without reading between sends.
        std::string burst;
        std::vector<std::pair<uint64_t, size_t>> sent;  // id → grid slot
        for (int i = 0; i < kWindow; ++i) {
          const uint64_t r =
              Mix(static_cast<uint64_t>(t) * 1'000'003 + w * 131 + i);
          const size_t qi = r % kNumQueries;
          const int mode = static_cast<int>(Mix(r) % kModes);
          QueryRequest q;
          q.id = client->NextId();
          q.doc = "ward";
          q.query = kQueries[qi];
          q.mode = mode == 1 ? WireEvalMode::kStax : WireEvalMode::kDom;
          burst += Encode(q);
          sent.emplace_back(q.id, SlotOf(role_idx, qi, mode));
        }
        if (!client->SendBytes(burst).ok()) {
          transport_errors.fetch_add(1);
          return;
        }
        for (const auto& [id, slot] : sent) {
          auto frame = client->ReceiveFrame();
          if (!frame.ok() ||
              frame->opcode != static_cast<uint8_t>(Opcode::kQueryResult)) {
            transport_errors.fetch_add(1);
            return;
          }
          auto resp = DecodeQueryResponse(frame->body);
          if (!resp.ok() || resp->id != id) {
            transport_errors.fetch_add(1);
            return;
          }
          if (resp->code != WireCode::kOk) {
            // Errors are epoch-independent in this mix; compare against
            // any reference epoch's slot.
            const RefAnswer& e = by_epoch.begin()->second[slot];
            if (resp->code != e.code || resp->error != e.error) {
              mismatches.fetch_add(1);
            }
            continue;
          }
          auto it = by_epoch.find(resp->doc_epoch);
          if (it == by_epoch.end()) {
            mismatches.fetch_add(1);  // answered at an epoch that never existed
            continue;
          }
          if (resp->answers_xml != it->second[slot].answers) {
            mismatches.fetch_add(1);
          }
          uint64_t seen = min_epoch_seen.load();
          while (resp->doc_epoch < seen &&
                 !min_epoch_seen.compare_exchange_weak(seen, resp->doc_epoch)) {
          }
          seen = max_epoch_seen.load();
          while (resp->doc_epoch > seen &&
                 !max_epoch_seen.compare_exchange_weak(seen, resp->doc_epoch)) {
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(writer_failed.load());
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // The soak must actually have raced the writer: answers from more
  // than one epoch. (The writer paces at ~3ms/update; 4 readers × 24
  // windows comfortably straddle that.)
  EXPECT_GT(max_epoch_seen.load(), min_epoch_seen.load())
      << "readers never overlapped an update; soak was sequential";

  // Postcondition: both engines converged to the same document.
  auto se = served.DocumentEpoch("ward");
  auto re = ref.DocumentEpoch("ward");
  ASSERT_TRUE(se.ok() && re.ok());
  EXPECT_EQ(*se, *re);
  auto sx = served.DocumentXml("ward");
  auto rx = ref.DocumentXml("ward");
  ASSERT_TRUE(sx.ok() && rx.ok());
  EXPECT_EQ(*sx, *rx);
}

// Many short-lived concurrent connections: churn (connect, one request,
// disconnect) across threads must never cross responses between
// connections or leak sessions. A smoke against fd/session lifecycle
// races under TSan.
TEST(ServerConcurrencyTest, ConnectionChurnKeepsResponsesIsolated) {
  core::Smoqe served(ServerEngineOptions());
  SetupHospitalEngine(served, /*gen_nodes=*/0);
  TestServer server(&served);
  ASSERT_TRUE(server.ok());

  // Sequential references per role (static document).
  std::vector<std::vector<std::string>> expected;
  for (const char* role : kRoles) {
    auto session = core::Session::Open(&served, role);
    ASSERT_TRUE(session.ok());
    auto r = session->Query("ward", "//treatment");
    ASSERT_TRUE(r.ok());
    expected.push_back(r->answers_xml);
  }

  constexpr int kThreads = 6;
  constexpr int kIters = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const size_t role_idx =
            (static_cast<size_t>(t) + static_cast<size_t>(i)) % 3;
        ClientOptions o;
        o.port = server.port();
        o.role = kRoles[role_idx];
        o.recv_timeout_ms = 30'000;
        auto client = Client::Connect(o);
        if (!client.ok()) {
          failures.fetch_add(1);
          continue;
        }
        QueryRequest q;
        q.doc = "ward";
        q.query = "//treatment";
        auto r = client->Query(q);
        if (!r.ok() || r->code != WireCode::kOk ||
            r->answers_xml != expected[role_idx]) {
          failures.fetch_add(1);
        }
        // Half the threads vanish without closing politely.
        if ((t + i) % 2 == 0) client->ShutdownWrite();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace smoqe::server
