#ifndef SMOQE_TESTS_SERVER_TEST_UTIL_H_
#define SMOQE_TESTS_SERVER_TEST_UTIL_H_

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "src/core/smoqe.h"
#include "src/server/protocol.h"
#include "src/workload/workloads.h"
#include "tests/test_util.h"

namespace smoqe::server::testutil2 {

/// Identical catalog on every engine the server suites compare: the
/// hand-written ward, a generated document, and the two workload views.
/// Twin engines built by calling this twice are byte-for-byte equivalent,
/// which is what makes "server response ≡ library answer" checkable.
inline void SetupHospitalEngine(core::Smoqe& engine,
                                size_t gen_nodes = 4000) {
  ASSERT_TRUE(
      engine.RegisterDtd("hospital", smoqe::testutil::kHospitalDtd, "hospital")
          .ok());
  ASSERT_TRUE(engine.LoadDocument("ward", smoqe::testutil::kHospitalDoc).ok());
  ASSERT_TRUE(engine
                  .DefineView("autism-group", "hospital",
                              workload::kHospitalPolicyAutism)
                  .ok());
  ASSERT_TRUE(engine
                  .DefineView("research-group", "hospital",
                              workload::kHospitalPolicyResearch)
                  .ok());
  if (gen_nodes > 0) {
    ASSERT_TRUE(
        engine.GenerateDocument("gen", "hospital", /*seed=*/7, gen_nodes)
            .ok());
  }
}

inline core::EngineOptions ServerEngineOptions() {
  core::EngineOptions o;
  o.max_threads = 4;
  return o;
}

/// Deterministic splitmix64-style mixer shared by the randomized
/// differential and the frame fuzzer (same idiom as parser_fuzz_test).
inline uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// A bare TCP connection speaking raw bytes — no handshake help, no
/// protocol discipline. The tool for testing what the server does to
/// clients that break the rules (pre-handshake requests, bad versions,
/// mutated frames, truncation, mid-request disconnects).
class RawConn {
 public:
  RawConn() = default;
  ~RawConn() { Close(); }
  RawConn(RawConn&& o) noexcept : fd_(o.fd_), frames_(std::move(o.frames_)) {
    o.fd_ = -1;
  }
  RawConn& operator=(RawConn&& o) noexcept {
    if (this != &o) {
      Close();
      fd_ = o.fd_;
      o.fd_ = -1;
      frames_ = std::move(o.frames_);
    }
    return *this;
  }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  bool Dial(uint16_t port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      Close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    frames_ = FrameExtractor(kDefaultMaxResponseFrame);
    return true;
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  /// Outcome of one bounded receive attempt.
  enum class RecvResult { kFrame, kClosed, kTimeout };

  /// Waits up to `timeout_ms` for one complete frame. kClosed = server
  /// closed the connection (a legal response to fatal protocol errors);
  /// kTimeout = nothing arrived — the caller decides if that's a hang.
  RecvResult Recv(RawFrame* out, int timeout_ms) {
    for (;;) {
      if (auto f = frames_.Next()) {
        *out = std::move(*f);
        return RecvResult::kFrame;
      }
      if (frames_.overflow() || fd_ < 0) return RecvResult::kClosed;
      pollfd p{fd_, POLLIN, 0};
      const int pr = ::poll(&p, 1, timeout_ms);
      if (pr == 0) return RecvResult::kTimeout;
      if (pr < 0) {
        if (errno == EINTR) continue;
        return RecvResult::kClosed;
      }
      char buf[65536];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n > 0) {
        frames_.Append(std::string_view(buf, static_cast<size_t>(n)));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return RecvResult::kClosed;
    }
  }

  void CloseWrite() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  FrameExtractor frames_{kDefaultMaxResponseFrame};
};

/// Performs a well-formed handshake on a RawConn; returns false unless
/// the server answered kOk within the timeout.
inline bool RawHandshake(RawConn& conn, const std::string& role) {
  HelloRequest hello;
  hello.id = 0;
  hello.role = role;
  if (!conn.Send(Encode(hello))) return false;
  RawFrame frame;
  if (conn.Recv(&frame, 5000) != RawConn::RecvResult::kFrame) return false;
  if (frame.opcode != static_cast<uint8_t>(Opcode::kHelloOk)) return false;
  auto resp = DecodeHelloResponse(frame.body);
  return resp.ok() && resp->code == WireCode::kOk;
}

}  // namespace smoqe::server::testutil2

#endif  // SMOQE_TESTS_SERVER_TEST_UTIL_H_
