#include "src/core/smoqe.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "src/workload/workloads.h"
#include "tests/test_util.h"

namespace smoqe::core {
namespace {

using testutil::kHospitalDoc;

class SmoqeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.RegisterDtd("hospital", workload::kHospitalDtd,
                                    "hospital")
                    .ok());
    ASSERT_TRUE(engine_.LoadDocument("ward", kHospitalDoc).ok());
    ASSERT_TRUE(engine_
                    .DefineView("autism-group", "hospital",
                                workload::kHospitalPolicyAutism)
                    .ok());
    ASSERT_TRUE(engine_
                    .DefineView("research-group", "hospital",
                                workload::kHospitalPolicyResearch)
                    .ok());
  }

  Smoqe engine_;
};

TEST_F(SmoqeTest, DirectQuery) {
  auto r = engine_.Query("ward", "hospital/patient/pname");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->answers_xml.size(), 2u);
  EXPECT_EQ(r->answers_xml[0], "<pname>Alice</pname>");
  EXPECT_EQ(r->answers_xml[1], "<pname>Carol</pname>");
  EXPECT_EQ(r->stats.answers, 2u);
}

TEST_F(SmoqeTest, ViewQueryIsAccessControlled) {
  QueryOptions opts;
  opts.view = "autism-group";
  // The view exposes treatments of autism patients only; names are gone.
  auto names = engine_.Query("ward", "//pname", opts);
  ASSERT_TRUE(names.ok()) << names.status().ToString();
  EXPECT_TRUE(names->answers_xml.empty());

  auto meds = engine_.Query("ward", "hospital/patient/treatment/medication",
                            opts);
  ASSERT_TRUE(meds.ok());
  ASSERT_EQ(meds->answers_xml.size(), 1u);
  EXPECT_EQ(meds->answers_xml[0], "<medication>autism</medication>");

  // Direct query (trusted) still sees everything.
  auto direct = engine_.Query("ward", "//pname");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->answers_xml.size(), 3u);
}

TEST_F(SmoqeTest, TwoUserGroupsSeeDifferentData) {
  QueryOptions autism;
  autism.view = "autism-group";
  QueryOptions research;
  research.view = "research-group";

  // Researchers see tests; the autism group does not.
  auto r1 = engine_.Query("ward", "//test", research);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->answers_xml.size(), 1u);
  auto r2 = engine_.Query("ward", "//test", autism);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->answers_xml.empty());

  // Researchers see every patient's treatments, not just autism ones.
  auto r3 = engine_.Query("ward", "//treatment", research);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->answers_xml.size(), 3u);
}

TEST_F(SmoqeTest, StaxModeAgreesWithDomMode) {
  for (const char* q : {"//patient", "//medication",
                        "hospital/patient[visit]/pname"}) {
    auto dom = engine_.Query("ward", q);
    ASSERT_TRUE(dom.ok());
    QueryOptions opts;
    opts.mode = EvalMode::kStax;
    auto stax = engine_.Query("ward", q, opts);
    ASSERT_TRUE(stax.ok()) << stax.status().ToString();
    EXPECT_EQ(stax->answers_xml, dom->answers_xml) << q;
  }
}

TEST_F(SmoqeTest, StaxModeThroughView) {
  QueryOptions opts;
  opts.view = "autism-group";
  opts.mode = EvalMode::kStax;
  auto r = engine_.Query("ward", "hospital/patient/treatment/medication",
                         opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->answers_xml.size(), 1u);
  EXPECT_EQ(r->answers_xml[0], "<medication>autism</medication>");
}

TEST_F(SmoqeTest, TaxIndexLifecycle) {
  // Querying with TAX before building fails cleanly.
  QueryOptions opts;
  opts.use_tax = true;
  auto r = engine_.Query("ward", "//medication", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(engine_.BuildIndex("ward").ok());
  auto with = engine_.Query("ward", "//medication", opts);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  auto without = engine_.Query("ward", "//medication");
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->answers_xml, without->answers_xml);

  // Save / load round-trip.
  std::string path = ::testing::TempDir() + "/smoqe_core_tax.idx";
  ASSERT_TRUE(engine_.SaveIndex("ward", path).ok());
  ASSERT_TRUE(engine_.LoadIndex("ward", path).ok());
  auto again = engine_.Query("ward", "//medication", opts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->answers_xml, without->answers_xml);
  std::remove(path.c_str());

  // TAX in StAX mode is rejected.
  QueryOptions bad;
  bad.use_tax = true;
  bad.mode = EvalMode::kStax;
  EXPECT_FALSE(engine_.Query("ward", "//medication", bad).ok());
}

TEST_F(SmoqeTest, ExplainProducesMfaAndTrace) {
  QueryOptions opts;
  opts.explain = true;
  auto r = engine_.Query("ward", "//patient[visit]/pname", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->mfa_dump.find("selection NFA"), std::string::npos);
  EXPECT_NE(r->trace_tree.find("hospital"), std::string::npos);
  // Answers are marked in the tree rendering.
  EXPECT_NE(r->trace_tree.find("A"), std::string::npos);
}

TEST_F(SmoqeTest, ViewSchemaExposedToUsers) {
  auto schema = engine_.ViewSchema("autism-group");
  ASSERT_TRUE(schema.ok());
  EXPECT_NE(schema->find("<!ELEMENT hospital (patient*)>"),
            std::string::npos);
  EXPECT_EQ(schema->find("pname"), std::string::npos);
  auto spec = engine_.ViewSpecification("autism-group");
  ASSERT_TRUE(spec.ok());
  EXPECT_NE(spec->find("sigma(patient, treatment)"), std::string::npos);
}

TEST_F(SmoqeTest, GeneratedDocumentsQueryable) {
  ASSERT_TRUE(engine_.GenerateDocument("synth", "hospital", 9, 500).ok());
  auto r = engine_.Query("synth", "//patient");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->answers_xml.size(), 0u);
  // View queries work on generated docs too.
  QueryOptions opts;
  opts.view = "autism-group";
  EXPECT_TRUE(engine_.Query("synth", "//treatment", opts).ok());
}

TEST_F(SmoqeTest, ErrorPaths) {
  EXPECT_EQ(engine_.Query("nodoc", "a").status().code(),
            StatusCode::kNotFound);
  QueryOptions opts;
  opts.view = "noview";
  EXPECT_EQ(engine_.Query("ward", "a", opts).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.Query("ward", "a[[").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(engine_.LoadDocument("ward", "<x/>").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine_.DefineView("v", "nodtd", "a/b : N;").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.BuildIndex("nodoc").code(), StatusCode::kNotFound);
  EXPECT_FALSE(engine_.ViewSchema("nope").ok());
  EXPECT_FALSE(engine_.LoadDocument("bad", "<a><b></a>").ok());
}

TEST_F(SmoqeTest, HandWrittenViewSpecification) {
  // The paper's other view-definition mode: register a view written
  // directly as view DTD + sigma, type-checked against the document DTD.
  Status st = engine_.DefineViewFromSpec("spec-group", R"(
    root hospital;
    dtd {
      <!ELEMENT hospital (patient*)>
      <!ELEMENT patient (medication*)>
      <!ELEMENT medication (#PCDATA)>
    }
    sigma hospital/patient = patient;
    sigma patient/medication = visit/treatment/medication;
  )", "hospital");
  ASSERT_TRUE(st.ok()) << st.ToString();
  core::QueryOptions opts;
  opts.view = "spec-group";
  auto r = engine_.Query("ward", "//medication", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->answers_xml.size(), 2u);  // autism + headache
  // Type checking rejects a spec that produces the wrong element type.
  Status bad = engine_.DefineViewFromSpec("bad-group", R"(
    root hospital;
    dtd {
      <!ELEMENT hospital (patient*)>
      <!ELEMENT patient EMPTY>
    }
    sigma hospital/patient = patient/visit;
  )", "hospital");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST_F(SmoqeTest, UnknownLabelsReportedForViewQueries) {
  QueryOptions opts;
  opts.view = "autism-group";
  // 'pname' is not part of the autism view's schema.
  auto r = engine_.Query("ward", "//pname", opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->unknown_labels.size(), 1u);
  EXPECT_EQ(r->unknown_labels[0], "pname");
  // Labels inside the view schema are not flagged.
  auto ok = engine_.Query("ward", "//treatment", opts);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->unknown_labels.empty());
}

TEST_F(SmoqeTest, DoctypeRegistersDtd) {
  Smoqe fresh;
  ASSERT_TRUE(
      fresh
          .LoadDocument("d",
                        "<!DOCTYPE r [<!ELEMENT r (x*)> <!ELEMENT x EMPTY>]>"
                        "<r><x/></r>")
          .ok());
  // The captured internal subset acts as DTD "d": define a view over it.
  ASSERT_TRUE(fresh.DefineView("g", "d", "r/x : N;").ok());
  QueryOptions opts;
  opts.view = "g";
  auto r = fresh.Query("d", "//x", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers_xml.empty());
}

TEST_F(SmoqeTest, CatalogListings) {
  EXPECT_EQ(engine_.DocumentNames(), (std::vector<std::string>{"ward"}));
  std::vector<std::string> view_names = engine_.ViewNames();
  std::set<std::string> views(view_names.begin(), view_names.end());
  EXPECT_TRUE(views.count("autism-group") == 1 &&
              views.count("research-group") == 1);
}

}  // namespace
}  // namespace smoqe::core
