// Randomized equivalence suite for the hot-path optimizations (E10's
// correctness side): for every random query, HypeEngine must return the
// same answers under every combination of {label_dispatch, guard_interning,
// hashed_run_dedup}, and they must all agree with the reference naive
// evaluator. Covers the hospital and org workloads, plus the
// deep-genealogy hospital variant so frames exceed the hashed-dedup
// threshold and AddRunHashed/SeedRunIndex actually execute.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/automata/mfa.h"
#include "src/eval/hype_dom.h"
#include "src/rxpath/printer.h"
#include "src/rxpath/random_query.h"
#include "src/workload/workloads.h"
#include "tests/test_util.h"

namespace smoqe::eval {
namespace {

rxpath::RandomQueryOptions HospitalQueryOptions() {
  rxpath::RandomQueryOptions opts;
  opts.labels = {"hospital", "patient", "pname",      "visit",
                 "treatment", "test",   "medication", "parent",
                 "date"};
  opts.values = {"autism", "headache", "Alice", "blood", "2006-01-02"};
  opts.max_depth = 5;
  opts.pred_p = 0.35;
  return opts;
}

rxpath::RandomQueryOptions OrgQueryOptions() {
  rxpath::RandomQueryOptions opts;
  opts.labels = {"company", "division", "group",  "employee", "dname",
                 "gname",   "ename",    "salary", "review"};
  opts.values = {"50000", "ada", "r&d", "core", "exceeds"};
  opts.max_depth = 5;
  opts.pred_p = 0.35;
  return opts;
}

/// Evaluates `mfa` under every combination of the three hot-path flags and
/// asserts every answer set equals `want`.
void ExpectAllConfigsAgree(const automata::Mfa& mfa, const xml::Document& doc,
                           const std::vector<int32_t>& want) {
  for (int mask = 0; mask < 8; ++mask) {
    DomEvalOptions opts;
    opts.engine.label_dispatch = (mask & 1) != 0;
    opts.engine.guard_interning = (mask & 2) != 0;
    opts.engine.hashed_run_dedup = (mask & 4) != 0;
    auto r = EvalHypeDom(mfa, doc, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(testutil::IdsOf(r->answers), want)
        << "dispatch=" << opts.engine.label_dispatch
        << " interning=" << opts.engine.guard_interning
        << " hashdedup=" << opts.engine.hashed_run_dedup;
  }
}

void RunSuite(const xml::Document& doc, const rxpath::RandomQueryOptions& qopts,
              uint64_t seed_base, int num_queries) {
  rxpath::NaiveEvaluator naive(doc);
  for (int i = 0; i < num_queries; ++i) {
    std::unique_ptr<rxpath::PathExpr> query =
        rxpath::RandomQuery(seed_base + static_cast<uint64_t>(i), qopts);
    SCOPED_TRACE("seed " + std::to_string(seed_base + i) + " query " +
                 rxpath::ToString(*query));
    std::vector<int32_t> want;
    for (const xml::Node* n : naive.Eval(*query)) want.push_back(n->node_id);

    auto mfa = automata::Mfa::Compile(*query, doc.names());
    ASSERT_TRUE(mfa.ok());
    ExpectAllConfigsAgree(*mfa, doc, want);
  }
}

// ≥200 random queries total across the three suites below (the issue's
// equivalence bar); each one checks 8 engine configurations vs naive.

TEST(HotPathEquivTest, HospitalRandomQueries) {
  auto names = xml::NameTable::Create();
  xml::Document doc = testutil::GenHospital(4242, 1200, names);
  RunSuite(doc, HospitalQueryOptions(), /*seed_base=*/9000, /*num_queries=*/80);
}

TEST(HotPathEquivTest, HospitalDeepRandomQueries) {
  auto names = xml::NameTable::Create();
  auto doc = workload::GenHospitalDeep(4242, 2500, names);
  ASSERT_TRUE(doc.ok());
  RunSuite(*doc, HospitalQueryOptions(), /*seed_base=*/10000,
           /*num_queries=*/60);
}

TEST(HotPathEquivTest, OrgRandomQueries) {
  auto names = xml::NameTable::Create();
  auto doc = workload::GenOrg(777, 1200, names);
  ASSERT_TRUE(doc.ok());
  RunSuite(*doc, OrgQueryOptions(), /*seed_base=*/11000, /*num_queries=*/80);
}

// The curated benchmark queries — including the descendant-predicate pair
// whose wide frames drive the trajectory numbers — on the deep document.
TEST(HotPathEquivTest, BenchQueriesOnDeepHospital) {
  auto names = xml::NameTable::Create();
  auto doc = workload::GenHospitalDeep(1234, 4000, names);
  ASSERT_TRUE(doc.ok());
  rxpath::NaiveEvaluator naive(*doc);
  for (const auto& bq : workload::HospitalQueries()) {
    auto query = rxpath::ParseQuery(bq.text);
    ASSERT_TRUE(query.ok()) << bq.text;
    SCOPED_TRACE(std::string(bq.id) + ": " + bq.text);
    std::vector<int32_t> want;
    for (const xml::Node* n : naive.Eval(**query)) want.push_back(n->node_id);
    auto mfa = automata::Mfa::Compile(**query, names);
    ASSERT_TRUE(mfa.ok());
    ExpectAllConfigsAgree(*mfa, *doc, want);
  }
}

// The deep document must actually reach the wide-frame regime, or the
// suite above silently stops covering the hashed path.
TEST(HotPathEquivTest, DeepHospitalExercisesHashedDedup) {
  auto names = xml::NameTable::Create();
  auto doc = workload::GenHospitalDeep(1234, 4000, names);
  ASSERT_TRUE(doc.ok());
  auto query = rxpath::ParseQuery("//patient[.//medication = 'autism']/pname");
  ASSERT_TRUE(query.ok());
  auto mfa = automata::Mfa::Compile(**query, names);
  ASSERT_TRUE(mfa.ok());
  auto r = EvalHypeDom(*mfa, *doc);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.max_active_pairs, 16u);  // above kRunIndexThreshold
  EXPECT_GT(r->stats.run_dedup_probes, 0u);
}

}  // namespace
}  // namespace smoqe::eval
