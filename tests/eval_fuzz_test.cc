// Fuzz-style differential suite: random Regular XPath queries over random
// hospital documents; every engine must agree with the reference
// evaluator — naive ≡ HyPE(DOM) ≡ HyPE(DOM+TAX) ≡ HyPE(StAX) ≡ TwoPass.

#include <gtest/gtest.h>

#include <set>

#include "src/automata/mfa.h"
#include "src/eval/hype_dom.h"
#include "src/eval/hype_stax.h"
#include "src/eval/two_pass.h"
#include "src/index/tax.h"
#include "src/rxpath/printer.h"
#include "src/rxpath/random_query.h"
#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace smoqe::eval {
namespace {

rxpath::RandomQueryOptions HospitalQueryOptions() {
  rxpath::RandomQueryOptions opts;
  opts.labels = {"hospital", "patient", "pname",  "visit",
                 "treatment", "test",   "medication", "parent", "date"};
  opts.values = {"autism", "headache", "Alice", "blood", "2006-01-02"};
  opts.max_depth = 5;
  opts.pred_p = 0.35;
  return opts;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, AllEnginesAgreeOnRandomQueries) {
  const uint64_t doc_seed = 1000 + static_cast<uint64_t>(GetParam());
  auto names = xml::NameTable::Create();
  xml::Document doc = testutil::GenHospital(doc_seed, 250, names);
  std::string text = xml::SerializeDocument(doc);
  index::TaxIndex tax = index::TaxIndex::Build(doc);
  rxpath::RandomQueryOptions qopts = HospitalQueryOptions();

  rxpath::NaiveEvaluator naive(doc);
  for (uint64_t qseed = 0; qseed < 40; ++qseed) {
    std::unique_ptr<rxpath::PathExpr> query =
        rxpath::RandomQuery(doc_seed * 100 + qseed, qopts);
    SCOPED_TRACE("doc seed " + std::to_string(doc_seed) + " query " +
                 rxpath::ToString(*query));

    std::vector<int32_t> want;
    for (const xml::Node* n : naive.Eval(*query)) want.push_back(n->node_id);

    auto mfa = automata::Mfa::Compile(*query, names);
    ASSERT_TRUE(mfa.ok());

    auto dom = EvalHypeDom(*mfa, doc);
    ASSERT_TRUE(dom.ok());
    EXPECT_EQ(testutil::IdsOf(dom->answers), want) << "HyPE DOM";

    DomEvalOptions with_tax;
    with_tax.tax = &tax;
    auto taxed = EvalHypeDom(*mfa, doc, with_tax);
    ASSERT_TRUE(taxed.ok());
    EXPECT_EQ(testutil::IdsOf(taxed->answers), want) << "HyPE DOM+TAX";

    auto stax = EvalHypeStax(*mfa, text);
    ASSERT_TRUE(stax.ok());
    EXPECT_EQ(stax->answers.size(), want.size()) << "HyPE StAX";

    auto two = EvalTwoPass(*mfa, doc);
    ASSERT_TRUE(two.ok());
    EXPECT_EQ(testutil::IdsOf(two->answers), want) << "TwoPass";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 10));

TEST(FuzzDeterminismTest, SameSeedSameQuery) {
  rxpath::RandomQueryOptions opts = HospitalQueryOptions();
  for (uint64_t seed = 0; seed < 50; ++seed) {
    auto a = rxpath::RandomQuery(seed, opts);
    auto b = rxpath::RandomQuery(seed, opts);
    EXPECT_TRUE(a->Equals(*b));
  }
}

TEST(FuzzDeterminismTest, QueriesRoundTripThroughPrinter) {
  rxpath::RandomQueryOptions opts = HospitalQueryOptions();
  for (uint64_t seed = 0; seed < 200; ++seed) {
    auto q = rxpath::RandomQuery(seed, opts);
    std::string printed = rxpath::ToString(*q);
    auto back = rxpath::ParseQuery(printed);
    ASSERT_TRUE(back.ok()) << printed;
    EXPECT_TRUE((*back)->Equals(*q)) << printed;
  }
}

// Ablations must never change answers, only work (E9's correctness side).
TEST(AblationTest, PruningFlagsPreserveAnswers) {
  auto names = xml::NameTable::Create();
  xml::Document doc = testutil::GenHospital(77, 300, names);
  rxpath::RandomQueryOptions qopts = HospitalQueryOptions();
  for (uint64_t qseed = 500; qseed < 530; ++qseed) {
    auto query = rxpath::RandomQuery(qseed, qopts);
    auto mfa = automata::Mfa::Compile(*query, names);
    ASSERT_TRUE(mfa.ok());
    auto full = EvalHypeDom(*mfa, doc);
    ASSERT_TRUE(full.ok());
    for (bool dead_run : {false, true}) {
      for (bool dominance : {false, true}) {
        DomEvalOptions opts;
        opts.engine.dead_run_pruning = dead_run;
        opts.engine.guard_dominance = dominance;
        auto r = EvalHypeDom(*mfa, doc, opts);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(testutil::IdsOf(r->answers), testutil::IdsOf(full->answers))
            << "dead_run=" << dead_run << " dominance=" << dominance
            << " query " << rxpath::ToString(*query);
        // Disabled pruning can only visit more.
        EXPECT_GE(r->stats.nodes_visited, full->stats.nodes_visited);
      }
    }
  }
}

}  // namespace
}  // namespace smoqe::eval
