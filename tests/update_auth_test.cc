// View-checked update authorization through the Smoqe facade:
// accept/reject semantics with explain strings naming the violated
// annotation, trusted direct updates, epoch-based invalidation of
// text/materialization caches, and retention of provably unaffected
// materializations.

#include <gtest/gtest.h>

#include "src/core/smoqe.h"
#include "src/workload/workloads.h"
#include "tests/test_util.h"

namespace smoqe::core {
namespace {

constexpr char kWard[] =
    "<hospital>"
    "<patient>"
    "<pname>Alice</pname>"
    "<visit><treatment><medication>autism</medication></treatment>"
    "<date>d1</date></visit>"
    "<parent><patient>"
    "<pname>Bob</pname>"
    "<visit><treatment><test>blood</test></treatment><date>d2</date></visit>"
    "</patient></parent>"
    "</patient>"
    "<patient>"
    "<pname>Carol</pname>"
    "<visit><treatment><medication>headache</medication></treatment>"
    "<date>d3</date></visit>"
    "</patient>"
    "</hospital>";

/// Research group: qualifier-free. pname and visit structure hidden,
/// treatments (and tests) surface through the hidden visits.
constexpr char kResearchPolicy[] = R"(
  patient/pname   : N;
  patient/visit   : N;
  visit/treatment : Y;
  treatment/test  : Y;
)";

class UpdateAuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.RegisterDtd("hospital", workload::kHospitalDtd,
                                    "hospital")
                    .ok());
    ASSERT_TRUE(engine_.LoadDocument("ward", kWard).ok());
    ASSERT_TRUE(
        engine_.DefineView("research", "hospital", kResearchPolicy).ok());
    ASSERT_TRUE(engine_
                    .DefineView("autism-group", "hospital",
                                workload::kHospitalPolicyAutism)
                    .ok());
  }

  size_t CountAnswers(const char* query, const QueryOptions& opts = {}) {
    auto r = engine_.Query("ward", query, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->answers_xml.size();
  }

  Smoqe engine_;
};

TEST_F(UpdateAuthTest, DirectUpdateIsTrustedAndRefreshesAllModes) {
  UpdateOptions direct;
  direct.dtd_name = "hospital";
  auto r = engine_.Update("ward", "delete hospital/patient[pname = 'Carol']",
                          direct);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.targets, 1u);
  EXPECT_EQ(r->stats.doc_epoch, 1u);
  EXPECT_EQ(r->canonical, "delete hospital/patient[pname = 'Carol']");

  EXPECT_EQ(CountAnswers("//patient"), 2u);  // DOM mode sees the delete
  QueryOptions stax;
  stax.mode = EvalMode::kStax;
  EXPECT_EQ(CountAnswers("//patient", stax), 2u);  // text re-serialized
  std::vector<BatchQueryItem> items = {{"//patient", stax},
                                       {"//pname", stax}};
  auto batch = engine_.QueryBatch("ward", items);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ((*batch)[0].answers_xml.size(), 2u);
  EXPECT_EQ((*batch)[1].answers_xml.size(), 2u);  // Alice + Bob
}

TEST_F(UpdateAuthTest, HiddenRegionDeleteIsRejectedWithExplain) {
  // A research-view user may see every treatment, but deleting a patient
  // would also remove its hidden pname/visit content: rejected whole.
  UpdateOptions opts;
  opts.view = "research";
  const std::string before = *engine_.DocumentXml("ward");
  auto r = engine_.Update("ward", "delete hospital/patient", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
  // The explain string names the violated annotation (which hidden node
  // the walk hits first is an implementation detail: pname or visit).
  EXPECT_NE(r.status().message().find("hidden by annotation 'patient/"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find(" : N'"), std::string::npos)
      << r.status().ToString();
  // Rejected updates change nothing.
  EXPECT_EQ(*engine_.DocumentXml("ward"), before);
  EXPECT_EQ(*engine_.DocumentEpoch("ward"), 0u);
}

TEST_F(UpdateAuthTest, ConditionProtectedTargetIsRejected) {
  // Every patient of the autism view is exposed through the qualifier
  // [visit/treatment/medication = 'autism']; updates under it are unsafe.
  UpdateOptions opts;
  opts.view = "autism-group";
  auto r = engine_.Update("ward", "delete hospital/patient", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(r.status().message().find("condition-protected"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("hospital/patient : ["),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(UpdateAuthTest, InsertCreatingHiddenContentIsRejected) {
  // visit children of patient are hidden from research: writing one would
  // create data the writer cannot read back.
  UpdateOptions opts;
  opts.view = "research";
  auto r = engine_.Update(
      "ward",
      "insert into hospital/patient "
      "<visit><treatment><test>x</test></treatment><date>d9</date></visit>",
      opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(r.status().message().find("patient/visit : N"), std::string::npos)
      << r.status().ToString();
}

TEST_F(UpdateAuthTest, VisibleRegionReplaceIsAccepted) {
  // The whole effect region — the treatment subtree and the replacement —
  // is unconditionally visible to research users, so the update applies.
  UpdateOptions opts;
  opts.view = "research";
  auto r = engine_.Update(
      "ward",
      "replace //treatment[medication = 'headache'] "
      "with <treatment><test>mri</test></treatment>",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.targets, 1u);
  EXPECT_EQ(r->stats.edits_applied, 1u);
  EXPECT_EQ(*engine_.DocumentEpoch("ward"), 1u);
  EXPECT_EQ(CountAnswers("//test"), 2u);  // blood + mri
  // The research user sees the effect through the view too.
  QueryOptions vq;
  vq.view = "research";
  EXPECT_EQ(CountAnswers("//treatment/test", vq), 2u);
}

TEST_F(UpdateAuthTest, ViewInsertMustStillFitTheDocumentSchema) {
  // The research view exposes treatment as a child of patient, but the
  // *document* schema has no such edge: authorization passes, the DTD
  // revalidation rejects — and nothing changes.
  UpdateOptions opts;
  opts.view = "research";
  auto r = engine_.Update(
      "ward", "insert into hospital/patient <treatment><test>x</test>"
              "</treatment>",
      opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(*engine_.DocumentEpoch("ward"), 0u);
}

TEST_F(UpdateAuthTest, HiddenTargetSelectsNothingThroughTheView) {
  // Hidden labels do not even resolve through the view (the same "you
  // cannot name what you cannot see" queries get): a successful no-op.
  UpdateOptions opts;
  opts.view = "research";
  auto r = engine_.Update("ward", "delete //pname", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.targets, 0u);
  EXPECT_EQ(*engine_.DocumentEpoch("ward"), 0u);
}

TEST_F(UpdateAuthTest, SpecDefinedViewsCannotUpdate) {
  constexpr char kSpec[] = R"(
    root hospital;
    dtd {
      <!ELEMENT hospital (patient*)>
      <!ELEMENT patient (treatment*)>
      <!ELEMENT treatment (medication?)>
      <!ELEMENT medication (#PCDATA)>
    }
    sigma hospital/patient = patient;
    sigma patient/treatment = visit/treatment;
    sigma treatment/medication = medication;
  )";
  ASSERT_TRUE(engine_.DefineViewFromSpec("spec-view", kSpec, "hospital").ok());
  UpdateOptions opts;
  opts.view = "spec-view";
  auto r = engine_.Update("ward", "delete //treatment", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(UpdateAuthTest, EpochInvalidatesAndRetainsMaterializations) {
  // Cache both views at epoch 0.
  auto rv0 = engine_.MaterializeView("ward", "research");
  ASSERT_TRUE(rv0.ok()) << rv0.status().ToString();
  EXPECT_FALSE(rv0->cache_hit);
  EXPECT_TRUE(engine_.MaterializeView("ward", "research")->cache_hit);
  auto av0 = engine_.MaterializeView("ward", "autism-group");
  ASSERT_TRUE(av0.ok());

  // A trusted update that only touches research-hidden data: pname is
  // hidden from research (and so is the replacement), so the research
  // materialization survives; the autism view has qualifiers and must be
  // rebuilt.
  UpdateOptions direct;
  direct.dtd_name = "hospital";
  auto u = engine_.Update(
      "ward",
      "replace hospital/patient/pname[. = 'Carol'] with <pname>Anon</pname>",
      direct);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(u->stats.view_caches_retained, 1u);
  EXPECT_EQ(u->stats.view_caches_invalidated, 1u);

  auto rv1 = engine_.MaterializeView("ward", "research");
  ASSERT_TRUE(rv1.ok());
  EXPECT_TRUE(rv1->cache_hit);        // retained across the epoch bump
  EXPECT_EQ(rv1->epoch, 1u);
  EXPECT_EQ(rv1->xml, rv0->xml);      // and provably unchanged

  auto av1 = engine_.MaterializeView("ward", "autism-group");
  ASSERT_TRUE(av1.ok());
  EXPECT_FALSE(av1->cache_hit);       // rebuilt at the new epoch

  // A visible-region update invalidates the research cache too.
  auto u2 = engine_.Update(
      "ward",
      "replace //treatment[medication = 'headache'] "
      "with <treatment><test>mri</test></treatment>",
      direct);
  ASSERT_TRUE(u2.ok()) << u2.status().ToString();
  EXPECT_EQ(u2->stats.view_caches_retained, 0u);
  auto rv2 = engine_.MaterializeView("ward", "research");
  ASSERT_TRUE(rv2.ok());
  EXPECT_FALSE(rv2->cache_hit);
  EXPECT_NE(rv2->xml, rv1->xml);
}

TEST_F(UpdateAuthTest, RootReplaceStillChecksFragmentContent) {
  // A document with nothing hidden from the view (patients without
  // visits), so the removal half of a root replace passes; the
  // replacement fragment smuggles in a visit — hidden from the view —
  // and must still be rejected.
  ASSERT_TRUE(engine_
                  .LoadDocument("empty-ward",
                                "<hospital><patient><pname>A</pname>"
                                "</patient></hospital>")
                  .ok());
  ASSERT_TRUE(engine_
                  .DefineView("no-visits", "hospital",
                              "patient/visit : N;\n")
                  .ok());
  UpdateOptions opts;
  opts.view = "no-visits";
  opts.dtd_name = "hospital";
  auto r = engine_.Update(
      "empty-ward",
      "replace hospital with <hospital><patient><pname>B</pname>"
      "<visit><treatment><test>x</test></treatment><date>d</date></visit>"
      "</patient></hospital>",
      opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(r.status().message().find("patient/visit : N"), std::string::npos)
      << r.status().ToString();
}

TEST_F(UpdateAuthTest, DryRunChangesNothing) {
  UpdateOptions direct;
  direct.dtd_name = "hospital";
  direct.dry_run = true;
  const std::string before = *engine_.DocumentXml("ward");
  auto r = engine_.Update("ward", "delete hospital/patient[pname = 'Carol']",
                          direct);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.targets, 1u);
  EXPECT_EQ(*engine_.DocumentXml("ward"), before);
  EXPECT_EQ(*engine_.DocumentEpoch("ward"), 0u);
}

}  // namespace
}  // namespace smoqe::core
