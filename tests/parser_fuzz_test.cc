// Mutation fuzzer over the two front-end parsers (ISSUE S2): random byte
// flips of canonical-printed scripts must either parse or fail with a
// clean ParseError — never crash, assert or return a mongrel status —
// and every accepted mutant must satisfy the print → parse → print
// fixpoint the plan cache's normalization relies on.
//
// Deterministic: a splitmix64-style generator seeded per mutation, so a
// failure reproduces from the printed seed alone.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/rxpath/parser.h"
#include "src/rxpath/printer.h"
#include "src/update/update_lang.h"

namespace smoqe {
namespace {

// Deterministic 64-bit mixer (no std::random — results must not depend
// on the standard library's distribution implementations).
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Flips 1–3 bytes of `canonical` at seed-derived positions. Replacement
// bytes are drawn from a pool biased toward syntax characters so mutants
// explore the parser's state machine instead of failing at the lexer
// every time.
std::string Mutate(const std::string& canonical, uint64_t seed) {
  static constexpr char kPool[] =
      "()[]/*|='\"<> .,:!@#$%&-+abz019\t\n\x01\x7f\xff";
  std::string s = canonical;
  const int flips = 1 + static_cast<int>(Mix(seed) % 3);
  for (int f = 0; f < flips; ++f) {
    const uint64_t r = Mix(seed * 1315423911ull + f);
    s[r % s.size()] = kPool[(r >> 32) % (sizeof(kPool) - 1)];
  }
  return s;
}

const std::vector<std::string>& QuerySeeds() {
  static const std::vector<std::string> kSeeds = {
      "//pname",
      "hospital/patient/pname",
      "hospital/patient[visit]/pname",
      "//patient[visit/treatment/medication = 'autism']/pname",
      "hospital/(patient/parent)*/pname",
      "//treatment[test | medication]",
      "hospital/patient[pname = 'Ann'][visit]/visit/date",
      "(a/b)*/c[d = \"x\"]",
  };
  return kSeeds;
}

const std::vector<std::string>& UpdateSeeds() {
  static const std::vector<std::string> kSeeds = {
      "delete //treatment[medication = 'headache']",
      "insert into hospital/patient <visit><treatment><medication>m"
      "</medication></treatment><date>d</date></visit>",
      "replace //pname with <pname>Zed</pname>",
      "delete hospital/(patient/parent)*/pname",
      "insert into //patient[visit] <parent><pname>P</pname></parent>",
  };
  return kSeeds;
}

TEST(ParserFuzzTest, RxpathMutantsParseOrFailCleanly) {
  size_t accepted = 0, rejected = 0;
  uint64_t mutation = 0;
  for (const std::string& seed_text : QuerySeeds()) {
    auto seed_ast = rxpath::ParseQuery(seed_text);
    ASSERT_TRUE(seed_ast.ok()) << seed_text;
    const std::string canonical = rxpath::ToString(**seed_ast);
    // The canonical form itself must be a fixpoint before any mutation.
    auto reparsed = rxpath::ParseQuery(canonical);
    ASSERT_TRUE(reparsed.ok()) << canonical;
    ASSERT_EQ(rxpath::ToString(**reparsed), canonical);

    for (int i = 0; i < 2000; ++i, ++mutation) {
      const std::string mutant = Mutate(canonical, mutation);
      auto r = rxpath::ParseQuery(mutant);
      if (!r.ok()) {
        ++rejected;
        ASSERT_EQ(r.status().code(), StatusCode::kParseError)
            << "mutation " << mutation << " of \"" << canonical << "\" -> \""
            << mutant << "\": " << r.status().ToString();
        ASSERT_FALSE(r.status().message().empty());
        continue;
      }
      ++accepted;
      const std::string printed = rxpath::ToString(**r);
      auto again = rxpath::ParseQuery(printed);
      ASSERT_TRUE(again.ok())
          << "canonical print of an accepted mutant must re-parse: \""
          << mutant << "\" printed as \"" << printed << "\"";
      ASSERT_EQ(rxpath::ToString(**again), printed)
          << "print -> parse -> print must be a fixpoint (mutant \"" << mutant
          << "\")";
    }
  }
  // The mutator must actually exercise both outcomes.
  EXPECT_GT(accepted, 100u);
  EXPECT_GT(rejected, 100u);
}

TEST(ParserFuzzTest, UpdateMutantsParseOrFailCleanly) {
  size_t accepted = 0, rejected = 0;
  uint64_t mutation = 0x5eed;
  for (const std::string& seed_text : UpdateSeeds()) {
    auto seed_stmt = update::ParseUpdate(seed_text);
    ASSERT_TRUE(seed_stmt.ok()) << seed_text << ": "
                                << seed_stmt.status().ToString();
    const std::string canonical = update::ToString(*seed_stmt);
    auto reparsed = update::ParseUpdate(canonical);
    ASSERT_TRUE(reparsed.ok()) << canonical;
    ASSERT_EQ(update::ToString(*reparsed), canonical);

    for (int i = 0; i < 2000; ++i, ++mutation) {
      const std::string mutant = Mutate(canonical, mutation);
      auto r = update::ParseUpdate(mutant);
      if (!r.ok()) {
        ++rejected;
        ASSERT_EQ(r.status().code(), StatusCode::kParseError)
            << "mutation " << mutation << " of \"" << canonical << "\" -> \""
            << mutant << "\": " << r.status().ToString();
        ASSERT_FALSE(r.status().message().empty());
        continue;
      }
      ++accepted;
      const std::string printed = update::ToString(*r);
      auto again = update::ParseUpdate(printed);
      ASSERT_TRUE(again.ok())
          << "canonical print of an accepted mutant must re-parse: \""
          << mutant << "\" printed as \"" << printed << "\"";
      ASSERT_EQ(update::ToString(*again), printed)
          << "print -> parse -> print must be a fixpoint (mutant \"" << mutant
          << "\")";
    }
  }
  EXPECT_GT(accepted, 100u);
  EXPECT_GT(rejected, 100u);
}

}  // namespace
}  // namespace smoqe
