// Parser + canonical printer of the secure-update language
// (src/update/update_lang.h): statement forms, fragment boundary
// detection, error paths, and the print→parse round-trip.

#include "src/update/update_lang.h"

#include <gtest/gtest.h>

#include "src/rxpath/printer.h"
#include "tests/test_util.h"

namespace smoqe::update {
namespace {

UpdateStatement MustParse(std::string_view text) {
  auto r = ParseUpdate(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(UpdateLang, ParsesInsert) {
  UpdateStatement s = MustParse(
      "insert into //patient <visit><treatment><medication>flu"
      "</medication></treatment><date>d9</date></visit>");
  EXPECT_EQ(s.kind, OpKind::kInsert);
  EXPECT_EQ(rxpath::ToString(*s.target), "(*)*/patient");  // // desugars
  ASSERT_TRUE(s.fragment.has_value());
  EXPECT_EQ(s.fragment->names()->NameOf(s.fragment->root()->label), "visit");
}

TEST(UpdateLang, ParsesDelete) {
  UpdateStatement s = MustParse("delete //patient[pname = 'Carol']");
  EXPECT_EQ(s.kind, OpKind::kDelete);
  EXPECT_FALSE(s.fragment.has_value());
}

TEST(UpdateLang, ParsesReplace) {
  UpdateStatement s =
      MustParse("replace //medication with <medication>cough</medication>");
  EXPECT_EQ(s.kind, OpKind::kReplace);
  EXPECT_EQ(rxpath::ToString(*s.target), "(*)*/medication");
  ASSERT_TRUE(s.fragment.has_value());
}

TEST(UpdateLang, FragmentStartsOutsideQuotedStrings) {
  // A '<' inside a path string literal must not start the fragment.
  UpdateStatement s = MustParse("delete //pname[text() = '<odd>']");
  EXPECT_EQ(s.kind, OpKind::kDelete);
  UpdateStatement r = MustParse(
      "replace //pname[text() = '<x>'] with <pname>y</pname>");
  EXPECT_EQ(r.kind, OpKind::kReplace);
  EXPECT_EQ(rxpath::ToString(*r.target), "(*)*/pname[text() = '<x>']");
}

TEST(UpdateLang, ErrorPaths) {
  EXPECT_FALSE(ParseUpdate("upsert //a <b/>").ok());
  EXPECT_FALSE(ParseUpdate("insert //a <b/>").ok());         // missing into
  EXPECT_FALSE(ParseUpdate("insert into //a").ok());         // no fragment
  EXPECT_FALSE(ParseUpdate("delete //a <b/>").ok());         // stray fragment
  EXPECT_FALSE(ParseUpdate("replace //a <b/>").ok());        // missing with
  EXPECT_FALSE(ParseUpdate("replace //a with").ok());        // no fragment
  EXPECT_FALSE(ParseUpdate("replace with <b/>").ok());       // no path
  EXPECT_FALSE(ParseUpdate("insert into //a <b><c></b>").ok());  // bad xml
  EXPECT_FALSE(ParseUpdate("delete //a[").ok());             // bad path
  EXPECT_FALSE(ParseUpdate("").ok());
}

TEST(UpdateLang, CanonicalPrintRoundTrips) {
  const char* statements[] = {
      "insert   into //patient[visit]   <pname>Zed</pname>",
      "delete //patient[ pname = 'Bob' ]",
      "replace hospital/patient/visit   with <visit><treatment>"
      "<test>xray</test></treatment><date>d1</date></visit>",
  };
  for (const char* text : statements) {
    UpdateStatement s = MustParse(text);
    std::string canonical = ToString(s);
    UpdateStatement again = MustParse(canonical);
    EXPECT_EQ(canonical, ToString(again)) << text;
    EXPECT_TRUE(s.target->Equals(*again.target)) << text;
    EXPECT_EQ(s.kind, again.kind);
  }
}

TEST(UpdateLang, SharesTheProvidedNameTable) {
  auto names = xml::NameTable::Create();
  auto r = ParseUpdate("insert into //a <b><c>t</c></b>", names);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->fragment->names().get(), names.get());
  EXPECT_NE(names->Lookup("b"), xml::kNoName);
  EXPECT_NE(names->Lookup("c"), xml::kNoName);
}

}  // namespace
}  // namespace smoqe::update
