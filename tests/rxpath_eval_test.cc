#include "src/rxpath/naive_eval.h"

#include <gtest/gtest.h>

#include "src/rxpath/parser.h"
#include "src/xml/parser.h"

namespace smoqe::rxpath {
namespace {

using xml::Document;
using xml::Node;

// A small hospital instance exercising recursion (parent/patient), choice
// (test vs medication) and text predicates. Node labels follow Fig. 3.
constexpr char kHospitalDoc[] =
    "<hospital>"
    "<patient>"
    "<pname>Alice</pname>"
    "<visit><treatment><medication>autism</medication></treatment>"
    "<date>d1</date></visit>"
    "<parent><patient>"
    "<pname>Bob</pname>"
    "<visit><treatment><test>blood</test></treatment><date>d2</date></visit>"
    "</patient></parent>"
    "</patient>"
    "<patient>"
    "<pname>Carol</pname>"
    "<visit><treatment><medication>headache</medication></treatment>"
    "<date>d3</date></visit>"
    "</patient>"
    "</hospital>";

class NaiveEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = xml::ParseDocument(kHospitalDoc);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    doc_ = std::make_unique<Document>(r.MoveValue());
  }

  std::vector<std::string> EvalNames(std::string_view query) {
    auto p = ParseQuery(query);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    if (!p.ok()) return {};
    NaiveEvaluator ev(*doc_);
    std::vector<std::string> out;
    for (const Node* n : ev.Eval(**p)) {
      out.push_back(doc_->names()->NameOf(n->label) + ":" +
                    Document::DirectText(n));
    }
    return out;
  }

  size_t EvalCount(std::string_view query) { return EvalNames(query).size(); }

  std::unique_ptr<Document> doc_;
};

TEST_F(NaiveEvalTest, RootStep) {
  EXPECT_EQ(EvalCount("hospital"), 1u);
  EXPECT_EQ(EvalCount("nosuch"), 0u);
  // The first step matches the root element only.
  EXPECT_EQ(EvalCount("patient"), 0u);
}

TEST_F(NaiveEvalTest, ChildSteps) {
  EXPECT_EQ(EvalCount("hospital/patient"), 2u);
  EXPECT_EQ(EvalNames("hospital/patient/pname"),
            (std::vector<std::string>{"pname:Alice", "pname:Carol"}));
}

TEST_F(NaiveEvalTest, WildcardStep) {
  EXPECT_EQ(EvalCount("hospital/*"), 2u);
  EXPECT_EQ(EvalCount("hospital/patient/*"), 5u);  // 2×(pname,visit) + parent
}

TEST_F(NaiveEvalTest, DescendantOrSelfSugar) {
  EXPECT_EQ(EvalCount("//patient"), 3u);   // includes nested Bob
  EXPECT_EQ(EvalCount("//pname"), 3u);
  EXPECT_EQ(EvalCount("hospital//medication"), 2u);
  EXPECT_EQ(EvalCount("//hospital"), 1u);  // self reachable via (*)^0
}

TEST_F(NaiveEvalTest, KleeneStarRecursion) {
  // All patients reachable through parent chains from top-level patients.
  EXPECT_EQ(EvalCount("hospital/patient/(parent/patient)*"), 3u);
  // Zero iterations included: the star result contains the context nodes.
  EXPECT_EQ(EvalCount("hospital/(patient/parent)*/patient"), 3u);
}

TEST_F(NaiveEvalTest, UnionMergesAndDedupes) {
  EXPECT_EQ(EvalCount("hospital/patient/pname | hospital/patient/visit"), 4u);
  EXPECT_EQ(EvalCount("hospital/patient | hospital/patient"), 2u);
  EXPECT_EQ(EvalNames("hospital/patient/(pname | visit/date)"),
            (std::vector<std::string>{"pname:Alice", "date:d1", "pname:Carol",
                                      "date:d3"}));
}

TEST_F(NaiveEvalTest, PredicatesFilter) {
  EXPECT_EQ(EvalNames("hospital/patient[visit/treatment/medication = "
                      "'autism']/pname"),
            (std::vector<std::string>{"pname:Alice"}));
  EXPECT_EQ(EvalCount("hospital/patient[visit]"), 2u);
  EXPECT_EQ(EvalCount("hospital/patient[parent]"), 1u);
  EXPECT_EQ(EvalCount("//treatment[medication]"), 2u);
  EXPECT_EQ(EvalCount("//treatment[test]"), 1u);
}

TEST_F(NaiveEvalTest, TextEqualsSemantics) {
  EXPECT_EQ(EvalCount("//pname[text() = 'Bob']"), 1u);
  EXPECT_EQ(EvalCount("//pname[. = 'Bob']"), 1u);
  EXPECT_EQ(EvalCount("//patient[pname = 'Bob']"), 1u);
  EXPECT_EQ(EvalCount("//pname[text() = 'Zoe']"), 0u);
}

TEST_F(NaiveEvalTest, BooleanConnectives) {
  EXPECT_EQ(EvalCount("//patient[visit and parent]"), 1u);
  EXPECT_EQ(EvalCount("//patient[visit or parent]"), 3u);
  EXPECT_EQ(EvalCount("//patient[not(parent)]"), 2u);
  EXPECT_EQ(EvalCount("//patient[visit and not(parent)]"), 2u);
  EXPECT_EQ(EvalCount("//patient[pname != 'Bob']"), 2u);
}

TEST_F(NaiveEvalTest, NestedPredicates) {
  EXPECT_EQ(EvalCount("//patient[visit/treatment[medication = 'headache']]"),
            1u);
  EXPECT_EQ(
      EvalCount("//patient[(parent/patient)*/visit/treatment/test]"), 2u);
}

TEST_F(NaiveEvalTest, PaperQueryQ0) {
  // Q0 selects names of patients that have a descendant-through-parents
  // with a test AND a visit treated with headache medication. Only Carol
  // has the headache medication but no test in her parent chain; Alice has
  // a test via Bob but medication 'autism'. So the answer is empty.
  EXPECT_EQ(EvalCount("hospital/patient[(parent/patient)*/visit/treatment/"
                      "test and visit/treatment[medication/text()="
                      "'headache']]/pname"),
            0u);
  // Variant matching Alice: medication 'autism' + test via Bob.
  EXPECT_EQ(EvalNames("hospital/patient[(parent/patient)*/visit/treatment/"
                      "test and visit/treatment[medication/text()="
                      "'autism']]/pname"),
            (std::vector<std::string>{"pname:Alice"}));
}

TEST_F(NaiveEvalTest, ResultsInDocumentOrderAndUnique) {
  auto p = ParseQuery("//patient");
  ASSERT_TRUE(p.ok());
  NaiveEvaluator ev(*doc_);
  auto nodes = ev.Eval(**p);
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1]->node_id, nodes[i]->node_id);
  }
}

TEST_F(NaiveEvalTest, EmptyPathIsContext) {
  // "." at top level selects the virtual document node, which is dropped.
  EXPECT_EQ(EvalCount("."), 0u);
  EXPECT_EQ(EvalCount("hospital/."), 1u);
}

TEST_F(NaiveEvalTest, StarOfUnionTerminatesAndIsCorrect) {
  // Closure over a union body mixing two step kinds. Hand enumeration:
  // {hospital, patient(Alice), patient(Carol), parent, patient(Bob)}.
  EXPECT_EQ(EvalCount("hospital/(patient | patient/parent)*"), 5u);
}

TEST_F(NaiveEvalTest, AttributePredicates) {
  auto r = xml::ParseDocument(
      "<r><item id='a'/><item id='b' flag='1'/><item/></r>");
  ASSERT_TRUE(r.ok());
  NaiveEvaluator ev(*r);
  auto eval = [&](std::string_view q) {
    auto p = ParseQuery(q);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return ev.Eval(**p).size();
  };
  EXPECT_EQ(eval("r/item[@id]"), 2u);
  EXPECT_EQ(eval("r/item[@id = 'b']"), 1u);
  EXPECT_EQ(eval("r/item[@missing]"), 0u);
  EXPECT_EQ(eval("r/item[not(@id)]"), 1u);
  EXPECT_EQ(eval("r[item/@flag = '1']"), 1u);
}

TEST_F(NaiveEvalTest, StatsAccumulate) {
  auto p = ParseQuery("//patient[visit]");
  ASSERT_TRUE(p.ok());
  NaiveEvaluator ev(*doc_);
  (void)ev.Eval(**p);
  EXPECT_GT(ev.stats().node_visits, 0u);
  EXPECT_GT(ev.stats().qual_evals, 0u);
}

}  // namespace
}  // namespace smoqe::rxpath
