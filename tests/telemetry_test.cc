// Unit tests of the telemetry primitives (docs/DESIGN.md §8): histogram
// quantiles against a sorted-vector oracle under randomized inserts,
// counter sharding under threads, registry rendering, trace span nesting
// (including concurrent appenders), and the bounded audit log.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/telemetry/audit.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"

namespace smoqe::telemetry {
namespace {

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

// The estimate is the midpoint of the bucket holding the exact rank-q
// value, so estimate and oracle must land in the same bucket — a check
// that is exact, independent of the error bound's slack.
void CheckQuantiles(const Histogram& h, std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    size_t rank = static_cast<size_t>(std::ceil(q * values.size()));
    if (rank > 0) --rank;  // rank is 1-based; clamp q=0 to the minimum
    const uint64_t exact = values[rank];
    const double est = h.Quantile(q);
    EXPECT_EQ(Histogram::BucketIndex(static_cast<uint64_t>(est)),
              Histogram::BucketIndex(exact))
        << "q=" << q << " exact=" << exact << " est=" << est;
    // And the advertised relative error bound holds (half a sub-bucket
    // each side; +1 covers integer-midpoint rounding of tiny buckets).
    EXPECT_LE(std::abs(est - static_cast<double>(exact)),
              static_cast<double>(exact) * Histogram::kMaxRelativeError + 1.0)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 16; ++v) {
    for (int k = 0; k <= static_cast<int>(v); ++k) {
      h.Record(v);
      values.push_back(v);
    }
  }
  EXPECT_EQ(h.Count(), values.size());
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 15u);
  for (double q : {0.1, 0.5, 0.9}) {
    std::vector<uint64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(std::ceil(q * sorted.size()));
    if (rank > 0) --rank;
    EXPECT_DOUBLE_EQ(h.Quantile(q), static_cast<double>(sorted[rank]))
        << "q=" << q;
  }
}

TEST(Histogram, QuantileMatchesSortedVectorOracle) {
  std::mt19937_64 rng(20060608);
  // Three very different shapes: uniform, log-uniform (latency-like),
  // and heavy-tailed with a spike.
  for (int shape = 0; shape < 3; ++shape) {
    Histogram h;
    std::vector<uint64_t> values;
    for (int i = 0; i < 20000; ++i) {
      uint64_t v = 0;
      switch (shape) {
        case 0:
          v = rng() % 100000;
          break;
        case 1:
          v = static_cast<uint64_t>(
              std::exp(std::uniform_real_distribution<>(0.0, 20.0)(rng)));
          break;
        default:
          v = (i % 100 == 0) ? 1000000000ull + rng() % 1000 : rng() % 500;
          break;
      }
      h.Record(v);
      values.push_back(v);
    }
    EXPECT_EQ(h.Count(), values.size());
    uint64_t sum = 0, mn = UINT64_MAX, mx = 0;
    for (uint64_t v : values) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_EQ(h.Sum(), sum);
    EXPECT_EQ(h.Min(), mn);
    EXPECT_EQ(h.Max(), mx);
    CheckQuantiles(h, values);
  }
}

TEST(Histogram, BucketBoundsAreConsistent) {
  // Every bucket's lower bound maps back to that bucket, and indices are
  // monotone in the value.
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "bucket " << i;
  }
  size_t prev = 0;
  for (uint64_t v = 0; v < 4096; ++v) {
    const size_t idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(Histogram, SnapshotIsConsistent) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v * 37);
  const Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 37u);
  EXPECT_EQ(s.max, 37000u);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8, kPer = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPer; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPer);
  EXPECT_EQ(h.Min(), 100u);
  EXPECT_EQ(h.Max(), 7100u);
}

// ---------------------------------------------------------------------
// Counter / Gauge / registry
// ---------------------------------------------------------------------

TEST(Counter, ShardedSumAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8, kPer = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPer; ++i) c.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPer);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(42);
  g.Add(-50);
  EXPECT_EQ(g.Value(), -8);
}

TEST(MetricsRegistry, StableReferencesAndIdempotentGet) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x.count");
  a.Add(3);
  Counter& b = reg.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.Value(), 3u);
}

TEST(MetricsRegistry, RenderJsonShape) {
  MetricsRegistry reg;
  reg.GetCounter("query.count").Add(7);
  reg.GetGauge("pool.queue_depth").Set(-2);
  reg.GetHistogram("query.latency_ns").Record(1234);
  const std::string json = reg.Render(DumpFormat::kJson);
  EXPECT_NE(json.find("\"query.count\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.queue_depth\": -2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"query.latency_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  // Braces balance (cheap well-formedness check without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsRegistry, RenderPrometheusShape) {
  MetricsRegistry reg;
  reg.GetCounter("plan_cache.hits").Add(5);
  reg.GetHistogram("query.latency_ns").Record(100);
  const std::string prom = reg.Render(DumpFormat::kPrometheus);
  EXPECT_NE(prom.find("# TYPE smoqe_plan_cache_hits counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("smoqe_plan_cache_hits 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE smoqe_query_latency_ns summary"),
            std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(prom.find("smoqe_query_latency_ns_count 1"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusNameSanitization) {
  EXPECT_EQ(PrometheusName("query.latency_ns"), "smoqe_query_latency_ns");
  EXPECT_EQ(PrometheusName("doc.epoch.my-doc"), "smoqe_doc_epoch_my_doc");
}

// ---------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------

TEST(Trace, SpanNestingParentsPrecedeChildren) {
  TraceRecorder rec(8);
  std::shared_ptr<Trace> trace = rec.Begin("query");
  {
    SpanScope outer(trace.get(), "evaluate");
    ASSERT_EQ(outer.index(), 0);
    SpanScope inner(trace.get(), "item", outer.index());
    EXPECT_EQ(inner.index(), 1);
  }
  rec.Finish(trace);
  const std::vector<SpanRecord> spans = trace->spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "evaluate");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "item");
  EXPECT_EQ(spans[1].parent, 0);
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.end_ns, s.start_ns);
    EXPECT_LT(s.parent, static_cast<int32_t>(spans.size()));
  }
  EXPECT_GT(trace->duration_ns(), 0u);
}

TEST(Trace, ConcurrentSpanAppendKeepsInvariant) {
  // Batch items record spans from pool workers: all spans of all threads
  // must land with parents preceding children and sane timestamps.
  TraceRecorder rec(8);
  std::shared_ptr<Trace> trace = rec.Begin("query_batch");
  const int32_t root = trace->BeginSpan("evaluate");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, root] {
      for (int i = 0; i < 200; ++i) {
        SpanScope s(trace.get(), "item", root);
      }
    });
  }
  for (auto& th : threads) th.join();
  trace->EndSpan(root);
  rec.Finish(trace);
  const std::vector<SpanRecord> spans = trace->spans();
  ASSERT_EQ(spans.size(), 1u + kThreads * 200u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].end_ns, spans[i].start_ns);
    EXPECT_LT(spans[i].parent, static_cast<int32_t>(i));  // parent precedes
  }
}

TEST(Trace, NullTraceIsNoOp) {
  SpanScope s(nullptr, "anything");
  EXPECT_EQ(s.index(), -1);
}

TEST(TraceRecorder, RingEvictsOldestAndFindsById) {
  TraceRecorder rec(2);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    std::shared_ptr<Trace> t = rec.Begin("q" + std::to_string(i));
    ids.push_back(t->id());
    rec.Finish(t);
  }
  EXPECT_EQ(rec.finished_count(), 3u);
  EXPECT_EQ(rec.Find(ids[0]), nullptr);  // evicted
  ASSERT_NE(rec.Find(ids[2]), nullptr);
  const auto recent = rec.Recent(10);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0]->id(), ids[2]);  // newest first
}

TEST(TraceRecorder, RenderTextIndentsChildren) {
  TraceRecorder rec(4);
  std::shared_ptr<Trace> trace = rec.Begin("query");
  trace->SetAttr("doc", "ward");
  const int32_t a = trace->BeginSpan("evaluate");
  const int32_t b = trace->BeginSpan("item", a);
  trace->EndSpan(b);
  trace->EndSpan(a);
  rec.Finish(trace);
  const std::string text = TraceRecorder::RenderText(*trace);
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("@doc = ward"), std::string::npos);
  EXPECT_NE(text.find("  evaluate"), std::string::npos);
  EXPECT_NE(text.find("    item"), std::string::npos) << text;
  const std::string json = TraceRecorder::RenderJson(*trace);
  EXPECT_NE(json.find("\"name\": \"query\""), std::string::npos) << json;
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ---------------------------------------------------------------------
// Audit log
// ---------------------------------------------------------------------

AuditRecord MakeRecord(AuditKind kind, const std::string& view, bool allowed) {
  AuditRecord r;
  r.kind = kind;
  r.view = view;
  r.doc = "ward";
  r.allowed = allowed;
  if (!allowed) r.explain = "denied: test";
  return r;
}

TEST(AuditLog, SeqIsMonotoneAndCapacityBounds) {
  AuditLog log(4);
  for (int i = 0; i < 10; ++i) {
    const uint64_t seq =
        log.Append(MakeRecord(AuditKind::kUpdateReject, "nurses", false));
    EXPECT_EQ(seq, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto records = log.Query();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().seq, 7u);  // oldest retained
  EXPECT_EQ(records.back().seq, 10u);
}

TEST(AuditLog, FilterByKindAllowedViewAndSeq) {
  AuditLog log(100);
  log.Append(MakeRecord(AuditKind::kQueryRewrite, "nurses", true));
  log.Append(MakeRecord(AuditKind::kUpdateReject, "nurses", false));
  log.Append(MakeRecord(AuditKind::kUpdateAccept, "doctors", true));
  log.Append(MakeRecord(AuditKind::kUpdateReject, "doctors", false));

  AuditFilter by_kind;
  const AuditKind reject = AuditKind::kUpdateReject;
  by_kind.kind = &reject;
  EXPECT_EQ(log.Query(by_kind).size(), 2u);

  AuditFilter by_denied;
  const bool denied = false;
  by_denied.allowed = &denied;
  const auto denials = log.Query(by_denied);
  ASSERT_EQ(denials.size(), 2u);
  EXPECT_EQ(denials[0].explain, "denied: test");

  AuditFilter by_view;
  by_view.view = "doctors";
  EXPECT_EQ(log.Query(by_view).size(), 2u);

  AuditFilter by_seq;
  by_seq.min_seq = 3;
  EXPECT_EQ(log.Query(by_seq).size(), 2u);
}

TEST(AuditLog, RenderJsonEscapes) {
  AuditRecord r = MakeRecord(AuditKind::kUpdateReject, "nurses", false);
  r.seq = 9;
  r.statement = "delete //patient[pname = \"O'Hara\"]";
  r.explain = "line1\nline2 \"quoted\"";
  const std::string json = AuditLog::RenderJson(r);
  EXPECT_NE(json.find("\"seq\": 9"), std::string::npos);
  EXPECT_NE(json.find("update_reject"), std::string::npos);
  EXPECT_NE(json.find("\\\"O'Hara\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line
}

// ---------------------------------------------------------------------
// Telemetry bundle
// ---------------------------------------------------------------------

TEST(Telemetry, TraceSamplingHonorsEvery) {
  TelemetryOptions opts;
  opts.trace_sample_every = 3;
  Telemetry tel(opts);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    std::shared_ptr<Trace> t = tel.MaybeBeginTrace("query");
    if (t != nullptr) {
      ++sampled;
      tel.traces().Finish(t);
    }
  }
  EXPECT_EQ(sampled, 3);
  EXPECT_EQ(tel.traces().finished_count(), 3u);
}

}  // namespace
}  // namespace smoqe::telemetry
