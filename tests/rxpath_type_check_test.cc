#include "src/rxpath/type_check.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace smoqe::rxpath {
namespace {

using testutil::kHospitalDtd;
using testutil::MustDtd;
using testutil::MustQuery;

TypeCheckResult Check(const xml::Dtd& dtd, std::string_view q,
                      bool from_doc = true) {
  auto query = MustQuery(q);
  return TypeCheck(*query, dtd, {}, from_doc);
}

TEST(TypeCheckTest, SimpleChain) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto r = Check(dtd, "hospital/patient/pname");
  EXPECT_EQ(r.output_types, (std::set<std::string>{"pname"}));
  EXPECT_TRUE(r.unknown_labels.empty());
}

TEST(TypeCheckTest, FirstStepMustMatchRoot) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  // 'patient' is declared but is not the root: no output from the
  // document node.
  auto r = Check(dtd, "patient/pname");
  EXPECT_TRUE(r.output_types.empty());
  EXPECT_TRUE(r.unknown_labels.empty());
}

TEST(TypeCheckTest, WildcardExpandsPerSchema) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto r = Check(dtd, "hospital/patient/*");
  EXPECT_EQ(r.output_types,
            (std::set<std::string>{"parent", "pname", "visit"}));
}

TEST(TypeCheckTest, DescendantReachesRecursiveTypes) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto r = Check(dtd, "//patient");
  EXPECT_EQ(r.output_types, (std::set<std::string>{"patient"}));
  auto all = Check(dtd, "//*");
  EXPECT_EQ(all.output_types.size(), dtd.elements().size());
}

TEST(TypeCheckTest, StarFixpointTerminatesOnCycles) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto r = Check(dtd, "hospital/patient/(parent/patient)*");
  EXPECT_EQ(r.output_types, (std::set<std::string>{"patient"}));
}

TEST(TypeCheckTest, UnknownLabelsReported) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto r = Check(dtd, "hospital/patiennt");  // typo
  EXPECT_EQ(r.unknown_labels, (std::set<std::string>{"patiennt"}));
  EXPECT_TRUE(r.output_types.empty());
  // Typos after a dead prefix are still reported.
  auto r2 = Check(dtd, "hospital/patiennt/alsoo");
  EXPECT_EQ(r2.unknown_labels,
            (std::set<std::string>{"alsoo", "patiennt"}));
}

TEST(TypeCheckTest, QualifierLabelsChecked) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto r = Check(dtd, "hospital/patient[visitt/treatment]");
  EXPECT_EQ(r.unknown_labels, (std::set<std::string>{"visitt"}));
  // Qualifiers never widen the output.
  EXPECT_EQ(r.output_types, (std::set<std::string>{"patient"}));
}

TEST(TypeCheckTest, SchemaImpossibleChainYieldsEmpty) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  // 'date' is a child of visit, not of patient.
  auto r = Check(dtd, "hospital/patient/date");
  EXPECT_TRUE(r.output_types.empty());
  EXPECT_TRUE(r.unknown_labels.empty());
}

TEST(TypeCheckTest, ExplicitContextTypes) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto q = MustQuery("visit/treatment");
  auto r = TypeCheck(*q, dtd, {"patient"});
  EXPECT_EQ(r.output_types, (std::set<std::string>{"treatment"}));
  auto r2 = TypeCheck(*q, dtd, {"hospital"});
  EXPECT_TRUE(r2.output_types.empty());
}

TEST(TypeCheckTest, UnionMergesBranches) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  auto r = Check(dtd, "hospital/patient/(pname | visit/date)");
  EXPECT_EQ(r.output_types, (std::set<std::string>{"date", "pname"}));
}

}  // namespace
}  // namespace smoqe::rxpath
