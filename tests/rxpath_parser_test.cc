#include "src/rxpath/parser.h"

#include <gtest/gtest.h>

#include "src/rxpath/printer.h"

namespace smoqe::rxpath {
namespace {

std::unique_ptr<PathExpr> MustParse(std::string_view q) {
  auto r = ParseQuery(q);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.MoveValue() : nullptr;
}

TEST(RxParserTest, SingleStep) {
  auto p = MustParse("hospital");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PathExpr::Kind::kLabel);
  EXPECT_EQ(p->label(), "hospital");
}

TEST(RxParserTest, SequenceOfSteps) {
  auto p = MustParse("hospital/patient/pname");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind(), PathExpr::Kind::kSeq);
  ASSERT_EQ(p->parts().size(), 3u);
  EXPECT_EQ(p->parts()[0]->label(), "hospital");
  EXPECT_EQ(p->parts()[2]->label(), "pname");
}

TEST(RxParserTest, LeadingSlashIsAbsoluteNoOp) {
  auto a = MustParse("/hospital/patient");
  auto b = MustParse("hospital/patient");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(a->Equals(*b));
}

TEST(RxParserTest, DoubleSlashDesugarsToStarWildcard) {
  auto p = MustParse("a//b");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind(), PathExpr::Kind::kSeq);
  ASSERT_EQ(p->parts().size(), 3u);
  EXPECT_EQ(p->parts()[1]->kind(), PathExpr::Kind::kStar);
  EXPECT_EQ(p->parts()[1]->body().kind(), PathExpr::Kind::kWildcard);
  // Leading //.
  auto q = MustParse("//b");
  ASSERT_EQ(q->kind(), PathExpr::Kind::kSeq);
  EXPECT_EQ(q->parts()[0]->kind(), PathExpr::Kind::kStar);
}

TEST(RxParserTest, UnionAndPrecedence) {
  auto p = MustParse("a/b | c");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind(), PathExpr::Kind::kUnion);
  ASSERT_EQ(p->parts().size(), 2u);
  EXPECT_EQ(p->parts()[0]->kind(), PathExpr::Kind::kSeq);
  EXPECT_EQ(p->parts()[1]->kind(), PathExpr::Kind::kLabel);
}

TEST(RxParserTest, KleeneStarOnGroup) {
  auto p = MustParse("(parent/patient)*");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind(), PathExpr::Kind::kStar);
  EXPECT_EQ(p->body().kind(), PathExpr::Kind::kSeq);
}

TEST(RxParserTest, KleeneStarOnLabel) {
  auto p = MustParse("a*");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind(), PathExpr::Kind::kStar);
  EXPECT_EQ(p->body().kind(), PathExpr::Kind::kLabel);
}

TEST(RxParserTest, WildcardVsStarDisambiguation) {
  auto p = MustParse("a/*/b");
  ASSERT_EQ(p->kind(), PathExpr::Kind::kSeq);
  EXPECT_EQ(p->parts()[1]->kind(), PathExpr::Kind::kWildcard);
  auto q = MustParse("a/ * */b");  // wildcard then postfix star
  ASSERT_EQ(q->kind(), PathExpr::Kind::kSeq);
  EXPECT_EQ(q->parts()[1]->kind(), PathExpr::Kind::kStar);
  EXPECT_EQ(q->parts()[1]->body().kind(), PathExpr::Kind::kWildcard);
}

TEST(RxParserTest, PredicateWithPathQualifier) {
  auto p = MustParse("patient[visit]");
  ASSERT_EQ(p->kind(), PathExpr::Kind::kPred);
  EXPECT_EQ(p->parts()[0]->label(), "patient");
  EXPECT_EQ(p->qual().kind(), Qualifier::Kind::kPath);
}

TEST(RxParserTest, PredicateWithTextComparison) {
  auto p = MustParse("patient[visit/treatment/medication = 'autism']");
  ASSERT_EQ(p->kind(), PathExpr::Kind::kPred);
  const Qualifier& q = p->qual();
  ASSERT_EQ(q.kind(), Qualifier::Kind::kTextEq);
  EXPECT_EQ(q.value(), "autism");
  EXPECT_EQ(q.path().kind(), PathExpr::Kind::kSeq);
}

TEST(RxParserTest, ExplicitTextFunction) {
  auto a = MustParse("a[b/text() = 'v']");
  auto b = MustParse("a[b = 'v']");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(a->Equals(*b));
  auto c = MustParse("a[text() = 'v']");
  ASSERT_EQ(c->kind(), PathExpr::Kind::kPred);
  EXPECT_EQ(c->qual().kind(), Qualifier::Kind::kTextEq);
  EXPECT_EQ(c->qual().path().kind(), PathExpr::Kind::kEmpty);
}

TEST(RxParserTest, NotEqualsDesugarsToNot) {
  auto p = MustParse("a[b != 'v']");
  ASSERT_EQ(p->qual().kind(), Qualifier::Kind::kNot);
  EXPECT_EQ(p->qual().left().kind(), Qualifier::Kind::kTextEq);
}

TEST(RxParserTest, AttributeTests) {
  auto p = MustParse("a[@id]");
  ASSERT_EQ(p->qual().kind(), Qualifier::Kind::kAttr);
  EXPECT_EQ(p->qual().attr_name(), "id");
  EXPECT_FALSE(p->qual().has_value());

  auto q = MustParse("a[b/c/@id = 'x7']");
  ASSERT_EQ(q->qual().kind(), Qualifier::Kind::kAttr);
  EXPECT_EQ(q->qual().attr_name(), "id");
  ASSERT_TRUE(q->qual().has_value());
  EXPECT_EQ(q->qual().value(), "x7");
  EXPECT_EQ(q->qual().path().kind(), PathExpr::Kind::kSeq);
}

TEST(RxParserTest, BooleanConnectivesAndPrecedence) {
  auto p = MustParse("a[x and y or z]");
  // 'and' binds tighter: (x and y) or z.
  ASSERT_EQ(p->qual().kind(), Qualifier::Kind::kOr);
  EXPECT_EQ(p->qual().left().kind(), Qualifier::Kind::kAnd);
  EXPECT_EQ(p->qual().right().kind(), Qualifier::Kind::kPath);

  auto q = MustParse("a[x and (y or z)]");
  ASSERT_EQ(q->qual().kind(), Qualifier::Kind::kAnd);
  EXPECT_EQ(q->qual().right().kind(), Qualifier::Kind::kOr);
}

TEST(RxParserTest, NotQualifier) {
  auto p = MustParse("a[not(b and c)]");
  ASSERT_EQ(p->qual().kind(), Qualifier::Kind::kNot);
  EXPECT_EQ(p->qual().left().kind(), Qualifier::Kind::kAnd);
}

TEST(RxParserTest, NestedPredicates) {
  auto p = MustParse("a[b[c = 'v']]");
  ASSERT_EQ(p->kind(), PathExpr::Kind::kPred);
  const Qualifier& outer = p->qual();
  ASSERT_EQ(outer.kind(), Qualifier::Kind::kPath);
  EXPECT_EQ(outer.path().kind(), PathExpr::Kind::kPred);
}

TEST(RxParserTest, MultiplePredicatesStack) {
  auto p = MustParse("a[b][c]");
  ASSERT_EQ(p->kind(), PathExpr::Kind::kPred);
  EXPECT_EQ(p->parts()[0]->kind(), PathExpr::Kind::kPred);
}

TEST(RxParserTest, PaperQueryQ0Parses) {
  // Q0 from the paper (Fig. 4), lightly reformatted.
  auto p = MustParse(
      "hospital/patient[(parent/patient)*/visit/treatment/test and "
      "visit/treatment[medication/text()=\"headache\"]]/pname");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind(), PathExpr::Kind::kSeq);
  ASSERT_EQ(p->parts().size(), 3u);
  EXPECT_EQ(p->parts()[1]->kind(), PathExpr::Kind::kPred);
  EXPECT_EQ(p->parts()[1]->qual().kind(), Qualifier::Kind::kAnd);
}

TEST(RxParserTest, DotIsEmptyPath) {
  auto p = MustParse(".");
  EXPECT_EQ(p->kind(), PathExpr::Kind::kEmpty);
  auto q = MustParse("a/./b");
  ASSERT_EQ(q->kind(), PathExpr::Kind::kSeq);
  EXPECT_EQ(q->parts().size(), 2u);  // ε removed in canonical form
}

TEST(RxParserTest, ParenthesizedUnionInSequence) {
  auto p = MustParse("a/(b | c)/d");
  ASSERT_EQ(p->kind(), PathExpr::Kind::kSeq);
  ASSERT_EQ(p->parts().size(), 3u);
  EXPECT_EQ(p->parts()[1]->kind(), PathExpr::Kind::kUnion);
}

// --- failure injection ---

TEST(RxParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("a/").ok());
  EXPECT_FALSE(ParseQuery("/").ok());
  EXPECT_FALSE(ParseQuery("a[").ok());
  EXPECT_FALSE(ParseQuery("a[]").ok());
  EXPECT_FALSE(ParseQuery("a]").ok());
  EXPECT_FALSE(ParseQuery("(a").ok());
  EXPECT_FALSE(ParseQuery("a |").ok());
  EXPECT_FALSE(ParseQuery("a[b = ]").ok());
  EXPECT_FALSE(ParseQuery("a[b = c]").ok());   // rhs must be quoted
  EXPECT_FALSE(ParseQuery("a[@]").ok());
  EXPECT_FALSE(ParseQuery("a['str']").ok());
  EXPECT_FALSE(ParseQuery("a[not b]").ok());
  EXPECT_FALSE(ParseQuery("a b").ok());
  EXPECT_FALSE(ParseQuery("a[text()]").ok());  // text() needs comparison
}

TEST(RxParserTest, AttributesRejectedInPurePathContext) {
  EXPECT_FALSE(ParseQuery("a/@id").ok());
  EXPECT_FALSE(ParseQuery("@id").ok());
}

TEST(RxParserTest, UnterminatedStringRejected) {
  EXPECT_FALSE(ParseQuery("a[b = 'v]").ok());
}

TEST(RxParserTest, QualifierEntryPoint) {
  auto q = ParseQualifierExpr("visit/treatment/medication = 'autism'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->kind(), Qualifier::Kind::kTextEq);
  EXPECT_FALSE(ParseQualifierExpr("and and").ok());
}

}  // namespace
}  // namespace smoqe::rxpath
