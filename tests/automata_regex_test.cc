#include "src/automata/regex_extract.h"

#include <gtest/gtest.h>

#include "src/rxpath/printer.h"
#include "tests/test_util.h"

namespace smoqe::automata {
namespace {

using rxpath::PathExpr;

std::unique_ptr<PathExpr> L(const char* name) {
  return PathExpr::Label(name);
}

TEST(PathAutomatonTest, DirectEdge) {
  PathAutomaton g;
  int a = g.AddState();
  int b = g.AddState();
  g.AddEdge(a, b, L("x"));
  auto r = g.ExtractPaths(a, {b});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(rxpath::ToString(*r->at(b)), "x");
}

TEST(PathAutomatonTest, ChainThroughIntermediate) {
  PathAutomaton g;
  int a = g.AddState();
  int m = g.AddState();
  int b = g.AddState();
  g.AddEdge(a, m, L("x"));
  g.AddEdge(m, b, L("y"));
  auto r = g.ExtractPaths(a, {b});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(rxpath::ToString(*r->at(b)), "x/y");
}

TEST(PathAutomatonTest, ParallelEdgesUnion) {
  PathAutomaton g;
  int a = g.AddState();
  int b = g.AddState();
  g.AddEdge(a, b, L("x"));
  g.AddEdge(a, b, L("y"));
  auto r = g.ExtractPaths(a, {b});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(rxpath::ToString(*r->at(b)), "x | y");
}

TEST(PathAutomatonTest, DuplicateEdgeLabelsCollapse) {
  PathAutomaton g;
  int a = g.AddState();
  int b = g.AddState();
  g.AddEdge(a, b, L("x"));
  g.AddEdge(a, b, L("x"));
  auto r = g.ExtractPaths(a, {b});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(rxpath::ToString(*r->at(b)), "x");
}

TEST(PathAutomatonTest, SelfLoopBecomesStar) {
  // a -x-> m, m -y-> m (loop), m -z-> b  ⇒  x/(y)*/z
  PathAutomaton g;
  int a = g.AddState();
  int m = g.AddState();
  int b = g.AddState();
  g.AddEdge(a, m, L("x"));
  g.AddEdge(m, m, L("y"));
  g.AddEdge(m, b, L("z"));
  auto r = g.ExtractPaths(a, {b});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(rxpath::ToString(*r->at(b)), "x/y*/z");
}

TEST(PathAutomatonTest, TwoNodeCycleBecomesStar) {
  // The recursive-view case: a -p-> m1, m1 -q-> m2, m2 -r-> m1, m1 -s-> b.
  // All paths: p/(q/r)*/s — wait: m1's loop via m2 is q/r.
  PathAutomaton g;
  int a = g.AddState();
  int m1 = g.AddState();
  int m2 = g.AddState();
  int b = g.AddState();
  g.AddEdge(a, m1, L("p"));
  g.AddEdge(m1, m2, L("q"));
  g.AddEdge(m2, m1, L("r"));
  g.AddEdge(m1, b, L("s"));
  auto r = g.ExtractPaths(a, {b});
  ASSERT_TRUE(r.ok());
  // Verify semantically: the expression must contain a Kleene star over
  // the cycle labels; the exact shape depends on elimination order (e.g.
  // "p/s | p/q/(r/q)*/r/s").
  std::string s = rxpath::ToString(*r->at(b));
  EXPECT_NE(s.find('*'), std::string::npos) << s;
  EXPECT_NE(s.find('q'), std::string::npos) << s;
  EXPECT_NE(s.find('r'), std::string::npos) << s;
}

TEST(PathAutomatonTest, MultipleAccepts) {
  PathAutomaton g;
  int a = g.AddState();
  int m = g.AddState();
  int b1 = g.AddState();
  int b2 = g.AddState();
  g.AddEdge(a, m, L("h"));
  g.AddEdge(m, b1, L("x"));
  g.AddEdge(m, b2, L("y"));
  g.AddEdge(a, b2, L("z"));
  auto r = g.ExtractPaths(a, {b1, b2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(rxpath::ToString(*r->at(b1)), "h/x");
  EXPECT_EQ(rxpath::ToString(*r->at(b2)), "z | h/y");
}

TEST(PathAutomatonTest, NoPathYieldsNoEntry) {
  PathAutomaton g;
  int a = g.AddState();
  int b = g.AddState();
  int island = g.AddState();
  g.AddEdge(island, b, L("x"));
  auto r = g.ExtractPaths(a, {b});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(PathAutomatonTest, StartInAcceptsRejected) {
  PathAutomaton g;
  int a = g.AddState();
  EXPECT_FALSE(g.ExtractPaths(a, {a}).ok());
}

TEST(PathAutomatonTest, PredicateLabeledEdgesSurvive) {
  // Edges can carry qualified steps (conditionally-visible types).
  PathAutomaton g;
  int a = g.AddState();
  int b = g.AddState();
  auto q = rxpath::ParseQuery("visit/treatment[medication]");
  ASSERT_TRUE(q.ok());
  g.AddEdge(a, b, q.MoveValue());
  auto r = g.ExtractPaths(a, {b});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(rxpath::ToString(*r->at(b)), "visit/treatment[medication]");
}

}  // namespace
}  // namespace smoqe::automata
