#include "src/common/status.h"

#include <gtest/gtest.h>

namespace smoqe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::RejectedBusy("x").code(), StatusCode::kRejectedBusy);
}

TEST(StatusTest, GuardrailCodeNamesRenderDistinctly) {
  // The README error-semantics table keys off these renderings; a caller
  // distinguishes retry-later (RejectedBusy) from shrink-the-request
  // (DeadlineExceeded / ResourceExhausted) by them.
  EXPECT_EQ(Status::DeadlineExceeded("m").ToString(), "DeadlineExceeded: m");
  EXPECT_EQ(Status::Cancelled("m").ToString(), "Cancelled: m");
  EXPECT_EQ(Status::RejectedBusy("m").ToString(), "RejectedBusy: m");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status s = Status::NotFound("view 'v1'").WithContext("rewriting");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "rewriting: view 'v1'");
  // No-op on OK.
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nothing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r(std::string("payload"));
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SMOQE_ASSIGN_OR_RETURN(int h, Half(x));
  SMOQE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> odd = Quarter(6);  // 6/2 = 3, odd at the second step
  ASSERT_FALSE(odd.ok());
  EXPECT_EQ(odd.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status CheckAll(int a, int b) {
  SMOQE_RETURN_IF_ERROR(FailIfNegative(a));
  SMOQE_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_FALSE(CheckAll(1, -2).ok());
  EXPECT_FALSE(CheckAll(-1, 2).ok());
}

}  // namespace
}  // namespace smoqe
