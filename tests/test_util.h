#ifndef SMOQE_TESTS_TEST_UTIL_H_
#define SMOQE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/rxpath/naive_eval.h"
#include "src/rxpath/parser.h"
#include "src/xml/dtd_parser.h"
#include "src/xml/generator.h"
#include "src/xml/parser.h"

namespace smoqe::testutil {

/// The paper's hospital DTD (Fig. 3(a)), used across tests and benches.
inline constexpr char kHospitalDtd[] = R"(
  <!ELEMENT hospital (patient*)>
  <!ELEMENT patient (pname, visit*, parent*)>
  <!ELEMENT parent (patient)>
  <!ELEMENT visit (treatment, date)>
  <!ELEMENT treatment (test | medication)>
  <!ELEMENT pname (#PCDATA)>
  <!ELEMENT date (#PCDATA)>
  <!ELEMENT test (#PCDATA)>
  <!ELEMENT medication (#PCDATA)>
)";

/// The hand-written hospital instance from rxpath_eval_test (Alice with
/// autism medication and a parent Bob with a blood test; Carol with
/// headache medication).
inline constexpr char kHospitalDoc[] =
    "<hospital>"
    "<patient>"
    "<pname>Alice</pname>"
    "<visit><treatment><medication>autism</medication></treatment>"
    "<date>d1</date></visit>"
    "<parent><patient>"
    "<pname>Bob</pname>"
    "<visit><treatment><test>blood</test></treatment><date>d2</date></visit>"
    "</patient></parent>"
    "</patient>"
    "<patient>"
    "<pname>Carol</pname>"
    "<visit><treatment><medication>headache</medication></treatment>"
    "<date>d3</date></visit>"
    "</patient>"
    "</hospital>";

inline xml::Document MustDoc(std::string_view text,
                             std::shared_ptr<xml::NameTable> names = nullptr) {
  xml::ParseOptions opts;
  opts.names = std::move(names);
  auto r = xml::ParseDocument(text, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

inline xml::Dtd MustDtd(std::string_view text, std::string_view root = "") {
  auto r = xml::ParseDtd(text, root);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

inline std::unique_ptr<rxpath::PathExpr> MustQuery(std::string_view q) {
  auto r = rxpath::ParseQuery(q);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Generates a random hospital document with a mixed medication
/// vocabulary (≈1/4 'autism').
inline xml::Document GenHospital(uint64_t seed, size_t target_nodes,
                                 std::shared_ptr<xml::NameTable> names = nullptr) {
  xml::Dtd dtd = MustDtd(kHospitalDtd, "hospital");
  xml::GeneratorOptions opts;
  opts.seed = seed;
  opts.target_nodes = target_nodes;
  opts.names = std::move(names);
  opts.text_values["medication"] = {"autism", "headache", "flu", "cold"};
  opts.text_values["pname"] = {"Alice", "Bob", "Carol", "Dan", "Eve"};
  opts.text_values["test"] = {"blood", "xray"};
  auto doc = xml::GenerateDocument(dtd, opts);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.MoveValue();
}

/// Document-order node ids selected by the reference evaluator.
inline std::vector<int32_t> NaiveIds(const xml::Document& doc,
                                     const rxpath::PathExpr& query) {
  rxpath::NaiveEvaluator ev(doc);
  std::vector<int32_t> out;
  for (const xml::Node* n : ev.Eval(query)) out.push_back(n->node_id);
  return out;
}

/// Node ids of a node-pointer answer list.
inline std::vector<int32_t> IdsOf(const std::vector<const xml::Node*>& nodes) {
  std::vector<int32_t> out;
  out.reserve(nodes.size());
  for (const xml::Node* n : nodes) out.push_back(n->node_id);
  return out;
}

/// Query corpus exercising every Regular XPath feature over the hospital
/// schema; used by the differential suites (HyPE ≡ naive ≡ two-pass ≡
/// StAX, TAX on ≡ off).
inline std::vector<const char*> HospitalQueryCorpus() {
  return {
      "hospital",
      "hospital/patient",
      "hospital/patient/pname",
      "//patient",
      "//pname",
      "//medication",
      "hospital/*",
      "hospital/*/pname",
      "hospital//treatment",
      "hospital/patient/(parent/patient)*",
      "hospital/(patient/parent)*/patient/pname",
      "hospital/patient/pname | hospital/patient/visit/date",
      "//treatment/(test | medication)",
      "//patient[visit]",
      "//patient[parent]",
      "//patient[not(parent)]",
      "//patient[visit and parent]",
      "//patient[visit or parent]",
      "//patient[visit/treatment/medication = 'autism']",
      "//patient[visit/treatment/medication = 'autism']/pname",
      "//patient[not(visit/treatment/medication = 'autism')]/pname",
      "//pname[text() = 'Alice']",
      "//patient[pname != 'Bob']",
      "//patient[(parent/patient)*/visit/treatment/test]",
      "//patient[visit/treatment[medication = 'headache']]",
      "hospital/patient[(parent/patient)*/visit/treatment/test and "
      "visit/treatment[medication/text()='headache']]/pname",
      "hospital/patient[(parent/patient)*/visit/treatment/test and "
      "visit/treatment[medication/text()='autism']]/pname",
      "//visit[not(treatment/test) and not(treatment/medication)]",
      "//patient[parent/patient/pname = 'Bob']/pname",
      "//patient[visit[treatment/medication = 'autism'] and "
      "visit[treatment/medication = 'headache']]",
      "(hospital | hospital/patient)/pname",
      "//parent/patient/visit/treatment/test",
      "hospital/patient[not(parent/patient[visit])]",
      "//treatment[not(medication)]/test",
      "//date[. = 'd1']",
      "//*[medication = 'headache']",
      "hospital/patient/visit/treatment/medication",
      "//patient[visit/date = 'd2']/pname",
  };
}

}  // namespace smoqe::testutil

#endif  // SMOQE_TESTS_TEST_UTIL_H_
