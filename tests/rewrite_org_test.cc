// Second-schema rewrite suite: the org chart with the salary-hiding
// policy. Complements rewrite_test.cc's hospital coverage with a schema
// whose recursion is direct (division → division) and whose conditional
// type (group) sits mid-hierarchy.

#include <gtest/gtest.h>

#include <set>

#include "src/eval/hype_dom.h"
#include "src/rewrite/rewriter.h"
#include "src/rxpath/naive_eval.h"
#include "src/view/derive.h"
#include "src/view/materialize.h"
#include "src/workload/workloads.h"
#include "tests/test_util.h"

namespace smoqe::rewrite {
namespace {

using testutil::MustQuery;
using view::DeriveView;
using view::Materialize;
using view::Policy;
using view::ViewDefinition;

std::vector<const char*> OrgViewQueries() {
  return {
      "company/division/employee/ename",
      "//employee",
      "//employee/ename",
      "//group/employee",
      "//division[group]/dname",
      "company/division/(division)*/dname",
      "//division[not(employee)]",
      "//employee[ename = 'ada']",
      "//*",
      "//division[division/group]",
  };
}

TEST(RewriteOrgTest, PropertyOverRandomDocs) {
  xml::Dtd dtd = workload::OrgDtd();
  auto policy = Policy::Parse(dtd, workload::kOrgPolicy);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  auto view = DeriveView(*policy);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  for (uint64_t seed = 91; seed <= 96; ++seed) {
    auto doc = workload::GenOrg(seed, 350);
    ASSERT_TRUE(doc.ok());
    auto mat = Materialize(*view, *doc);
    ASSERT_TRUE(mat.ok()) << mat.status().ToString();
    rxpath::NaiveEvaluator view_eval(mat->document);

    for (const char* qs : OrgViewQueries()) {
      auto q = MustQuery(qs);
      // Ground truth through materialization + provenance.
      std::set<int32_t> want;
      for (const xml::Node* n : view_eval.Eval(*q)) {
        want.insert(mat->source_node_id[n->node_id]);
      }
      // Rewritten on the underlying document.
      auto mfa = RewriteToMfa(*q, *view, doc->names());
      ASSERT_TRUE(mfa.ok());
      auto r = eval::EvalHypeDom(*mfa, *doc);
      ASSERT_TRUE(r.ok());
      std::set<int32_t> got;
      for (const xml::Node* n : r->answers) got.insert(n->node_id);
      EXPECT_EQ(got, want) << "seed " << seed << " query " << qs;
    }
  }
}

TEST(RewriteOrgTest, SalariesNeverLeak) {
  xml::Dtd dtd = workload::OrgDtd();
  auto policy = Policy::Parse(dtd, workload::kOrgPolicy);
  ASSERT_TRUE(policy.ok());
  auto view = DeriveView(*policy);
  ASSERT_TRUE(view.ok());
  auto doc = workload::GenOrg(5, 500);
  ASSERT_TRUE(doc.ok());
  xml::NameId salary = doc->names()->Lookup("salary");
  xml::NameId review = doc->names()->Lookup("review");
  for (const char* qs : {"//salary", "//review", "//*", "//employee/*",
                         "//*[text() = '100000']"}) {
    auto q = MustQuery(qs);
    auto mfa = RewriteToMfa(*q, *view, doc->names());
    ASSERT_TRUE(mfa.ok());
    auto r = eval::EvalHypeDom(*mfa, *doc);
    ASSERT_TRUE(r.ok());
    for (const xml::Node* n : r->answers) {
      EXPECT_NE(n->label, salary) << qs;
      EXPECT_NE(n->label, review) << qs;
    }
  }
}

TEST(RewriteOrgTest, ConditionalGroupVisibility) {
  // kOrgPolicy: division/group : [employee] — groups without employees
  // are hidden. The org DTD requires employee+ in groups, so build a
  // custom doc via a DTD that allows empty groups to exercise the filter.
  xml::Dtd dtd = testutil::MustDtd(R"(
    <!ELEMENT company (division+)>
    <!ELEMENT division (dname, (division | group)*, employee*)>
    <!ELEMENT group (gname, employee*)>
    <!ELEMENT employee (ename, salary, review?)>
    <!ELEMENT dname (#PCDATA)> <!ELEMENT gname (#PCDATA)>
    <!ELEMENT ename (#PCDATA)> <!ELEMENT salary (#PCDATA)>
    <!ELEMENT review (#PCDATA)>
  )", "company");
  auto policy = Policy::Parse(dtd, workload::kOrgPolicy);
  ASSERT_TRUE(policy.ok());
  auto view = DeriveView(*policy);
  ASSERT_TRUE(view.ok());
  xml::Document doc = testutil::MustDoc(
      "<company><division><dname>d</dname>"
      "<group><gname>empty</gname></group>"
      "<group><gname>full</gname><employee><ename>ada</ename>"
      "<salary>1</salary></employee></group>"
      "</division></company>");
  auto q = MustQuery("//group/gname");
  auto mfa = RewriteToMfa(*q, *view, doc.names());
  ASSERT_TRUE(mfa.ok());
  auto r = eval::EvalHypeDom(*mfa, doc);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers.size(), 1u);
  EXPECT_EQ(xml::Document::DirectText(r->answers[0]), "full");
}

}  // namespace
}  // namespace smoqe::rewrite
