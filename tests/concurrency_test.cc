// Concurrency differential suite (docs/DESIGN.md §7): parallel execution
// must be *invisible* except in wall-clock —
//
//  * N threads of Query / QueryBatch against one document produce answers
//    byte-identical to sequential evaluation;
//  * the parallel StAX batch driver (RunParallel) is byte-identical to
//    the serial shared scan, chunk boundaries included;
//  * readers racing an updater each see one consistent epoch: every
//    answer matches the sequential reference answers *of the epoch the
//    reader reports* — a torn snapshot would mismatch every reference;
//  * the plan cache under concurrent compiles of one key converges every
//    caller on a single shared plan, with nothing leaked or replaced.
//
// The engine is built with max_threads = 4 even on small CI hosts so the
// pool paths run regardless of core count; under the TSan CI job this
// suite is the main race detector.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/automata/mfa.h"
#include "src/core/smoqe.h"
#include "src/eval/batch.h"
#include "src/rxpath/parser.h"
#include "src/workload/workloads.h"
#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace smoqe::core {
namespace {

using testutil::kHospitalDoc;

EngineOptions ParallelOptions() {
  EngineOptions o;
  o.max_threads = 4;
  o.stax_chunk_events = 64;  // force multi-chunk scans on small documents
  return o;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Smoqe>(ParallelOptions());
    ASSERT_TRUE(
        engine_->RegisterDtd("hospital", testutil::kHospitalDtd, "hospital")
            .ok());
    ASSERT_TRUE(engine_->LoadDocument("ward", kHospitalDoc).ok());
    ASSERT_TRUE(engine_
                    ->DefineView("autism-group", "hospital",
                                 workload::kHospitalPolicyAutism)
                    .ok());
    ASSERT_TRUE(engine_
                    ->DefineView("research-group", "hospital",
                                 workload::kHospitalPolicyResearch)
                    .ok());
    // A bigger generated document so scans outlast a few context switches.
    ASSERT_TRUE(
        engine_->GenerateDocument("gen", "hospital", /*seed=*/7, 4000).ok());
  }

  std::unique_ptr<Smoqe> engine_;
};

std::vector<BatchQueryItem> ServiceMix() {
  std::vector<BatchQueryItem> items;
  auto add = [&](const char* q, const char* view, EvalMode mode) {
    BatchQueryItem it;
    it.query = q;
    it.options.view = view;
    it.options.mode = mode;
    items.push_back(std::move(it));
  };
  add("hospital/patient/pname", "", EvalMode::kDom);
  add("//medication", "", EvalMode::kStax);
  add("//patient[visit/treatment/medication = 'autism']/pname", "",
      EvalMode::kStax);
  add("hospital/patient/treatment/medication", "autism-group", EvalMode::kDom);
  add("//treatment", "research-group", EvalMode::kStax);
  add("//visit/date", "", EvalMode::kStax);
  add("//patient[not(visit/treatment/test)]/pname", "", EvalMode::kDom);
  add("//pname | //date", "", EvalMode::kStax);
  return items;
}

TEST_F(ConcurrencyTest, ThreadedQueriesMatchSequential) {
  const std::vector<BatchQueryItem> mix = ServiceMix();
  // Sequential reference, per item.
  std::vector<std::vector<std::string>> expected;
  for (const BatchQueryItem& it : mix) {
    auto r = engine_->Query("gen", it.query, it.options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(r->answers_xml);
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 10;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const size_t q = static_cast<size_t>(t + i) % mix.size();
        auto r = engine_->Query("gen", mix[q].query, mix[q].options);
        if (!r.ok() || r->answers_xml != expected[q]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrencyTest, ParallelQueryBatchMatchesPerItemQueries) {
  const std::vector<BatchQueryItem> mix = ServiceMix();
  auto batch = engine_->QueryBatch("gen", mix);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), mix.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    auto single = engine_->Query("gen", mix[i].query, mix[i].options);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[i].answers_xml, single->answers_xml) << "item " << i;
    EXPECT_EQ((*batch)[i].doc_epoch, single->doc_epoch);
  }
}

TEST_F(ConcurrencyTest, ConcurrentQueryBatchesMatchSequential) {
  const std::vector<BatchQueryItem> mix = ServiceMix();
  auto reference = engine_->QueryBatch("gen", mix);
  ASSERT_TRUE(reference.ok());

  constexpr int kThreads = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4; ++i) {
        auto r = engine_->QueryBatch("gen", mix);
        if (!r.ok() || r->size() != reference->size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t k = 0; k < r->size(); ++k) {
          if ((*r)[k].answers_xml != (*reference)[k].answers_xml) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrencyTest, QueryBatchMultiMatchesPerDocQueries) {
  std::vector<DocBatchItem> items;
  for (const BatchQueryItem& it : ServiceMix()) {
    items.push_back(DocBatchItem{"gen", it.query, it.options});
    items.push_back(DocBatchItem{"ward", it.query, it.options});
  }
  auto multi = engine_->QueryBatchMulti(items);
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  ASSERT_EQ(multi->size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    auto single = engine_->Query(items[i].doc, items[i].query,
                                 items[i].options);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*multi)[i].answers_xml, single->answers_xml) << "item " << i;
  }
}

TEST_F(ConcurrencyTest, QueryBatchMultiUnknownDocumentNamesItem) {
  std::vector<DocBatchItem> items;
  items.push_back(DocBatchItem{"gen", "//pname", {}});
  items.push_back(DocBatchItem{"nope", "//pname", {}});
  auto r = engine_->QueryBatchMulti(items);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("batch item 1"), std::string::npos);
}

// The readers-during-update contract: every reader answer is *exactly*
// the sequential answer of the epoch the reader reports. A torn snapshot
// (half-applied update, stale TAX row, text of a different epoch) would
// produce an answer set matching no epoch.
TEST_F(ConcurrencyTest, ReadersDuringUpdateSeeOneConsistentEpoch) {
  constexpr int kUpdates = 6;
  const std::string probe = "//medication";
  const std::string update_stmt =
      "insert into hospital/patient "
      "<visit><treatment><medication>conc</medication></treatment>"
      "<date>dX</date></visit>";

  // Sequential reference: replay the same update sequence on a serial
  // engine, recording the probe's answers at every epoch.
  std::map<uint64_t, std::vector<std::string>> expected;
  {
    Smoqe ref(/*plan_cache_capacity=*/64);
    ASSERT_TRUE(
        ref.RegisterDtd("hospital", testutil::kHospitalDtd, "hospital").ok());
    ASSERT_TRUE(ref.LoadDocument("ward", kHospitalDoc).ok());
    auto record = [&] {
      auto r = ref.Query("ward", probe);
      ASSERT_TRUE(r.ok());
      expected[r->doc_epoch] = r->answers_xml;
    };
    record();
    for (int u = 0; u < kUpdates; ++u) {
      auto ur = ref.Update("ward", update_stmt);
      ASSERT_TRUE(ur.ok()) << ur.status().ToString();
      record();
    }
  }
  ASSERT_EQ(expected.size(), static_cast<size_t>(kUpdates) + 1);

  // Concurrent run: one writer, several DOM + StAX readers.
  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> reads{0};
  auto reader = [&](EvalMode mode) {
    QueryOptions opts;
    opts.mode = mode;
    while (!done.load(std::memory_order_acquire)) {
      auto r = engine_->Query("ward", probe, opts);
      if (!r.ok()) {
        mismatches.fetch_add(1);
        continue;
      }
      reads.fetch_add(1);
      auto it = expected.find(r->doc_epoch);
      if (it == expected.end() || it->second != r->answers_xml) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> readers;
  readers.emplace_back(reader, EvalMode::kDom);
  readers.emplace_back(reader, EvalMode::kDom);
  readers.emplace_back(reader, EvalMode::kStax);
  readers.emplace_back(reader, EvalMode::kStax);

  uint64_t final_epoch = 0;
  for (int u = 0; u < kUpdates; ++u) {
    auto ur = engine_->Update("ward", update_stmt);
    ASSERT_TRUE(ur.ok()) << ur.status().ToString();
    final_epoch = ur->stats.doc_epoch;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(final_epoch, static_cast<uint64_t>(kUpdates));
  // After the writer finishes, readers see the final epoch's answers.
  auto last = engine_->Query("ward", probe);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->doc_epoch, final_epoch);
  EXPECT_EQ(last->answers_xml, expected[final_epoch]);
}

TEST_F(ConcurrencyTest, ConcurrentCompilesConvergeOnOneCachedPlan) {
  engine_->plan_cache().Clear();
  const std::vector<std::string> queries = {
      "//patient[visit/treatment/test]/pname",
      "hospital/patient/visit/treatment/medication",
      "//patient[parent]/pname",
  };
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string& q = queries[static_cast<size_t>(t) % queries.size()];
      auto r = engine_->Query("ward", q);
      if (!r.ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  PlanCacheStats stats = engine_->plan_cache().stats();
  // All racers accounted for, and the cache kept exactly one entry per
  // distinct query (the losing compiles were dropped, not inserted).
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.size, queries.size());
  // Repeat queries now all hit.
  for (const std::string& q : queries) {
    auto r = engine_->Query("ward", q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.plan_cache_hits, 1u);
  }
}

TEST(PlanCacheRaceTest, SecondInsertKeepsIncumbentPlan) {
  PlanCache cache(8);
  PlanCache::Key key;
  key.normalized_query = "//a";
  auto first = std::make_shared<const CompiledPlan>();
  auto second = std::make_shared<const CompiledPlan>();
  EXPECT_EQ(cache.Insert(key, first).get(), first.get());
  // Simulated lost race: the later Insert must hand back the incumbent.
  EXPECT_EQ(cache.Insert(key, second).get(), first.get());
  EXPECT_EQ(cache.Lookup(key).get(), first.get());
  EXPECT_EQ(cache.stats().size, 1u);
}

// Eval-layer differential: the chunked parallel StAX driver against the
// serial shared scan, byte-for-byte, across chunk-boundary shapes.
TEST(BatchParallelTest, RunParallelMatchesRunByteForByte) {
  auto names = xml::NameTable::Create();
  auto doc = workload::GenHospital(/*seed=*/11, 3000, names);
  ASSERT_TRUE(doc.ok());
  const std::string text = xml::SerializeDocument(*doc);

  const std::vector<std::string> queries = {
      "hospital/patient/pname",
      "//medication",
      "//patient[visit/treatment/medication = 'autism']/pname",
      "//visit/date",
      "//patient[not(visit/treatment/test)]/pname",
      "//pname | //date",
      "//treatment[medication]",
      "//patient[.//medication = 'autism']/pname",
  };
  std::vector<std::unique_ptr<automata::Mfa>> mfas;
  eval::BatchEvaluator batch;
  for (const std::string& q : queries) {
    auto parsed = rxpath::ParseQuery(q);
    ASSERT_TRUE(parsed.ok());
    auto mfa = automata::Mfa::Compile(**parsed, names);
    ASSERT_TRUE(mfa.ok());
    mfas.push_back(std::make_unique<automata::Mfa>(mfa.MoveValue()));
    batch.AddPlan(mfas.back().get());
  }

  auto serial = batch.Run(text);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  ThreadPool pool(4);
  for (size_t chunk : {size_t{7}, size_t{256}, size_t{1 << 20}}) {
    eval::BatchParallelOptions par;
    par.pool = &pool;
    par.chunk_events = chunk;
    auto parallel = batch.RunParallel(text, par);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(parallel->size(), serial->size());
    for (size_t k = 0; k < serial->size(); ++k) {
      const auto& s = (*serial)[k];
      const auto& p = (*parallel)[k];
      ASSERT_EQ(p.answers.size(), s.answers.size())
          << "plan " << k << " chunk " << chunk;
      for (size_t a = 0; a < s.answers.size(); ++a) {
        EXPECT_EQ(p.answers[a].engine_id, s.answers[a].engine_id);
        EXPECT_EQ(p.answers[a].xml, s.answers[a].xml)
            << "plan " << k << " answer " << a << " chunk " << chunk;
      }
      // Per-plan engine work is identical, not merely equivalent.
      EXPECT_EQ(p.stats.nodes_visited, s.stats.nodes_visited);
      EXPECT_EQ(p.stats.nodes_pruned, s.stats.nodes_pruned);
      EXPECT_EQ(p.stats.cans_entries, s.stats.cans_entries);
      EXPECT_EQ(p.stats.buffered_bytes, s.stats.buffered_bytes);
    }
  }
}

TEST(BatchParallelTest, AggregateStatsIdenticalSerialAndParallel) {
  // Batch-level stats are the MergeFrom fold of the per-plan stats, and
  // the fold must not depend on how the batch executed: the aggregate of
  // a parallel run equals the aggregate of the serial run field by field.
  auto names = xml::NameTable::Create();
  auto doc = workload::GenHospital(/*seed=*/17, 2000, names);
  ASSERT_TRUE(doc.ok());
  const std::string text = xml::SerializeDocument(*doc);
  std::vector<std::unique_ptr<automata::Mfa>> mfas;
  eval::BatchEvaluator batch;
  for (const char* q : {"//medication", "//visit/date",
                        "hospital/patient/pname",
                        "//patient[visit/treatment/test]/pname"}) {
    auto parsed = rxpath::ParseQuery(q);
    ASSERT_TRUE(parsed.ok());
    auto mfa = automata::Mfa::Compile(**parsed, names);
    ASSERT_TRUE(mfa.ok());
    mfas.push_back(std::make_unique<automata::Mfa>(mfa.MoveValue()));
    batch.AddPlan(mfas.back().get());
  }
  auto serial = batch.Run(text);
  ASSERT_TRUE(serial.ok());

  // The fold itself: additive fields sum, peak fields take the max.
  const EvalStats agg = eval::BatchEvaluator::AggregateStats(*serial);
  uint64_t visited = 0, answers = 0, cans = 0, peak_pairs = 0, buffered = 0;
  for (const auto& r : *serial) {
    visited += r.stats.nodes_visited;
    answers += r.stats.answers;
    cans += r.stats.cans_entries;
    peak_pairs = std::max(peak_pairs, r.stats.max_active_pairs);
    buffered = std::max(buffered, r.stats.buffered_bytes);
  }
  EXPECT_EQ(agg.nodes_visited, visited);
  EXPECT_EQ(agg.answers, answers);
  EXPECT_EQ(agg.cans_entries, cans);
  EXPECT_EQ(agg.max_active_pairs, peak_pairs);
  EXPECT_EQ(agg.buffered_bytes, buffered);

  ThreadPool pool(4);
  eval::BatchParallelOptions par;
  par.pool = &pool;
  par.chunk_events = 64;
  auto parallel = batch.RunParallel(text, par);
  ASSERT_TRUE(parallel.ok());
  const EvalStats pagg = eval::BatchEvaluator::AggregateStats(*parallel);
  EXPECT_EQ(pagg.nodes_visited, agg.nodes_visited);
  EXPECT_EQ(pagg.answers, agg.answers);
  EXPECT_EQ(pagg.cans_entries, agg.cans_entries);
  EXPECT_EQ(pagg.obligations, agg.obligations);
  EXPECT_EQ(pagg.max_active_pairs, agg.max_active_pairs);
  EXPECT_EQ(pagg.buffered_bytes, agg.buffered_bytes);
}

TEST(BatchParallelTest, FacadeBatchCountersEqualAggregatedItemStats) {
  // Facade invariant: after one QueryBatch, the engine's eval.* telemetry
  // counters equal the MergeFrom aggregate of the per-answer stats — the
  // registry and the returned answers tell one story.
  EngineOptions o;
  o.max_threads = 4;
  o.stax_chunk_events = 64;
  Smoqe engine(o);
  ASSERT_TRUE(
      engine.RegisterDtd("hospital", testutil::kHospitalDtd, "hospital").ok());
  ASSERT_TRUE(engine.LoadDocument("ward", kHospitalDoc).ok());
  std::vector<BatchQueryItem> items;
  QueryOptions stax;
  stax.mode = EvalMode::kStax;
  items.push_back({"//medication", stax});
  items.push_back({"//pname", stax});
  items.push_back({"//visit/date", {}});  // DOM item on the pool
  auto r = engine.QueryBatch("ward", items);
  ASSERT_TRUE(r.ok());

  EvalStats agg;
  for (const QueryAnswer& a : *r) agg.MergeFrom(a.stats);
  auto& reg = engine.telemetry()->registry();
  EXPECT_EQ(reg.GetCounter("eval.nodes_visited").Value(), agg.nodes_visited);
  EXPECT_EQ(reg.GetCounter("eval.answers").Value(), agg.answers);
  EXPECT_EQ(reg.GetCounter("eval.subtrees_pruned").Value(),
            agg.subtrees_pruned);
  EXPECT_EQ(reg.GetCounter("query.answers").Value(), agg.answers);
  EXPECT_EQ(reg.GetCounter("batch.items").Value(), items.size());
}

TEST(BatchParallelTest, NestedRunParallelOnSaturatedPoolCompletes) {
  // Regression: RunParallel joins by helping (HelpWhileWaiting). With a
  // blocking join, two nested batches on a 1-worker pool deadlock — the
  // worker blocks in its own join while the other batch's chunk tasks
  // sit unclaimed in the queue.
  auto names = xml::NameTable::Create();
  auto doc = workload::GenHospital(/*seed=*/5, 600, names);
  ASSERT_TRUE(doc.ok());
  const std::string text = xml::SerializeDocument(*doc);
  std::vector<std::unique_ptr<automata::Mfa>> mfas;
  eval::BatchEvaluator batch;
  for (const char* q : {"//medication", "//visit/date",
                        "hospital/patient/pname", "//treatment"}) {
    auto parsed = rxpath::ParseQuery(q);
    ASSERT_TRUE(parsed.ok());
    auto mfa = automata::Mfa::Compile(**parsed, names);
    ASSERT_TRUE(mfa.ok());
    mfas.push_back(std::make_unique<automata::Mfa>(mfa.MoveValue()));
    batch.AddPlan(mfas.back().get());
  }
  auto serial = batch.Run(text);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(2);  // one worker: maximum contention for the queue
  eval::BatchParallelOptions par;
  par.pool = &pool;
  par.chunk_events = 16;
  std::atomic<int> mismatches{0};
  pool.ParallelFor(3, [&](size_t) {
    auto r = batch.RunParallel(text, par);
    if (!r.ok() || r->size() != serial->size()) {
      mismatches.fetch_add(1);
      return;
    }
    for (size_t k = 0; k < r->size(); ++k) {
      if ((*r)[k].answers.size() != (*serial)[k].answers.size()) {
        mismatches.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(BatchParallelTest, SerialEngineOptionMatchesParallelEngine) {
  // The facade-level differential knob: identical batches through a
  // serial engine (max_threads = 1) and a parallel one.
  auto make_engine = [&](int threads) {
    EngineOptions o;
    o.max_threads = threads;
    o.stax_chunk_events = 32;
    auto e = std::make_unique<Smoqe>(o);
    EXPECT_TRUE(
        e->RegisterDtd("hospital", testutil::kHospitalDtd, "hospital").ok());
    EXPECT_TRUE(e->GenerateDocument("gen", "hospital", /*seed=*/3, 2000).ok());
    return e;
  };
  auto serial = make_engine(1);
  auto parallel = make_engine(4);
  EXPECT_EQ(serial->pool(), nullptr);
  ASSERT_NE(parallel->pool(), nullptr);

  std::vector<BatchQueryItem> mix = ServiceMix();
  // Drop the view items — these engines define no views.
  mix.erase(std::remove_if(mix.begin(), mix.end(),
                           [](const BatchQueryItem& it) {
                             return !it.options.view.empty();
                           }),
            mix.end());
  auto rs = serial->QueryBatch("gen", mix);
  auto rp = parallel->QueryBatch("gen", mix);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok());
  ASSERT_EQ(rs->size(), rp->size());
  for (size_t i = 0; i < rs->size(); ++i) {
    EXPECT_EQ((*rs)[i].answers_xml, (*rp)[i].answers_xml) << "item " << i;
  }
}

}  // namespace
}  // namespace smoqe::core
