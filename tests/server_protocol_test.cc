// Wire-codec unit suite (docs/PROTOCOL.md): every typed message must
// survive encode → frame-extract → decode byte-identically; the frame
// extractor must reassemble frames from arbitrarily fragmented reads
// (delivered one byte at a time here — the socket worst case); hostile
// bodies (truncation, trailing garbage, over-declared lengths, bad enum
// values) must fail with a clean status, never UB. The status-code table
// is pinned value-by-value: it is the protocol contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/server/protocol.h"

namespace smoqe::server {
namespace {

QueryRequest SampleQuery() {
  QueryRequest q;
  q.id = 42;
  q.doc = "ward";
  q.query = "//patient[visit/treatment/medication = 'autism']/pname";
  q.mode = WireEvalMode::kStax;
  q.use_tax = 1;
  q.deadline_ms = 1500;
  q.max_memory_bytes = 1u << 20;
  return q;
}

QueryBatchRequest SampleBatch() {
  QueryBatchRequest b;
  b.id = 7;
  b.doc = "ward";
  b.deadline_ms = 250;
  b.items.push_back({"//pname", WireEvalMode::kDom, 0});
  b.items.push_back({"//treatment", WireEvalMode::kStax, 1});
  b.items.push_back({"", WireEvalMode::kDom, 0});  // empty query survives
  return b;
}

/// Runs one encoded frame through the extractor and hands back the body.
RawFrame Extract(const std::string& frame) {
  FrameExtractor ex;
  ex.Append(frame);
  auto raw = ex.Next();
  EXPECT_TRUE(raw.has_value());
  EXPECT_FALSE(ex.Next().has_value()) << "one frame in, one frame out";
  return raw.value_or(RawFrame{});
}

TEST(ServerProtocolTest, HelloRoundtrip) {
  HelloRequest m;
  m.id = 1;
  m.version = kProtocolVersion;
  m.role = "nurses";
  RawFrame raw = Extract(Encode(m));
  EXPECT_EQ(raw.opcode, static_cast<uint8_t>(Opcode::kHello));
  auto d = DecodeHelloRequest(raw.body);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->id, 1u);
  EXPECT_EQ(d->version, kProtocolVersion);
  EXPECT_EQ(d->role, "nurses");

  HelloResponse r;
  r.id = 1;
  r.code = WireCode::kPermissionDenied;
  r.message = "direct access disabled";
  RawFrame rr = Extract(Encode(r));
  EXPECT_EQ(rr.opcode, static_cast<uint8_t>(Opcode::kHelloOk));
  auto dr = DecodeHelloResponse(rr.body);
  ASSERT_TRUE(dr.ok());
  EXPECT_EQ(dr->code, WireCode::kPermissionDenied);
  EXPECT_EQ(dr->message, "direct access disabled");
}

TEST(ServerProtocolTest, QueryRoundtrip) {
  const QueryRequest q = SampleQuery();
  RawFrame raw = Extract(Encode(q));
  EXPECT_EQ(raw.opcode, static_cast<uint8_t>(Opcode::kQuery));
  auto d = DecodeQueryRequest(raw.body);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->id, q.id);
  EXPECT_EQ(d->doc, q.doc);
  EXPECT_EQ(d->query, q.query);
  EXPECT_EQ(d->mode, q.mode);
  EXPECT_EQ(d->use_tax, q.use_tax);
  EXPECT_EQ(d->deadline_ms, q.deadline_ms);
  EXPECT_EQ(d->max_memory_bytes, q.max_memory_bytes);

  QueryResponse resp;
  resp.id = q.id;
  resp.doc_epoch = 3;
  resp.answers_xml = {"<pname>Alice</pname>", "<pname>Bob</pname>", ""};
  RawFrame rr = Extract(Encode(resp));
  auto dr = DecodeQueryResponse(rr.body);
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  EXPECT_EQ(dr->code, WireCode::kOk);
  EXPECT_EQ(dr->doc_epoch, 3u);
  EXPECT_EQ(dr->answers_xml, resp.answers_xml);
}

TEST(ServerProtocolTest, BatchRoundtrip) {
  const QueryBatchRequest b = SampleBatch();
  RawFrame raw = Extract(Encode(b));
  auto d = DecodeQueryBatchRequest(raw.body);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_EQ(d->items.size(), 3u);
  EXPECT_EQ(d->items[1].query, "//treatment");
  EXPECT_EQ(d->items[1].mode, WireEvalMode::kStax);
  EXPECT_EQ(d->items[1].use_tax, 1);

  QueryBatchResponse resp;
  resp.id = b.id;
  BatchItemResult okitem;
  okitem.doc_epoch = 9;
  okitem.answers_xml = {"<a/>", "<b/>"};
  BatchItemResult baditem;
  baditem.code = WireCode::kParseError;
  baditem.error = "batch item 1: unexpected '['";
  resp.items = {okitem, baditem};
  RawFrame rr = Extract(Encode(resp));
  auto dr = DecodeQueryBatchResponse(rr.body);
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  ASSERT_EQ(dr->items.size(), 2u);
  EXPECT_EQ(dr->items[0].answers_xml, okitem.answers_xml);
  EXPECT_EQ(dr->items[1].code, WireCode::kParseError);
  EXPECT_EQ(dr->items[1].error, baditem.error);
}

TEST(ServerProtocolTest, UpdateStatErrorRoundtrip) {
  UpdateRequest u;
  u.id = 11;
  u.doc = "ward";
  u.statement = "delete //treatment[medication = 'headache']";
  u.dry_run = 1;
  RawFrame raw = Extract(Encode(u));
  auto d = DecodeUpdateRequest(raw.body);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->statement, u.statement);
  EXPECT_EQ(d->dry_run, 1);

  UpdateResponse ur;
  ur.id = 11;
  ur.doc_epoch = 4;
  ur.canonical = "delete //treatment[medication = 'headache']";
  ur.nodes_inserted = 0;
  ur.nodes_deleted = 3;
  auto dur = DecodeUpdateResponse(Extract(Encode(ur)).body);
  ASSERT_TRUE(dur.ok());
  EXPECT_EQ(dur->nodes_deleted, 3u);
  EXPECT_EQ(dur->canonical, ur.canonical);

  StatRequest st;
  st.id = 12;
  st.format = StatFormat::kPrometheus;
  auto dst = DecodeStatRequest(Extract(Encode(st)).body);
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst->format, StatFormat::kPrometheus);

  ErrorResponse err;
  err.id = 13;
  err.code = WireCode::kProtocolError;
  err.message = "unknown opcode 66";
  auto derr = DecodeErrorResponse(Extract(Encode(err)).body);
  ASSERT_TRUE(derr.ok());
  EXPECT_EQ(derr->id, 13u);
  EXPECT_EQ(derr->message, err.message);
}

// The satellite contract: a request delivered one byte at a time — the
// socket fragmentation worst case — reassembles byte-identically, and no
// prefix short of the full frame yields anything.
TEST(ServerProtocolTest, OneByteAtATimeReassembly) {
  const std::string f1 = Encode(SampleQuery());
  const std::string f2 = Encode(SampleBatch());
  const std::string stream = f1 + f2;

  FrameExtractor ex;
  std::vector<RawFrame> out;
  for (size_t i = 0; i < stream.size(); ++i) {
    ex.Append(std::string_view(&stream[i], 1));
    while (auto raw = ex.Next()) out.push_back(std::move(*raw));
    const size_t fed = i + 1;
    const size_t want = fed < f1.size() ? 0u : fed < stream.size() ? 1u : 2u;
    EXPECT_EQ(out.size(), want) << "after byte " << fed;
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].opcode, static_cast<uint8_t>(Opcode::kQuery));
  EXPECT_EQ(out[1].opcode, static_cast<uint8_t>(Opcode::kQueryBatch));
  auto q = DecodeQueryRequest(out[0].body);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->query, SampleQuery().query);
  auto b = DecodeQueryBatchRequest(out[1].body);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->items.size(), 3u);
}

TEST(ServerProtocolTest, OverflowIsStickyAndUnderDeclaredIsnt) {
  // Length prefix declaring more than max_frame: sticky overflow.
  FrameExtractor small(/*max_frame=*/16);
  Writer w;
  w.PutU32(1000);  // declared payload
  w.PutU8(static_cast<uint8_t>(Opcode::kQuery));
  small.Append(w.bytes());
  EXPECT_FALSE(small.Next().has_value());
  EXPECT_TRUE(small.overflow());
  small.Append(std::string(64, 'x'));
  EXPECT_FALSE(small.Next().has_value()) << "no resync past a bad length";

  // payload_len == 0 cannot even hold the opcode: also hostile.
  FrameExtractor zero(16);
  Writer wz;
  wz.PutU32(0);
  zero.Append(wz.bytes());
  EXPECT_FALSE(zero.Next().has_value());
  EXPECT_TRUE(zero.overflow());

  // A frame exactly at the bound is fine.
  FrameExtractor at(/*max_frame=*/6);
  at.Append(Frame(Opcode::kStat, "12345"));
  auto raw = at.Next();
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->body, "12345");
  EXPECT_FALSE(at.overflow());
}

TEST(ServerProtocolTest, HostileBodiesFailCleanly) {
  const std::string good = Extract(Encode(SampleQuery())).body;
  // Every strict prefix of a valid body must be rejected (truncation
  // inside a frame), and the full body must not tolerate trailing bytes.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    auto d = DecodeQueryRequest(std::string_view(good.data(), cut));
    EXPECT_FALSE(d.ok()) << "prefix length " << cut << " decoded";
  }
  std::string trailing = good + "x";
  EXPECT_FALSE(DecodeQueryRequest(trailing).ok());

  // A string length running past the end of the body must fail, not read
  // out of bounds.
  Writer w;
  w.PutU64(1);
  w.PutU32(0xFFFFFFFFu);  // doc "length"
  EXPECT_FALSE(DecodeQueryRequest(w.bytes()).ok());

  // Bad enum values are protocol errors, not silent truncations.
  QueryRequest q = SampleQuery();
  std::string body = Extract(Encode(q)).body;
  // mode byte sits after id(8) + doc(4+4) + query(4+54): flip it to 7.
  const size_t mode_off = 8 + 4 + q.doc.size() + 4 + q.query.size();
  ASSERT_LT(mode_off, body.size());
  body[mode_off] = 7;
  EXPECT_FALSE(DecodeQueryRequest(body).ok());

  // A batch declaring more items than its bytes could possibly hold.
  Writer wb;
  wb.PutU64(1);
  wb.PutStr("ward");
  wb.PutU64(0);
  wb.PutU64(0);
  wb.PutU32(0x10000000u);  // item count
  EXPECT_FALSE(DecodeQueryBatchRequest(wb.bytes()).ok());
}

TEST(ServerProtocolTest, StatusTableIsPinned) {
  // Wire values are the protocol contract — reordering core::StatusCode
  // must not change them.
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kOk)), 0);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kInvalidArgument)), 1);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kParseError)), 2);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kNotFound)), 3);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kAlreadyExists)), 4);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kFailedPrecondition)), 5);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kResourceExhausted)), 6);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kIOError)), 7);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kInternal)), 8);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kPermissionDenied)), 9);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kDeadlineExceeded)), 10);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kCancelled)), 11);
  EXPECT_EQ(static_cast<int>(FromStatus(StatusCode::kRejectedBusy)), 12);

  // Round trip through ToStatus for every engine-expressible code.
  for (int c = 0; c <= static_cast<int>(StatusCode::kRejectedBusy); ++c) {
    const StatusCode code = static_cast<StatusCode>(c);
    const WireCode wire = FromStatus(code);
    const Status back = ToStatus(wire, "msg");
    if (code == StatusCode::kOk) {
      EXPECT_TRUE(back.ok());
    } else {
      EXPECT_EQ(back.code(), code) << WireCodeName(wire);
      EXPECT_EQ(back.message(), "msg");
    }
  }
  // Transport-only codes come back as Internal.
  EXPECT_EQ(ToStatus(WireCode::kProtocolError, "m").code(),
            StatusCode::kInternal);
  EXPECT_EQ(ToStatus(WireCode::kUnknown, "m").code(), StatusCode::kInternal);

  // Retryability: only backpressure and time-slicing outcomes.
  EXPECT_TRUE(IsRetryable(WireCode::kRejectedBusy));
  EXPECT_TRUE(IsRetryable(WireCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetryable(WireCode::kCancelled));
  EXPECT_FALSE(IsRetryable(WireCode::kOk));
  EXPECT_FALSE(IsRetryable(WireCode::kPermissionDenied));
  EXPECT_FALSE(IsRetryable(WireCode::kParseError));
  EXPECT_FALSE(IsRetryable(WireCode::kProtocolError));
}

TEST(ServerProtocolTest, PeekRequestIdBestEffort) {
  EXPECT_EQ(PeekRequestId(Extract(Encode(SampleQuery())).body), 42u);
  EXPECT_EQ(PeekRequestId(""), 0u);
  EXPECT_EQ(PeekRequestId("abc"), 0u) << "fewer than 8 bytes";
}

}  // namespace
}  // namespace smoqe::server
