// Deterministic frame-mutation fuzzer over the smoqed wire protocol
// (ISSUE PR8 S1, same splitmix64 harness as parser_fuzz_test): mutate
// handshake and request frames — flipped body bytes, garbage opcodes,
// malformed length prefixes, truncated frames — and assert the server
// either answers with a clean protocol error or closes the connection.
// Never a crash, never a hang, and a surviving connection still answers
// the next well-formed request. ≥10k mutants total, every one
// reproducible from its printed seed.
//
// Mutant classes mirror what a socket can actually deliver:
//  * body mutants (length prefix intact): framing holds, so the server
//    must answer every one — recoverable by contract;
//  * framing mutants (any byte, length prefix included): the stream may
//    desync, so close or silence (server waiting for bytes that never
//    come) are legal — crashing or wedging other connections is not;
//  * truncations: every proper prefix of a valid frame followed by EOF.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/smoqe.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/test_server.h"
#include "tests/server_test_util.h"
#include "tests/test_util.h"

namespace smoqe::server {
namespace {

using testutil2::Mix;
using testutil2::RawConn;
using testutil2::RawHandshake;
using testutil2::ServerEngineOptions;
using testutil2::SetupHospitalEngine;

// Byte pool biased toward protocol-meaningful values: opcodes, small
// and huge little-endian length fragments, printable query syntax.
constexpr unsigned char kPool[] = {
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x7F, 0x80, 0x81, 0xFF,
    0xFE, 0x10, 0x20, 0x40, '/',  '[',  '\'', '<',  'a',  'z',
};

std::string Mutate(const std::string& frame, uint64_t seed, size_t min_off) {
  std::string s = frame;
  if (s.size() <= min_off) return s;
  const int flips = 1 + static_cast<int>(Mix(seed) % 3);
  for (int f = 0; f < flips; ++f) {
    const uint64_t r = Mix(seed * 6364136223846793005ull + f);
    const size_t pos = min_off + r % (s.size() - min_off);
    s[pos] = static_cast<char>(kPool[(r >> 32) % sizeof(kPool)]);
  }
  return s;
}

std::vector<std::string> CanonicalRequestFrames() {
  std::vector<std::string> frames;
  QueryRequest q;
  q.id = 1;
  q.doc = "ward";
  q.query = "//patient[visit/treatment/medication = 'autism']/pname";
  q.mode = WireEvalMode::kStax;
  frames.push_back(Encode(q));

  QueryBatchRequest b;
  b.id = 2;
  b.doc = "ward";
  b.items.push_back({"//pname", WireEvalMode::kDom, 0});
  b.items.push_back({"//treatment", WireEvalMode::kStax, 1});
  frames.push_back(Encode(b));

  UpdateRequest u;
  u.id = 3;
  u.doc = "ward";
  u.statement = "delete //treatment[medication = 'flu']";
  u.dry_run = 1;  // dry-run so mutants that still decode don't drift state
  frames.push_back(Encode(u));

  StatRequest st;
  st.id = 4;
  frames.push_back(Encode(st));
  return frames;
}

class ServerFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<core::Smoqe>(ServerEngineOptions());
    SetupHospitalEngine(*engine_, /*gen_nodes=*/0);
    server_ = std::make_unique<TestServer>(engine_.get());
    ASSERT_TRUE(server_->ok()) << server_->start_status().ToString();
  }

  /// Full-stack liveness probe: fresh connection, handshake, one valid
  /// query must answer OK. The "server still serves" oracle.
  void Probe(const std::string& context) {
    ClientOptions o;
    o.port = server_->port();
    o.recv_timeout_ms = 10'000;
    auto client = Client::Connect(o);
    ASSERT_TRUE(client.ok()) << context << ": " << client.status().ToString();
    QueryRequest q;
    q.doc = "ward";
    q.query = "//pname";
    auto r = client->Query(q);
    ASSERT_TRUE(r.ok()) << context << ": " << r.status().ToString();
    ASSERT_EQ(r->code, WireCode::kOk) << context << ": " << r->error;
    ASSERT_FALSE(r->answers_xml.empty()) << context;
  }

  std::unique_ptr<core::Smoqe> engine_;
  std::unique_ptr<TestServer> server_;
};

// Body mutants: the length prefix is left intact, so every mutant is a
// well-framed message and the server owes a response. The connection may
// only drop when the mutated opcode byte became HELLO (0x01 — duplicate
// handshake, fatal by contract). 8000 mutants.
TEST_F(ServerFuzzTest, BodyMutantsAlwaysAnswerAndRecover) {
  const std::vector<std::string> canon = CanonicalRequestFrames();
  RawConn conn;
  ASSERT_TRUE(conn.Dial(server_->port()));
  ASSERT_TRUE(RawHandshake(conn, ""));

  size_t answered = 0, closed = 0;
  constexpr uint64_t kMutants = 8000;
  for (uint64_t seed = 0; seed < kMutants; ++seed) {
    const std::string& base = canon[seed % canon.size()];
    // min_off = 4: keep the length prefix, mutate opcode + body.
    const std::string mutant = Mutate(base, seed, /*min_off=*/4);
    const uint8_t opcode = static_cast<uint8_t>(mutant[4]);

    if (!conn.Send(mutant)) {
      // The server closed after a prior fatal mutant and the write hit
      // the RST; reconnect and retry this seed once.
      ASSERT_TRUE(conn.Dial(server_->port())) << "seed " << seed;
      ASSERT_TRUE(RawHandshake(conn, "")) << "seed " << seed;
      ASSERT_TRUE(conn.Send(mutant)) << "seed " << seed;
    }
    RawFrame frame;
    if (opcode == static_cast<uint8_t>(Opcode::kHello)) {
      // Duplicate handshake: fatal by contract. The server sends an
      // ERROR frame then closes; either arriving first is fine, but it
      // must not hang. Reconnect for the next seed.
      ASSERT_NE(conn.Recv(&frame, 10'000), RawConn::RecvResult::kTimeout)
          << "seed " << seed << ": server hung on a duplicate HELLO";
      ++closed;
      conn.Close();
      ASSERT_TRUE(conn.Dial(server_->port())) << "seed " << seed;
      ASSERT_TRUE(RawHandshake(conn, "")) << "seed " << seed;
    } else {
      // Every other well-framed mutant is recoverable: the server owes
      // exactly one response and the connection stays up.
      ASSERT_EQ(conn.Recv(&frame, 10'000), RawConn::RecvResult::kFrame)
          << "seed " << seed
          << ": server closed or hung on a recoverable body mutant";
      ++answered;
    }
    // The surviving connection must still answer a real request.
    if (seed % 400 == 399) {
      QueryRequest probe;
      probe.id = 1'000'000 + seed;
      probe.doc = "ward";
      probe.query = "//pname";
      ASSERT_TRUE(conn.Send(Encode(probe))) << "seed " << seed;
      RawFrame pf;
      ASSERT_EQ(conn.Recv(&pf, 10'000), RawConn::RecvResult::kFrame)
          << "seed " << seed << ": connection dead after surviving mutants";
      ASSERT_EQ(pf.opcode, static_cast<uint8_t>(Opcode::kQueryResult));
      auto pr = DecodeQueryResponse(pf.body);
      ASSERT_TRUE(pr.ok());
      EXPECT_EQ(pr->code, WireCode::kOk) << pr->error;
      EXPECT_EQ(pr->id, probe.id);
    }
  }
  EXPECT_EQ(answered + closed, kMutants);
  EXPECT_GT(answered, kMutants / 2) << "mutation pool looks degenerate";
  Probe("after body mutants");
}

// Framing mutants: any byte fair game, length prefix included. The
// stream may desync — a response, a close, or silence (the server
// waiting out an under-delivered frame) are all legal. Crashing, or
// wedging *other* connections, is not. 2000 mutants; a third of them
// attack the handshake frame itself.
TEST_F(ServerFuzzTest, FramingMutantsNeverWedgeTheServer) {
  const std::vector<std::string> canon = CanonicalRequestFrames();
  HelloRequest hello;
  hello.id = 0;
  hello.role = "";
  const std::string hello_frame = Encode(hello);

  constexpr uint64_t kMutants = 2000;
  for (uint64_t seed = 0; seed < kMutants; ++seed) {
    RawConn conn;
    ASSERT_TRUE(conn.Dial(server_->port())) << "seed " << seed;
    const bool attack_hello = seed % 3 == 0;
    if (attack_hello) {
      const std::string mutant =
          Mutate(hello_frame, Mix(seed) ^ 0xF00Dull, /*min_off=*/0);
      ASSERT_TRUE(conn.Send(mutant)) << "seed " << seed;
    } else {
      ASSERT_TRUE(RawHandshake(conn, "")) << "seed " << seed;
      const std::string& base = canon[seed % canon.size()];
      const std::string mutant = Mutate(base, seed ^ 0xBEEFull, /*min_off=*/0);
      ASSERT_TRUE(conn.Send(mutant)) << "seed " << seed;
    }
    RawFrame frame;
    conn.Recv(&frame, 2);  // any outcome is fine; just don't crash
    conn.Close();
    if (seed % 100 == 99) Probe("framing seed " + std::to_string(seed));
  }
  Probe("after framing mutants");
}

// Truncation sweep: every proper prefix of a valid QUERY frame, then
// EOF. The server must treat the half-frame as a dead client — close
// its side, keep serving everyone else. Also covers prefixes of the
// handshake itself.
TEST_F(ServerFuzzTest, TruncatedFramesAreJustDeadClients) {
  QueryRequest q;
  q.id = 5;
  q.doc = "ward";
  q.query = "//treatment";
  const std::string frame = Encode(q);
  HelloRequest hello;
  hello.role = "";
  const std::string hello_frame = Encode(hello);

  for (size_t cut = 0; cut < frame.size(); ++cut) {
    RawConn conn;
    ASSERT_TRUE(conn.Dial(server_->port())) << "cut " << cut;
    ASSERT_TRUE(RawHandshake(conn, "")) << "cut " << cut;
    ASSERT_TRUE(conn.Send(std::string_view(frame.data(), cut)));
    conn.CloseWrite();
    RawFrame f;
    // Server sees EOF mid-frame: it must close, not answer garbage.
    const RawConn::RecvResult r = conn.Recv(&f, 5000);
    EXPECT_EQ(r, RawConn::RecvResult::kClosed) << "cut " << cut;
  }
  for (size_t cut = 0; cut < hello_frame.size(); ++cut) {
    RawConn conn;
    ASSERT_TRUE(conn.Dial(server_->port())) << "hello cut " << cut;
    ASSERT_TRUE(conn.Send(std::string_view(hello_frame.data(), cut)));
    conn.CloseWrite();
    RawFrame f;
    EXPECT_EQ(conn.Recv(&f, 5000), RawConn::RecvResult::kClosed)
        << "hello cut " << cut;
  }
  Probe("after truncation sweep");
}

// v2 trace-extension mutants: the optional trailing block is parse-or-
// ignore by contract — a mutated extension may be adopted, ignored
// (short block), or rejected as a malformed body, but the frame stays
// well-framed, so the server owes exactly one QUERY_RESULT for every
// mutant and the connection survives. Truncations of the extension
// (length prefix fixed up) are the "present but short" case: ignored,
// never fatal. Finally the pristine v2 frame must still adopt its id.
TEST_F(ServerFuzzTest, TraceExtensionMutantsParseOrIgnore) {
  QueryRequest base;
  base.id = 9;
  base.doc = "ward";
  base.query = "//pname";
  const std::string v1 = Encode(base);
  base.trace.trace_id = 0x1122334455667788ull;
  base.trace.flags = kTraceFlagProfile;
  const std::string v2 = Encode(base);
  ASSERT_GT(v2.size(), v1.size());
  const size_t ext_off = v1.size();  // extension starts where v1 ended

  RawConn conn;
  ASSERT_TRUE(conn.Dial(server_->port()));
  ASSERT_TRUE(RawHandshake(conn, ""));

  auto send_expect_answer = [&](const std::string& frame, uint64_t seed) {
    if (!conn.Send(frame)) {
      ASSERT_TRUE(conn.Dial(server_->port())) << "seed " << seed;
      ASSERT_TRUE(RawHandshake(conn, "")) << "seed " << seed;
      ASSERT_TRUE(conn.Send(frame)) << "seed " << seed;
    }
    RawFrame f;
    ASSERT_EQ(conn.Recv(&f, 10'000), RawConn::RecvResult::kFrame)
        << "seed " << seed
        << ": server closed or hung on a trace-extension mutant";
    ASSERT_EQ(f.opcode, static_cast<uint8_t>(Opcode::kQueryResult))
        << "seed " << seed;
    auto resp = DecodeQueryResponse(f.body);
    ASSERT_TRUE(resp.ok()) << "seed " << seed;
  };

  // Byte mutants confined to the extension block (v1 body untouched).
  constexpr uint64_t kMutants = 2000;
  for (uint64_t seed = 0; seed < kMutants; ++seed) {
    send_expect_answer(Mutate(v2, seed ^ 0xACEull, /*min_off=*/ext_off),
                       seed);
  }

  // Every truncation of the extension, length prefix patched so the
  // frame is still well-framed (cut == ext_off is exactly the v1 frame).
  for (size_t cut = ext_off; cut <= v2.size(); ++cut) {
    std::string frame = v2.substr(0, cut);
    const uint32_t len = static_cast<uint32_t>(frame.size() - 4);
    frame[0] = static_cast<char>(len & 0xFF);
    frame[1] = static_cast<char>((len >> 8) & 0xFF);
    frame[2] = static_cast<char>((len >> 16) & 0xFF);
    frame[3] = static_cast<char>((len >> 24) & 0xFF);
    send_expect_answer(frame, 1'000'000 + cut);
  }

  // The pristine v2 frame still round-trips its trace id + profile.
  ASSERT_TRUE(conn.Send(v2));
  RawFrame f;
  ASSERT_EQ(conn.Recv(&f, 10'000), RawConn::RecvResult::kFrame);
  auto resp = DecodeQueryResponse(f.body);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, WireCode::kOk) << resp->error;
  EXPECT_TRUE(resp->echo.present);
  EXPECT_EQ(resp->echo.trace_id, base.trace.trace_id);
  EXPECT_EQ(resp->echo.has_profile, 1);
  Probe("after trace-extension mutants");
}

}  // namespace
}  // namespace smoqe::server
