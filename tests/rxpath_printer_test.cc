#include "src/rxpath/printer.h"

#include <gtest/gtest.h>

#include "src/rxpath/parser.h"

namespace smoqe::rxpath {
namespace {

// Round-trip property: parse → print → parse yields a structurally equal
// AST, and printing is a fixpoint.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  auto p1 = ParseQuery(GetParam());
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  std::string printed = ToString(**p1);
  auto p2 = ParseQuery(printed);
  ASSERT_TRUE(p2.ok()) << "printed form '" << printed
                       << "': " << p2.status().ToString();
  EXPECT_TRUE((*p1)->Equals(**p2))
      << "input '" << GetParam() << "' printed as '" << printed << "'";
  EXPECT_EQ(printed, ToString(**p2));
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "a", "*", ".", "a/b/c", "a | b", "a/b | c/d", "a*",
        "(a/b)*", "(a | b)*", "a/(b | c)/d", "a//b", "//a",
        "a[b]", "a[b/c]", "a[b = 'v']", "a[text() = 'v']",
        "a[@id]", "a[@id = 'x']", "a[b/@k = 'v']",
        "a[b and c]", "a[b or c and d]", "a[(b or c) and d]",
        "a[not(b)]", "a[not(b or c)]", "a[b != 'v']",
        "a[b][c]", "a[b[c = 'x']]",
        "(parent/patient)*/visit",
        "hospital/patient[(parent/patient)*/visit/treatment/test and "
        "visit/treatment[medication = 'headache']]/pname",
        "(a)*[b]", "a[.]", "a[. = 'v']",
        "a/(b/c)*/d", "x/y[z = 'q']/w"));

TEST(PrinterTest, CanonicalForms) {
  auto check = [](std::string_view in, std::string_view want) {
    auto p = ParseQuery(in);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_EQ(ToString(**p), want) << "for input " << in;
  };
  check("a", "a");
  check("/a/b", "a/b");
  check("a//b", "a/(*)*/b");
  check("a[b/text() = 'v']", "a[b = 'v']");
  check("a[b != 'v']", "a[not(b = 'v')]");
  check("a/./b", "a/b");
  check("((a))", "a");
  check("a | (b | c)", "a | b | c");
}

TEST(PrinterTest, QualifierPrinting) {
  auto q = ParseQualifierExpr("not(a = 'x') and (b or c)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ToString(**q), "not(a = 'x') and (b or c)");
}

TEST(PrinterTest, QuotesSwitchWhenValueHasApostrophe) {
  auto p = ParseQuery("a[b = \"it's\"]");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  std::string printed = ToString(**p);
  EXPECT_NE(printed.find("\"it's\""), std::string::npos);
  auto p2 = ParseQuery(printed);
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE((*p)->Equals(**p2));
}

TEST(PrinterTest, TreeSizeCountsNodes) {
  auto p = ParseQuery("a/b[c = 'v']");
  ASSERT_TRUE(p.ok());
  // Seq(a, Pred(b, TextEq(c))) = seq + a + pred + b + qual + c = 6.
  EXPECT_EQ((*p)->TreeSize(), 6u);
}

}  // namespace
}  // namespace smoqe::rxpath
