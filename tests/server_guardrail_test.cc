// Guardrails over the wire (ISSUE PR8 S3): the PR 7 execution
// guardrails — deadlines, memory budgets, admission control, fault
// injection — must surface through smoqed as documented status codes
// (docs/PROTOCOL.md status table), leave no audit record (guard trips
// are not authorization decisions), and never take the server down.
// Also covers the server's own admission layer (per-connection pipeline
// caps) and the disconnect-mid-request path.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/guardrail.h"
#include "src/core/smoqe.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/test_server.h"
#include "src/telemetry/telemetry.h"
#include "tests/server_test_util.h"
#include "tests/test_util.h"

namespace smoqe::server {
namespace {

using testutil2::RawConn;
using testutil2::RawHandshake;
using testutil2::ServerEngineOptions;
using testutil2::SetupHospitalEngine;

// The guardrail_test hot query: one StAX pass over the generated 100k
// node document takes long enough for a 1ms deadline to trip mid-scan.
constexpr char kHotQuery[] =
    "//patient[visit/treatment/medication = 'autism']/pname";

class ServerGuardrailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Instance().Reset();
    engine_ = std::make_unique<core::Smoqe>(ServerEngineOptions());
    SetupHospitalEngine(*engine_, /*gen_nodes=*/0);
    ASSERT_TRUE(
        engine_->GenerateDocument("big", "hospital", /*seed=*/7, 100'000)
            .ok());
    server_ = std::make_unique<TestServer>(engine_.get());
    ASSERT_TRUE(server_->ok()) << server_->start_status().ToString();
  }
  void TearDown() override { fault::FaultInjector::Instance().Reset(); }

  Client MustConnect(const std::string& role = "") {
    ClientOptions o;
    o.port = server_->port();
    o.role = role;
    o.recv_timeout_ms = 60'000;
    auto client = Client::Connect(o);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.MoveValue();
  }

  uint64_t ServerCounter(const char* name) {
    return engine_->telemetry()->registry().GetCounter(name).Value();
  }
  uint64_t AuditTotal() { return engine_->telemetry()->audit().total(); }

  std::unique_ptr<core::Smoqe> engine_;
  std::unique_ptr<TestServer> server_;
};

// Deadline expiry inside the engine comes back as kDeadlineExceeded
// (retryable per PROTOCOL.md), leaves no audit record, and the same
// connection answers the next ungoverned request.
TEST_F(ServerGuardrailTest, DeadlineExpiryIsRetryableAndLeavesNoAudit) {
  const uint64_t audit_before = AuditTotal();
  Client client = MustConnect();

  QueryRequest q;
  q.doc = "big";
  q.query = kHotQuery;
  q.mode = WireEvalMode::kStax;
  q.deadline_ms = 1;
  auto r = client.Query(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->code, WireCode::kDeadlineExceeded) << r->error;
  EXPECT_TRUE(IsRetryable(r->code));
  EXPECT_FALSE(r->error.empty());
  EXPECT_EQ(AuditTotal(), audit_before)
      << "guard trips are not authorization decisions";

  // Same connection, no deadline: full answer.
  q.deadline_ms = 0;
  q.id = 0;  // Client stamps a fresh id
  auto again = client.Query(q);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->code, WireCode::kOk) << again->error;
  // Recovery differential: the answer matches the library's, as if the
  // tripped request never happened.
  core::QueryOptions lib_opts;
  lib_opts.mode = core::EvalMode::kStax;
  auto lib = engine_->Query("big", kHotQuery, lib_opts);
  ASSERT_TRUE(lib.ok());
  EXPECT_EQ(again->answers_xml, lib->answers_xml);
}

// A tiny per-request memory budget trips kResourceExhausted without
// harming the connection or the document.
TEST_F(ServerGuardrailTest, MemoryBudgetTripsResourceExhausted) {
  Client client = MustConnect();
  QueryRequest q;
  q.doc = "big";
  q.query = kHotQuery;
  q.max_memory_bytes = 4096;
  auto r = client.Query(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->code, WireCode::kResourceExhausted) << r->error;
  EXPECT_FALSE(IsRetryable(r->code))
      << "the same request would exceed the same budget again";

  q.max_memory_bytes = 0;
  q.id = 0;
  auto again = client.Query(q);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->code, WireCode::kOk) << again->error;
}

// Governed updates abort pre-publish: the epoch and document visible
// over the wire are untouched after a budget-killed update.
TEST_F(ServerGuardrailTest, BudgetKilledUpdatePublishesNothing) {
  Client client = MustConnect();
  auto epoch_before = engine_->DocumentEpoch("ward");
  ASSERT_TRUE(epoch_before.ok());

  UpdateRequest u;
  u.doc = "ward";
  u.statement = "insert into hospital/patient[pname = 'Carol'] <visit><date>" +
                std::string(1 << 18, 'x') + "</date></visit>";
  u.max_memory_bytes = 1024;
  auto r = client.Update(u);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->code, WireCode::kResourceExhausted) << r->error;

  auto epoch_after = engine_->DocumentEpoch("ward");
  ASSERT_TRUE(epoch_after.ok());
  EXPECT_EQ(*epoch_after, *epoch_before) << "no snapshot may be published";
}

// The server's own admission layer: a connection that pipelines more
// requests than max_pipeline gets deterministic kRejectedBusy replies
// for the overflow — correct ids, documented message — while every
// admitted request still answers.
TEST_F(ServerGuardrailTest, PipelineOverflowRejectsDeterministically) {
  ServerOptions opts = TestServer::DefaultOptions();
  opts.max_pipeline = 1;  // 1 in flight + 1 pending, rest rejected
  core::Smoqe engine(ServerEngineOptions());
  SetupHospitalEngine(engine, /*gen_nodes=*/0);
  ASSERT_TRUE(
      engine.GenerateDocument("big", "hospital", /*seed=*/7, 100'000).ok());
  TestServer server(&engine, opts);
  ASSERT_TRUE(server.ok());

  ClientOptions co;
  co.port = server.port();
  co.recv_timeout_ms = 60'000;
  auto client = Client::Connect(co);
  ASSERT_TRUE(client.ok());

  // One burst: a slow StAX scan followed by 8 quick queries. The scan
  // occupies the in-flight slot, one follower waits, the rest overflow.
  std::string burst;
  std::vector<uint64_t> ids;
  QueryRequest slow;
  slow.id = client->NextId();
  slow.doc = "big";
  slow.query = kHotQuery;
  slow.mode = WireEvalMode::kStax;
  burst += Encode(slow);
  ids.push_back(slow.id);
  for (int i = 0; i < 8; ++i) {
    QueryRequest fast;
    fast.id = client->NextId();
    fast.doc = "ward";
    fast.query = "//pname";
    burst += Encode(fast);
    ids.push_back(fast.id);
  }
  ASSERT_TRUE(client->SendBytes(burst).ok());

  int ok = 0, busy = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto frame = client->ReceiveFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kQueryResult));
    auto resp = DecodeQueryResponse(frame->body);
    ASSERT_TRUE(resp.ok());
    if (resp->code == WireCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp->code, WireCode::kRejectedBusy) << resp->error;
      EXPECT_NE(resp->error.find("pipeline"), std::string::npos);
      EXPECT_TRUE(IsRetryable(resp->code));
      ++busy;
    }
  }
  // Rejections happen inline on the loop thread, so they can outrun the
  // slow query; ids — not arrival order — are the contract. Admitted:
  // the slow scan + max_pipeline pending.
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(busy, 7);
  EXPECT_GE(engine.telemetry()
                ->registry()
                .GetCounter("server.rejected_pipeline")
                .Value(),
            7u);

  // The connection is healthy after the storm.
  QueryRequest probe;
  probe.doc = "ward";
  probe.query = "//pname";
  auto pr = client->Query(probe);
  ASSERT_TRUE(pr.ok());
  EXPECT_EQ(pr->code, WireCode::kOk);
}

// Engine admission control (max_pending_requests) surfaces through the
// server as the same kRejectedBusy the library throws, message intact.
TEST_F(ServerGuardrailTest, EngineAdmissionRejectionCrossesTheWire) {
  core::EngineOptions eo = ServerEngineOptions();
  eo.max_pending_requests = 1;
  core::Smoqe gated(eo);
  SetupHospitalEngine(gated, /*gen_nodes=*/0);
  ASSERT_TRUE(
      gated.GenerateDocument("big", "hospital", /*seed=*/7, 100'000).ok());
  TestServer server(&gated, TestServer::DefaultOptions());
  ASSERT_TRUE(server.ok());

  // Connection A pipelines slow StAX scans to hold the engine's only
  // admission slot; connection B polls until it gets bounced.
  ClientOptions co;
  co.port = server.port();
  co.recv_timeout_ms = 60'000;
  auto slow_client = Client::Connect(co);
  ASSERT_TRUE(slow_client.ok());
  std::string burst;
  int slow_n = 0;
  for (; slow_n < 6; ++slow_n) {
    QueryRequest s;
    s.id = slow_client->NextId();
    s.doc = "big";
    s.query = kHotQuery;
    s.mode = WireEvalMode::kStax;
    burst += Encode(s);
  }
  ASSERT_TRUE(slow_client->SendBytes(burst).ok());

  auto probe_client = Client::Connect(co);
  ASSERT_TRUE(probe_client.ok());
  bool saw_busy = false;
  std::string busy_message;
  for (int i = 0; i < 2000 && !saw_busy; ++i) {
    QueryRequest p;
    p.doc = "ward";
    p.query = "//pname";
    auto r = probe_client->Query(p);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r->code == WireCode::kRejectedBusy) {
      saw_busy = true;
      busy_message = r->error;
    } else {
      ASSERT_EQ(r->code, WireCode::kOk) << r->error;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(saw_busy) << "engine admission never tripped over the wire";
  EXPECT_NE(busy_message.find("max_pending_requests"), std::string::npos);

  // Drain A so the server shuts down cleanly with nothing in flight.
  for (int i = 0; i < slow_n; ++i) {
    auto frame = slow_client->ReceiveFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  }
}

// A client that vanishes mid-request: the server cancels the session's
// token, counts the disconnect, stays alive, and writes no audit record.
TEST_F(ServerGuardrailTest, DisconnectMidRequestCancelsAndServerSurvives) {
  const uint64_t audit_before = AuditTotal();
  const uint64_t disconnects_before =
      ServerCounter("server.disconnects_mid_request");

  {
    RawConn conn;
    ASSERT_TRUE(conn.Dial(server_->port()));
    ASSERT_TRUE(RawHandshake(conn, ""));
    QueryRequest q;
    q.id = 42;
    q.doc = "big";
    q.query = kHotQuery;
    q.mode = WireEvalMode::kStax;
    ASSERT_TRUE(conn.Send(Encode(q)));
    // Give the loop thread a moment to dispatch, then vanish.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    conn.Close();
  }

  // The loop notices the disconnect on its next poll cycle.
  bool counted = false;
  for (int i = 0; i < 2000 && !counted; ++i) {
    counted =
        ServerCounter("server.disconnects_mid_request") > disconnects_before;
    if (!counted) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(counted) << "mid-request disconnect was never counted";

  // Server alive, audit untouched.
  Client client = MustConnect();
  QueryRequest probe;
  probe.doc = "ward";
  probe.query = "//pname";
  auto r = client.Query(probe);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, WireCode::kOk) << r->error;
  EXPECT_EQ(AuditTotal(), audit_before);
}

#ifdef SMOQE_FAULT_INJECTION

// A fault armed at the StAX tokenizer fires through a server request as
// kIOError with the injection message; the next request on the same
// connection answers clean (one-shot fault, engine recovers).
TEST_F(ServerGuardrailTest, InjectedFaultSurfacesAndConnectionSurvives) {
  Client client = MustConnect();
  fault::FaultInjector::Instance().Arm("stax.read", 1);

  QueryRequest q;
  q.doc = "ward";
  q.query = "//pname";
  q.mode = WireEvalMode::kStax;
  auto r = client.Query(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->code, WireCode::kIOError) << r->error;
  EXPECT_NE(r->error.find("injected tokenizer fault"), std::string::npos)
      << r->error;

  q.id = 0;
  auto again = client.Query(q);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->code, WireCode::kOk) << again->error;
  EXPECT_FALSE(again->answers_xml.empty());
}

#endif  // SMOQE_FAULT_INJECTION

}  // namespace
}  // namespace smoqe::server
