#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace smoqe {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "body called for n=0"; });
  std::atomic<int> calls{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
  // Submit with no workers also runs inline, before returning.
  bool ran = false;
  pool.Submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, SubmitAndLatch) {
  ThreadPool pool(3);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      done.fetch_add(1);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, ParallelForBodyRunsConcurrentWorkSafely) {
  // Each iteration appends into its own slot — no synchronization beyond
  // the fork/join itself; TSan validates the join's happens-before edge.
  ThreadPool pool(4);
  constexpr size_t kN = 512;
  std::vector<size_t> results(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) { results[i] = i * i; });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(results[i], i * i);
}

}  // namespace
}  // namespace smoqe
