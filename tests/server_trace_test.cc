// End-to-end wire trace propagation (protocol v2, docs/PROTOCOL.md):
// a client-minted trace id rides a request frame, the server adopts it
// for its own spans (queue_wait, write_flush) around the facade's
// pipeline spans, and the response echoes the id, the server-side
// nanoseconds, and — when asked — a structured PROFILE. One request ⇒
// ONE trace in the recorder, parent-ordered, bracketed by the server
// spans.
//
// The trace is finished by the event loop *after* the response bytes go
// out, so a client that just got its answer may race the recorder —
// every lookup polls (WaitForTrace) instead of asserting immediately.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/smoqe.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/test_server.h"
#include "src/telemetry/profile.h"
#include "src/telemetry/telemetry.h"
#include "tests/server_test_util.h"
#include "tests/test_util.h"

namespace smoqe::server {
namespace {

namespace tel = smoqe::telemetry;
using testutil2::RawConn;
using testutil2::ServerEngineOptions;
using testutil2::SetupHospitalEngine;

std::shared_ptr<const tel::Trace> WaitForTrace(core::Smoqe& engine,
                                               uint64_t id) {
  for (int i = 0; i < 5000; ++i) {
    auto t = engine.telemetry()->traces().Find(id);
    if (t != nullptr) return t;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return nullptr;
}

/// Span-tree invariants every finished server trace must satisfy:
/// parent indices only point backward (a parent exists before its
/// children), the tree starts with the server's queue_wait and ends
/// with its write_flush, and the facade stages sit in between.
void CheckServerSpanTree(const tel::Trace& trace) {
  const std::vector<tel::SpanRecord> spans = trace.spans();
  ASSERT_GE(spans.size(), 3u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].parent, -1) << "span " << i;
    EXPECT_LT(spans[i].parent, static_cast<int32_t>(i))
        << "span " << i << " (" << spans[i].name
        << ") points at a parent that does not precede it";
  }
  EXPECT_EQ(spans.front().name, "queue_wait");
  EXPECT_EQ(spans.back().name, "write_flush");
  bool saw_evaluate = false;
  for (const tel::SpanRecord& s : spans) {
    if (s.name == "evaluate" || s.name == "evaluate.stax_scan") {
      saw_evaluate = true;
    }
  }
  EXPECT_TRUE(saw_evaluate) << "facade stages missing from the wire trace";
}

/// Extracts `"key": <uint>` from a profile JSON (renderer emits one
/// flat object; string-level matching is the test's whole parser).
uint64_t JsonUint(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

/// Sums the "ns" of every ROOT stage ("parent": -1) in the profile's
/// stages array. Nested spans double-count their parents, so only the
/// root sum is bounded by total_ns.
uint64_t RootStageSum(const std::string& json) {
  uint64_t sum = 0;
  size_t pos = json.find("\"stages\": [");
  if (pos == std::string::npos) return 0;
  while ((pos = json.find("{\"name\": ", pos)) != std::string::npos) {
    const size_t end = json.find('}', pos);
    const std::string stage = json.substr(pos, end - pos);
    if (stage.find("\"parent\": -1") != std::string::npos) {
      sum += JsonUint(stage, "ns");
    }
    pos = end;
  }
  return sum;
}

class ServerTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::EngineOptions o = ServerEngineOptions();
    o.slow_query_threshold_ms = 0;  // every request lands in the slow log
    engine_ = std::make_unique<core::Smoqe>(o);
    SetupHospitalEngine(*engine_, /*gen_nodes=*/0);
    server_ = std::make_unique<TestServer>(engine_.get());
    ASSERT_TRUE(server_->ok()) << server_->start_status().ToString();
  }

  Client ConnectAs(const std::string& role) {
    ClientOptions o;
    o.port = server_->port();
    o.role = role;
    o.recv_timeout_ms = 10'000;
    auto client = Client::Connect(o);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.MoveValue();
  }

  std::unique_ptr<core::Smoqe> engine_;
  std::unique_ptr<TestServer> server_;
};

// The tentpole contract: one traced request produces ONE trace under
// the wire id, queue_wait first, facade stages inside, write_flush
// last, role + pipeline depth as attributes, and the echo's server_ns
// covers the facade's portion of the work.
TEST_F(ServerTraceTest, WireTraceIdYieldsSingleParentOrderedSpanTree) {
  Client client = ConnectAs("autism-group");
  QueryRequest req;
  req.doc = "ward";
  req.query = "//patient/pname";
  req.trace.trace_id = 0xDEADBEEFCAFEull;
  auto resp = client.Query(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->code, WireCode::kOk) << resp->error;
  ASSERT_TRUE(resp->echo.present);
  EXPECT_EQ(resp->echo.trace_id, 0xDEADBEEFCAFEull);
  EXPECT_GT(resp->echo.server_ns, 0u);
  EXPECT_EQ(resp->echo.has_profile, 0);  // not asked for

  auto trace = WaitForTrace(*engine_, 0xDEADBEEFCAFEull);
  ASSERT_NE(trace, nullptr) << "trace never finished into the recorder";
  EXPECT_EQ(trace->name(), "server.query");
  CheckServerSpanTree(*trace);

  bool saw_role = false, saw_depth = false;
  for (const auto& [k, v] : trace->attrs()) {
    if (k == "role") {
      saw_role = true;
      EXPECT_EQ(v, "autism-group");
    }
    if (k == "pipeline_depth") {
      saw_depth = true;
      EXPECT_EQ(v, "0");  // sole request: dispatched immediately
    }
  }
  EXPECT_TRUE(saw_role);
  EXPECT_TRUE(saw_depth);

  // Exactly one trace carries the id (Begin didn't fork a second one).
  size_t matches = 0;
  for (const auto& t : engine_->telemetry()->traces().Recent(64)) {
    if (t->id() == 0xDEADBEEFCAFEull) ++matches;
  }
  EXPECT_EQ(matches, 1u);
}

// PROFILE: the echoed JSON is internally consistent — total_ns equals
// the echoed server_ns, the root stages (queue_wait + pipeline) fit
// inside it, and the catalog fields match what was asked.
TEST_F(ServerTraceTest, ProfileTotalsCoverRootStages) {
  Client client = ConnectAs("autism-group");
  QueryRequest req;
  req.doc = "ward";
  req.query = "//patient/pname";
  req.trace.trace_id = 77;
  req.trace.flags = kTraceFlagProfile;
  auto resp = client.Query(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->code, WireCode::kOk) << resp->error;
  ASSERT_TRUE(resp->echo.present);
  ASSERT_EQ(resp->echo.has_profile, 1);
  const std::string& p = resp->echo.profile_json;

  EXPECT_EQ(JsonUint(p, "trace_id"), 77u);
  EXPECT_EQ(JsonUint(p, "total_ns"), resp->echo.server_ns);
  EXPECT_GT(JsonUint(p, "guard_ticks"), 0u);
  EXPECT_NE(p.find("\"op\": \"query\""), std::string::npos);
  EXPECT_NE(p.find("\"doc\": \"ward\""), std::string::npos);
  EXPECT_NE(p.find("\"view\": \"autism-group\""), std::string::npos);
  EXPECT_NE(p.find("\"canonical_query\": \""), std::string::npos);
  EXPECT_NE(p.find("\"plan_cache_hit\": "), std::string::npos);
  EXPECT_NE(p.find("\"queue_wait\""), std::string::npos);

  const uint64_t root_sum = RootStageSum(p);
  EXPECT_GT(root_sum, 0u);
  EXPECT_LE(root_sum, JsonUint(p, "total_ns"))
      << "root stages overflow the server-side total in " << p;

  // Second identical query: the profile must flip to a plan-cache hit.
  auto resp2 = client.Query(req);
  ASSERT_TRUE(resp2.ok());
  ASSERT_EQ(resp2->echo.has_profile, 1);
  EXPECT_NE(resp2->echo.profile_json.find("\"plan_cache_hit\": true"),
            std::string::npos);
}

// Batch PROFILE rides on the batch response once (the facade pins it to
// the first answer); per-item spans land in the same wire trace.
TEST_F(ServerTraceTest, BatchProfileRidesOnce) {
  Client client = ConnectAs("autism-group");
  QueryBatchRequest req;
  req.doc = "ward";
  req.items.push_back({"//patient/pname", WireEvalMode::kDom, 0});
  req.items.push_back({"//treatment", WireEvalMode::kStax, 0});
  req.trace.trace_id = 88;
  req.trace.flags = kTraceFlagProfile;
  auto resp = client.QueryBatch(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->code, WireCode::kOk) << resp->error;
  ASSERT_TRUE(resp->echo.present);
  EXPECT_EQ(resp->echo.trace_id, 88u);
  ASSERT_EQ(resp->echo.has_profile, 1);
  EXPECT_NE(resp->echo.profile_json.find("\"op\": \"query_batch\""),
            std::string::npos);
  EXPECT_EQ(JsonUint(resp->echo.profile_json, "total_ns"),
            resp->echo.server_ns);

  auto trace = WaitForTrace(*engine_, 88);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->name(), "server.query_batch");
  CheckServerSpanTree(*trace);
}

// Updates echo id + timing but never a profile, even when asked.
TEST_F(ServerTraceTest, UpdateEchoCarriesNoProfile) {
  Client client = ConnectAs("research-group");
  UpdateRequest req;
  req.doc = "ward";
  req.statement = "delete //treatment[medication = 'nosuch']";
  req.dry_run = 1;
  req.trace.trace_id = 99;
  req.trace.flags = kTraceFlagProfile;
  auto resp = client.Update(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->echo.present);
  EXPECT_EQ(resp->echo.trace_id, 99u);
  EXPECT_GT(resp->echo.server_ns, 0u);
  EXPECT_EQ(resp->echo.has_profile, 0);
  auto trace = WaitForTrace(*engine_, 99);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->name(), "server.update");
}

// Error responses carry the echo too — a failed request is exactly the
// one the caller wants to correlate.
TEST_F(ServerTraceTest, ErrorResponsesStillEchoTheTrace) {
  Client client = ConnectAs("autism-group");
  QueryRequest req;
  req.doc = "no-such-doc";
  req.query = "//pname";
  req.trace.trace_id = 123;
  auto resp = client.Query(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_NE(resp->code, WireCode::kOk);
  ASSERT_TRUE(resp->echo.present);
  EXPECT_EQ(resp->echo.trace_id, 123u);
  EXPECT_GT(resp->echo.server_ns, 0u);
  EXPECT_EQ(resp->echo.has_profile, 0);
}

// Pipelined requests on one connection: distinct ids in, responses in
// request order each echoing its own id, and the queued ones report a
// non-zero pipeline depth in their traces.
TEST_F(ServerTraceTest, PipelinedRequestsKeepTraceIdsDistinct) {
  RawConn conn;
  ASSERT_TRUE(conn.Dial(server_->port()));
  ASSERT_TRUE(testutil2::RawHandshake(conn, "autism-group"));

  constexpr uint64_t kBase = 5000;
  constexpr int kRequests = 8;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    QueryRequest req;
    req.id = static_cast<uint64_t>(i) + 1;
    req.doc = "ward";
    req.query = "//patient/pname";
    req.trace.trace_id = kBase + static_cast<uint64_t>(i);
    burst += Encode(req);
  }
  ASSERT_TRUE(conn.Send(burst));
  for (int i = 0; i < kRequests; ++i) {
    RawFrame f;
    ASSERT_EQ(conn.Recv(&f, 10'000), RawConn::RecvResult::kFrame) << i;
    auto resp = DecodeQueryResponse(f.body);
    ASSERT_TRUE(resp.ok()) << i;
    EXPECT_EQ(resp->id, static_cast<uint64_t>(i) + 1);
    ASSERT_TRUE(resp->echo.present) << i;
    EXPECT_EQ(resp->echo.trace_id, kBase + static_cast<uint64_t>(i)) << i;
  }
  bool saw_queued = false;
  for (int i = 0; i < kRequests; ++i) {
    auto trace = WaitForTrace(*engine_, kBase + static_cast<uint64_t>(i));
    ASSERT_NE(trace, nullptr) << i;
    CheckServerSpanTree(*trace);
    for (const auto& [k, v] : trace->attrs()) {
      if (k == "pipeline_depth" && v != "0") saw_queued = true;
    }
  }
  EXPECT_TRUE(saw_queued)
      << "a burst of 8 should have queued at least one request";
}

// Concurrent connections (the TSan target): distinct roles and ids from
// four threads, every echo correct, every trace finished. Exercises the
// worker-pool trace handoff and the per-role counters under contention.
TEST_F(ServerTraceTest, ConcurrentConnectionsTraceIndependently) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string role = t % 2 == 0 ? "autism-group" : "research-group";
      ClientOptions o;
      o.port = server_->port();
      o.role = role;
      o.recv_timeout_ms = 10'000;
      auto client = Client::Connect(o);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kPerThread; ++i) {
        QueryRequest req;
        req.doc = "ward";
        req.query = "//patient/pname";
        req.trace.trace_id =
            10'000ull + static_cast<uint64_t>(t) * 1000 + i;
        if (i % 4 == 0) req.trace.flags = kTraceFlagProfile;
        auto resp = client->Query(req);
        if (!resp.ok() || resp->code != WireCode::kOk ||
            !resp->echo.present ||
            resp->echo.trace_id != req.trace.trace_id) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Spot-check one id per thread made it into the recorder.
  for (int t = 0; t < kThreads; ++t) {
    auto trace =
        WaitForTrace(*engine_, 10'000ull + static_cast<uint64_t>(t) * 1000);
    EXPECT_NE(trace, nullptr) << "thread " << t;
  }
}

// v1 compatibility: a client that handshakes at version 1 gets v1-exact
// response bytes — no trailing echo block — even on a server that
// speaks v2, and the banner echoes the negotiated version back.
TEST_F(ServerTraceTest, V1ClientsGetExtensionlessResponses) {
  RawConn conn;
  ASSERT_TRUE(conn.Dial(server_->port()));
  HelloRequest hello;
  hello.id = 0;
  hello.version = 1;
  hello.role = "autism-group";
  ASSERT_TRUE(conn.Send(Encode(hello)));
  RawFrame f;
  ASSERT_EQ(conn.Recv(&f, 10'000), RawConn::RecvResult::kFrame);
  auto banner = DecodeHelloResponse(f.body);
  ASSERT_TRUE(banner.ok());
  ASSERT_EQ(banner->code, WireCode::kOk) << banner->message;
  EXPECT_NE(banner->message.find("smoqed protocol 1"), std::string::npos)
      << banner->message;

  // Even a request that *carries* a trace block (a confused middlebox,
  // a replayed v2 frame) is answered v1-plain on this connection.
  QueryRequest req;
  req.id = 1;
  req.doc = "ward";
  req.query = "//patient/pname";
  req.trace.trace_id = 31337;
  ASSERT_TRUE(conn.Send(Encode(req)));
  ASSERT_EQ(conn.Recv(&f, 10'000), RawConn::RecvResult::kFrame);
  auto resp = DecodeQueryResponse(f.body);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, WireCode::kOk) << resp->error;
  EXPECT_FALSE(resp->echo.present)
      << "v1 connection must never receive the v2 echo block";
  EXPECT_EQ(engine_->telemetry()->traces().Find(31337), nullptr)
      << "v1 connection must not adopt wire trace ids";
}

// Version negotiation bounds: 0 and (max+1) rejected with the range in
// the message; both in-range versions accepted.
TEST_F(ServerTraceTest, HandshakeAcceptsExactlyTheVersionRange) {
  for (uint32_t v : {kMinProtocolVersion, kProtocolVersion}) {
    RawConn conn;
    ASSERT_TRUE(conn.Dial(server_->port()));
    HelloRequest hello;
    hello.version = v;
    hello.role = "autism-group";
    ASSERT_TRUE(conn.Send(Encode(hello)));
    RawFrame f;
    ASSERT_EQ(conn.Recv(&f, 10'000), RawConn::RecvResult::kFrame);
    auto resp = DecodeHelloResponse(f.body);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, WireCode::kOk) << "version " << v;
  }
  for (uint32_t v : {0u, kProtocolVersion + 1}) {
    RawConn conn;
    ASSERT_TRUE(conn.Dial(server_->port()));
    HelloRequest hello;
    hello.version = v;
    hello.role = "autism-group";
    ASSERT_TRUE(conn.Send(Encode(hello)));
    RawFrame f;
    ASSERT_EQ(conn.Recv(&f, 10'000), RawConn::RecvResult::kFrame);
    auto resp = DecodeHelloResponse(f.body);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, WireCode::kFailedPrecondition) << "version " << v;
    EXPECT_NE(resp->message.find(".."), std::string::npos)
        << "rejection should state the accepted range: " << resp->message;
  }
}

// Satellite: the audit log's trace ids are the WIRE ids — the security
// trail correlates with the client's own logs, not a server-local id.
TEST_F(ServerTraceTest, AuditRecordsCarryWireTraceIds) {
  Client client = ConnectAs("autism-group");
  QueryRequest req;
  req.doc = "ward";
  req.query = "//patient/pname";
  req.trace.trace_id = 0xA0D17ull;
  auto resp = client.Query(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, WireCode::kOk) << resp->error;

  bool found = false;
  for (const auto& rec : engine_->telemetry()->audit().Query()) {
    if (rec.trace_id == 0xA0D17ull) {
      found = true;
      EXPECT_EQ(rec.view, "autism-group");
      EXPECT_TRUE(rec.allowed);
    }
  }
  EXPECT_TRUE(found) << "no audit record carries the wire trace id";
}

// Satellite: per-role request counters and the pipeline-depth histogram
// appear in the same DumpMetrics tree as the engine metrics, and the
// slow log (threshold 0 here) drains over the new STAT sub-command with
// role + trace id attached.
TEST_F(ServerTraceTest, RoleCountersAndSlowLogLandInOneDump) {
  {
    Client nurse = ConnectAs("autism-group");
    Client direct = ConnectAs("");
    QueryRequest req;
    req.doc = "ward";
    req.query = "//patient/pname";
    req.trace.trace_id = 4242;
    for (int i = 0; i < 3; ++i) {
      auto r = nurse.Query(req);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r->code, WireCode::kOk) << r->error;
    }
    req.trace.trace_id = 0;
    auto r = direct.Query(req);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->code, WireCode::kOk) << r->error;

    // Live dump over STAT sees server.* and engine metrics together.
    auto stat = direct.Stat(StatFormat::kJson);
    ASSERT_TRUE(stat.ok());
    ASSERT_EQ(stat->code, WireCode::kOk);
    const std::string& dump = stat->payload;
    EXPECT_NE(dump.find("\"server.requests_by_role.autism-group\": 3"),
              std::string::npos)
        << dump;
    // The direct role counted its query + this STAT request.
    EXPECT_NE(dump.find("\"server.requests_by_role.direct\": 2"),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("\"server.pipeline_depth\""), std::string::npos);
    EXPECT_NE(dump.find("\"query.count\""), std::string::npos);

    // In-process render is the same tree: identical metric-name sets
    // (values keep moving — the STAT request itself records its own
    // latency after rendering the dump — but no key may differ).
    auto keys = [](const std::string& d) {
      std::vector<std::string> out;
      size_t pos = 0;
      while ((pos = d.find('"', pos)) != std::string::npos) {
        const size_t end = d.find('"', pos + 1);
        if (end == std::string::npos) break;
        const std::string name = d.substr(pos + 1, end - pos - 1);
        if (name.find('.') != std::string::npos) out.push_back(name);
        pos = end + 1;
      }
      return out;
    };
    EXPECT_EQ(keys(dump), keys(engine_->DumpMetrics(tel::DumpFormat::kJson)));

    // Slow log over the wire: threshold 0 logged everything, with the
    // role and the wire trace id attached.
    auto slow = direct.Stat(StatFormat::kSlow);
    ASSERT_TRUE(slow.ok());
    ASSERT_EQ(slow->code, WireCode::kOk);
    EXPECT_NE(slow->payload.find("\"role\": \"autism-group\""),
              std::string::npos)
        << slow->payload;
    EXPECT_NE(slow->payload.find("\"trace_id\": 4242"), std::string::npos)
        << slow->payload;
    EXPECT_EQ(slow->payload, engine_->DumpSlowQueries());
  }
}

}  // namespace
}  // namespace smoqe::server
