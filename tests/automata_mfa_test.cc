#include "src/automata/mfa.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace smoqe::automata {
namespace {

using testutil::MustQuery;

Mfa MustCompile(std::string_view q,
                std::shared_ptr<xml::NameTable> names = nullptr) {
  if (names == nullptr) names = xml::NameTable::Create();
  auto query = MustQuery(q);
  auto mfa = Mfa::Compile(*query, std::move(names));
  EXPECT_TRUE(mfa.ok()) << mfa.status().ToString();
  return mfa.MoveValue();
}

TEST(LabelTestTest, Matching) {
  EXPECT_TRUE(LabelTest::Wildcard().Matches(3));
  EXPECT_TRUE(LabelTest::Name(3).Matches(3));
  EXPECT_FALSE(LabelTest::Name(3).Matches(4));
  EXPECT_TRUE(LabelTest::Wildcard() == LabelTest::Wildcard());
  EXPECT_FALSE(LabelTest::Wildcard() == LabelTest::Name(1));
  EXPECT_TRUE(LabelTest::Name(2) == LabelTest::Name(2));
}

TEST(MergePredSetsTest, SetUnion) {
  EXPECT_EQ(MergePredSets({1, 3}, {2, 3}), (PredSet{1, 2, 3}));
  EXPECT_EQ(MergePredSets({}, {5}), (PredSet{5}));
  EXPECT_EQ(MergePredSets({}, {}), (PredSet{}));
}

TEST(MfaTest, SimplePathHasNoPredicates) {
  Mfa m = MustCompile("a/b/c");
  EXPECT_TRUE(m.preds().empty());
  EXPECT_TRUE(m.obligations().empty());
  // Accepting runs exist (liveness reaches the final state).
  EXPECT_GE(m.TotalStates(), 4u);
  EXPECT_GE(m.TotalTransitions(), 3u);
}

TEST(MfaTest, PredicateCompilesToAnnotations) {
  Mfa m = MustCompile("a[b = 'v']/c");
  ASSERT_EQ(m.preds().size(), 1u);
  ASSERT_EQ(m.obligations().size(), 1u);
  EXPECT_EQ(m.obligations()[0].test.kind, AcceptTest::Kind::kTextEq);
  EXPECT_EQ(m.obligations()[0].test.value, "v");
  EXPECT_EQ(m.preds()[0].description, "b = 'v'");
  ASSERT_EQ(m.preds()[0].leaf_obligations.size(), 1u);
}

TEST(MfaTest, NestedPredicatesNestInTables) {
  Mfa m = MustCompile("a[b[c]/d]");
  // Outer pred over path b[c]/d; inner pred over path c.
  EXPECT_EQ(m.preds().size(), 2u);
  EXPECT_EQ(m.obligations().size(), 2u);
}

TEST(MfaTest, BooleanStructure) {
  Mfa m = MustCompile("a[x and not(y or z)]");
  ASSERT_EQ(m.preds().size(), 1u);
  const Pred& p = m.preds()[0];
  EXPECT_EQ(p.leaf_obligations.size(), 3u);
  // Evaluate the boolean tree directly.
  EXPECT_TRUE(p.Evaluate({true, false, false}));   // x ∧ ¬(y ∨ z)
  EXPECT_FALSE(p.Evaluate({true, true, false}));
  EXPECT_FALSE(p.Evaluate({true, false, true}));
  EXPECT_FALSE(p.Evaluate({false, false, false}));
}

TEST(MfaTest, AttrTests) {
  Mfa m = MustCompile("a[@id = 'x' and b/@k]");
  ASSERT_EQ(m.obligations().size(), 2u);
  EXPECT_EQ(m.obligations()[0].test.kind, AcceptTest::Kind::kAttrEq);
  EXPECT_EQ(m.obligations()[0].test.value, "x");
  EXPECT_EQ(m.obligations()[1].test.kind, AcceptTest::Kind::kAttrExists);
}

TEST(MfaTest, SizeLinearInQuery) {
  // The paper's complexity claim: |MFA| = O(|Q|). Grow a chain query and
  // check states grow linearly (ratio bounded), not exponentially.
  std::shared_ptr<xml::NameTable> names = xml::NameTable::Create();
  std::vector<size_t> sizes;
  for (int k = 1; k <= 16; ++k) {
    std::string q = "a0";
    for (int i = 1; i < k; ++i) q += "/a" + std::to_string(i % 7);
    q += "[b = 'v']";
    sizes.push_back(MustCompile(q, names).TotalStates());
  }
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LE(sizes[i], sizes[i - 1] + 8) << "growth must be additive";
  }
}

TEST(MfaTest, NecessaryLabelsOfStar) {
  // (a/b)*/c can accept via c alone (zero star iterations), so only c is
  // necessary from the start state.
  std::shared_ptr<xml::NameTable> names = xml::NameTable::Create();
  Mfa m = MustCompile("(a/b)*/c", names);
  const FlatNfa& sel = m.selection();
  int start = sel.initial[0].first;
  ASSERT_EQ(sel.states[start].necessary_labels.size(), 1u);
  EXPECT_EQ(sel.states[start].necessary_labels[0], names->Lookup("c"));
}

TEST(MfaTest, NecessaryLabelsOfChainAndDescendant) {
  std::shared_ptr<xml::NameTable> names = xml::NameTable::Create();
  Mfa m = MustCompile("a/b/c", names);
  const FlatNfa& sel = m.selection();
  int start = sel.initial[0].first;
  // Every accepting path consumes a, b and c.
  EXPECT_EQ(sel.states[start].necessary_labels.size(), 3u);

  // a//c: the wildcard loop contributes nothing, but a and c remain
  // necessary — this is what lets TAX prune under '//' queries.
  Mfa m2 = MustCompile("a//c", names);
  const FlatNfa& sel2 = m2.selection();
  std::vector<xml::NameId> want = {names->Lookup("a"), names->Lookup("c")};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(sel2.states[sel2.initial[0].first].necessary_labels, want);

  // //* accepts via any element: nothing is necessary.
  Mfa m3 = MustCompile("//*", names);
  const FlatNfa& sel3 = m3.selection();
  EXPECT_TRUE(
      sel3.states[sel3.initial[0].first].necessary_labels.empty());
}

TEST(MfaTest, WildcardTransitions) {
  Mfa m = MustCompile("*/a");
  const FlatNfa& sel = m.selection();
  int start = sel.initial[0].first;
  ASSERT_FALSE(sel.states[start].trans.empty());
  EXPECT_TRUE(sel.states[start].trans[0].test.wildcard);
}

TEST(MfaTest, EmptyQuerySelectsContext) {
  Mfa m = MustCompile(".");
  EXPECT_FALSE(m.selection().initial_accept_guards.empty());
}

TEST(MfaTest, DumpsMentionStructure) {
  Mfa m = MustCompile("hospital/patient[medication = 'autism']/pname");
  std::string s = m.ToString();
  EXPECT_NE(s.find("selection NFA"), std::string::npos);
  EXPECT_NE(s.find("medication = 'autism'"), std::string::npos);
  EXPECT_NE(s.find("text='autism'"), std::string::npos);
  std::string dot = m.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST(MfaTest, CompileRequiresNames) {
  auto q = MustQuery("a");
  auto r = Mfa::Compile(*q, nullptr);
  EXPECT_FALSE(r.ok());
}

TEST(FlatNfaTest, EpsilonChainsFoldAnnotationsIntoGuards) {
  // Hand-built: s0 -ε-> s1(ann P0) -a-> s2(accept), so the flat automaton
  // must charge P0 at the source of the 'a' transition.
  BuildNfa b;
  int s0 = b.AddState();
  int s1 = b.AddState();
  int s2 = b.AddState();
  b.AddEps(s0, s1);
  b.Annotate(s1, 0);
  b.AddTransition(s1, LabelTest::Name(7), s2);
  std::vector<bool> accepting = {false, false, true};
  FlatNfa flat = FlatNfa::Flatten(b, s0, accepting);
  ASSERT_FALSE(flat.states[s0].trans.empty());
  EXPECT_EQ(flat.states[s0].trans[0].src_preds, (PredSet{0}));
  EXPECT_TRUE(flat.states[s0].trans[0].dst_preds.empty());
}

TEST(FlatNfaTest, AcceptGuardsFromEpsilonPaths) {
  // s0 -ε-> s1(ann P1, accepting): s0 accepts under guard {P1}.
  BuildNfa b;
  int s0 = b.AddState();
  int s1 = b.AddState();
  b.AddEps(s0, s1);
  b.Annotate(s1, 1);
  std::vector<bool> accepting = {false, true};
  FlatNfa flat = FlatNfa::Flatten(b, s0, accepting);
  ASSERT_EQ(flat.states[s0].accept_guards.size(), 1u);
  EXPECT_EQ(flat.states[s0].accept_guards[0], (PredSet{1}));
}

TEST(FlatNfaTest, DominanceDropsStrongerGuards) {
  // Two ε paths to the same accepting state: one charges P0, one charges
  // nothing — only the unconditional alternative survives.
  BuildNfa b;
  int s0 = b.AddState();
  int mid = b.AddState();
  int acc = b.AddState();
  b.AddEps(s0, acc);
  b.AddEps(s0, mid);
  b.Annotate(mid, 0);
  b.AddEps(mid, acc);
  std::vector<bool> accepting = {false, false, true};
  FlatNfa flat = FlatNfa::Flatten(b, s0, accepting);
  ASSERT_EQ(flat.states[s0].accept_guards.size(), 1u);
  EXPECT_TRUE(flat.states[s0].accept_guards[0].empty());
}

TEST(FlatNfaTest, DeadStatesPruned) {
  // s0 -a-> s1 (dead end, not accepting): the transition must be dropped.
  BuildNfa b;
  int s0 = b.AddState();
  int s1 = b.AddState();
  int s2 = b.AddState();
  b.AddTransition(s0, LabelTest::Name(1), s1);
  b.AddTransition(s0, LabelTest::Name(2), s2);
  std::vector<bool> accepting = {false, false, true};
  FlatNfa flat = FlatNfa::Flatten(b, s0, accepting);
  ASSERT_EQ(flat.states[s0].trans.size(), 1u);
  EXPECT_EQ(flat.states[s0].trans[0].target, s2);
  EXPECT_FALSE(flat.states[s1].live);
}

}  // namespace
}  // namespace smoqe::automata
