// Randomized differential suite for incremental maintenance (acceptance
// gate of the update subsystem): over random hospital documents and
// random edit scripts,
//
//  * incremental TAX repair ≡ TaxIndex::Build of the mutated tree,
//  * the mutated DOM keeps every structural invariant (pre-order ranks,
//    DTD validity, stable ids) and evaluates identically to a fresh
//    parse of its serialization,
//  * epochs count applied scripts exactly,
//  * facade-level: cached materializations always equal fresh ones.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/smoqe.h"
#include "src/eval/hype_dom.h"
#include "src/index/tax.h"
#include "src/update/applier.h"
#include "src/update/update_lang.h"
#include "src/workload/workloads.h"
#include "src/xml/dtd_validator.h"
#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace smoqe::update {
namespace {

using testutil::MustDtd;
using testutil::MustQuery;

/// Update statements a random script draws from. All fragments conform to
/// the hospital DTD; targets cover leaf swaps, optional-child deletes,
/// grafts of whole subtrees and recursive genealogy extension.
const std::vector<const char*>& StatementPool() {
  static const std::vector<const char*> pool = {
      "insert into //patient[not(visit)] "
      "<visit><treatment><medication>flu</medication></treatment>"
      "<date>dx</date></visit>",
      "insert into hospital/patient "
      "<parent><patient><pname>Gran</pname></patient></parent>",
      "insert into hospital "
      "<patient><pname>New</pname><visit><treatment><test>blood</test>"
      "</treatment><date>dn</date></visit></patient>",
      "delete //patient/visit[treatment/medication = 'cold']",
      "delete //parent[patient[not(visit) and not(parent)]]",
      "delete hospital/patient[pname = 'Eve']",
      "replace //medication[. = 'headache'] with <medication>zzz</medication>",
      "replace //treatment[test] with "
      "<treatment><medication>generic</medication></treatment>",
      "replace //visit[date = 'dx'] with "
      "<visit><treatment><test>xray</test></treatment><date>dy</date></visit>",
  };
  return pool;
}

void CheckOrderInvariant(const xml::Document& doc) {
  int32_t expected = 0;
  std::vector<const xml::Node*> stack = {doc.root()};
  std::vector<const xml::Node*> open;
  while (!stack.empty()) {
    const xml::Node* n = stack.back();
    stack.pop_back();
    if (n == nullptr) {
      ASSERT_EQ(open.back()->subtree_end, expected);
      open.pop_back();
      continue;
    }
    ASSERT_EQ(n->order, expected);
    ++expected;
    open.push_back(n);
    stack.push_back(nullptr);
    std::vector<const xml::Node*> kids;
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
}

/// Serialized answers of `query` — comparable across documents with
/// different id assignments.
std::vector<std::string> AnswersOf(const xml::Document& doc,
                                   const char* query) {
  rxpath::NaiveEvaluator eval(doc);
  std::vector<std::string> out;
  for (const xml::Node* n : eval.Eval(*MustQuery(query))) {
    out.push_back(xml::SerializeNode(n, *doc.names()));
  }
  return out;
}

TEST(UpdateMaintenance, RandomizedIncrementalTaxEqualsRebuild) {
  xml::Dtd dtd = MustDtd(testutil::kHospitalDtd, "hospital");
  const std::vector<const char*> check_queries = {
      "//patient", "//medication", "//patient[visit/treatment/test]",
      "hospital/patient/(parent/patient)*/pname",
      "//visit[treatment/medication = 'flu']"};

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto names = xml::NameTable::Create();
    xml::Document doc = testutil::GenHospital(seed * 77, 400, names);
    index::TaxIndex tax = index::TaxIndex::Build(doc);
    Rng rng(seed);
    uint64_t epochs = 0;

    for (int round = 0; round < 12; ++round) {
      const char* text =
          StatementPool()[rng.Next() % StatementPool().size()];
      auto stmt = ParseUpdate(text, names);
      ASSERT_TRUE(stmt.ok()) << text;

      rxpath::NaiveEvaluator eval(doc);
      std::vector<ResolvedEdit> script;
      for (const xml::Node* n : eval.Eval(*stmt->target)) {
        script.push_back(ResolvedEdit{
            stmt->kind, doc.mutable_node(n->node_id),
            stmt->fragment.has_value() ? &*stmt->fragment : nullptr});
      }
      if (script.empty()) continue;

      ApplierOptions opts;
      opts.dtd = &dtd;
      opts.tax = &tax;
      UpdateApplier applier(&doc, opts);
      auto stats = applier.Run(script);
      ASSERT_TRUE(stats.ok())
          << text << " (seed " << seed << "): " << stats.status().ToString();
      ++epochs;
      ASSERT_EQ(doc.epoch(), epochs);

      // Incremental repair ≡ full rebuild, every round.
      index::TaxIndex rebuilt = index::TaxIndex::Build(doc);
      ASSERT_TRUE(tax.EquivalentTo(rebuilt))
          << "TAX divergence after '" << text << "' (seed " << seed
          << ", round " << round << ")";

      // Structural invariants of the mutated tree.
      CheckOrderInvariant(doc);
      ASSERT_TRUE(xml::ValidateDocument(doc, dtd).ok()) << text;
    }

    // The mutated document answers queries exactly like a fresh parse of
    // its own serialization (orders/intervals fully consistent)...
    std::string serialized = xml::SerializeDocument(doc);
    xml::Document fresh = testutil::MustDoc(serialized);
    for (const char* q : check_queries) {
      EXPECT_EQ(AnswersOf(doc, q), AnswersOf(fresh, q)) << q;
    }
    // ...and the optimized evaluator agrees with the reference on the
    // mutated tree, with and without the repaired TAX index.
    for (const char* q : check_queries) {
      auto mfa = automata::Mfa::Compile(*MustQuery(q), names);
      ASSERT_TRUE(mfa.ok());
      eval::DomEvalOptions dom_opts;
      auto plain = eval::EvalHypeDom(*mfa, doc, dom_opts);
      ASSERT_TRUE(plain.ok());
      dom_opts.tax = &tax;
      auto pruned = eval::EvalHypeDom(*mfa, doc, dom_opts);
      ASSERT_TRUE(pruned.ok());
      std::vector<int32_t> naive_ids = testutil::NaiveIds(doc, *MustQuery(q));
      EXPECT_EQ(testutil::IdsOf(plain->answers), naive_ids) << q;
      EXPECT_EQ(testutil::IdsOf(pruned->answers), naive_ids) << q << " (tax)";
    }
  }
}

TEST(UpdateMaintenance, FacadeCachedViewsAlwaysMatchFreshMaterialization) {
  core::Smoqe engine;
  ASSERT_TRUE(
      engine.RegisterDtd("hospital", workload::kHospitalDtd, "hospital").ok());
  ASSERT_TRUE(engine.GenerateDocument("ward", "hospital", 4242, 300).ok());
  ASSERT_TRUE(engine
                  .DefineView("research", "hospital",
                              "patient/pname : N;\n"
                              "patient/visit : N;\n"
                              "visit/treatment : Y;\n"
                              "treatment/test : Y;\n")
                  .ok());
  ASSERT_TRUE(engine.BuildIndex("ward").ok());

  core::UpdateOptions direct;
  direct.dtd_name = "hospital";
  Rng rng(99);
  uint64_t applied = 0;
  for (int round = 0; round < 10; ++round) {
    // Touch the cache, update, compare the re-served cache against a
    // from-scratch materialization through a throwaway engine state
    // (bypass: DocumentXml → fresh doc → fresh view).
    auto cached = engine.MaterializeView("ward", "research");
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();

    const char* text = StatementPool()[rng.Next() % StatementPool().size()];
    auto r = engine.Update("ward", text, direct);
    ASSERT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    if (r->stats.edits_applied > 0) ++applied;
    EXPECT_EQ(*engine.DocumentEpoch("ward"), applied);

    auto after = engine.MaterializeView("ward", "research");
    ASSERT_TRUE(after.ok());
    // Reference: materialize the same view over a freshly loaded copy of
    // the mutated document.
    core::Smoqe fresh;
    ASSERT_TRUE(
        fresh.RegisterDtd("hospital", workload::kHospitalDtd, "hospital")
            .ok());
    ASSERT_TRUE(
        fresh.LoadDocument("copy", *engine.DocumentXml("ward")).ok());
    ASSERT_TRUE(fresh
                    .DefineView("research", "hospital",
                                "patient/pname : N;\n"
                                "patient/visit : N;\n"
                                "visit/treatment : Y;\n"
                                "treatment/test : Y;\n")
                    .ok());
    auto expect = fresh.MaterializeView("copy", "research");
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ(after->xml, expect->xml)
        << "view cache diverged after '" << text << "'";
  }
}

}  // namespace
}  // namespace smoqe::update
