// PROFILE model + slow-query log unit tests, and the in-process
// differential that anchors the observability surface: a profiled
// query's total_ns is the SAME number the latency histogram recorded,
// so the per-request view (PROFILE) and the aggregate view (metrics)
// can never drift apart.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/smoqe.h"
#include "src/telemetry/profile.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "tests/server_test_util.h"
#include "tests/test_util.h"

namespace smoqe::telemetry {
namespace {

TEST(ProfileRendererTest, JsonCarriesEveryField) {
  Profile p;
  p.trace_id = 42;
  p.op = "query";
  p.doc = "ward";
  p.view = "nurses";
  p.statement = "//pname";
  p.canonical_query = "(*)*/pname";
  p.plan_cache_hit = true;
  p.doc_epoch = 3;
  p.total_ns = 1000;
  p.guard_ticks = 7;
  p.stages.push_back({"parse", -1, 200});
  p.stages.push_back({"evaluate", -1, 700});
  p.stages.push_back({"item 0", 1, 650});
  const std::string json = ProfileRenderer::Json(p);
  EXPECT_NE(json.find("\"trace_id\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"op\": \"query\""), std::string::npos);
  EXPECT_NE(json.find("\"canonical_query\": \"(*)*/pname\""),
            std::string::npos);
  EXPECT_NE(json.find("\"plan_cache_hit\": true"), std::string::npos);
  EXPECT_NE(json.find("\"doc_epoch\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"guard_ticks\": 7"), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"item 0\", \"parent\": 1, \"ns\": 650}"),
            std::string::npos);
  const std::string text = ProfileRenderer::Text(p);
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("evaluate"), std::string::npos);
}

TEST(SlowQueryLogTest, BoundedRingEvictsOldestAndKeepsSeq) {
  SlowQueryLog log(/*capacity=*/2);
  ASSERT_TRUE(log.enabled());
  for (int i = 0; i < 3; ++i) {
    Profile p;
    p.op = "query";
    p.total_ns = 100 + static_cast<uint64_t>(i);
    EXPECT_GT(log.Append(std::move(p), "nurses", /*threshold_ns=*/0), 0u);
  }
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.dropped(), 1u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].seq, entries[1].seq);  // strictly increasing
  EXPECT_EQ(entries[0].profile.total_ns, 101u);  // oldest (100) evicted
  EXPECT_EQ(entries[0].role, "nurses");
  const std::string json = log.RenderJson();
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  EXPECT_NE(json.find("\"seq\": "), std::string::npos);
  EXPECT_NE(json.find("\"threshold_ns\": 0"), std::string::npos);
}

TEST(SlowQueryLogTest, ZeroCapacityDisablesAppend) {
  SlowQueryLog log(/*capacity=*/0);
  EXPECT_FALSE(log.enabled());
  Profile p;
  EXPECT_EQ(log.Append(std::move(p), "", 0), 0u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.RenderJson().substr(0, 1), "[");
}

TEST(TraceRecorderTest, BeginAdoptsCallerIdAndFindReturnsNewest) {
  TraceRecorder rec(8);
  auto t1 = rec.Begin("first", 777);
  EXPECT_EQ(t1->id(), 777u);
  rec.Finish(t1);
  auto t2 = rec.Begin("second", 777);  // id collision: caller's problem
  rec.Finish(t2);
  auto found = rec.Find(777);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name(), "second") << "Find must return the newest match";
  // id 0 still mints fresh ids.
  auto t3 = rec.Begin("minted", 0);
  EXPECT_NE(t3->id(), 0u);
}

TEST(TraceRecorderTest, AddCompletedSpanBackdatesAndSaturates) {
  TraceRecorder rec(8);
  auto t = rec.Begin("q", 0);
  // Duration far longer than the trace has lived: start saturates at 0.
  const int32_t i = t->AddCompletedSpan("queue_wait", 1'000'000'000'000ull);
  EXPECT_EQ(i, 0);
  const auto spans = t->spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_ns, 0u);
  EXPECT_GT(spans[0].end_ns, 0u);
  EXPECT_EQ(spans[0].name, "queue_wait");
}

// The differential: each profiled call's total_ns is byte-identical to
// the sample the latency histogram took, so Σ profile totals == the
// histogram's sum and the counts match 1:1.
TEST(ProfileDifferentialTest, ProfileTotalsEqualHistogramSamples) {
  core::Smoqe engine(server::testutil2::ServerEngineOptions());
  server::testutil2::SetupHospitalEngine(engine, /*gen_nodes=*/0);

  core::QueryOptions opts;
  opts.view = "autism-group";
  uint64_t profile_sum = 0;
  constexpr int kQueries = 5;
  for (int i = 0; i < kQueries; ++i) {
    core::RequestOptions req;
    req.profile = true;
    auto r = engine.Query("ward", "//patient/pname", opts, req);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_NE(r->profile, nullptr);
    EXPECT_GT(r->profile->total_ns, 0u);
    EXPECT_FALSE(r->profile->canonical_query.empty());
    EXPECT_EQ(r->profile->doc_epoch, r->doc_epoch);
    profile_sum += r->profile->total_ns;
  }
  const std::string dump = engine.DumpMetrics(DumpFormat::kJson);
  const std::string needle = "\"query.latency_ns\": {";
  const size_t pos = dump.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const std::string line = dump.substr(pos, dump.find('}', pos) - pos);
  auto field = [&](const char* key) {
    const std::string k = std::string("\"") + key + "\": ";
    const size_t p = line.find(k);
    EXPECT_NE(p, std::string::npos) << key;
    return std::strtoull(line.c_str() + p + k.size(), nullptr, 10);
  };
  EXPECT_EQ(field("count"), static_cast<uint64_t>(kQueries));
  EXPECT_EQ(field("sum"), profile_sum)
      << "profile totals and histogram samples drifted apart";
}

// In-process trace-id adoption mirrors the wire path: an explicit
// trace_id forces recording (no sampling flakiness) under that id.
TEST(ProfileDifferentialTest, ExplicitTraceIdForcesRecording) {
  core::Smoqe engine(server::testutil2::ServerEngineOptions());
  server::testutil2::SetupHospitalEngine(engine, /*gen_nodes=*/0);
  core::QueryOptions opts;
  opts.view = "autism-group";
  core::RequestOptions req;
  req.trace_id = 987654;
  auto r = engine.Query("ward", "//patient/pname", opts, req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->trace_id, 987654u);
  auto trace = engine.telemetry()->traces().Find(987654);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->name(), "query");
}

// Slow-query capture through the facade: threshold 0 logs every call —
// including failures — with role and threshold recorded; the engine's
// DumpSlowQueries renders the same entries the telemetry object holds.
TEST(ProfileDifferentialTest, ThresholdZeroCapturesAllOutcomes) {
  core::EngineOptions o = server::testutil2::ServerEngineOptions();
  o.slow_query_threshold_ms = 0;
  core::Smoqe engine(o);
  server::testutil2::SetupHospitalEngine(engine, /*gen_nodes=*/0);
  core::QueryOptions opts;
  opts.view = "autism-group";
  ASSERT_TRUE(engine.Query("ward", "//patient/pname", opts).ok());
  ASSERT_FALSE(engine.Query("no-such-doc", "//pname", opts).ok());

  const auto entries = engine.telemetry()->slow().Entries();
  ASSERT_GE(entries.size(), 2u);
  const std::string json = engine.DumpSlowQueries();
  EXPECT_NE(json.find("\"role\": \"autism-group\""), std::string::npos);
  EXPECT_NE(json.find("\"doc\": \"no-such-doc\""), std::string::npos)
      << "failed calls must be captured too";
  // The metrics tree exposes the log's occupancy.
  const std::string dump = engine.DumpMetrics(DumpFormat::kJson);
  EXPECT_NE(dump.find("\"slowlog.total\": "), std::string::npos);
}

}  // namespace
}  // namespace smoqe::telemetry
