#include "src/common/bitset.h"

#include <gtest/gtest.h>

#include <vector>

namespace smoqe {
namespace {

TEST(BitsetTest, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitsetTest, SetTestReset) {
  DynamicBitset b(130);  // spans three words
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, UnionIntersect) {
  DynamicBitset a(70), b(70);
  a.Set(1);
  a.Set(65);
  b.Set(65);
  b.Set(2);
  DynamicBitset u = a;
  u.UnionWith(b);
  EXPECT_TRUE(u.Test(1));
  EXPECT_TRUE(u.Test(2));
  EXPECT_TRUE(u.Test(65));
  EXPECT_EQ(u.Count(), 3u);
  DynamicBitset i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(65));
}

TEST(BitsetTest, IntersectsAndSubset) {
  DynamicBitset a(128), b(128), c(128);
  a.Set(3);
  a.Set(100);
  b.Set(100);
  c.Set(5);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  // Empty set is a subset of anything and intersects nothing.
  DynamicBitset empty(128);
  EXPECT_TRUE(empty.IsSubsetOf(c));
  EXPECT_FALSE(empty.Intersects(a));
}

TEST(BitsetTest, ForEachSetBitVisitsAscending) {
  DynamicBitset b(200);
  std::vector<size_t> want = {0, 63, 64, 127, 128, 199};
  for (size_t i : want) b.Set(i);
  std::vector<size_t> got;
  b.ForEachSetBit([&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitsetTest, ClearAndEquality) {
  DynamicBitset a(64), b(64);
  a.Set(10);
  EXPECT_FALSE(a == b);
  a.Clear();
  EXPECT_TRUE(a == b);
  // Different widths are never equal.
  DynamicBitset c(65);
  EXPECT_FALSE(a == c);
}

TEST(BitsetTest, ZeroWidthBehaves) {
  DynamicBitset b(0);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
}

}  // namespace
}  // namespace smoqe
