#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "src/common/arena.h"
#include "src/common/counters.h"
#include "src/common/rng.h"

namespace smoqe {
namespace {

TEST(ArenaTest, AllocationsAreDistinctAndStable) {
  Arena arena;
  std::vector<int*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    int* p = arena.New<int>(i);
    ptrs.push_back(p);
  }
  // Values survive later allocations (stability across block growth).
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(*ptrs[i], i);
  }
  std::set<int*> unique(ptrs.begin(), ptrs.end());
  EXPECT_EQ(unique.size(), ptrs.size());
}

TEST(ArenaTest, CopyStringNulTerminatesAndCopies) {
  Arena arena;
  std::string original = "hello world";
  const char* copy = arena.CopyString(original.data(), original.size());
  original[0] = 'X';  // the copy must be independent
  EXPECT_STREQ(copy, "hello world");
  EXPECT_EQ(std::strlen(copy), 11u);
  // Empty string.
  const char* empty = arena.CopyString("", 0);
  EXPECT_STREQ(empty, "");
}

TEST(ArenaTest, AlignmentRespected) {
  Arena arena;
  (void)arena.Allocate(1, 1);
  void* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  (void)arena.Allocate(3, 1);
  void* p16 = arena.Allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p16) % 16, 0u);
}

TEST(ArenaTest, LargeAllocationsGrowBlocks) {
  Arena arena;
  void* big = arena.Allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), static_cast<size_t>(1 << 20));
  EXPECT_GE(arena.bytes_used(), static_cast<size_t>(1 << 20));
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true;
  bool any_diff_from_c = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal = all_equal && (va == vb);
    any_diff_from_c = any_diff_from_c || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_from_c);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
  // All buckets eventually hit (sanity of distribution).
  std::set<uint64_t> seen;
  Rng rng2(8);
  for (int i = 0; i < 1000; ++i) seen.insert(rng2.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  EXPECT_NE(rng.Next(), 0u);
}

TEST(EvalStatsTest, ToStringListsCounters) {
  EvalStats s;
  s.nodes_visited = 5;
  s.answers = 2;
  s.buffered_bytes = 100;
  std::string str = s.ToString();
  EXPECT_NE(str.find("visited=5"), std::string::npos);
  EXPECT_NE(str.find("answers=2"), std::string::npos);
  EXPECT_NE(str.find("buffered_bytes=100"), std::string::npos);
  s.Reset();
  EXPECT_EQ(s.nodes_visited, 0u);
  // buffered_bytes omitted when zero.
  EXPECT_EQ(s.ToString().find("buffered_bytes"), std::string::npos);
}

}  // namespace
}  // namespace smoqe
