// UpdateApplier: atomic application of edit scripts to the mutable DOM —
// DTD-guided insert positions, nesting normalization, all-or-nothing
// validation, stable node ids, order-rank refresh and epoch bumps.

#include "src/update/applier.h"

#include <gtest/gtest.h>

#include "src/index/tax.h"
#include "src/update/update_lang.h"
#include "src/xml/dtd_validator.h"
#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace smoqe::update {
namespace {

using testutil::MustDoc;
using testutil::MustDtd;
using testutil::MustQuery;

xml::Node* Find(xml::Document* doc, const char* query) {
  auto ids = testutil::NaiveIds(*doc, *MustQuery(query));
  EXPECT_EQ(ids.size(), 1u) << query;
  return doc->mutable_node(ids[0]);
}

UpdateStatement MustParseWith(std::string_view text,
                              std::shared_ptr<xml::NameTable> names) {
  auto r = ParseUpdate(text, std::move(names));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Order ranks must be a pre-order numbering of the live tree with
/// correct subtree intervals.
void CheckOrderInvariant(const xml::Document& doc) {
  int32_t expected = 0;
  std::vector<const xml::Node*> stack = {doc.root()};
  std::vector<const xml::Node*> open;
  while (!stack.empty()) {
    const xml::Node* n = stack.back();
    stack.pop_back();
    if (n == nullptr) {
      EXPECT_EQ(open.back()->subtree_end, expected);
      open.pop_back();
      continue;
    }
    EXPECT_EQ(n->order, expected) << "pre-order rank mismatch";
    ++expected;
    open.push_back(n);
    stack.push_back(nullptr);
    std::vector<const xml::Node*> kids;
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  // Every live node slot is reachable, every retired slot is null.
  int32_t live = 0;
  for (int32_t id = 0; id < doc.num_nodes(); ++id) {
    if (doc.node(id) != nullptr) {
      ++live;
      EXPECT_EQ(doc.node(id)->node_id, id);
    }
  }
  EXPECT_EQ(live, expected);
}

TEST(UpdateApply, InsertSeeksValidPosition) {
  xml::Dtd dtd = MustDtd(testutil::kHospitalDtd, "hospital");
  xml::Document doc = MustDoc(testutil::kHospitalDoc);
  auto names = doc.names();
  // Alice already has a visit AND a parent: a blind append of the new
  // visit (…, parent, visit) would violate (pname, visit*, parent*); the
  // applier must slot it after the existing visits.
  UpdateStatement stmt = MustParseWith(
      "insert into hospital/patient[pname = 'Alice'] "
      "<visit><treatment><medication>flu</medication></treatment>"
      "<date>d4</date></visit>",
      names);
  ApplierOptions opts;
  opts.dtd = &dtd;
  UpdateApplier applier(&doc, opts);
  xml::Node* alice = Find(&doc, "hospital/patient[pname = 'Alice']");
  auto stats = applier.Run({ResolvedEdit{stmt.kind, alice, &*stmt.fragment}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->edits_applied, 1u);
  EXPECT_GT(stats->nodes_inserted, 0u);
  EXPECT_TRUE(xml::ValidateDocument(doc, dtd).ok());
  EXPECT_EQ(doc.epoch(), 1u);
  CheckOrderInvariant(doc);
  // The new visit sits between the old visit and the parent element.
  auto dates = testutil::NaiveIds(
      doc, *MustQuery("hospital/patient[pname = 'Alice']/visit/date"));
  EXPECT_EQ(dates.size(), 2u);
}

TEST(UpdateApply, DeleteRetiresIdsAndKeepsOthersStable) {
  xml::Document doc = MustDoc(testutil::kHospitalDoc);
  xml::Node* carol = Find(&doc, "hospital/patient[pname = 'Carol']");
  const int32_t carol_id = carol->node_id;
  xml::Node* alice = Find(&doc, "hospital/patient[pname = 'Alice']");
  const int32_t alice_id = alice->node_id;
  const int32_t before = doc.num_nodes();

  UpdateApplier applier(&doc, {});
  auto stats = applier.Run({ResolvedEdit{OpKind::kDelete, carol, nullptr}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(doc.node(carol_id), nullptr);             // retired
  EXPECT_EQ(doc.node(alice_id)->node_id, alice_id);   // stable
  EXPECT_EQ(doc.num_nodes(), before);                 // id space never shrinks
  EXPECT_EQ(stats->nodes_deleted, 9u);  // patient,pname,visit,treatment,
                                        // medication,date + 3 text nodes
  CheckOrderInvariant(doc);
  auto patients = testutil::NaiveIds(doc, *MustQuery("//patient"));
  EXPECT_EQ(patients.size(), 2u);  // Alice + Bob
}

TEST(UpdateApply, ReplaceSwapsSubtree) {
  xml::Dtd dtd = MustDtd(testutil::kHospitalDtd, "hospital");
  xml::Document doc = MustDoc(testutil::kHospitalDoc);
  auto names = doc.names();
  UpdateStatement stmt = MustParseWith(
      "replace hospital/patient[pname = 'Carol']/visit/treatment "
      "with <treatment><test>mri</test></treatment>",
      names);
  xml::Node* t =
      Find(&doc, "hospital/patient[pname = 'Carol']/visit/treatment");
  ApplierOptions opts;
  opts.dtd = &dtd;
  UpdateApplier applier(&doc, opts);
  auto stats = applier.Run({ResolvedEdit{stmt.kind, t, &*stmt.fragment}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(xml::ValidateDocument(doc, dtd).ok());
  CheckOrderInvariant(doc);
  auto mri = testutil::NaiveIds(doc, *MustQuery("//test[. = 'mri']"));
  EXPECT_EQ(mri.size(), 1u);
  auto headache = testutil::NaiveIds(
      doc, *MustQuery("//medication[. = 'headache']"));
  EXPECT_TRUE(headache.empty());
}

TEST(UpdateApply, NestedEditsDropOutermostWins) {
  xml::Document doc = MustDoc(testutil::kHospitalDoc);
  // Delete Alice (whose subtree contains Bob) and Bob: Bob's edit drops.
  xml::Node* alice = Find(&doc, "hospital/patient[pname = 'Alice']");
  xml::Node* bob = Find(&doc, "//parent/patient[pname = 'Bob']");
  UpdateApplier applier(&doc, {});
  auto stats = applier.Run({ResolvedEdit{OpKind::kDelete, alice, nullptr},
                            ResolvedEdit{OpKind::kDelete, bob, nullptr}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->edits_applied, 1u);
  EXPECT_EQ(stats->edits_dropped, 1u);
  CheckOrderInvariant(doc);
}

TEST(UpdateApply, InvalidEditLeavesDocumentUntouched) {
  xml::Dtd dtd = MustDtd(testutil::kHospitalDtd, "hospital");
  xml::Document doc = MustDoc(testutil::kHospitalDoc);
  auto names = doc.names();
  const std::string before = xml::SerializeDocument(doc);
  const uint64_t epoch_before = doc.epoch();

  // A pname under treatment fits no position of (test | medication).
  UpdateStatement bad = MustParseWith(
      "insert into //treatment <pname>X</pname>", names);
  xml::Node* t =
      Find(&doc, "hospital/patient[pname = 'Carol']/visit/treatment");
  ApplierOptions opts;
  opts.dtd = &dtd;
  UpdateApplier applier(&doc, opts);
  auto stats = applier.Run({ResolvedEdit{bad.kind, t, &*bad.fragment}});
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(xml::SerializeDocument(doc), before);
  EXPECT_EQ(doc.epoch(), epoch_before);

  // Atomicity across a script: a valid delete of Carol + an invalid
  // insert elsewhere (Alice's treatment — NOT nested in the delete, so
  // normalization keeps it) must apply neither.
  xml::Node* carol = Find(&doc, "hospital/patient[pname = 'Carol']");
  xml::Node* alice_t =
      Find(&doc, "hospital/patient[pname = 'Alice']/visit/treatment");
  auto both = applier.Run({ResolvedEdit{OpKind::kDelete, carol, nullptr},
                           ResolvedEdit{bad.kind, alice_t, &*bad.fragment}});
  EXPECT_FALSE(both.ok());
  EXPECT_EQ(xml::SerializeDocument(doc), before);
  EXPECT_EQ(doc.epoch(), epoch_before);
}

TEST(UpdateApply, StructuralRules) {
  xml::Document doc = MustDoc(testutil::kHospitalDoc);
  xml::Node* root = doc.mutable_node(doc.root()->node_id);
  UpdateApplier applier(&doc, {});
  // Deleting the root is refused.
  EXPECT_FALSE(applier.Run({ResolvedEdit{OpKind::kDelete, root, nullptr}}).ok());
  // Conflicting edits of one node are refused.
  xml::Node* carol = Find(&doc, "hospital/patient[pname = 'Carol']");
  auto names = doc.names();
  UpdateStatement repl = MustParseWith(
      "replace x with <patient><pname>Dee</pname></patient>", names);
  EXPECT_FALSE(applier
                   .Run({ResolvedEdit{OpKind::kDelete, carol, nullptr},
                         ResolvedEdit{OpKind::kReplace, carol, &*repl.fragment}})
                   .ok());
  // Same kind, same node, *different* fragments also conflict — neither
  // replacement may silently win.
  UpdateStatement repl2 = MustParseWith(
      "replace x with <patient><pname>Fi</pname></patient>", names);
  EXPECT_FALSE(
      applier
          .Run({ResolvedEdit{OpKind::kReplace, carol, &*repl.fragment},
                ResolvedEdit{OpKind::kReplace, carol, &*repl2.fragment}})
          .ok());
  // Exact duplicates (same kind and fragment) dedupe instead.
  auto dup = applier.Run({ResolvedEdit{OpKind::kDelete, carol, nullptr},
                          ResolvedEdit{OpKind::kDelete, carol, nullptr}});
  ASSERT_TRUE(dup.ok()) << dup.status().ToString();
  EXPECT_EQ(dup->edits_applied, 1u);
  EXPECT_EQ(dup->edits_dropped, 1u);
}

TEST(UpdateApply, ReplaceRootAllowed) {
  xml::Dtd dtd = MustDtd(testutil::kHospitalDtd, "hospital");
  xml::Document doc = MustDoc(testutil::kHospitalDoc);
  auto names = doc.names();
  UpdateStatement stmt = MustParseWith(
      "replace hospital with <hospital><patient><pname>Solo</pname>"
      "</patient></hospital>",
      names);
  xml::Node* root = doc.mutable_node(doc.root()->node_id);
  ApplierOptions opts;
  opts.dtd = &dtd;
  UpdateApplier applier(&doc, opts);
  auto stats = applier.Run({ResolvedEdit{stmt.kind, root, &*stmt.fragment}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(xml::ValidateDocument(doc, dtd).ok());
  CheckOrderInvariant(doc);
  auto solo = testutil::NaiveIds(doc, *MustQuery("//pname[. = 'Solo']"));
  EXPECT_EQ(solo.size(), 1u);
}

TEST(UpdateApply, MaintainsTaxIncrementally) {
  xml::Dtd dtd = MustDtd(testutil::kHospitalDtd, "hospital");
  xml::Document doc = MustDoc(testutil::kHospitalDoc);
  auto names = doc.names();
  index::TaxIndex tax = index::TaxIndex::Build(doc);

  UpdateStatement stmt = MustParseWith(
      "insert into hospital/patient[pname = 'Carol'] "
      "<visit><treatment><test>blood</test></treatment><date>d7</date>"
      "</visit>",
      names);
  xml::Node* carol = Find(&doc, "hospital/patient[pname = 'Carol']");
  ApplierOptions opts;
  opts.dtd = &dtd;
  opts.tax = &tax;
  UpdateApplier applier(&doc, opts);
  auto stats = applier.Run({ResolvedEdit{stmt.kind, carol, &*stmt.fragment}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->tax_sets_recomputed, 0u);
  EXPECT_FALSE(stats->tax_rebuilt);
  EXPECT_TRUE(tax.EquivalentTo(index::TaxIndex::Build(doc)));
  // Carol now has a 'test' descendant the repair must have recorded.
  const DynamicBitset* set = tax.DescendantTypes(carol->node_id);
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->Test(static_cast<size_t>(names->Lookup("test"))));
}

}  // namespace
}  // namespace smoqe::update
