// TaxIo edge cases: minimal documents, round-trips after name-table
// growth (mixed-width sets from incremental repair), and persistence of
// indexes carried across updates.

#include <gtest/gtest.h>

#include "src/index/tax.h"
#include "src/index/tax_io.h"
#include "src/update/applier.h"
#include "src/update/update_lang.h"
#include "tests/test_util.h"

namespace smoqe::index {
namespace {

using testutil::MustDoc;
using testutil::MustQuery;

TaxIndex RoundTrip(const TaxIndex& idx) {
  auto decoded = TaxIo::Decode(TaxIo::Encode(idx));
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded.MoveValue();
}

TEST(TaxIoEdge, SingleElementDocument) {
  xml::Document doc = MustDoc("<r/>");
  TaxIndex idx = TaxIndex::Build(doc);
  EXPECT_EQ(idx.num_elements(), 1u);
  TaxIndex back = RoundTrip(idx);
  EXPECT_EQ(back.num_elements(), 1u);
  EXPECT_EQ(back.type_width(), idx.type_width());
  EXPECT_TRUE(back.EquivalentTo(idx));
  // The root's (empty) set survives as an indexed-but-empty set, distinct
  // from a text slot.
  ASSERT_NE(back.DescendantTypes(0), nullptr);
  EXPECT_TRUE(back.DescendantTypes(0)->None());
}

TEST(TaxIoEdge, TextOnlyChildrenAndDeepChain) {
  xml::Document doc = MustDoc("<a><b>t1</b><b>t2</b><c><c><c>x</c></c></c></a>");
  TaxIndex idx = TaxIndex::Build(doc);
  EXPECT_TRUE(RoundTrip(idx).EquivalentTo(idx));
}

TEST(TaxIoEdge, RoundTripAfterNameTableGrowth) {
  auto names = xml::NameTable::Create();
  xml::Document doc = MustDoc("<a><b><c>x</c></b></a>", names);
  TaxIndex idx = TaxIndex::Build(doc);
  const size_t width_before = idx.type_width();

  // Graft a fragment whose labels are new to the table: the repaired
  // sets are wider than the untouched ones (mixed-width index).
  auto stmt = update::ParseUpdate("insert into a/b <d><e>y</e></d>", names);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto ids = testutil::NaiveIds(doc, *MustQuery("a/b"));
  ASSERT_EQ(ids.size(), 1u);
  update::ApplierOptions opts;
  opts.tax = &idx;
  update::UpdateApplier applier(&doc, opts);
  auto stats = applier.Run({update::ResolvedEdit{
      stmt->kind, doc.mutable_node(ids[0]), &*stmt->fragment}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(idx.type_width(), width_before);

  // The mixed-width index round-trips losslessly (encode normalizes by
  // zero-extension) and still equals a from-scratch build.
  TaxIndex back = RoundTrip(idx);
  EXPECT_TRUE(back.EquivalentTo(idx));
  EXPECT_TRUE(back.EquivalentTo(TaxIndex::Build(doc)));
  // And the decoded index keeps answering: 'b' now has d and e below.
  const DynamicBitset* b_set = back.DescendantTypes(ids[0]);
  ASSERT_NE(b_set, nullptr);
  EXPECT_TRUE(b_set->Test(static_cast<size_t>(names->Lookup("d"))));
  EXPECT_TRUE(b_set->Test(static_cast<size_t>(names->Lookup("e"))));
}

TEST(TaxIoEdge, RetiredSlotsRoundTripAsEmpty) {
  auto names = xml::NameTable::Create();
  xml::Document doc = MustDoc("<a><b><c>x</c></b><b/></a>", names);
  TaxIndex idx = TaxIndex::Build(doc);
  auto ids = testutil::NaiveIds(doc, *MustQuery("a/b[c]"));
  ASSERT_EQ(ids.size(), 1u);
  update::ApplierOptions opts;
  opts.tax = &idx;
  update::UpdateApplier applier(&doc, opts);
  auto stats = applier.Run(
      {update::ResolvedEdit{update::OpKind::kDelete, doc.mutable_node(ids[0]),
                            nullptr}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(idx.DescendantTypes(ids[0]), nullptr);  // retired → unindexed
  TaxIndex back = RoundTrip(idx);
  EXPECT_TRUE(back.EquivalentTo(idx));
  EXPECT_EQ(back.DescendantTypes(ids[0]), nullptr);
}

}  // namespace
}  // namespace smoqe::index
