/// \file
/// \brief The SMOQE rewriter: compiles a query over a (virtual) security
/// view into an MFA over the underlying document, linear in |Q|·|σ|
/// (docs/DESIGN.md §1 step 3; E1 in §4). The compiled artifact is what
/// the plan cache stores (§5.1).

#ifndef SMOQE_REWRITE_REWRITER_H_
#define SMOQE_REWRITE_REWRITER_H_

#include <memory>

#include "src/automata/mfa.h"
#include "src/common/status.h"
#include "src/rxpath/ast.h"
#include "src/view/view_def.h"
#include "src/xml/name_table.h"

namespace smoqe::rewrite {

/// \brief The SMOQE rewriter (paper §3, Rewriter): translates a Regular
/// XPath query Q posed on a (virtual) view V into an MFA for the
/// equivalent query Q′ over the underlying document, such that
/// Q′(T) = Q(V(T)) for every document T.
///
/// Construction: the query automaton is built in a *typed* product with
/// the view DTD — every query position is compiled once per view element
/// type it can be matched at, and each view child step (A ─B→ ·) inlines a
/// copy of σ(A,B)'s automaton. Qualifiers are rewritten recursively with
/// the anchor's view type threaded through. Because nothing is ever
/// unfolded into an expression, the result is **linear in |Q|·|σ|**, while
/// the expression-level rewriting of expr_rewriter.h is worst-case
/// exponential (experiment E1).
///
/// Wildcards and label tests in Q range over the *view* DTD, so hidden
/// element types can never be addressed — the access-control guarantee.
/// Labels in Q that are not view types simply yield no matches.
///
/// The returned MFA runs directly on underlying documents with any HyPE
/// mode (DOM / StAX, TAX on or off).
Result<automata::Mfa> RewriteToMfa(const rxpath::PathExpr& query,
                                   const view::ViewDefinition& view,
                                   std::shared_ptr<xml::NameTable> names);

}  // namespace smoqe::rewrite

#endif  // SMOQE_REWRITE_REWRITER_H_
