#include "src/rewrite/expr_rewriter.h"

#include <map>
#include <string>
#include <vector>

namespace smoqe::rewrite {

using rxpath::PathExpr;
using rxpath::Qualifier;

namespace {

const char kDocType[] = "";

/// Type-indexed path matrix: M[(a,b)] = document-level path taking an
/// a-typed view context to b-typed view nodes. Absent entry = no path.
using Matrix = std::map<std::pair<std::string, std::string>,
                        std::unique_ptr<PathExpr>>;

class ExprRewriter {
 public:
  ExprRewriter(const view::ViewDefinition& view, size_t max_size)
      : view_(view),
        max_size_(max_size),
        root_step_(PathExpr::Label(view.root())) {
    types_.push_back(kDocType);
    for (const auto& [name, decl] : view.view_dtd().elements()) {
      types_.push_back(name);
    }
  }

  Result<std::unique_ptr<PathExpr>> Run(const PathExpr& query,
                                        ExprRewriteStats* stats) {
    SMOQE_ASSIGN_OR_RETURN(Matrix m, Rewrite(query));
    // Answers start at the virtual document node; element answers only.
    std::unique_ptr<PathExpr> out;
    for (auto& [edge, path] : m) {
      if (edge.first != kDocType || edge.second == kDocType) continue;
      out = UnionMerge(std::move(out), std::move(path));
    }
    if (out == nullptr) {
      // No view path matches: an impossible query. Represent as a label
      // that exists in no document conforming to any schema — the caller
      // benchmarks sizes, correctness tests never hit this branch with
      // sensible queries.
      out = PathExpr::Label("__smoqe_empty__");
    }
    if (stats != nullptr) stats->result_size = out->TreeSize();
    return out;
  }

 private:
  Status CheckSize(const Matrix& m) {
    size_t total = 0;
    for (const auto& [edge, path] : m) total += path->TreeSize();
    if (total > max_size_) {
      return Status::ResourceExhausted(
          "expression rewriting exceeded the size cap (" +
          std::to_string(total) + " > " + std::to_string(max_size_) + ")");
    }
    return Status::OK();
  }

  static std::unique_ptr<PathExpr> UnionMerge(std::unique_ptr<PathExpr> a,
                                              std::unique_ptr<PathExpr> b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (a->Equals(*b)) return a;
    std::vector<std::unique_ptr<PathExpr>> parts;
    parts.push_back(std::move(a));
    parts.push_back(std::move(b));
    return PathExpr::Union(std::move(parts));
  }

  std::vector<std::string> ChildTypesOf(const std::string& type) const {
    if (type == kDocType) return {view_.root()};
    return view_.view_dtd().ChildTypes(type);
  }

  const PathExpr* SigmaOf(const std::string& type,
                          const std::string& child) const {
    if (type == kDocType) {
      return child == view_.root() ? root_step_.get() : nullptr;
    }
    return view_.Sigma(type, child);
  }

  Result<Matrix> Rewrite(const PathExpr& p) {
    switch (p.kind()) {
      case PathExpr::Kind::kEmpty: {
        Matrix m;
        for (const std::string& t : types_) {
          m[{t, t}] = PathExpr::Empty();
        }
        return m;
      }
      case PathExpr::Kind::kLabel:
      case PathExpr::Kind::kWildcard: {
        Matrix m;
        for (const std::string& a : types_) {
          for (const std::string& b : ChildTypesOf(a)) {
            if (p.kind() == PathExpr::Kind::kLabel && b != p.label()) {
              continue;
            }
            const PathExpr* sigma = SigmaOf(a, b);
            if (sigma != nullptr) m[{a, b}] = sigma->Clone();
          }
        }
        SMOQE_RETURN_IF_ERROR(CheckSize(m));
        return m;
      }
      case PathExpr::Kind::kSeq: {
        SMOQE_ASSIGN_OR_RETURN(Matrix cur, Rewrite(*p.parts()[0]));
        for (size_t i = 1; i < p.parts().size(); ++i) {
          SMOQE_ASSIGN_OR_RETURN(Matrix next, Rewrite(*p.parts()[i]));
          SMOQE_ASSIGN_OR_RETURN(cur, Multiply(cur, next));
        }
        return cur;
      }
      case PathExpr::Kind::kUnion: {
        Matrix acc;
        for (const auto& part : p.parts()) {
          SMOQE_ASSIGN_OR_RETURN(Matrix m, Rewrite(*part));
          for (auto& [edge, path] : m) {
            acc[edge] = UnionMerge(std::move(acc[edge]), std::move(path));
          }
        }
        SMOQE_RETURN_IF_ERROR(CheckSize(acc));
        return acc;
      }
      case PathExpr::Kind::kStar: {
        SMOQE_ASSIGN_OR_RETURN(Matrix m, Rewrite(p.body()));
        return Closure(std::move(m));
      }
      case PathExpr::Kind::kPred: {
        SMOQE_ASSIGN_OR_RETURN(Matrix base, Rewrite(*p.parts()[0]));
        Matrix out;
        for (auto& [edge, path] : base) {
          SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> q,
                                 RewriteQual(p.qual(), edge.second));
          out[edge] = PathExpr::Pred(std::move(path), std::move(q));
        }
        SMOQE_RETURN_IF_ERROR(CheckSize(out));
        return out;
      }
    }
    return Status::Internal("unhandled path kind");
  }

  Result<Matrix> Multiply(const Matrix& lhs, const Matrix& rhs) {
    Matrix out;
    for (const auto& [le, lp] : lhs) {
      for (const auto& [re, rp] : rhs) {
        if (le.second != re.first) continue;
        auto combined = PathExpr::Seq2(lp->Clone(), rp->Clone());
        auto key = std::make_pair(le.first, re.second);
        out[key] = UnionMerge(std::move(out[key]), std::move(combined));
      }
    }
    SMOQE_RETURN_IF_ERROR(CheckSize(out));
    return out;
  }

  /// Reflexive-transitive closure: (M)* = I ∪ Warshall(M).
  Result<Matrix> Closure(Matrix m) {
    for (const std::string& k : types_) {
      // Self-loop at k contributes (M[k][k])* between segments.
      std::unique_ptr<PathExpr> loop;
      auto self = m.find({k, k});
      if (self != m.end()) {
        loop = PathExpr::Star(self->second->Clone());
      }
      std::vector<std::pair<std::string, std::unique_ptr<PathExpr>>> ins;
      std::vector<std::pair<std::string, std::unique_ptr<PathExpr>>> outs;
      for (const auto& [edge, path] : m) {
        if (edge.second == k && edge.first != k) {
          ins.emplace_back(edge.first, path->Clone());
        }
        if (edge.first == k && edge.second != k) {
          outs.emplace_back(edge.second, path->Clone());
        }
      }
      for (const auto& [a, in_p] : ins) {
        for (const auto& [b, out_p] : outs) {
          std::unique_ptr<PathExpr> mid = in_p->Clone();
          if (loop != nullptr) {
            mid = PathExpr::Seq2(std::move(mid), loop->Clone());
          }
          mid = PathExpr::Seq2(std::move(mid), out_p->Clone());
          auto key = std::make_pair(a, b);
          m[key] = UnionMerge(std::move(m[key]), std::move(mid));
        }
      }
      SMOQE_RETURN_IF_ERROR(CheckSize(m));
    }
    // Zero iterations: identity entries.
    for (const std::string& t : types_) {
      auto key = std::make_pair(t, t);
      m[key] = UnionMerge(std::move(m[key]), PathExpr::Empty());
    }
    SMOQE_RETURN_IF_ERROR(CheckSize(m));
    return m;
  }

  Result<std::unique_ptr<Qualifier>> RewriteQual(const Qualifier& q,
                                                 const std::string& type) {
    switch (q.kind()) {
      case Qualifier::Kind::kTrue:
        return Qualifier::True();
      case Qualifier::Kind::kNot: {
        SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> inner,
                               RewriteQual(q.left(), type));
        return Qualifier::Not(std::move(inner));
      }
      case Qualifier::Kind::kAnd:
      case Qualifier::Kind::kOr: {
        SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> l,
                               RewriteQual(q.left(), type));
        SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> r,
                               RewriteQual(q.right(), type));
        return q.kind() == Qualifier::Kind::kAnd
                   ? Qualifier::And(std::move(l), std::move(r))
                   : Qualifier::Or(std::move(l), std::move(r));
      }
      case Qualifier::Kind::kPath:
      case Qualifier::Kind::kTextEq:
      case Qualifier::Kind::kAttr: {
        SMOQE_ASSIGN_OR_RETURN(Matrix m, Rewrite(q.path()));
        std::unique_ptr<PathExpr> path;
        for (auto& [edge, p] : m) {
          if (edge.first != type) continue;
          path = UnionMerge(std::move(path), std::move(p));
        }
        if (path == nullptr) {
          // The qualifier path matches nothing from this type.
          return Qualifier::Not(Qualifier::True());
        }
        if (q.kind() == Qualifier::Kind::kPath) {
          return Qualifier::Path(std::move(path));
        }
        if (q.kind() == Qualifier::Kind::kTextEq) {
          return Qualifier::TextEq(std::move(path), q.value());
        }
        return q.has_value()
                   ? Qualifier::AttrEq(std::move(path), q.attr_name(),
                                       q.value())
                   : Qualifier::Attr(std::move(path), q.attr_name());
      }
    }
    return Status::Internal("unhandled qualifier kind");
  }

  const view::ViewDefinition& view_;
  size_t max_size_;
  std::unique_ptr<PathExpr> root_step_;
  std::vector<std::string> types_;
};

}  // namespace

Result<std::unique_ptr<PathExpr>> RewriteToExpr(const PathExpr& query,
                                                const view::ViewDefinition& view,
                                                size_t max_size,
                                                ExprRewriteStats* stats) {
  ExprRewriter rewriter(view, max_size);
  auto result = rewriter.Run(query, stats);
  if (!result.ok() && stats != nullptr &&
      result.status().code() == StatusCode::kResourceExhausted) {
    stats->truncated = true;
  }
  return result;
}

}  // namespace smoqe::rewrite
