/// \file
/// \brief Expression-level view unfolding — the worst-case-exponential
/// baseline the MFA rewriter is measured against in experiment E1
/// (docs/DESIGN.md §4).

#ifndef SMOQE_REWRITE_EXPR_REWRITER_H_
#define SMOQE_REWRITE_EXPR_REWRITER_H_

#include <memory>

#include "src/common/status.h"
#include "src/rxpath/ast.h"
#include "src/view/view_def.h"

namespace smoqe::rewrite {

/// Size accounting for expression-level rewriting.
struct ExprRewriteStats {
  size_t result_size = 0;  ///< AST nodes of the rewritten expression
  bool truncated = false;  ///< hit the size cap (result not returned)
};

/// \brief Expression-level view unfolding — the baseline the MFA rewriter
/// is measured against (paper §3: "the size of Q′, if directly represented
/// as Regular XPath expressions, may be exponential in the size of Q").
///
/// Works over type-indexed path matrices: a step B in type context A
/// substitutes σ(A,B); sequences multiply matrices (unioning one
/// continuation per type path, which is where the exponential growth
/// comes from); `(·)*` closes the matrix Warshall-style; qualifiers are
/// rewritten per anchor type.
///
/// `max_size` caps the total AST size; exceeding it returns
/// ResourceExhausted with `stats->truncated = true` (experiment E1 plots
/// the cap hits). The result, when it fits, is a document-level Regular
/// XPath equivalent to the query on the view (differential-tested against
/// the MFA rewriter).
Result<std::unique_ptr<rxpath::PathExpr>> RewriteToExpr(
    const rxpath::PathExpr& query, const view::ViewDefinition& view,
    size_t max_size, ExprRewriteStats* stats = nullptr);

}  // namespace smoqe::rewrite

#endif  // SMOQE_REWRITE_EXPR_REWRITER_H_
