#include "src/rewrite/rewriter.h"

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace smoqe::rewrite {

using automata::AcceptTest;
using automata::Mfa;
using automata::MfaBuilder;
using automata::ObligationId;
using automata::PredId;
using rxpath::PathExpr;
using rxpath::Qualifier;

namespace {

/// The pseudo-type of the virtual document node above the view root.
const char kDocType[] = "";

/// Fragment exits per view element type. Each type maps to exactly one
/// NFA state (parallel arrivals are ε-merged).
using TypedStates = std::map<std::string, int>;

class TypedCompiler {
 public:
  TypedCompiler(const view::ViewDefinition& view, MfaBuilder* builder)
      : view_(view),
        builder_(builder),
        root_step_(PathExpr::Label(view.root())) {}

  TypedStates CompilePath(const PathExpr& p, const TypedStates& in) {
    switch (p.kind()) {
      case PathExpr::Kind::kEmpty:
        return in;
      case PathExpr::Kind::kLabel:
        return CompileStep(in, /*wildcard=*/false, p.label());
      case PathExpr::Kind::kWildcard:
        return CompileStep(in, /*wildcard=*/true, "");
      case PathExpr::Kind::kSeq: {
        TypedStates cur = in;
        for (const auto& part : p.parts()) {
          cur = CompilePath(*part, cur);
          if (cur.empty()) break;
        }
        return cur;
      }
      case PathExpr::Kind::kUnion: {
        std::vector<TypedStates> branches;
        for (const auto& part : p.parts()) {
          branches.push_back(CompilePath(*part, in));
        }
        return MergeTyped(branches);
      }
      case PathExpr::Kind::kStar:
        return CompileStar(p.body(), in);
      case PathExpr::Kind::kPred: {
        TypedStates base = CompilePath(*p.parts()[0], in);
        TypedStates out;
        for (const auto& [type, state] : base) {
          PredId pred = CompileTypedQualifier(p.qual(), type);
          int s = builder_->build()->AddState();
          builder_->build()->AddEps(state, s);
          builder_->build()->Annotate(s, pred);
          out[type] = s;
        }
        return out;
      }
    }
    return {};
  }

  /// Compiles a qualifier anchored at view type `type`; memoized.
  PredId CompileTypedQualifier(const Qualifier& q, const std::string& type) {
    auto key = std::make_pair(&q, type);
    auto it = pred_memo_.find(key);
    if (it != pred_memo_.end()) return it->second;
    PredId id = builder_->CompileQualifierVia(
        q, [&](const Qualifier& leaf, AcceptTest test) {
          return builder_->CompileObligationVia(
              std::move(test), [&](int start) {
                TypedStates in{{type, start}};
                TypedStates outs = CompilePath(leaf.path(), in);
                std::vector<int> accepts;
                for (const auto& [t, s] : outs) accepts.push_back(s);
                return accepts;
              });
        });
    pred_memo_.emplace(key, id);
    return id;
  }

 private:
  std::vector<std::string> ChildTypesOf(const std::string& type) const {
    if (type == kDocType) return {view_.root()};
    return view_.view_dtd().ChildTypes(type);
  }

  const PathExpr* SigmaOf(const std::string& type,
                          const std::string& child) const {
    if (type == kDocType) {
      return child == view_.root() ? root_step_.get() : nullptr;
    }
    return view_.Sigma(type, child);
  }

  /// One view child step from every input type; σ fragments are inlined.
  TypedStates CompileStep(const TypedStates& in, bool wildcard,
                          const std::string& label) {
    std::map<std::string, std::vector<int>> arrivals;
    for (const auto& [type, state] : in) {
      for (const std::string& child : ChildTypesOf(type)) {
        if (!wildcard && child != label) continue;
        const PathExpr* sigma = SigmaOf(type, child);
        if (sigma == nullptr) continue;
        arrivals[child].push_back(builder_->CompilePath(*sigma, state));
      }
    }
    TypedStates out;
    for (auto& [type, states] : arrivals) {
      out[type] = MergeStates(states);
    }
    return out;
  }

  TypedStates CompileStar(const PathExpr& body, const TypedStates& in) {
    TypedStates loop;
    std::deque<std::string> work;
    for (const auto& [type, state] : in) {
      int ls = builder_->build()->AddState();
      builder_->build()->AddEps(state, ls);
      loop[type] = ls;
      work.push_back(type);
    }
    std::set<std::string> processed;
    while (!work.empty()) {
      std::string type = work.front();
      work.pop_front();
      if (!processed.insert(type).second) continue;
      TypedStates one{{type, loop[type]}};
      TypedStates outs = CompilePath(body, one);
      for (const auto& [t, s] : outs) {
        auto it = loop.find(t);
        if (it == loop.end()) {
          int ls = builder_->build()->AddState();
          it = loop.emplace(t, ls).first;
          work.push_back(t);
        }
        builder_->build()->AddEps(s, it->second);
      }
    }
    return loop;
  }

  int MergeStates(const std::vector<int>& states) {
    if (states.size() == 1) return states[0];
    int merged = builder_->build()->AddState();
    for (int s : states) builder_->build()->AddEps(s, merged);
    return merged;
  }

  TypedStates MergeTyped(const std::vector<TypedStates>& branches) {
    std::map<std::string, std::vector<int>> arrivals;
    for (const TypedStates& b : branches) {
      for (const auto& [type, state] : b) arrivals[type].push_back(state);
    }
    TypedStates out;
    for (auto& [type, states] : arrivals) out[type] = MergeStates(states);
    return out;
  }

  const view::ViewDefinition& view_;
  MfaBuilder* builder_;
  std::unique_ptr<PathExpr> root_step_;
  std::map<std::pair<const Qualifier*, std::string>, PredId> pred_memo_;
};

}  // namespace

Result<Mfa> RewriteToMfa(const PathExpr& query,
                         const view::ViewDefinition& view,
                         std::shared_ptr<xml::NameTable> names) {
  if (names == nullptr) {
    return Status::InvalidArgument("RewriteToMfa requires a name table");
  }
  MfaBuilder builder(std::move(names));
  TypedCompiler compiler(view, &builder);
  int start = builder.build()->AddState();
  TypedStates in{{kDocType, start}};
  TypedStates outs = compiler.CompilePath(query, in);
  std::vector<int> accepts;
  for (const auto& [type, state] : outs) {
    if (type != kDocType) accepts.push_back(state);
  }
  // Queries selecting only the virtual document node (e.g. ".") have no
  // element answers; an accept-free MFA correctly yields ∅.
  return builder.Finish(start, std::move(accepts));
}

}  // namespace smoqe::rewrite
