/// \file
/// \brief libsmoqeclient: a blocking TCP client for the smoqed protocol
/// (docs/PROTOCOL.md). Connect() performs the handshake — binding the
/// role for the connection's lifetime — then typed calls encode one
/// request frame, block for the response, and hand back the *decoded
/// response struct* even when its wire code is an error: application-
/// level failures (PermissionDenied, DeadlineExceeded, RejectedBusy…)
/// are data the caller inspects, and the differential tests compare
/// them byte-for-byte against library statuses. Only transport-level
/// failures (socket error, malformed response, id mismatch) surface as
/// a non-OK Result status.
///
/// The raw SendFrame()/ReceiveFrame() layer underneath is public so the
/// pipelined tests and the fuzzer can put arbitrary bytes on the wire
/// and still reuse the framing/decoding machinery.

#ifndef SMOQE_SERVER_CLIENT_H_
#define SMOQE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/server/protocol.h"

namespace smoqe::server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Role (= security view) to bind at handshake; "" = trusted direct
  /// access, honored only by servers started with allow_direct.
  std::string role;
  /// Largest response frame this client will buffer.
  size_t max_response_frame = kDefaultMaxResponseFrame;
  /// Socket receive timeout per blocking read; 0 = wait forever.
  /// Guards tests against a hung server (reads fail with IOError).
  uint64_t recv_timeout_ms = 0;
};

/// One connection to a smoqed server. Not thread-safe: a client is one
/// principal's conversation; concurrent callers each open their own.
class Client {
 public:
  /// Connects and handshakes. A rejected handshake (bad role, version
  /// mismatch, direct access disabled) comes back as the server's
  /// rejection status via ToStatus — the connection is gone.
  static Result<Client> Connect(const ClientOptions& options);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- typed request/response (one in flight; id managed internally) ---

  /// `req.id` is overwritten with a fresh id; all other fields are sent
  /// as given. Same for the other typed calls.
  Result<QueryResponse> Query(QueryRequest req);
  Result<QueryBatchResponse> QueryBatch(QueryBatchRequest req);
  Result<UpdateResponse> Update(UpdateRequest req);
  Result<StatResponse> Stat(StatFormat format = StatFormat::kJson);

  // --- raw frame layer (pipelining, fuzzing) ---

  /// Writes pre-encoded bytes (one or more complete frames — or, for
  /// the fuzzer, deliberately broken ones) to the socket.
  Status SendBytes(std::string_view bytes);
  /// Blocks until one complete frame arrives. IOError on EOF/socket
  /// error; InvalidArgument when the server's frame exceeds the bound.
  Result<RawFrame> ReceiveFrame();

  /// Fresh request id (monotonic per connection, starts at 1; the
  /// handshake used id 0).
  uint64_t NextId() { return ++last_id_; }

  /// Server banner from the handshake.
  const HelloResponse& hello() const { return hello_; }
  const std::string& role() const { return role_; }
  bool connected() const { return fd_ >= 0; }

  /// Half-closes the write side (server sees EOF) without tearing down
  /// the read side — the disconnect-mid-request test's tool.
  void ShutdownWrite();
  void Close();

 private:
  Client(int fd, size_t max_frame) : fd_(fd), frames_(max_frame) {}

  int fd_ = -1;
  FrameExtractor frames_;
  uint64_t last_id_ = 0;
  HelloResponse hello_;
  std::string role_;
};

}  // namespace smoqe::server

#endif  // SMOQE_SERVER_CLIENT_H_
