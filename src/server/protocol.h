/// \file
/// \brief The smoqed wire protocol (docs/PROTOCOL.md): a length-prefixed
/// binary framing with a once-per-connection handshake that binds a role
/// (= security view) to the session, then QUERY / QUERY_BATCH / UPDATE /
/// STAT request frames and their typed responses.
///
/// Everything here is pure byte manipulation — no sockets, no engine —
/// shared verbatim by the server, the client library, the CLI and the
/// differential test harness, so "every byte of every response decodes
/// to exactly the library answer" is checked through one codec.
///
/// Framing:
///
///     frame := u32 payload_len (LE) | u8 opcode | body
///
/// `payload_len` counts the opcode byte plus the body, so an empty frame
/// has payload_len == 1. Integers are little-endian fixed width; strings
/// are u32 length + raw bytes (no terminator). Frames larger than the
/// receiver's bound are a protocol error (the stream cannot be resynced
/// past an untrusted length, so the connection closes).

#ifndef SMOQE_SERVER_PROTOCOL_H_
#define SMOQE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace smoqe::server {

/// Protocol version exchanged in the handshake. Bumped on any frame
/// layout change; the server accepts [kMinProtocolVersion,
/// kProtocolVersion] and rejects anything else. v2 adds the optional
/// trace-context request extension and the trace-echo response
/// extension (docs/PROTOCOL.md "Version 2"); every v1 frame is also a
/// valid v2 frame, so v1 clients keep working unchanged.
inline constexpr uint32_t kProtocolVersion = 2;
inline constexpr uint32_t kMinProtocolVersion = 1;

/// Default bound on a *request* frame (what the server will buffer for
/// one frame before declaring the stream hostile).
inline constexpr size_t kDefaultMaxRequestFrame = 1u << 20;  // 1 MiB
/// Default bound on a *response* frame (what the client will buffer).
/// Larger: answers carry serialized XML subtrees.
inline constexpr size_t kDefaultMaxResponseFrame = 64u << 20;  // 64 MiB

/// Request opcodes (client → server). Responses echo the request opcode
/// with the top bit set; kError is the wire-level failure frame for
/// requests that could not be decoded at all.
enum class Opcode : uint8_t {
  kHello = 0x01,
  kQuery = 0x02,
  kQueryBatch = 0x03,
  kUpdate = 0x04,
  kStat = 0x05,
  kHelloOk = 0x81,
  kQueryResult = 0x82,
  kQueryBatchResult = 0x83,
  kUpdateResult = 0x84,
  kStatResult = 0x85,
  kError = 0xFF,
};

/// Stable on-the-wire status codes (docs/PROTOCOL.md status table).
/// These are part of the protocol contract — the numeric values never
/// change even if core::StatusCode is reordered; FromStatus/ToStatus
/// translate explicitly.
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kIOError = 7,
  kInternal = 8,
  kPermissionDenied = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
  kRejectedBusy = 12,
  /// Wire-level failure with no core::Status analogue: malformed frame,
  /// unknown opcode, handshake violation, frame bound exceeded.
  kProtocolError = 13,
  kUnknown = 14,
};

/// Maps an engine status onto the wire (OK → kOk; anything the table
/// doesn't name → kUnknown, never a crash).
WireCode FromStatus(StatusCode code);
/// Rebuilds a client-side Status carrying `message` for a wire code.
/// kProtocolError / kUnknown come back as Internal — they name transport
/// failures the library API has no vocabulary for.
Status ToStatus(WireCode code, std::string message);
/// Human-readable wire-code name ("OK", "REJECTED_BUSY", ...).
const char* WireCodeName(WireCode code);
/// Whether a client may retry the identical request and hope for a
/// different outcome (docs/PROTOCOL.md "Retryability").
bool IsRetryable(WireCode code);

// ---------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------

/// Appends little-endian primitives and length-prefixed strings to a
/// byte buffer. Building a frame: encode the body with a Writer, then
/// Frame() wraps it with the length prefix and opcode.
class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutStr(std::string_view s);

  const std::string& bytes() const { return buf_; }
  std::string MoveBytes() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Wraps an encoded body as one wire frame: u32 len | u8 opcode | body.
std::string Frame(Opcode op, std::string_view body);

/// Sequential decoder over one frame body. Every getter returns false —
/// and poisons the reader — on underflow, so decode functions can check
/// once at the end (`ok()`); a poisoned reader never reads past the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  /// Bounded string read: fails (cleanly) if the declared length runs
  /// past the end of the frame, which is how truncated-inside-a-frame
  /// mutants surface as protocol errors instead of overreads.
  bool GetStr(std::string* s);

  bool ok() const { return !failed_; }
  /// True when the whole body was consumed — trailing garbage after a
  /// well-formed body is also a protocol error.
  bool AtEnd() const { return !failed_ && pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// ---------------------------------------------------------------------
// Frame extraction from a byte stream
// ---------------------------------------------------------------------

/// One complete frame lifted off the stream.
struct RawFrame {
  uint8_t opcode = 0;
  std::string body;
};

/// Reassembles frames from arbitrarily fragmented reads (short reads
/// across frame boundaries are the normal case on a socket — the unit
/// test feeds one byte at a time). Append() buffers; Next() yields the
/// next complete frame, nullopt when more bytes are needed, or a sticky
/// error when the stream declared a frame larger than `max_frame` (no
/// resync is possible past an untrusted length).
class FrameExtractor {
 public:
  explicit FrameExtractor(size_t max_frame = kDefaultMaxRequestFrame)
      : max_frame_(max_frame) {}

  void Append(std::string_view bytes) { buf_.append(bytes); }

  /// Next complete frame, if one is buffered. After an over-limit
  /// length prefix, returns nullopt forever and `overflow()` is true.
  std::optional<RawFrame> Next();

  bool overflow() const { return overflow_; }
  /// Bytes buffered but not yet consumed (for backpressure accounting).
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  size_t max_frame_;
  std::string buf_;
  size_t consumed_ = 0;  // prefix of buf_ already handed out as frames
  bool overflow_ = false;
};

// ---------------------------------------------------------------------
// Typed messages
// ---------------------------------------------------------------------

/// Evaluation mode on the wire (mirrors core::EvalMode, stable values).
enum class WireEvalMode : uint8_t { kDom = 0, kStax = 1 };

/// Request trace-context flags (v2 extension).
inline constexpr uint8_t kTraceFlagProfile = 0x01;  ///< PROFILE requested

/// v2 request extension: a client-minted 64-bit trace id the server
/// adopts for its own spans (so client and server logs correlate), plus
/// flags. Encoded — only when `has()` — after the v1 body as one
/// length-prefixed block `u32 ext_len | u64 trace_id | u8 flags`;
/// decoders ignore unknown trailing bytes inside the block (forward
/// compatibility) and treat an absent block as all-defaults.
struct TraceContext {
  uint64_t trace_id = 0;
  uint8_t flags = 0;

  bool has() const { return trace_id != 0 || flags != 0; }
  bool profile() const { return (flags & kTraceFlagProfile) != 0; }
};

/// v2 response extension, echoed — on success AND failure frames — iff
/// the request carried a TraceContext: the adopted trace id, total
/// server-side nanoseconds (frame arrival → response encode; the final
/// socket flush is excluded, it lands in the server's own trace as
/// `write_flush`), and an optional profile JSON when the request set
/// kTraceFlagProfile and the operation produced one.
struct TraceEcho {
  bool present = false;  ///< not encoded; true when the block was on the wire
  uint64_t trace_id = 0;
  uint64_t server_ns = 0;
  uint8_t has_profile = 0;
  std::string profile_json;  ///< tel::ProfileRenderer::Json payload
};

/// HELLO — must be the first frame on a connection; binds the role.
struct HelloRequest {
  uint64_t id = 0;
  uint32_t version = kProtocolVersion;
  /// Security view the session acts as; "" = trusted direct access
  /// (only honored when the server allows it).
  std::string role;
};

struct HelloResponse {
  uint64_t id = 0;
  WireCode code = WireCode::kOk;
  /// On kOk: server banner. Otherwise: the rejection explain.
  std::string message;
};

/// QUERY — one Regular XPath query against one document, evaluated
/// through the session's bound view.
struct QueryRequest {
  uint64_t id = 0;
  std::string doc;
  std::string query;
  WireEvalMode mode = WireEvalMode::kDom;
  uint8_t use_tax = 0;
  /// Per-request guardrails, 0 = inherit the engine default.
  uint64_t deadline_ms = 0;
  uint64_t max_memory_bytes = 0;
  /// v2: optional trace context (absent on the wire when !has()).
  TraceContext trace;
};

struct QueryResponse {
  uint64_t id = 0;
  WireCode code = WireCode::kOk;
  std::string error;  ///< set iff code != kOk
  uint64_t doc_epoch = 0;
  std::vector<std::string> answers_xml;
  /// v2: echoed iff the request carried a trace context.
  TraceEcho echo;
};

/// QUERY_BATCH — N queries of one session over one document in one call
/// (all items share the bound view and one pinned snapshot).
struct BatchItem {
  std::string query;
  WireEvalMode mode = WireEvalMode::kDom;
  uint8_t use_tax = 0;
};

struct QueryBatchRequest {
  uint64_t id = 0;
  std::string doc;
  uint64_t deadline_ms = 0;
  uint64_t max_memory_bytes = 0;
  std::vector<BatchItem> items;
  /// v2: optional trace context (absent on the wire when !has()).
  TraceContext trace;
};

/// Per-item outcome of a batch: item-local failures carry a code +
/// error; sibling items still answer (core batch semantics, §S3).
struct BatchItemResult {
  WireCode code = WireCode::kOk;
  std::string error;
  uint64_t doc_epoch = 0;
  std::vector<std::string> answers_xml;
};

struct QueryBatchResponse {
  uint64_t id = 0;
  WireCode code = WireCode::kOk;
  std::string error;  ///< whole-call failure; items empty then
  std::vector<BatchItemResult> items;
  /// v2: echoed iff the request carried a trace context.
  TraceEcho echo;
};

/// UPDATE — one update statement through the session's bound view.
struct UpdateRequest {
  uint64_t id = 0;
  std::string doc;
  std::string statement;
  uint8_t dry_run = 0;
  uint64_t deadline_ms = 0;
  uint64_t max_memory_bytes = 0;
  /// v2: optional trace context (absent on the wire when !has()).
  /// kTraceFlagProfile only forces span recording — update responses
  /// never carry a profile (echo.has_profile is always 0).
  TraceContext trace;
};

struct UpdateResponse {
  uint64_t id = 0;
  WireCode code = WireCode::kOk;
  std::string error;
  uint64_t doc_epoch = 0;
  std::string canonical;
  uint64_t nodes_inserted = 0;
  uint64_t nodes_deleted = 0;
  /// v2: echoed iff the request carried a trace context.
  TraceEcho echo;
};

/// STAT — server + engine metrics dump (no role required). v2 adds
/// kSlow: the engine's slow-query ring as a JSON array.
enum class StatFormat : uint8_t { kJson = 0, kPrometheus = 1, kSlow = 2 };

struct StatRequest {
  uint64_t id = 0;
  StatFormat format = StatFormat::kJson;
};

struct StatResponse {
  uint64_t id = 0;
  WireCode code = WireCode::kOk;
  std::string error;
  std::string payload;
};

/// ERROR — wire-level failure frame: the request could not be decoded
/// (or arrived before the handshake). `id` is the request id when the
/// server could peek it, 0 otherwise.
struct ErrorResponse {
  uint64_t id = 0;
  WireCode code = WireCode::kProtocolError;
  std::string message;
};

// Encoders return a complete frame (length prefix included).
std::string Encode(const HelloRequest& m);
std::string Encode(const HelloResponse& m);
std::string Encode(const QueryRequest& m);
std::string Encode(const QueryResponse& m);
std::string Encode(const QueryBatchRequest& m);
std::string Encode(const QueryBatchResponse& m);
std::string Encode(const UpdateRequest& m);
std::string Encode(const UpdateResponse& m);
std::string Encode(const StatRequest& m);
std::string Encode(const StatResponse& m);
std::string Encode(const ErrorResponse& m);

// Decoders take one frame *body* (opcode already dispatched on) and
// reject underflow, bound violations and trailing bytes with a clean
// InvalidArgument — never UB, whatever the bytes.
Result<HelloRequest> DecodeHelloRequest(std::string_view body);
Result<HelloResponse> DecodeHelloResponse(std::string_view body);
Result<QueryRequest> DecodeQueryRequest(std::string_view body);
Result<QueryResponse> DecodeQueryResponse(std::string_view body);
Result<QueryBatchRequest> DecodeQueryBatchRequest(std::string_view body);
Result<QueryBatchResponse> DecodeQueryBatchResponse(std::string_view body);
Result<UpdateRequest> DecodeUpdateRequest(std::string_view body);
Result<UpdateResponse> DecodeUpdateResponse(std::string_view body);
Result<StatRequest> DecodeStatRequest(std::string_view body);
Result<StatResponse> DecodeStatResponse(std::string_view body);
Result<ErrorResponse> DecodeErrorResponse(std::string_view body);

/// Best-effort request id of any request frame body (every request body
/// begins with the u64 id). Lets the server echo the id in ERROR frames
/// for bodies it cannot fully decode. 0 when even that much is missing.
uint64_t PeekRequestId(std::string_view body);

}  // namespace smoqe::server

#endif  // SMOQE_SERVER_PROTOCOL_H_
