/// \file
/// \brief smoqed's network front door (docs/DESIGN.md §10, PROTOCOL.md):
/// an epoll-based event loop accepting loopback/TCP connections that
/// speak the length-prefixed binary protocol of protocol.h.
///
/// Shape (modeled on LogCabin's OpaqueServer non-blocking accept/read/
/// write monitor): ONE event-loop thread owns every socket — accepts,
/// reads bytes into a per-connection FrameExtractor, writes buffered
/// responses — and N worker threads execute decoded requests against the
/// engine through the connection's role-bound core::Session. A
/// connection's requests execute strictly in arrival order (one in
/// flight at a time), so pipelined clients get responses in request
/// order; concurrency comes from many connections, which is the workload
/// the engine's snapshot/pool layers were built for.
///
/// Guardrails ride along unchanged: per-request deadline / memory knobs
/// travel in the frames, the engine's admission gate surfaces as a
/// REJECTED_BUSY response, the server's own pipeline bound fast-fails
/// the same way before the engine is touched, and a client disconnect
/// cancels the session's token so in-flight work unwinds (Cancelled, no
/// audit record) instead of computing for nobody.

#ifndef SMOQE_SERVER_SERVER_H_
#define SMOQE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/session.h"
#include "src/core/smoqe.h"
#include "src/server/protocol.h"

namespace smoqe::server {

/// Service-layer knobs of one Server.
struct ServerOptions {
  /// Address to bind. Defaults to loopback; a daemon fronting real
  /// traffic sets 0.0.0.0 explicitly.
  std::string host = "127.0.0.1";
  /// TCP port; 0 = ephemeral (the test fixture's mode — read the bound
  /// port back via Server::port()).
  uint16_t port = 0;
  /// Request-executing worker threads.
  int workers = 2;
  /// Whether a HELLO with the empty role (trusted direct access, no
  /// security view) is accepted. Off by default: a network daemon's
  /// reason to exist is the view boundary.
  bool allow_direct = false;
  /// Largest request frame the server will buffer (protocol bound; an
  /// over-declared length is unrecoverable and closes the connection).
  size_t max_request_frame = kDefaultMaxRequestFrame;
  /// Requests one connection may have queued behind its in-flight one.
  /// Beyond it the server answers REJECTED_BUSY immediately — protocol-
  /// level backpressure, before any engine work.
  int max_pipeline = 64;
  /// Concurrent connections; accepts beyond it are closed immediately.
  int max_connections = 1024;
};

/// \brief The daemon: owns the listener, the event loop thread and the
/// worker pool; executes requests against a caller-owned Smoqe engine.
///
/// Lifecycle: construct → Start() (binds + spawns threads; fails with a
/// Status on bind errors) → serve until Stop() (idempotent; joins every
/// thread; in-flight requests are cancelled via their session tokens).
/// The engine must outlive the server. Metrics land in the engine's
/// telemetry registry under `server.*` (null-safe when telemetry is
/// off), so a STAT frame or `smoqe-cli stat` sees engine and server
/// counters in one dump.
class Server {
 public:
  Server(core::Smoqe* engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, spawns the loop + workers. Returns IOError with
  /// errno detail on bind/listen failure.
  Status Start();

  /// Stops accepting, cancels in-flight sessions, closes every
  /// connection, joins all threads. Safe to call twice.
  void Stop();

  /// The bound port (after Start; the ephemeral-port answer).
  uint16_t port() const { return port_; }

  const ServerOptions& options() const { return options_; }
  core::Smoqe* engine() const { return engine_; }

 private:
  /// One encoded response plus the server-side trace riding with it
  /// (null unless the request carried a v2 trace context and telemetry
  /// is on). The loop thread stamps `write_flush` into the trace after
  /// the socket write, then finishes it into the recorder ring.
  struct Outgoing {
    std::string bytes;
    std::shared_ptr<telemetry::Trace> trace;
  };

  /// A request parked behind the connection's in-flight one, stamped
  /// with its arrival time and queue depth so the eventual trace can
  /// say how long it waited and behind how much.
  struct PendingRequest {
    RawFrame frame;
    std::chrono::steady_clock::time_point enqueue;
    int pending_depth = 0;
  };

  /// Per-connection state. The event loop owns the fd and every field
  /// except `outbox`, which workers fill under `out_mu`; the Session's
  /// CancelToken is the one cross-thread control signal (atomic).
  struct Connection {
    int fd = -1;
    uint64_t conn_id = 0;
    FrameExtractor frames;
    /// Bound at handshake; null until then.
    std::unique_ptr<core::Session> session;
    /// Negotiated protocol version (set at handshake). Workers scrub
    /// the trace extension off requests from v1 peers, which cannot
    /// have sent one intentionally.
    uint32_t version = kProtocolVersion;
    /// `server.requests_by_role.<role>` counter, resolved once at
    /// handshake ("" → "direct"); null when telemetry is off.
    telemetry::Counter* role_requests = nullptr;
    /// Loop-confined: requests waiting behind the in-flight one.
    std::deque<PendingRequest> pending;
    bool in_flight = false;
    bool dead = false;       ///< loop saw EOF/error; fd closed
    bool close_after_flush = false;  ///< fatal protocol error sent
    std::string wbuf;        ///< bytes the socket hasn't accepted yet
    size_t wbuf_off = 0;
    /// Worker → loop handoff of encoded response frames.
    std::mutex out_mu;
    std::vector<Outgoing> outbox;

    explicit Connection(size_t max_frame) : frames(max_frame) {}
    ~Connection();
  };

  /// One unit of worker work: a connection, the request to run, and its
  /// admission stamps (arrival time, queue depth at arrival).
  struct WorkItem {
    std::shared_ptr<Connection> conn;
    RawFrame frame;
    std::chrono::steady_clock::time_point enqueue;
    int pending_depth = 0;
  };

  /// server.* metrics, resolved once (null structs when telemetry off).
  struct Metrics {
    explicit Metrics(core::Smoqe* engine);
    telemetry::Counter* connections_opened = nullptr;
    telemetry::Counter* connections_closed = nullptr;
    telemetry::Counter* handshakes = nullptr;
    telemetry::Counter* handshake_failures = nullptr;
    telemetry::Counter* requests = nullptr;
    telemetry::Counter* responses_ok = nullptr;
    telemetry::Counter* responses_error = nullptr;
    telemetry::Counter* protocol_errors = nullptr;
    telemetry::Counter* rejected_pipeline = nullptr;
    telemetry::Counter* disconnects_mid_request = nullptr;
    telemetry::Counter* bytes_read = nullptr;
    telemetry::Counter* bytes_written = nullptr;
    telemetry::Histogram* request_ns = nullptr;
    telemetry::Histogram* pipeline_depth = nullptr;
    void Count(telemetry::Counter* c, uint64_t n = 1) {
      if (c != nullptr) c->Add(n);
    }
  };

  // --- event loop (all run on loop_thread_) ---
  void LoopMain();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  void DrainCompletions();
  /// Lifts complete frames off `conn` and routes them (handshake inline,
  /// requests to the workers / pending queue).
  void ProcessFrames(const std::shared_ptr<Connection>& conn);
  void HandleHandshake(const std::shared_ptr<Connection>& conn,
                       const RawFrame& frame);
  /// Queues `bytes` for writing and flushes what the socket accepts.
  void SendBytes(const std::shared_ptr<Connection>& conn, std::string bytes);
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void UpdateEpollInterest(Connection* conn);
  void WakeLoop();

  // --- workers ---
  void WorkerMain();
  /// Decodes + executes one request, returns the encoded response frame
  /// plus the server-side trace (if the request carried a context).
  Outgoing ExecuteRequest(const WorkItem& item);
  /// Adopts the wire trace context as a server-side trace: queue_wait
  /// span back-dated to the frame's arrival, pipeline depth and role as
  /// attributes. Null when the context is absent or telemetry is off.
  std::shared_ptr<telemetry::Trace> BeginWireTrace(const char* op,
                                                   const TraceContext& ctx,
                                                   const Connection& conn,
                                                   const WorkItem& item);
  /// Finishes `trace` into the recorder ring (null-safe both ways).
  void FinishTrace(const std::shared_ptr<telemetry::Trace>& trace);
  std::string ExecuteQuery(core::Session& session, const QueryRequest& req,
                           const WorkItem& item,
                           const std::shared_ptr<telemetry::Trace>& trace);
  std::string ExecuteQueryBatch(core::Session& session,
                                const QueryBatchRequest& req,
                                const WorkItem& item,
                                const std::shared_ptr<telemetry::Trace>& trace);
  std::string ExecuteUpdate(core::Session& session, const UpdateRequest& req,
                            const WorkItem& item,
                            const std::shared_ptr<telemetry::Trace>& trace);
  std::string ExecuteStat(const StatRequest& req);

  /// A typed response frame carrying only (id, code, message) for the
  /// given *request* opcode — so failures decode through the same stru-
  /// cts as successes. Unknown opcodes fall back to the ERROR frame.
  static std::string ErrorResponseFor(uint8_t opcode, uint64_t id,
                                      WireCode code, std::string message);

  core::Smoqe* engine_;
  ServerOptions options_;
  Metrics metrics_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool started_ = false;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  /// Loop-owned connection table (conn_id → connection).
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  /// Worker queue (loop → workers).
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_;

  /// Completion queue (workers → loop, drained on eventfd wakeups).
  std::mutex done_mu_;
  std::vector<std::shared_ptr<Connection>> done_;
};

}  // namespace smoqe::server

#endif  // SMOQE_SERVER_SERVER_H_
