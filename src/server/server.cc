#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/telemetry/profile.h"
#include "src/telemetry/telemetry.h"

namespace smoqe::server {

namespace {

/// epoll user-data ids for the two non-connection fds; connection ids
/// start above them.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kEventFdTag = 1;
constexpr uint64_t kFirstConnId = 2;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

uint64_t NsSince(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Metrics::Metrics(core::Smoqe* engine) {
  telemetry::Telemetry* tel = engine->telemetry();
  if (tel == nullptr) return;
  telemetry::MetricsRegistry& reg = tel->registry();
  connections_opened = &reg.GetCounter("server.connections_opened");
  connections_closed = &reg.GetCounter("server.connections_closed");
  handshakes = &reg.GetCounter("server.handshakes");
  handshake_failures = &reg.GetCounter("server.handshake_failures");
  requests = &reg.GetCounter("server.requests");
  responses_ok = &reg.GetCounter("server.responses_ok");
  responses_error = &reg.GetCounter("server.responses_error");
  protocol_errors = &reg.GetCounter("server.protocol_errors");
  rejected_pipeline = &reg.GetCounter("server.rejected_pipeline");
  disconnects_mid_request = &reg.GetCounter("server.disconnects_mid_request");
  bytes_read = &reg.GetCounter("server.bytes_read");
  bytes_written = &reg.GetCounter("server.bytes_written");
  request_ns = &reg.GetHistogram("server.request_ns");
  pipeline_depth = &reg.GetHistogram("server.pipeline_depth");
}

Server::Server(core::Smoqe* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)), metrics_(engine) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listener)");

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  event_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (event_fd_ < 0) return Errno("eventfd");

  epoll_event ev;
  std::memset(&ev, 0, sizeof ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listener)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kEventFdTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    return Errno("epoll_ctl(eventfd)");
  }

  running_.store(true, std::memory_order_release);
  started_ = true;
  loop_thread_ = std::thread([this] { LoopMain(); });
  const int workers = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  started_ = false;
  running_.store(false, std::memory_order_release);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop cancelled every session token on the way out, so workers
  // stuck inside an engine call unwind at their next guard check.
  {
    std::lock_guard<std::mutex> lock(work_mu_);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Single-threaded from here: release every fd.
  conns_.clear();  // Connection dtor closes surviving fds
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  listen_fd_ = epoll_fd_ = event_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_.clear();
  }
}

void Server::WakeLoop() {
  if (event_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; nothing to do.
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof one);
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

void Server::LoopMain() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; shut down rather than spin
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        HandleAccept();
        continue;
      }
      if (tag == kEventFdTag) {
        uint64_t drained;
        while (::read(event_fd_, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      std::shared_ptr<Connection> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        if (conn->in_flight || !conn->pending.empty()) {
          metrics_.Count(metrics_.disconnects_mid_request);
        }
        CloseConnection(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      if (conn->fd >= 0 && (events[i].events & EPOLLOUT) != 0) {
        HandleWritable(conn);
      }
    }
    // Completions may have been posted while handling events (or the
    // eventfd write raced our drain); always sweep.
    DrainCompletions();
  }
  // Shutdown: stop the world. Cancelling the tokens unwinds any worker
  // still inside the engine; fds are closed later by Stop() once every
  // thread is joined (workers may still hold Connection refs).
  for (auto& [id, conn] : conns_) {
    if (conn->session != nullptr) conn->session->cancel_token().Cancel();
  }
}

void Server::HandleAccept() {
  for (;;) {
    sockaddr_in peer;
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (conns_.size() >= static_cast<size_t>(options_.max_connections) ||
        !SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_shared<Connection>(options_.max_request_frame);
    conn->fd = fd;
    // conn ids live above the listener/eventfd tags (wrap included).
    if (next_conn_id_ < kFirstConnId) next_conn_id_ = kFirstConnId;
    conn->conn_id = next_conn_id_++;

    epoll_event ev;
    std::memset(&ev, 0, sizeof ev);
    ev.events = EPOLLIN;
    ev.data.u64 = conn->conn_id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // conn dtor closes fd
    }
    conns_.emplace(conn->conn_id, conn);
    metrics_.Count(metrics_.connections_opened);
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof buf);
    if (n > 0) {
      metrics_.Count(metrics_.bytes_read, static_cast<uint64_t>(n));
      conn->frames.Append(std::string_view(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: the peer is gone. Cancel in-flight work and
    // reap — there is nobody left to flush to.
    if (conn->in_flight || !conn->pending.empty()) {
      metrics_.Count(metrics_.disconnects_mid_request);
    }
    CloseConnection(conn);
    return;
  }
  ProcessFrames(conn);
}

void Server::ProcessFrames(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0 || conn->close_after_flush) return;
  while (auto frame = conn->frames.Next()) {
    const Opcode op = static_cast<Opcode>(frame->opcode);
    if (conn->session == nullptr) {
      // First frame must be the handshake.
      if (op != Opcode::kHello) {
        metrics_.Count(metrics_.protocol_errors);
        ErrorResponse err;
        err.id = PeekRequestId(frame->body);
        err.message = "handshake required before requests";
        SendBytes(conn, Encode(err));
        conn->close_after_flush = true;
        break;
      }
      HandleHandshake(conn, *frame);
      if (conn->close_after_flush || conn->fd < 0) break;
      continue;
    }
    switch (op) {
      case Opcode::kHello: {
        // A second handshake would rebind the role mid-connection —
        // exactly what the session model forbids.
        metrics_.Count(metrics_.protocol_errors);
        ErrorResponse err;
        err.id = PeekRequestId(frame->body);
        err.message = "duplicate handshake";
        SendBytes(conn, Encode(err));
        conn->close_after_flush = true;
        break;
      }
      case Opcode::kQuery:
      case Opcode::kQueryBatch:
      case Opcode::kUpdate:
      case Opcode::kStat: {
        metrics_.Count(metrics_.requests);
        if (conn->role_requests != nullptr) conn->role_requests->Add(1);
        // Admission stamps: how deep this request queued behind the
        // in-flight one (0 = dispatched immediately) and when it
        // arrived — the eventual trace's queue_wait span.
        const int depth = static_cast<int>(conn->pending.size()) +
                          (conn->in_flight ? 1 : 0);
        if (metrics_.pipeline_depth != nullptr) {
          metrics_.pipeline_depth->Record(static_cast<uint64_t>(depth));
        }
        const auto now = std::chrono::steady_clock::now();
        if (conn->in_flight) {
          if (conn->pending.size() >=
              static_cast<size_t>(options_.max_pipeline)) {
            metrics_.Count(metrics_.rejected_pipeline);
            metrics_.Count(metrics_.responses_error);
            SendBytes(conn, ErrorResponseFor(
                                frame->opcode, PeekRequestId(frame->body),
                                WireCode::kRejectedBusy,
                                "connection pipeline full (max_pipeline)"));
            break;
          }
          conn->pending.push_back(
              PendingRequest{std::move(*frame), now, depth});
          break;
        }
        conn->in_flight = true;
        {
          std::lock_guard<std::mutex> lock(work_mu_);
          work_.push_back(WorkItem{conn, std::move(*frame), now, depth});
        }
        work_cv_.notify_one();
        break;
      }
      default: {
        // Unknown opcode in a well-framed message: recoverable — the
        // frame boundary is trusted, so skip it and answer the next one.
        metrics_.Count(metrics_.protocol_errors);
        ErrorResponse err;
        err.id = PeekRequestId(frame->body);
        err.message =
            "unknown opcode " + std::to_string(static_cast<int>(frame->opcode));
        SendBytes(conn, Encode(err));
        break;
      }
    }
    if (conn->close_after_flush || conn->fd < 0) break;
  }
  if (conn->fd >= 0 && conn->frames.overflow()) {
    // Over-declared frame length: nothing after it can be trusted.
    metrics_.Count(metrics_.protocol_errors);
    ErrorResponse err;
    err.message = "frame exceeds size limit";
    SendBytes(conn, Encode(err));
    conn->close_after_flush = true;
  }
  if (conn->fd >= 0 && conn->close_after_flush && !conn->in_flight &&
      conn->wbuf_off >= conn->wbuf.size()) {
    CloseConnection(conn);
  }
}

void Server::HandleHandshake(const std::shared_ptr<Connection>& conn,
                             const RawFrame& frame) {
  auto hello = DecodeHelloRequest(frame.body);
  HelloResponse resp;
  if (!hello.ok()) {
    metrics_.Count(metrics_.protocol_errors);
    metrics_.Count(metrics_.handshake_failures);
    ErrorResponse err;
    err.message = "malformed HELLO";
    SendBytes(conn, Encode(err));
    conn->close_after_flush = true;
    return;
  }
  resp.id = hello->id;
  if (hello->version < kMinProtocolVersion ||
      hello->version > kProtocolVersion) {
    resp.code = WireCode::kFailedPrecondition;
    resp.message = "protocol version mismatch: server speaks " +
                   std::to_string(kMinProtocolVersion) + ".." +
                   std::to_string(kProtocolVersion) + ", client sent " +
                   std::to_string(hello->version);
  } else if (hello->role.empty() && !options_.allow_direct) {
    resp.code = WireCode::kPermissionDenied;
    resp.message = "direct (viewless) access is disabled on this server";
  } else {
    auto session = core::Session::Open(engine_, hello->role);
    if (!session.ok()) {
      resp.code = FromStatus(session.status().code());
      resp.message = session.status().message();
    } else {
      conn->session =
          std::make_unique<core::Session>(session.MoveValue());
      conn->version = hello->version;
      if (engine_->telemetry() != nullptr) {
        const std::string role =
            hello->role.empty() ? "direct" : hello->role;
        conn->role_requests = &engine_->telemetry()->registry().GetCounter(
            "server.requests_by_role." + role);
      }
      resp.code = WireCode::kOk;
      // Banner echoes the *negotiated* version: a v1 client hears v1
      // back and knows no extensions will ride on its responses.
      resp.message = "smoqed protocol " + std::to_string(hello->version) +
                     ", role '" + hello->role + "'";
    }
  }
  if (resp.code == WireCode::kOk) {
    metrics_.Count(metrics_.handshakes);
  } else {
    metrics_.Count(metrics_.handshake_failures);
    conn->close_after_flush = true;
  }
  SendBytes(conn, Encode(resp));
}

void Server::SendBytes(const std::shared_ptr<Connection>& conn,
                       std::string bytes) {
  if (conn->fd < 0) return;
  if (conn->wbuf_off >= conn->wbuf.size()) {
    conn->wbuf = std::move(bytes);
    conn->wbuf_off = 0;
  } else {
    conn->wbuf.append(bytes);
  }
  FlushWrites(conn);
}

void Server::FlushWrites(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  while (conn->wbuf_off < conn->wbuf.size()) {
    const ssize_t n = ::write(conn->fd, conn->wbuf.data() + conn->wbuf_off,
                              conn->wbuf.size() - conn->wbuf_off);
    if (n > 0) {
      metrics_.Count(metrics_.bytes_written, static_cast<uint64_t>(n));
      conn->wbuf_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);  // EPIPE etc.: peer is gone
    return;
  }
  if (conn->wbuf_off >= conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->wbuf_off = 0;
  }
  UpdateEpollInterest(conn.get());
}

void Server::HandleWritable(const std::shared_ptr<Connection>& conn) {
  FlushWrites(conn);
  if (conn->fd >= 0 && conn->close_after_flush && !conn->in_flight &&
      conn->wbuf_off >= conn->wbuf.size()) {
    CloseConnection(conn);
  }
}

void Server::UpdateEpollInterest(Connection* conn) {
  if (conn->fd < 0) return;
  epoll_event ev;
  std::memset(&ev, 0, sizeof ev);
  ev.events = EPOLLIN;
  if (conn->wbuf_off < conn->wbuf.size()) ev.events |= EPOLLOUT;
  ev.data.u64 = conn->conn_id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::DrainCompletions() {
  std::vector<std::shared_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done.swap(done_);
  }
  for (const std::shared_ptr<Connection>& conn : done) {
    std::vector<Outgoing> out;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      out.swap(conn->outbox);
    }
    conn->in_flight = false;
    if (conn->fd < 0) {
      // Disconnected while executing: nobody to flush to, but the
      // traces still land in the recorder ring (no write_flush span).
      for (Outgoing& o : out) FinishTrace(o.trace);
      continue;
    }
    for (Outgoing& o : out) {
      if (conn->fd < 0) {  // an earlier write in this batch failed
        FinishTrace(o.trace);
        continue;
      }
      const auto w0 = std::chrono::steady_clock::now();
      SendBytes(conn, std::move(o.bytes));
      if (o.trace != nullptr) {
        o.trace->AddCompletedSpan("write_flush", NsSince(w0));
        FinishTrace(o.trace);
      }
    }
    if (conn->fd < 0) continue;  // write failure closed it
    if (conn->close_after_flush) {
      if (conn->wbuf_off >= conn->wbuf.size()) CloseConnection(conn);
      continue;
    }
    if (!conn->pending.empty()) {
      PendingRequest next = std::move(conn->pending.front());
      conn->pending.pop_front();
      conn->in_flight = true;
      {
        std::lock_guard<std::mutex> lock(work_mu_);
        work_.push_back(WorkItem{conn, std::move(next.frame), next.enqueue,
                                 next.pending_depth});
      }
      work_cv_.notify_one();
    }
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  if (conn->session != nullptr) conn->session->cancel_token().Cancel();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  conn->dead = true;
  conn->pending.clear();
  conns_.erase(conn->conn_id);
  metrics_.Count(metrics_.connections_closed);
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

void Server::WorkerMain() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] {
        return !work_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (work_.empty()) {
        if (!running_.load(std::memory_order_acquire)) return;
        continue;
      }
      item = std::move(work_.front());
      work_.pop_front();
    }
    const auto t0 = std::chrono::steady_clock::now();
    Outgoing response = ExecuteRequest(item);
    if (metrics_.request_ns != nullptr) {
      metrics_.request_ns->Record(NsSince(t0));
    }
    {
      std::lock_guard<std::mutex> lock(item.conn->out_mu);
      item.conn->outbox.push_back(std::move(response));
    }
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(item.conn);
    }
    WakeLoop();
  }
}

std::string Server::ErrorResponseFor(uint8_t opcode, uint64_t id,
                                     WireCode code, std::string message) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kQuery: {
      QueryResponse r;
      r.id = id;
      r.code = code;
      r.error = std::move(message);
      return Encode(r);
    }
    case Opcode::kQueryBatch: {
      QueryBatchResponse r;
      r.id = id;
      r.code = code;
      r.error = std::move(message);
      return Encode(r);
    }
    case Opcode::kUpdate: {
      UpdateResponse r;
      r.id = id;
      r.code = code;
      r.error = std::move(message);
      return Encode(r);
    }
    case Opcode::kStat: {
      StatResponse r;
      r.id = id;
      r.code = code;
      r.error = std::move(message);
      return Encode(r);
    }
    default: {
      ErrorResponse r;
      r.id = id;
      r.code = code;
      r.message = std::move(message);
      return Encode(r);
    }
  }
}

std::shared_ptr<telemetry::Trace> Server::BeginWireTrace(
    const char* op, const TraceContext& ctx, const Connection& conn,
    const WorkItem& item) {
  if (!ctx.has()) return nullptr;
  telemetry::Telemetry* tel = engine_->telemetry();
  if (tel == nullptr) return nullptr;
  std::shared_ptr<telemetry::Trace> trace =
      tel->traces().Begin(std::string("server.") + op, ctx.trace_id);
  // The queue wait happened before the trace existed; back-date it so
  // the span tree reads arrival → dispatch → facade stages.
  trace->AddCompletedSpan("queue_wait", NsSince(item.enqueue));
  trace->SetAttr("pipeline_depth", std::to_string(item.pending_depth));
  const std::string& role = conn.session->role();
  trace->SetAttr("role", role.empty() ? "direct" : role);
  return trace;
}

void Server::FinishTrace(const std::shared_ptr<telemetry::Trace>& trace) {
  if (trace == nullptr) return;
  telemetry::Telemetry* tel = engine_->telemetry();
  if (tel != nullptr) tel->traces().Finish(trace);
}

Server::Outgoing Server::ExecuteRequest(const WorkItem& item) {
  // A request can only reach a worker after the handshake bound the
  // session, so `conn.session` is set; the loop never rebinds it.
  Connection& conn = *item.conn;
  core::Session& session = *conn.session;
  const RawFrame& frame = item.frame;
  Outgoing out;
  switch (static_cast<Opcode>(frame.opcode)) {
    case Opcode::kQuery: {
      auto req = DecodeQueryRequest(frame.body);
      if (!req.ok()) break;
      // A v1 peer cannot have sent a trace context intentionally; any
      // well-formed-looking trailing block on its frames is noise.
      if (conn.version < 2) req->trace = TraceContext{};
      out.trace = BeginWireTrace("query", req->trace, conn, item);
      out.bytes = ExecuteQuery(session, *req, item, out.trace);
      return out;
    }
    case Opcode::kQueryBatch: {
      auto req = DecodeQueryBatchRequest(frame.body);
      if (!req.ok()) break;
      if (conn.version < 2) req->trace = TraceContext{};
      out.trace = BeginWireTrace("query_batch", req->trace, conn, item);
      out.bytes = ExecuteQueryBatch(session, *req, item, out.trace);
      return out;
    }
    case Opcode::kUpdate: {
      auto req = DecodeUpdateRequest(frame.body);
      if (!req.ok()) break;
      if (conn.version < 2) req->trace = TraceContext{};
      out.trace = BeginWireTrace("update", req->trace, conn, item);
      out.bytes = ExecuteUpdate(session, *req, item, out.trace);
      return out;
    }
    case Opcode::kStat: {
      auto req = DecodeStatRequest(frame.body);
      if (!req.ok()) break;
      out.bytes = ExecuteStat(*req);
      return out;
    }
    default:
      break;  // unreachable: the loop routes only known opcodes here
  }
  // Known opcode, undecodable body: the frame boundary held, so the
  // connection survives; the request itself is unanswerable.
  metrics_.Count(metrics_.protocol_errors);
  metrics_.Count(metrics_.responses_error);
  out.bytes =
      ErrorResponseFor(frame.opcode, PeekRequestId(frame.body),
                       WireCode::kProtocolError, "malformed request body");
  return out;
}

std::string Server::ExecuteQuery(
    core::Session& session, const QueryRequest& req, const WorkItem& item,
    const std::shared_ptr<telemetry::Trace>& trace) {
  core::SessionQueryOptions opts;
  opts.mode = req.mode == WireEvalMode::kStax ? core::EvalMode::kStax
                                              : core::EvalMode::kDom;
  opts.use_tax = req.use_tax != 0;
  core::SessionRequestOptions sreq;
  sreq.deadline_ms = req.deadline_ms;
  sreq.max_memory_bytes = req.max_memory_bytes;
  sreq.trace_id = req.trace.trace_id;
  sreq.profile = req.trace.profile();
  sreq.trace = trace;
  auto r = session.Query(req.doc, req.query, opts, sreq);
  QueryResponse resp;
  resp.id = req.id;
  if (!r.ok()) {
    resp.code = FromStatus(r.status().code());
    resp.error = r.status().message();
    metrics_.Count(metrics_.responses_error);
  } else {
    resp.doc_epoch = r->doc_epoch;
    resp.answers_xml = std::move(r->answers_xml);
    metrics_.Count(metrics_.responses_ok);
  }
  if (req.trace.has()) {
    resp.echo.present = true;
    resp.echo.trace_id = trace != nullptr ? trace->id() : req.trace.trace_id;
    resp.echo.server_ns = NsSince(item.enqueue);
    if (r.ok() && r->profile != nullptr) {
      // Re-stamp arrival-relative so queue_wait fits under total_ns and
      // the root-stage sum stays ≤ total_ns.
      r->profile->trace_id = resp.echo.trace_id;
      r->profile->total_ns = resp.echo.server_ns;
      resp.echo.has_profile = 1;
      resp.echo.profile_json = telemetry::ProfileRenderer::Json(*r->profile);
    }
  }
  return Encode(resp);
}

std::string Server::ExecuteQueryBatch(
    core::Session& session, const QueryBatchRequest& req, const WorkItem& item,
    const std::shared_ptr<telemetry::Trace>& trace) {
  std::vector<core::SessionBatchItem> items;
  items.reserve(req.items.size());
  for (const BatchItem& it : req.items) {
    core::SessionBatchItem s;
    s.query = it.query;
    s.options.mode = it.mode == WireEvalMode::kStax ? core::EvalMode::kStax
                                                    : core::EvalMode::kDom;
    s.options.use_tax = it.use_tax != 0;
    items.push_back(std::move(s));
  }
  core::SessionRequestOptions sreq;
  sreq.deadline_ms = req.deadline_ms;
  sreq.max_memory_bytes = req.max_memory_bytes;
  sreq.trace_id = req.trace.trace_id;
  sreq.profile = req.trace.profile();
  sreq.trace = trace;
  auto r = session.QueryBatch(req.doc, items, sreq);
  QueryBatchResponse resp;
  resp.id = req.id;
  if (!r.ok()) {
    resp.code = FromStatus(r.status().code());
    resp.error = r.status().message();
    metrics_.Count(metrics_.responses_error);
  } else {
    resp.items.reserve(r->size());
    for (core::QueryAnswer& a : *r) {
      BatchItemResult item_out;
      if (!a.status.ok()) {
        item_out.code = FromStatus(a.status.code());
        item_out.error = a.status.message();
      } else {
        item_out.doc_epoch = a.doc_epoch;
        item_out.answers_xml = std::move(a.answers_xml);
      }
      resp.items.push_back(std::move(item_out));
    }
    metrics_.Count(metrics_.responses_ok);
  }
  if (req.trace.has()) {
    resp.echo.present = true;
    resp.echo.trace_id = trace != nullptr ? trace->id() : req.trace.trace_id;
    resp.echo.server_ns = NsSince(item.enqueue);
    // The facade attaches the batch profile to the first answer.
    if (r.ok() && !r->empty() && r->front().profile != nullptr) {
      telemetry::Profile& p = *r->front().profile;
      p.trace_id = resp.echo.trace_id;
      p.total_ns = resp.echo.server_ns;
      resp.echo.has_profile = 1;
      resp.echo.profile_json = telemetry::ProfileRenderer::Json(p);
    }
  }
  return Encode(resp);
}

std::string Server::ExecuteUpdate(
    core::Session& session, const UpdateRequest& req, const WorkItem& item,
    const std::shared_ptr<telemetry::Trace>& trace) {
  core::SessionRequestOptions sreq;
  sreq.deadline_ms = req.deadline_ms;
  sreq.max_memory_bytes = req.max_memory_bytes;
  sreq.trace_id = req.trace.trace_id;
  sreq.profile = req.trace.profile();
  sreq.trace = trace;
  auto r = session.Update(req.doc, req.statement, req.dry_run != 0, sreq);
  UpdateResponse resp;
  resp.id = req.id;
  if (!r.ok()) {
    resp.code = FromStatus(r.status().code());
    resp.error = r.status().message();
    metrics_.Count(metrics_.responses_error);
  } else {
    resp.doc_epoch = r->stats.doc_epoch;
    resp.canonical = std::move(r->canonical);
    resp.nodes_inserted = r->stats.nodes_inserted;
    resp.nodes_deleted = r->stats.nodes_deleted;
    metrics_.Count(metrics_.responses_ok);
  }
  if (req.trace.has()) {
    // Updates never carry a profile back; the echo is id + timing only.
    resp.echo.present = true;
    resp.echo.trace_id = trace != nullptr ? trace->id() : req.trace.trace_id;
    resp.echo.server_ns = NsSince(item.enqueue);
  }
  return Encode(resp);
}

std::string Server::ExecuteStat(const StatRequest& req) {
  StatResponse resp;
  resp.id = req.id;
  if (req.format == StatFormat::kSlow) {
    resp.payload = engine_->DumpSlowQueries();
  } else {
    resp.payload = engine_->DumpMetrics(req.format == StatFormat::kPrometheus
                                            ? telemetry::DumpFormat::kPrometheus
                                            : telemetry::DumpFormat::kJson);
  }
  metrics_.Count(metrics_.responses_ok);
  return Encode(resp);
}

}  // namespace smoqe::server
