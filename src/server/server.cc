#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace smoqe::server {

namespace {

/// epoll user-data ids for the two non-connection fds; connection ids
/// start above them.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kEventFdTag = 1;
constexpr uint64_t kFirstConnId = 2;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Metrics::Metrics(core::Smoqe* engine) {
  telemetry::Telemetry* tel = engine->telemetry();
  if (tel == nullptr) return;
  telemetry::MetricsRegistry& reg = tel->registry();
  connections_opened = &reg.GetCounter("server.connections_opened");
  connections_closed = &reg.GetCounter("server.connections_closed");
  handshakes = &reg.GetCounter("server.handshakes");
  handshake_failures = &reg.GetCounter("server.handshake_failures");
  requests = &reg.GetCounter("server.requests");
  responses_ok = &reg.GetCounter("server.responses_ok");
  responses_error = &reg.GetCounter("server.responses_error");
  protocol_errors = &reg.GetCounter("server.protocol_errors");
  rejected_pipeline = &reg.GetCounter("server.rejected_pipeline");
  disconnects_mid_request = &reg.GetCounter("server.disconnects_mid_request");
  bytes_read = &reg.GetCounter("server.bytes_read");
  bytes_written = &reg.GetCounter("server.bytes_written");
  request_ns = &reg.GetHistogram("server.request_ns");
}

Server::Server(core::Smoqe* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)), metrics_(engine) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listener)");

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  event_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (event_fd_ < 0) return Errno("eventfd");

  epoll_event ev;
  std::memset(&ev, 0, sizeof ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listener)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kEventFdTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    return Errno("epoll_ctl(eventfd)");
  }

  running_.store(true, std::memory_order_release);
  started_ = true;
  loop_thread_ = std::thread([this] { LoopMain(); });
  const int workers = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  started_ = false;
  running_.store(false, std::memory_order_release);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop cancelled every session token on the way out, so workers
  // stuck inside an engine call unwind at their next guard check.
  {
    std::lock_guard<std::mutex> lock(work_mu_);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Single-threaded from here: release every fd.
  conns_.clear();  // Connection dtor closes surviving fds
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  listen_fd_ = epoll_fd_ = event_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_.clear();
  }
}

void Server::WakeLoop() {
  if (event_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; nothing to do.
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof one);
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

void Server::LoopMain() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; shut down rather than spin
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        HandleAccept();
        continue;
      }
      if (tag == kEventFdTag) {
        uint64_t drained;
        while (::read(event_fd_, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      std::shared_ptr<Connection> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        if (conn->in_flight || !conn->pending.empty()) {
          metrics_.Count(metrics_.disconnects_mid_request);
        }
        CloseConnection(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      if (conn->fd >= 0 && (events[i].events & EPOLLOUT) != 0) {
        HandleWritable(conn);
      }
    }
    // Completions may have been posted while handling events (or the
    // eventfd write raced our drain); always sweep.
    DrainCompletions();
  }
  // Shutdown: stop the world. Cancelling the tokens unwinds any worker
  // still inside the engine; fds are closed later by Stop() once every
  // thread is joined (workers may still hold Connection refs).
  for (auto& [id, conn] : conns_) {
    if (conn->session != nullptr) conn->session->cancel_token().Cancel();
  }
}

void Server::HandleAccept() {
  for (;;) {
    sockaddr_in peer;
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (conns_.size() >= static_cast<size_t>(options_.max_connections) ||
        !SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_shared<Connection>(options_.max_request_frame);
    conn->fd = fd;
    // conn ids live above the listener/eventfd tags (wrap included).
    if (next_conn_id_ < kFirstConnId) next_conn_id_ = kFirstConnId;
    conn->conn_id = next_conn_id_++;

    epoll_event ev;
    std::memset(&ev, 0, sizeof ev);
    ev.events = EPOLLIN;
    ev.data.u64 = conn->conn_id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // conn dtor closes fd
    }
    conns_.emplace(conn->conn_id, conn);
    metrics_.Count(metrics_.connections_opened);
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof buf);
    if (n > 0) {
      metrics_.Count(metrics_.bytes_read, static_cast<uint64_t>(n));
      conn->frames.Append(std::string_view(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: the peer is gone. Cancel in-flight work and
    // reap — there is nobody left to flush to.
    if (conn->in_flight || !conn->pending.empty()) {
      metrics_.Count(metrics_.disconnects_mid_request);
    }
    CloseConnection(conn);
    return;
  }
  ProcessFrames(conn);
}

void Server::ProcessFrames(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0 || conn->close_after_flush) return;
  while (auto frame = conn->frames.Next()) {
    const Opcode op = static_cast<Opcode>(frame->opcode);
    if (conn->session == nullptr) {
      // First frame must be the handshake.
      if (op != Opcode::kHello) {
        metrics_.Count(metrics_.protocol_errors);
        ErrorResponse err;
        err.id = PeekRequestId(frame->body);
        err.message = "handshake required before requests";
        SendBytes(conn, Encode(err));
        conn->close_after_flush = true;
        break;
      }
      HandleHandshake(conn, *frame);
      if (conn->close_after_flush || conn->fd < 0) break;
      continue;
    }
    switch (op) {
      case Opcode::kHello: {
        // A second handshake would rebind the role mid-connection —
        // exactly what the session model forbids.
        metrics_.Count(metrics_.protocol_errors);
        ErrorResponse err;
        err.id = PeekRequestId(frame->body);
        err.message = "duplicate handshake";
        SendBytes(conn, Encode(err));
        conn->close_after_flush = true;
        break;
      }
      case Opcode::kQuery:
      case Opcode::kQueryBatch:
      case Opcode::kUpdate:
      case Opcode::kStat: {
        metrics_.Count(metrics_.requests);
        if (conn->in_flight) {
          if (conn->pending.size() >=
              static_cast<size_t>(options_.max_pipeline)) {
            metrics_.Count(metrics_.rejected_pipeline);
            metrics_.Count(metrics_.responses_error);
            SendBytes(conn, ErrorResponseFor(
                                frame->opcode, PeekRequestId(frame->body),
                                WireCode::kRejectedBusy,
                                "connection pipeline full (max_pipeline)"));
            break;
          }
          conn->pending.push_back(std::move(*frame));
          break;
        }
        conn->in_flight = true;
        {
          std::lock_guard<std::mutex> lock(work_mu_);
          work_.push_back(WorkItem{conn, std::move(*frame)});
        }
        work_cv_.notify_one();
        break;
      }
      default: {
        // Unknown opcode in a well-framed message: recoverable — the
        // frame boundary is trusted, so skip it and answer the next one.
        metrics_.Count(metrics_.protocol_errors);
        ErrorResponse err;
        err.id = PeekRequestId(frame->body);
        err.message =
            "unknown opcode " + std::to_string(static_cast<int>(frame->opcode));
        SendBytes(conn, Encode(err));
        break;
      }
    }
    if (conn->close_after_flush || conn->fd < 0) break;
  }
  if (conn->fd >= 0 && conn->frames.overflow()) {
    // Over-declared frame length: nothing after it can be trusted.
    metrics_.Count(metrics_.protocol_errors);
    ErrorResponse err;
    err.message = "frame exceeds size limit";
    SendBytes(conn, Encode(err));
    conn->close_after_flush = true;
  }
  if (conn->fd >= 0 && conn->close_after_flush && !conn->in_flight &&
      conn->wbuf_off >= conn->wbuf.size()) {
    CloseConnection(conn);
  }
}

void Server::HandleHandshake(const std::shared_ptr<Connection>& conn,
                             const RawFrame& frame) {
  auto hello = DecodeHelloRequest(frame.body);
  HelloResponse resp;
  if (!hello.ok()) {
    metrics_.Count(metrics_.protocol_errors);
    metrics_.Count(metrics_.handshake_failures);
    ErrorResponse err;
    err.message = "malformed HELLO";
    SendBytes(conn, Encode(err));
    conn->close_after_flush = true;
    return;
  }
  resp.id = hello->id;
  if (hello->version != kProtocolVersion) {
    resp.code = WireCode::kFailedPrecondition;
    resp.message = "protocol version mismatch: server speaks " +
                   std::to_string(kProtocolVersion) + ", client sent " +
                   std::to_string(hello->version);
  } else if (hello->role.empty() && !options_.allow_direct) {
    resp.code = WireCode::kPermissionDenied;
    resp.message = "direct (viewless) access is disabled on this server";
  } else {
    auto session = core::Session::Open(engine_, hello->role);
    if (!session.ok()) {
      resp.code = FromStatus(session.status().code());
      resp.message = session.status().message();
    } else {
      conn->session =
          std::make_unique<core::Session>(session.MoveValue());
      resp.code = WireCode::kOk;
      resp.message = "smoqed protocol " + std::to_string(kProtocolVersion) +
                     ", role '" + hello->role + "'";
    }
  }
  if (resp.code == WireCode::kOk) {
    metrics_.Count(metrics_.handshakes);
  } else {
    metrics_.Count(metrics_.handshake_failures);
    conn->close_after_flush = true;
  }
  SendBytes(conn, Encode(resp));
}

void Server::SendBytes(const std::shared_ptr<Connection>& conn,
                       std::string bytes) {
  if (conn->fd < 0) return;
  if (conn->wbuf_off >= conn->wbuf.size()) {
    conn->wbuf = std::move(bytes);
    conn->wbuf_off = 0;
  } else {
    conn->wbuf.append(bytes);
  }
  FlushWrites(conn);
}

void Server::FlushWrites(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  while (conn->wbuf_off < conn->wbuf.size()) {
    const ssize_t n = ::write(conn->fd, conn->wbuf.data() + conn->wbuf_off,
                              conn->wbuf.size() - conn->wbuf_off);
    if (n > 0) {
      metrics_.Count(metrics_.bytes_written, static_cast<uint64_t>(n));
      conn->wbuf_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);  // EPIPE etc.: peer is gone
    return;
  }
  if (conn->wbuf_off >= conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->wbuf_off = 0;
  }
  UpdateEpollInterest(conn.get());
}

void Server::HandleWritable(const std::shared_ptr<Connection>& conn) {
  FlushWrites(conn);
  if (conn->fd >= 0 && conn->close_after_flush && !conn->in_flight &&
      conn->wbuf_off >= conn->wbuf.size()) {
    CloseConnection(conn);
  }
}

void Server::UpdateEpollInterest(Connection* conn) {
  if (conn->fd < 0) return;
  epoll_event ev;
  std::memset(&ev, 0, sizeof ev);
  ev.events = EPOLLIN;
  if (conn->wbuf_off < conn->wbuf.size()) ev.events |= EPOLLOUT;
  ev.data.u64 = conn->conn_id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::DrainCompletions() {
  std::vector<std::shared_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done.swap(done_);
  }
  for (const std::shared_ptr<Connection>& conn : done) {
    std::vector<std::string> out;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      out.swap(conn->outbox);
    }
    conn->in_flight = false;
    if (conn->fd < 0) continue;  // disconnected while executing
    for (std::string& frame : out) SendBytes(conn, std::move(frame));
    if (conn->fd < 0) continue;  // write failure closed it
    if (conn->close_after_flush) {
      if (conn->wbuf_off >= conn->wbuf.size()) CloseConnection(conn);
      continue;
    }
    if (!conn->pending.empty()) {
      RawFrame next = std::move(conn->pending.front());
      conn->pending.pop_front();
      conn->in_flight = true;
      {
        std::lock_guard<std::mutex> lock(work_mu_);
        work_.push_back(WorkItem{conn, std::move(next)});
      }
      work_cv_.notify_one();
    }
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  if (conn->session != nullptr) conn->session->cancel_token().Cancel();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  conn->dead = true;
  conn->pending.clear();
  conns_.erase(conn->conn_id);
  metrics_.Count(metrics_.connections_closed);
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

void Server::WorkerMain() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] {
        return !work_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (work_.empty()) {
        if (!running_.load(std::memory_order_acquire)) return;
        continue;
      }
      item = std::move(work_.front());
      work_.pop_front();
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::string response = ExecuteRequest(*item.conn, item.frame);
    if (metrics_.request_ns != nullptr) {
      const auto dt = std::chrono::steady_clock::now() - t0;
      metrics_.request_ns->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
    }
    {
      std::lock_guard<std::mutex> lock(item.conn->out_mu);
      item.conn->outbox.push_back(std::move(response));
    }
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(item.conn);
    }
    WakeLoop();
  }
}

std::string Server::ErrorResponseFor(uint8_t opcode, uint64_t id,
                                     WireCode code, std::string message) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kQuery: {
      QueryResponse r;
      r.id = id;
      r.code = code;
      r.error = std::move(message);
      return Encode(r);
    }
    case Opcode::kQueryBatch: {
      QueryBatchResponse r;
      r.id = id;
      r.code = code;
      r.error = std::move(message);
      return Encode(r);
    }
    case Opcode::kUpdate: {
      UpdateResponse r;
      r.id = id;
      r.code = code;
      r.error = std::move(message);
      return Encode(r);
    }
    case Opcode::kStat: {
      StatResponse r;
      r.id = id;
      r.code = code;
      r.error = std::move(message);
      return Encode(r);
    }
    default: {
      ErrorResponse r;
      r.id = id;
      r.code = code;
      r.message = std::move(message);
      return Encode(r);
    }
  }
}

std::string Server::ExecuteRequest(Connection& conn, const RawFrame& frame) {
  // A request can only reach a worker after the handshake bound the
  // session, so `conn.session` is set; the loop never rebinds it.
  core::Session& session = *conn.session;
  switch (static_cast<Opcode>(frame.opcode)) {
    case Opcode::kQuery: {
      auto req = DecodeQueryRequest(frame.body);
      if (!req.ok()) break;
      return ExecuteQuery(session, *req);
    }
    case Opcode::kQueryBatch: {
      auto req = DecodeQueryBatchRequest(frame.body);
      if (!req.ok()) break;
      return ExecuteQueryBatch(session, *req);
    }
    case Opcode::kUpdate: {
      auto req = DecodeUpdateRequest(frame.body);
      if (!req.ok()) break;
      return ExecuteUpdate(session, *req);
    }
    case Opcode::kStat: {
      auto req = DecodeStatRequest(frame.body);
      if (!req.ok()) break;
      return ExecuteStat(*req);
    }
    default:
      break;  // unreachable: the loop routes only known opcodes here
  }
  // Known opcode, undecodable body: the frame boundary held, so the
  // connection survives; the request itself is unanswerable.
  metrics_.Count(metrics_.protocol_errors);
  metrics_.Count(metrics_.responses_error);
  return ErrorResponseFor(frame.opcode, PeekRequestId(frame.body),
                          WireCode::kProtocolError, "malformed request body");
}

std::string Server::ExecuteQuery(core::Session& session,
                                 const QueryRequest& req) {
  core::SessionQueryOptions opts;
  opts.mode = req.mode == WireEvalMode::kStax ? core::EvalMode::kStax
                                              : core::EvalMode::kDom;
  opts.use_tax = req.use_tax != 0;
  auto r = session.Query(req.doc, req.query, opts, req.deadline_ms,
                         req.max_memory_bytes);
  QueryResponse resp;
  resp.id = req.id;
  if (!r.ok()) {
    resp.code = FromStatus(r.status().code());
    resp.error = r.status().message();
    metrics_.Count(metrics_.responses_error);
  } else {
    resp.doc_epoch = r->doc_epoch;
    resp.answers_xml = std::move(r->answers_xml);
    metrics_.Count(metrics_.responses_ok);
  }
  return Encode(resp);
}

std::string Server::ExecuteQueryBatch(core::Session& session,
                                      const QueryBatchRequest& req) {
  std::vector<core::SessionBatchItem> items;
  items.reserve(req.items.size());
  for (const BatchItem& it : req.items) {
    core::SessionBatchItem s;
    s.query = it.query;
    s.options.mode = it.mode == WireEvalMode::kStax ? core::EvalMode::kStax
                                                    : core::EvalMode::kDom;
    s.options.use_tax = it.use_tax != 0;
    items.push_back(std::move(s));
  }
  auto r = session.QueryBatch(req.doc, items, req.deadline_ms,
                              req.max_memory_bytes);
  QueryBatchResponse resp;
  resp.id = req.id;
  if (!r.ok()) {
    resp.code = FromStatus(r.status().code());
    resp.error = r.status().message();
    metrics_.Count(metrics_.responses_error);
    return Encode(resp);
  }
  resp.items.reserve(r->size());
  for (core::QueryAnswer& a : *r) {
    BatchItemResult item;
    if (!a.status.ok()) {
      item.code = FromStatus(a.status.code());
      item.error = a.status.message();
    } else {
      item.doc_epoch = a.doc_epoch;
      item.answers_xml = std::move(a.answers_xml);
    }
    resp.items.push_back(std::move(item));
  }
  metrics_.Count(metrics_.responses_ok);
  return Encode(resp);
}

std::string Server::ExecuteUpdate(core::Session& session,
                                  const UpdateRequest& req) {
  auto r = session.Update(req.doc, req.statement, req.dry_run != 0,
                          req.deadline_ms, req.max_memory_bytes);
  UpdateResponse resp;
  resp.id = req.id;
  if (!r.ok()) {
    resp.code = FromStatus(r.status().code());
    resp.error = r.status().message();
    metrics_.Count(metrics_.responses_error);
  } else {
    resp.doc_epoch = r->stats.doc_epoch;
    resp.canonical = std::move(r->canonical);
    resp.nodes_inserted = r->stats.nodes_inserted;
    resp.nodes_deleted = r->stats.nodes_deleted;
    metrics_.Count(metrics_.responses_ok);
  }
  return Encode(resp);
}

std::string Server::ExecuteStat(const StatRequest& req) {
  StatResponse resp;
  resp.id = req.id;
  resp.payload = engine_->DumpMetrics(req.format == StatFormat::kPrometheus
                                          ? telemetry::DumpFormat::kPrometheus
                                          : telemetry::DumpFormat::kJson);
  metrics_.Count(metrics_.responses_ok);
  return Encode(resp);
}

}  // namespace smoqe::server
