/// \file
/// \brief In-process server fixture for tests and benches: starts a
/// smoqed Server on an ephemeral loopback port in the constructor, stops
/// and joins it in the destructor. Header-only and GTest-free so both
/// the test suites and bench_server can use it; callers check `ok()`
/// (bind can fail in exotic sandboxes) before talking to `port()`.

#ifndef SMOQE_SERVER_TEST_SERVER_H_
#define SMOQE_SERVER_TEST_SERVER_H_

#include <utility>

#include "src/common/status.h"
#include "src/core/smoqe.h"
#include "src/server/server.h"

namespace smoqe::server {

class TestServer {
 public:
  /// Test-friendly defaults: ephemeral port on 127.0.0.1 and direct
  /// (viewless) sessions allowed — the differential harness needs the
  /// library-equivalent direct role. Pass explicit options to override.
  static ServerOptions DefaultOptions() {
    ServerOptions o;
    o.allow_direct = true;
    return o;
  }

  /// Starts immediately; check ok() before use.
  explicit TestServer(core::Smoqe* engine,
                      ServerOptions options = DefaultOptions())
      : server_(engine, std::move(options)) {
    start_status_ = server_.Start();
  }

  ~TestServer() { server_.Stop(); }

  TestServer(const TestServer&) = delete;
  TestServer& operator=(const TestServer&) = delete;

  bool ok() const { return start_status_.ok(); }
  const Status& start_status() const { return start_status_; }
  uint16_t port() const { return server_.port(); }
  Server& server() { return server_; }

 private:
  Server server_;
  Status start_status_;
};

}  // namespace smoqe::server

#endif  // SMOQE_SERVER_TEST_SERVER_H_
