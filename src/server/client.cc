#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace smoqe::server {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      frames_(std::move(other.frames_)),
      last_id_(other.last_id_),
      hello_(std::move(other.hello_)),
      role_(std::move(other.role_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    frames_ = std::move(other.frames_);
    last_id_ = other.last_id_;
    hello_ = std::move(other.hello_);
    role_ = std::move(other.role_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Result<Client> Client::Connect(const ClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + options.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (options.recv_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = static_cast<time_t>(options.recv_timeout_ms / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((options.recv_timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  Client client(fd, options.max_response_frame);
  client.role_ = options.role;

  HelloRequest hello;
  hello.id = 0;
  hello.version = kProtocolVersion;
  hello.role = options.role;
  Status sent = client.SendBytes(Encode(hello));
  if (!sent.ok()) return sent;

  auto frame = client.ReceiveFrame();
  if (!frame.ok()) return frame.status();
  if (frame->opcode != static_cast<uint8_t>(Opcode::kHelloOk)) {
    // The server answers a malformed/rejected HELLO with an ERROR frame.
    if (frame->opcode == static_cast<uint8_t>(Opcode::kError)) {
      auto err = DecodeErrorResponse(frame->body);
      if (err.ok()) return ToStatus(err->code, err->message);
    }
    return Status::Internal("handshake: unexpected response opcode " +
                            std::to_string(frame->opcode));
  }
  auto resp = DecodeHelloResponse(frame->body);
  if (!resp.ok()) return resp.status().WithContext("handshake response");
  if (resp->code != WireCode::kOk) {
    return ToStatus(resp->code, resp->message);
  }
  client.hello_ = resp.MoveValue();
  return client;
}

Status Client::SendBytes(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status s = Errno("write");
    Close();
    return s;
  }
  return Status::OK();
}

Result<RawFrame> Client::ReceiveFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  for (;;) {
    if (auto frame = frames_.Next()) return std::move(*frame);
    if (frames_.overflow()) {
      Close();
      return Status::InvalidArgument(
          "server frame exceeds max_response_frame");
    }
    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      frames_.Append(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status s = n == 0 ? Status::IOError("connection closed by server")
                      : Errno("read");
    Close();
    return s;
  }
}

namespace {

/// Shared shape of every typed call: expect `op` with `id`; an ERROR
/// frame (undecodable request) is translated into a transport status.
template <typename Resp, typename DecodeFn>
Result<Resp> ExpectResponse(Result<RawFrame> frame, Opcode op, uint64_t id,
                            DecodeFn decode) {
  if (!frame.ok()) return frame.status();
  if (frame->opcode == static_cast<uint8_t>(Opcode::kError)) {
    auto err = DecodeErrorResponse(frame->body);
    if (err.ok()) return ToStatus(err->code, err->message);
    return Status::Internal("undecodable ERROR frame from server");
  }
  if (frame->opcode != static_cast<uint8_t>(op)) {
    return Status::Internal("unexpected response opcode " +
                            std::to_string(frame->opcode));
  }
  auto resp = decode(frame->body);
  if (!resp.ok()) return resp.status().WithContext("response decode");
  if (resp->id != id) {
    return Status::Internal("response id mismatch: sent " +
                            std::to_string(id) + ", got " +
                            std::to_string(resp->id));
  }
  return resp.MoveValue();
}

}  // namespace

Result<QueryResponse> Client::Query(QueryRequest req) {
  req.id = NextId();
  Status s = SendBytes(Encode(req));
  if (!s.ok()) return s;
  return ExpectResponse<QueryResponse>(ReceiveFrame(), Opcode::kQueryResult,
                                       req.id, DecodeQueryResponse);
}

Result<QueryBatchResponse> Client::QueryBatch(QueryBatchRequest req) {
  req.id = NextId();
  Status s = SendBytes(Encode(req));
  if (!s.ok()) return s;
  return ExpectResponse<QueryBatchResponse>(
      ReceiveFrame(), Opcode::kQueryBatchResult, req.id,
      DecodeQueryBatchResponse);
}

Result<UpdateResponse> Client::Update(UpdateRequest req) {
  req.id = NextId();
  Status s = SendBytes(Encode(req));
  if (!s.ok()) return s;
  return ExpectResponse<UpdateResponse>(ReceiveFrame(), Opcode::kUpdateResult,
                                        req.id, DecodeUpdateResponse);
}

Result<StatResponse> Client::Stat(StatFormat format) {
  StatRequest req;
  req.id = NextId();
  req.format = format;
  Status s = SendBytes(Encode(req));
  if (!s.ok()) return s;
  return ExpectResponse<StatResponse>(ReceiveFrame(), Opcode::kStatResult,
                                      req.id, DecodeStatResponse);
}

}  // namespace smoqe::server
