#include "src/server/protocol.h"

#include <cstring>

namespace smoqe::server {

WireCode FromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return WireCode::kOk;
    case StatusCode::kInvalidArgument: return WireCode::kInvalidArgument;
    case StatusCode::kParseError: return WireCode::kParseError;
    case StatusCode::kNotFound: return WireCode::kNotFound;
    case StatusCode::kAlreadyExists: return WireCode::kAlreadyExists;
    case StatusCode::kFailedPrecondition: return WireCode::kFailedPrecondition;
    case StatusCode::kResourceExhausted: return WireCode::kResourceExhausted;
    case StatusCode::kIOError: return WireCode::kIOError;
    case StatusCode::kInternal: return WireCode::kInternal;
    case StatusCode::kPermissionDenied: return WireCode::kPermissionDenied;
    case StatusCode::kDeadlineExceeded: return WireCode::kDeadlineExceeded;
    case StatusCode::kCancelled: return WireCode::kCancelled;
    case StatusCode::kRejectedBusy: return WireCode::kRejectedBusy;
  }
  return WireCode::kUnknown;
}

Status ToStatus(WireCode code, std::string message) {
  switch (code) {
    case WireCode::kOk: return Status::OK();
    case WireCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case WireCode::kParseError: return Status::ParseError(std::move(message));
    case WireCode::kNotFound: return Status::NotFound(std::move(message));
    case WireCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case WireCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case WireCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case WireCode::kIOError: return Status::IOError(std::move(message));
    case WireCode::kInternal: return Status::Internal(std::move(message));
    case WireCode::kPermissionDenied:
      return Status::PermissionDenied(std::move(message));
    case WireCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case WireCode::kCancelled: return Status::Cancelled(std::move(message));
    case WireCode::kRejectedBusy:
      return Status::RejectedBusy(std::move(message));
    case WireCode::kProtocolError:
      return Status::Internal("protocol error: " + message);
    case WireCode::kUnknown: break;
  }
  return Status::Internal("unknown wire code: " + message);
}

const char* WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk: return "OK";
    case WireCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireCode::kParseError: return "PARSE_ERROR";
    case WireCode::kNotFound: return "NOT_FOUND";
    case WireCode::kAlreadyExists: return "ALREADY_EXISTS";
    case WireCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case WireCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case WireCode::kIOError: return "IO_ERROR";
    case WireCode::kInternal: return "INTERNAL";
    case WireCode::kPermissionDenied: return "PERMISSION_DENIED";
    case WireCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireCode::kCancelled: return "CANCELLED";
    case WireCode::kRejectedBusy: return "REJECTED_BUSY";
    case WireCode::kProtocolError: return "PROTOCOL_ERROR";
    case WireCode::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

bool IsRetryable(WireCode code) {
  // RejectedBusy is the admission gate saying "later"; DeadlineExceeded
  // and Cancelled describe this attempt, not the request — a retry with
  // a fresh budget can succeed. Everything else is deterministic for
  // the same request against the same state.
  switch (code) {
    case WireCode::kRejectedBusy:
    case WireCode::kDeadlineExceeded:
    case WireCode::kCancelled:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------

void Writer::PutU32(uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  buf_.append(b, 4);
}

void Writer::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v & 0xFFFFFFFFull));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void Writer::PutStr(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

std::string Frame(Opcode op, std::string_view body) {
  std::string out;
  const uint32_t len = static_cast<uint32_t>(body.size() + 1);
  out.reserve(5 + body.size());
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>(op));
  out.append(body.data(), body.size());
  return out;
}

bool Reader::GetU8(uint8_t* v) {
  if (failed_ || data_.size() - pos_ < 1) {
    failed_ = true;
    return false;
  }
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool Reader::GetU32(uint32_t* v) {
  if (failed_ || data_.size() - pos_ < 4) {
    failed_ = true;
    return false;
  }
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  pos_ += 4;
  return true;
}

bool Reader::GetU64(uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!GetU32(&lo) || !GetU32(&hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool Reader::GetStr(std::string* s) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  if (data_.size() - pos_ < len) {
    failed_ = true;
    return false;
  }
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

// ---------------------------------------------------------------------
// Frame extraction
// ---------------------------------------------------------------------

std::optional<RawFrame> FrameExtractor::Next() {
  if (overflow_) return std::nullopt;
  // Compact lazily: drop consumed prefix once it dominates the buffer,
  // so a long-lived connection's buffer doesn't grow without bound while
  // per-frame work stays O(frame).
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t avail = buf_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data()) + consumed_;
  const uint32_t len = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
  if (len < 1 || len > max_frame_) {
    overflow_ = true;
    return std::nullopt;
  }
  if (avail < 4 + static_cast<size_t>(len)) return std::nullopt;
  RawFrame f;
  f.opcode = p[4];
  f.body.assign(buf_.data() + consumed_ + 5, len - 1);
  consumed_ += 4 + len;
  return f;
}

// ---------------------------------------------------------------------
// Typed messages
// ---------------------------------------------------------------------

namespace {

/// Shared head of every response body: id, code, and (on failure) the
/// error string. Returns true when the caller should read the success
/// payload that follows.
void PutResponseHead(Writer& w, uint64_t id, WireCode code,
                     std::string_view error) {
  w.PutU64(id);
  w.PutU8(static_cast<uint8_t>(code));
  if (code != WireCode::kOk) w.PutStr(error);
}

bool GetResponseHead(Reader& r, uint64_t* id, WireCode* code,
                     std::string* error) {
  uint8_t c = 0;
  if (!r.GetU64(id) || !r.GetU8(&c)) return false;
  if (c > static_cast<uint8_t>(WireCode::kUnknown)) return false;
  *code = static_cast<WireCode>(c);
  if (*code != WireCode::kOk && !r.GetStr(error)) return false;
  return true;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what + " body");
}

/// v2 request extension: one length-prefixed block after the v1 body,
/// written only when the context is non-default — a default context
/// encodes as the byte-identical v1 body, which is what keeps v1
/// servers able to decode v2 clients that don't use tracing.
void PutTraceContext(Writer& w, const TraceContext& t) {
  if (!t.has()) return;
  Writer ext;
  ext.PutU64(t.trace_id);
  ext.PutU8(t.flags);
  w.PutStr(ext.bytes());
}

/// Reads the optional trace-context block. Absent (body already ended)
/// is fine; a present block must be the *last* thing in the body and
/// length-consistent (else false → malformed). Inside the block, fewer
/// bytes than id+flags means "from a dialect we don't speak" and is
/// ignored; extra bytes beyond flags are ignored too (room for future
/// fields without another version bump).
bool GetTraceContext(Reader& r, TraceContext* t) {
  if (r.AtEnd()) return true;
  std::string ext;
  if (!r.GetStr(&ext) || !r.AtEnd()) return false;
  Reader er(ext);
  uint64_t id = 0;
  uint8_t flags = 0;
  if (er.GetU64(&id) && er.GetU8(&flags)) {
    t->trace_id = id;
    t->flags = flags;
  }
  return true;
}

/// v2 response extension, mirror rules of the request side.
void PutTraceEcho(Writer& w, const TraceEcho& e) {
  if (!e.present) return;
  Writer ext;
  ext.PutU64(e.trace_id);
  ext.PutU64(e.server_ns);
  ext.PutU8(e.has_profile);
  if (e.has_profile != 0) ext.PutStr(e.profile_json);
  w.PutStr(ext.bytes());
}

bool GetTraceEcho(Reader& r, TraceEcho* e) {
  if (r.AtEnd()) return true;
  std::string ext;
  if (!r.GetStr(&ext) || !r.AtEnd()) return false;
  Reader er(ext);
  TraceEcho tmp;
  if (!er.GetU64(&tmp.trace_id) || !er.GetU64(&tmp.server_ns) ||
      !er.GetU8(&tmp.has_profile)) {
    return true;  // short block from another dialect: ignore
  }
  if (tmp.has_profile != 0 && !er.GetStr(&tmp.profile_json)) {
    tmp.has_profile = 0;  // truncated profile: keep the timing fields
  }
  tmp.present = true;
  *e = std::move(tmp);
  return true;
}

}  // namespace

std::string Encode(const HelloRequest& m) {
  Writer w;
  w.PutU64(m.id);
  w.PutU32(m.version);
  w.PutStr(m.role);
  return Frame(Opcode::kHello, w.bytes());
}

Result<HelloRequest> DecodeHelloRequest(std::string_view body) {
  HelloRequest m;
  Reader r(body);
  if (!r.GetU64(&m.id) || !r.GetU32(&m.version) || !r.GetStr(&m.role) ||
      !r.AtEnd()) {
    return Malformed("HELLO");
  }
  return m;
}

std::string Encode(const HelloResponse& m) {
  Writer w;
  w.PutU64(m.id);
  w.PutU8(static_cast<uint8_t>(m.code));
  w.PutStr(m.message);
  return Frame(Opcode::kHelloOk, w.bytes());
}

Result<HelloResponse> DecodeHelloResponse(std::string_view body) {
  HelloResponse m;
  Reader r(body);
  uint8_t code = 0;
  if (!r.GetU64(&m.id) || !r.GetU8(&code) || !r.GetStr(&m.message) ||
      !r.AtEnd() || code > static_cast<uint8_t>(WireCode::kUnknown)) {
    return Malformed("HELLO_OK");
  }
  m.code = static_cast<WireCode>(code);
  return m;
}

std::string Encode(const QueryRequest& m) {
  Writer w;
  w.PutU64(m.id);
  w.PutStr(m.doc);
  w.PutStr(m.query);
  w.PutU8(static_cast<uint8_t>(m.mode));
  w.PutU8(m.use_tax);
  w.PutU64(m.deadline_ms);
  w.PutU64(m.max_memory_bytes);
  PutTraceContext(w, m.trace);
  return Frame(Opcode::kQuery, w.bytes());
}

Result<QueryRequest> DecodeQueryRequest(std::string_view body) {
  QueryRequest m;
  Reader r(body);
  uint8_t mode = 0;
  if (!r.GetU64(&m.id) || !r.GetStr(&m.doc) || !r.GetStr(&m.query) ||
      !r.GetU8(&mode) || !r.GetU8(&m.use_tax) || !r.GetU64(&m.deadline_ms) ||
      !r.GetU64(&m.max_memory_bytes) || !GetTraceContext(r, &m.trace) ||
      mode > 1) {
    return Malformed("QUERY");
  }
  m.mode = static_cast<WireEvalMode>(mode);
  return m;
}

std::string Encode(const QueryResponse& m) {
  Writer w;
  PutResponseHead(w, m.id, m.code, m.error);
  if (m.code == WireCode::kOk) {
    w.PutU64(m.doc_epoch);
    w.PutU32(static_cast<uint32_t>(m.answers_xml.size()));
    for (const std::string& a : m.answers_xml) w.PutStr(a);
  }
  PutTraceEcho(w, m.echo);
  return Frame(Opcode::kQueryResult, w.bytes());
}

Result<QueryResponse> DecodeQueryResponse(std::string_view body) {
  QueryResponse m;
  Reader r(body);
  if (!GetResponseHead(r, &m.id, &m.code, &m.error)) {
    return Malformed("QUERY_RESULT");
  }
  if (m.code == WireCode::kOk) {
    uint32_t n = 0;
    if (!r.GetU64(&m.doc_epoch) || !r.GetU32(&n)) {
      return Malformed("QUERY_RESULT");
    }
    m.answers_xml.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      std::string a;
      if (!r.GetStr(&a)) return Malformed("QUERY_RESULT");
      m.answers_xml.push_back(std::move(a));
    }
  }
  if (!GetTraceEcho(r, &m.echo)) return Malformed("QUERY_RESULT");
  return m;
}

std::string Encode(const QueryBatchRequest& m) {
  Writer w;
  w.PutU64(m.id);
  w.PutStr(m.doc);
  w.PutU64(m.deadline_ms);
  w.PutU64(m.max_memory_bytes);
  w.PutU32(static_cast<uint32_t>(m.items.size()));
  for (const BatchItem& it : m.items) {
    w.PutStr(it.query);
    w.PutU8(static_cast<uint8_t>(it.mode));
    w.PutU8(it.use_tax);
  }
  PutTraceContext(w, m.trace);
  return Frame(Opcode::kQueryBatch, w.bytes());
}

Result<QueryBatchRequest> DecodeQueryBatchRequest(std::string_view body) {
  QueryBatchRequest m;
  Reader r(body);
  uint32_t n = 0;
  if (!r.GetU64(&m.id) || !r.GetStr(&m.doc) || !r.GetU64(&m.deadline_ms) ||
      !r.GetU64(&m.max_memory_bytes) || !r.GetU32(&n)) {
    return Malformed("QUERY_BATCH");
  }
  // Each item needs ≥ 6 bytes; a hostile count dies here, not in reserve.
  if (static_cast<size_t>(n) * 6 > body.size()) return Malformed("QUERY_BATCH");
  m.items.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BatchItem it;
    uint8_t mode = 0;
    if (!r.GetStr(&it.query) || !r.GetU8(&mode) || !r.GetU8(&it.use_tax) ||
        mode > 1) {
      return Malformed("QUERY_BATCH");
    }
    it.mode = static_cast<WireEvalMode>(mode);
    m.items.push_back(std::move(it));
  }
  if (!GetTraceContext(r, &m.trace)) return Malformed("QUERY_BATCH");
  return m;
}

std::string Encode(const QueryBatchResponse& m) {
  Writer w;
  PutResponseHead(w, m.id, m.code, m.error);
  if (m.code == WireCode::kOk) {
    w.PutU32(static_cast<uint32_t>(m.items.size()));
    for (const BatchItemResult& it : m.items) {
      w.PutU8(static_cast<uint8_t>(it.code));
      if (it.code != WireCode::kOk) {
        w.PutStr(it.error);
        continue;
      }
      w.PutU64(it.doc_epoch);
      w.PutU32(static_cast<uint32_t>(it.answers_xml.size()));
      for (const std::string& a : it.answers_xml) w.PutStr(a);
    }
  }
  PutTraceEcho(w, m.echo);
  return Frame(Opcode::kQueryBatchResult, w.bytes());
}

Result<QueryBatchResponse> DecodeQueryBatchResponse(std::string_view body) {
  QueryBatchResponse m;
  Reader r(body);
  if (!GetResponseHead(r, &m.id, &m.code, &m.error)) {
    return Malformed("QUERY_BATCH_RESULT");
  }
  if (m.code == WireCode::kOk) {
    uint32_t n = 0;
    if (!r.GetU32(&n)) return Malformed("QUERY_BATCH_RESULT");
    if (static_cast<size_t>(n) > body.size()) {
      return Malformed("QUERY_BATCH_RESULT");
    }
    m.items.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      BatchItemResult it;
      uint8_t code = 0;
      if (!r.GetU8(&code) || code > static_cast<uint8_t>(WireCode::kUnknown)) {
        return Malformed("QUERY_BATCH_RESULT");
      }
      it.code = static_cast<WireCode>(code);
      if (it.code != WireCode::kOk) {
        if (!r.GetStr(&it.error)) return Malformed("QUERY_BATCH_RESULT");
      } else {
        uint32_t k = 0;
        if (!r.GetU64(&it.doc_epoch) || !r.GetU32(&k)) {
          return Malformed("QUERY_BATCH_RESULT");
        }
        for (uint32_t a = 0; a < k; ++a) {
          std::string ans;
          if (!r.GetStr(&ans)) return Malformed("QUERY_BATCH_RESULT");
          it.answers_xml.push_back(std::move(ans));
        }
      }
      m.items.push_back(std::move(it));
    }
  }
  if (!GetTraceEcho(r, &m.echo)) return Malformed("QUERY_BATCH_RESULT");
  return m;
}

std::string Encode(const UpdateRequest& m) {
  Writer w;
  w.PutU64(m.id);
  w.PutStr(m.doc);
  w.PutStr(m.statement);
  w.PutU8(m.dry_run);
  w.PutU64(m.deadline_ms);
  w.PutU64(m.max_memory_bytes);
  PutTraceContext(w, m.trace);
  return Frame(Opcode::kUpdate, w.bytes());
}

Result<UpdateRequest> DecodeUpdateRequest(std::string_view body) {
  UpdateRequest m;
  Reader r(body);
  if (!r.GetU64(&m.id) || !r.GetStr(&m.doc) || !r.GetStr(&m.statement) ||
      !r.GetU8(&m.dry_run) || !r.GetU64(&m.deadline_ms) ||
      !r.GetU64(&m.max_memory_bytes) || !GetTraceContext(r, &m.trace)) {
    return Malformed("UPDATE");
  }
  return m;
}

std::string Encode(const UpdateResponse& m) {
  Writer w;
  PutResponseHead(w, m.id, m.code, m.error);
  if (m.code == WireCode::kOk) {
    w.PutU64(m.doc_epoch);
    w.PutStr(m.canonical);
    w.PutU64(m.nodes_inserted);
    w.PutU64(m.nodes_deleted);
  }
  PutTraceEcho(w, m.echo);
  return Frame(Opcode::kUpdateResult, w.bytes());
}

Result<UpdateResponse> DecodeUpdateResponse(std::string_view body) {
  UpdateResponse m;
  Reader r(body);
  if (!GetResponseHead(r, &m.id, &m.code, &m.error)) {
    return Malformed("UPDATE_RESULT");
  }
  if (m.code == WireCode::kOk) {
    if (!r.GetU64(&m.doc_epoch) || !r.GetStr(&m.canonical) ||
        !r.GetU64(&m.nodes_inserted) || !r.GetU64(&m.nodes_deleted)) {
      return Malformed("UPDATE_RESULT");
    }
  }
  if (!GetTraceEcho(r, &m.echo)) return Malformed("UPDATE_RESULT");
  return m;
}

std::string Encode(const StatRequest& m) {
  Writer w;
  w.PutU64(m.id);
  w.PutU8(static_cast<uint8_t>(m.format));
  return Frame(Opcode::kStat, w.bytes());
}

Result<StatRequest> DecodeStatRequest(std::string_view body) {
  StatRequest m;
  Reader r(body);
  uint8_t fmt = 0;
  if (!r.GetU64(&m.id) || !r.GetU8(&fmt) || !r.AtEnd() || fmt > 2) {
    return Malformed("STAT");
  }
  m.format = static_cast<StatFormat>(fmt);
  return m;
}

std::string Encode(const StatResponse& m) {
  Writer w;
  PutResponseHead(w, m.id, m.code, m.error);
  if (m.code == WireCode::kOk) w.PutStr(m.payload);
  return Frame(Opcode::kStatResult, w.bytes());
}

Result<StatResponse> DecodeStatResponse(std::string_view body) {
  StatResponse m;
  Reader r(body);
  if (!GetResponseHead(r, &m.id, &m.code, &m.error)) {
    return Malformed("STAT_RESULT");
  }
  if (m.code == WireCode::kOk && !r.GetStr(&m.payload)) {
    return Malformed("STAT_RESULT");
  }
  if (!r.AtEnd()) return Malformed("STAT_RESULT");
  return m;
}

std::string Encode(const ErrorResponse& m) {
  Writer w;
  w.PutU64(m.id);
  w.PutU8(static_cast<uint8_t>(m.code));
  w.PutStr(m.message);
  return Frame(Opcode::kError, w.bytes());
}

Result<ErrorResponse> DecodeErrorResponse(std::string_view body) {
  ErrorResponse m;
  Reader r(body);
  uint8_t code = 0;
  if (!r.GetU64(&m.id) || !r.GetU8(&code) || !r.GetStr(&m.message) ||
      !r.AtEnd() || code > static_cast<uint8_t>(WireCode::kUnknown)) {
    return Malformed("ERROR");
  }
  m.code = static_cast<WireCode>(code);
  return m;
}

uint64_t PeekRequestId(std::string_view body) {
  uint64_t id = 0;
  Reader r(body);
  if (!r.GetU64(&id)) return 0;
  return id;
}

}  // namespace smoqe::server
