#include "src/view/annotation.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/rxpath/parser.h"
#include "src/rxpath/printer.h"

namespace smoqe::view {

Annotation Annotation::Clone() const {
  Annotation a;
  a.kind = kind;
  if (condition != nullptr) a.condition = condition->Clone();
  return a;
}

namespace {

Status ValidateEdge(const xml::Dtd& dtd, std::string_view parent,
                    std::string_view child) {
  if (dtd.Find(parent) == nullptr) {
    return Status::InvalidArgument("policy references undeclared element '" +
                                   std::string(parent) + "'");
  }
  std::vector<std::string> kids = dtd.ChildTypes(parent);
  if (std::find(kids.begin(), kids.end(), std::string(child)) == kids.end()) {
    return Status::InvalidArgument("DTD has no edge " + std::string(parent) +
                                   "/" + std::string(child));
  }
  return Status::OK();
}

}  // namespace

Status Policy::Annotate(std::string_view parent, std::string_view child,
                        Annotation ann) {
  SMOQE_RETURN_IF_ERROR(ValidateEdge(*dtd_, parent, child));
  anns_[{std::string(parent), std::string(child)}] = std::move(ann);
  return Status::OK();
}

Status Policy::Allow(std::string_view parent, std::string_view child) {
  Annotation a;
  a.kind = AnnKind::kAllow;
  return Annotate(parent, child, std::move(a));
}

Status Policy::Deny(std::string_view parent, std::string_view child) {
  Annotation a;
  a.kind = AnnKind::kDeny;
  return Annotate(parent, child, std::move(a));
}

Status Policy::AllowIf(std::string_view parent, std::string_view child,
                       std::string_view condition) {
  SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<rxpath::Qualifier> q,
                         rxpath::ParseQualifierExpr(condition));
  Annotation a;
  a.kind = AnnKind::kCondition;
  a.condition = std::move(q);
  return Annotate(parent, child, std::move(a));
}

const Annotation* Policy::Find(std::string_view parent,
                               std::string_view child) const {
  auto it = anns_.find({std::string(parent), std::string(child)});
  return it == anns_.end() ? nullptr : &it->second;
}

bool Policy::HasConditions() const {
  for (const auto& [edge, ann] : anns_) {
    if (ann.kind == AnnKind::kCondition) return true;
  }
  return false;
}

Result<Policy> Policy::Parse(const xml::Dtd& dtd, std::string_view text) {
  Policy policy(&dtd);
  int line_no = 0;
  // Annotations are ';'-terminated statements; '#' starts a comment until
  // end of line.
  std::string cleaned;
  for (std::string_view line : Split(text, '\n')) {
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    cleaned += std::string(line) + "\n";
  }
  for (std::string_view stmt : Split(cleaned, ';')) {
    ++line_no;
    stmt = Trim(stmt);
    if (stmt.empty()) continue;
    size_t colon = stmt.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("policy statement " + std::to_string(line_no) +
                                " has no ':': '" + std::string(stmt) + "'");
    }
    std::string_view edge = Trim(stmt.substr(0, colon));
    std::string_view value = Trim(stmt.substr(colon + 1));
    size_t slash = edge.find('/');
    if (slash == std::string_view::npos) {
      return Status::ParseError("policy edge must be parent/child, got '" +
                                std::string(edge) + "'");
    }
    std::string_view parent = Trim(edge.substr(0, slash));
    std::string_view child = Trim(edge.substr(slash + 1));
    Status st;
    if (value == "Y" || value == "y") {
      st = policy.Allow(parent, child);
    } else if (value == "N" || value == "n") {
      st = policy.Deny(parent, child);
    } else if (!value.empty() && value.front() == '[' && value.back() == ']') {
      st = policy.AllowIf(parent, child, value.substr(1, value.size() - 2));
    } else {
      return Status::ParseError("annotation must be Y, N or [qualifier]: '" +
                                std::string(value) + "'");
    }
    if (!st.ok()) return st;
  }
  return policy;
}

std::string Policy::ToString() const {
  std::string out;
  for (const auto& [edge, ann] : anns_) {
    out += edge.first + "/" + edge.second + " : ";
    switch (ann.kind) {
      case AnnKind::kAllow:
        out += "Y";
        break;
      case AnnKind::kDeny:
        out += "N";
        break;
      case AnnKind::kCondition:
        out += "[" + rxpath::ToString(*ann.condition) + "]";
        break;
    }
    out += ";\n";
  }
  return out;
}

}  // namespace smoqe::view
