#ifndef SMOQE_VIEW_VIEW_DEF_H_
#define SMOQE_VIEW_VIEW_DEF_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/rxpath/ast.h"
#include "src/xml/dtd.h"

namespace smoqe::view {

/// \brief A (security) view definition: a view DTD exposed to the user
/// group, plus the specification σ mapping every view edge (A,B) to a
/// Regular XPath query over the *underlying document* that collects the
/// B-children of an A-node of the view (paper Fig. 3(c)/(d)).
///
/// Views may be recursive (the view DTD's type graph may be cyclic); σ
/// paths may contain Kleene stars when hidden regions are recursive —
/// the case that forces Regular XPath (paper §1).
class ViewDefinition {
 public:
  ViewDefinition() = default;
  ViewDefinition(ViewDefinition&&) = default;
  ViewDefinition& operator=(ViewDefinition&&) = default;

  const xml::Dtd& view_dtd() const { return view_dtd_; }
  xml::Dtd* mutable_view_dtd() { return &view_dtd_; }
  const std::string& root() const { return view_dtd_.root_name(); }

  /// Sets σ(parent, child). Both types must be declared in the view DTD.
  Status SetSigma(const std::string& parent, const std::string& child,
                  std::unique_ptr<rxpath::PathExpr> path);

  /// σ(parent, child), or nullptr if (parent, child) is not a view edge.
  const rxpath::PathExpr* Sigma(const std::string& parent,
                                const std::string& child) const;

  /// Child types of `parent` in the view DTD, in content-model order —
  /// the edge order the materializer emits children in.
  std::vector<std::string> EdgeOrder(const std::string& parent) const;

  /// Checks internal consistency: every view-DTD edge has a σ entry and
  /// vice versa; σ paths only end at element steps of the right type is
  /// not statically checkable and is covered by tests instead.
  Status Validate() const;

  /// Renders the specification like the paper's Fig. 3(c): one
  /// "σ(A, B) = path" line per edge, after the view DTD.
  std::string ToString() const;

 private:
  xml::Dtd view_dtd_;
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<rxpath::PathExpr>>
      sigma_;
};

}  // namespace smoqe::view

#endif  // SMOQE_VIEW_VIEW_DEF_H_
