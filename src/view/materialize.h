#ifndef SMOQE_VIEW_MATERIALIZE_H_
#define SMOQE_VIEW_MATERIALIZE_H_

#include <vector>

#include "src/common/status.h"
#include "src/view/view_def.h"
#include "src/xml/dom.h"

namespace smoqe::view {

/// A materialized view with provenance back to the source document.
struct MaterializedView {
  xml::Document document;
  /// For every view node id: the source-document node id it was extracted
  /// from (-1 for text nodes copied into the view).
  std::vector<int32_t> source_node_id;
};

/// \brief Materializes V(T): builds the view document an A-node at a time
/// by evaluating σ(A,B) on the underlying document (paper §2: this is what
/// SMOQE deliberately *avoids* doing online; the engine only materializes
/// views in tests and in the E8 baseline benchmark).
///
/// Children are emitted grouped by view-DTD edge order; element attributes
/// and direct text of extracted nodes are copied. The provenance map makes
/// rewriting testable: Q(V(T)) mapped through it must equal Q′(T).
Result<MaterializedView> Materialize(const ViewDefinition& view,
                                     const xml::Document& doc);

}  // namespace smoqe::view

#endif  // SMOQE_VIEW_MATERIALIZE_H_
