#include "src/view/materialize.h"

#include "src/rxpath/naive_eval.h"

namespace smoqe::view {

namespace {

class Materializer {
 public:
  Materializer(const ViewDefinition& view, const xml::Document& doc)
      : view_(view), doc_(doc), eval_(doc), builder_(doc.names()) {}

  Result<MaterializedView> Run() {
    const xml::Node* root = doc_.root();
    const std::string& root_name = doc_.names()->NameOf(root->label);
    if (root_name != view_.root()) {
      return Status::InvalidArgument("document root '" + root_name +
                                     "' does not match view root '" +
                                     view_.root() + "'");
    }
    SMOQE_RETURN_IF_ERROR(EmitNode(root, view_.root(), 0));
    SMOQE_ASSIGN_OR_RETURN(xml::Document vdoc, builder_.Finish());
    MaterializedView out{std::move(vdoc), std::move(provenance_)};
    return out;
  }

 private:
  Status EmitNode(const xml::Node* src, const std::string& type, int depth) {
    if (depth > 512) {
      return Status::ResourceExhausted(
          "view materialization exceeded depth 512 (is a σ path empty?)");
    }
    builder_.StartElement(type);
    provenance_.push_back(src->node_id);
    for (uint32_t i = 0; i < src->num_attrs; ++i) {
      builder_.AddAttribute(doc_.names()->NameOf(src->attrs[i].name),
                            src->attrs[i].value);
    }
    // Text content of the extracted node is preserved.
    for (const xml::Node* c = src->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_text()) {
        builder_.AddText(c->text);
        provenance_.push_back(-1);
      }
    }
    // Children per view edge, grouped in view-DTD content-model order.
    for (const std::string& child_type : view_.EdgeOrder(type)) {
      const rxpath::PathExpr* sigma = view_.Sigma(type, child_type);
      if (sigma == nullptr) {
        return Status::Internal("missing σ(" + type + ", " + child_type +
                                ") during materialization");
      }
      std::vector<const xml::Node*> targets = eval_.EvalFrom(*sigma, {src});
      for (const xml::Node* t : targets) {
        SMOQE_RETURN_IF_ERROR(EmitNode(t, child_type, depth + 1));
      }
    }
    return builder_.EndElement();
  }

  const ViewDefinition& view_;
  const xml::Document& doc_;
  rxpath::NaiveEvaluator eval_;
  xml::DocumentBuilder builder_;
  std::vector<int32_t> provenance_;
};

}  // namespace

Result<MaterializedView> Materialize(const ViewDefinition& view,
                                     const xml::Document& doc) {
  Materializer m(view, doc);
  return m.Run();
}

}  // namespace smoqe::view
