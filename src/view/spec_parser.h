#ifndef SMOQE_VIEW_SPEC_PARSER_H_
#define SMOQE_VIEW_SPEC_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/view/view_def.h"

namespace smoqe::view {

/// \brief Parses a hand-written view specification — the paper's *first*
/// view-definition mode (§2: "one mode allows users to define an XML view
/// by leveraging iSMOQE to annotate a view schema"; the visual tool's
/// output is exactly a view DTD plus a Regular XPath per edge).
///
/// Format ('#' comments; statements end with ';' except the dtd block):
///
///     root hospital;
///     dtd {
///       <!ELEMENT hospital (patient*)>
///       <!ELEMENT patient (treatment*)>
///       <!ELEMENT treatment (#PCDATA)>
///     }
///     sigma hospital/patient = patient[visit/treatment/medication='autism'];
///     sigma patient/treatment = visit/treatment[medication];
///
/// Every view-DTD edge must receive exactly one sigma; Validate() runs
/// before returning.
Result<ViewDefinition> ParseViewSpecification(std::string_view text);

/// \brief Statically checks a view specification against the *document*
/// DTD: every σ(A,B) must (a) only mention element types of the document
/// DTD and (b) produce only B-typed nodes when evaluated at an A node —
/// so the materialized view always conforms to the view DTD's edge
/// labels. Returns InvalidArgument describing the first violation.
Status CheckSpecificationAgainstDtd(const ViewDefinition& view,
                                    const xml::Dtd& document_dtd);

}  // namespace smoqe::view

#endif  // SMOQE_VIEW_SPEC_PARSER_H_
