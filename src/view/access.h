/// \file
/// \brief Per-node accessibility classification of a document under an
/// access-control policy — the node-level companion of the type-level
/// view derivation (derive.h).
///
/// Where DeriveView asks "which *types* does a user group see", AccessMap
/// asks "which *nodes* of this document does it see, and why". The update
/// subsystem uses it for both of its decisions (docs/DESIGN.md §6):
///
///  * authorization — an update posed through a view is rejected whole if
///    its effect region touches a hidden or condition-protected node, and
///    the explain string names the deciding annotation;
///  * view-cache retention — an edit whose whole effect region is hidden
///    from a qualifier-free view cannot change that view's
///    materialization, so its cache survives the document epoch bump.

#ifndef SMOQE_VIEW_ACCESS_H_
#define SMOQE_VIEW_ACCESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/view/annotation.h"
#include "src/xml/dom.h"

namespace smoqe::view {

/// \brief Accessibility of every live node of one document under one
/// policy, with provenance to the deciding annotation.
///
/// Semantics (matching derive.h): the root is visible; an unannotated
/// edge inherits the parent node's status; Y forces visible (a hidden
/// node's descendants may surface through it); N forces hidden; [q] is
/// visible iff q holds at the node, and marks the node — and everything
/// that inherits through it — *condition-protected*. Text nodes inherit
/// their parent element's status.
class AccessMap {
 public:
  /// Classifies every live node of `doc`. Conditional annotations are
  /// evaluated with the reference evaluator, so Compute is as expensive
  /// as the qualifiers it runs; qualifier-free policies classify in one
  /// cheap tree walk.
  static AccessMap Compute(const Policy& policy, const xml::Document& doc);

  /// Whether the node is part of the view's virtual document.
  bool visible(int32_t node_id) const { return nodes_[node_id].visible; }

  /// Whether the node's exposure depends on a conditional annotation —
  /// its own edge or any edge it inherited through.
  bool condition_protected(int32_t node_id) const {
    return nodes_[node_id].cond_edge >= 0;
  }

  /// Renders the annotation that decided the node's visibility, e.g.
  /// "patient/pname : N", or "(visible by default)" if no annotation
  /// applies on the path.
  std::string DecidingAnnotation(int32_t node_id) const;

  /// Renders the nearest enclosing conditional annotation, e.g.
  /// "hospital/patient : [visit/treatment/medication = 'autism']".
  /// Only meaningful when condition_protected(node_id).
  std::string ProtectingCondition(int32_t node_id) const;

  /// True iff every node of the subtree rooted at `n` is hidden — the
  /// edit-irrelevance test of the view-cache retention rule.
  bool SubtreeHidden(const xml::Node* n) const;

 private:
  struct NodeState {
    bool visible = true;
    int32_t vis_edge = -1;   ///< edges_ index deciding visibility, -1 = default
    int32_t cond_edge = -1;  ///< nearest enclosing conditional edge, -1 = none
  };

  /// One rendered annotated edge ("parent/child : ann").
  std::vector<std::string> edges_;
  std::vector<NodeState> nodes_;  // by node id; retired ids keep defaults
};

}  // namespace smoqe::view

#endif  // SMOQE_VIEW_ACCESS_H_
