#include "src/view/view_def.h"

#include <algorithm>
#include <functional>

#include "src/rxpath/printer.h"

namespace smoqe::view {

Status ViewDefinition::SetSigma(const std::string& parent,
                                const std::string& child,
                                std::unique_ptr<rxpath::PathExpr> path) {
  if (view_dtd_.Find(parent) == nullptr || view_dtd_.Find(child) == nullptr) {
    return Status::InvalidArgument("σ(" + parent + ", " + child +
                                   ") references a type outside the view DTD");
  }
  sigma_[{parent, child}] = std::move(path);
  return Status::OK();
}

const rxpath::PathExpr* ViewDefinition::Sigma(const std::string& parent,
                                              const std::string& child) const {
  auto it = sigma_.find({parent, child});
  return it == sigma_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ViewDefinition::EdgeOrder(
    const std::string& parent) const {
  const xml::ElementDecl* decl = view_dtd_.Find(parent);
  if (decl == nullptr) return {};
  std::vector<std::string> order;
  auto push_unique = [&](const std::string& name) {
    if (std::find(order.begin(), order.end(), name) == order.end()) {
      order.push_back(name);
    }
  };
  if (decl->content == xml::ContentKind::kChildren) {
    std::function<void(const xml::Particle&)> walk =
        [&](const xml::Particle& p) {
          if (p.kind() == xml::Particle::Kind::kElement) {
            push_unique(p.name());
            return;
          }
          for (const auto& c : p.children()) walk(*c);
        };
    walk(*decl->particle);
  } else {
    for (const std::string& c : view_dtd_.ChildTypes(parent)) push_unique(c);
  }
  return order;
}

Status ViewDefinition::Validate() const {
  for (const auto& [name, decl] : view_dtd_.elements()) {
    for (const std::string& child : view_dtd_.ChildTypes(name)) {
      if (Sigma(name, child) == nullptr) {
        return Status::Internal("view edge " + name + "/" + child +
                                " has no σ");
      }
    }
  }
  for (const auto& [edge, path] : sigma_) {
    std::vector<std::string> kids = view_dtd_.ChildTypes(edge.first);
    if (std::find(kids.begin(), kids.end(), edge.second) == kids.end()) {
      return Status::Internal("σ(" + edge.first + ", " + edge.second +
                              ") is not an edge of the view DTD");
    }
  }
  return Status::OK();
}

std::string ViewDefinition::ToString() const {
  std::string out = "view DTD (root " + view_dtd_.root_name() + "):\n";
  out += view_dtd_.ToString();
  out += "specification:\n";
  for (const auto& [edge, path] : sigma_) {
    out += "  sigma(" + edge.first + ", " + edge.second +
           ") = " + rxpath::ToString(*path) + "\n";
  }
  return out;
}

}  // namespace smoqe::view
