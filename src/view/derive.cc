#include "src/view/derive.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "src/automata/regex_extract.h"
#include "src/rxpath/ast.h"

namespace smoqe::view {

using rxpath::PathExpr;
using xml::ContentKind;
using xml::Dtd;
using xml::ElementDecl;
using xml::Particle;

namespace {

enum class Vis { kVisible, kHidden };

/// Type classification + per-edge conditions, shared by the DTD transform
/// and the σ extraction.
struct Classification {
  std::map<std::string, Vis> vis;
  /// Hidden types whose hidden-reachable region contains a cycle.
  std::set<std::string> cyclic;

  bool IsVisible(const std::string& t) const {
    auto it = vis.find(t);
    return it != vis.end() && it->second == Vis::kVisible;
  }
  bool IsHidden(const std::string& t) const {
    auto it = vis.find(t);
    return it != vis.end() && it->second == Vis::kHidden;
  }
};

Result<Classification> Classify(const Policy& policy) {
  const Dtd& dtd = policy.dtd();
  Classification cls;
  cls.vis[dtd.root_name()] = Vis::kVisible;
  std::deque<std::string> work = {dtd.root_name()};
  std::set<std::string> expanded;
  while (!work.empty()) {
    std::string a = work.front();
    work.pop_front();
    if (!expanded.insert(a).second) continue;
    for (const std::string& b : dtd.ChildTypes(a)) {
      Vis v;
      const Annotation* ann = policy.Find(a, b);
      if (ann != nullptr) {
        v = ann->kind == AnnKind::kDeny ? Vis::kHidden : Vis::kVisible;
      } else {
        v = cls.vis[a];  // inherit (conditionally visible inherits visible)
      }
      auto it = cls.vis.find(b);
      if (it == cls.vis.end()) {
        cls.vis[b] = v;
        work.push_back(b);
      } else if (it->second != v) {
        return Status::InvalidArgument(
            "policy classifies type '" + b +
            "' inconsistently (visible via one edge, hidden via another); "
            "split the type in the DTD or annotate the edges explicitly");
      } else {
        work.push_back(b);
      }
    }
  }

  // Cycle membership within the hidden-only subgraph: a hidden type is
  // 'cyclic' when it can reach itself through hidden edges.
  for (const auto& [t, v] : cls.vis) {
    if (v != Vis::kHidden) continue;
    std::set<std::string> seen;
    std::deque<std::string> q;
    for (const std::string& c : dtd.ChildTypes(t)) {
      if (cls.IsHidden(c)) q.push_back(c);
    }
    bool self = false;
    while (!q.empty() && !self) {
      std::string c = q.front();
      q.pop_front();
      if (c == t) {
        self = true;
        break;
      }
      if (!seen.insert(c).second) continue;
      for (const std::string& d : dtd.ChildTypes(c)) {
        if (cls.IsHidden(d)) q.push_back(d);
      }
    }
    if (self) cls.cyclic.insert(t);
  }
  return cls;
}

/// Computes frontier particles for hidden types and transformed particles
/// for visible types.
class ParticleTransform {
 public:
  ParticleTransform(const Policy& policy, const Classification& cls)
      : policy_(policy), cls_(cls), dtd_(policy.dtd()) {}

  /// Replaces hidden children with their visible frontiers; conditional
  /// children become optional.
  std::unique_ptr<Particle> TransformContent(const std::string& type,
                                             const Particle& p) {
    return Particle::Simplify(Walk(type, p));
  }

  /// Frontier of a hidden type: the particle its A-ancestors see instead
  /// of it.
  std::unique_ptr<Particle> Frontier(const std::string& hidden) {
    auto it = memo_.find(hidden);
    if (it != memo_.end()) return it->second->Clone();
    std::unique_ptr<Particle> result;
    if (cls_.cyclic.count(hidden) > 0) {
      // Recursive hidden region: approximate by (f1 | … | fk)* over its
      // visible frontier types (the SIGMOD'04 regularization).
      std::set<std::string> frontier = RegionFrontier(hidden);
      if (frontier.empty()) {
        result = Particle::Epsilon();
      } else {
        std::vector<std::unique_ptr<Particle>> parts;
        for (const std::string& f : frontier) {
          parts.push_back(Particle::Element(f));
        }
        result = Particle::Star(Particle::Choice(std::move(parts)));
      }
    } else {
      const ElementDecl* decl = dtd_.Find(hidden);
      if (decl == nullptr || decl->content == ContentKind::kEmpty ||
          decl->content == ContentKind::kPcdata) {
        result = Particle::Epsilon();
      } else if (decl->content == ContentKind::kMixed) {
        std::vector<std::unique_ptr<Particle>> parts;
        for (const std::string& c : decl->mixed_names) {
          parts.push_back(ChildOccurrence(hidden, c));
        }
        result = parts.empty()
                     ? Particle::Epsilon()
                     : Particle::Star(Particle::Choice(std::move(parts)));
      } else {
        result = Walk(hidden, *decl->particle);
      }
    }
    result = Particle::Simplify(std::move(result));
    memo_[hidden] = result->Clone();
    return result;
  }

  /// Visible frontier types adjacent to the hidden region of `hidden`.
  std::set<std::string> RegionFrontier(const std::string& hidden) {
    std::set<std::string> region = {hidden};
    std::deque<std::string> q = {hidden};
    while (!q.empty()) {
      std::string h = q.front();
      q.pop_front();
      for (const std::string& c : dtd_.ChildTypes(h)) {
        if (cls_.IsHidden(c) && region.insert(c).second) q.push_back(c);
      }
    }
    std::set<std::string> frontier;
    for (const std::string& h : region) {
      for (const std::string& c : dtd_.ChildTypes(h)) {
        if (cls_.IsVisible(c)) frontier.insert(c);
      }
    }
    return frontier;
  }

 private:
  /// One occurrence of child `c` under `parent` after the transform.
  std::unique_ptr<Particle> ChildOccurrence(const std::string& parent,
                                            const std::string& c) {
    if (cls_.IsVisible(c)) {
      const Annotation* ann = policy_.Find(parent, c);
      if (ann != nullptr && ann->kind == AnnKind::kCondition) {
        return Particle::Opt(Particle::Element(c));
      }
      return Particle::Element(c);
    }
    return Frontier(c);
  }

  std::unique_ptr<Particle> Walk(const std::string& type, const Particle& p) {
    switch (p.kind()) {
      case Particle::Kind::kElement:
        return ChildOccurrence(type, p.name());
      case Particle::Kind::kEpsilon:
        return Particle::Epsilon();
      case Particle::Kind::kSeq:
      case Particle::Kind::kChoice: {
        std::vector<std::unique_ptr<Particle>> parts;
        for (const auto& c : p.children()) parts.push_back(Walk(type, *c));
        return p.kind() == Particle::Kind::kSeq
                   ? Particle::Seq(std::move(parts))
                   : Particle::Choice(std::move(parts));
      }
      case Particle::Kind::kStar:
        return Particle::Star(Walk(type, *p.children()[0]));
      case Particle::Kind::kPlus:
        return Particle::Plus(Walk(type, *p.children()[0]));
      case Particle::Kind::kOpt:
        return Particle::Opt(Walk(type, *p.children()[0]));
    }
    return Particle::Epsilon();
  }

  const Policy& policy_;
  const Classification& cls_;
  const Dtd& dtd_;
  std::map<std::string, std::unique_ptr<Particle>> memo_;
};

/// One child step of the σ graph: `C` or `C[q]` for conditional edges.
std::unique_ptr<PathExpr> StepFor(const Policy& policy,
                                  const std::string& parent,
                                  const std::string& child) {
  auto step = PathExpr::Label(child);
  const Annotation* ann = policy.Find(parent, child);
  if (ann != nullptr && ann->kind == AnnKind::kCondition) {
    return PathExpr::Pred(std::move(step), ann->condition->Clone());
  }
  return step;
}

}  // namespace

Result<ViewDefinition> DeriveView(const Policy& policy) {
  const Dtd& dtd = policy.dtd();
  if (dtd.root_name().empty() || dtd.Find(dtd.root_name()) == nullptr) {
    return Status::InvalidArgument("policy DTD has no root element");
  }
  for (const auto& [name, decl] : dtd.elements()) {
    if (decl.content == ContentKind::kAny) {
      return Status::InvalidArgument(
          "ANY content models are not supported by view derivation ('" +
          name + "')");
    }
  }

  SMOQE_ASSIGN_OR_RETURN(Classification cls, Classify(policy));
  ParticleTransform transform(policy, cls);

  ViewDefinition view;
  Dtd* view_dtd = view.mutable_view_dtd();
  view_dtd->set_root_name(dtd.root_name());

  // View DTD declarations for visible types.
  for (const auto& [name, v] : cls.vis) {
    if (v != Vis::kVisible) continue;
    const ElementDecl* decl = dtd.Find(name);
    ElementDecl out;
    out.name = name;
    for (const xml::AttrDecl& ad : decl->attrs) out.attrs.push_back(ad);
    switch (decl->content) {
      case ContentKind::kEmpty:
      case ContentKind::kPcdata:
        out.content = decl->content;
        break;
      case ContentKind::kAny:
        return Status::Internal("ANY slipped through validation");
      case ContentKind::kMixed: {
        // Mixed children: visible kept, hidden replaced by region
        // frontiers; the view stays mixed.
        std::set<std::string> names;
        for (const std::string& c : decl->mixed_names) {
          if (cls.IsVisible(c)) {
            names.insert(c);
          } else if (cls.IsHidden(c)) {
            std::set<std::string> f = transform.RegionFrontier(c);
            names.insert(f.begin(), f.end());
          }
        }
        if (names.empty()) {
          out.content = ContentKind::kPcdata;
        } else {
          out.content = ContentKind::kMixed;
          out.mixed_names.assign(names.begin(), names.end());
        }
        break;
      }
      case ContentKind::kChildren: {
        std::unique_ptr<Particle> p =
            transform.TransformContent(name, *decl->particle);
        if (p->kind() == Particle::Kind::kEpsilon) {
          out.content = ContentKind::kEmpty;
        } else {
          out.content = ContentKind::kChildren;
          out.particle = std::move(p);
        }
        break;
      }
    }
    SMOQE_RETURN_IF_ERROR(view_dtd->AddElement(std::move(out)));
  }

  // σ extraction per visible type: state-eliminate the hidden region.
  for (const auto& [name, v] : cls.vis) {
    if (v != Vis::kVisible) continue;
    automata::PathAutomaton g;
    int src = g.AddState();
    std::map<std::string, int> hidden_node;
    std::map<std::string, int> sink_node;
    std::set<int> sinks;
    std::deque<std::pair<std::string, int>> work = {{name, src}};
    std::set<std::string> expanded;
    while (!work.empty()) {
      auto [type, state] = work.front();
      work.pop_front();
      if (!expanded.insert(type).second) continue;
      for (const std::string& c : dtd.ChildTypes(type)) {
        if (cls.IsVisible(c)) {
          auto it = sink_node.find(c);
          if (it == sink_node.end()) {
            it = sink_node.emplace(c, g.AddState()).first;
            sinks.insert(it->second);
          }
          g.AddEdge(state, it->second, StepFor(policy, type, c));
        } else if (cls.IsHidden(c)) {
          auto it = hidden_node.find(c);
          if (it == hidden_node.end()) {
            it = hidden_node.emplace(c, g.AddState()).first;
          }
          g.AddEdge(state, it->second, StepFor(policy, type, c));
          work.push_back({c, it->second});
        }
      }
    }
    SMOQE_ASSIGN_OR_RETURN(auto paths, g.ExtractPaths(src, sinks));
    for (auto& [sink, path] : paths) {
      for (const auto& [child, node] : sink_node) {
        if (node == sink) {
          SMOQE_RETURN_IF_ERROR(view.SetSigma(name, child, std::move(path)));
          break;
        }
      }
    }
  }

  SMOQE_RETURN_IF_ERROR(view.Validate());
  return view;
}

}  // namespace smoqe::view
