#ifndef SMOQE_VIEW_DERIVE_H_
#define SMOQE_VIEW_DERIVE_H_

#include "src/common/status.h"
#include "src/view/annotation.h"
#include "src/view/view_def.h"

namespace smoqe::view {

/// \brief Derives a security view from an access-control policy
/// (paper §2 "XML view definition", §3 "Specifying XML views"; the
/// automated derivation of reference [3]).
///
/// Semantics implemented (documented deviations in DESIGN.md §3):
///  * Explicit annotations: Y = visible, N = hidden, [q] = visible iff q
///    holds at the node. Unannotated edges inherit top-down: a child of a
///    visible (or conditionally visible) type is visible, a child of a
///    hidden type is hidden.
///  * A type must classify consistently over every reachable edge
///    (visible on one edge and hidden on another is rejected with
///    InvalidArgument — the SIGMOD'04 construction resolves this by type
///    renaming; callers can do the same by editing the DTD).
///  * The view DTD keeps the visible types. Hidden children in content
///    models are replaced by the content they expose (their visible
///    frontier), recursively; a *recursive* hidden region is approximated
///    by `(f1 | … | fk)*` over its frontier types. Conditionally visible
///    children become optional (`B?`).
///  * σ(A,B) is the Regular XPath collecting the visible B-frontier of an
///    A node: all downward label paths through hidden nodes, computed by
///    state elimination over the hidden-region graph; conditional steps
///    carry their qualifier (`B[q]`). Recursive hidden regions produce
///    Kleene stars — the Regular-XPath-only case.
///
/// The root type must be visible. Reproduces the paper's Fig. 3 example
/// exactly (golden-tested).
Result<ViewDefinition> DeriveView(const Policy& policy);

}  // namespace smoqe::view

#endif  // SMOQE_VIEW_DERIVE_H_
