#include "src/view/access.h"

#include <map>

#include "src/rxpath/naive_eval.h"
#include "src/rxpath/printer.h"

namespace smoqe::view {

namespace {

std::string RenderAnnotation(const std::string& parent,
                             const std::string& child, const Annotation& ann) {
  std::string out = parent + "/" + child + " : ";
  switch (ann.kind) {
    case AnnKind::kAllow:
      out += "Y";
      break;
    case AnnKind::kDeny:
      out += "N";
      break;
    case AnnKind::kCondition:
      out += "[" + rxpath::ToString(*ann.condition) + "]";
      break;
  }
  return out;
}

}  // namespace

AccessMap AccessMap::Compute(const Policy& policy, const xml::Document& doc) {
  AccessMap map;
  map.nodes_.resize(doc.num_nodes());
  rxpath::NaiveEvaluator eval(doc);
  // Rendered-edge interning so every node carries only indexes.
  std::map<std::pair<const void*, AnnKind>, int32_t> edge_ids;
  auto intern_edge = [&](const std::string& parent, const std::string& child,
                         const Annotation& ann) -> int32_t {
    auto key = std::make_pair(static_cast<const void*>(&ann), ann.kind);
    auto it = edge_ids.find(key);
    if (it != edge_ids.end()) return it->second;
    map.edges_.push_back(RenderAnnotation(parent, child, ann));
    int32_t id = static_cast<int32_t>(map.edges_.size()) - 1;
    edge_ids.emplace(key, id);
    return id;
  };

  const xml::NameTable& names = *doc.names();
  std::vector<const xml::Node*> stack = {doc.root()};
  // Root: visible, no deciding edge — the NodeState defaults.
  while (!stack.empty()) {
    const xml::Node* n = stack.back();
    stack.pop_back();
    const NodeState& cur = map.nodes_[n->node_id];
    const std::string& parent_name = names.NameOf(n->label);
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      NodeState& cs = map.nodes_[c->node_id];
      if (c->is_text()) {
        cs = cur;  // text inherits its parent element's status
        continue;
      }
      const std::string& child_name = names.NameOf(c->label);
      const Annotation* ann = policy.Find(parent_name, child_name);
      if (ann == nullptr) {
        cs = cur;
      } else {
        switch (ann->kind) {
          case AnnKind::kAllow:
            cs.visible = true;
            cs.vis_edge = intern_edge(parent_name, child_name, *ann);
            cs.cond_edge = cur.cond_edge;
            break;
          case AnnKind::kDeny:
            cs.visible = false;
            cs.vis_edge = intern_edge(parent_name, child_name, *ann);
            cs.cond_edge = cur.cond_edge;
            break;
          case AnnKind::kCondition: {
            int32_t edge = intern_edge(parent_name, child_name, *ann);
            cs.visible = eval.QualifierHolds(*ann->condition, c);
            cs.vis_edge = edge;
            cs.cond_edge = edge;
            break;
          }
        }
      }
      stack.push_back(c);
    }
  }
  return map;
}

std::string AccessMap::DecidingAnnotation(int32_t node_id) const {
  int32_t e = nodes_[node_id].vis_edge;
  return e < 0 ? "(visible by default)" : edges_[static_cast<size_t>(e)];
}

std::string AccessMap::ProtectingCondition(int32_t node_id) const {
  int32_t e = nodes_[node_id].cond_edge;
  return e < 0 ? "(unconditional)" : edges_[static_cast<size_t>(e)];
}

bool AccessMap::SubtreeHidden(const xml::Node* n) const {
  std::vector<const xml::Node*> stack = {n};
  while (!stack.empty()) {
    const xml::Node* cur = stack.back();
    stack.pop_back();
    if (nodes_[cur->node_id].visible) return false;
    for (const xml::Node* c = cur->first_child; c != nullptr;
         c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  return true;
}

}  // namespace smoqe::view
