#include "src/view/spec_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/rxpath/parser.h"
#include "src/rxpath/printer.h"
#include "src/rxpath/type_check.h"
#include "src/xml/dtd_parser.h"

namespace smoqe::view {

Result<ViewDefinition> ParseViewSpecification(std::string_view text) {
  // Strip comments: '#' starts a comment only when followed by
  // whitespace or end of line, so DTD tokens like #PCDATA / #REQUIRED
  // survive inside the dtd block.
  std::string cleaned;
  for (std::string_view line : Split(text, '\n')) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] != '#') continue;
      if (i + 1 >= line.size() || line[i + 1] == ' ' || line[i + 1] == '\t') {
        line = line.substr(0, i);
        break;
      }
    }
    cleaned += std::string(line) + "\n";
  }

  std::string root;
  std::string dtd_text;
  std::vector<std::pair<std::pair<std::string, std::string>, std::string>>
      sigmas;

  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < cleaned.size() &&
           std::isspace(static_cast<unsigned char>(cleaned[pos]))) {
      ++pos;
    }
  };
  auto starts_with = [&](std::string_view kw) {
    return cleaned.compare(pos, kw.size(), kw) == 0;
  };

  while (true) {
    skip_ws();
    if (pos >= cleaned.size()) break;
    if (starts_with("root")) {
      pos += 4;
      size_t semi = cleaned.find(';', pos);
      if (semi == std::string::npos) {
        return Status::ParseError("'root' statement missing ';'");
      }
      root = std::string(Trim(std::string_view(cleaned).substr(pos, semi - pos)));
      pos = semi + 1;
    } else if (starts_with("dtd")) {
      pos += 3;
      skip_ws();
      if (pos >= cleaned.size() || cleaned[pos] != '{') {
        return Status::ParseError("'dtd' must be followed by '{ … }'");
      }
      ++pos;
      size_t close = cleaned.find('}', pos);
      if (close == std::string::npos) {
        return Status::ParseError("unterminated dtd block");
      }
      dtd_text = cleaned.substr(pos, close - pos);
      pos = close + 1;
    } else if (starts_with("sigma")) {
      pos += 5;
      size_t semi = cleaned.find(';', pos);
      if (semi == std::string::npos) {
        return Status::ParseError("'sigma' statement missing ';'");
      }
      std::string_view stmt =
          Trim(std::string_view(cleaned).substr(pos, semi - pos));
      pos = semi + 1;
      size_t eq = stmt.find('=');
      // The path may itself contain '=' inside qualifiers; the edge part
      // never does, so split at the first '='.
      if (eq == std::string_view::npos) {
        return Status::ParseError("sigma statement needs 'edge = path'");
      }
      std::string_view edge = Trim(stmt.substr(0, eq));
      std::string_view path = Trim(stmt.substr(eq + 1));
      size_t slash = edge.find('/');
      if (slash == std::string_view::npos) {
        return Status::ParseError("sigma edge must be parent/child, got '" +
                                  std::string(edge) + "'");
      }
      sigmas.push_back(
          {{std::string(Trim(edge.substr(0, slash))),
            std::string(Trim(edge.substr(slash + 1)))},
           std::string(path)});
    } else {
      return Status::ParseError(
          "expected 'root', 'dtd' or 'sigma' in view specification near '" +
          cleaned.substr(pos, 20) + "'");
    }
  }

  if (dtd_text.empty()) {
    return Status::ParseError("view specification has no dtd block");
  }
  SMOQE_ASSIGN_OR_RETURN(xml::Dtd view_dtd, xml::ParseDtd(dtd_text, root));

  ViewDefinition view;
  *view.mutable_view_dtd() = std::move(view_dtd);
  for (auto& [edge, path_text] : sigmas) {
    SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<rxpath::PathExpr> path,
                           rxpath::ParseQuery(path_text));
    SMOQE_RETURN_IF_ERROR(
        view.SetSigma(edge.first, edge.second, std::move(path))
            .WithContext("sigma " + edge.first + "/" + edge.second));
  }
  Status valid = view.Validate();
  if (!valid.ok()) {
    // Internal → user error here: the spec is hand-written.
    return Status::InvalidArgument(valid.message());
  }
  return view;
}

Status CheckSpecificationAgainstDtd(const ViewDefinition& view,
                                    const xml::Dtd& document_dtd) {
  for (const auto& [name, decl] : view.view_dtd().elements()) {
    for (const std::string& child : view.view_dtd().ChildTypes(name)) {
      const rxpath::PathExpr* sigma = view.Sigma(name, child);
      if (sigma == nullptr) continue;  // Validate() already rejects this
      rxpath::TypeCheckResult tc =
          rxpath::TypeCheck(*sigma, document_dtd, {name});
      if (!tc.unknown_labels.empty()) {
        return Status::InvalidArgument(
            "sigma(" + name + ", " + child + ") = " +
            rxpath::ToString(*sigma) + " mentions '" +
            *tc.unknown_labels.begin() +
            "', which is not an element type of the document DTD");
      }
      for (const std::string& out : tc.output_types) {
        if (out != child) {
          return Status::InvalidArgument(
              "sigma(" + name + ", " + child + ") = " +
              rxpath::ToString(*sigma) + " can produce '" + out +
              "' nodes; it must only produce '" + child + "'");
        }
      }
      if (tc.output_types.empty()) {
        return Status::InvalidArgument(
            "sigma(" + name + ", " + child + ") = " +
            rxpath::ToString(*sigma) +
            " can never produce a node under an '" + name +
            "' element of the document DTD");
      }
    }
  }
  return Status::OK();
}

}  // namespace smoqe::view
