#ifndef SMOQE_VIEW_ANNOTATION_H_
#define SMOQE_VIEW_ANNOTATION_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/rxpath/ast.h"
#include "src/xml/dtd.h"

namespace smoqe::view {

/// Kind of an access-control annotation on a DTD edge (A,B) — the values
/// of `ann(A,B)` in the paper's Fig. 3(b) (the security-view model of
/// Fan, Chan, Garofalakis, SIGMOD'04, the paper's reference [3]).
enum class AnnKind {
  kAllow,      ///< Y — B children of A are accessible
  kDeny,       ///< N — B children of A are hidden (descendants may
               ///<     still surface through them)
  kCondition,  ///< [q] — accessible iff qualifier q holds at the B node
};

/// One edge annotation.
struct Annotation {
  AnnKind kind = AnnKind::kAllow;
  std::unique_ptr<rxpath::Qualifier> condition;  ///< kCondition only

  Annotation Clone() const;
};

/// \brief An access-control policy: a DTD plus edge annotations.
///
/// Unannotated edges inherit the status of the parent node top-down (a
/// child of a hidden node is hidden unless explicitly re-allowed), which
/// is how Fig. 3(b)'s five annotations hide pname/visit/date/test while
/// keeping treatment/medication/parent chains accessible.
///
/// Text format (parsed by `Parse`, one annotation per line):
///
///     # only expose patients treated for autism
///     hospital/patient : [visit/treatment/medication = 'autism'];
///     patient/pname    : N;
///     patient/visit    : N;
///     visit/treatment  : [medication];
///     treatment/test   : N;
class Policy {
 public:
  explicit Policy(const xml::Dtd* dtd) : dtd_(dtd) {}
  Policy(Policy&&) = default;
  Policy& operator=(Policy&&) = default;

  const xml::Dtd& dtd() const { return *dtd_; }

  /// Sets ann(parent, child). Fails if the edge does not exist in the DTD.
  Status Annotate(std::string_view parent, std::string_view child,
                  Annotation ann);

  /// Convenience wrappers.
  Status Allow(std::string_view parent, std::string_view child);
  Status Deny(std::string_view parent, std::string_view child);
  /// `condition` is a Regular XPath qualifier evaluated at the child node.
  Status AllowIf(std::string_view parent, std::string_view child,
                 std::string_view condition);

  /// The explicit annotation on an edge, or nullptr (inherit).
  const Annotation* Find(std::string_view parent,
                         std::string_view child) const;

  /// True iff any annotation is conditional ([q]). Qualifier-free policies
  /// admit the update subsystem's view-cache retention rule (DESIGN.md §6.5).
  bool HasConditions() const;

  /// Parses the text format. All named edges are validated against `dtd`.
  static Result<Policy> Parse(const xml::Dtd& dtd, std::string_view text);

  /// Renders in the text format (round-trips through Parse).
  std::string ToString() const;

  size_t size() const { return anns_.size(); }

 private:
  const xml::Dtd* dtd_;
  std::map<std::pair<std::string, std::string>, Annotation> anns_;
};

}  // namespace smoqe::view

#endif  // SMOQE_VIEW_ANNOTATION_H_
