#include "src/update/authorize.h"

#include <string>

namespace smoqe::update {

namespace {

std::string Describe(const xml::NameTable& names, const xml::Node* n) {
  return "element '" + names.NameOf(n->label) + "' (node " +
         std::to_string(n->node_id) + ")";
}

/// Rejects if any node of the subtree rooted at `t` is hidden or
/// condition-protected (the delete/replace effect region).
Status CheckRemovedSubtree(const view::AccessMap& access,
                           const xml::NameTable& names, const xml::Node* t,
                           const char* op) {
  std::vector<const xml::Node*> stack = {t};
  while (!stack.empty()) {
    const xml::Node* n = stack.back();
    stack.pop_back();
    if (n->is_element()) {
      if (!access.visible(n->node_id)) {
        return Status::PermissionDenied(
            std::string("update rejected: ") + op + " would remove hidden " +
            Describe(names, n) + ", hidden by annotation '" +
            access.DecidingAnnotation(n->node_id) + "'");
      }
      if (access.condition_protected(n->node_id)) {
        return Status::PermissionDenied(
            std::string("update rejected: ") + op + " would remove " +
            Describe(names, n) + ", which is condition-protected by "
            "annotation '" + access.ProtectingCondition(n->node_id) + "'");
      }
    }
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  return Status::OK();
}

/// Rejects if grafting `frag_root` as a child of an element labeled
/// `graft_parent_label` would create any N- or [q]-annotated edge —
/// the graft edge itself or any edge inside the fragment. Pass
/// `graft_parent_label == kNoName` when there is no graft edge (a root
/// replacement): only the fragment's internal edges are checked.
Status CheckGraftedFragment(const view::Policy& policy,
                            const xml::NameTable& doc_names,
                            xml::NameId graft_parent_label,
                            const xml::Document& fragment, const char* op) {
  const xml::NameTable& fnames = *fragment.names();
  // (parent label name, node) pairs; the graft edge seeds the walk —
  // or, with no graft edge, the fragment root's own children do.
  std::vector<std::pair<const std::string*, const xml::Node*>> stack;
  if (graft_parent_label != xml::kNoName) {
    stack.push_back({&doc_names.NameOf(graft_parent_label), fragment.root()});
  } else {
    const std::string& root_name = fnames.NameOf(fragment.root()->label);
    for (const xml::Node* c = fragment.root()->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_element()) stack.push_back({&root_name, c});
    }
  }
  while (!stack.empty()) {
    auto [parent_name, n] = stack.back();
    stack.pop_back();
    const std::string& child_name = fnames.NameOf(n->label);
    const view::Annotation* ann = policy.Find(*parent_name, child_name);
    if (ann != nullptr && ann->kind != view::AnnKind::kAllow) {
      const bool deny = ann->kind == view::AnnKind::kDeny;
      return Status::PermissionDenied(
          std::string("update rejected: ") + op + " would create " +
          (deny ? "hidden" : "condition-protected") + " element '" +
          child_name + "' under '" + *parent_name + "', edge annotated '" +
          *parent_name + "/" + child_name + " : " +
          (deny ? "N" : "[...]") + "' in the policy");
    }
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_element()) stack.push_back({&child_name, c});
    }
  }
  return Status::OK();
}

}  // namespace

Status AuthorizeScript(const view::Policy& policy,
                       const view::AccessMap& access,
                       const xml::Document& doc,
                       const std::vector<ResolvedEdit>& script) {
  const xml::NameTable& names = *doc.names();
  for (const ResolvedEdit& e : script) {
    const xml::Node* t = e.target;
    if (t == nullptr || !t->is_element()) {
      return Status::InvalidArgument("edit has no element target");
    }
    // The anchor node itself must be unconditionally visible — for
    // inserts that is the parent written under, for removals the subtree
    // root (also covered by the subtree walk; checked here for the
    // sharper "target" wording).
    if (!access.visible(t->node_id)) {
      return Status::PermissionDenied(
          "update rejected: target " + Describe(names, t) +
          " is hidden by annotation '" + access.DecidingAnnotation(t->node_id) +
          "'");
    }
    if (access.condition_protected(t->node_id)) {
      return Status::PermissionDenied(
          "update rejected: target " + Describe(names, t) +
          " is condition-protected by annotation '" +
          access.ProtectingCondition(t->node_id) + "'");
    }
    switch (e.kind) {
      case OpKind::kDelete:
        SMOQE_RETURN_IF_ERROR(
            CheckRemovedSubtree(access, names, t, "delete"));
        break;
      case OpKind::kReplace:
        SMOQE_RETURN_IF_ERROR(
            CheckRemovedSubtree(access, names, t, "replace"));
        // Root replacement has no graft edge, but the fragment's internal
        // edges must still be free of hidden/conditional annotations.
        SMOQE_RETURN_IF_ERROR(CheckGraftedFragment(
            policy, names,
            t->parent != nullptr ? t->parent->label : xml::kNoName,
            *e.fragment, "replace"));
        break;
      case OpKind::kInsert:
        SMOQE_RETURN_IF_ERROR(CheckGraftedFragment(
            policy, names, t->label, *e.fragment, "insert"));
        break;
    }
  }
  return Status::OK();
}

}  // namespace smoqe::update
