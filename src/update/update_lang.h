/// \file
/// \brief The secure-update language: surface syntax, AST and canonical
/// printer (docs/QUERY_LANGUAGE.md "Updates", DESIGN.md §6.1).
///
/// Three statements, a thin layer over the Regular XPath parser:
///
///   insert into <path> <fragment>     append fragment under each target
///   delete <path>                     remove each target subtree
///   replace <path> with <fragment>    swap each target subtree
///
/// `<path>` is any Regular XPath expression (the same grammar queries
/// use); `<fragment>` is a single well-formed element. The fragment
/// starts at the first '<' outside the path's quoted strings, so paths
/// with string literals — `delete //pname[text() = '<odd>']` — parse.
///
/// The printed form is canonical: the path is rendered by the rxpath
/// printer and the fragment re-serialized compactly, so surface variants
/// of one statement print identically (the same normalization queries get
/// in the plan cache).

#ifndef SMOQE_UPDATE_UPDATE_LANG_H_
#define SMOQE_UPDATE_UPDATE_LANG_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/rxpath/ast.h"
#include "src/xml/dom.h"
#include "src/xml/name_table.h"

namespace smoqe::update {

enum class OpKind { kInsert, kDelete, kReplace };

/// One parsed update statement.
struct UpdateStatement {
  OpKind kind = OpKind::kDelete;
  /// Target path, in the vocabulary the statement is posed against (the
  /// view schema for view updates, the document schema for direct ones).
  std::unique_ptr<rxpath::PathExpr> target;
  /// Parsed fragment (insert/replace only). Owns the fragment tree; the
  /// applier grafts *copies*, so one statement can hit many targets.
  std::optional<xml::Document> fragment;

  UpdateStatement() = default;
  UpdateStatement(UpdateStatement&&) = default;
  UpdateStatement& operator=(UpdateStatement&&) = default;
};

/// Parses one update statement. The fragment is parsed against `names`
/// (pass the engine's shared table so labels intern consistently); when
/// `names` is null the fragment gets a private table.
Result<UpdateStatement> ParseUpdate(std::string_view text,
                                    std::shared_ptr<xml::NameTable> names = nullptr);

/// Canonical rendering (round-trips through ParseUpdate).
std::string ToString(const UpdateStatement& stmt);

const char* ToString(OpKind kind);

}  // namespace smoqe::update

#endif  // SMOQE_UPDATE_UPDATE_LANG_H_
