/// \file
/// \brief Atomic application of authorized edit scripts to a DOM
/// document, with DTD revalidation *before* any mutation and incremental
/// TAX maintenance after (docs/DESIGN.md §6.3–6.4).
///
/// All-or-nothing contract: Run() first plans and validates the whole
/// script against the DTD — nesting normalization, fragment validity,
/// simulated post-edit child sequences of every affected parent — and
/// only then mutates. The commit phase is pure pointer surgery plus arena
/// allocation and cannot fail, so a script either applies completely or
/// leaves the document (and its TAX index) untouched.

#ifndef SMOQE_UPDATE_APPLIER_H_
#define SMOQE_UPDATE_APPLIER_H_

#include <cstdint>
#include <vector>

#include "src/common/guardrail.h"
#include "src/common/status.h"
#include "src/index/tax.h"
#include "src/update/update_lang.h"
#include "src/xml/dom.h"
#include "src/xml/dtd.h"

namespace smoqe::update {

/// One edit of a script, resolved to a document node.
///
/// For kInsert, `target` is the *parent* the fragment is grafted under;
/// for kDelete/kReplace it is the subtree being removed/swapped. Targets
/// are always element nodes (Regular XPath selects elements).
struct ResolvedEdit {
  OpKind kind = OpKind::kDelete;
  xml::Node* target = nullptr;
  /// Fragment grafted by kInsert/kReplace (a copy per edit); null for
  /// kDelete. Owned by the caller (typically the UpdateStatement).
  const xml::Document* fragment = nullptr;
};

/// Work counters of one applied script.
struct ApplyStats {
  uint64_t edits_applied = 0;    ///< after nesting normalization
  uint64_t edits_dropped = 0;    ///< nested inside another removed subtree
  uint64_t nodes_inserted = 0;
  uint64_t nodes_deleted = 0;
  uint64_t tax_sets_recomputed = 0;  ///< incremental repair work
  bool tax_rebuilt = false;          ///< maintenance fell back to full Build
};

struct ApplierOptions {
  /// Revalidation schema; when null only structural rules are enforced
  /// (root preservation, well-formed grafts).
  const xml::Dtd* dtd = nullptr;
  /// TAX index of the document, maintained across the update when
  /// non-null (repaired incrementally, or rebuilt under `rebuild_tax`).
  index::TaxIndex* tax = nullptr;
  /// Maintain TAX by full rebuild instead of ancestor-chain repair — the
  /// E12 differential/ablation knob.
  bool rebuild_tax = false;
  /// Per-request guardrail, checked per edit while planning and again
  /// before the commit. A guard trip (or an armed "update.apply" /
  /// "tax.repair" fault) during the commit's TAX maintenance may leave
  /// the *document object* mutated — the engine applies scripts to a
  /// pre-publish clone, so the published snapshot chain stays untouched.
  const Guardrail* guard = nullptr;
};

/// \brief Plans, validates and applies one edit script.
///
/// Insert position: a fragment is grafted at the *rightmost* element
/// position of its parent at which the projected child sequence still
/// matches the parent's content model (append-preferring; e.g. a new
/// `visit` lands after existing visits but before `parent` genealogy in
/// the hospital DTD). Without a DTD, inserts append after every child.
///
/// Nesting: an edit whose target lies inside another edit's removed
/// subtree is dropped (outermost wins — XQuery-Update-style snapshot
/// semantics); two different edits of the *same* node are an error.
class UpdateApplier {
 public:
  UpdateApplier(xml::Document* doc, const ApplierOptions& options)
      : doc_(doc), options_(options) {}

  /// Validates without mutating (the dry-run entry).
  Status Validate(const std::vector<ResolvedEdit>& script);

  /// Validates, then applies. On error the document is untouched.
  Result<ApplyStats> Run(const std::vector<ResolvedEdit>& script);

 private:
  /// A committed plan: surviving edits plus chosen insert positions.
  struct PlannedEdit {
    ResolvedEdit edit;
    size_t elem_pos = 0;  ///< kInsert: element position under the parent
  };

  Status Plan(const std::vector<ResolvedEdit>& script,
              std::vector<PlannedEdit>* plan, uint64_t* dropped);
  Result<ApplyStats> Commit(const std::vector<PlannedEdit>& plan,
                            uint64_t dropped);

  xml::Document* doc_;
  ApplierOptions options_;
};

}  // namespace smoqe::update

#endif  // SMOQE_UPDATE_APPLIER_H_
