#include "src/update/applier.h"

#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/xml/dtd_validator.h"

namespace smoqe::update {

namespace {

/// Ids of every node in a subtree (collected before the ids are retired).
void CollectSubtreeIds(const xml::Node* root, std::vector<int32_t>* out) {
  std::vector<const xml::Node*> stack = {root};
  while (!stack.empty()) {
    const xml::Node* n = stack.back();
    stack.pop_back();
    out->push_back(n->node_id);
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      stack.push_back(c);
    }
  }
}

size_t SubtreeSize(const xml::Node* root) {
  size_t n = 0;
  std::vector<const xml::Node*> stack = {root};
  while (!stack.empty()) {
    const xml::Node* cur = stack.back();
    stack.pop_back();
    ++n;
    for (const xml::Node* c = cur->first_child; c != nullptr;
         c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  return n;
}

/// True iff a strict ancestor of `n` is in `removed`.
bool UnderRemoval(const xml::Node* n,
                  const std::unordered_set<const xml::Node*>& removed) {
  for (const xml::Node* a = n->parent; a != nullptr; a = a->parent) {
    if (removed.count(a) > 0) return true;
  }
  return false;
}

/// Projected element-child sequence of one parent after the script's
/// removals/replacements, plus the inserts planned into it so far.
struct ParentProjection {
  std::vector<std::string> labels;
  bool has_text = false;
};

}  // namespace

Status UpdateApplier::Plan(const std::vector<ResolvedEdit>& script,
                           std::vector<PlannedEdit>* plan, uint64_t* dropped) {
  if (options_.guard != nullptr) {
    SMOQE_RETURN_IF_ERROR(options_.guard->Check());
  }
  const xml::NameTable& names = *doc_->names();
  *dropped = 0;

  // Same-node conflicts and the removal set (nesting normalization).
  // Two edits of one node conflict unless they are exact duplicates
  // (same kind AND same fragment) — a second insert/replace with a
  // different fragment must error, not silently lose one fragment.
  std::unordered_set<const xml::Node*> removed;
  std::unordered_map<const xml::Node*, std::pair<OpKind, const xml::Document*>>
      op_of;
  for (const ResolvedEdit& e : script) {
    if (e.target == nullptr) {
      return Status::InvalidArgument("edit has no target");
    }
    if (!e.target->is_element()) {
      return Status::InvalidArgument("edit target must be an element");
    }
    auto [it, fresh] = op_of.emplace(e.target,
                                     std::make_pair(e.kind, e.fragment));
    if (!fresh && it->second != std::make_pair(e.kind, e.fragment)) {
      return Status::InvalidArgument(
          "conflicting edits target the same node (id " +
          std::to_string(e.target->node_id) + ")");
    }
    if (e.kind != OpKind::kInsert) removed.insert(e.target);
    if ((e.kind == OpKind::kInsert || e.kind == OpKind::kReplace) &&
        e.fragment == nullptr) {
      return Status::InvalidArgument(std::string(ToString(e.kind)) +
                                     " edit has no fragment");
    }
  }

  // Surviving edits: outermost removals win; edits inside them drop.
  std::unordered_set<const xml::Node*> seen;
  for (const ResolvedEdit& e : script) {
    if (!seen.insert(e.target).second) {  // duplicate (same kind): dedupe
      ++*dropped;
      continue;
    }
    if (UnderRemoval(e.target, removed) ||
        (e.kind == OpKind::kInsert && removed.count(e.target) > 0)) {
      ++*dropped;
      continue;
    }
    if (e.kind == OpKind::kDelete && e.target->parent == nullptr) {
      return Status::InvalidArgument(
          "cannot delete the document root element");
    }
    plan->push_back(PlannedEdit{e, std::numeric_limits<size_t>::max()});
  }

  if (options_.dtd == nullptr) return Status::OK();
  const xml::Dtd& dtd = *options_.dtd;
  // One compiled content model per element type for the whole plan (the
  // insert-position scan probes the same parent many times).
  xml::ContentModelCache models;

  // Fragment internal validity + replace-root type check.
  for (const PlannedEdit& pe : *plan) {
    const ResolvedEdit& e = pe.edit;
    if (e.fragment == nullptr) continue;
    SMOQE_RETURN_IF_ERROR(
        xml::ValidateSubtree(e.fragment->root(), *e.fragment->names(), dtd,
                             {}, &models)
            .WithContext(std::string(ToString(e.kind)) + " fragment"));
    if (e.kind == OpKind::kReplace && e.target->parent == nullptr &&
        !dtd.root_name().empty() &&
        e.fragment->names()->NameOf(e.fragment->root()->label) !=
            dtd.root_name()) {
      return Status::InvalidArgument(
          "replacing the root requires a fragment of the DTD root type '" +
          dtd.root_name() + "'");
    }
  }

  // Per-parent child-sequence simulation. First project removals and
  // replacements, then place the inserts (rightmost valid position).
  std::map<xml::Node*, ParentProjection> parents;
  auto project = [&](xml::Node* parent) -> ParentProjection& {
    auto it = parents.find(parent);
    if (it != parents.end()) return it->second;
    ParentProjection proj;
    for (const xml::Node* c = parent->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_text()) {
        proj.has_text = true;
        continue;
      }
      auto op = op_of.find(c);
      if (op != op_of.end() && op->second.first == OpKind::kDelete) continue;
      if (op != op_of.end() && op->second.first == OpKind::kReplace) {
        // Substitute the replacement's root type at the same position.
        const xml::Document* frag = op->second.second;
        proj.labels.push_back(frag->names()->NameOf(frag->root()->label));
        continue;
      }
      proj.labels.push_back(names.NameOf(c->label));
    }
    return parents.emplace(parent, std::move(proj)).first->second;
  };

  for (PlannedEdit& pe : *plan) {
    // The insert-position scan is the plan phase's expensive loop
    // (quadratic in children per insert) — check the guard per edit.
    if (options_.guard != nullptr) {
      SMOQE_RETURN_IF_ERROR(options_.guard->Check());
    }
    xml::Node* affected = pe.edit.kind == OpKind::kInsert
                              ? pe.edit.target
                              : pe.edit.target->parent;
    if (affected == nullptr) continue;  // replace-root: checked above
    ParentProjection& proj = project(affected);
    if (pe.edit.kind != OpKind::kInsert) continue;
    const std::string& frag_label =
        pe.edit.fragment->names()->NameOf(pe.edit.fragment->root()->label);
    // Rightmost valid element position (append-preferring).
    Status last_error = Status::OK();
    bool placed = false;
    for (size_t pos = proj.labels.size() + 1; pos-- > 0;) {
      std::vector<std::string> candidate = proj.labels;
      candidate.insert(candidate.begin() + static_cast<ptrdiff_t>(pos),
                       frag_label);
      Status st = xml::ValidateChildSequence(
          dtd, names.NameOf(affected->label), candidate, proj.has_text, {},
          &models);
      if (st.ok()) {
        proj.labels = std::move(candidate);
        pe.elem_pos = pos;
        placed = true;
        break;
      }
      last_error = std::move(st);
    }
    if (!placed) {
      return last_error.WithContext(
          "insert of '" + frag_label + "' fits no position under element '" +
          names.NameOf(affected->label) + "'");
    }
  }

  // Parents affected only by removals still need their final sequence
  // checked (inserts validated theirs along the way, but revalidating the
  // final projection is cheap and uniform).
  for (const auto& [parent, proj] : parents) {
    SMOQE_RETURN_IF_ERROR(
        xml::ValidateChildSequence(dtd, names.NameOf(parent->label),
                                   proj.labels, proj.has_text, {}, &models)
            .WithContext("post-update content of element '" +
                         names.NameOf(parent->label) + "'"));
  }
  return Status::OK();
}

Status UpdateApplier::Validate(const std::vector<ResolvedEdit>& script) {
  std::vector<PlannedEdit> plan;
  uint64_t dropped = 0;
  return Plan(script, &plan, &dropped);
}

Result<ApplyStats> UpdateApplier::Commit(const std::vector<PlannedEdit>& plan,
                                         uint64_t dropped) {
  ApplyStats stats;
  stats.edits_dropped = dropped;

  // Dirty parents for TAX repair, with the subtrees grafted under each.
  std::vector<std::pair<const xml::Node*, std::vector<const xml::Node*>>>
      dirty;
  std::unordered_map<const xml::Node*, size_t> dirty_index;
  auto mark_dirty = [&](const xml::Node* parent, const xml::Node* grafted) {
    auto [it, fresh] = dirty_index.emplace(parent, dirty.size());
    if (fresh) dirty.push_back({parent, {}});
    if (grafted != nullptr) dirty[it->second].second.push_back(grafted);
  };
  std::vector<int32_t> retired;

  // Removals and replacements first, inserts second: insert positions
  // were planned against the post-removal child sequences.
  for (const PlannedEdit& pe : plan) {
    const ResolvedEdit& e = pe.edit;
    if (e.kind == OpKind::kDelete) {
      const size_t mark = retired.size();
      CollectSubtreeIds(e.target, &retired);
      stats.nodes_deleted += retired.size() - mark;
      const xml::Node* parent = e.target->parent;
      doc_->RemoveSubtree(e.target);
      mark_dirty(parent, nullptr);
      ++stats.edits_applied;
    } else if (e.kind == OpKind::kReplace) {
      const size_t mark = retired.size();
      CollectSubtreeIds(e.target, &retired);
      stats.nodes_deleted += retired.size() - mark;
      xml::Node* copy = doc_->ImportSubtree(e.fragment->root(), *e.fragment);
      stats.nodes_inserted += SubtreeSize(copy);
      const xml::Node* parent = e.target->parent;
      doc_->ReplaceSubtree(e.target, copy);
      mark_dirty(parent != nullptr ? parent : copy, copy);
      ++stats.edits_applied;
    }
  }
  for (const PlannedEdit& pe : plan) {
    const ResolvedEdit& e = pe.edit;
    if (e.kind != OpKind::kInsert) continue;
    xml::Node* copy = doc_->ImportSubtree(e.fragment->root(), *e.fragment);
    stats.nodes_inserted += SubtreeSize(copy);
    doc_->AttachChild(e.target, copy, pe.elem_pos);
    mark_dirty(e.target, copy);
    ++stats.edits_applied;
  }

  doc_->RefreshOrder();

  if (options_.tax != nullptr) {
    if (options_.rebuild_tax) {
      SMOQE_ASSIGN_OR_RETURN(*options_.tax,
                             index::TaxIndex::Build(*doc_, options_.guard));
      stats.tax_rebuilt = true;
    } else {
      bool first = true;
      for (const auto& [parent, grafted] : dirty) {
        SMOQE_ASSIGN_OR_RETURN(
            size_t recomputed,
            options_.tax->RepairAfterEdit(
                *doc_, parent, grafted,
                first ? retired : std::vector<int32_t>(), options_.guard));
        stats.tax_sets_recomputed += recomputed;
        first = false;
      }
    }
  }
  return stats;
}

Result<ApplyStats> UpdateApplier::Run(const std::vector<ResolvedEdit>& script) {
  std::vector<PlannedEdit> plan;
  uint64_t dropped = 0;
  SMOQE_RETURN_IF_ERROR(Plan(script, &plan, &dropped));
  // The last point before mutation: a guard trip or the armed
  // "update.apply" fault aborts with the document untouched.
  if (options_.guard != nullptr) {
    SMOQE_RETURN_IF_ERROR(options_.guard->Check());
  }
  if (fault::At("update.apply")) {
    return Status::Internal("injected update-apply fault (update.apply)");
  }
  return Commit(plan, dropped);
}

}  // namespace smoqe::update
