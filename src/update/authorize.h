/// \file
/// \brief View-checked update authorization — accept/reject semantics
/// over the view's access annotations (docs/DESIGN.md §6.2; the update
/// model of Mahfoud & Imine's secure-updating extension of the
/// security-view framework SMOQE reproduces).
///
/// An update posed through a view is rejected *whole* if its effect
/// region touches anything the user group cannot unconditionally see:
///
///  * delete/replace — every node of the removed subtree must be visible
///    and not condition-protected (deleting what you cannot see, or what
///    you only see because a qualifier currently holds, is denied);
///  * insert/replace — every edge the grafted fragment would create,
///    including the graft edge itself, must be free of N and [q]
///    annotations (writes may not create data that would be hidden from,
///    or conditionally exposed to, the writer).
///
/// The returned PermissionDenied names the violated annotation verbatim,
/// e.g. `update rejected: delete would remove hidden element 'pname'
/// (node 4), hidden by annotation 'patient/pname : N'`.

#ifndef SMOQE_UPDATE_AUTHORIZE_H_
#define SMOQE_UPDATE_AUTHORIZE_H_

#include <vector>

#include "src/common/status.h"
#include "src/update/applier.h"
#include "src/view/access.h"
#include "src/view/annotation.h"
#include "src/xml/dom.h"

namespace smoqe::update {

/// Checks every edit of `script` (targets resolved to document nodes)
/// against the policy's node-level accessibility. `access` must be
/// AccessMap::Compute(policy, doc) at the document's current epoch.
/// OK = accepted; PermissionDenied = rejected whole, with the explain
/// string; other codes = malformed script.
Status AuthorizeScript(const view::Policy& policy,
                       const view::AccessMap& access,
                       const xml::Document& doc,
                       const std::vector<ResolvedEdit>& script);

}  // namespace smoqe::update

#endif  // SMOQE_UPDATE_AUTHORIZE_H_
