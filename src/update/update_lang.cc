#include "src/update/update_lang.h"

#include <cctype>

#include "src/common/strings.h"
#include "src/rxpath/parser.h"
#include "src/rxpath/printer.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace smoqe::update {

namespace {

/// Consumes a leading keyword (letters only) followed by at least one
/// whitespace character (or end of input for keywords that may end the
/// statement). Returns false without consuming on mismatch.
bool EatKeyword(std::string_view* s, std::string_view kw) {
  if (!StartsWith(*s, kw)) return false;
  std::string_view rest = s->substr(kw.size());
  if (!rest.empty() && !std::isspace(static_cast<unsigned char>(rest[0]))) {
    return false;
  }
  *s = Trim(rest);
  return true;
}

/// Offset of the first '<' outside single- or double-quoted path strings,
/// or npos. This is where the XML fragment begins.
size_t FragmentStart(std::string_view s) {
  char quote = '\0';
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
    } else if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == '<') {
      return i;
    }
  }
  return std::string_view::npos;
}

Result<std::unique_ptr<rxpath::PathExpr>> ParseTarget(std::string_view path) {
  path = Trim(path);
  if (path.empty()) {
    return Status::ParseError("update statement has no target path");
  }
  return rxpath::ParseQuery(path);
}

Result<xml::Document> ParseFragment(std::string_view xml,
                                    std::shared_ptr<xml::NameTable> names) {
  xml::ParseOptions opts;
  opts.names = std::move(names);
  auto doc = xml::ParseDocument(xml, opts);
  if (!doc.ok()) {
    return doc.status().WithContext("update fragment");
  }
  return doc;
}

}  // namespace

Result<UpdateStatement> ParseUpdate(std::string_view text,
                                    std::shared_ptr<xml::NameTable> names) {
  std::string_view s = Trim(text);
  UpdateStatement stmt;
  if (EatKeyword(&s, "insert")) {
    if (!EatKeyword(&s, "into")) {
      return Status::ParseError("expected 'into' after 'insert'");
    }
    stmt.kind = OpKind::kInsert;
    size_t frag = FragmentStart(s);
    if (frag == std::string_view::npos) {
      return Status::ParseError("insert statement has no XML fragment");
    }
    SMOQE_ASSIGN_OR_RETURN(stmt.target, ParseTarget(s.substr(0, frag)));
    SMOQE_ASSIGN_OR_RETURN(xml::Document fragment,
                           ParseFragment(s.substr(frag), std::move(names)));
    stmt.fragment.emplace(std::move(fragment));
    return stmt;
  }
  if (EatKeyword(&s, "delete")) {
    stmt.kind = OpKind::kDelete;
    if (FragmentStart(s) != std::string_view::npos) {
      return Status::ParseError("delete statement takes no XML fragment");
    }
    SMOQE_ASSIGN_OR_RETURN(stmt.target, ParseTarget(s));
    return stmt;
  }
  if (EatKeyword(&s, "replace")) {
    stmt.kind = OpKind::kReplace;
    size_t frag = FragmentStart(s);
    if (frag == std::string_view::npos) {
      return Status::ParseError("replace statement has no XML fragment");
    }
    std::string_view head = Trim(s.substr(0, frag));
    // The path must be followed by the keyword 'with' right before the
    // fragment ("replace <path> with <xml>").
    constexpr std::string_view kWith = "with";
    if (head.size() < kWith.size() ||
        head.substr(head.size() - kWith.size()) != kWith ||
        (head.size() > kWith.size() &&
         !std::isspace(static_cast<unsigned char>(
             head[head.size() - kWith.size() - 1])))) {
      return Status::ParseError("expected 'with' before the replacement "
                                "fragment of a replace statement");
    }
    SMOQE_ASSIGN_OR_RETURN(
        stmt.target, ParseTarget(head.substr(0, head.size() - kWith.size())));
    SMOQE_ASSIGN_OR_RETURN(xml::Document fragment,
                           ParseFragment(s.substr(frag), std::move(names)));
    stmt.fragment.emplace(std::move(fragment));
    return stmt;
  }
  return Status::ParseError(
      "update statement must start with insert/delete/replace");
}

std::string ToString(const UpdateStatement& stmt) {
  switch (stmt.kind) {
    case OpKind::kInsert:
      return "insert into " + rxpath::ToString(*stmt.target) + " " +
             xml::SerializeDocument(*stmt.fragment);
    case OpKind::kDelete:
      return "delete " + rxpath::ToString(*stmt.target);
    case OpKind::kReplace:
      return "replace " + rxpath::ToString(*stmt.target) + " with " +
             xml::SerializeDocument(*stmt.fragment);
  }
  return "";
}

const char* ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kInsert:
      return "insert";
    case OpKind::kDelete:
      return "delete";
    case OpKind::kReplace:
      return "replace";
  }
  return "?";
}

}  // namespace smoqe::update
