#include "src/workload/workloads.h"

#include <cstdio>
#include <cstdlib>

#include "src/xml/dtd_parser.h"
#include "src/xml/serializer.h"

namespace smoqe::workload {

const char kHospitalDtd[] = R"(
  <!ELEMENT hospital (patient*)>
  <!ELEMENT patient (pname, visit*, parent*)>
  <!ELEMENT parent (patient)>
  <!ELEMENT visit (treatment, date)>
  <!ELEMENT treatment (test | medication)>
  <!ELEMENT pname (#PCDATA)>
  <!ELEMENT date (#PCDATA)>
  <!ELEMENT test (#PCDATA)>
  <!ELEMENT medication (#PCDATA)>
)";

const char kHospitalPolicyAutism[] = R"(
  # Fig. 3(b): expose only patients treated for autism; hide names,
  # visit structure and test results.
  hospital/patient : [visit/treatment/medication = 'autism'];
  patient/pname    : N;
  patient/visit    : N;
  visit/treatment  : [medication];
  treatment/test   : N;
)";

const char kHospitalPolicyResearch[] = R"(
  # Researchers: treatments (including tests) of every patient, no names,
  # no visit structure. Genealogy stays navigable.
  patient/pname   : N;
  patient/visit   : N;
  visit/treatment : Y;
  treatment/test  : Y;
)";

const char kOrgDtd[] = R"(
  <!ELEMENT company (division+)>
  <!ELEMENT division (dname, (division | group)*, employee*)>
  <!ELEMENT group (gname, employee+)>
  <!ELEMENT employee (ename, salary, review?)>
  <!ELEMENT dname (#PCDATA)>
  <!ELEMENT gname (#PCDATA)>
  <!ELEMENT ename (#PCDATA)>
  <!ELEMENT salary (#PCDATA)>
  <!ELEMENT review (#PCDATA)>
)";

const char kOrgPolicy[] = R"(
  employee/salary : N;
  employee/review : N;
  division/group  : [employee];
)";

const char kDiamondDtd[] = R"(
  <!ELEMENT site (region)>
  <!ELEMENT region (north | south)>
  <!ELEMENT north (zone)>
  <!ELEMENT south (zone)>
  <!ELEMENT zone (region?, sensor*)>
  <!ELEMENT sensor (#PCDATA)>
)";

std::vector<BenchQuery> HospitalQueries() {
  return {
      {"Q0",
       "hospital/patient[(parent/patient)*/visit/treatment/test and "
       "visit/treatment[medication/text()='headache']]/pname",
       "high"},
      {"child-chain", "hospital/patient/visit/treatment/medication", "low"},
      {"descendant", "//medication", "low"},
      {"star-recursion", "hospital/patient/(parent/patient)*/pname", "low"},
      {"pred-text", "//patient[visit/treatment/medication = 'autism']/pname",
       "mid"},
      {"pred-negation", "//patient[not(visit/treatment/test)]/pname", "mid"},
      {"rare-type", "//parent/patient/visit/treatment/test", "high"},
      // Descendant predicates: the obligation NFA carries a closure, so it
      // stays live through patient recursion — every enclosing patient
      // holds an open run and frame width grows with nesting depth. The
      // hot-path regime (run under GenHospitalDeep to see it).
      {"desc-pred", "//patient[.//medication = 'autism']/pname", "mid"},
      {"desc-neg",
       "//patient[.//medication = 'autism' and not(.//test)]/pname", "high"},
      {"union", "//pname | //date", "low"},
      {"deep-pred",
       "//patient[visit/treatment[medication = 'flu'] and "
       "not(parent)]/visit/date",
       "high"},
  };
}

std::vector<BenchQuery> HospitalViewQueries() {
  return {
      {"V1", "hospital/patient/treatment/medication", "low"},
      {"V2", "//medication[text() = 'autism']", "mid"},
      {"V3", "hospital/patient/(parent/patient)*/treatment", "low"},
      {"V4", "//patient[not(treatment)]", "mid"},
      {"V5", "//patient[parent/patient[treatment]]", "high"},
  };
}

std::vector<BenchQuery> OrgQueries() {
  return {
      {"rare-review", "//review", "high"},
      {"group-emp", "//group/employee/ename", "mid"},
      {"div-chain", "company/division/(division)*/group/gname", "mid"},
      {"pred-salary", "//employee[salary = '100000']/ename", "high"},
      {"all-names", "//ename", "low"},
  };
}

std::string DiamondWildcardChain(int k) {
  std::string q = "site";
  for (int i = 0; i < k; ++i) q += "/*";
  return q;
}

std::string HospitalRecursiveChain(int k) {
  // Each '(parent/patient)*' segment starts and ends at the view type
  // 'patient', so arbitrarily long chains stay satisfiable over the
  // recursive autism view (unlike, say, 'patient/patient', which the view
  // DTD rules out).
  std::string q = "hospital/patient";
  for (int i = 0; i < k; ++i) q += "/(parent/patient)*";
  return q + "/treatment";
}

namespace {

xml::Dtd MustParseDtd(const char* text, const char* root, const char* what) {
  auto r = xml::ParseDtd(text, root);
  if (!r.ok()) {
    std::fprintf(stderr, "workload: failed to parse %s: %s\n", what,
                 r.status().ToString().c_str());
    std::abort();
  }
  return r.MoveValue();
}

}  // namespace

xml::Dtd HospitalDtd() {
  return MustParseDtd(kHospitalDtd, "hospital", "hospital DTD");
}

xml::Dtd OrgDtd() { return MustParseDtd(kOrgDtd, "company", "org DTD"); }

xml::Dtd DiamondDtd() {
  return MustParseDtd(kDiamondDtd, "site", "diamond DTD");
}

namespace {

xml::GeneratorOptions HospitalGenOptions(uint64_t seed, size_t target_nodes,
                                         std::shared_ptr<xml::NameTable> names) {
  xml::GeneratorOptions opts;
  opts.seed = seed;
  opts.target_nodes = target_nodes;
  opts.names = std::move(names);
  opts.text_values["medication"] = {"autism", "headache", "flu", "cold"};
  opts.text_values["pname"] = {"Alice", "Bob", "Carol", "Dan", "Eve", "Fay"};
  opts.text_values["test"] = {"blood", "xray", "mri"};
  opts.text_values["date"] = {"2006-01-02", "2006-03-04", "2006-05-06"};
  return opts;
}

}  // namespace

Result<xml::Document> GenHospital(uint64_t seed, size_t target_nodes,
                                  std::shared_ptr<xml::NameTable> names) {
  return xml::GenerateDocument(
      HospitalDtd(), HospitalGenOptions(seed, target_nodes, std::move(names)));
}

Result<xml::Document> GenHospitalDeep(uint64_t seed, size_t target_nodes,
                                      std::shared_ptr<xml::NameTable> names) {
  xml::GeneratorOptions opts =
      HospitalGenOptions(seed, target_nodes, std::move(names));
  // Long patient → parent → patient ancestry chains: at 100k nodes the
  // deepest chain nests ~70 patients, so descendant predicates keep ~70
  // obligation runs live at the bottom (vs ≤5 with the default depth cap).
  opts.max_depth = 200;
  opts.star_p = 0.6;
  return xml::GenerateDocument(HospitalDtd(), opts);
}

Result<xml::Document> GenOrg(uint64_t seed, size_t target_nodes,
                             std::shared_ptr<xml::NameTable> names) {
  xml::Dtd dtd = OrgDtd();
  xml::GeneratorOptions opts;
  opts.seed = seed;
  opts.target_nodes = target_nodes;
  opts.names = std::move(names);
  opts.text_values["salary"] = {"50000", "75000", "100000", "125000"};
  opts.text_values["ename"] = {"ada", "grace", "edsger", "barbara", "tony"};
  opts.text_values["dname"] = {"r&d", "sales", "ops"};
  opts.text_values["gname"] = {"core", "infra", "tools"};
  opts.text_values["review"] = {"exceeds", "meets", "below"};
  return xml::GenerateDocument(dtd, opts);
}

Result<std::string> GenHospitalText(uint64_t seed, size_t target_nodes) {
  SMOQE_ASSIGN_OR_RETURN(xml::Document doc, GenHospital(seed, target_nodes));
  return xml::SerializeDocument(doc);
}

}  // namespace smoqe::workload
