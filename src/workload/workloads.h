#ifndef SMOQE_WORKLOAD_WORKLOADS_H_
#define SMOQE_WORKLOAD_WORKLOADS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/xml/dom.h"
#include "src/xml/dtd.h"
#include "src/xml/generator.h"

namespace smoqe::workload {

// ---------------------------------------------------------------------
// Schemas
// ---------------------------------------------------------------------

/// The paper's hospital DTD (Fig. 3(a)) — recursive through
/// patient → parent → patient.
extern const char kHospitalDtd[];

/// The paper's access-control policy S0 (Fig. 3(b)) in the text format:
/// expose only patients treated for autism; hide names, visits and tests.
extern const char kHospitalPolicyAutism[];

/// A second hospital user group: researchers see all treatments but no
/// identifying data and no parent genealogy.
extern const char kHospitalPolicyResearch[];

/// Recursive org chart: company → division → (group | employee)…, used
/// for TAX selectivity sweeps (deep subtrees without the queried types).
extern const char kOrgDtd[];

/// Org policy: hide salaries and reviews, expose structure conditionally.
extern const char kOrgPolicy[];

/// Diamond-cycle schema (site → region → north|south → zone → region…):
/// the expression-rewriting blow-up family of experiment E1.
extern const char kDiamondDtd[];

// ---------------------------------------------------------------------
// Query families
// ---------------------------------------------------------------------

/// Named query with a rough selectivity class for benchmark tables.
struct BenchQuery {
  const char* id;
  const char* text;
  const char* selectivity;  // "high" (few answers) … "low" (many)
};

/// Document-level Regular XPath queries over the hospital schema,
/// including the paper's Q0 (Fig. 4).
std::vector<BenchQuery> HospitalQueries();

/// View-level queries for the autism view (user-group workload of E8).
std::vector<BenchQuery> HospitalViewQueries();

/// Org-schema queries stressing TAX pruning (rare types deep in the tree).
std::vector<BenchQuery> OrgQueries();

/// Wildcard chain of length k over the diamond schema ("site/*/*/…"),
/// the E1 scaling family.
std::string DiamondWildcardChain(int k);

/// Query chains of length k over the hospital view
/// ("hospital/patient/(parent/patient)*/…"), the E1 linear family.
std::string HospitalRecursiveChain(int k);

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Parsed hospital DTD (aborts the process on programmer error — the
/// constant is compiled in).
xml::Dtd HospitalDtd();
xml::Dtd OrgDtd();
xml::Dtd DiamondDtd();

/// Random hospital document with the benchmark vocabulary: ~25% of
/// medications are 'autism', names/tests drawn from small pools.
Result<xml::Document> GenHospital(uint64_t seed, size_t target_nodes,
                                  std::shared_ptr<xml::NameTable> names = nullptr);

/// Deep-genealogy hospital document: same DTD and vocabulary as
/// GenHospital, but the generator is allowed deep patient → parent →
/// patient nesting (the paper's recursive-ancestry case). This is the
/// regime where accessibility predicates multiply under recursion — every
/// enclosing patient keeps live obligation runs, so frames carry O(depth)
/// (state, guard) pairs and the evaluator hot path dominates.
Result<xml::Document> GenHospitalDeep(uint64_t seed, size_t target_nodes,
                                      std::shared_ptr<xml::NameTable> names = nullptr);

/// Random org-chart document.
Result<xml::Document> GenOrg(uint64_t seed, size_t target_nodes,
                             std::shared_ptr<xml::NameTable> names = nullptr);

/// Hospital document as serialized text (StAX-mode input).
Result<std::string> GenHospitalText(uint64_t seed, size_t target_nodes);

}  // namespace smoqe::workload

#endif  // SMOQE_WORKLOAD_WORKLOADS_H_
