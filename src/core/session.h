/// \file
/// \brief Session-scoped request entry points (docs/DESIGN.md §10.2):
/// an authenticated principal bound to one security view for its whole
/// lifetime, issuing queries and updates that can never name a different
/// view. This is the deployment shape the paper's "millions of users"
/// claim implies (and Mahfoud–Imine's framework assumes): authenticate
/// once, bind role → view, then serve a stream of requests.
///
/// `smoqed` opens one Session per connection at handshake; the test
/// harness drives the same class in-process, so the differential
/// contract "server response ≡ library answer" compares two paths that
/// share everything from this layer down.

#ifndef SMOQE_CORE_SESSION_H_
#define SMOQE_CORE_SESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/guardrail.h"
#include "src/common/status.h"
#include "src/core/smoqe.h"

namespace smoqe::core {

/// Per-request knobs a session caller may choose; the view is *not* one
/// of them — that is the whole point of the session.
struct SessionQueryOptions {
  EvalMode mode = EvalMode::kDom;
  bool use_tax = false;
};

/// One query of a session batch (the session's view applies to all).
struct SessionBatchItem {
  std::string query;
  SessionQueryOptions options;
};

/// Request-scoped governance + observability knobs a session caller may
/// set (all RequestOptions semantics; 0/false/null = engine default).
/// The view is still *not* here — that is the whole point of a session.
struct SessionRequestOptions {
  uint64_t deadline_ms = 0;
  uint64_t max_memory_bytes = 0;
  /// Wire trace-context adoption: the caller's trace id, and whether a
  /// structured profile should ride back with the answer.
  uint64_t trace_id = 0;
  bool profile = false;
  /// Externally owned trace (smoqed's worker) — see RequestOptions::trace.
  std::shared_ptr<tel::Trace> trace;
};

/// \brief A role-bound handle on a Smoqe engine.
///
/// `role` is the security-view name the principal authenticated as; the
/// empty role means trusted direct access (no view — gate it at the
/// caller, e.g. ServerOptions::allow_direct). Open() validates that the
/// view exists so a bad role fails at handshake, not on the first query.
///
/// Sessions hold no engine state beyond the role string and a cancel
/// token: view redefinition between requests is picked up exactly as a
/// direct facade call would (the facade resolves the view per request).
/// Thread-compatible: one session serves one principal; concurrent
/// principals each hold their own (the engine underneath is fully
/// thread-safe).
class Session {
 public:
  /// Binds `role` on `engine` (non-owning; the engine must outlive the
  /// session). Fails with NotFound when the role names no view.
  static Result<Session> Open(Smoqe* engine, std::string role);

  /// The session's own cancel token, wired into every request this
  /// session issues. `smoqed` cancels it when the connection dies, so a
  /// disconnected client's in-flight work unwinds instead of running to
  /// completion for nobody. Heap-held so Session stays movable (tokens
  /// contain an atomic and are pinned by address).
  CancelToken& cancel_token() { return *cancel_; }

  const std::string& role() const { return role_; }
  Smoqe* engine() const { return engine_; }

  /// Query through the bound view. `deadline_ms` / `max_memory_bytes`
  /// follow RequestOptions semantics (0 = engine default).
  Result<QueryAnswer> Query(const std::string& doc, std::string_view query,
                            const SessionQueryOptions& options = {},
                            uint64_t deadline_ms = 0,
                            uint64_t max_memory_bytes = 0);
  /// Full-options overload (trace adoption, PROFILE).
  Result<QueryAnswer> Query(const std::string& doc, std::string_view query,
                            const SessionQueryOptions& options,
                            const SessionRequestOptions& req);

  /// Batch of queries, all through the bound view, one pinned snapshot.
  Result<std::vector<QueryAnswer>> QueryBatch(
      const std::string& doc, const std::vector<SessionBatchItem>& items,
      uint64_t deadline_ms = 0, uint64_t max_memory_bytes = 0);
  /// Full-options overload (trace adoption, PROFILE).
  Result<std::vector<QueryAnswer>> QueryBatch(
      const std::string& doc, const std::vector<SessionBatchItem>& items,
      const SessionRequestOptions& req);

  /// Update through the bound view (authorized against its annotations;
  /// a direct session is trusted). Empty dtd_name = facade default.
  Result<UpdateResult> Update(const std::string& doc,
                              std::string_view statement, bool dry_run = false,
                              uint64_t deadline_ms = 0,
                              uint64_t max_memory_bytes = 0);
  /// Full-options overload (trace adoption; profiles never ride on
  /// update results — the flag only forces span recording).
  Result<UpdateResult> Update(const std::string& doc,
                              std::string_view statement, bool dry_run,
                              const SessionRequestOptions& req);

 private:
  Session(Smoqe* engine, std::string role);

  RequestOptions MakeRequest(const SessionRequestOptions& req) const;

  Smoqe* engine_;
  std::string role_;
  std::unique_ptr<CancelToken> cancel_;
};

}  // namespace smoqe::core

#endif  // SMOQE_CORE_SESSION_H_
