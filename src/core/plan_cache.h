/// \file
/// \brief Compiled-query plan cache — the service-layer half of the
/// compiler (docs/DESIGN.md §5.1).
///
/// SMOQE's point is many users firing queries against the same security
/// views over the same documents; rewriting + MFA compilation + dispatch
/// sealing are pure functions of (view definition, query), so the engine
/// caches the finished artifact and recompiles only when a view or DTD
/// actually changes.

#ifndef SMOQE_CORE_PLAN_CACHE_H_
#define SMOQE_CORE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/automata/mfa.h"
#include "src/telemetry/metrics.h"

namespace smoqe::core {

/// The fully compiled artifact of one (view, query) pair: the rewritten
/// MFA with its sealed FlatNfa dispatch tables and eager-pred layout
/// (everything an engine needs to start running — per-document run sets
/// and guard pools are built per evaluation, see DESIGN.md §3.4), plus
/// the static-analysis by-products worth reusing.
struct CompiledPlan {
  automata::Mfa mfa;
  /// Labels the query mentions that are outside the schema it was posed
  /// against (iSMOQE query assistance; recomputing needs the view DTD).
  std::vector<std::string> unknown_labels;
  /// Canonical printer rendering of the query this plan was compiled
  /// from — the cache key's query component, kept on the artifact so
  /// PROFILE can report "what actually ran" without re-parsing.
  std::string normalized_query;
};

/// Aggregate cache counters (monotonic over the cache's lifetime).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      ///< capacity-driven LRU drops
  uint64_t invalidations = 0;  ///< entries dropped by Invalidate*/Clear
  size_t size = 0;
  size_t capacity = 0;
};

/// \brief Sharded-nothing LRU cache of compiled plans.
///
/// Key = (view name, view fingerprint, normalized query text):
///
///  * the *view name* scopes entries so a redefinition can invalidate
///    exactly its plans ("" = direct document queries);
///  * the *fingerprint* is a stable hash of the view's full definition
///    (view DTD + σ) and its document DTD name — even if explicit
///    invalidation were missed, a redefined view can never hit a stale
///    entry, because its fingerprint changes;
///  * the *normalized query* is the canonical printer rendering of the
///    parsed AST, so `//a [b]` and `//a[b]` share one plan.
///
/// Thread safety: the table (map + LRU list) is guarded by a mutex;
/// compilations happen outside the lock, and plans are immutable
/// shared_ptrs, so concurrent readers can keep evaluating a plan that
/// eviction or invalidation already dropped from the table. The counters
/// are relaxed atomics, not mutex state — `stats()` never contends with
/// the hot Lookup path. When two threads miss on the same key and both
/// compile, the first Insert wins and the second caller is handed the
/// first's plan back (see Insert), so a race can neither leak an entry
/// nor invalidate a pointer already handed out.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Key {
    std::string view;  ///< "" for direct (trusted) document queries
    uint64_t view_fingerprint = 0;
    std::string normalized_query;

    bool operator==(const Key& o) const {
      return view_fingerprint == o.view_fingerprint && view == o.view &&
             normalized_query == o.normalized_query;
    }
  };

  /// Returns the cached plan and refreshes its LRU position, or nullptr.
  /// Counts a hit or a miss.
  std::shared_ptr<const CompiledPlan> Lookup(const Key& key);

  /// Inserts the plan for `key`, evicting the least recently used entry
  /// when over capacity, and returns the plan now cached under the key.
  /// If a concurrent compile of the same key got there first, the cached
  /// (first) plan is kept and returned — callers should adopt the return
  /// value so every racer converges on one shared artifact.
  std::shared_ptr<const CompiledPlan> Insert(
      const Key& key, std::shared_ptr<const CompiledPlan> plan);

  /// Drops every plan compiled against view `view` (after a view
  /// redefinition or a change to its underlying DTD). Returns the number
  /// of entries dropped.
  size_t InvalidateView(std::string_view view);

  /// Drops everything.
  void Clear();

  PlanCacheStats stats() const;

  /// Redirects the cache's counters into `registry` (docs/DESIGN.md §8.4):
  /// `plan_cache.hits` / `.misses` / `.evictions` / `.invalidations`
  /// counters and the `plan_cache.size` gauge. Counts accumulated before
  /// attachment stay in the private counters and stop being reported, so
  /// attach at construction time (as `Smoqe` does). nullptr re-targets
  /// the private counters.
  void AttachTelemetry(telemetry::MetricsRegistry* registry);

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // The fingerprint already mixes well; fold in the strings' hashes.
      size_t h = std::hash<std::string>()(k.normalized_query);
      h ^= std::hash<std::string>()(k.view) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      return h ^ static_cast<size_t>(k.view_fingerprint);
    }
  };

  using LruList = std::list<std::pair<Key, std::shared_ptr<const CompiledPlan>>>;

  mutable std::mutex mu_;  // guards lru_ + index_ (not the counters)
  size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  // Sharded telemetry counters (relaxed atomics underneath): exact per-op
  // ordering is irrelevant, stats() must not serialize against hot
  // lookups. The cache owns a private set; AttachTelemetry re-targets the
  // pointers at registry-owned metrics (release/acquire so a reader that
  // sees the new pointer sees the object behind it).
  telemetry::Counter own_hits_, own_misses_, own_evictions_,
      own_invalidations_;
  telemetry::Gauge own_size_;
  std::atomic<telemetry::Counter*> hits_{&own_hits_};
  std::atomic<telemetry::Counter*> misses_{&own_misses_};
  std::atomic<telemetry::Counter*> evictions_{&own_evictions_};
  std::atomic<telemetry::Counter*> invalidations_{&own_invalidations_};
  std::atomic<telemetry::Gauge*> size_{&own_size_};
};

}  // namespace smoqe::core

#endif  // SMOQE_CORE_PLAN_CACHE_H_
