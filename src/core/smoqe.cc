#include "src/core/smoqe.h"

#include <set>

#include "src/automata/mfa.h"
#include "src/common/strings.h"
#include "src/eval/batch.h"
#include "src/eval/hype_dom.h"
#include "src/eval/hype_stax.h"
#include "src/index/tax_io.h"
#include "src/rewrite/rewriter.h"
#include "src/rxpath/naive_eval.h"
#include "src/rxpath/parser.h"
#include "src/rxpath/printer.h"
#include "src/rxpath/type_check.h"
#include "src/update/applier.h"
#include "src/update/authorize.h"
#include "src/update/update_lang.h"
#include "src/view/derive.h"
#include "src/view/spec_parser.h"
#include "src/xml/dtd_parser.h"
#include "src/xml/generator.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace smoqe::core {

namespace {

/// Stable identity of a view's compiled-plan space: any change to the
/// definition (view DTD or σ) or to the underlying DTD name changes the
/// fingerprint, so stale cache keys can never collide with fresh ones.
uint64_t ViewFingerprint(const view::ViewDefinition& def,
                         const std::string& dtd_name) {
  return Fnv1a64(def.ToString()) ^ (Fnv1a64(dtd_name) * 0x9e3779b97f4a7c15ull);
}

}  // namespace

Smoqe::Smoqe(size_t plan_cache_capacity)
    : names_(xml::NameTable::Create()), plan_cache_(plan_cache_capacity) {}

Status Smoqe::RegisterDtd(const std::string& name, std::string_view dtd_text,
                          std::string_view root) {
  SMOQE_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(dtd_text, root));
  bool replaced =
      catalog_.PutDtd(name, std::make_unique<xml::Dtd>(std::move(dtd)));
  if (replaced) {
    // Conservative: every view derived over this DTD recompiles its plans
    // on next use (the views keep their definitions until redefined).
    for (const std::string& view_name : catalog_.ViewNames()) {
      const ViewEntry* view = catalog_.FindView(view_name);
      if (view != nullptr && view->dtd_name == name) {
        plan_cache_.InvalidateView(view_name);
      }
    }
  }
  return Status::OK();
}

Status Smoqe::LoadDocument(const std::string& name,
                           std::string_view xml_text) {
  xml::ParseOptions opts;
  opts.names = names_;
  SMOQE_ASSIGN_OR_RETURN(xml::ParsedDocument parsed,
                         xml::ParseXml(xml_text, opts));
  if (!parsed.doctype_internal_subset.empty() &&
      catalog_.FindDtd(name) == nullptr) {
    auto dtd = xml::ParseDtd(parsed.doctype_internal_subset,
                             parsed.doctype_name);
    if (dtd.ok()) {
      SMOQE_RETURN_IF_ERROR(
          catalog_.AddDtd(name, std::make_unique<xml::Dtd>(dtd.MoveValue())));
    }
  }
  auto entry = std::make_unique<DocumentEntry>(std::string(xml_text),
                                               std::move(parsed.document));
  return catalog_.AddDocument(name, std::move(entry));
}

Status Smoqe::GenerateDocument(const std::string& name,
                               const std::string& dtd_name, uint64_t seed,
                               size_t target_nodes) {
  const xml::Dtd* dtd = catalog_.FindDtd(dtd_name);
  if (dtd == nullptr) {
    return Status::NotFound("DTD '" + dtd_name + "' is not registered");
  }
  xml::GeneratorOptions opts;
  opts.seed = seed;
  opts.target_nodes = target_nodes;
  opts.names = names_;
  SMOQE_ASSIGN_OR_RETURN(xml::Document doc,
                         xml::GenerateDocument(*dtd, opts));
  std::string text = xml::SerializeDocument(doc);
  auto entry =
      std::make_unique<DocumentEntry>(std::move(text), std::move(doc));
  return catalog_.AddDocument(name, std::move(entry));
}

Status Smoqe::DefineView(const std::string& view_name,
                         const std::string& dtd_name,
                         std::string_view policy_text) {
  const xml::Dtd* dtd = catalog_.FindDtd(dtd_name);
  if (dtd == nullptr) {
    return Status::NotFound("DTD '" + dtd_name + "' is not registered");
  }
  SMOQE_ASSIGN_OR_RETURN(view::Policy policy,
                         view::Policy::Parse(*dtd, policy_text));
  auto policy_ptr = std::make_unique<view::Policy>(std::move(policy));
  SMOQE_ASSIGN_OR_RETURN(view::ViewDefinition def,
                         view::DeriveView(*policy_ptr));
  auto entry = std::make_unique<ViewEntry>();
  entry->dtd_name = dtd_name;
  entry->policy = std::move(policy_ptr);
  entry->definition = std::move(def);
  entry->fingerprint = ViewFingerprint(entry->definition, dtd_name);
  if (catalog_.PutView(view_name, std::move(entry))) {
    plan_cache_.InvalidateView(view_name);  // redefinition: recompile
  }
  return Status::OK();
}

Status Smoqe::DefineViewFromSpec(const std::string& view_name,
                                 std::string_view spec_text,
                                 const std::string& document_dtd_name) {
  SMOQE_ASSIGN_OR_RETURN(view::ViewDefinition def,
                         view::ParseViewSpecification(spec_text));
  if (!document_dtd_name.empty()) {
    const xml::Dtd* dtd = catalog_.FindDtd(document_dtd_name);
    if (dtd == nullptr) {
      return Status::NotFound("DTD '" + document_dtd_name +
                              "' is not registered");
    }
    SMOQE_RETURN_IF_ERROR(view::CheckSpecificationAgainstDtd(def, *dtd));
  }
  auto entry = std::make_unique<ViewEntry>();
  entry->dtd_name = document_dtd_name;
  entry->definition = std::move(def);
  entry->fingerprint = ViewFingerprint(entry->definition, document_dtd_name);
  if (catalog_.PutView(view_name, std::move(entry))) {
    plan_cache_.InvalidateView(view_name);  // redefinition: recompile
  }
  return Status::OK();
}

Result<std::string> Smoqe::ViewSchema(const std::string& view_name) const {
  const ViewEntry* view = catalog_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("view '" + view_name + "' is not registered");
  }
  return view->definition.view_dtd().ToString();
}

Result<std::string> Smoqe::ViewSpecification(
    const std::string& view_name) const {
  const ViewEntry* view = catalog_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("view '" + view_name + "' is not registered");
  }
  return view->definition.ToString();
}

Status Smoqe::BuildIndex(const std::string& doc_name) {
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  doc->tax = index::TaxIndex::Build(doc->dom);
  return Status::OK();
}

Status Smoqe::SaveIndex(const std::string& doc_name,
                        const std::string& path) const {
  const DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  if (!doc->tax.has_value()) {
    return Status::FailedPrecondition("document '" + doc_name +
                                      "' has no TAX index; call BuildIndex");
  }
  return index::TaxIo::Save(*doc->tax, path);
}

Status Smoqe::LoadIndex(const std::string& doc_name, const std::string& path) {
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  SMOQE_ASSIGN_OR_RETURN(index::TaxIndex idx, index::TaxIo::Load(path));
  doc->tax = std::move(idx);
  return Status::OK();
}

Result<Smoqe::PlanUse> Smoqe::GetPlan(std::string_view query_text,
                                      const QueryOptions& options) {
  SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<rxpath::PathExpr> query,
                         rxpath::ParseQuery(query_text));

  const ViewEntry* view = nullptr;
  PlanCache::Key key;
  key.view = options.view;
  if (!options.view.empty()) {
    view = catalog_.FindView(options.view);
    if (view == nullptr) {
      return Status::NotFound("view '" + options.view +
                              "' is not registered");
    }
    key.view_fingerprint = view->fingerprint;
  }
  // Canonical printer rendering, so surface variants of one query share
  // one cache entry ("//a [b]" ≡ "//a[b]").
  key.normalized_query = rxpath::ToString(*query);

  if (!options.bypass_plan_cache) {
    if (std::shared_ptr<const CompiledPlan> hit = plan_cache_.Lookup(key)) {
      return PlanUse{std::move(hit), /*cache_hit=*/true};
    }
  }

  // Compile: direct queries compile as-is; view queries are rewritten to
  // an equivalent MFA over the underlying document (never materializing).
  auto plan = std::make_shared<CompiledPlan>();
  if (view == nullptr) {
    SMOQE_ASSIGN_OR_RETURN(plan->mfa, automata::Mfa::Compile(*query, names_));
  } else {
    // Query assistance: flag labels that are not part of the schema the
    // user group sees (they can never match — typo or access attempt).
    rxpath::TypeCheckResult tc = rxpath::TypeCheck(
        *query, view->definition.view_dtd(), {}, /*from_document_node=*/true);
    plan->unknown_labels.assign(tc.unknown_labels.begin(),
                                tc.unknown_labels.end());
    SMOQE_ASSIGN_OR_RETURN(
        plan->mfa, rewrite::RewriteToMfa(*query, view->definition, names_));
  }
  if (!options.bypass_plan_cache) plan_cache_.Insert(key, plan);
  return PlanUse{std::move(plan), /*cache_hit=*/false};
}

Result<QueryAnswer> Smoqe::EvalCompiled(DocumentEntry* doc,
                                        const std::string& doc_name,
                                        const PlanUse& pu,
                                        const QueryOptions& options) {
  const CompiledPlan& plan = *pu.plan;
  QueryAnswer out;
  out.unknown_labels = plan.unknown_labels;
  if (options.explain) out.mfa_dump = plan.mfa.ToString();

  if (options.mode == EvalMode::kStax) {
    if (options.use_tax) {
      return Status::InvalidArgument(
          "TAX requires DOM mode (the index addresses materialized nodes)");
    }
    EnsureFreshText(doc);
    eval::StaxEvalOptions stax_opts;
    stax_opts.engine.trace = options.explain;
    SMOQE_ASSIGN_OR_RETURN(eval::StaxEvalResult r,
                           eval::EvalHypeStax(plan.mfa, doc->text, stax_opts));
    for (auto& a : r.answers) out.answers_xml.push_back(std::move(a.xml));
    out.stats = r.stats;
  } else {
    eval::DomEvalOptions dom_opts;
    dom_opts.engine.trace = options.explain;
    if (options.use_tax) {
      if (!doc->tax.has_value()) {
        return Status::FailedPrecondition(
            "document '" + doc_name + "' has no TAX index; call BuildIndex");
      }
      dom_opts.tax = &*doc->tax;
    }
    SMOQE_ASSIGN_OR_RETURN(eval::DomEvalResult r,
                           eval::EvalHypeDom(plan.mfa, doc->dom, dom_opts));
    for (const xml::Node* n : r.answers) {
      out.answers_xml.push_back(xml::SerializeNode(n, *names_));
      out.answer_ids.push_back(n->node_id);
    }
    out.stats = r.stats;
    if (options.explain && r.trace != nullptr) {
      out.trace_tree = r.trace->RenderTree(doc->dom, r.nodes_by_engine_id);
    }
  }
  out.stats.plan_cache_hits = pu.cache_hit ? 1 : 0;
  out.stats.plan_cache_misses = pu.cache_hit ? 0 : 1;
  return out;
}

Result<QueryAnswer> Smoqe::Query(const std::string& doc_name,
                                 std::string_view query_text,
                                 const QueryOptions& options) {
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  SMOQE_ASSIGN_OR_RETURN(PlanUse plan, GetPlan(query_text, options));
  return EvalCompiled(doc, doc_name, plan, options);
}

Result<std::vector<QueryAnswer>> Smoqe::QueryBatch(
    const std::string& doc_name, const std::vector<BatchQueryItem>& items) {
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }

  // Resolve every plan and check every evaluation precondition first, so
  // a bad item fails the whole call before any evaluation work happens.
  std::vector<PlanUse> plans;
  plans.reserve(items.size());
  std::vector<size_t> stax_items;
  for (size_t i = 0; i < items.size(); ++i) {
    auto plan = GetPlan(items[i].query, items[i].options);
    if (!plan.ok()) {
      return plan.status().WithContext("batch item " + std::to_string(i));
    }
    plans.push_back(std::move(*plan));
    if (items[i].options.mode == EvalMode::kStax) {
      if (items[i].options.use_tax) {
        return Status::InvalidArgument(
            "batch item " + std::to_string(i) +
            ": TAX requires DOM mode (the index addresses materialized "
            "nodes)");
      }
      stax_items.push_back(i);
    } else if (items[i].options.use_tax && !doc->tax.has_value()) {
      return Status::FailedPrecondition(
          "batch item " + std::to_string(i) + ": document '" + doc_name +
          "' has no TAX index; call BuildIndex");
    }
  }

  std::vector<QueryAnswer> out(items.size());

  // All streaming items share one forward scan of the document text.
  if (!stax_items.empty()) {
    EnsureFreshText(doc);
    eval::BatchEvaluator batch;
    for (size_t i : stax_items) {
      eval::EngineOptions engine;
      engine.trace = items[i].options.explain;
      batch.AddPlan(&plans[i].plan->mfa, engine);
    }
    SMOQE_ASSIGN_OR_RETURN(std::vector<eval::StaxEvalResult> results,
                           batch.Run(doc->text));
    for (size_t j = 0; j < stax_items.size(); ++j) {
      const size_t i = stax_items[j];
      QueryAnswer& a = out[i];
      a.unknown_labels = plans[i].plan->unknown_labels;
      if (items[i].options.explain) a.mfa_dump = plans[i].plan->mfa.ToString();
      for (auto& ans : results[j].answers) {
        a.answers_xml.push_back(std::move(ans.xml));
      }
      a.stats = results[j].stats;  // batch_plans set by the evaluator
      a.stats.plan_cache_hits = plans[i].cache_hit ? 1 : 0;
      a.stats.plan_cache_misses = plans[i].cache_hit ? 0 : 1;
    }
  }

  // DOM-mode items evaluate per item — the tree is already amortized
  // across them, and TAX/trace address materialized nodes.
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].options.mode == EvalMode::kStax) continue;
    auto answer = EvalCompiled(doc, doc_name, plans[i], items[i].options);
    if (!answer.ok()) {
      return answer.status().WithContext("batch item " + std::to_string(i));
    }
    out[i] = std::move(*answer);
  }
  return out;
}

void Smoqe::EnsureFreshText(DocumentEntry* doc) {
  if (doc->text_epoch == doc->dom.epoch()) return;
  doc->text = xml::SerializeDocument(doc->dom);
  doc->text_epoch = doc->dom.epoch();
}

Result<ViewCacheEntry*> Smoqe::GetViewCache(DocumentEntry* doc,
                                            const std::string& view_name,
                                            const ViewEntry* view,
                                            bool* cache_hit) {
  ViewCacheEntry& cache = doc->view_caches[view_name];
  const uint64_t epoch = doc->dom.epoch();
  if (cache.mv.has_value() && cache.fingerprint == view->fingerprint &&
      cache.mv_epoch == epoch) {
    if (cache_hit != nullptr) *cache_hit = true;
    return &cache;
  }
  SMOQE_ASSIGN_OR_RETURN(view::MaterializedView mv,
                         view::Materialize(view->definition, doc->dom));
  if (cache.fingerprint != view->fingerprint) {
    cache.access.reset();  // access maps are per-policy too
  }
  cache.fingerprint = view->fingerprint;
  cache.mv_epoch = epoch;
  cache.mv.emplace(std::move(mv));
  if (cache_hit != nullptr) *cache_hit = false;
  return &cache;
}

Result<const view::AccessMap*> Smoqe::GetAccessMap(DocumentEntry* doc,
                                                   const std::string& view_name,
                                                   const ViewEntry* view) {
  if (view->policy == nullptr) {
    return Status::FailedPrecondition(
        "view '" + view_name +
        "' was registered from a specification, not a policy; updates "
        "require a policy-derived view");
  }
  ViewCacheEntry& cache = doc->view_caches[view_name];
  const uint64_t epoch = doc->dom.epoch();
  if (cache.access == nullptr || cache.fingerprint != view->fingerprint ||
      cache.access_epoch != epoch) {
    cache.access = std::make_unique<view::AccessMap>(
        view::AccessMap::Compute(*view->policy, doc->dom));
    cache.access_epoch = epoch;
    if (cache.fingerprint != view->fingerprint) {
      cache.mv.reset();  // fingerprint owner changed; drop the sibling cache
      cache.fingerprint = view->fingerprint;
    }
  }
  return cache.access.get();
}

Result<MaterializedViewAnswer> Smoqe::MaterializeView(
    const std::string& doc_name, const std::string& view_name) {
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  const ViewEntry* view = catalog_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("view '" + view_name + "' is not registered");
  }
  bool cache_hit = false;
  SMOQE_ASSIGN_OR_RETURN(ViewCacheEntry * cache,
                         GetViewCache(doc, view_name, view, &cache_hit));
  MaterializedViewAnswer out;
  out.xml = xml::SerializeDocument(cache->mv->document);
  out.cache_hit = cache_hit;
  out.epoch = cache->mv_epoch;
  return out;
}

Result<std::string> Smoqe::DocumentXml(const std::string& doc_name) const {
  const DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  return xml::SerializeDocument(doc->dom);
}

Result<uint64_t> Smoqe::DocumentEpoch(const std::string& doc_name) const {
  const DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  return doc->dom.epoch();
}

Result<UpdateResult> Smoqe::Update(const std::string& doc_name,
                                   std::string_view update_text,
                                   const UpdateOptions& options) {
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  SMOQE_ASSIGN_OR_RETURN(update::UpdateStatement stmt,
                         update::ParseUpdate(update_text, names_));

  const ViewEntry* view = nullptr;
  if (!options.view.empty()) {
    view = catalog_.FindView(options.view);
    if (view == nullptr) {
      return Status::NotFound("view '" + options.view + "' is not registered");
    }
  }

  // Revalidation schema: explicit name → the view's document DTD → a DTD
  // registered under the document's name → none.
  const xml::Dtd* dtd = nullptr;
  if (!options.dtd_name.empty()) {
    dtd = catalog_.FindDtd(options.dtd_name);
    if (dtd == nullptr) {
      return Status::NotFound("DTD '" + options.dtd_name +
                              "' is not registered");
    }
  } else if (view != nullptr && !view->dtd_name.empty()) {
    dtd = catalog_.FindDtd(view->dtd_name);
  } else {
    dtd = catalog_.FindDtd(doc_name);
  }

  // Resolve the target set to document nodes. View updates resolve in the
  // view's virtual document (via the epoch-cached materialization and its
  // provenance); direct updates resolve on the document itself.
  std::vector<update::ResolvedEdit> script;
  std::set<int32_t> target_ids;
  if (view == nullptr) {
    rxpath::NaiveEvaluator eval(doc->dom);
    for (const xml::Node* n : eval.Eval(*stmt.target)) {
      target_ids.insert(n->node_id);
    }
  } else {
    if (view->policy == nullptr) {
      return Status::FailedPrecondition(
          "view '" + options.view +
          "' was registered from a specification, not a policy; updates "
          "require a policy-derived view");
    }
    SMOQE_ASSIGN_OR_RETURN(ViewCacheEntry * cache,
                           GetViewCache(doc, options.view, view, nullptr));
    rxpath::NaiveEvaluator eval(cache->mv->document);
    for (const xml::Node* n : eval.Eval(*stmt.target)) {
      int32_t src = cache->mv->source_node_id[n->node_id];
      if (src >= 0) target_ids.insert(src);
    }
  }
  const xml::Document* fragment =
      stmt.fragment.has_value() ? &*stmt.fragment : nullptr;
  for (int32_t id : target_ids) {
    script.push_back(
        update::ResolvedEdit{stmt.kind, doc->dom.mutable_node(id), fragment});
  }

  UpdateResult out;
  out.canonical = update::ToString(stmt);
  out.stats.targets = script.size();
  out.stats.doc_epoch = doc->dom.epoch();
  if (script.empty()) return out;  // nothing selected: a successful no-op

  // Authorize (view updates only), then validate — both before any
  // mutation, so a rejected or invalid update leaves everything intact.
  if (view != nullptr) {
    SMOQE_ASSIGN_OR_RETURN(const view::AccessMap* access,
                           GetAccessMap(doc, options.view, view));
    SMOQE_RETURN_IF_ERROR(update::AuthorizeScript(*view->policy, *access,
                                                  doc->dom, script));
  }

  update::ApplierOptions apply_opts;
  apply_opts.dtd = dtd;
  apply_opts.tax = doc->tax.has_value() ? &*doc->tax : nullptr;
  apply_opts.rebuild_tax = options.rebuild_tax;
  update::UpdateApplier applier(&doc->dom, apply_opts);
  if (options.dry_run) {
    SMOQE_RETURN_IF_ERROR(applier.Validate(script));
    return out;
  }

  // View-cache retention (DESIGN.md §6.5): decide per *fresh* cached view
  // BEFORE mutating — the test walks subtrees the update removes. A cache
  // survives iff its policy is qualifier-free and the whole effect region
  // is hidden from that view; everything else goes stale via the epoch.
  const uint64_t pre_epoch = doc->dom.epoch();
  std::vector<std::string> retain;
  for (auto& [name, cache] : doc->view_caches) {
    if (!cache.mv.has_value() || cache.mv_epoch != pre_epoch) continue;
    const ViewEntry* v = catalog_.FindView(name);
    if (v == nullptr || v->fingerprint != cache.fingerprint ||
        v->policy == nullptr || v->policy->HasConditions()) {
      continue;
    }
    auto access = GetAccessMap(doc, name, v);
    if (!access.ok()) continue;
    bool irrelevant = true;
    for (const update::ResolvedEdit& e : script) {
      if (e.kind != update::OpKind::kInsert &&
          !(*access)->SubtreeHidden(e.target)) {
        irrelevant = false;
        break;
      }
      if (e.kind != update::OpKind::kDelete) {
        // The grafted fragment must be entirely hidden from this view:
        // with a qualifier-free policy that reduces to "the graft edge or
        // an inherited Deny hides every fragment node". Walk the fragment
        // simulating edge annotations from the graft parent's status.
        const xml::Node* graft_parent =
            e.kind == update::OpKind::kInsert ? e.target : e.target->parent;
        if (graft_parent == nullptr) {
          irrelevant = false;  // replacing the root is never irrelevant
          break;
        }
        const xml::NameTable& names = *doc->dom.names();
        const xml::NameTable& fnames = *e.fragment->names();
        struct Item {
          const std::string* parent_name;
          const xml::Node* node;
          bool visible;
        };
        std::vector<Item> stack = {
            {&names.NameOf(graft_parent->label), e.fragment->root(),
             (*access)->visible(graft_parent->node_id)}};
        while (irrelevant && !stack.empty()) {
          Item it = stack.back();
          stack.pop_back();
          const std::string& child_name = fnames.NameOf(it.node->label);
          const view::Annotation* ann =
              v->policy->Find(*it.parent_name, child_name);
          bool child_visible = it.visible;
          if (ann != nullptr) {
            child_visible = ann->kind == view::AnnKind::kAllow;
          }
          if (child_visible) {
            irrelevant = false;
            break;
          }
          for (const xml::Node* c = it.node->first_child; c != nullptr;
               c = c->next_sibling) {
            if (c->is_element()) {
              stack.push_back({&child_name, c, child_visible});
            }
          }
        }
        if (!irrelevant) break;
      }
    }
    if (irrelevant) retain.push_back(name);
  }

  SMOQE_ASSIGN_OR_RETURN(update::ApplyStats applied, applier.Run(script));
  out.stats.edits_applied = applied.edits_applied;
  out.stats.edits_dropped = applied.edits_dropped;
  out.stats.nodes_inserted = applied.nodes_inserted;
  out.stats.nodes_deleted = applied.nodes_deleted;
  out.stats.tax_sets_recomputed = applied.tax_sets_recomputed;
  out.stats.tax_rebuilt = applied.tax_rebuilt ? 1 : 0;
  out.stats.doc_epoch = doc->dom.epoch();

  // Epoch bookkeeping of the derived caches: retained materializations
  // jump to the new epoch; everything else is now stale and rebuilds on
  // next use (the access maps always go stale — node-level statuses can
  // change whenever the tree does).
  for (const std::string& name : retain) {
    doc->view_caches[name].mv_epoch = doc->dom.epoch();
  }
  for (const auto& [name, cache] : doc->view_caches) {
    if (!cache.mv.has_value()) continue;
    if (cache.mv_epoch == doc->dom.epoch()) {
      ++out.stats.view_caches_retained;
    } else if (cache.mv_epoch == pre_epoch) {
      ++out.stats.view_caches_invalidated;
    }
  }
  return out;
}

std::vector<std::string> Smoqe::DocumentNames() const {
  return catalog_.DocumentNames();
}

std::vector<std::string> Smoqe::ViewNames() const {
  return catalog_.ViewNames();
}

}  // namespace smoqe::core
