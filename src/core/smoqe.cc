#include "src/core/smoqe.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "src/automata/mfa.h"
#include "src/common/strings.h"
#include "src/eval/batch.h"
#include "src/eval/hype_dom.h"
#include "src/eval/hype_stax.h"
#include "src/index/tax_io.h"
#include "src/rewrite/rewriter.h"
#include "src/rxpath/naive_eval.h"
#include "src/rxpath/parser.h"
#include "src/rxpath/printer.h"
#include "src/rxpath/type_check.h"
#include "src/update/applier.h"
#include "src/update/authorize.h"
#include "src/update/update_lang.h"
#include "src/view/derive.h"
#include "src/view/spec_parser.h"
#include "src/xml/dtd_parser.h"
#include "src/xml/generator.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace smoqe::core {

namespace {

/// Stable identity of a view's compiled-plan space: any change to the
/// definition (view DTD or σ) or to the underlying DTD name changes the
/// fingerprint, so stale cache keys can never collide with fresh ones.
uint64_t ViewFingerprint(const view::ViewDefinition& def,
                         const std::string& dtd_name) {
  return Fnv1a64(def.ToString()) ^ (Fnv1a64(dtd_name) * 0x9e3779b97f4a7c15ull);
}

/// Nanoseconds elapsed since `t0` (facade-call latency sampling).
uint64_t ElapsedNs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// True for statuses that terminate the *request* (fail-closed guard
/// semantics), as opposed to statuses that fail one batch item.
bool IsGuardTermination(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kResourceExhausted ||
         s.code() == StatusCode::kCancelled;
}

/// Flattens a finished call into the PROFILE model: the trace's span
/// list becomes the stage tree (same indices, so parent links carry
/// over verbatim), and the guard's tick tally rides along. `tr` may be
/// null (slow-log capture of an unsampled call) — the profile then has
/// no stages but still carries timing and identity.
tel::Profile MakeProfile(const char* op, const std::string& doc,
                         const std::string& view, std::string_view statement,
                         uint64_t total_ns, const Guardrail* guard,
                         const tel::Trace* tr) {
  tel::Profile p;
  p.op = op;
  p.doc = doc;
  p.view = view;
  p.statement = std::string(statement);
  p.total_ns = total_ns;
  if (guard != nullptr) p.guard_ticks = guard->checks();
  if (tr != nullptr) {
    p.trace_id = tr->id();
    for (const tel::SpanRecord& s : tr->spans()) {
      tel::ProfileStage st;
      st.name = s.name;
      st.parent = s.parent;
      st.ns = s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0;
      p.stages.push_back(std::move(st));
    }
  }
  return p;
}

}  // namespace

Smoqe::FacadeMetrics::FacadeMetrics(tel::MetricsRegistry& reg)
    : query_count(&reg.GetCounter("query.count")),
      query_errors(&reg.GetCounter("query.errors")),
      query_answers(&reg.GetCounter("query.answers")),
      query_latency_ns(&reg.GetHistogram("query.latency_ns")),
      query_epoch_lag(&reg.GetHistogram("query.epoch_lag")),
      batch_count(&reg.GetCounter("batch.count")),
      batch_errors(&reg.GetCounter("batch.errors")),
      batch_items(&reg.GetCounter("batch.items")),
      batch_latency_ns(&reg.GetHistogram("batch.latency_ns")),
      batch_plans_per_scan(&reg.GetHistogram("batch.plans_per_scan")),
      batch_chunk_ns(&reg.GetHistogram("batch.chunk_ns")),
      eval_nodes_visited(&reg.GetCounter("eval.nodes_visited")),
      eval_subtrees_pruned(&reg.GetCounter("eval.subtrees_pruned")),
      eval_answers(&reg.GetCounter("eval.answers")),
      update_count(&reg.GetCounter("update.count")),
      update_accepted(&reg.GetCounter("update.accepted")),
      update_rejected(&reg.GetCounter("update.rejected")),
      update_errors(&reg.GetCounter("update.errors")),
      update_latency_ns(&reg.GetHistogram("update.latency_ns")),
      update_tax_repair_ns(&reg.GetHistogram("update.tax_repair_ns")),
      update_tax_rebuild_ns(&reg.GetHistogram("update.tax_rebuild_ns")),
      update_nodes_inserted(&reg.GetCounter("update.nodes_inserted")),
      update_nodes_deleted(&reg.GetCounter("update.nodes_deleted")),
      guard_deadline_exceeded(&reg.GetCounter("guard.deadline_exceeded")),
      guard_budget_exceeded(&reg.GetCounter("guard.budget_exceeded")),
      guard_admission_rejected(&reg.GetCounter("guard.admission_rejected")),
      guard_cancelled(&reg.GetCounter("guard.cancelled")) {}

Smoqe::Admission::Admission(Smoqe* engine)
    : engine_(engine), admitted_(true) {
  const int limit = engine->options_.max_pending_requests;
  if (limit <= 0) return;  // unbounded: the gate compiles down to nothing
  const int now = engine->inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > limit) {
    engine->inflight_.fetch_sub(1, std::memory_order_relaxed);
    admitted_ = false;
  }
}

Smoqe::Admission::~Admission() {
  if (engine_->options_.max_pending_requests > 0 && admitted_) {
    engine_->inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

const Guardrail* Smoqe::MakeGuard(const RequestOptions& req,
                                  MemoryBudget* budget,
                                  Guardrail* guard) const {
  const uint64_t deadline_ms =
      req.deadline_ms != 0 ? req.deadline_ms : options_.default_deadline_ms;
  const uint64_t max_bytes = req.max_memory_bytes != 0
                                 ? req.max_memory_bytes
                                 : options_.default_max_memory_bytes;
  if (deadline_ms == 0 && max_bytes == 0 && req.cancel == nullptr) {
    return nullptr;  // ungoverned: evaluators take their null-guard fast path
  }
  budget->Reset(max_bytes);
  *guard = Guardrail(Deadline::After(deadline_ms), req.cancel,
                     max_bytes != 0 ? budget : nullptr);
  return guard;
}

std::shared_ptr<tel::Trace> Smoqe::PickTrace(const char* name,
                                             const RequestOptions& req,
                                             bool* external) {
  *external = req.trace != nullptr;
  if (*external) return req.trace;
  if (req.trace_id != 0 || req.profile) {
    // An explicit correlation id or a PROFILE request must always
    // record — sampling would make the surface flaky for the caller.
    return telemetry_->traces().Begin(name, req.trace_id);
  }
  return telemetry_->MaybeBeginTrace(name);
}

const char* Smoqe::CountGuardOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      if (tm_ != nullptr) tm_->guard_deadline_exceeded->Add(1);
      return "deadline";
    case StatusCode::kResourceExhausted:
      if (tm_ != nullptr) tm_->guard_budget_exceeded->Add(1);
      return "budget";
    case StatusCode::kRejectedBusy:
      if (tm_ != nullptr) tm_->guard_admission_rejected->Add(1);
      return "admission";
    case StatusCode::kCancelled:
      if (tm_ != nullptr) tm_->guard_cancelled->Add(1);
      return "cancel";
    default:
      return nullptr;
  }
}

Smoqe::Smoqe(EngineOptions options)
    : names_(xml::NameTable::Create()),
      options_(options),
      plan_cache_(options.plan_cache_capacity) {
  // A pool only exists when it can actually help: max_threads == 1 (or a
  // 1-core host under the default) keeps the engine bit-for-bit serial.
  const int resolved =
      options_.max_threads > 0
          ? options_.max_threads
          : static_cast<int>(std::thread::hardware_concurrency());
  if (resolved > 1) pool_ = std::make_unique<ThreadPool>(resolved);
  if (options_.telemetry.enabled) {
    telemetry_ = std::make_unique<tel::Telemetry>(options_.telemetry);
    tm_ = std::make_unique<FacadeMetrics>(telemetry_->registry());
    plan_cache_.AttachTelemetry(&telemetry_->registry());
    if (pool_ != nullptr) pool_->AttachTelemetry(&telemetry_->registry());
  }
}

Smoqe::Smoqe(size_t plan_cache_capacity)
    : Smoqe([plan_cache_capacity] {
        EngineOptions o;
        o.plan_cache_capacity = plan_cache_capacity;
        return o;
      }()) {}

Status Smoqe::RegisterDtd(const std::string& name, std::string_view dtd_text,
                          std::string_view root) {
  SMOQE_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(dtd_text, root));
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  bool replaced =
      catalog_.PutDtd(name, std::make_unique<xml::Dtd>(std::move(dtd)));
  if (replaced) {
    // Conservative: every view derived over this DTD recompiles its plans
    // on next use (the views keep their definitions until redefined).
    for (const std::string& view_name : catalog_.ViewNames()) {
      const ViewEntry* view = catalog_.FindView(view_name);
      if (view != nullptr && view->dtd_name == name) {
        plan_cache_.InvalidateView(view_name);
      }
    }
  }
  return Status::OK();
}

Status Smoqe::LoadDocument(const std::string& name,
                           std::string_view xml_text) {
  xml::ParseOptions opts;
  opts.names = names_;
  SMOQE_ASSIGN_OR_RETURN(xml::ParsedDocument parsed,
                         xml::ParseXml(xml_text, opts));
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (!parsed.doctype_internal_subset.empty() &&
      catalog_.FindDtd(name) == nullptr) {
    auto dtd = xml::ParseDtd(parsed.doctype_internal_subset,
                             parsed.doctype_name);
    if (dtd.ok()) {
      SMOQE_RETURN_IF_ERROR(
          catalog_.AddDtd(name, std::make_unique<xml::Dtd>(dtd.MoveValue())));
    }
  }
  auto entry = std::make_unique<DocumentEntry>(std::string(xml_text),
                                               std::move(parsed.document));
  return catalog_.AddDocument(name, std::move(entry));
}

Status Smoqe::GenerateDocument(const std::string& name,
                               const std::string& dtd_name, uint64_t seed,
                               size_t target_nodes) {
  xml::GeneratorOptions opts;
  opts.seed = seed;
  opts.target_nodes = target_nodes;
  opts.names = names_;
  // Generate under the *shared* lock — the O(target_nodes) generation
  // and serialization must not stall concurrent readers; only the DTD
  // content has to be pinned against a concurrent RegisterDtd. The
  // unique lock covers just the catalog insert.
  std::optional<xml::Document> doc;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    const xml::Dtd* dtd = catalog_.FindDtd(dtd_name);
    if (dtd == nullptr) {
      return Status::NotFound("DTD '" + dtd_name + "' is not registered");
    }
    SMOQE_ASSIGN_OR_RETURN(xml::Document generated,
                           xml::GenerateDocument(*dtd, opts));
    doc.emplace(std::move(generated));
  }
  std::string text = xml::SerializeDocument(*doc);
  auto entry =
      std::make_unique<DocumentEntry>(std::move(text), std::move(*doc));
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  return catalog_.AddDocument(name, std::move(entry));
}

Status Smoqe::DefineView(const std::string& view_name,
                         const std::string& dtd_name,
                         std::string_view policy_text) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  const xml::Dtd* dtd = catalog_.FindDtd(dtd_name);
  if (dtd == nullptr) {
    return Status::NotFound("DTD '" + dtd_name + "' is not registered");
  }
  SMOQE_ASSIGN_OR_RETURN(view::Policy policy,
                         view::Policy::Parse(*dtd, policy_text));
  auto policy_ptr = std::make_unique<view::Policy>(std::move(policy));
  SMOQE_ASSIGN_OR_RETURN(view::ViewDefinition def,
                         view::DeriveView(*policy_ptr));
  auto entry = std::make_unique<ViewEntry>();
  entry->dtd_name = dtd_name;
  entry->policy = std::move(policy_ptr);
  entry->definition = std::move(def);
  entry->fingerprint = ViewFingerprint(entry->definition, dtd_name);
  if (catalog_.PutView(view_name, std::move(entry))) {
    plan_cache_.InvalidateView(view_name);  // redefinition: recompile
  }
  return Status::OK();
}

Status Smoqe::DefineViewFromSpec(const std::string& view_name,
                                 std::string_view spec_text,
                                 const std::string& document_dtd_name) {
  SMOQE_ASSIGN_OR_RETURN(view::ViewDefinition def,
                         view::ParseViewSpecification(spec_text));
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (!document_dtd_name.empty()) {
    const xml::Dtd* dtd = catalog_.FindDtd(document_dtd_name);
    if (dtd == nullptr) {
      return Status::NotFound("DTD '" + document_dtd_name +
                              "' is not registered");
    }
    SMOQE_RETURN_IF_ERROR(view::CheckSpecificationAgainstDtd(def, *dtd));
  }
  auto entry = std::make_unique<ViewEntry>();
  entry->dtd_name = document_dtd_name;
  entry->definition = std::move(def);
  entry->fingerprint = ViewFingerprint(entry->definition, document_dtd_name);
  if (catalog_.PutView(view_name, std::move(entry))) {
    plan_cache_.InvalidateView(view_name);  // redefinition: recompile
  }
  return Status::OK();
}

Result<std::string> Smoqe::ViewSchema(const std::string& view_name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  const ViewEntry* view = catalog_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("view '" + view_name + "' is not registered");
  }
  return view->definition.view_dtd().ToString();
}

Result<std::string> Smoqe::ViewSpecification(
    const std::string& view_name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  const ViewEntry* view = catalog_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("view '" + view_name + "' is not registered");
  }
  return view->definition.ToString();
}

Status Smoqe::BuildIndex(const std::string& doc_name) {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  // Writer path: the successor snapshot shares the tree (and any already
  // serialized text) and differs only in the index.
  std::lock_guard<std::mutex> writer(doc->writer_mu);
  std::shared_ptr<const DocumentSnapshot> base = doc->Acquire();
  auto tax =
      std::make_shared<const index::TaxIndex>(index::TaxIndex::Build(*base->dom));
  doc->Publish(std::make_shared<const DocumentSnapshot>(
      base->dom, std::move(tax), base->text_if_ready()));
  return Status::OK();
}

Status Smoqe::SaveIndex(const std::string& doc_name,
                        const std::string& path) const {
  std::shared_ptr<const DocumentSnapshot> snap;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    const DocumentEntry* doc = catalog_.FindDocument(doc_name);
    if (doc == nullptr) {
      return Status::NotFound("document '" + doc_name + "' is not loaded");
    }
    snap = doc->Acquire();
  }
  if (snap->tax == nullptr) {
    return Status::FailedPrecondition("document '" + doc_name +
                                      "' has no TAX index; call BuildIndex");
  }
  return index::TaxIo::Save(*snap->tax, path);
}

Status Smoqe::LoadIndex(const std::string& doc_name, const std::string& path) {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  SMOQE_ASSIGN_OR_RETURN(index::TaxIndex idx, index::TaxIo::Load(path));
  std::lock_guard<std::mutex> writer(doc->writer_mu);
  std::shared_ptr<const DocumentSnapshot> base = doc->Acquire();
  doc->Publish(std::make_shared<const DocumentSnapshot>(
      base->dom, std::make_shared<const index::TaxIndex>(std::move(idx)),
      base->text_if_ready()));
  return Status::OK();
}

Result<Smoqe::PlanUse> Smoqe::GetPlan(std::string_view query_text,
                                      const QueryOptions& options,
                                      tel::Trace* tr) {
  std::unique_ptr<rxpath::PathExpr> query;
  {
    tel::SpanScope span(tr, "parse");
    SMOQE_ASSIGN_OR_RETURN(query, rxpath::ParseQuery(query_text));
  }

  const ViewEntry* view = nullptr;
  PlanCache::Key key;
  key.view = options.view;
  if (!options.view.empty()) {
    view = catalog_.FindView(options.view);
    if (view == nullptr) {
      return Status::NotFound("view '" + options.view +
                              "' is not registered");
    }
    key.view_fingerprint = view->fingerprint;
  }
  // Canonical printer rendering, so surface variants of one query share
  // one cache entry ("//a [b]" ≡ "//a[b]").
  key.normalized_query = rxpath::ToString(*query);

  if (!options.bypass_plan_cache) {
    tel::SpanScope span(tr, "cache_lookup");
    if (std::shared_ptr<const CompiledPlan> hit = plan_cache_.Lookup(key)) {
      return PlanUse{std::move(hit), /*cache_hit=*/true};
    }
  }

  // Compile: direct queries compile as-is; view queries are rewritten to
  // an equivalent MFA over the underlying document (never materializing).
  auto compiled = std::make_shared<CompiledPlan>();
  if (view == nullptr) {
    tel::SpanScope span(tr, "compile");
    SMOQE_ASSIGN_OR_RETURN(compiled->mfa,
                           automata::Mfa::Compile(*query, names_));
  } else {
    tel::SpanScope span(tr, "rewrite");
    // Query assistance: flag labels that are not part of the schema the
    // user group sees (they can never match — typo or access attempt).
    rxpath::TypeCheckResult tc = rxpath::TypeCheck(
        *query, view->definition.view_dtd(), {}, /*from_document_node=*/true);
    compiled->unknown_labels.assign(tc.unknown_labels.begin(),
                                    tc.unknown_labels.end());
    SMOQE_ASSIGN_OR_RETURN(
        compiled->mfa, rewrite::RewriteToMfa(*query, view->definition, names_));
  }
  compiled->normalized_query = key.normalized_query;
  std::shared_ptr<const CompiledPlan> plan = std::move(compiled);
  if (!options.bypass_plan_cache) {
    // Adopt whatever the cache keeps: if a concurrent compile of the same
    // key won the race, every caller converges on the winner's plan.
    plan = plan_cache_.Insert(key, std::move(plan));
  }
  return PlanUse{std::move(plan), /*cache_hit=*/false};
}

Result<QueryAnswer> Smoqe::EvalCompiled(const DocumentSnapshot& snap,
                                        const std::string& doc_name,
                                        const PlanUse& pu,
                                        const QueryOptions& options,
                                        const Guardrail* guard,
                                        tel::Trace* tr) {
  const CompiledPlan& plan = *pu.plan;
  QueryAnswer out;
  out.unknown_labels = plan.unknown_labels;
  out.doc_epoch = snap.epoch;
  if (options.explain) out.mfa_dump = plan.mfa.ToString();

  if (options.mode == EvalMode::kStax) {
    if (options.use_tax) {
      return Status::InvalidArgument(
          "TAX requires DOM mode (the index addresses materialized nodes)");
    }
    eval::StaxEvalOptions stax_opts;
    stax_opts.engine.trace = options.explain;
    stax_opts.guard = guard;
    // The streaming pass captures answer subtrees as it scans, so
    // evaluation and materialization are one span here.
    tel::SpanScope span(tr, "evaluate");
    SMOQE_ASSIGN_OR_RETURN(eval::StaxEvalResult r,
                           eval::EvalHypeStax(plan.mfa, snap.text(), stax_opts));
    for (auto& a : r.answers) out.answers_xml.push_back(std::move(a.xml));
    out.stats = r.stats;
  } else {
    eval::DomEvalOptions dom_opts;
    dom_opts.engine.trace = options.explain;
    dom_opts.guard = guard;
    if (options.use_tax) {
      if (snap.tax == nullptr) {
        return Status::FailedPrecondition(
            "document '" + doc_name + "' has no TAX index; call BuildIndex");
      }
      dom_opts.tax = snap.tax.get();
    }
    eval::DomEvalResult r;
    {
      tel::SpanScope span(tr, "evaluate");
      SMOQE_ASSIGN_OR_RETURN(r,
                             eval::EvalHypeDom(plan.mfa, *snap.dom, dom_opts));
    }
    {
      tel::SpanScope span(tr, "materialize");
      for (const xml::Node* n : r.answers) {
        out.answers_xml.push_back(xml::SerializeNode(n, *names_));
        out.answer_ids.push_back(n->node_id);
      }
    }
    out.stats = r.stats;
    if (options.explain && r.trace != nullptr) {
      out.trace_tree = r.trace->RenderTree(*snap.dom, r.nodes_by_engine_id);
    }
  }
  out.stats.plan_cache_hits = pu.cache_hit ? 1 : 0;
  out.stats.plan_cache_misses = pu.cache_hit ? 0 : 1;
  return out;
}

void Smoqe::FoldEvalStats(const EvalStats& stats) {
  tm_->eval_nodes_visited->Add(stats.nodes_visited);
  tm_->eval_subtrees_pruned->Add(stats.subtrees_pruned);
  tm_->eval_answers->Add(stats.answers);
}

void Smoqe::AppendQueryAudit(const std::string& doc_name,
                             const std::string& view_name,
                             std::string_view query_text, uint64_t doc_epoch,
                             uint64_t trace_id) {
  tel::AuditRecord rec;
  rec.kind = tel::AuditKind::kQueryRewrite;
  rec.view = view_name;
  rec.doc = doc_name;
  rec.doc_epoch = doc_epoch;
  rec.statement = std::string(query_text);
  rec.allowed = true;  // the rewrite itself is the enforcement
  rec.trace_id = trace_id;
  telemetry_->audit().Append(std::move(rec));
}

Result<QueryAnswer> Smoqe::QueryImpl(const std::string& doc_name,
                                     std::string_view query_text,
                                     const QueryOptions& options,
                                     const Guardrail* guard, tel::Trace* tr,
                                     bool want_canonical) {
  // Entry check: a deadline that arrived expired (or a pre-cancelled
  // token) fails before any parsing or locking.
  if (guard != nullptr) SMOQE_RETURN_IF_ERROR(guard->Check());
  std::shared_ptr<const DocumentSnapshot> snap;
  PlanUse plan;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    DocumentEntry* doc = catalog_.FindDocument(doc_name);
    if (doc == nullptr) {
      return Status::NotFound("document '" + doc_name + "' is not loaded");
    }
    SMOQE_ASSIGN_OR_RETURN(plan, GetPlan(query_text, options, tr));
    snap = doc->Acquire();
  }
  // No lock held during evaluation: the snapshot is pinned, the plan is
  // immutable and shared.
  Result<QueryAnswer> out =
      EvalCompiled(*snap, doc_name, plan, options, guard, tr);
  if (out.ok() && want_canonical) {
    out->canonical_query = plan.plan->normalized_query;
  }
  return out;
}

Result<QueryAnswer> Smoqe::Query(const std::string& doc_name,
                                 std::string_view query_text,
                                 const QueryOptions& options,
                                 const RequestOptions& req) {
  Admission slot(this);
  if (!slot.ok()) {
    Status busy = Status::RejectedBusy(
        "engine is at max_pending_requests (" +
        std::to_string(options_.max_pending_requests) + " in flight)");
    CountGuardOutcome(busy);
    return busy;
  }
  MemoryBudget budget;
  Guardrail guard_storage;
  const Guardrail* guard = MakeGuard(req, &budget, &guard_storage);
  if (telemetry_ == nullptr) {
    return QueryImpl(doc_name, query_text, options, guard, nullptr);
  }
  const auto t0 = std::chrono::steady_clock::now();
  bool external = false;
  std::shared_ptr<tel::Trace> trace = PickTrace("query", req, &external);
  tel::Trace* tr = trace.get();
  if (tr != nullptr) {
    tr->SetAttr("doc", doc_name);
    tr->SetAttr("query", std::string(query_text));
    if (!options.view.empty()) tr->SetAttr("view", options.view);
    tr->SetAttr("mode", options.mode == EvalMode::kStax ? "stax" : "dom");
  }

  Result<QueryAnswer> result =
      QueryImpl(doc_name, query_text, options, guard, tr, req.profile);

  const uint64_t elapsed_ns = ElapsedNs(t0);
  tm_->query_count->Add();
  tm_->query_latency_ns->Record(elapsed_ns);
  if (result.ok()) {
    QueryAnswer& a = *result;
    if (tr != nullptr) a.trace_id = tr->id();
    tm_->query_answers->Add(a.answers_xml.size());
    FoldEvalStats(a.stats);
    // Epoch lag: how far the published document moved past the snapshot
    // this query answered from (0 = answered the newest epoch).
    Result<uint64_t> cur = DocumentEpoch(doc_name);
    if (cur.ok() && *cur >= a.doc_epoch) {
      tm_->query_epoch_lag->Record(*cur - a.doc_epoch);
    }
    if (!options.view.empty()) {
      AppendQueryAudit(doc_name, options.view, query_text, a.doc_epoch,
                       a.trace_id);
    }
  } else {
    tm_->query_errors->Add();
    const char* guard_kind = CountGuardOutcome(result.status());
    if (tr != nullptr && guard_kind != nullptr) {
      tr->SetAttr("guard", guard_kind);
    }
  }
  // PROFILE / slow-query capture — on every outcome, so failures are
  // debuggable too (an error's profile carries the stages that ran up
  // to the failure point and empty stats).
  const uint64_t threshold_ns =
      options_.slow_query_threshold_ms * 1000000ull;
  const bool slow =
      telemetry_->slow().enabled() && elapsed_ns >= threshold_ns;
  const bool want_profile = req.profile && result.ok();
  if (slow || want_profile) {
    tel::Profile p = MakeProfile("query", doc_name, options.view, query_text,
                                 elapsed_ns, guard, tr);
    if (result.ok()) {
      p.plan_cache_hit = result->stats.plan_cache_hits > 0;
      p.doc_epoch = result->doc_epoch;
      p.canonical_query = result->canonical_query;
      p.stats = result->stats;
    }
    if (want_profile) result->profile = std::make_shared<tel::Profile>(p);
    if (slow) {
      telemetry_->slow().Append(std::move(p), options.view, threshold_ns);
    }
  }
  if (tr != nullptr) {
    tr->SetAttr("status",
                result.ok() ? "ok" : result.status().ToString());
    if (!external) telemetry_->traces().Finish(trace);
  }
  return result;
}

Status Smoqe::EvalBatchOnSnapshot(const DocumentSnapshot& snap,
                                  const std::string& doc_name,
                                  const std::vector<BatchQueryItem>& items,
                                  const std::vector<PlanUse>& plans,
                                  const std::vector<size_t>& sel,
                                  const std::vector<size_t>& error_ids,
                                  const Guardrail* guard,
                                  std::vector<QueryAnswer>* out,
                                  tel::Trace* tr) {
  std::vector<size_t> stax_items;
  std::vector<size_t> dom_items;
  for (size_t i : sel) {
    (items[i].options.mode == EvalMode::kStax ? stax_items : dom_items)
        .push_back(i);
  }

  // All streaming items share one forward scan of the document text; with
  // a pool, per-plan advancement fans out behind the shared tokenizer.
  if (!stax_items.empty()) {
    if (tm_ != nullptr) {
      tm_->batch_plans_per_scan->Record(stax_items.size());
    }
    eval::BatchStaxOptions batch_opts;
    batch_opts.guard = guard;
    eval::BatchEvaluator batch(batch_opts);
    for (size_t i : stax_items) {
      eval::EngineOptions engine;
      engine.trace = items[i].options.explain;
      batch.AddPlan(&plans[i].plan->mfa, engine);
    }
    tel::SpanScope span(tr, "evaluate.stax_scan");
    Result<std::vector<eval::StaxEvalResult>> results_or =
        [&]() -> Result<std::vector<eval::StaxEvalResult>> {
      if (ParallelEnabled()) {
        eval::BatchParallelOptions par;
        par.pool = pool_.get();
        par.chunk_events = options_.stax_chunk_events;
        par.chunk_ns = tm_ != nullptr ? tm_->batch_chunk_ns : nullptr;
        return batch.RunParallel(snap.text(), par);
      }
      return batch.Run(snap.text());
    }();
    SMOQE_RETURN_IF_ERROR(results_or.status());
    std::vector<eval::StaxEvalResult>& results = *results_or;
    for (size_t j = 0; j < stax_items.size(); ++j) {
      const size_t i = stax_items[j];
      QueryAnswer& a = (*out)[i];
      a.unknown_labels = plans[i].plan->unknown_labels;
      a.doc_epoch = snap.epoch;
      if (items[i].options.explain) a.mfa_dump = plans[i].plan->mfa.ToString();
      for (auto& ans : results[j].answers) {
        a.answers_xml.push_back(std::move(ans.xml));
      }
      a.stats = results[j].stats;  // batch_plans set by the evaluator
      a.stats.plan_cache_hits = plans[i].cache_hit ? 1 : 0;
      a.stats.plan_cache_misses = plans[i].cache_hit ? 0 : 1;
    }
  }

  // DOM-mode items evaluate per item — the tree is already amortized
  // across them, and TAX/trace address materialized nodes. Items are
  // independent, so they fan out across the pool.
  if (!dom_items.empty()) {
    tel::SpanScope dom_span(tr, "evaluate.dom_items");
    std::vector<Status> statuses(dom_items.size(), Status::OK());
    auto eval_one = [&](size_t j) {
      const size_t i = dom_items[j];
      // Per-item child spans come from EvalCompiled (evaluate /
      // materialize), parented under the shared dom_items span; workers
      // append concurrently, which Trace supports.
      tel::SpanScope item_span(tr, "item", dom_span.index());
      auto answer =
          EvalCompiled(snap, doc_name, plans[i], items[i].options, guard, tr);
      if (answer.ok()) {
        (*out)[i] = std::move(*answer);
      } else {
        statuses[j] = answer.status();
      }
    };
    if (ParallelEnabled() && dom_items.size() > 1) {
      pool_->ParallelFor(dom_items.size(), eval_one);
    } else {
      for (size_t j = 0; j < dom_items.size(); ++j) eval_one(j);
    }
    for (size_t j = 0; j < dom_items.size(); ++j) {
      if (!statuses[j].ok()) {
        const size_t i = dom_items[j];
        Status st = statuses[j].WithContext(
            "batch item " + std::to_string(error_ids[i]));
        // A tripped request guardrail fails the whole call (fail-closed,
        // no partial answer); anything else fails just this item.
        if (IsGuardTermination(statuses[j])) return st;
        (*out)[i].status = std::move(st);
      }
    }
  }
  return Status::OK();
}

Result<std::vector<QueryAnswer>> Smoqe::QueryBatchImpl(
    const std::string& doc_name, const std::vector<BatchQueryItem>& items,
    const Guardrail* guard, tel::Trace* tr) {
  if (guard != nullptr) SMOQE_RETURN_IF_ERROR(guard->Check());
  std::shared_ptr<const DocumentSnapshot> snap;
  std::vector<PlanUse> plans(items.size());
  std::vector<QueryAnswer> out(items.size());
  std::vector<size_t> sel;  // items that compiled; the rest failed locally
  sel.reserve(items.size());
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    DocumentEntry* doc = catalog_.FindDocument(doc_name);
    if (doc == nullptr) {
      return Status::NotFound("document '" + doc_name + "' is not loaded");
    }
    snap = doc->Acquire();
    // Resolve plans and evaluation preconditions per item. An item that
    // fails here (unknown view, parse error, TAX-mode conflict) fails
    // *only itself*: its status lands in out[i].status and it is left
    // out of the evaluation selection; the siblings still run.
    tel::SpanScope span(tr, "compile_items");
    for (size_t i = 0; i < items.size(); ++i) {
      Status item_st = Status::OK();
      auto plan = GetPlan(items[i].query, items[i].options, nullptr);
      if (!plan.ok()) {
        item_st = plan.status();
      } else if (items[i].options.mode == EvalMode::kStax &&
                 items[i].options.use_tax) {
        item_st = Status::InvalidArgument(
            "TAX requires DOM mode (the index addresses materialized nodes)");
      } else if (items[i].options.mode == EvalMode::kDom &&
                 items[i].options.use_tax && snap->tax == nullptr) {
        item_st = Status::FailedPrecondition(
            "document '" + doc_name + "' has no TAX index; call BuildIndex");
      }
      if (!item_st.ok()) {
        out[i].status =
            item_st.WithContext("batch item " + std::to_string(i));
        continue;
      }
      plans[i] = std::move(*plan);
      sel.push_back(i);
    }
  }

  std::vector<size_t> ids(items.size());
  for (size_t i = 0; i < items.size(); ++i) ids[i] = i;
  SMOQE_RETURN_IF_ERROR(EvalBatchOnSnapshot(*snap, doc_name, items, plans, sel,
                                            ids, guard, &out, tr));
  return out;
}

Result<std::vector<QueryAnswer>> Smoqe::QueryBatch(
    const std::string& doc_name, const std::vector<BatchQueryItem>& items,
    const RequestOptions& req) {
  Admission slot(this);
  if (!slot.ok()) {
    Status busy = Status::RejectedBusy(
        "engine is at max_pending_requests (" +
        std::to_string(options_.max_pending_requests) + " in flight)");
    CountGuardOutcome(busy);
    return busy;
  }
  MemoryBudget budget;
  Guardrail guard_storage;
  const Guardrail* guard = MakeGuard(req, &budget, &guard_storage);
  if (telemetry_ == nullptr) {
    return QueryBatchImpl(doc_name, items, guard, nullptr);
  }
  const auto t0 = std::chrono::steady_clock::now();
  bool external = false;
  std::shared_ptr<tel::Trace> trace = PickTrace("query_batch", req, &external);
  tel::Trace* tr = trace.get();
  if (tr != nullptr) {
    tr->SetAttr("doc", doc_name);
    tr->SetAttr("items", std::to_string(items.size()));
  }

  Result<std::vector<QueryAnswer>> result =
      QueryBatchImpl(doc_name, items, guard, tr);

  const uint64_t elapsed_ns = ElapsedNs(t0);
  tm_->batch_count->Add();
  tm_->batch_items->Add(items.size());
  tm_->batch_latency_ns->Record(elapsed_ns);
  // Batch-level stats are the MergeFrom fold of the per-item stats
  // (identical under serial and parallel execution — asserted in the
  // concurrency suite); only the fold touches the registry. Items that
  // failed locally contribute nothing — no stats, no audit record.
  EvalStats agg;
  if (result.ok()) {
    for (size_t i = 0; i < result->size(); ++i) {
      QueryAnswer& a = (*result)[i];
      if (tr != nullptr) a.trace_id = tr->id();
      if (!a.status.ok()) {
        tm_->query_errors->Add();
        continue;
      }
      agg.MergeFrom(a.stats);
      if (!items[i].options.view.empty()) {
        AppendQueryAudit(doc_name, items[i].options.view, items[i].query,
                         a.doc_epoch, a.trace_id);
      }
    }
    FoldEvalStats(agg);
    tm_->query_answers->Add(agg.answers);
  } else {
    tm_->batch_errors->Add();
    const char* guard_kind = CountGuardOutcome(result.status());
    if (tr != nullptr && guard_kind != nullptr) {
      tr->SetAttr("guard", guard_kind);
    }
  }
  // One batch-level profile (per-item breakdowns would need per-item
  // traces); it rides on the FIRST item's answer when requested.
  const uint64_t threshold_ns =
      options_.slow_query_threshold_ms * 1000000ull;
  const bool slow =
      telemetry_->slow().enabled() && elapsed_ns >= threshold_ns;
  const bool want_profile = req.profile && result.ok() && !result->empty();
  if (slow || want_profile) {
    tel::Profile p = MakeProfile("query_batch", doc_name, "",
                                 std::to_string(items.size()) + " items",
                                 elapsed_ns, guard, tr);
    if (result.ok()) {
      p.plan_cache_hit =
          agg.plan_cache_misses == 0 && agg.plan_cache_hits > 0;
      p.stats = agg;
      for (const QueryAnswer& a : *result) {
        if (a.status.ok()) {
          p.doc_epoch = a.doc_epoch;
          break;
        }
      }
    }
    if (want_profile) {
      result->front().profile = std::make_shared<tel::Profile>(p);
    }
    if (slow) telemetry_->slow().Append(std::move(p), "", threshold_ns);
  }
  if (tr != nullptr) {
    tr->SetAttr("status",
                result.ok() ? "ok" : result.status().ToString());
    if (!external) telemetry_->traces().Finish(trace);
  }
  return result;
}

Result<std::vector<QueryAnswer>> Smoqe::QueryBatchMultiImpl(
    const std::vector<DocBatchItem>& items, const Guardrail* guard,
    tel::Trace* tr) {
  if (guard != nullptr) SMOQE_RETURN_IF_ERROR(guard->Check());
  // Group items by document (first-appearance order) and pin one snapshot
  // per document, so each group is internally a QueryBatch.
  struct Group {
    std::string doc_name;
    std::shared_ptr<const DocumentSnapshot> snap;
    std::vector<BatchQueryItem> items;
    std::vector<size_t> original;  // index into the caller's vector
    std::vector<size_t> sel;       // group positions that compiled
  };
  std::vector<Group> groups;
  std::map<std::string, size_t> group_of;
  std::vector<std::vector<PlanUse>> plans;  // parallel to groups
  std::vector<QueryAnswer> out(items.size());
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (size_t i = 0; i < items.size(); ++i) {
      auto [it, inserted] = group_of.emplace(items[i].doc, groups.size());
      if (inserted) {
        DocumentEntry* doc = catalog_.FindDocument(items[i].doc);
        if (doc == nullptr) {
          return Status::NotFound("document '" + items[i].doc +
                                  "' is not loaded")
              .WithContext("batch item " + std::to_string(i));
        }
        groups.push_back(Group{items[i].doc, doc->Acquire(), {}, {}, {}});
      }
      Group& g = groups[it->second];
      g.items.push_back(BatchQueryItem{items[i].query, items[i].options});
      g.original.push_back(i);
    }
    // Per-item compile/precondition resolution — same semantics as
    // QueryBatch: a bad item fails only itself (status in the caller's
    // slot), an unknown document fails the call above.
    plans.resize(groups.size());
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      Group& g = groups[gi];
      plans[gi].resize(g.items.size());
      for (size_t j = 0; j < g.items.size(); ++j) {
        const QueryOptions& o = g.items[j].options;
        Status item_st = Status::OK();
        auto plan = GetPlan(g.items[j].query, o, nullptr);
        if (!plan.ok()) {
          item_st = plan.status();
        } else if (o.mode == EvalMode::kStax && o.use_tax) {
          item_st = Status::InvalidArgument(
              "TAX requires DOM mode (the index addresses materialized "
              "nodes)");
        } else if (o.mode == EvalMode::kDom && o.use_tax &&
                   g.snap->tax == nullptr) {
          item_st = Status::FailedPrecondition(
              "document '" + g.doc_name +
              "' has no TAX index; call BuildIndex");
        }
        if (!item_st.ok()) {
          out[g.original[j]].status = item_st.WithContext(
              "batch item " + std::to_string(g.original[j]));
          continue;
        }
        plans[gi][j] = std::move(*plan);
        g.sel.push_back(j);
      }
    }
  }

  std::vector<Status> statuses(groups.size(), Status::OK());
  auto eval_group = [&](size_t gi) {
    Group& g = groups[gi];
    std::vector<QueryAnswer> group_out(g.items.size());
    Status s = EvalBatchOnSnapshot(*g.snap, g.doc_name, g.items, plans[gi],
                                   g.sel, g.original, guard, &group_out, tr);
    if (!s.ok()) {
      statuses[gi] = std::move(s);
      return;
    }
    for (size_t j : g.sel) {
      out[g.original[j]] = std::move(group_out[j]);
    }
  };
  // Independent documents evaluate concurrently; within a group the usual
  // QueryBatch parallelism applies (nested ParallelFor is deadlock-free —
  // the pool's fork/join helps while waiting).
  if (ParallelEnabled() && groups.size() > 1) {
    pool_->ParallelFor(groups.size(), eval_group);
  } else {
    for (size_t gi = 0; gi < groups.size(); ++gi) eval_group(gi);
  }
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    if (!statuses[gi].ok()) {
      return statuses[gi].WithContext("document '" + groups[gi].doc_name +
                                      "'");
    }
  }
  return out;
}

Result<std::vector<QueryAnswer>> Smoqe::QueryBatchMulti(
    const std::vector<DocBatchItem>& items, const RequestOptions& req) {
  Admission slot(this);
  if (!slot.ok()) {
    Status busy = Status::RejectedBusy(
        "engine is at max_pending_requests (" +
        std::to_string(options_.max_pending_requests) + " in flight)");
    CountGuardOutcome(busy);
    return busy;
  }
  MemoryBudget budget;
  Guardrail guard_storage;
  const Guardrail* guard = MakeGuard(req, &budget, &guard_storage);
  if (telemetry_ == nullptr) {
    return QueryBatchMultiImpl(items, guard, nullptr);
  }
  const auto t0 = std::chrono::steady_clock::now();
  bool external = false;
  std::shared_ptr<tel::Trace> trace =
      PickTrace("query_batch_multi", req, &external);
  tel::Trace* tr = trace.get();
  if (tr != nullptr) tr->SetAttr("items", std::to_string(items.size()));

  Result<std::vector<QueryAnswer>> result =
      QueryBatchMultiImpl(items, guard, tr);

  const uint64_t elapsed_ns = ElapsedNs(t0);
  tm_->batch_count->Add();
  tm_->batch_items->Add(items.size());
  tm_->batch_latency_ns->Record(elapsed_ns);
  if (result.ok()) {
    EvalStats agg;
    for (size_t i = 0; i < result->size(); ++i) {
      QueryAnswer& a = (*result)[i];
      if (tr != nullptr) a.trace_id = tr->id();
      if (!a.status.ok()) {
        tm_->query_errors->Add();
        continue;
      }
      agg.MergeFrom(a.stats);
      if (!items[i].options.view.empty()) {
        AppendQueryAudit(items[i].doc, items[i].options.view, items[i].query,
                         a.doc_epoch, a.trace_id);
      }
    }
    FoldEvalStats(agg);
    tm_->query_answers->Add(agg.answers);
  } else {
    tm_->batch_errors->Add();
    const char* guard_kind = CountGuardOutcome(result.status());
    if (tr != nullptr && guard_kind != nullptr) {
      tr->SetAttr("guard", guard_kind);
    }
  }
  const uint64_t threshold_ns =
      options_.slow_query_threshold_ms * 1000000ull;
  if (telemetry_->slow().enabled() && elapsed_ns >= threshold_ns) {
    tel::Profile p = MakeProfile("query_batch_multi", "", "",
                                 std::to_string(items.size()) + " items",
                                 elapsed_ns, guard, tr);
    telemetry_->slow().Append(std::move(p), "", threshold_ns);
  }
  if (tr != nullptr) {
    tr->SetAttr("status",
                result.ok() ? "ok" : result.status().ToString());
    if (!external) telemetry_->traces().Finish(trace);
  }
  return result;
}

Result<ViewCacheEntry*> Smoqe::GetViewCacheLocked(DocumentEntry* doc,
                                                  const DocumentSnapshot& snap,
                                                  const std::string& view_name,
                                                  const ViewEntry* view,
                                                  bool* cache_hit) {
  ViewCacheEntry& cache = doc->view_caches[view_name];
  if (cache.mv.has_value() && cache.fingerprint == view->fingerprint &&
      cache.mv_epoch == snap.epoch) {
    if (cache_hit != nullptr) *cache_hit = true;
    return &cache;
  }
  SMOQE_ASSIGN_OR_RETURN(view::MaterializedView mv,
                         view::Materialize(view->definition, *snap.dom));
  if (cache.fingerprint != view->fingerprint) {
    cache.access.reset();  // access maps are per-policy too
  }
  cache.fingerprint = view->fingerprint;
  cache.mv_epoch = snap.epoch;
  cache.mv.emplace(std::move(mv));
  if (cache_hit != nullptr) *cache_hit = false;
  return &cache;
}

Result<const view::AccessMap*> Smoqe::GetAccessMapLocked(
    DocumentEntry* doc, const DocumentSnapshot& snap,
    const std::string& view_name, const ViewEntry* view) {
  if (view->policy == nullptr) {
    return Status::FailedPrecondition(
        "view '" + view_name +
        "' was registered from a specification, not a policy; updates "
        "require a policy-derived view");
  }
  ViewCacheEntry& cache = doc->view_caches[view_name];
  if (cache.access == nullptr || cache.fingerprint != view->fingerprint ||
      cache.access_epoch != snap.epoch) {
    cache.access = std::make_unique<view::AccessMap>(
        view::AccessMap::Compute(*view->policy, *snap.dom));
    cache.access_epoch = snap.epoch;
    if (cache.fingerprint != view->fingerprint) {
      cache.mv.reset();  // fingerprint owner changed; drop the sibling cache
      cache.fingerprint = view->fingerprint;
    }
  }
  return cache.access.get();
}

Result<MaterializedViewAnswer> Smoqe::MaterializeView(
    const std::string& doc_name, const std::string& view_name) {
  DocumentEntry* doc = nullptr;
  const ViewEntry* view = nullptr;
  std::shared_ptr<const DocumentSnapshot> snap;
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  view = catalog_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("view '" + view_name + "' is not registered");
  }
  snap = doc->Acquire();
  bool cache_hit = false;
  std::lock_guard<std::mutex> caches(doc->caches_mu);
  SMOQE_ASSIGN_OR_RETURN(
      ViewCacheEntry * cache,
      GetViewCacheLocked(doc, *snap, view_name, view, &cache_hit));
  MaterializedViewAnswer out;
  out.xml = xml::SerializeDocument(cache->mv->document);
  out.cache_hit = cache_hit;
  out.epoch = cache->mv_epoch;
  return out;
}

Result<std::string> Smoqe::DocumentXml(const std::string& doc_name) const {
  std::shared_ptr<const DocumentSnapshot> snap;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    const DocumentEntry* doc = catalog_.FindDocument(doc_name);
    if (doc == nullptr) {
      return Status::NotFound("document '" + doc_name + "' is not loaded");
    }
    snap = doc->Acquire();
  }
  return xml::SerializeDocument(*snap->dom);
}

Result<uint64_t> Smoqe::DocumentEpoch(const std::string& doc_name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  const DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  return doc->Acquire()->epoch;
}

Result<UpdateResult> Smoqe::UpdateImpl(const std::string& doc_name,
                                       std::string_view update_text,
                                       const UpdateOptions& options,
                                       const Guardrail* guard,
                                       tel::Trace* tr) {
  if (guard != nullptr) SMOQE_RETURN_IF_ERROR(guard->Check());
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  update::UpdateStatement stmt;
  {
    tel::SpanScope span(tr, "parse");
    SMOQE_ASSIGN_OR_RETURN(stmt, update::ParseUpdate(update_text, names_));
  }

  const ViewEntry* view = nullptr;
  if (!options.view.empty()) {
    view = catalog_.FindView(options.view);
    if (view == nullptr) {
      return Status::NotFound("view '" + options.view + "' is not registered");
    }
  }

  // Revalidation schema: explicit name → the view's document DTD → a DTD
  // registered under the document's name → none.
  const xml::Dtd* dtd = nullptr;
  if (!options.dtd_name.empty()) {
    dtd = catalog_.FindDtd(options.dtd_name);
    if (dtd == nullptr) {
      return Status::NotFound("DTD '" + options.dtd_name +
                              "' is not registered");
    }
  } else if (view != nullptr && !view->dtd_name.empty()) {
    dtd = catalog_.FindDtd(view->dtd_name);
  } else {
    dtd = catalog_.FindDtd(doc_name);
  }

  // One writer at a time per document; readers are never blocked — they
  // stay pinned to the base snapshot for as long as they need it.
  std::lock_guard<std::mutex> writer(doc->writer_mu);
  std::shared_ptr<const DocumentSnapshot> base = doc->Acquire();

  // Resolve the target set to document node ids. View updates resolve in
  // the view's virtual document (via the epoch-cached materialization and
  // its provenance); direct updates resolve on the document itself.
  std::set<int32_t> target_ids;
  {
    tel::SpanScope span(tr, "resolve");
    if (view == nullptr) {
      rxpath::NaiveEvaluator eval(*base->dom);
      for (const xml::Node* n : eval.Eval(*stmt.target)) {
        target_ids.insert(n->node_id);
      }
    } else {
      if (view->policy == nullptr) {
        return Status::FailedPrecondition(
            "view '" + options.view +
            "' was registered from a specification, not a policy; updates "
            "require a policy-derived view");
      }
      std::lock_guard<std::mutex> caches(doc->caches_mu);
      SMOQE_ASSIGN_OR_RETURN(
          ViewCacheEntry * cache,
          GetViewCacheLocked(doc, *base, options.view, view, nullptr));
      rxpath::NaiveEvaluator eval(cache->mv->document);
      for (const xml::Node* n : eval.Eval(*stmt.target)) {
        int32_t src = cache->mv->source_node_id[n->node_id];
        if (src >= 0) target_ids.insert(src);
      }
    }
  }

  UpdateResult out;
  out.canonical = update::ToString(stmt);
  out.stats.targets = target_ids.size();
  out.stats.doc_epoch = base->epoch;
  if (target_ids.empty()) return out;  // nothing selected: a successful no-op

  // Target resolution walked the whole document; re-check before the
  // expensive clone.
  if (guard != nullptr) SMOQE_RETURN_IF_ERROR(guard->Check());

  // Copy-on-write: every check and mutation below runs against a private
  // clone; the published snapshot is untouched until the final Publish.
  // Ids, orders and the epoch survive the clone, so id-keyed caches
  // (access maps, provenance) computed at the base epoch apply verbatim.
  xml::Document clone = base->dom->Clone();
  // Post-clone growth (fragment grafts) charges the request budget; the
  // clone itself is the document's standing footprint, not request-owned.
  if (guard != nullptr) clone.set_memory_budget(guard->budget());
  const xml::Document* fragment =
      stmt.fragment.has_value() ? &*stmt.fragment : nullptr;
  std::vector<update::ResolvedEdit> script;
  for (int32_t id : target_ids) {
    script.push_back(
        update::ResolvedEdit{stmt.kind, clone.mutable_node(id), fragment});
  }

  // Authorize (view updates only), then validate — both before any
  // mutation, so a rejected or invalid update leaves everything intact.
  if (view != nullptr) {
    tel::SpanScope span(tr, "authorize");
    std::lock_guard<std::mutex> caches(doc->caches_mu);
    SMOQE_ASSIGN_OR_RETURN(
        const view::AccessMap* access,
        GetAccessMapLocked(doc, *base, options.view, view));
    SMOQE_RETURN_IF_ERROR(
        update::AuthorizeScript(*view->policy, *access, clone, script));
  }

  std::optional<index::TaxIndex> tax_copy;
  if (base->tax != nullptr) tax_copy.emplace(*base->tax);
  update::ApplierOptions apply_opts;
  apply_opts.dtd = dtd;
  apply_opts.tax = tax_copy.has_value() ? &*tax_copy : nullptr;
  apply_opts.rebuild_tax = options.rebuild_tax;
  apply_opts.guard = guard;
  update::UpdateApplier applier(&clone, apply_opts);
  if (options.dry_run) {
    tel::SpanScope span(tr, "validate");
    SMOQE_RETURN_IF_ERROR(applier.Validate(script));
    return out;  // the clone is discarded; nothing was published
  }

  // View-cache retention (DESIGN.md §6.5): decide per *fresh* cached view
  // BEFORE mutating — the test walks subtrees the update removes. A cache
  // survives iff its policy is qualifier-free and the whole effect region
  // is hidden from that view; everything else goes stale via the epoch.
  std::vector<std::string> retain;
  {
    std::lock_guard<std::mutex> caches(doc->caches_mu);
    for (auto& [name, cache] : doc->view_caches) {
      if (!cache.mv.has_value() || cache.mv_epoch != base->epoch) continue;
      const ViewEntry* v = catalog_.FindView(name);
      if (v == nullptr || v->fingerprint != cache.fingerprint ||
          v->policy == nullptr || v->policy->HasConditions()) {
        continue;
      }
      auto access = GetAccessMapLocked(doc, *base, name, v);
      if (!access.ok()) continue;
      bool irrelevant = true;
      for (const update::ResolvedEdit& e : script) {
        if (e.kind != update::OpKind::kInsert &&
            !(*access)->SubtreeHidden(e.target)) {
          irrelevant = false;
          break;
        }
        if (e.kind != update::OpKind::kDelete) {
          // The grafted fragment must be entirely hidden from this view:
          // with a qualifier-free policy that reduces to "the graft edge or
          // an inherited Deny hides every fragment node". Walk the fragment
          // simulating edge annotations from the graft parent's status.
          const xml::Node* graft_parent =
              e.kind == update::OpKind::kInsert ? e.target : e.target->parent;
          if (graft_parent == nullptr) {
            irrelevant = false;  // replacing the root is never irrelevant
            break;
          }
          const xml::NameTable& names = *clone.names();
          const xml::NameTable& fnames = *e.fragment->names();
          struct Item {
            const std::string* parent_name;
            const xml::Node* node;
            bool visible;
          };
          std::vector<Item> stack = {
              {&names.NameOf(graft_parent->label), e.fragment->root(),
               (*access)->visible(graft_parent->node_id)}};
          while (irrelevant && !stack.empty()) {
            Item it = stack.back();
            stack.pop_back();
            const std::string& child_name = fnames.NameOf(it.node->label);
            const view::Annotation* ann =
                v->policy->Find(*it.parent_name, child_name);
            bool child_visible = it.visible;
            if (ann != nullptr) {
              child_visible = ann->kind == view::AnnKind::kAllow;
            }
            if (child_visible) {
              irrelevant = false;
              break;
            }
            for (const xml::Node* c = it.node->first_child; c != nullptr;
                 c = c->next_sibling) {
              if (c->is_element()) {
                stack.push_back({&child_name, c, child_visible});
              }
            }
          }
          if (!irrelevant) break;
        }
      }
      if (irrelevant) retain.push_back(name);
    }
  }

  update::ApplyStats applied;
  {
    tel::SpanScope span(tr, "apply");
    const auto apply_t0 = std::chrono::steady_clock::now();
    SMOQE_ASSIGN_OR_RETURN(applied, applier.Run(script));
    if (tm_ != nullptr) {
      // The repair-vs-rebuild split (DESIGN.md §6.4) is the metric that
      // tells whether incremental TAX maintenance pays off in practice.
      const int64_t apply_ns = ElapsedNs(apply_t0);
      if (applied.tax_rebuilt) {
        tm_->update_tax_rebuild_ns->Record(apply_ns);
      } else {
        tm_->update_tax_repair_ns->Record(apply_ns);
      }
    }
  }
  out.stats.edits_applied = applied.edits_applied;
  out.stats.edits_dropped = applied.edits_dropped;
  out.stats.nodes_inserted = applied.nodes_inserted;
  out.stats.nodes_deleted = applied.nodes_deleted;
  out.stats.tax_sets_recomputed = applied.tax_sets_recomputed;
  out.stats.tax_rebuilt = applied.tax_rebuilt ? 1 : 0;
  const uint64_t new_epoch = clone.epoch();
  out.stats.doc_epoch = new_epoch;

  // Last guard check *before Publish* — the fail-closed point. A trip
  // here (deadline landing mid-apply, budget blown by a graft) discards
  // the mutated clone and the shadow TAX copy; the published snapshot
  // chain, caches and epoch are untouched.
  if (guard != nullptr) SMOQE_RETURN_IF_ERROR(guard->Check());
  clone.set_memory_budget(nullptr);  // the budget dies with this request

  // Publish the successor snapshot. Readers that acquired the base keep
  // it alive until they finish; the base tree is then freed by refcount.
  tel::SpanScope publish_span(tr, "publish");
  std::shared_ptr<const index::TaxIndex> new_tax;
  if (tax_copy.has_value()) {
    new_tax = std::make_shared<const index::TaxIndex>(std::move(*tax_copy));
  }
  doc->Publish(std::make_shared<const DocumentSnapshot>(
      std::make_shared<const xml::Document>(std::move(clone)),
      std::move(new_tax), nullptr));

  // Epoch bookkeeping of the derived caches: retained materializations
  // jump to the new epoch; everything else is now stale and rebuilds on
  // next use (the access maps always go stale — node-level statuses can
  // change whenever the tree does).
  {
    std::lock_guard<std::mutex> caches(doc->caches_mu);
    for (const std::string& name : retain) {
      doc->view_caches[name].mv_epoch = new_epoch;
    }
    for (const auto& [name, cache] : doc->view_caches) {
      if (!cache.mv.has_value()) continue;
      if (cache.mv_epoch == new_epoch) {
        ++out.stats.view_caches_retained;
      } else if (cache.mv_epoch == base->epoch) {
        ++out.stats.view_caches_invalidated;
      }
    }
  }
  return out;
}

Result<UpdateResult> Smoqe::Update(const std::string& doc_name,
                                   std::string_view update_text,
                                   const UpdateOptions& options,
                                   const RequestOptions& req) {
  Admission slot(this);
  if (!slot.ok()) {
    Status busy = Status::RejectedBusy(
        "engine is at max_pending_requests (" +
        std::to_string(options_.max_pending_requests) + " in flight)");
    CountGuardOutcome(busy);
    return busy;
  }
  MemoryBudget budget;
  Guardrail guard_storage;
  const Guardrail* guard = MakeGuard(req, &budget, &guard_storage);
  if (telemetry_ == nullptr) {
    return UpdateImpl(doc_name, update_text, options, guard, nullptr);
  }
  const auto t0 = std::chrono::steady_clock::now();
  bool external = false;
  std::shared_ptr<tel::Trace> trace = PickTrace("update", req, &external);
  tel::Trace* tr = trace.get();
  if (tr != nullptr) {
    tr->SetAttr("doc", doc_name);
    if (!options.view.empty()) tr->SetAttr("view", options.view);
    if (options.dry_run) tr->SetAttr("dry_run", "true");
  }
  Result<UpdateResult> result =
      UpdateImpl(doc_name, update_text, options, guard, tr);
  const uint64_t elapsed_ns = ElapsedNs(t0);
  tm_->update_count->Add(1);
  tm_->update_latency_ns->Record(elapsed_ns);
  if (result.ok()) {
    tm_->update_accepted->Add(1);
    tm_->update_nodes_inserted->Add(
        static_cast<int64_t>(result->stats.nodes_inserted));
    tm_->update_nodes_deleted->Add(
        static_cast<int64_t>(result->stats.nodes_deleted));
    if (!options.view.empty()) {
      tel::AuditRecord rec;
      rec.kind = tel::AuditKind::kUpdateAccept;
      rec.view = options.view;
      rec.doc = doc_name;
      rec.doc_epoch = result->stats.doc_epoch;
      rec.statement = std::string(update_text);
      rec.allowed = true;
      rec.trace_id = tr != nullptr ? tr->id() : 0;
      telemetry_->audit().Append(std::move(rec));
    }
  } else if (result.status().code() == StatusCode::kPermissionDenied) {
    // Every security denial leaves exactly one audit record carrying the
    // evaluator's explain string verbatim (tested differentially against
    // the returned Status in tests/telemetry_facade_test.cc).
    tm_->update_rejected->Add(1);
    tel::AuditRecord rec;
    rec.kind = tel::AuditKind::kUpdateReject;
    rec.view = options.view;
    rec.doc = doc_name;
    Result<uint64_t> epoch = DocumentEpoch(doc_name);
    rec.doc_epoch = epoch.ok() ? *epoch : 0;
    rec.statement = std::string(update_text);
    rec.allowed = false;
    rec.explain = result.status().message();
    rec.trace_id = tr != nullptr ? tr->id() : 0;
    telemetry_->audit().Append(std::move(rec));
  } else {
    // Guard terminations land here by design: a deadline / budget /
    // cancel trip is a resource outcome, not a security decision, so it
    // counts as an error and an audit record is deliberately NOT written
    // (docs/QUERY_LANGUAGE.md "Updates").
    tm_->update_errors->Add(1);
    const char* guard_kind = CountGuardOutcome(result.status());
    if (tr != nullptr && guard_kind != nullptr) {
      tr->SetAttr("guard", guard_kind);
    }
  }
  const uint64_t threshold_ns =
      options_.slow_query_threshold_ms * 1000000ull;
  if (telemetry_->slow().enabled() && elapsed_ns >= threshold_ns) {
    tel::Profile p = MakeProfile("update", doc_name, options.view,
                                 update_text, elapsed_ns, guard, tr);
    if (result.ok()) {
      p.doc_epoch = result->stats.doc_epoch;
      p.canonical_query = result->canonical;
    }
    telemetry_->slow().Append(std::move(p), options.view, threshold_ns);
  }
  if (tr != nullptr) {
    tr->SetAttr("status", result.ok() ? "ok" : result.status().ToString());
    if (!external) telemetry_->traces().Finish(trace);
  }
  return result;
}

std::string Smoqe::DumpMetrics(tel::DumpFormat format) const {
  if (telemetry_ == nullptr) {
    return format == tel::DumpFormat::kJson ? "{}\n" : "";
  }
  tel::MetricsRegistry& reg = telemetry_->registry();
  // Pull-time gauges: cheap process-wide facts sampled at dump time
  // rather than maintained on the hot path.
  reg.GetGauge("snapshot.live").Set(DocumentSnapshot::LiveCount());
  reg.GetGauge("snapshot.created").Set(DocumentSnapshot::CreatedCount());
  reg.GetGauge("audit.total")
      .Set(static_cast<int64_t>(telemetry_->audit().total()));
  reg.GetGauge("audit.dropped")
      .Set(static_cast<int64_t>(telemetry_->audit().dropped()));
  reg.GetGauge("trace.finished")
      .Set(static_cast<int64_t>(telemetry_->traces().finished_count()));
  reg.GetGauge("slowlog.total")
      .Set(static_cast<int64_t>(telemetry_->slow().total()));
  reg.GetGauge("slowlog.dropped")
      .Set(static_cast<int64_t>(telemetry_->slow().dropped()));
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (const std::string& name : catalog_.DocumentNames()) {
      const DocumentEntry* doc = catalog_.FindDocument(name);
      if (doc == nullptr) continue;
      reg.GetGauge("doc.epoch." + name)
          .Set(static_cast<int64_t>(doc->Acquire()->epoch));
    }
  }
  return reg.Render(format);
}

std::string Smoqe::DumpSlowQueries() const {
  if (telemetry_ == nullptr) return "[]\n";
  return telemetry_->slow().RenderJson();
}

std::vector<std::string> Smoqe::DocumentNames() const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return catalog_.DocumentNames();
}

std::vector<std::string> Smoqe::ViewNames() const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return catalog_.ViewNames();
}

}  // namespace smoqe::core
