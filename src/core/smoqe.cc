#include "src/core/smoqe.h"

#include "src/automata/mfa.h"
#include "src/eval/hype_dom.h"
#include "src/eval/hype_stax.h"
#include "src/index/tax_io.h"
#include "src/rewrite/rewriter.h"
#include "src/rxpath/parser.h"
#include "src/rxpath/type_check.h"
#include "src/view/derive.h"
#include "src/view/spec_parser.h"
#include "src/xml/dtd_parser.h"
#include "src/xml/generator.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace smoqe::core {

Smoqe::Smoqe() : names_(xml::NameTable::Create()) {}

Status Smoqe::RegisterDtd(const std::string& name, std::string_view dtd_text,
                          std::string_view root) {
  SMOQE_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(dtd_text, root));
  return catalog_.AddDtd(name, std::make_unique<xml::Dtd>(std::move(dtd)));
}

Status Smoqe::LoadDocument(const std::string& name,
                           std::string_view xml_text) {
  xml::ParseOptions opts;
  opts.names = names_;
  SMOQE_ASSIGN_OR_RETURN(xml::ParsedDocument parsed,
                         xml::ParseXml(xml_text, opts));
  if (!parsed.doctype_internal_subset.empty() &&
      catalog_.FindDtd(name) == nullptr) {
    auto dtd = xml::ParseDtd(parsed.doctype_internal_subset,
                             parsed.doctype_name);
    if (dtd.ok()) {
      SMOQE_RETURN_IF_ERROR(
          catalog_.AddDtd(name, std::make_unique<xml::Dtd>(dtd.MoveValue())));
    }
  }
  auto entry = std::make_unique<DocumentEntry>(DocumentEntry{
      std::string(xml_text), std::move(parsed.document), std::nullopt});
  return catalog_.AddDocument(name, std::move(entry));
}

Status Smoqe::GenerateDocument(const std::string& name,
                               const std::string& dtd_name, uint64_t seed,
                               size_t target_nodes) {
  const xml::Dtd* dtd = catalog_.FindDtd(dtd_name);
  if (dtd == nullptr) {
    return Status::NotFound("DTD '" + dtd_name + "' is not registered");
  }
  xml::GeneratorOptions opts;
  opts.seed = seed;
  opts.target_nodes = target_nodes;
  opts.names = names_;
  SMOQE_ASSIGN_OR_RETURN(xml::Document doc,
                         xml::GenerateDocument(*dtd, opts));
  std::string text = xml::SerializeDocument(doc);
  auto entry = std::make_unique<DocumentEntry>(
      DocumentEntry{std::move(text), std::move(doc), std::nullopt});
  return catalog_.AddDocument(name, std::move(entry));
}

Status Smoqe::DefineView(const std::string& view_name,
                         const std::string& dtd_name,
                         std::string_view policy_text) {
  const xml::Dtd* dtd = catalog_.FindDtd(dtd_name);
  if (dtd == nullptr) {
    return Status::NotFound("DTD '" + dtd_name + "' is not registered");
  }
  SMOQE_ASSIGN_OR_RETURN(view::Policy policy,
                         view::Policy::Parse(*dtd, policy_text));
  auto policy_ptr = std::make_unique<view::Policy>(std::move(policy));
  SMOQE_ASSIGN_OR_RETURN(view::ViewDefinition def,
                         view::DeriveView(*policy_ptr));
  auto entry = std::make_unique<ViewEntry>();
  entry->dtd_name = dtd_name;
  entry->policy = std::move(policy_ptr);
  entry->definition = std::move(def);
  return catalog_.AddView(view_name, std::move(entry));
}

Status Smoqe::DefineViewFromSpec(const std::string& view_name,
                                 std::string_view spec_text,
                                 const std::string& document_dtd_name) {
  SMOQE_ASSIGN_OR_RETURN(view::ViewDefinition def,
                         view::ParseViewSpecification(spec_text));
  if (!document_dtd_name.empty()) {
    const xml::Dtd* dtd = catalog_.FindDtd(document_dtd_name);
    if (dtd == nullptr) {
      return Status::NotFound("DTD '" + document_dtd_name +
                              "' is not registered");
    }
    SMOQE_RETURN_IF_ERROR(view::CheckSpecificationAgainstDtd(def, *dtd));
  }
  auto entry = std::make_unique<ViewEntry>();
  entry->dtd_name = document_dtd_name;
  entry->definition = std::move(def);
  return catalog_.AddView(view_name, std::move(entry));
}

Result<std::string> Smoqe::ViewSchema(const std::string& view_name) const {
  const ViewEntry* view = catalog_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("view '" + view_name + "' is not registered");
  }
  return view->definition.view_dtd().ToString();
}

Result<std::string> Smoqe::ViewSpecification(
    const std::string& view_name) const {
  const ViewEntry* view = catalog_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("view '" + view_name + "' is not registered");
  }
  return view->definition.ToString();
}

Status Smoqe::BuildIndex(const std::string& doc_name) {
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  doc->tax = index::TaxIndex::Build(doc->dom);
  return Status::OK();
}

Status Smoqe::SaveIndex(const std::string& doc_name,
                        const std::string& path) const {
  const DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  if (!doc->tax.has_value()) {
    return Status::FailedPrecondition("document '" + doc_name +
                                      "' has no TAX index; call BuildIndex");
  }
  return index::TaxIo::Save(*doc->tax, path);
}

Status Smoqe::LoadIndex(const std::string& doc_name, const std::string& path) {
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  SMOQE_ASSIGN_OR_RETURN(index::TaxIndex idx, index::TaxIo::Load(path));
  doc->tax = std::move(idx);
  return Status::OK();
}

Result<QueryAnswer> Smoqe::Query(const std::string& doc_name,
                                 std::string_view query_text,
                                 const QueryOptions& options) {
  DocumentEntry* doc = catalog_.FindDocument(doc_name);
  if (doc == nullptr) {
    return Status::NotFound("document '" + doc_name + "' is not loaded");
  }
  SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<rxpath::PathExpr> query,
                         rxpath::ParseQuery(query_text));

  // Compile: direct queries compile as-is; view queries are rewritten to
  // an equivalent MFA over the underlying document (never materializing).
  automata::Mfa mfa;
  std::vector<std::string> unknown_labels;
  if (options.view.empty()) {
    SMOQE_ASSIGN_OR_RETURN(mfa, automata::Mfa::Compile(*query, names_));
  } else {
    const ViewEntry* view = catalog_.FindView(options.view);
    if (view == nullptr) {
      return Status::NotFound("view '" + options.view +
                              "' is not registered");
    }
    // Query assistance: flag labels that are not part of the schema the
    // user group sees (they can never match — typo or access attempt).
    rxpath::TypeCheckResult tc = rxpath::TypeCheck(
        *query, view->definition.view_dtd(), {}, /*from_document_node=*/true);
    unknown_labels.assign(tc.unknown_labels.begin(),
                          tc.unknown_labels.end());
    SMOQE_ASSIGN_OR_RETURN(
        mfa, rewrite::RewriteToMfa(*query, view->definition, names_));
  }

  QueryAnswer out;
  out.unknown_labels = std::move(unknown_labels);
  if (options.explain) out.mfa_dump = mfa.ToString();

  if (options.mode == EvalMode::kStax) {
    if (options.use_tax) {
      return Status::InvalidArgument(
          "TAX requires DOM mode (the index addresses materialized nodes)");
    }
    eval::StaxEvalOptions stax_opts;
    stax_opts.engine.trace = options.explain;
    SMOQE_ASSIGN_OR_RETURN(eval::StaxEvalResult r,
                           eval::EvalHypeStax(mfa, doc->text, stax_opts));
    for (auto& a : r.answers) out.answers_xml.push_back(std::move(a.xml));
    out.stats = r.stats;
    return out;
  }

  eval::DomEvalOptions dom_opts;
  dom_opts.engine.trace = options.explain;
  if (options.use_tax) {
    if (!doc->tax.has_value()) {
      return Status::FailedPrecondition("document '" + doc_name +
                                        "' has no TAX index; call BuildIndex");
    }
    dom_opts.tax = &*doc->tax;
  }
  SMOQE_ASSIGN_OR_RETURN(eval::DomEvalResult r,
                         eval::EvalHypeDom(mfa, doc->dom, dom_opts));
  for (const xml::Node* n : r.answers) {
    out.answers_xml.push_back(xml::SerializeNode(n, *names_));
    out.answer_ids.push_back(n->node_id);
  }
  out.stats = r.stats;
  if (options.explain && r.trace != nullptr) {
    out.trace_tree = r.trace->RenderTree(doc->dom, r.nodes_by_engine_id);
  }
  return out;
}

std::vector<std::string> Smoqe::DocumentNames() const {
  return catalog_.DocumentNames();
}

std::vector<std::string> Smoqe::ViewNames() const {
  return catalog_.ViewNames();
}

}  // namespace smoqe::core
