#include "src/core/plan_cache.h"

namespace smoqe::core {

void PlanCache::AttachTelemetry(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) {
    hits_.store(&own_hits_, std::memory_order_release);
    misses_.store(&own_misses_, std::memory_order_release);
    evictions_.store(&own_evictions_, std::memory_order_release);
    invalidations_.store(&own_invalidations_, std::memory_order_release);
    size_.store(&own_size_, std::memory_order_release);
    return;
  }
  hits_.store(&registry->GetCounter("plan_cache.hits"),
              std::memory_order_release);
  misses_.store(&registry->GetCounter("plan_cache.misses"),
                std::memory_order_release);
  evictions_.store(&registry->GetCounter("plan_cache.evictions"),
                   std::memory_order_release);
  invalidations_.store(&registry->GetCounter("plan_cache.invalidations"),
                       std::memory_order_release);
  size_.store(&registry->GetGauge("plan_cache.size"),
              std::memory_order_release);
}

std::shared_ptr<const CompiledPlan> PlanCache::Lookup(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.load(std::memory_order_acquire)->Add();
    return nullptr;
  }
  hits_.load(std::memory_order_acquire)->Add();
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

std::shared_ptr<const CompiledPlan> PlanCache::Insert(
    const Key& key, std::shared_ptr<const CompiledPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent compile of the same key finished first. Keep the
    // incumbent — its pointer is already handed out and may be cached by
    // callers — and hand it to this racer too; the duplicate compile is
    // dropped here (shared_ptr frees it), nothing leaks.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, std::move(plan));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.load(std::memory_order_acquire)->Add();
  }
  size_.load(std::memory_order_acquire)
      ->Set(static_cast<int64_t>(lru_.size()));
  return lru_.front().second;
}

size_t PlanCache::InvalidateView(std::string_view view) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.view == view) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  invalidations_.load(std::memory_order_acquire)->Add(dropped);
  size_.load(std::memory_order_acquire)
      ->Set(static_cast<int64_t>(lru_.size()));
  return dropped;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  invalidations_.load(std::memory_order_acquire)->Add(lru_.size());
  index_.clear();
  lru_.clear();
  size_.load(std::memory_order_acquire)->Set(0);
}

PlanCacheStats PlanCache::stats() const {
  // Counter reads are lock-free; a stats() racing ongoing operations sees
  // a near-instant of the cache, which is all a monitoring read needs.
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_acquire)->Value();
  s.misses = misses_.load(std::memory_order_acquire)->Value();
  s.evictions = evictions_.load(std::memory_order_acquire)->Value();
  s.invalidations = invalidations_.load(std::memory_order_acquire)->Value();
  s.size = static_cast<size_t>(
      size_.load(std::memory_order_acquire)->Value());
  s.capacity = capacity_;
  return s;
}

}  // namespace smoqe::core
