#include "src/core/plan_cache.h"

namespace smoqe::core {

std::shared_ptr<const CompiledPlan> PlanCache::Lookup(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void PlanCache::Insert(const Key& key,
                       std::shared_ptr<const CompiledPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent compile of the same key finished first; keep one.
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

size_t PlanCache::InvalidateView(std::string_view view) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.view == view) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  invalidations_ += dropped;
  return dropped;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  invalidations_ += lru_.size();
  index_.clear();
  lru_.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace smoqe::core
