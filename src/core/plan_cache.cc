#include "src/core/plan_cache.h"

namespace smoqe::core {

std::shared_ptr<const CompiledPlan> PlanCache::Lookup(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

std::shared_ptr<const CompiledPlan> PlanCache::Insert(
    const Key& key, std::shared_ptr<const CompiledPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent compile of the same key finished first. Keep the
    // incumbent — its pointer is already handed out and may be cached by
    // callers — and hand it to this racer too; the duplicate compile is
    // dropped here (shared_ptr frees it), nothing leaks.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, std::move(plan));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  size_.store(lru_.size(), std::memory_order_relaxed);
  return lru_.front().second;
}

size_t PlanCache::InvalidateView(std::string_view view) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.view == view) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  size_.store(lru_.size(), std::memory_order_relaxed);
  return dropped;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  invalidations_.fetch_add(lru_.size(), std::memory_order_relaxed);
  index_.clear();
  lru_.clear();
  size_.store(0, std::memory_order_relaxed);
}

PlanCacheStats PlanCache::stats() const {
  // Counter reads are lock-free; a stats() racing ongoing operations sees
  // a near-instant of the cache, which is all a monitoring read needs.
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.size = size_.load(std::memory_order_relaxed);
  s.capacity = capacity_;
  return s;
}

}  // namespace smoqe::core
