#include "src/core/catalog.h"

#include "src/xml/serializer.h"

namespace smoqe::core {

std::atomic<int64_t> DocumentSnapshot::s_live_{0};
std::atomic<int64_t> DocumentSnapshot::s_created_{0};

const std::string& DocumentSnapshot::text() const {
  std::call_once(text_once_, [&] {
    if (std::atomic_load_explicit(&text_, std::memory_order_acquire) ==
        nullptr) {
      std::atomic_store_explicit(
          &text_,
          std::shared_ptr<const std::string>(
              std::make_shared<const std::string>(
                  xml::SerializeDocument(*dom))),
          std::memory_order_release);
    }
  });
  return *std::atomic_load_explicit(&text_, std::memory_order_acquire);
}

Status Catalog::AddDocument(const std::string& name,
                            std::unique_ptr<DocumentEntry> doc) {
  auto [it, inserted] = documents_.emplace(name, std::move(doc));
  if (!inserted) {
    return Status::AlreadyExists("document '" + name + "' already loaded");
  }
  return Status::OK();
}

Status Catalog::AddDtd(const std::string& name,
                       std::unique_ptr<xml::Dtd> dtd) {
  auto [it, inserted] = dtds_.emplace(name, std::move(dtd));
  if (!inserted) {
    return Status::AlreadyExists("DTD '" + name + "' already registered");
  }
  return Status::OK();
}

Status Catalog::AddView(const std::string& name,
                        std::unique_ptr<ViewEntry> view) {
  auto [it, inserted] = views_.emplace(name, std::move(view));
  if (!inserted) {
    return Status::AlreadyExists("view '" + name + "' already registered");
  }
  return Status::OK();
}

// Replacement is in place (assign through the existing heap object, not
// insert_or_assign) to keep the class invariant: pointers handed out for
// this name stay valid and observe the new content. view::Policy objects
// hold a raw pointer to their catalog-owned Dtd, so swapping the
// allocation would dangle them.
bool Catalog::PutDtd(const std::string& name, std::unique_ptr<xml::Dtd> dtd) {
  auto it = dtds_.find(name);
  if (it == dtds_.end()) {
    dtds_.emplace(name, std::move(dtd));
    return false;
  }
  *it->second = std::move(*dtd);
  return true;
}

bool Catalog::PutView(const std::string& name,
                      std::unique_ptr<ViewEntry> view) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    views_.emplace(name, std::move(view));
    return false;
  }
  *it->second = std::move(*view);
  return true;
}

DocumentEntry* Catalog::FindDocument(const std::string& name) {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

const DocumentEntry* Catalog::FindDocument(const std::string& name) const {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

const xml::Dtd* Catalog::FindDtd(const std::string& name) const {
  auto it = dtds_.find(name);
  return it == dtds_.end() ? nullptr : it->second.get();
}

const ViewEntry* Catalog::FindView(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::DocumentNames() const {
  std::vector<std::string> out;
  for (const auto& [name, doc] : documents_) out.push_back(name);
  return out;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> out;
  for (const auto& [name, view] : views_) out.push_back(name);
  return out;
}

}  // namespace smoqe::core
