#include "src/core/catalog.h"

namespace smoqe::core {

Status Catalog::AddDocument(const std::string& name,
                            std::unique_ptr<DocumentEntry> doc) {
  auto [it, inserted] = documents_.emplace(name, std::move(doc));
  if (!inserted) {
    return Status::AlreadyExists("document '" + name + "' already loaded");
  }
  return Status::OK();
}

Status Catalog::AddDtd(const std::string& name,
                       std::unique_ptr<xml::Dtd> dtd) {
  auto [it, inserted] = dtds_.emplace(name, std::move(dtd));
  if (!inserted) {
    return Status::AlreadyExists("DTD '" + name + "' already registered");
  }
  return Status::OK();
}

Status Catalog::AddView(const std::string& name,
                        std::unique_ptr<ViewEntry> view) {
  auto [it, inserted] = views_.emplace(name, std::move(view));
  if (!inserted) {
    return Status::AlreadyExists("view '" + name + "' already registered");
  }
  return Status::OK();
}

DocumentEntry* Catalog::FindDocument(const std::string& name) {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

const DocumentEntry* Catalog::FindDocument(const std::string& name) const {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

const xml::Dtd* Catalog::FindDtd(const std::string& name) const {
  auto it = dtds_.find(name);
  return it == dtds_.end() ? nullptr : it->second.get();
}

const ViewEntry* Catalog::FindView(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::DocumentNames() const {
  std::vector<std::string> out;
  for (const auto& [name, doc] : documents_) out.push_back(name);
  return out;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> out;
  for (const auto& [name, view] : views_) out.push_back(name);
  return out;
}

}  // namespace smoqe::core
