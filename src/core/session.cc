#include "src/core/session.h"

#include <utility>

namespace smoqe::core {

Session::Session(Smoqe* engine, std::string role)
    : engine_(engine),
      role_(std::move(role)),
      cancel_(std::make_unique<CancelToken>()) {}

Result<Session> Session::Open(Smoqe* engine, std::string role) {
  if (engine == nullptr) {
    return Status::InvalidArgument("Session::Open: null engine");
  }
  if (!role.empty()) {
    // Validate the binding at handshake time: the one catalog read here
    // makes a bad role fail the connection, not its first query.
    auto schema = engine->ViewSchema(role);
    if (!schema.ok()) {
      return Status::NotFound("unknown role (no such view): " + role);
    }
  }
  return Session(engine, std::move(role));
}

RequestOptions Session::MakeRequest(const SessionRequestOptions& opts) const {
  RequestOptions req;
  req.deadline_ms = opts.deadline_ms;
  req.max_memory_bytes = opts.max_memory_bytes;
  req.cancel = cancel_.get();
  req.trace_id = opts.trace_id;
  req.profile = opts.profile;
  req.trace = opts.trace;
  return req;
}

Result<QueryAnswer> Session::Query(const std::string& doc,
                                   std::string_view query,
                                   const SessionQueryOptions& options,
                                   uint64_t deadline_ms,
                                   uint64_t max_memory_bytes) {
  SessionRequestOptions req;
  req.deadline_ms = deadline_ms;
  req.max_memory_bytes = max_memory_bytes;
  return Query(doc, query, options, req);
}

Result<QueryAnswer> Session::Query(const std::string& doc,
                                   std::string_view query,
                                   const SessionQueryOptions& options,
                                   const SessionRequestOptions& req) {
  QueryOptions qo;
  qo.view = role_;
  qo.mode = options.mode;
  qo.use_tax = options.use_tax;
  return engine_->Query(doc, query, qo, MakeRequest(req));
}

Result<std::vector<QueryAnswer>> Session::QueryBatch(
    const std::string& doc, const std::vector<SessionBatchItem>& items,
    uint64_t deadline_ms, uint64_t max_memory_bytes) {
  SessionRequestOptions req;
  req.deadline_ms = deadline_ms;
  req.max_memory_bytes = max_memory_bytes;
  return QueryBatch(doc, items, req);
}

Result<std::vector<QueryAnswer>> Session::QueryBatch(
    const std::string& doc, const std::vector<SessionBatchItem>& items,
    const SessionRequestOptions& req) {
  std::vector<BatchQueryItem> batch;
  batch.reserve(items.size());
  for (const SessionBatchItem& it : items) {
    BatchQueryItem b;
    b.query = it.query;
    b.options.view = role_;
    b.options.mode = it.options.mode;
    b.options.use_tax = it.options.use_tax;
    batch.push_back(std::move(b));
  }
  return engine_->QueryBatch(doc, batch, MakeRequest(req));
}

Result<UpdateResult> Session::Update(const std::string& doc,
                                     std::string_view statement, bool dry_run,
                                     uint64_t deadline_ms,
                                     uint64_t max_memory_bytes) {
  SessionRequestOptions req;
  req.deadline_ms = deadline_ms;
  req.max_memory_bytes = max_memory_bytes;
  return Update(doc, statement, dry_run, req);
}

Result<UpdateResult> Session::Update(const std::string& doc,
                                     std::string_view statement, bool dry_run,
                                     const SessionRequestOptions& req) {
  UpdateOptions uo;
  uo.view = role_;
  uo.dry_run = dry_run;
  return engine_->Update(doc, statement, uo, MakeRequest(req));
}

}  // namespace smoqe::core
