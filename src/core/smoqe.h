#ifndef SMOQE_CORE_SMOQE_H_
#define SMOQE_CORE_SMOQE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/counters.h"
#include "src/common/status.h"
#include "src/core/catalog.h"
#include "src/xml/name_table.h"

namespace smoqe::core {

/// Evaluation mode (paper §2, "XML documents"): DOM loads the tree into
/// memory; StAX streams the raw text in one forward scan.
enum class EvalMode { kDom, kStax };

/// Per-query options.
struct QueryOptions {
  /// View (= user group) the query is posed against; empty string means
  /// the caller is trusted to query the document directly.
  std::string view;
  EvalMode mode = EvalMode::kDom;
  /// Consult the document's TAX index (DOM mode; must be built).
  bool use_tax = false;
  /// Record engine internals (answers include an explain rendering).
  bool explain = false;
};

/// Result of one query.
struct QueryAnswer {
  /// Serialized XML of each answer subtree, document order.
  std::vector<std::string> answers_xml;
  /// DOM node ids of the answers (DOM mode only).
  std::vector<int32_t> answer_ids;
  EvalStats stats;
  /// Static-analysis notes: labels the query mentions that do not exist
  /// in the schema it was posed against (view DTD for view queries) —
  /// such steps can never match. iSMOQE-style query assistance.
  std::vector<std::string> unknown_labels;
  /// MFA dump of the (rewritten) query, when explain was requested.
  std::string mfa_dump;
  /// iSMOQE-style annotated document tree (DOM + explain only).
  std::string trace_tree;
};

/// \brief SMOQE — the Secure MOdular Query Engine facade (paper Fig. 1).
///
/// Wires the four modules together: the *rewriter* (view queries →
/// document MFAs), the *evaluator* (HyPE over DOM or StAX), the *indexer*
/// (TAX build/save/load) and the catalog that iSMOQE would sit on top of.
///
/// Typical use:
///
///     core::Smoqe engine;
///     engine.RegisterDtd("hospital", kHospitalDtd, "hospital");
///     engine.LoadDocument("ward", xml_text);
///     engine.DefineView("nurses", "hospital", policy_text);
///     core::QueryOptions opts;
///     opts.view = "nurses";
///     auto result = engine.Query("ward", "//patient/treatment", opts);
///
/// All documents, automata and indexes share one name table, so label
/// comparisons are integer compares end-to-end.
class Smoqe {
 public:
  Smoqe();

  /// Registers a DTD under `name`. `root` may be empty when inferable.
  Status RegisterDtd(const std::string& name, std::string_view dtd_text,
                     std::string_view root = "");

  /// Parses and loads a document (keeps the raw text for StAX mode). If a
  /// DOCTYPE with an internal subset is present, it is registered as a DTD
  /// under the document's name unless one already exists.
  Status LoadDocument(const std::string& name, std::string_view xml_text);

  /// Generates and loads a synthetic document conforming to a registered
  /// DTD (workload helper; see xml::GeneratorOptions for knobs).
  Status GenerateDocument(const std::string& name, const std::string& dtd_name,
                          uint64_t seed, size_t target_nodes);

  /// Derives and registers the security view for a user group from an
  /// access-control policy in the text format of view::Policy::Parse.
  Status DefineView(const std::string& view_name, const std::string& dtd_name,
                    std::string_view policy_text);

  /// Registers a hand-written view (the paper's other definition mode):
  /// a view DTD plus σ per edge, in the format of
  /// view::ParseViewSpecification. When `document_dtd_name` is non-empty
  /// the σ paths are statically type-checked against that DTD (each
  /// σ(A,B) must only produce B nodes).
  Status DefineViewFromSpec(const std::string& view_name,
                            std::string_view spec_text,
                            const std::string& document_dtd_name = "");

  /// The schema exposed to a view's user group, as DTD text.
  Result<std::string> ViewSchema(const std::string& view_name) const;

  /// The full view specification (view DTD + σ), for inspection.
  Result<std::string> ViewSpecification(const std::string& view_name) const;

  /// Builds the TAX index for a loaded document.
  Status BuildIndex(const std::string& doc_name);
  /// Persists / restores a TAX index (compressed, see index::TaxIo).
  Status SaveIndex(const std::string& doc_name, const std::string& path) const;
  Status LoadIndex(const std::string& doc_name, const std::string& path);

  /// Evaluates a Regular XPath query against a loaded document, directly
  /// or through a view (rewriting — the view is never materialized).
  Result<QueryAnswer> Query(const std::string& doc_name,
                            std::string_view query_text,
                            const QueryOptions& options = {});

  /// Loaded document / registered view names (for tooling).
  std::vector<std::string> DocumentNames() const;
  std::vector<std::string> ViewNames() const;

  const std::shared_ptr<xml::NameTable>& names() const { return names_; }

 private:
  std::shared_ptr<xml::NameTable> names_;
  Catalog catalog_;
};

}  // namespace smoqe::core

#endif  // SMOQE_CORE_SMOQE_H_
