/// \file
/// \brief The SMOQE engine facade (paper Fig. 1): DTD / document / view
/// registration and query evaluation, with compiled plans cached per
/// (view, query), multi-query batches sharing one document scan, and
/// batch evaluation parallelized over a thread pool against epoch-pinned
/// document snapshots (docs/DESIGN.md §1, §5, §7).

#ifndef SMOQE_CORE_SMOQE_H_
#define SMOQE_CORE_SMOQE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/counters.h"
#include "src/common/guardrail.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/catalog.h"
#include "src/core/plan_cache.h"
#include "src/telemetry/telemetry.h"
#include "src/xml/name_table.h"

namespace smoqe::core {

/// Short alias so the facade can name telemetry types next to its
/// `telemetry()` accessor without ambiguity.
namespace tel = ::smoqe::telemetry;

/// Evaluation mode (paper §2, "XML documents"): DOM loads the tree into
/// memory; StAX streams the raw text in one forward scan.
enum class EvalMode { kDom, kStax };

/// Engine-wide options (docs/DESIGN.md §7.4): service-layer knobs that
/// apply to every call on one Smoqe instance.
struct EngineOptions {
  /// Compiled query plans kept hot (LRU beyond it).
  size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
  /// Total parallelism of QueryBatch / QueryBatchMulti evaluation,
  /// including the calling thread: 0 = one per hardware core, 1 = fully
  /// serial (no pool is created; every call behaves like PR 3's engine).
  int max_threads = 0;
  /// Master switch for batch parallelism — with it off the pool is never
  /// consulted even when `max_threads` permits one (the E13 ablation and
  /// differential-testing knob). Query() is always serial.
  bool parallel_batch = true;
  /// Events per tokenizer chunk of the parallel StAX batch driver (the
  /// fork/join grain behind the shared tokenizer).
  size_t stax_chunk_events = 4096;
  /// Telemetry (docs/DESIGN.md §8): metrics registry + trace recorder +
  /// security audit log, on by default. `telemetry.enabled = false`
  /// removes all instrumentation (no registry exists; DumpMetrics renders
  /// empty). The bench-verified overhead budget of the default-on state
  /// is <2% on the hot query path (bench_telemetry, E14).
  tel::TelemetryOptions telemetry;
  /// Engine-wide request-governance defaults (docs/DESIGN.md §9). A
  /// request whose RequestOptions leaves a knob at 0 inherits the engine
  /// default; 0 here too means ungoverned (no deadline / no cap).
  uint64_t default_deadline_ms = 0;
  uint64_t default_max_memory_bytes = 0;
  /// Bounded admission gate: at most this many requests may be in flight
  /// (Query/QueryBatch/QueryBatchMulti/Update) before further calls
  /// fast-fail with RejectedBusy — before parsing, before taking any
  /// lock, before touching the catalog. 0 = unbounded (no gate).
  int max_pending_requests = 0;
  /// Slow-query capture threshold (docs/DESIGN.md §11): a facade call
  /// whose total latency reaches this many milliseconds has its profile
  /// appended to the telemetry slow ring. 0 captures EVERY call (the
  /// deterministic-CI setting); to disable capture entirely set
  /// `telemetry.slow_log_capacity = 0` instead.
  uint64_t slow_query_threshold_ms = 50;
};

/// Per-request resource governance (docs/DESIGN.md §9), accepted by
/// Query / QueryBatch / QueryBatchMulti / Update. All knobs default to
/// "inherit the engine default" — a default-constructed RequestOptions
/// is byte-for-byte the pre-guardrail behavior.
struct RequestOptions {
  /// Wall-clock budget of the call in milliseconds, measured from entry
  /// (steady clock). On expiry the request unwinds with DeadlineExceeded
  /// and no partial answer. 0 = EngineOptions::default_deadline_ms.
  uint64_t deadline_ms = 0;
  /// Memory the request may charge (evaluator runs/frames, capture
  /// buffers, update-clone arena blocks, TAX bitsets). On breach the
  /// request unwinds with ResourceExhausted. Charging is amortized, so
  /// the real high-water mark can overshoot by one charge quantum.
  /// 0 = EngineOptions::default_max_memory_bytes.
  uint64_t max_memory_bytes = 0;
  /// Cooperative cancellation: the caller keeps the token (which must
  /// outlive the call) and may Cancel() it from any thread; the request
  /// unwinds with Cancelled at its next guard check. Null = none.
  const CancelToken* cancel = nullptr;
  /// Caller-chosen trace id, adopted verbatim so client and server logs
  /// correlate (the wire trace-context path). 0 = engine mints ids and
  /// the sampling knob applies; non-zero forces span recording.
  uint64_t trace_id = 0;
  /// Return a structured execution profile with the answer
  /// (QueryAnswer::profile): per-stage timings, plan-cache outcome,
  /// canonical query, EvalStats, guard ticks. Forces span recording.
  bool profile = false;
  /// Externally owned trace (smoqed's worker): spans land in *this*
  /// trace and the facade does NOT finish it — the owner finishes after
  /// the response flushes, so queue_wait and write_flush join the same
  /// span tree. Overrides trace_id and sampling.
  std::shared_ptr<tel::Trace> trace;
};

/// Per-query options.
struct QueryOptions {
  /// View (= user group) the query is posed against; empty string means
  /// the caller is trusted to query the document directly.
  std::string view;
  EvalMode mode = EvalMode::kDom;
  /// Consult the document's TAX index (DOM mode; must be built).
  bool use_tax = false;
  /// Record engine internals (answers include an explain rendering).
  bool explain = false;
  /// Compile fresh, without consulting or populating the plan cache
  /// (ablation / differential-testing knob; see DESIGN.md §5.1).
  bool bypass_plan_cache = false;
};

/// Result of one query.
struct QueryAnswer {
  /// Serialized XML of each answer subtree, document order.
  std::vector<std::string> answers_xml;
  /// DOM node ids of the answers (DOM mode only).
  std::vector<int32_t> answer_ids;
  EvalStats stats;
  /// Document epoch of the snapshot the query evaluated against. Every
  /// answer reflects exactly this epoch — a query concurrent with updates
  /// never sees a torn tree (docs/DESIGN.md §7.1).
  uint64_t doc_epoch = 0;
  /// Static-analysis notes: labels the query mentions that do not exist
  /// in the schema it was posed against (view DTD for view queries) —
  /// such steps can never match. iSMOQE-style query assistance.
  std::vector<std::string> unknown_labels;
  /// MFA dump of the (rewritten) query, when explain was requested.
  std::string mfa_dump;
  /// iSMOQE-style annotated document tree (DOM + explain only).
  std::string trace_tree;
  /// Telemetry trace id of this call (0 when telemetry is off or the call
  /// was not sampled); look it up via `Smoqe::telemetry()->traces()`.
  uint64_t trace_id = 0;
  /// Canonical printer rendering of the query that actually compiled
  /// (set when RequestOptions::profile was requested; "" otherwise).
  std::string canonical_query;
  /// Structured execution profile, set only when RequestOptions::profile
  /// was requested. For QueryBatch the single batch-level profile rides
  /// on the FIRST item's answer (per-item breakdowns live in `stats`).
  std::shared_ptr<tel::Profile> profile;
  /// Per-item status of batch calls. Query() never returns an answer
  /// with a non-OK status (the call's Result carries the error), but
  /// QueryBatch / QueryBatchMulti fail *per item*: a bad view, a parse
  /// error or a TAX-mode conflict in one item leaves `status` non-OK
  /// (its message names the item index) and every other field empty,
  /// while the sibling items complete normally. Document-level failures
  /// (unknown document, a tripped request guardrail) still fail the
  /// whole call.
  Status status = Status::OK();
};

/// One query of a QueryBatch call: the query text plus its own options —
/// different entries may pose different views (users/roles), which is the
/// batch evaluator's whole point.
struct BatchQueryItem {
  std::string query;
  QueryOptions options;
};

/// One query of a QueryBatchMulti call: a BatchQueryItem plus the
/// document it targets.
struct DocBatchItem {
  std::string doc;
  std::string query;
  QueryOptions options;
};

/// Per-update options (docs/DESIGN.md §6).
struct UpdateOptions {
  /// View the update is posed against; empty string means the caller is
  /// trusted to edit the document directly (no authorization check).
  std::string view;
  /// Revalidation schema. When empty the engine uses the view's document
  /// DTD (view updates), else a DTD registered under the document's own
  /// name, else skips DTD revalidation (structural checks only).
  std::string dtd_name;
  /// Parse, resolve, authorize and validate — but do not mutate.
  bool dry_run = false;
  /// Maintain the TAX index by full rebuild instead of incremental
  /// ancestor-chain repair (the E12 differential/ablation knob).
  bool rebuild_tax = false;
};

/// Counters of one update (the update-side analogue of EvalStats).
struct UpdateStats {
  uint64_t targets = 0;         ///< nodes the target path selected
  uint64_t edits_applied = 0;   ///< after nesting normalization
  uint64_t edits_dropped = 0;   ///< nested inside another removed subtree
  uint64_t nodes_inserted = 0;
  uint64_t nodes_deleted = 0;
  uint64_t tax_sets_recomputed = 0;  ///< incremental TAX repair work
  uint64_t tax_rebuilt = 0;          ///< 1 if maintenance fell back to Build
  uint64_t view_caches_retained = 0;     ///< materializations that survived
  uint64_t view_caches_invalidated = 0;  ///< materializations gone stale
  uint64_t doc_epoch = 0;  ///< document epoch after the update
};

/// Result of one accepted update.
struct UpdateResult {
  /// Canonical printed form of the statement (see update::ToString).
  std::string canonical;
  UpdateStats stats;
};

/// Result of MaterializeView.
struct MaterializedViewAnswer {
  std::string xml;       ///< serialized view document
  bool cache_hit = false;  ///< served from the per-epoch cache
  uint64_t epoch = 0;    ///< document epoch the materialization reflects
};

/// \brief SMOQE — the Secure MOdular Query Engine facade (paper Fig. 1).
///
/// Wires the four modules together: the *rewriter* (view queries →
/// document MFAs), the *evaluator* (HyPE over DOM or StAX), the *indexer*
/// (TAX build/save/load) and the catalog that iSMOQE would sit on top of.
///
/// Typical use:
///
///     core::Smoqe engine;
///     engine.RegisterDtd("hospital", kHospitalDtd, "hospital");
///     engine.LoadDocument("ward", xml_text);
///     engine.DefineView("nurses", "hospital", policy_text);
///     core::QueryOptions opts;
///     opts.view = "nurses";
///     auto result = engine.Query("ward", "//patient/treatment", opts);
///
/// All documents, automata and indexes share one name table, so label
/// comparisons are integer compares end-to-end.
///
/// Thread safety (docs/DESIGN.md §7): every public method may be called
/// concurrently from any thread. Readers (Query, QueryBatch,
/// MaterializeView, the inspection getters) pin an epoch-stamped document
/// snapshot and never block on writers; Update clones, mutates the clone,
/// and atomically publishes the successor snapshot, so the old epoch's
/// readers finish on the old tree and the retired tree is freed when its
/// last reader drops it.
class Smoqe {
 public:
  explicit Smoqe(EngineOptions options);

  /// `plan_cache_capacity` bounds the number of compiled query plans kept
  /// hot (LRU beyond it). All other EngineOptions keep their defaults.
  explicit Smoqe(size_t plan_cache_capacity = PlanCache::kDefaultCapacity);

  /// Registers a DTD under `name`, replacing any previous registration.
  /// `root` may be empty when inferable. Replacing a DTD invalidates the
  /// cached plans of every view defined over it.
  Status RegisterDtd(const std::string& name, std::string_view dtd_text,
                     std::string_view root = "");

  /// Parses and loads a document (keeps the raw text for StAX mode). If a
  /// DOCTYPE with an internal subset is present, it is registered as a DTD
  /// under the document's name unless one already exists.
  Status LoadDocument(const std::string& name, std::string_view xml_text);

  /// Generates and loads a synthetic document conforming to a registered
  /// DTD (workload helper; see xml::GeneratorOptions for knobs).
  Status GenerateDocument(const std::string& name, const std::string& dtd_name,
                          uint64_t seed, size_t target_nodes);

  /// Derives and registers the security view for a user group from an
  /// access-control policy in the text format of view::Policy::Parse.
  /// Redefining an existing view replaces it and invalidates its cached
  /// query plans (subsequent queries recompile against the new policy).
  Status DefineView(const std::string& view_name, const std::string& dtd_name,
                    std::string_view policy_text);

  /// Registers a hand-written view (the paper's other definition mode):
  /// a view DTD plus σ per edge, in the format of
  /// view::ParseViewSpecification. When `document_dtd_name` is non-empty
  /// the σ paths are statically type-checked against that DTD (each
  /// σ(A,B) must only produce B nodes).
  Status DefineViewFromSpec(const std::string& view_name,
                            std::string_view spec_text,
                            const std::string& document_dtd_name = "");

  /// The schema exposed to a view's user group, as DTD text.
  Result<std::string> ViewSchema(const std::string& view_name) const;

  /// The full view specification (view DTD + σ), for inspection.
  Result<std::string> ViewSpecification(const std::string& view_name) const;

  /// Builds the TAX index for a loaded document (publishes a successor
  /// snapshot carrying the index; the tree and epoch are unchanged).
  Status BuildIndex(const std::string& doc_name);
  /// Persists / restores a TAX index (compressed, see index::TaxIo).
  Status SaveIndex(const std::string& doc_name, const std::string& path) const;
  Status LoadIndex(const std::string& doc_name, const std::string& path);

  /// Evaluates a Regular XPath query against a loaded document, directly
  /// or through a view (rewriting — the view is never materialized).
  /// Compilation goes through the plan cache: repeat queries skip the
  /// rewrite → MFA → dispatch-sealing pipeline entirely (DESIGN.md §5.1);
  /// `answer.stats.plan_cache_hits/misses` says which happened.
  /// `req` governs the call's resources (docs/DESIGN.md §9): deadline,
  /// memory budget, cancellation — all engine-default by default. A
  /// tripped guard unwinds with DeadlineExceeded / ResourceExhausted /
  /// Cancelled and no partial answer; when the admission gate is full
  /// the call fast-fails with RejectedBusy before doing any work. Guard
  /// rejections are resource outcomes, not security decisions: they
  /// produce no audit record.
  Result<QueryAnswer> Query(const std::string& doc_name,
                            std::string_view query_text,
                            const QueryOptions& options = {},
                            const RequestOptions& req = {});

  /// Evaluates many queries — typically from different users, so each
  /// item carries its own view — against one document. Answers line up
  /// with `items` by index and are identical to per-item Query calls.
  /// All StAX-mode items share a single streaming pass of the document
  /// (DESIGN.md §5.2); DOM-mode items evaluate per item (the tree is
  /// already amortized). Every item's compile goes through the plan
  /// cache. With parallelism enabled (EngineOptions::max_threads ≠ 1),
  /// DOM items fan out across the pool and the shared StAX scan fans its
  /// per-plan engine advancement out behind one tokenizer (§7.3); the
  /// whole batch evaluates against one pinned snapshot either way.
  /// Error semantics: an item that fails on its own terms (unregistered
  /// view, parse error, StAX+TAX conflict, missing index) fails *only
  /// that item* — its answer's `status` is non-OK and names the item
  /// index — while the other items evaluate normally. Whole-call errors
  /// are reserved for document-level failures: unknown document, a
  /// failed shared StAX scan, or this request's guardrail tripping
  /// (deadline / budget / cancel / admission via `req`).
  Result<std::vector<QueryAnswer>> QueryBatch(
      const std::string& doc_name, const std::vector<BatchQueryItem>& items,
      const RequestOptions& req = {});

  /// Evaluates queries against *many* documents in one call: items are
  /// grouped by document, each group pins its document's snapshot, and
  /// independent documents evaluate concurrently across the pool (each
  /// group internally like QueryBatch). Answers line up with `items`.
  /// Per-item error semantics match QueryBatch (an unknown *document* is
  /// still a whole-call error — it names a catalog problem, not an item
  /// problem).
  Result<std::vector<QueryAnswer>> QueryBatchMulti(
      const std::vector<DocBatchItem>& items, const RequestOptions& req = {});

  /// Applies one update statement (`insert into p f` / `delete p` /
  /// `replace p with f`, docs/QUERY_LANGUAGE.md "Updates") to a loaded
  /// document. Direct updates (empty `options.view`) are trusted; view
  /// updates resolve the target path *in the view* and are authorized
  /// against the view's access annotations with accept/reject semantics —
  /// a rejected update returns PermissionDenied naming the violated
  /// annotation and leaves document, TAX index, caches and epoch
  /// untouched. Accepted updates apply atomically (DTD-revalidated before
  /// any mutation) to a *clone* of the current snapshot, repair the TAX
  /// index incrementally, retain/invalidate materialized-view caches, and
  /// publish the clone as the new snapshot with a bumped epoch —
  /// concurrent readers finish undisturbed on the old one (§7.1).
  /// Guard semantics (docs/DESIGN.md §9): a deadline / budget / cancel
  /// trip — even one landing mid-apply — aborts *before Publish*, so the
  /// published snapshot chain, TAX index, caches and epoch are exactly
  /// as if the call never happened. Guard rejections are not
  /// authorization denials: they return their own status codes and
  /// append no audit record.
  Result<UpdateResult> Update(const std::string& doc_name,
                              std::string_view update_text,
                              const UpdateOptions& options = {},
                              const RequestOptions& req = {});

  /// Materializes a view of a document (cached per document epoch — the
  /// epoch-invalidation consumer updates exercise; queries still answer
  /// by rewriting, never through this).
  Result<MaterializedViewAnswer> MaterializeView(const std::string& doc_name,
                                                 const std::string& view_name);

  /// Serialized (compact) XML of the document's current DOM.
  Result<std::string> DocumentXml(const std::string& doc_name) const;

  /// The document's update epoch (0 until the first accepted update).
  Result<uint64_t> DocumentEpoch(const std::string& doc_name) const;

  /// Loaded document / registered view names (for tooling).
  std::vector<std::string> DocumentNames() const;
  std::vector<std::string> ViewNames() const;

  const std::shared_ptr<xml::NameTable>& names() const { return names_; }

  /// The compiled-plan cache (stats, Clear; shared by Query/QueryBatch).
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }

  const EngineOptions& options() const { return options_; }
  /// The batch-evaluation pool, or null when the engine is serial
  /// (max_threads == 1, or a 1-core host with max_threads == 0).
  ThreadPool* pool() { return pool_.get(); }

  /// The engine's telemetry bundle (metrics + traces + audit log), or
  /// null when `EngineOptions::telemetry.enabled` is false.
  tel::Telemetry* telemetry() { return telemetry_.get(); }
  const tel::Telemetry* telemetry() const { return telemetry_.get(); }

  /// Renders every metric of this engine — query/update/cache/pool/
  /// snapshot — as JSON or Prometheus text exposition (docs/DESIGN.md
  /// §8.5). Sampled gauges (live snapshots, per-document epochs, audit
  /// totals) are refreshed first, so a dump is always current. With
  /// telemetry off, returns "{}\n" (JSON) or "" (Prometheus).
  std::string DumpMetrics(
      tel::DumpFormat format = tel::DumpFormat::kJson) const;

  /// The slow-query ring as a JSON array (oldest first; see
  /// tel::SlowQueryLog::RenderJson). "[]\n" when telemetry is off.
  std::string DumpSlowQueries() const;

 private:
  /// A plan resolved for one query: the (possibly shared) compiled
  /// artifact plus whether it came from the cache.
  struct PlanUse {
    std::shared_ptr<const CompiledPlan> plan;
    bool cache_hit = false;
  };

  /// True when batch calls should fan out across the pool.
  bool ParallelEnabled() const {
    return pool_ != nullptr && options_.parallel_batch;
  }

  /// Hot-path facade metrics, resolved once at construction so the
  /// per-call cost is pointer increments, never a registry lookup. Null
  /// (the struct, not the fields) when telemetry is off.
  struct FacadeMetrics {
    explicit FacadeMetrics(tel::MetricsRegistry& reg);

    tel::Counter* query_count;
    tel::Counter* query_errors;
    tel::Counter* query_answers;
    tel::Histogram* query_latency_ns;
    tel::Histogram* query_epoch_lag;
    tel::Counter* batch_count;
    tel::Counter* batch_errors;
    tel::Counter* batch_items;
    tel::Histogram* batch_latency_ns;
    tel::Histogram* batch_plans_per_scan;
    tel::Histogram* batch_chunk_ns;
    tel::Counter* eval_nodes_visited;
    tel::Counter* eval_subtrees_pruned;
    tel::Counter* eval_answers;
    tel::Counter* update_count;
    tel::Counter* update_accepted;
    tel::Counter* update_rejected;
    tel::Counter* update_errors;
    tel::Histogram* update_latency_ns;
    tel::Histogram* update_tax_repair_ns;
    tel::Histogram* update_tax_rebuild_ns;
    tel::Counter* update_nodes_inserted;
    tel::Counter* update_nodes_deleted;
    tel::Counter* guard_deadline_exceeded;
    tel::Counter* guard_budget_exceeded;
    tel::Counter* guard_admission_rejected;
    tel::Counter* guard_cancelled;
  };

  /// Parses + normalizes `query_text` and returns its compiled plan,
  /// consulting the cache unless `options.bypass_plan_cache`. Caller
  /// holds catalog_mu_ (shared suffices). `tr` (nullable) receives the
  /// parse / cache_lookup / compile / rewrite spans.
  Result<PlanUse> GetPlan(std::string_view query_text,
                          const QueryOptions& options, tel::Trace* tr);

  /// Evaluates a resolved plan over a pinned snapshot (single query).
  /// Takes no lock; safe on any thread. `guard` (nullable) is polled by
  /// the evaluator's event loop.
  Result<QueryAnswer> EvalCompiled(const DocumentSnapshot& snap,
                                   const std::string& doc_name,
                                   const PlanUse& plan,
                                   const QueryOptions& options,
                                   const Guardrail* guard, tel::Trace* tr);

  /// The untelemetered bodies of the public calls; the public methods are
  /// thin wrappers that admit the request, build its guardrail, time the
  /// call, fold its stats into the registry, append audit records, and
  /// finish the trace.
  Result<QueryAnswer> QueryImpl(const std::string& doc_name,
                                std::string_view query_text,
                                const QueryOptions& options,
                                const Guardrail* guard, tel::Trace* tr,
                                bool want_canonical = false);
  Result<std::vector<QueryAnswer>> QueryBatchImpl(
      const std::string& doc_name, const std::vector<BatchQueryItem>& items,
      const Guardrail* guard, tel::Trace* tr);
  Result<std::vector<QueryAnswer>> QueryBatchMultiImpl(
      const std::vector<DocBatchItem>& items, const Guardrail* guard,
      tel::Trace* tr);
  Result<UpdateResult> UpdateImpl(const std::string& doc_name,
                                  std::string_view update_text,
                                  const UpdateOptions& options,
                                  const Guardrail* guard, tel::Trace* tr);

  /// Folds one call's EvalStats aggregate into the eval.* counters.
  void FoldEvalStats(const EvalStats& stats);

  /// Resolves the trace a facade call records into, per RequestOptions:
  /// an external (server-owned) trace wins, else an explicit trace_id /
  /// profile request forces recording under the caller's id (bypassing
  /// sampling), else the sampling knob decides. `*external` reports
  /// whether the facade must leave Finish to the owner. Requires
  /// telemetry_ != nullptr.
  std::shared_ptr<tel::Trace> PickTrace(const char* name,
                                        const RequestOptions& req,
                                        bool* external);

  /// RAII admission slot. `ok()` false means the gate was full and the
  /// call must fast-fail with RejectedBusy; nothing to release then.
  class Admission {
   public:
    explicit Admission(Smoqe* engine);
    ~Admission();
    Admission(const Admission&) = delete;
    Admission& operator=(const Admission&) = delete;
    bool ok() const { return admitted_; }

   private:
    Smoqe* engine_;
    bool admitted_;
  };

  /// Resolves RequestOptions against the engine defaults into `budget` +
  /// `guard` (stack storage owned by the caller). Returns nullptr — the
  /// ungoverned fast path — when no knob is active.
  const Guardrail* MakeGuard(const RequestOptions& req, MemoryBudget* budget,
                             Guardrail* guard) const;

  /// Counts a guard-terminated request into the guard.* counters and
  /// returns the span annotation ("deadline" / "budget" / "admission" /
  /// "cancel"), or nullptr for ordinary errors. Null-safe on tm_.
  const char* CountGuardOutcome(const Status& status);
  /// Appends the kQueryRewrite audit record of a successful view query.
  void AppendQueryAudit(const std::string& doc_name,
                        const std::string& view_name,
                        std::string_view query_text, uint64_t doc_epoch,
                        uint64_t trace_id);

  /// QueryBatch's evaluation phase over one pinned snapshot: `sel` holds
  /// the item indices of this group; answers land in out[sel[j]].
  /// `error_ids` maps an `items` index to the index the *caller* knows
  /// it by (identity for QueryBatch; the original positions for
  /// QueryBatchMulti's per-document groups), so "batch item N" error
  /// contexts always name the caller's numbering.
  /// Item-local evaluation failures land in out[i].status; only
  /// document-level failures (a failed shared StAX scan, a guard trip)
  /// return non-OK.
  Status EvalBatchOnSnapshot(const DocumentSnapshot& snap,
                             const std::string& doc_name,
                             const std::vector<BatchQueryItem>& items,
                             const std::vector<PlanUse>& plans,
                             const std::vector<size_t>& sel,
                             const std::vector<size_t>& error_ids,
                             const Guardrail* guard,
                             std::vector<QueryAnswer>* out, tel::Trace* tr);

  /// The view's materialized-view cache over the snapshot's epoch,
  /// rebuilt if stale (fingerprint or epoch mismatch). Caller holds
  /// doc->caches_mu; `cache_hit` reports which happened.
  Result<ViewCacheEntry*> GetViewCacheLocked(DocumentEntry* doc,
                                             const DocumentSnapshot& snap,
                                             const std::string& view_name,
                                             const ViewEntry* view,
                                             bool* cache_hit);

  /// The view's node-level access map at the snapshot's epoch, recomputed
  /// if stale. Caller holds doc->caches_mu.
  Result<const view::AccessMap*> GetAccessMapLocked(
      DocumentEntry* doc, const DocumentSnapshot& snap,
      const std::string& view_name, const ViewEntry* view);

  std::shared_ptr<xml::NameTable> names_;
  EngineOptions options_;
  /// Declared before plan_cache_ and pool_ (whose metrics point into the
  /// registry) so it is destroyed after them.
  std::unique_ptr<tel::Telemetry> telemetry_;  // null when disabled
  std::unique_ptr<FacadeMetrics> tm_;          // null when disabled
  /// Guards the catalog maps and the in-place-replaced ViewEntry/Dtd
  /// objects: registration ops take it unique, everything else shared.
  /// Never held during evaluation (snapshots are pinned first).
  mutable std::shared_mutex catalog_mu_;
  Catalog catalog_;
  PlanCache plan_cache_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial
  /// Requests currently inside a public entry point (admission gate).
  std::atomic<int> inflight_{0};
};

}  // namespace smoqe::core

#endif  // SMOQE_CORE_SMOQE_H_
