/// \file
/// \brief Name → object registry (documents, DTDs, views) behind the
/// Smoqe facade, including the upsert + plan-invalidation contract the
/// plan cache depends on (docs/DESIGN.md §5.1).

#ifndef SMOQE_CORE_CATALOG_H_
#define SMOQE_CORE_CATALOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>

#include "src/common/status.h"
#include "src/index/tax.h"
#include "src/view/access.h"
#include "src/view/annotation.h"
#include "src/view/materialize.h"
#include "src/view/view_def.h"
#include "src/xml/dom.h"
#include "src/xml/dtd.h"

namespace smoqe::core {

/// Per-(document, view) caches derived from one document epoch: the
/// materialized view with provenance, and the node-level access map. Both
/// are invalidated by comparing `*_epoch` against `dom.epoch()` — a
/// successful update bumps the epoch, and the facade either rebuilds
/// lazily on next use or *retains* the materialization when the edit
/// provably could not change it (DESIGN.md §6.5).
struct ViewCacheEntry {
  uint64_t fingerprint = 0;  ///< ViewEntry::fingerprint the caches match
  uint64_t mv_epoch = 0;     ///< document epoch `mv` is valid at
  std::optional<view::MaterializedView> mv;
  uint64_t access_epoch = 0;  ///< document epoch `access` is valid at
  std::unique_ptr<view::AccessMap> access;  ///< null until first needed
};

/// \brief One epoch's immutable view of a document: the tree, its TAX
/// index, and (lazily) its serialized text — the shared-ownership handle
/// readers pin for the whole of an evaluation (docs/DESIGN.md §7.1).
///
/// Everything reachable from a snapshot is immutable: `Smoqe::Update`
/// clones the tree, mutates the clone, and publishes a *new* snapshot,
/// so a reader that acquired this one can keep evaluating with no lock
/// held. The snapshot (and the old tree with it) is retired by shared_ptr
/// refcounting when the last such reader drops its handle.
class DocumentSnapshot {
 public:
  /// `text` may be null: a streaming scan then serializes the tree on
  /// first use (thread-safe, at most once per snapshot).
  DocumentSnapshot(std::shared_ptr<const xml::Document> dom_,
                   std::shared_ptr<const index::TaxIndex> tax_,
                   std::shared_ptr<const std::string> text)
      : dom(std::move(dom_)), tax(std::move(tax_)), epoch(dom->epoch()),
        text_(std::move(text)) {
    s_created_.fetch_add(1, std::memory_order_relaxed);
    s_live_.fetch_add(1, std::memory_order_relaxed);
  }

  ~DocumentSnapshot() { s_live_.fetch_sub(1, std::memory_order_relaxed); }

  DocumentSnapshot(const DocumentSnapshot&) = delete;
  DocumentSnapshot& operator=(const DocumentSnapshot&) = delete;

  /// Process-wide count of snapshots currently alive — i.e. published
  /// ones plus superseded epochs still pinned by in-flight readers. The
  /// `snapshot.live` gauge; a persistently growing value means some
  /// reader is holding snapshots across epochs.
  static int64_t LiveCount() {
    return s_live_.load(std::memory_order_relaxed);
  }
  /// Process-wide count of snapshots ever created (the churn rate).
  static int64_t CreatedCount() {
    return s_created_.load(std::memory_order_relaxed);
  }

  const std::shared_ptr<const xml::Document> dom;
  /// TAX index of `dom`, or null while none is built.
  const std::shared_ptr<const index::TaxIndex> tax;
  /// == dom->epoch(); denormalized because it keys every derived cache.
  const uint64_t epoch;

  /// Serialized XML of `dom` (StAX scans). Lazy and thread-safe; the
  /// reference stays valid for the snapshot's lifetime.
  const std::string& text() const;

  /// The text if already materialized (load-time input or a prior
  /// serialization), else null — successor snapshots of the same tree
  /// inherit it without forcing a serialization.
  std::shared_ptr<const std::string> text_if_ready() const {
    return std::atomic_load_explicit(&text_, std::memory_order_acquire);
  }

 private:
  static std::atomic<int64_t> s_live_;
  static std::atomic<int64_t> s_created_;

  mutable std::once_flag text_once_;
  mutable std::shared_ptr<const std::string> text_;
};

/// A loaded document: the published snapshot plus the mutable service
/// state around it. Lock order (docs/DESIGN.md §7.2): writer_mu →
/// caches_mu → snap_mu_; readers take only snap_mu_ (shared, for the
/// duration of one pointer copy).
struct DocumentEntry {
  DocumentEntry(std::string text_, xml::Document dom_)
      : snapshot_(std::make_shared<const DocumentSnapshot>(
            std::make_shared<const xml::Document>(std::move(dom_)), nullptr,
            std::make_shared<const std::string>(std::move(text_)))) {}

  /// Pins the current snapshot. O(1); never blocks on a writer's clone /
  /// validate / apply work — only on the pointer swap itself.
  std::shared_ptr<const DocumentSnapshot> Acquire() const {
    std::shared_lock<std::shared_mutex> lock(snap_mu_);
    return snapshot_;
  }

  /// Publishes a successor snapshot (callers hold writer_mu).
  void Publish(std::shared_ptr<const DocumentSnapshot> snap) {
    std::unique_lock<std::shared_mutex> lock(snap_mu_);
    snapshot_ = std::move(snap);
  }

  /// Serializes writers (Update, BuildIndex, LoadIndex): clone → mutate →
  /// publish must not interleave.
  std::mutex writer_mu;
  /// Guards view_caches (materializations + access maps are shared
  /// mutable service state, unlike the snapshots).
  std::mutex caches_mu;
  /// Per-view caches, keyed by view name. Guarded by caches_mu.
  std::map<std::string, ViewCacheEntry> view_caches;

 private:
  mutable std::shared_mutex snap_mu_;
  std::shared_ptr<const DocumentSnapshot> snapshot_;
};

/// A registered view: derived definition plus the policy it came from.
struct ViewEntry {
  std::string dtd_name;
  std::unique_ptr<view::Policy> policy;
  view::ViewDefinition definition;
  /// Stable hash of (definition, dtd_name); part of every plan-cache key
  /// minted for this view, so plans compiled against an older definition
  /// can never be served after a redefinition (DESIGN.md §5.1).
  uint64_t fingerprint = 0;
};

/// \brief Name → object registry backing the engine facade. Objects are
/// heap-allocated so references handed out stay stable across inserts.
///
/// `Add*` rejects duplicates; `Put*` upserts and reports whether an
/// existing entry was replaced — the facade uses the report to invalidate
/// cached query plans that depended on the replaced object.
class Catalog {
 public:
  Status AddDocument(const std::string& name,
                     std::unique_ptr<DocumentEntry> doc);
  Status AddDtd(const std::string& name, std::unique_ptr<xml::Dtd> dtd);
  Status AddView(const std::string& name, std::unique_ptr<ViewEntry> view);

  /// Registers or replaces; returns true when an existing entry was
  /// replaced (callers must then invalidate dependent compiled plans).
  /// Replacement happens in place through the existing heap object, so
  /// previously handed-out pointers stay valid and see the new content.
  bool PutDtd(const std::string& name, std::unique_ptr<xml::Dtd> dtd);
  bool PutView(const std::string& name, std::unique_ptr<ViewEntry> view);

  DocumentEntry* FindDocument(const std::string& name);
  const DocumentEntry* FindDocument(const std::string& name) const;
  const xml::Dtd* FindDtd(const std::string& name) const;
  const ViewEntry* FindView(const std::string& name) const;

  std::vector<std::string> DocumentNames() const;
  std::vector<std::string> ViewNames() const;

 private:
  std::map<std::string, std::unique_ptr<DocumentEntry>> documents_;
  std::map<std::string, std::unique_ptr<xml::Dtd>> dtds_;
  std::map<std::string, std::unique_ptr<ViewEntry>> views_;
};

}  // namespace smoqe::core

#endif  // SMOQE_CORE_CATALOG_H_
